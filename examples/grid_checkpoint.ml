(* Figure 2: the grid computation with speculative checkpointing.

     dune exec examples/grid_checkpoint.exe

   Deploys the generated mini-C stencil ranks onto the simulated cluster,
   kills a node mid-run, resurrects the victim rank from its checkpoint
   on a spare node, and verifies the final answer bit-exactly against a
   sequential golden model.  The cluster event log shows the recovery
   protocol of Figure 2 happening. *)

let config =
  { Mcc.Gridapp.ranks = 4; rows_per_rank = 6; cols = 12; timesteps = 60;
    interval = 10; work_us_per_step = 2000 }

let show_checksums label sums =
  Printf.printf "%-28s %s\n" label
    (String.concat " "
       (List.map
          (function Some n -> Printf.sprintf "%6d" n | None -> "     ?")
          (Array.to_list sums)))

let () =
  Printf.printf
    "Figure 2: %dx%d grid, %d ranks, %d timesteps, checkpoint every %d\n\n"
    (config.Mcc.Gridapp.ranks * config.Mcc.Gridapp.rows_per_rank)
    config.Mcc.Gridapp.cols config.Mcc.Gridapp.ranks
    config.Mcc.Gridapp.timesteps config.Mcc.Gridapp.interval;

  let golden = Mcc.Gridapp.golden_checksums config in
  Printf.printf "%-28s %s\n" "sequential golden model:"
    (String.concat " "
       (List.map (Printf.sprintf "%6d") (Array.to_list golden)));

  (* ---- fault-free run ---- *)
  let net = Net.Simnet.create ~latency_us:5.0 () in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 4; net = Some net } in
  let d = Mcc.Gridapp.deploy cluster config in
  let _ = Mcc.Gridapp.run d in
  show_checksums "fault-free distributed run:" (Mcc.Gridapp.checksums d);
  let t_clean = Net.Cluster.now cluster in

  (* ---- run with an injected node failure ---- *)
  let net = Net.Simnet.create ~latency_us:5.0 () in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 5; net = Some net } in
  let d = Mcc.Gridapp.deploy ~spare:true cluster config in
  let victims =
    Mcc.Gridapp.fail_and_recover ~rounds_before_failure:20 d ~victim_node:1
      ~spare_node:4
  in
  let _ = Mcc.Gridapp.run d in
  show_checksums
    (Printf.sprintf "after killing rank %s:"
       (String.concat "," (List.map string_of_int victims)))
    (Mcc.Gridapp.checksums d);
  let t_faulty = Net.Cluster.now cluster in

  Printf.printf
    "\nsimulated completion time: %.3f s fault-free, %.3f s with one node \
     failure\n"
    t_clean t_faulty;

  print_endline "\nCluster events around the failure:";
  let interesting e =
    let has sub =
      let n = String.length sub and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
      go 0
    in
    has "FAILED" || has "resurrected" || has "forced rollback"
    || has "checkpoint"
  in
  let shown = ref 0 in
  List.iter
    (fun e ->
      if interesting e && !shown < 14 then begin
        incr shown;
        Printf.printf "  %s\n" e
      end)
    (Net.Cluster.events cluster);

  let ok =
    Array.for_all2
      (fun g s -> match s with Some n -> n = g | None -> false)
      golden (Mcc.Gridapp.checksums d)
  in
  Printf.printf "\nverification vs golden model: %s\n"
    (if ok then "EXACT MATCH" else "MISMATCH")
