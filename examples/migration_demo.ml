(* Whole-process migration between heterogeneous nodes.

     dune exec examples/migration_demo.exe

   A long-running process starts on a little-endian 32-bit node, migrates
   mid-computation to a big-endian 64-bit node (the image ships FIR and
   is re-typechecked and recompiled on arrival, Section 4.2), finishes
   there, and the answer is unchanged.  Also shows the suspend and
   checkpoint protocols against shared storage and the migration cost
   records the cluster keeps. *)

let worker =
  {|
int work(int from, int to, int acc) {
  int i;
  for (i = from; i < to; i = i + 1) {
    acc = acc + i * i % 1000;
  }
  return acc;
}
int main() {
  int *state = alloc_int(3);
  state[0] = work(0, 5000, 0);
  print_str("phase 1 done on the first node\n");
  migrate("mcc://node1");
  // seamlessly resumes here on node1
  state[1] = work(5000, 10000, state[0]);
  print_str("phase 2 done after migration\n");
  return state[1] % 100000;
}
|}

let () =
  print_endline "Whole-process migration demo";
  print_endline "============================\n";

  (* a two-node cluster with DIFFERENT architectures *)
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 2;
        arches = [| Vm.Arch.cisc32; Vm.Arch.risc64 |] }
  in
  let fir = Mcc.Api.compile_exn (Mcc.Api.C worker) in
  let pid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 ~engine:`Masm fir in
  let _ = Net.Cluster.run cluster in

  (* the source process was terminated by the successful migration; its
     successor holds the rank *)
  (match Net.Cluster.entry_of_rank cluster 0 with
  | Some e ->
    Printf.printf "origin pid %d on node0 (cisc32), successor pid %d on %s\n"
      pid e.Net.Cluster.proc.Vm.Process.pid
      (Net.Cluster.node cluster e.Net.Cluster.node_id).Net.Cluster.node_name;
    (match e.Net.Cluster.proc.Vm.Process.status with
    | Vm.Process.Exited n -> Printf.printf "final result: %d\n" n
    | s ->
      Printf.printf "unexpected status: %s\n"
        (match s with
        | Vm.Process.Trapped m -> "trapped " ^ m
        | Vm.Process.Running -> "running"
        | _ -> "?"))
  | None -> print_endline "rank lost!");

  print_endline "\nmigration records:";
  List.iter
    (fun mr ->
      Printf.printf
        "  pid %d: %s, %d bytes; pack %.4fs + transfer %.4fs + recompile \
         %.4fs (simulated)\n"
        mr.Net.Cluster.mr_pid
        (match mr.Net.Cluster.mr_kind with
        | `Migrate -> "migrate"
        | `Suspend -> "suspend"
        | `Checkpoint -> "checkpoint")
        mr.Net.Cluster.mr_bytes mr.Net.Cluster.mr_pack_s
        mr.Net.Cluster.mr_transfer_s mr.Net.Cluster.mr_compile_s)
    (Net.Cluster.migrations cluster);

  (* ---- suspend to storage and resume later ---- *)
  print_endline "\nsuspend / resume from shared storage:";
  let suspender =
    Mcc.Api.compile_exn
      (Mcc.Api.C
         {|
int main() {
  int x = 1234;
  migrate("suspend://frozen.img");
  // executes only when the image is resumed
  return x + 1;
}
|})
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 suspender in
  let _ = Net.Cluster.run cluster in
  (match Net.Cluster.entry_of_pid cluster pid with
  | Some e ->
    Printf.printf "  suspended process status: %s\n"
      (match e.Net.Cluster.proc.Vm.Process.status with
      | Vm.Process.Exited _ -> "terminated (image written)"
      | _ -> "?")
  | None -> ());
  Printf.printf "  image on storage: %s (%d bytes)\n"
    (if Net.Storage.exists (Net.Cluster.storage cluster) "frozen.img" then
       "yes"
     else "no")
    (Option.value ~default:0
       (Net.Storage.size (Net.Cluster.storage cluster) "frozen.img"));
  (match Net.Cluster.resurrect cluster ~node_id:1 ~path:"frozen.img" with
  | Ok new_pid ->
    let _ = Net.Cluster.run cluster in
    (match Net.Cluster.entry_of_pid cluster new_pid with
    | Some e ->
      Printf.printf "  resumed on node1 as pid %d -> %s\n" new_pid
        (match e.Net.Cluster.proc.Vm.Process.status with
        | Vm.Process.Exited n -> Printf.sprintf "exit %d" n
        | _ -> "?")
    | None -> ())
  | Error m -> Printf.printf "  resume failed: %s\n" m)
