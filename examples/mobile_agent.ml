(* A mobile agent (paper, Section 7: "migration and speculation
   primitives allow for a number of interesting programming concepts,
   such as dynamic transparent load balancing and mobile agents").

     dune exec examples/mobile_agent.exe

   One process hops across every node of a heterogeneous cluster,
   carrying its accumulated state with it: at each stop it does some
   local work, records its current pid (which changes with every hop —
   the process identity is reconstructed by each node's migration
   daemon), and migrates on.  The FIR travels, each daemon re-typechecks
   and recompiles for ITS architecture, and the agent's heap follows
   byte-for-byte. *)

let agent_source =
  {|
int work(int seed, int rounds) {
  int acc = seed;
  int i;
  for (i = 0; i < rounds; i = i + 1) {
    acc = (acc * 31 + i) % 1000003;
  }
  return acc;
}

int main() {
  int *log = alloc_int(8);   // pids observed along the tour
  int *sums = alloc_int(8);  // work results computed at each stop
  int stop = 0;

  log[stop] = pid();
  sums[stop] = work(7, 2000);
  stop = stop + 1;
  migrate("mcc://node1");

  log[stop] = pid();
  sums[stop] = work(sums[stop - 1], 2000);
  stop = stop + 1;
  migrate("mcc://node2");

  log[stop] = pid();
  sums[stop] = work(sums[stop - 1], 2000);
  stop = stop + 1;
  migrate("mcc://node3");

  log[stop] = pid();
  sums[stop] = work(sums[stop - 1], 2000);
  stop = stop + 1;

  print_str("tour complete; pids along the way: ");
  int i;
  for (i = 0; i < stop; i = i + 1) {
    print_int(log[i]);
    print_str(" ");
  }
  print_nl();
  return sums[stop - 1];
}
|}

let () =
  print_endline "Mobile agent touring a heterogeneous cluster";
  print_endline "============================================\n";
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        arches = [| Vm.Arch.cisc32; Vm.Arch.risc64 |] }
  in
  let fir = Mcc.Api.compile_exn (Mcc.Api.C agent_source) in
  let pid0 = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 ~engine:`Masm fir in
  Printf.printf "agent born as pid %d on node0 (cisc32)\n\n" pid0;
  let _ = Net.Cluster.run cluster in

  (* the rank follows the agent through its successive identities *)
  (match Net.Cluster.entry_of_rank cluster 0 with
  | Some e ->
    let node = Net.Cluster.node cluster e.Net.Cluster.node_id in
    Printf.printf "%s" (Vm.Process.output e.Net.Cluster.proc);
    (match e.Net.Cluster.proc.Vm.Process.status with
    | Vm.Process.Exited n ->
      Printf.printf
        "agent finished on %s (%s) as pid %d with result %d\n"
        node.Net.Cluster.node_name node.Net.Cluster.node_arch.Vm.Arch.name
        e.Net.Cluster.proc.Vm.Process.pid n
    | s ->
      Printf.printf "unexpected final status: %s\n"
        (match s with
        | Vm.Process.Trapped m -> "trapped " ^ m
        | Vm.Process.Running -> "running"
        | _ -> "?"))
  | None -> print_endline "agent lost!");

  print_endline "\nhops (each one verified + recompiled by the target):";
  List.iter
    (fun mr ->
      if mr.Net.Cluster.mr_kind = `Migrate then
        Printf.printf
          "  pid %d: %d bytes, transfer %.4fs + recompile %.4fs (simulated)\n"
          mr.Net.Cluster.mr_pid mr.Net.Cluster.mr_bytes
          mr.Net.Cluster.mr_transfer_s mr.Net.Cluster.mr_compile_s)
    (Net.Cluster.migrations cluster);

  (* sanity: the same program run WITHOUT migration gives the same
     result (migration is computationally invisible) *)
  let local =
    let proc = Vm.Process.create fir in
    match Vm.Interp.run proc with
    | Vm.Process.Migrating _ ->
      (* service every hop locally as a failed migration *)
      let rec go () =
        match proc.Vm.Process.status with
        | Vm.Process.Migrating _ ->
          Vm.Process.migration_failed proc;
          ignore (Vm.Interp.run proc);
          go ()
        | Vm.Process.Exited n -> n
        | _ -> -1
      in
      go ()
    | Vm.Process.Exited n -> n
    | _ -> -1
  in
  (match Net.Cluster.entry_of_rank cluster 0 with
  | Some e -> (
    match e.Net.Cluster.proc.Vm.Process.status with
    | Vm.Process.Exited n ->
      Printf.printf
        "\nsame computation without migrating: %d (%s)\n" local
        (if n = local then "identical — migration is invisible"
         else "MISMATCH!")
    | _ -> ())
  | None -> ())
