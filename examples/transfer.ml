(* Figure 1: the money-transfer example.

     dune exec examples/transfer.exe

   Swaps the contents of two account objects using read/write operations
   that can fail.  The traditional version needs hand-written undo code
   and STILL leaves an inconsistent state when the compensating write
   fails; the speculative version separates recovery from the transfer
   logic and is atomic by construction.  We sweep the fault-injection
   probability and count outcomes. *)

(* Traditional version, transcribed from the paper's Figure 1 (top).
   The undo path itself uses the faulty write, so a double fault wedges
   the system in an inconsistent state; the paper marks this case
   "Unrecoverable error... Try again" — we bound the retries. *)
let traditional_src =
  {|
int transfer(int obj1, int obj2, int k) {
  int *buf1 = alloc_int(k);
  int *buf2 = alloc_int(k);
  if (obj_read(obj1, buf1, k) != k) return 0;
  if (obj_read(obj2, buf2, k) != k) return 0;
  if (obj_write(obj1, buf2, k) != k) return 0;
  if (obj_write(obj2, buf1, k) != k) {
    // undo the first write by hand
    int tries = 0;
    while (obj_write(obj1, buf1, k) != k) {
      tries = tries + 1;
      if (tries > 3) { return 0 - 1; } // inconsistent state!
    }
    return 0;
  }
  return 1;
}
int main() { return transfer(1, 2, 4); }
|}

(* Speculative version (Figure 1, bottom): recovery is the rollback. *)
let speculative_src =
  {|
int transfer(int obj1, int obj2, int k) {
  int *buf1 = alloc_int(k);
  int *buf2 = alloc_int(k);
  int specid = speculate();
  if (specid > 0) {
    if (obj_read(obj1, buf1, k) != k) abort(specid);
    if (obj_read(obj2, buf2, k) != k) abort(specid);
    if (obj_write(obj1, buf2, k) != k) abort(specid);
    if (obj_write(obj2, buf1, k) != k) abort(specid);
    commit(specid);
    return 1;
  }
  return 0;
}
int main() { return transfer(1, 2, 4); }
|}

type tally = {
  mutable ok : int;
  mutable clean_fail : int;
  mutable inconsistent : int;
}

(* One run against a fresh fault-injected object store; consistency means
   the two objects hold either the original or the fully swapped values. *)
let run_once fir ~fail_prob ~seed =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1; seed } in
  Net.Cluster.set_object cluster 1 "AAAA";
  Net.Cluster.set_object cluster 2 "BBBB";
  Net.Cluster.set_object_failure_probability cluster fail_prob;
  let pid = Net.Cluster.spawn cluster ~node_id:0 ~seed fir in
  let _ = Net.Cluster.run cluster in
  let status =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> e.Net.Cluster.proc.Vm.Process.status
    | None -> Vm.Process.Trapped "lost"
  in
  let o1 = Option.get (Net.Cluster.get_object cluster 1) in
  let o2 = Option.get (Net.Cluster.get_object cluster 2) in
  let swapped = String.equal o1 "BBBB" && String.equal o2 "AAAA" in
  let untouched = String.equal o1 "AAAA" && String.equal o2 "BBBB" in
  match status with
  | Vm.Process.Exited 1 when swapped -> `Ok
  | Vm.Process.Exited 0 when untouched -> `Clean_fail
  | Vm.Process.Exited _ | Vm.Process.Trapped _ | Vm.Process.Running
  | Vm.Process.Migrating _ ->
    `Inconsistent

let sweep name fir probs runs =
  Printf.printf "%s:\n" name;
  Printf.printf "  %-8s %-10s %-12s %-14s\n" "p(fail)" "success"
    "clean fail" "INCONSISTENT";
  List.iter
    (fun p ->
      let t = { ok = 0; clean_fail = 0; inconsistent = 0 } in
      for seed = 1 to runs do
        match run_once fir ~fail_prob:p ~seed with
        | `Ok -> t.ok <- t.ok + 1
        | `Clean_fail -> t.clean_fail <- t.clean_fail + 1
        | `Inconsistent -> t.inconsistent <- t.inconsistent + 1
      done;
      Printf.printf "  %-8.2f %-10d %-12d %-14d\n" p t.ok t.clean_fail
        t.inconsistent)
    probs;
  print_newline ()

let () =
  print_endline "Figure 1: atomic transfer between two faulty objects";
  print_endline "====================================================\n";
  let traditional = Mcc.Api.compile_exn (Mcc.Api.C traditional_src) in
  let speculative = Mcc.Api.compile_exn (Mcc.Api.C speculative_src) in
  let probs = [ 0.0; 0.05; 0.15; 0.30; 0.50 ] in
  let runs = 300 in
  sweep "traditional (hand-written undo)" traditional probs runs;
  sweep "speculative (Figure 1, bottom)" speculative probs runs;
  print_endline
    "The speculative version never reaches an inconsistent state: a failed\n\
     operation rolls the whole transfer back, and the recovery code is\n\
     not tangled into the transfer logic.";
