(* Tests for the mini-Pascal front-end: execution semantics (including
   Pascal's implicit real promotion and result-variable functions),
   rejection, both engines, the MCC primitives, and migration. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let compile src =
  match Pascal.Driver.compile src with
  | Ok fir -> fir
  | Error e ->
    Alcotest.failf "compile failed: %s" (Pascal.Driver.error_to_string e)

let run_p src =
  let fir = compile src in
  let proc = Vm.Process.create fir in
  match Vm.Interp.run proc with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "trapped: %s" m
  | _ -> Alcotest.fail "did not exit"

let run_p_emu src =
  let fir = compile src in
  let proc = Vm.Process.create ~arch:Vm.Arch.risc64 fir in
  let emu =
    Vm.Emulator.create (Vm.Codegen.compile ~arch:Vm.Arch.risc64 fir) proc
  in
  match Vm.Emulator.run emu with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "emulator trapped: %s" m
  | _ -> Alcotest.fail "emulator did not exit"

let expect_error phase src =
  match Pascal.Driver.compile src with
  | Ok _ -> Alcotest.failf "expected a %s error" phase
  | Error e ->
    let got =
      match e.Pascal.Driver.err_phase with
      | `Lex -> "lex"
      | `Parse -> "parse"
      | `Translate -> "translate"
      | `C -> "c"
    in
    check_str "error phase" phase got

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let test_functions_and_results () =
  let n, out =
    run_p
      {|
program fibdemo;
var total: integer;

function fib(n: integer): integer;
begin
  if n < 2 then
    fib := n
  else
    fib := fib(n - 1) + fib(n - 2)
end;

begin
  total := fib(12);
  writeln('fib(12) = ', total);
  halt(total)
end.
|}
  in
  check_int "fib(12)" 144 n;
  check_str "writeln" "fib(12) = 144\n" out

let test_procedures () =
  let n, out =
    run_p
      {|
program procs;

procedure shout(x: integer; loud: boolean);
begin
  if loud then
    writeln(x * 10)
  else
    writeln(x)
end;

begin
  shout(4, true);
  shout(4, false);
  halt(0)
end.
|}
  in
  check_int "exit" 0 n;
  check_str "output" "40\n4\n" out

let test_loops_and_arrays () =
  let n, _ =
    run_p
      {|
program loops;
var i, acc: integer;
    a: array[0..9] of integer;
begin
  acc := 0;
  for i := 0 to 9 do
    a[i] := i * i;
  for i := 9 downto 0 do
    acc := acc + a[i];
  while acc mod 10 <> 5 do
    acc := acc - 1;
  halt(acc)
end.
|}
  in
  check_int "sum of squares" 285 n

let test_real_promotion () =
  let n, _ =
    run_p
      {|
program reals;
var x: real; n: integer;
begin
  x := 3 / 2;          { Pascal / is real division }
  x := x * 2.0 + 1;    { integer promoted }
  n := trunc(sqrt(16.0)) + trunc(x);
  halt(n)
end.
|}
  in
  check_int "promotion and real division" 8 n

let test_div_mod_booleans () =
  let n, _ =
    run_p
      {|
program dm;
var n: integer; ok: boolean;
begin
  n := 17 div 5 * 100 + 17 mod 5;
  ok := (n > 300) and not (n = 303) or false;
  if ok then
    halt(n)
  else
    halt(0 - n)
end.
|}
  in
  check_int "div/mod/booleans" 302 n

let test_open_array_params () =
  let n, _ =
    run_p
      {|
program openarr;
var data: array[0..4] of integer;
    i: integer;

function total(a: array of integer; n: integer): integer;
var i, acc: integer;
begin
  acc := 0;
  for i := 0 to n - 1 do
    acc := acc + a[i];
  total := acc
end;

begin
  for i := 0 to 4 do
    data[i] := i + 1;
  halt(total(data, 5))
end.
|}
  in
  check_int "open array parameter" 15 n

let test_abs_random () =
  let n, _ =
    run_p
      {|
program absr;
var a, b: integer;
begin
  a := abs(0 - 12) + abs(12);
  b := random(10);
  if (b >= 0) and (b < 10) then
    halt(a)
  else
    halt(0 - 1)
end.
|}
  in
  check_int "abs and random" 24 n

(* ------------------------------------------------------------------ *)
(* MCC primitives from Pascal                                          *)
(* ------------------------------------------------------------------ *)

let test_speculation_pascal () =
  let n, out =
    run_p
      {|
program spec;
var cell: array[0..0] of integer;
    specid: integer;
begin
  cell[0] := 5;
  specid := speculate;
  if specid > 0 then
  begin
    cell[0] := 99;
    abort(specid)
  end;
  writeln('restored: ', cell[0]);
  halt(cell[0])
end.
|}
  in
  check_int "rollback restored the array" 5 n;
  check_str "ran the abort path once" "restored: 5\n" out

let test_commit_pascal () =
  let n, _ =
    run_p
      {|
program spec2;
var cell: array[0..0] of integer;
    specid: integer;
begin
  specid := speculate;
  if specid > 0 then
  begin
    cell[0] := 77;
    commit(specid)
  end;
  halt(cell[0])
end.
|}
  in
  check_int "committed write survives" 77 n

let test_migration_pascal () =
  let fir =
    compile
      {|
program mig;
var data: array[0..49] of integer;
    i, acc: integer;
begin
  for i := 0 to 49 do
    data[i] := i;
  migrate('mcc://elsewhere');
  acc := 0;
  for i := 0 to 49 do
    acc := acc + data[i];
  halt(acc)
end.
|}
  in
  let proc = Vm.Process.create fir in
  (match Vm.Interp.run proc with
  | Vm.Process.Migrating req ->
    check_str "target" "mcc://elsewhere" req.Vm.Process.m_target
  | _ -> Alcotest.fail "expected a migration request");
  let packed = Migrate.Pack.pack_request proc in
  match
    Migrate.Pack.unpack ~arch:Vm.Arch.risc64 packed.Migrate.Pack.p_bytes
  with
  | Error m -> Alcotest.failf "unpack failed: %s" m
  | Ok (proc', masm, _linked, _) -> (
    let emu = Vm.Emulator.create masm proc' in
    match Vm.Emulator.run emu with
    | Vm.Process.Exited n ->
      check_int "Pascal process migrated heterogeneously" 1225 n
    | _ -> Alcotest.fail "resumed Pascal process failed")

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let test_errors () =
  expect_error "lex" "program p; begin halt(0) end. @";
  expect_error "lex" "program p; begin writeln('unterminated) end.";
  expect_error "parse" "program p; begin halt(0) end";
  expect_error "parse" "begin halt(0) end.";
  expect_error "translate" "program p; begin halt(x) end.";
  expect_error "translate"
    "program p; var x: integer; begin x := 1.5; halt(0) end.";
  expect_error "translate"
    "program p; var x: integer; begin if x then halt(0) end.";
  expect_error "translate"
    "program p; function f(n: integer): integer; begin f := n end; begin \
     halt(f(1, 2)) end.";
  expect_error "translate"
    "program p; procedure q; begin halt(0) end; begin q end.";
  (* array lower bounds must be 0 in the subset *)
  expect_error "parse"
    "program p; var a: array[1..5] of integer; begin halt(0) end."

(* ------------------------------------------------------------------ *)
(* Engines agree                                                       *)
(* ------------------------------------------------------------------ *)

let test_differential () =
  List.iter
    (fun src ->
      let ni, oi = run_p src in
      let ne, oe = run_p_emu src in
      check_int "interp = emulator" ni ne;
      check_str "output matches" oi oe)
    [
      {|
program a;
var i, acc: integer;
begin
  acc := 1;
  for i := 1 to 10 do acc := acc * 2 mod 1000;
  halt(acc)
end.
|};
      {|
program b;
function gcd(a: integer; b: integer): integer;
begin
  if b = 0 then gcd := a else gcd := gcd(b, a mod b)
end;
begin
  halt(gcd(462, 1071))
end.
|};
    ]

let test_api_integration () =
  match Mcc.Api.compile_pascal "program p; begin halt(41 + 1) end." with
  | Error m -> Alcotest.failf "Api.compile_pascal: %s" m
  | Ok fir ->
    check "runs through the facade" true
      (Mcc.Api.exit_code (Mcc.Api.run fir) = Ok 42)

let suites =
  [
    ( "pascal.exec",
      [
        Alcotest.test_case "functions and result assignment" `Quick
          test_functions_and_results;
        Alcotest.test_case "procedures" `Quick test_procedures;
        Alcotest.test_case "for/while and arrays" `Quick
          test_loops_and_arrays;
        Alcotest.test_case "real promotion and / division" `Quick
          test_real_promotion;
        Alcotest.test_case "div/mod and booleans" `Quick
          test_div_mod_booleans;
        Alcotest.test_case "open array parameters" `Quick
          test_open_array_params;
        Alcotest.test_case "abs and random" `Quick test_abs_random;
      ] );
    ( "pascal.primitives",
      [
        Alcotest.test_case "speculate/abort" `Quick test_speculation_pascal;
        Alcotest.test_case "commit" `Quick test_commit_pascal;
        Alcotest.test_case "heterogeneous migration" `Quick
          test_migration_pascal;
      ] );
    ("pascal.reject", [ Alcotest.test_case "errors" `Quick test_errors ]);
    ( "pascal.engines",
      [
        Alcotest.test_case "interp = emulator" `Quick test_differential;
        Alcotest.test_case "facade integration" `Quick test_api_integration;
      ] );
  ]
