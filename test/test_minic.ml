(* Tests for the mini-C front-end: lexing, parsing, typechecking, CPS
   lowering, execution on both engines, the speculation/migration
   builtins, and interop with the simulated cluster. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let compile src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "compile failed: %s" (Minic.Driver.error_to_string e)

let run_c ?seed src =
  let fir = compile src in
  let proc = Vm.Process.create ?seed fir in
  match Vm.Interp.run proc with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "trapped: %s" m
  | _ -> Alcotest.fail "did not exit"

let run_c_emu ?(arch = Vm.Arch.cisc32) src =
  let fir = compile src in
  let proc = Vm.Process.create ~arch fir in
  let emu = Vm.Emulator.create (Vm.Codegen.compile ~arch fir) proc in
  match Vm.Emulator.run emu with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "emulator trapped: %s" m
  | _ -> Alcotest.fail "emulator did not exit"

let expect_error phase src =
  match Minic.Driver.compile src with
  | Ok _ -> Alcotest.failf "expected a %s error" phase
  | Error e ->
    let got =
      match e.Minic.Driver.err_phase with
      | `Lex -> "lex"
      | `Parse -> "parse"
      | `Type -> "type"
      | `Lower -> "lower"
      | `Fir -> "fir"
    in
    check_str "error phase" phase got

(* ------------------------------------------------------------------ *)
(* Basic programs                                                      *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  let n, _ = run_c "int main() { return 2 + 3 * 4 - 20 / 4 % 3; }" in
  check_int "precedence" 12 n;
  let n, _ = run_c "int main() { return (2 + 3) * 4; }" in
  check_int "parens" 20 n;
  let n, _ = run_c "int main() { return 1 << 5 | 3 & 1; }" in
  check_int "bit ops" 33 n;
  let n, _ = run_c "int main() { return -7; }" in
  check_int "unary minus" (-7) n

let test_float () =
  let n, out =
    run_c
      {|
int main() {
  float x = 1.5;
  float y = x * 4.0 + 0.25;
  print_float(y); print_nl();
  float r = sqrtf(16.0);
  return (int)(y + r);
}
|}
  in
  check_int "float compute" 10 n;
  check_str "float output" "6.25\n" out

let test_comparisons_are_ints () =
  let n, _ =
    run_c "int main() { return (3 < 4) + (4 < 3) + (2 == 2) * 10; }"
  in
  check_int "0/1 comparisons" 11 n

let test_logical () =
  let n, _ =
    run_c
      "int main() { return (1 && 2) + (0 || 5 > 2) * 10 + (!0) * 100 + (!7) \
       * 1000; }"
  in
  check_int "logical ops" 111 n

let test_while_break_continue () =
  let n, _ =
    run_c
      {|
int main() {
  int i = 0;
  int acc = 0;
  while (1) {
    i = i + 1;
    if (i > 100) break;
    if (i % 2 == 0) continue;
    acc = acc + i;
  }
  return acc; // 1 + 3 + ... + 99 = 2500
}
|}
  in
  check_int "while with break/continue" 2500 n

let test_for_loop () =
  let n, _ =
    run_c
      {|
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) acc = acc + i * i;
  return acc;
}
|}
  in
  check_int "for loop" 285 n

let test_nested_loops () =
  let n, _ =
    run_c
      {|
int main() {
  int total = 0;
  int i; int j;
  for (i = 0; i < 5; i = i + 1) {
    for (j = 0; j < 5; j = j + 1) {
      if (j > i) break;
      total = total + 1;
    }
  }
  return total; // 1+2+3+4+5
}
|}
  in
  check_int "nested loops with break" 15 n

let test_recursion () =
  let n, _ =
    run_c
      {|
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main() { return ack(2, 3); }
|}
  in
  check_int "ackermann(2,3)" 9 n

let test_nested_call_args () =
  (* nested calls in argument positions exercise the temp-spilling rules *)
  let n, _ =
    run_c
      {|
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main() {
  return add(mul(2, add(1, 2)), add(mul(3, 4), mul(add(1, 1), 5)));
}
|}
  in
  check_int "deeply nested calls" 28 n

let test_pointers () =
  let n, _ =
    run_c
      {|
int sum(int *a, int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) acc = acc + a[i];
  return acc;
}
int main() {
  int *a = alloc_int(10);
  int i;
  for (i = 0; i < 10; i = i + 1) a[i] = i * i;
  int *p = a + 5;
  return sum(a, 10) + p[0];
}
|}
  in
  check_int "arrays and pointer arithmetic" (285 + 25) n

let test_strings () =
  let n, out =
    run_c
      {|
int main() {
  char *s = "hi\n";
  print_str(s);
  print_str("bye");
  return s[0]; // 'h' = 104
}
|}
  in
  check_int "string byte read" 104 n;
  check_str "string output" "hi\nbye" out

let test_void_functions () =
  let n, out =
    run_c
      {|
void shout(int x) {
  print_int(x);
  print_nl();
}
int main() {
  shout(7);
  shout(8);
  return 0;
}
|}
  in
  check_int "void call" 0 n;
  check_str "void output" "7\n8\n" out

let test_uninitialized_defaults () =
  let n, _ =
    run_c "int main() { int x; float f; return x + (int)f; }"
  in
  check_int "locals default to zero" 0 n

let test_rand_seeded () =
  let src = "int main() { return rand(1000) * 1000 + rand(1000); }" in
  let a, _ = run_c ~seed:3 src in
  let b, _ = run_c ~seed:3 src in
  let c, _ = run_c ~seed:4 src in
  check "deterministic per seed" true (a = b);
  check "seed matters" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let test_errors () =
  expect_error "lex" "int main() { return 1; } @";
  expect_error "lex" "int main() { char *s = \"unterminated; }";
  expect_error "parse" "int main() { return 1 }";
  expect_error "parse" "int main( { return 1; }";
  expect_error "type" "int main() { return x; }";
  expect_error "type" "int main() { int x = 1.5; return 0; }";
  expect_error "type" "int main() { int x; int x; return 0; }";
  expect_error "type" "int main() { break; }";
  expect_error "type" "int f() { return 0; } int main() { return f(1); }";
  expect_error "type" "float main() { return 0.0; }";
  expect_error "type" "int main() { return undefined_fun(3); }";
  expect_error "type" "int main() { if (1.5) return 1; return 0; }";
  expect_error "type" "void f() {} int main() { return 1 + f(); }"

let test_runtime_safety () =
  (* out-of-bounds access traps instead of corrupting memory *)
  let fir = compile "int main() { int *a = alloc_int(2); return a[5]; }" in
  let proc = Vm.Process.create fir in
  (match Vm.Interp.run proc with
  | Vm.Process.Trapped _ -> ()
  | _ -> Alcotest.fail "out-of-bounds read did not trap");
  let fir = compile "int main() { int *p; return p[0]; }" in
  let proc = Vm.Process.create fir in
  match Vm.Interp.run proc with
  | Vm.Process.Trapped _ -> ()
  | _ -> Alcotest.fail "null dereference did not trap"

(* ------------------------------------------------------------------ *)
(* Speculation from C (Figure 1 semantics)                             *)
(* ------------------------------------------------------------------ *)

let test_speculate_abort () =
  let n, out =
    run_c
      {|
int main() {
  int *cell = alloc_int(1);
  cell[0] = 5;
  int specid = speculate();
  if (specid > 0) {
    cell[0] = 99;
    abort(specid);
    return 111; // unreachable
  }
  print_str("rolled back"); print_nl();
  return cell[0] * 10 + (0 - specid); // specid = -level on re-entry
}
|}
  in
  check_int "write undone, re-entry code visible" 51 n;
  check_str "abort path runs once" "rolled back\n" out

let test_speculate_commit () =
  let n, _ =
    run_c
      {|
int main() {
  int *cell = alloc_int(1);
  int specid = speculate();
  if (specid > 0) {
    cell[0] = 77;
    commit(specid);
  }
  return cell[0];
}
|}
  in
  check_int "committed write survives" 77 n

let test_nested_speculation_c () =
  let n, _ =
    run_c
      {|
int main() {
  int *cell = alloc_int(1);
  cell[0] = 1;
  int outer = speculate();
  if (outer > 0) {
    cell[0] = 2;
    int inner = speculate();
    if (inner > 0) {
      cell[0] = 3;
      commit(inner);       // folds into outer
      abort(outer);        // undoes BOTH writes
      return 111;
    }
    return 222; // inner abort: not taken
  }
  return cell[0] * 100; // outer re-entry: cell restored to 1
}
|}
  in
  check_int "nested commit-then-abort" 100 n

(* Retried state rolls back, so a retry counter must be threaded through
   the rollback code (the paper: "this is currently the only way to carry
   state information across a rollback"). *)
let test_retry_loop () =
  let n, _ =
    run_c
      {|
int main() {
  int specid = speculate();
  // on re-entry specid is -level; use it as the retry counter's sign
  if (specid > 0) {
    abort(specid); // first pass always aborts
  }
  // second pass: specid < 0
  commit(0 - specid);
  return 0 - specid;
}
|}
  in
  check_int "rollback code carries state" 1 n

let test_speculation_with_gc_c () =
  (* allocate heavily inside a speculation, then abort: dirty state must
     be restored even across collections *)
  let n, _ =
    run_c
      {|
int main() {
  int *data = alloc_int(50);
  int i;
  for (i = 0; i < 50; i = i + 1) data[i] = i;
  int specid = speculate();
  if (specid > 0) {
    for (i = 0; i < 50; i = i + 1) data[i] = 0 - 1;
    int j;
    for (j = 0; j < 20000; j = j + 1) {
      int *junk = alloc_int(4);
      junk[0] = j;
    }
    abort(specid);
  }
  int acc = 0;
  for (i = 0; i < 50; i = i + 1) acc = acc + data[i];
  return acc; // 0+1+...+49
}
|}
  in
  check_int "rollback across GC pressure" 1225 n

(* ------------------------------------------------------------------ *)
(* Migration from C                                                    *)
(* ------------------------------------------------------------------ *)

let test_migrate_roundtrip_c () =
  let fir =
    compile
      {|
int main() {
  int *data = alloc_int(100);
  int i;
  for (i = 0; i < 100; i = i + 1) data[i] = i;
  int before = data[99];
  migrate("mcc://other");
  // resumes here on the target with all locals intact
  int acc = 0;
  for (i = 0; i < 100; i = i + 1) acc = acc + data[i];
  return acc + before;
}
|}
  in
  let proc = Vm.Process.create fir in
  (match Vm.Interp.run proc with
  | Vm.Process.Migrating req ->
    check_str "target" "mcc://other" req.Vm.Process.m_target
  | _ -> Alcotest.fail "expected a migration request");
  let packed = Migrate.Pack.pack_request proc in
  (match
     Migrate.Pack.unpack ~arch:Vm.Arch.risc64 packed.Migrate.Pack.p_bytes
   with
  | Error m -> Alcotest.failf "unpack failed: %s" m
  | Ok (proc', masm, _linked, _) ->
    let emu = Vm.Emulator.create masm proc' in
    (match Vm.Emulator.run emu with
    | Vm.Process.Exited n ->
      check_int "C locals survive heterogeneous migration" (4950 + 99) n
    | Vm.Process.Trapped m -> Alcotest.failf "resumed process trapped: %s" m
    | _ -> Alcotest.fail "resumed process did not exit"));
  (* and the failure path continues locally *)
  Vm.Process.migration_failed proc;
  match Vm.Interp.run proc with
  | Vm.Process.Exited n -> check_int "local continuation" (4950 + 99) n
  | _ -> Alcotest.fail "local continuation failed"

(* ------------------------------------------------------------------ *)
(* Engines agree                                                       *)
(* ------------------------------------------------------------------ *)

let differential_programs =
  [
    "int main() { return 2 + 3 * 4; }";
    "int f(int x) { return x * x; } int main() { return f(f(3)); }";
    {|
int main() {
  int *a = alloc_int(20);
  int i;
  for (i = 0; i < 20; i = i + 1) a[i] = i * 3;
  int acc = 0;
  for (i = 0; i < 20; i = i + 1) acc = acc + a[i];
  return acc;
}
|};
    {|
int main() {
  int *cell = alloc_int(1);
  cell[0] = 5;
  int s = speculate();
  if (s > 0) { cell[0] = 9; abort(s); }
  return cell[0];
}
|};
  ]

let test_differential () =
  List.iter
    (fun src ->
      let ni, oi = run_c src in
      let ne, oe = run_c_emu src in
      check_int "interp = emulator (exit)" ni ne;
      check_str "interp = emulator (output)" oi oe;
      let nr, _ = run_c_emu ~arch:Vm.Arch.risc64 src in
      check_int "cisc32 = risc64" ni nr)
    differential_programs

(* ------------------------------------------------------------------ *)
(* Cluster interop                                                     *)
(* ------------------------------------------------------------------ *)

let test_c_workers_on_cluster () =
  let sender =
    compile
      {|
int main() {
  int *buf = alloc_int(4);
  int i;
  for (i = 0; i < 4; i = i + 1) buf[i] = (i + 1) * 11;
  return msg_send_int(1, 7, buf, 4);
}
|}
  in
  let receiver =
    compile
      {|
int main() {
  int *buf = alloc_int(4);
  int r = msg_try_recv_int(0, 7, buf, 4);
  while (r == 0 - 1) {
    r = msg_try_recv_int(0, 7, buf, 4);
  }
  return buf[0] + buf[1] + buf[2] + buf[3];
}
|}
  in
  check "C programs typecheck against cluster externs" true
    (Fir.Typecheck.well_typed ~strict:true
       ~externs:Net.Cluster.extern_signatures receiver);
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let spid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender in
  let rpid = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver in
  let _ = Net.Cluster.run cluster in
  let status pid =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> e.Net.Cluster.proc.Vm.Process.status
    | None -> Alcotest.fail "pid lost"
  in
  check "sender ok" true (status spid = Vm.Process.Exited 0);
  check "receiver summed" true (status rpid = Vm.Process.Exited 110)

let test_figure1_transfer () =
  (* the paper's Figure 1, speculative version, against the fault-injected
     object store *)
  let src =
    {|
int transfer(int obj1, int obj2, int k) {
  int *buf1 = alloc_int(k);
  int *buf2 = alloc_int(k);
  int specid = speculate();
  if (specid > 0) {
    if (obj_read(obj1, buf1, k) != k) abort(specid);
    if (obj_read(obj2, buf2, k) != k) abort(specid);
    if (obj_write(obj1, buf2, k) != k) abort(specid);
    if (obj_write(obj2, buf1, k) != k) abort(specid);
    commit(specid);
    return 1; // success
  }
  return 0;   // speculation aborted: failure, no partial writes
}
int main() {
  return transfer(1, 2, 4);
}
|}
  in
  let fir = compile src in
  check "figure 1 typechecks strictly" true
    (Fir.Typecheck.well_typed ~strict:true
       ~externs:Net.Cluster.extern_signatures fir);
  (* no faults: the transfer succeeds and swaps the objects *)
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  Net.Cluster.set_object cluster 1 "AAAA";
  Net.Cluster.set_object cluster 2 "BBBB";
  let pid = Net.Cluster.spawn cluster ~node_id:0 fir in
  let _ = Net.Cluster.run cluster in
  (match Net.Cluster.entry_of_pid cluster pid with
  | Some e ->
    check "transfer succeeded" true
      (e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Exited 1)
  | None -> Alcotest.fail "pid lost");
  check_str "obj1 swapped" "BBBB" (Option.get (Net.Cluster.get_object cluster 1));
  check_str "obj2 swapped" "AAAA" (Option.get (Net.Cluster.get_object cluster 2));
  (* certain faults: the transfer fails atomically, objects unchanged *)
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  Net.Cluster.set_object cluster 1 "AAAA";
  Net.Cluster.set_object cluster 2 "BBBB";
  Net.Cluster.set_object_failure_probability cluster 1.0;
  let pid = Net.Cluster.spawn cluster ~node_id:0 fir in
  let _ = Net.Cluster.run cluster in
  (match Net.Cluster.entry_of_pid cluster pid with
  | Some e ->
    check "transfer failed cleanly" true
      (e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Exited 0)
  | None -> Alcotest.fail "pid lost");
  check_str "obj1 untouched" "AAAA"
    (Option.get (Net.Cluster.get_object cluster 1));
  check_str "obj2 untouched" "BBBB"
    (Option.get (Net.Cluster.get_object cluster 2))

let suites =
  [
    ( "minic.exec",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "floats" `Quick test_float;
        Alcotest.test_case "comparisons yield ints" `Quick
          test_comparisons_are_ints;
        Alcotest.test_case "logical operators" `Quick test_logical;
        Alcotest.test_case "while/break/continue" `Quick
          test_while_break_continue;
        Alcotest.test_case "for loops" `Quick test_for_loop;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "recursion (ackermann)" `Quick test_recursion;
        Alcotest.test_case "nested call arguments" `Quick
          test_nested_call_args;
        Alcotest.test_case "pointers and arrays" `Quick test_pointers;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "void functions" `Quick test_void_functions;
        Alcotest.test_case "zero defaults" `Quick
          test_uninitialized_defaults;
        Alcotest.test_case "seeded rand" `Quick test_rand_seeded;
      ] );
    ( "minic.reject",
      [
        Alcotest.test_case "compile errors" `Quick test_errors;
        Alcotest.test_case "runtime safety" `Quick test_runtime_safety;
      ] );
    ( "minic.speculation",
      [
        Alcotest.test_case "abort restores state" `Quick test_speculate_abort;
        Alcotest.test_case "commit keeps state" `Quick test_speculate_commit;
        Alcotest.test_case "nested speculation" `Quick
          test_nested_speculation_c;
        Alcotest.test_case "rollback code carries state" `Quick
          test_retry_loop;
        Alcotest.test_case "rollback across GC" `Quick
          test_speculation_with_gc_c;
      ] );
    ( "minic.migration",
      [
        Alcotest.test_case "heterogeneous round-trip" `Quick
          test_migrate_roundtrip_c;
      ] );
    ( "minic.engines",
      [ Alcotest.test_case "interp = emulator" `Quick test_differential ] );
    ( "minic.cluster",
      [
        Alcotest.test_case "C workers exchange messages" `Quick
          test_c_workers_on_cluster;
        Alcotest.test_case "Figure 1 transfer" `Quick test_figure1_transfer;
      ] );
  ]
