(* Tests for the fault-injection subsystem and the resilient migration
   protocol: plan-file parsing, seeded determinism of every fault
   decision, loss-as-retransmission on the message path, partition
   windows, stall/crash scheduling, idempotent receive of duplicated
   migration hops, bounded retry with backoff, graceful degradation when
   the retry budget is exhausted, and whole-grid completion (verified
   against the golden model) under combined fault classes.

   The cluster-level tests take their fault seed from MCC_FAULT_SEED
   when set, so CI can run the suite under several seeds; the
   reproducibility tests compare two runs under the SAME seed and hold
   for any value. *)


let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_seed =
  match Sys.getenv_opt "MCC_FAULT_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with Failure _ -> 11)
  | None -> 11

let compile_c src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "C compile: %s" (Minic.Driver.error_to_string e)

let status_of cluster pid =
  match Net.Cluster.entry_of_pid cluster pid with
  | Some e -> e.Net.Cluster.proc.Vm.Process.status
  | None -> Alcotest.failf "pid %d lost" pid

(* Explicit test migrations go through the unified move API; unwrap the
   outcome back to the report shape the assertions read. *)
let move_running cluster ~pid ~node_id =
  match
    Net.Cluster.move cluster
      (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Explicit
         (Net.Cluster.Move.Running pid) ~dest:node_id)
  with
  | Ok { Net.Cluster.Move.mv_report = Some rep; _ } -> Ok rep
  | Ok { Net.Cluster.Move.mv_report = None; _ } ->
    Alcotest.fail "Running-subject move returned no report"
  | Error e -> Error e


let mk_cluster ?(nodes = 3) ?(seed = 1) ?detector ?(replication = 0) plan =
  Net.Cluster.create_cfg
    { Net.Cluster.Config.default with
      node_count = nodes;
      seed;
      net = Some (Net.Simnet.create ~latency_us:5.0 ());
      faults = plan;
      detector;
      replication }

(* ------------------------------------------------------------------ *)
(* Plan files                                                          *)
(* ------------------------------------------------------------------ *)

let sample_plan_text =
  "# demo fault plan\n\
   seed 7\n\
   loss 0.10\n\
   dup 0.05\n\
   jitter 0.0005\n\
   retransmit 0.001\n\
   crash_in_commit 0.25\n\
   partition 1 2 from 0.05 until 0.12\n\
   partition 0 3 from 0.2 until forever\n\
   stall 3 at 0.08 for 0.01\n\
   crash 1 at 0.15\n"

let test_plan_roundtrip () =
  match Net.Faults.parse_plan sample_plan_text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok p ->
    check_int "seed" 7 p.Net.Faults.f_seed;
    check "loss" true (p.Net.Faults.f_loss = 0.10);
    check "crash_in_commit" true (p.Net.Faults.f_crash_in_commit = 0.25);
    check_int "partitions" 2 (List.length p.Net.Faults.f_partitions);
    check "one never heals" true
      (List.exists
         (fun w -> w.Net.Faults.p_until = infinity)
         p.Net.Faults.f_partitions);
    check_int "stalls" 1 (List.length p.Net.Faults.f_stalls);
    check_int "crashes" 1 (List.length p.Net.Faults.f_crashes);
    (match Net.Faults.parse_plan (Net.Faults.plan_to_string p) with
    | Error m -> Alcotest.failf "re-parse: %s" m
    | Ok p2 -> check "plan_to_string round-trips" true (p2 = p))

let expect_error what text =
  match Net.Faults.parse_plan text with
  | Ok _ -> Alcotest.failf "%s was accepted" what
  | Error _ -> ()

let test_plan_errors () =
  expect_error "loss out of range" "loss 1.5\n";
  expect_error "negative dup" "dup -0.1\n";
  expect_error "unknown directive" "lose 0.1\n";
  expect_error "truncated partition" "partition 0 1 from 0.0\n";
  expect_error "negative stall duration" "stall 0 at 1.0 for -0.5\n";
  expect_error "partition healing before it starts"
    "partition 0 1 from 0.5 until 0.2\n";
  expect_error "bad number" "loss zero\n";
  expect_error "crash_in_commit of 1 (would livelock every commit round)"
    "crash_in_commit 1.0\n"

(* every rejection names the offending line, including lines pushed down
   by comments and blanks *)
let test_plan_errors_report_lines () =
  let expect_line what line text =
    match Net.Faults.parse_plan text with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error m ->
      let prefix = Printf.sprintf "line %d:" line in
      check
        (Printf.sprintf "%s names line %d (got %S)" what line m)
        true
        (String.length m >= String.length prefix
        && String.sub m 0 (String.length prefix) = prefix)
  in
  expect_line "bad loss on line 1" 1 "loss 1.5\n";
  expect_line "bad dup after two good lines" 3 "seed 7\nloss 0.1\ndup -0.1\n";
  expect_line "unknown directive on line 2" 2 "loss 0.1\nlose 0.1\n";
  expect_line "comment and blank lines still count" 4
    "# header\n\nseed 3\ncrash_in_commit 1.0\n";
  expect_line "truncated partition on line 2" 2
    "seed 1\npartition 0 1 from 0.0\n"

let test_plan_seed_override () =
  match Net.Faults.parse_plan ~seed:42 "seed 7\nloss 0.2\n" with
  | Ok p -> check_int "CLI seed overrides the file's" 42 p.Net.Faults.f_seed
  | Error m -> Alcotest.failf "parse: %s" m

(* ------------------------------------------------------------------ *)
(* Fault runtime, unit level                                           *)
(* ------------------------------------------------------------------ *)

let lossy_plan =
  { Net.Faults.none with
    f_seed = env_seed;
    f_loss = 0.3;
    f_dup = 0.2;
    f_jitter_s = 0.001;
    f_retransmit_s = 0.002 }

let test_delivery_determinism () =
  let draws () =
    let t = Net.Faults.create ~salt:5 lossy_plan in
    List.init 200 (fun i ->
        Net.Faults.on_message t
          ~now:(float_of_int i *. 0.001)
          ~src:0 ~dst:1)
  in
  check "same plan + salt, same decisions" true (draws () = draws ());
  List.iter
    (fun d ->
      check "loss delays, never drops" true (not d.Net.Faults.d_dropped);
      check "delay is non-negative" true (d.Net.Faults.d_delay_s >= 0.0))
    (draws ());
  check "some transmissions were lost" true
    (List.exists (fun d -> d.Net.Faults.d_retransmits > 0) (draws ()));
  check "some messages were duplicated" true
    (List.exists (fun d -> d.Net.Faults.d_duplicate) (draws ()))

let test_no_faults_for_loopback () =
  let t = Net.Faults.create lossy_plan in
  let d = Net.Faults.on_message t ~now:0.0 ~src:2 ~dst:2 in
  check "loopback is never faulted" true
    ((not d.Net.Faults.d_dropped)
    && d.Net.Faults.d_delay_s = 0.0
    && not d.Net.Faults.d_duplicate)

let test_partition_windows () =
  let plan =
    { Net.Faults.none with
      f_partitions =
        [
          { Net.Faults.pa = 0; pb = 1; p_from = 0.0; p_until = 0.5 };
          { Net.Faults.pa = 0; pb = 2; p_from = 0.0; p_until = infinity };
        ] }
  in
  let t = Net.Faults.create plan in
  let d = Net.Faults.on_message t ~now:0.1 ~src:0 ~dst:1 in
  check "healing partition delays to the heal time" true
    ((not d.Net.Faults.d_dropped) && d.Net.Faults.d_delay_s >= 0.399);
  let d = Net.Faults.on_message t ~now:0.1 ~src:1 ~dst:0 in
  check "partitions are symmetric" true (d.Net.Faults.d_delay_s >= 0.399);
  let d = Net.Faults.on_message t ~now:0.1 ~src:2 ~dst:0 in
  check "permanent partition drops" true d.Net.Faults.d_dropped;
  let d = Net.Faults.on_message t ~now:0.6 ~src:0 ~dst:1 in
  check "after heal the link is clean" true
    ((not d.Net.Faults.d_dropped) && d.Net.Faults.d_delay_s = 0.0);
  check "partitioned query" true
    (Net.Faults.partitioned t ~now:0.2 ~a:1 ~b:0);
  check "heal_time reported" true
    (Net.Faults.heal_time t ~now:0.2 ~a:0 ~b:1 = Some 0.5);
  check "heal_time is None when never healing" true
    (Net.Faults.heal_time t ~now:0.2 ~a:0 ~b:2 = None)

let test_stall_crash_fire_once () =
  let plan =
    { Net.Faults.none with
      f_stalls = [ { Net.Faults.s_node = 1; s_at = 0.1; s_for = 0.05 } ];
      f_crashes = [ { Net.Faults.c_node = 2; c_at = 0.2 } ] }
  in
  let t = Net.Faults.create plan in
  check "stall not due yet" true
    (Net.Faults.take_stall t ~node:1 ~now:0.05 = None);
  check "stall on another node never fires" true
    (Net.Faults.take_stall t ~node:0 ~now:9.0 = None);
  check "stall fires when due" true
    (Net.Faults.take_stall t ~node:1 ~now:0.2 = Some 0.05);
  check "stall fires exactly once" true
    (Net.Faults.take_stall t ~node:1 ~now:0.3 = None);
  check "crash on another node never fires" false
    (Net.Faults.take_crash t ~node:1 ~now:0.3);
  check "crash fires when due" true
    (Net.Faults.take_crash t ~node:2 ~now:0.25);
  check "crash fires exactly once" false
    (Net.Faults.take_crash t ~node:2 ~now:0.3)

(* ------------------------------------------------------------------ *)
(* Idempotent receive (Migrate.Server.receive)                         *)
(* ------------------------------------------------------------------ *)

let image_bytes () =
  let proc = Vm.Process.create (compile_c "int main() { return 9; }") in
  (Migrate.Pack.pack_running proc).Migrate.Pack.p_bytes

let test_idempotent_receive () =
  let bytes = image_bytes () in
  let server = Migrate.Server.(create_cfg Config.default Vm.Arch.cisc32) in
  let first =
    match Migrate.Server.receive ~key:"img#1" server bytes with
    | Ok (Migrate.Server.Fresh o) -> o
    | Ok (Migrate.Server.Duplicate _) ->
      Alcotest.fail "first delivery reported as duplicate"
    | Error m -> Alcotest.failf "receive: %s" m
  in
  (match Migrate.Server.receive ~key:"img#1" server bytes with
  | Ok (Migrate.Server.Duplicate o) ->
    check_int "duplicate returns the original pid" first.Migrate.Server.o_pid
      o.Migrate.Server.o_pid
  | Ok (Migrate.Server.Fresh _) ->
    Alcotest.fail "retransmitted hop double-spawned"
  | Error m -> Alcotest.failf "receive: %s" m);
  (* a DIFFERENT hop of byte-identical bytes is a fresh delivery *)
  (match Migrate.Server.receive ~key:"img#2" server bytes with
  | Ok (Migrate.Server.Fresh o) ->
    check "distinct hop gets a distinct pid" true
      (o.Migrate.Server.o_pid <> first.Migrate.Server.o_pid)
  | Ok (Migrate.Server.Duplicate _) ->
    Alcotest.fail "distinct hop wrongly deduplicated"
  | Error m -> Alcotest.failf "receive: %s" m);
  check_int "one duplicate counted" 1
    (Obs.Metrics.counter_value
       (Migrate.Server.metrics server)
       "server.duplicates")

let test_dedup_window_bounded () =
  let bytes = image_bytes () in
  let server =
    Migrate.Server.(
      create_cfg { Config.default with dedup_window = 2 } Vm.Arch.cisc32)
  in
  let fresh key =
    match Migrate.Server.receive ~key server bytes with
    | Ok (Migrate.Server.Fresh _) -> true
    | Ok (Migrate.Server.Duplicate _) -> false
    | Error m -> Alcotest.failf "receive: %s" m
  in
  check "k1 fresh" true (fresh "k1");
  check "k2 fresh" true (fresh "k2");
  check "k3 fresh, evicts k1" true (fresh "k3");
  check "k1 was forgotten" true (fresh "k1");
  check "k3 still remembered" false (fresh "k3")

(* ------------------------------------------------------------------ *)
(* Resilient migration protocol on the cluster                         *)
(* ------------------------------------------------------------------ *)

let summing_worker =
  compile_c
    {|
int main() {
  int *data = alloc_int(50);
  int i;
  for (i = 0; i < 50; i = i + 1) data[i] = i * 7;
  int acc = 0;
  int round;
  for (round = 0; round < 400; round = round + 1) {
    for (i = 0; i < 50; i = i + 1) acc = (acc + data[i]) % 1000000;
  }
  return acc;
}
|}

let expected_sum =
  let proc = Vm.Process.create summing_worker in
  match Vm.Interp.run proc with
  | Vm.Process.Exited n -> n
  | _ -> Alcotest.fail "reference run failed"

let test_migrate_retry_through_partition () =
  (* the link to the target is partitioned when the hop starts and heals
     at 0.05 s: the protocol must retry with backoff until it gets
     through, and the process must observe nothing *)
  let plan =
    { Net.Faults.none with
      f_seed = env_seed;
      f_partitions =
        [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0; p_until = 0.05 } ] }
  in
  let cluster = mk_cluster ~nodes:2 plan in
  let pid = Net.Cluster.spawn cluster ~node_id:0 summing_worker in
  let _ = Net.Cluster.run cluster ~max_rounds:25 in
  (match move_running cluster ~pid ~node_id:1 with
  | Error e ->
    Alcotest.failf "migration failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok rep ->
    check "the hop was retried" true (rep.Net.Cluster.rep_attempts >= 2);
    check "backoff was waited" true (rep.Net.Cluster.rep_backoff_s > 0.0);
    check_int "retries = attempts - 1"
      (rep.Net.Cluster.rep_attempts - 1)
      rep.Net.Cluster.rep_retries;
    let _ = Net.Cluster.run cluster in
    check "successor finished with the same result" true
      (status_of cluster rep.Net.Cluster.rep_pid
      = Vm.Process.Exited expected_sum));
  check "retries were counted" true
    (Obs.Metrics.counter_value (Net.Cluster.metrics cluster)
       "migrate.retries"
    >= 1);
  check "the retry is in the typed trace" true
    (List.exists
       (fun e ->
         match e.Obs.Trace.kind with
         | Obs.Trace.Migrate_retry { reason = "partitioned"; _ } -> true
         | _ -> false)
       (Obs.Trace.timeline (Net.Cluster.trace cluster)))

let test_unreachable_resumes_locally () =
  (* the partition never heals: the retry budget runs out and the
     process keeps running where it was, invisibly *)
  let plan =
    { Net.Faults.none with
      f_seed = env_seed;
      f_partitions =
        [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0; p_until = infinity } ]
    }
  in
  let cluster = mk_cluster ~nodes:2 plan in
  let pid = Net.Cluster.spawn cluster ~node_id:0 summing_worker in
  let _ = Net.Cluster.run cluster ~max_rounds:25 in
  (match move_running cluster ~pid ~node_id:1 with
  | Error (Net.Cluster.Unreachable { attempts; reason }) ->
    check_int "every attempt in the budget was used"
      Net.Cluster.Config.default_retry.Net.Cluster.Config.max_attempts
      attempts;
    check "reason says partitioned" true (reason = "partitioned")
  | Error e ->
    Alcotest.failf "expected Unreachable, got %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok _ -> Alcotest.fail "migration through a dead link succeeded");
  let _ = Net.Cluster.run cluster in
  check "the process completed locally" true
    (status_of cluster pid = Vm.Process.Exited expected_sum);
  (match Net.Cluster.migrations cluster with
  | [ mr ] -> check "recorded as a failed migration" false mr.Net.Cluster.mr_ok
  | l -> Alcotest.failf "expected 1 migration record, got %d" (List.length l))

let test_duplicated_hop_is_deduplicated () =
  (* every migration hop also arrives a second time; the target daemon
     must dedup instead of double-spawning *)
  let plan =
    { Net.Faults.none with f_seed = env_seed; f_dup = 0.999999 }
  in
  let cluster = mk_cluster ~nodes:2 plan in
  let pid = Net.Cluster.spawn cluster ~node_id:0 summing_worker in
  let _ = Net.Cluster.run cluster ~max_rounds:25 in
  (match move_running cluster ~pid ~node_id:1 with
  | Error e ->
    Alcotest.failf "migration failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok rep ->
    let _ = Net.Cluster.run cluster in
    check "exactly one successor ran to the right answer" true
      (status_of cluster rep.Net.Cluster.rep_pid
      = Vm.Process.Exited expected_sum));
  check_int "source + one successor, nothing double-spawned" 2
    (List.length (Net.Cluster.statuses cluster));
  let daemon = (Net.Cluster.node cluster 1).Net.Cluster.daemon in
  check "the daemon saw and absorbed the duplicate" true
    (Obs.Metrics.counter_value
       (Migrate.Server.metrics daemon)
       "server.duplicates"
    >= 1);
  check "dup_delivery is in the typed trace" true
    (List.exists
       (fun e ->
         match e.Obs.Trace.kind with
         | Obs.Trace.Dup_delivery _ -> true
         | _ -> false)
       (Obs.Trace.timeline (Net.Cluster.trace cluster)))

(* ------------------------------------------------------------------ *)
(* Whole-grid runs under faults, against the golden model              *)
(* ------------------------------------------------------------------ *)

let grid_cfg =
  { Mcc.Gridapp.ranks = 3; rows_per_rank = 4; cols = 8; timesteps = 12;
    interval = 4; work_us_per_step = 0 }

let run_grid ?(nodes = 3) ?(spare = false) ?(resilient = false) plan =
  let cluster = mk_cluster ~nodes ~seed:env_seed plan in
  let d = Mcc.Gridapp.deploy ~spare cluster grid_cfg in
  let _ =
    if resilient then Mcc.Gridapp.run_resilient d else Mcc.Gridapp.run d
  in
  (cluster, Mcc.Gridapp.checksums d)

let check_golden sums =
  Array.iteri
    (fun r s ->
      match s with
      | Some n ->
        check_int (Printf.sprintf "rank %d checksum" r)
          (Mcc.Gridapp.golden_checksums grid_cfg).(r)
          n
      | None -> Alcotest.failf "rank %d never finished" r)
    sums

(* exactly one copy of each rank completed: a duplicated or retried hop
   (or a resurrection) never left two live holders *)
let check_single_holder cluster =
  for r = 0 to grid_cfg.Mcc.Gridapp.ranks - 1 do
    let exited =
      List.filter
        (fun (_, rank, _, status) ->
          rank = Some r
          && match status with Vm.Process.Exited _ -> true | _ -> false)
        (Net.Cluster.statuses cluster)
    in
    check_int (Printf.sprintf "one exited copy of rank %d" r) 1
      (List.length exited)
  done

let grid_faults =
  { Net.Faults.none with
    f_seed = env_seed;
    f_loss = 0.10;
    f_dup = 0.05;
    f_jitter_s = 0.00002;
    f_retransmit_s = 0.0001 }

let test_grid_under_loss () =
  let cluster, sums = run_grid grid_faults in
  check_golden sums;
  check_single_holder cluster;
  check "retransmissions actually happened" true
    (Obs.Metrics.counter_value (Net.Cluster.metrics cluster)
       "faults.retransmits"
    > 0)

let test_trace_reproducible () =
  (* identical seed + plan => byte-identical JSONL traces *)
  let trace_of () =
    let cluster, sums = run_grid grid_faults in
    check_golden sums;
    Obs.Trace.to_jsonl (Net.Cluster.trace cluster)
  in
  let t1 = trace_of () and t2 = trace_of () in
  check "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "byte-identical traces" t1 t2

let test_grid_partition_then_heal () =
  let plan =
    { grid_faults with
      f_partitions =
        [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0005; p_until = 0.001 } ]
    }
  in
  let cluster, sums = run_grid plan in
  check_golden sums;
  check_single_holder cluster

let test_grid_crash_and_stall_recovery () =
  (* acceptance scenario: 10 % loss, a healing two-node partition, a
     stall, and a node crash — the grid still terminates with the golden
     checksums and exactly one live copy of each rank.  The crash lands
     between the first checkpoint round (step 4) and completion; rank 1
     is resurrected from its checkpoint on the spare node. *)
  let work_cfg = { grid_cfg with Mcc.Gridapp.work_us_per_step = 500 } in
  let golden = Mcc.Gridapp.golden_checksums work_cfg in
  let plan =
    { Net.Faults.none with
      f_seed = env_seed;
      f_loss = 0.10;
      f_retransmit_s = 0.0001;
      f_partitions =
        [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0004; p_until = 0.0008 } ];
      f_stalls = [ { Net.Faults.s_node = 2; s_at = 0.002; s_for = 0.0005 } ];
      f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.004 } ] }
  in
  let cluster = mk_cluster ~nodes:4 ~seed:env_seed plan in
  let d = Mcc.Gridapp.deploy ~spare:true cluster work_cfg in
  let _ = Mcc.Gridapp.run_resilient d in
  Array.iteri
    (fun r s ->
      match s with
      | Some n -> check_int (Printf.sprintf "rank %d checksum" r) golden.(r) n
      | None -> Alcotest.failf "rank %d never finished" r)
    (Mcc.Gridapp.checksums d);
  for r = 0 to work_cfg.Mcc.Gridapp.ranks - 1 do
    let exited =
      List.filter
        (fun (_, rank, _, status) ->
          rank = Some r
          && match status with Vm.Process.Exited _ -> true | _ -> false)
        (Net.Cluster.statuses cluster)
    in
    check_int (Printf.sprintf "one exited copy of rank %d" r) 1
      (List.length exited)
  done;
  let m = Net.Cluster.metrics cluster in
  check "the crash fired" true
    (Obs.Metrics.counter_value m "faults.crashes" = 1
    && Obs.Metrics.counter_value m "cluster.node_failures" = 1);
  check "the stall fired" true
    (Obs.Metrics.counter_value m "faults.stalls" = 1);
  check "the resurrection was counted" true
    (Obs.Metrics.counter_value m "cluster.resurrections" >= 1)

(* ------------------------------------------------------------------ *)
(* Seeded storage faults                                               *)
(* ------------------------------------------------------------------ *)

let test_storage_faults_seeded () =
  (* obj_read/obj_write failures draw from the fault-plan RNG, never the
     global Random state: the same seed reproduces the same pattern *)
  let prog =
    compile_c
      {|
int main() {
  int *buf = alloc_int(4);
  int ok = 0; int i;
  for (i = 0; i < 32; i = i + 1) {
    if (obj_write(1, buf, 4) == 4) ok = ok + 1;
  }
  return ok;
}
|}
  in
  let run_one () =
    let cluster =
      mk_cluster ~nodes:1 ~seed:env_seed
        { Net.Faults.none with f_seed = env_seed }
    in
    Net.Cluster.set_object cluster 1 "AAAA";
    Net.Cluster.set_object_failure_probability cluster 0.5;
    let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
    let _ = Net.Cluster.run cluster in
    match status_of cluster pid with
    | Vm.Process.Exited n -> n
    | Vm.Process.Trapped m -> Alcotest.failf "prog trapped: %s" m
    | _ -> Alcotest.fail "prog did not exit"
  in
  let a = run_one () and b = run_one () in
  check_int "same seed, same storage-fault pattern" a b;
  check "some writes failed and some succeeded" true (a > 0 && a < 32)

(* ------------------------------------------------------------------ *)
(* Replicated checkpoint storage                                       *)
(* ------------------------------------------------------------------ *)

let counter cluster name =
  Obs.Metrics.counter_value (Net.Cluster.metrics cluster) name

let mk_storage ?(replication = 2) ?(nodes = 3) ?(plan = Net.Faults.none) () =
  let net = Net.Simnet.create ~latency_us:5.0 () in
  let metrics = Obs.Metrics.create () in
  let faults = Net.Faults.create ~salt:env_seed ~metrics plan in
  let storage =
    Net.Storage.create ~replication ~nodes ~faults ~metrics net
  in
  (storage, metrics)

let test_replica_survives_node_loss () =
  (* full replication: every node holds a copy; losing one node's store
     leaves the data readable and intact *)
  let storage, _ = mk_storage ~replication:3 ~nodes:3 () in
  let data = "checkpoint-payload-0123456789" in
  let dt = Net.Storage.write storage "ck" data in
  check "write charged transfer time" true (dt > 0.0);
  check_int "all replicas verify" 3 (Net.Storage.good_replicas storage "ck");
  Net.Storage.fail_node storage 0;
  check_int "one replica died with its node" 2
    (Net.Storage.good_replicas storage "ck");
  (match Net.Storage.read storage "ck" with
  | Some (got, _) -> Alcotest.(check string) "bytes intact" data got
  | None -> Alcotest.fail "read failed with two good replicas")

let test_torn_write_read_repair () =
  (* half the replica writes are torn: some path ends up with exactly
     one good copy — a read must digest-verify, serve the good copy and
     repair the torn replica; a path with NO good copy must fail the
     read rather than return corrupt bytes *)
  let plan =
    { Net.Faults.none with f_seed = env_seed; f_store_torn = 0.5 }
  in
  let storage, metrics = mk_storage ~replication:2 ~nodes:3 ~plan () in
  let data i = Printf.sprintf "payload-%04d-0123456789abcdef" i in
  let paths = List.init 64 (fun i -> (Printf.sprintf "p%02d" i, data i)) in
  List.iter (fun (p, d) -> ignore (Net.Storage.write storage p d)) paths;
  let with_goodness n =
    List.filter (fun (p, _) -> Net.Storage.good_replicas storage p = n) paths
  in
  (match with_goodness 1 with
  | [] -> Alcotest.fail "no path ended up with exactly one good replica"
  | (p, d) :: _ -> (
    match Net.Storage.read storage p with
    | Some (got, _) ->
      Alcotest.(check string) "read served the verifying copy" d got;
      check_int "read-repair restored full redundancy" 2
        (Net.Storage.good_replicas storage p)
    | None -> Alcotest.fail "read failed with a good replica present"));
  check "repairs were counted" true
    (Obs.Metrics.counter_value metrics "storage.repairs" >= 1);
  (match with_goodness 0 with
  | [] -> Alcotest.fail "no path ended up with zero good replicas"
  | (p, _) :: _ ->
    check "no verifying copy: read refuses rather than serve torn bytes"
      true
      (Net.Storage.read storage p = None));
  check "corrupt reads were counted" true
    (Obs.Metrics.counter_value metrics "storage.corrupt_reads" >= 1)

let test_bit_flip_never_served () =
  (* every replica write takes a bit flip: the digest check must reject
     both copies — a flipped checkpoint is never returned as data *)
  let plan =
    { Net.Faults.none with f_seed = env_seed; f_store_flip = 1.0 }
  in
  let storage, metrics = mk_storage ~replication:2 ~nodes:2 ~plan () in
  ignore (Net.Storage.write storage "ck" "bytes-that-matter-0123456789");
  check "flipped replicas exist but do not verify" true
    (Net.Storage.exists storage "ck"
    && Net.Storage.good_replicas storage "ck" = 0);
  check "read returns nothing rather than flipped bytes" true
    (Net.Storage.read storage "ck" = None);
  check "corrupt reads counted" true
    (Obs.Metrics.counter_value metrics "storage.corrupt_reads" >= 1);
  check "flips drew from the seeded fault RNG" true
    (Obs.Metrics.counter_value metrics "faults.store_flip" >= 1)

let test_single_replica_loss_is_typed_error () =
  (* k = 1 and the only replica write is lost: resurrection must fail
     with the existing typed error, never resurrect from thin air *)
  let plan =
    { Net.Faults.none with f_seed = env_seed; f_store_lost = 1.0 }
  in
  let cluster = mk_cluster ~nodes:2 ~seed:env_seed ~replication:1 plan in
  let storage = Net.Cluster.storage cluster in
  let dt = Net.Storage.write storage "ck" "lost-forever" in
  check "the write itself was charged" true (dt > 0.0);
  check "the only replica was lost" false (Net.Storage.exists storage "ck");
  check "lost writes counted" true (counter cluster "faults.store_lost" >= 1);
  match Net.Cluster.resurrect cluster ~node_id:0 ~path:"ck" with
  | Ok _ -> Alcotest.fail "resurrected from a lost checkpoint"
  | Error m -> check "typed error, not wrong data" true (String.length m > 0)

let test_wire_epoch_roundtrip () =
  (* the incarnation epoch rides the wire but is NOT part of the image's
     identity: two incarnations of a rank share their baseline digest,
     so delta negotiation survives resurrection *)
  let proc, _ =
    Test_migrate.run_to_migration (Test_migrate.migrating_sum 24)
  in
  let packed = Migrate.Pack.pack_request ~with_binary:false ~epoch:3 proc in
  let im = packed.Migrate.Pack.p_image in
  check_int "pack stamps the incarnation epoch" 3 im.Migrate.Wire.i_epoch;
  let im' = Migrate.Wire.decode (Migrate.Wire.encode im) in
  check_int "epoch survives the wire round trip" 3 im'.Migrate.Wire.i_epoch;
  Alcotest.(check string) "epoch is incarnation metadata, not identity"
    (Migrate.Wire.image_digest im)
    (Migrate.Wire.image_digest { im with Migrate.Wire.i_epoch = 7 })

(* ------------------------------------------------------------------ *)
(* Heartbeat failure detection and epoch fencing                       *)
(* ------------------------------------------------------------------ *)

(* Timings for crash detection: coarse heartbeats, a timeout a few
   multiples of the interval — suspicion matures during the quiescent
   pumping after survivors park on the dead rank. *)
let crash_detector =
  { Net.Detector.hb_interval_s = 0.0005;
    suspect_timeout_s = 0.002;
    hb_bytes = 8 }

let work_cfg = { grid_cfg with Mcc.Gridapp.work_us_per_step = 500 }

let check_golden_cfg cfg sums =
  let golden = Mcc.Gridapp.golden_checksums cfg in
  Array.iteri
    (fun r s ->
      match s with
      | Some n -> check_int (Printf.sprintf "rank %d checksum" r) golden.(r) n
      | None -> Alcotest.failf "rank %d never finished" r)
    sums

let test_heartbeat_crash_detection () =
  (* no omniscient crash knowledge: node 1 dies and the ONLY signal is
     its missed heartbeats.  Rank 1 must be resurrected (bumped epoch)
     on suspicion and the grid must still reach the golden checksums —
     with its checkpoint replicas surviving the loss of node 1's local
     store *)
  let plan =
    { Net.Faults.none with
      f_seed = env_seed;
      f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.004 } ] }
  in
  let cluster =
    mk_cluster ~nodes:4 ~seed:env_seed ~detector:crash_detector
      ~replication:2 plan
  in
  let d = Mcc.Gridapp.deploy ~spare:true cluster work_cfg in
  let _ = Mcc.Gridapp.run_resilient d in
  check_golden_cfg work_cfg (Mcc.Gridapp.checksums d);
  check_single_holder cluster;
  check "heartbeats actually flowed" true
    (counter cluster "detector.heartbeats" > 0);
  check "the crash was suspected from silence alone" true
    (counter cluster "detector.suspicions" >= 1);
  check "rank 1 came back under a bumped incarnation epoch" true
    (Net.Cluster.rank_epoch cluster 1 >= 1);
  check "the resurrection was counted" true
    (counter cluster "cluster.resurrections" >= 1)

(* Timings for false suspicion: interval and timeout well under one grid
   step's busy time, so survivors' clocks creep past the silence window
   while a stalled peer is merely slow. *)
let stall_detector =
  { Net.Detector.hb_interval_s = 0.00005;
    suspect_timeout_s = 0.0002;
    hb_bytes = 8 }

let false_suspicion_run seed =
  (* 3 nodes, 3 ranks, NO spare: every observer is busy, so unanimity
     can mature mid-run.  Node 2 stalls long past the suspicion timeout
     after checkpoints exist; it is not dead, so the detector's
     suspicion is FALSE — resurrection bumps rank 2's epoch and the
     stalled original must be fenced when it wakes. *)
  let plan =
    { Net.Faults.none with
      f_seed = seed;
      f_stalls = [ { Net.Faults.s_node = 2; s_at = 0.0045; s_for = 0.05 } ]
    }
  in
  let cluster =
    mk_cluster ~nodes:3 ~seed ~detector:stall_detector ~replication:2
      plan
  in
  let d = Mcc.Gridapp.deploy cluster work_cfg in
  let _ = Mcc.Gridapp.run_resilient d in
  (cluster, d)

let test_false_suspicion_fencing () =
  List.iter
    (fun seed ->
      let cluster, d = false_suspicion_run seed in
      check_golden_cfg work_cfg (Mcc.Gridapp.checksums d);
      check_single_holder cluster;
      check
        (Printf.sprintf "seed %d: the stalled node was falsely suspected"
           seed)
        true
        (counter cluster "detector.false_suspicions" >= 1);
      check
        (Printf.sprintf "seed %d: the zombie incarnation was fenced" seed)
        true
        (counter cluster "fence.rejections" >= 1);
      (* suspicion can cascade past the stalled node itself — a parked
         observer jumping its clock over the stall window makes slower
         peers look silent too — so WHICH rank gets resurrected varies
         by seed; fencing guarantees every resurrection bumped an
         epoch and left one live copy *)
      check
        (Printf.sprintf "seed %d: a resurrection happened under detection"
           seed)
        true
        (counter cluster "cluster.resurrections" >= 1);
      check
        (Printf.sprintf "seed %d: some rank runs under a bumped epoch" seed)
        true
        (List.exists
           (fun r -> Net.Cluster.rank_epoch cluster r >= 1)
           [ 0; 1; 2 ]))
    [ env_seed; env_seed + 9 ]

let test_detector_trace_deterministic () =
  (* detection, fencing and replicated storage draw only from the seeded
     RNG and the simulated clocks: the same seed must reproduce the
     false-suspicion story byte for byte *)
  let run () =
    let cluster, d = false_suspicion_run env_seed in
    check_golden_cfg work_cfg (Mcc.Gridapp.checksums d);
    cluster
  in
  let c1 = run () and c2 = run () in
  let has pred c =
    List.exists
      (fun e -> pred e.Obs.Trace.kind)
      (Obs.Trace.timeline (Net.Cluster.trace c))
  in
  check "suspicion is in the typed trace" true
    (has (function Obs.Trace.Suspect _ -> true | _ -> false) c1);
  check "fencing is in the typed trace" true
    (has (function Obs.Trace.Fenced _ -> true | _ -> false) c1);
  let t1 = Obs.Trace.to_jsonl (Net.Cluster.trace c1)
  and t2 = Obs.Trace.to_jsonl (Net.Cluster.trace c2) in
  check "trace is non-trivial" true (String.length t1 > 1000);
  Alcotest.(check string) "byte-identical detector traces" t1 t2

(* ------------------------------------------------------------------ *)
(* Scheduler equivalence: indexed residents vs the legacy scan          *)
(* ------------------------------------------------------------------ *)

(* The indexed scheduler (per-node resident lists, indexed mailbox
   wake-ups) must be OBSERVABLY identical to the legacy per-round scan
   it replaced: byte-identical typed traces, an identical metrics
   registry and the golden checksums, under fault-injected grid runs
   across multiple seeds.  [legacy_scan_sched] keeps the old path
   executable precisely so this stays checkable from one build. *)

let sched_eq_seeds = [ env_seed; env_seed + 31 ]

let run_grid_sched ~legacy ~seed ~cfg ~nodes ~spare ~resilient plan =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = nodes;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = plan;
        legacy_scan_sched = legacy }
  in
  let d = Mcc.Gridapp.deploy ~spare cluster cfg in
  let _ =
    if resilient then Mcc.Gridapp.run_resilient d else Mcc.Gridapp.run d
  in
  (cluster, Mcc.Gridapp.checksums d)

let check_sched_equivalent ~name ~cfg ~nodes ~spare ~resilient plan_of =
  List.iter
    (fun seed ->
      let plan = plan_of seed in
      let golden = Mcc.Gridapp.golden_checksums cfg in
      let observe legacy =
        let cluster, sums =
          run_grid_sched ~legacy ~seed ~cfg ~nodes ~spare ~resilient plan
        in
        Array.iteri
          (fun r s ->
            match s with
            | Some n ->
              check_int (Printf.sprintf "%s: rank %d checksum" name r)
                golden.(r) n
            | None -> Alcotest.failf "%s: rank %d never finished" name r)
          sums;
        ( Obs.Trace.to_jsonl (Net.Cluster.trace cluster),
          Obs.Metrics.render (Net.Cluster.metrics cluster) )
      in
      let trace_scan, metrics_scan = observe true in
      let trace_idx, metrics_idx = observe false in
      check (Printf.sprintf "%s seed %d: trace is non-trivial" name seed)
        true
        (String.length trace_scan > 1000);
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: byte-identical traces" name seed)
        trace_scan trace_idx;
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: identical metrics" name seed)
        metrics_scan metrics_idx)
    sched_eq_seeds

let test_sched_equivalence_loss () =
  (* the F3 regime: loss + duplication + jitter over the whole grid *)
  check_sched_equivalent ~name:"loss" ~cfg:grid_cfg ~nodes:3 ~spare:false
    ~resilient:false (fun seed ->
      { Net.Faults.none with
        f_seed = seed;
        f_loss = 0.10;
        f_dup = 0.05;
        f_jitter_s = 0.00002;
        f_retransmit_s = 0.0001 })

let test_sched_equivalence_crash () =
  (* the F4 regime: loss, a healing partition, a stall and a node
     crash, recovered by resurrection on the spare *)
  let cfg = { grid_cfg with Mcc.Gridapp.work_us_per_step = 500 } in
  check_sched_equivalent ~name:"crash" ~cfg ~nodes:4 ~spare:true
    ~resilient:true (fun seed ->
      { Net.Faults.none with
        f_seed = seed;
        f_loss = 0.10;
        f_retransmit_s = 0.0001;
        f_partitions =
          [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0004; p_until = 0.0008 }
          ];
        f_stalls =
          [ { Net.Faults.s_node = 2; s_at = 0.002; s_for = 0.0005 } ];
        f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.004 } ] })

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "parse + render round-trip" `Quick
          test_plan_roundtrip;
        Alcotest.test_case "malformed plans are rejected" `Quick
          test_plan_errors;
        Alcotest.test_case "rejections report line numbers" `Quick
          test_plan_errors_report_lines;
        Alcotest.test_case "CLI seed overrides the file" `Quick
          test_plan_seed_override;
      ] );
    ( "faults.unit",
      [
        Alcotest.test_case "seeded decisions are deterministic" `Quick
          test_delivery_determinism;
        Alcotest.test_case "loopback is never faulted" `Quick
          test_no_faults_for_loopback;
        Alcotest.test_case "partition windows delay, drop and heal" `Quick
          test_partition_windows;
        Alcotest.test_case "stalls and crashes fire exactly once" `Quick
          test_stall_crash_fire_once;
      ] );
    ( "faults.idempotent_receive",
      [
        Alcotest.test_case "duplicate hops return the original outcome"
          `Quick test_idempotent_receive;
        Alcotest.test_case "dedup memory is a bounded FIFO" `Quick
          test_dedup_window_bounded;
      ] );
    ( "faults.migration",
      [
        Alcotest.test_case "retry with backoff through a partition" `Quick
          test_migrate_retry_through_partition;
        Alcotest.test_case "unreachable target: resume locally" `Quick
          test_unreachable_resumes_locally;
        Alcotest.test_case "duplicated hop never double-spawns" `Quick
          test_duplicated_hop_is_deduplicated;
      ] );
    ( "faults.grid",
      [
        Alcotest.test_case "grid completes under loss + dup + jitter"
          `Quick test_grid_under_loss;
        Alcotest.test_case "same seed, byte-identical traces" `Quick
          test_trace_reproducible;
        Alcotest.test_case "partition-then-heal completes" `Quick
          test_grid_partition_then_heal;
        Alcotest.test_case "crash + stall: resurrect and finish" `Quick
          test_grid_crash_and_stall_recovery;
      ] );
    ( "faults.sched_equivalence",
      [
        Alcotest.test_case "loss grid: scan = indexed, 2 seeds" `Quick
          test_sched_equivalence_loss;
        Alcotest.test_case "crash grid: scan = indexed, 2 seeds" `Quick
          test_sched_equivalence_crash;
      ] );
    ( "faults.storage",
      [
        Alcotest.test_case "storage faults are seeded" `Quick
          test_storage_faults_seeded;
      ] );
    ( "faults.replicated_storage",
      [
        Alcotest.test_case "replica survives losing a node's store" `Quick
          test_replica_survives_node_loss;
        Alcotest.test_case "torn write: digest-verify and read-repair"
          `Quick test_torn_write_read_repair;
        Alcotest.test_case "bit flip is never served as data" `Quick
          test_bit_flip_never_served;
        Alcotest.test_case "k=1 lost replica: typed error" `Quick
          test_single_replica_loss_is_typed_error;
        Alcotest.test_case "incarnation epoch rides the wire" `Quick
          test_wire_epoch_roundtrip;
      ] );
    ( "faults.detector",
      [
        Alcotest.test_case "crash detected by missed heartbeats" `Quick
          test_heartbeat_crash_detection;
        Alcotest.test_case "false suspicion: fenced, exactly one copy"
          `Quick test_false_suspicion_fencing;
        Alcotest.test_case "same seed, byte-identical detector traces"
          `Quick test_detector_trace_deterministic;
      ] );
  ]
