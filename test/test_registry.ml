(* Tests for the process registry — location-transparent logical
   addresses over mobile ranks — and the correctness fixes riding with
   it: the mailbox's two-list FIFO discipline under interleaved
   enqueue/receive bursts, wildcard receive, the deterministic table
   re-key, and the request-serving workload whose services are re-homed
   MID-TRAFFIC (including double migrations that leave forwarding
   chains, and TTL expiry that must surface as a typed error) under
   loss / duplication / jitter fault plans.

   The fault-plan tests take their seed from MCC_FAULT_SEED when set,
   so CI can run the suite under several seeds. *)

open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Explicit test migrations go through the unified move API; unwrap the
   outcome back to the report shape the assertions read. *)
let move_running cluster ~pid ~node_id =
  match
    Net.Cluster.move cluster
      (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Explicit
         (Net.Cluster.Move.Running pid) ~dest:node_id)
  with
  | Ok { Net.Cluster.Move.mv_report = Some rep; _ } -> Ok rep
  | Ok { Net.Cluster.Move.mv_report = None; _ } ->
    Alcotest.fail "Running-subject move returned no report"
  | Error e -> Error e


let env_seed =
  match Sys.getenv_opt "MCC_FAULT_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with Failure _ -> 11)
  | None -> 11

(* ------------------------------------------------------------------ *)
(* Mailbox: two-list FIFO discipline                                   *)
(* ------------------------------------------------------------------ *)

let msg ~src ~tag ~at payload =
  {
    Net.Mpi.msg_src_rank = src;
    msg_src_pid = 100 + src;
    msg_tag = tag;
    msg_payload = Array.map (fun n -> Value.Vint n) payload;
    msg_deliver_at = at;
    msg_spec = None;
    msg_src_epoch = 0;
  }

let payload_int (m : Net.Mpi.message) =
  match m.Net.Mpi.msg_payload with
  | [| Value.Vint n |] -> n
  | _ -> Alcotest.fail "unexpected payload shape"

let recv_exn mbox ~now ~src ~tag =
  match Net.Mpi.try_recv mbox ~now ~src_rank:src ~tag with
  | Net.Mpi.Received m -> m
  | Net.Mpi.None_yet -> Alcotest.fail "expected a message, got None_yet"
  | Net.Mpi.Roll -> Alcotest.fail "expected a message, got Roll"

(* Interleave enqueue bursts with partial drains, so the front list is
   non-empty every time the back list flips — exactly the pattern under
   which the old [normalize] appended the reversed back list onto a
   NON-EMPTY front (quadratic, and a latent reordering hazard).  The
   fixed two-list discipline must deliver strict FIFO order. *)
let test_interleaved_fifo () =
  let mbox = Net.Mpi.create_mailbox () in
  let next = ref 0 in
  let received = ref [] in
  for _burst = 1 to 20 do
    for _ = 1 to 5 do
      Net.Mpi.enqueue mbox (msg ~src:1 ~tag:4 ~at:0.0 [| !next |]);
      incr next
    done;
    for _ = 1 to 3 do
      received := payload_int (recv_exn mbox ~now:1.0 ~src:1 ~tag:4) :: !received
    done
  done;
  let rec drain () =
    match Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:4 with
    | Net.Mpi.Received m ->
      received := payload_int m :: !received;
      drain ()
    | Net.Mpi.None_yet -> ()
    | Net.Mpi.Roll -> Alcotest.fail "unexpected roll"
  in
  drain ();
  check "strict FIFO across interleaved bursts" true
    (List.rev !received = List.init 100 (fun i -> i));
  check_int "mailbox drained" 0 (Net.Mpi.pending mbox)

(* A not-yet-deliverable head must not block a later message that IS
   deliverable (out-of-order arrival), and order must heal once both
   are due — on both halves of the two-list bucket. *)
let test_fifo_with_delayed_head () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:2 ~tag:9 ~at:5.0 [| 10 |]);
  Net.Mpi.enqueue mbox (msg ~src:2 ~tag:9 ~at:1.0 [| 11 |]);
  check_int "late head is skipped" 11
    (payload_int (recv_exn mbox ~now:2.0 ~src:2 ~tag:9));
  check "head still pending" true
    (Net.Mpi.try_recv mbox ~now:2.0 ~src_rank:2 ~tag:9 = Net.Mpi.None_yet);
  check_int "head arrives once due" 10
    (payload_int (recv_exn mbox ~now:6.0 ~src:2 ~tag:9))

(* ------------------------------------------------------------------ *)
(* Mailbox: wildcard receive                                           *)
(* ------------------------------------------------------------------ *)

let test_recv_any_enqueue_order () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:7 ~tag:9 ~at:0.0 [| 1 |]);
  Net.Mpi.enqueue mbox (msg ~src:2 ~tag:9 ~at:0.0 [| 2 |]);
  Net.Mpi.enqueue mbox (msg ~src:5 ~tag:8 ~at:0.0 [| 3 |]);
  Net.Mpi.enqueue mbox (msg ~src:2 ~tag:9 ~at:0.0 [| 4 |]);
  let recv_any tag =
    match Net.Mpi.try_recv_any mbox ~now:1.0 ~tag with
    | Net.Mpi.Received m -> payload_int m
    | _ -> Alcotest.fail "expected a wildcard match"
  in
  check_int "enqueue order across sources (1st)" 1 (recv_any 9);
  check_int "enqueue order across sources (2nd)" 2 (recv_any 9);
  check_int "other tag untouched" 3 (recv_any 8);
  check_int "per-source FIFO preserved" 4 (recv_any 9);
  check "empty for tag 9" true
    (Net.Mpi.try_recv_any mbox ~now:1.0 ~tag:9 = Net.Mpi.None_yet);
  check "delivery probe agrees" false
    (Net.Mpi.has_delivered_any mbox ~now:1.0 ~tag:9)

let test_recv_any_roll_priority () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:3 ~at:0.0 [| 42 |]);
  Net.Mpi.post_roll_notice mbox ~src_rank:6;
  Net.Mpi.post_roll_notice mbox ~src_rank:4;
  check "roll notice takes priority" true
    (Net.Mpi.try_recv_any mbox ~now:1.0 ~tag:3 = Net.Mpi.Roll);
  check "lowest rank's notice consumed first" true
    (not (Net.Mpi.has_roll_notice mbox ~src_rank:4)
    && Net.Mpi.has_roll_notice mbox ~src_rank:6);
  check "second notice consumed next" true
    (Net.Mpi.try_recv_any mbox ~now:1.0 ~tag:3 = Net.Mpi.Roll);
  check_int "message survives the notices" 42
    (payload_int
       (match Net.Mpi.try_recv_any mbox ~now:1.0 ~tag:3 with
       | Net.Mpi.Received m -> m
       | _ -> Alcotest.fail "expected the message"))

let test_take_all () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:3 ~tag:1 ~at:0.0 [| 1 |]);
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:2 ~at:9.0 [| 2 |]);
  Net.Mpi.enqueue mbox (msg ~src:3 ~tag:1 ~at:0.0 [| 3 |]);
  let drained = Net.Mpi.take_all mbox in
  check "oldest first, regardless of delivery time" true
    (List.map payload_int drained = [ 1; 2; 3 ]);
  check_int "empty afterwards" 0 (Net.Mpi.pending mbox);
  check "no residual delivery" true (Net.Mpi.next_delivery mbox = None)

(* ------------------------------------------------------------------ *)
(* Deterministic table re-key                                          *)
(* ------------------------------------------------------------------ *)

(* Colliding remapped keys must merge in STABLE SORTED order of the
   original keys — never in [Hashtbl.fold] order (the old
   [rekey_identity] bug: merge results depended on hash-bucket
   iteration, so two runs could disagree). *)
let test_rekey_merge_deterministic () =
  let remap k = k mod 3 in
  let entries =
    [ 7, [ "g" ]; 1, [ "b" ]; 4, [ "e" ]; 0, [ "a" ]; 3, [ "d" ]; 6, [ "f" ] ]
  in
  let expected = [ 0, [ "a"; "d"; "f" ]; 1, [ "b"; "e"; "g" ] ] in
  check "canonical merge order" true
    (Net.Cluster.Rekey.merge ~remap entries = expected);
  (* every input permutation yields the identical merge *)
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> fst y <> fst x) l)))
        l
  in
  List.iter
    (fun perm ->
      check "permutation-independent" true
        (Net.Cluster.Rekey.merge ~remap perm = expected))
    (permutations entries)

(* ------------------------------------------------------------------ *)
(* Registry: bindings, forwarders, chains, expiry                      *)
(* ------------------------------------------------------------------ *)

let test_registry_basic () =
  let r = Net.Registry.create () in
  check_int "laddrs are sequential from 1" 1 (Net.Registry.register r ~rank:10);
  check_int "second laddr" 2 (Net.Registry.register r ~rank:11);
  check "lookup" true (Net.Registry.lookup r 1 = Some 10);
  check "reverse lookup" true (Net.Registry.laddr_of_rank r 11 = Some 2);
  check "unknown laddr" true (Net.Registry.lookup r 9 = None);
  check "current rank resolves direct" true
    (Net.Registry.resolve r ~now:0.0 10 = Net.Registry.Direct 10);
  Net.Registry.rebind r ~laddr:1 ~new_rank:20 ~now:0.0 ~ttl:1.0;
  check "rebound" true (Net.Registry.lookup r 1 = Some 20);
  check "old rank no longer serves the laddr" true
    (Net.Registry.laddr_of_rank r 10 = None);
  check "stale rank forwards" true
    (Net.Registry.resolve r ~now:0.5 10
    = Net.Registry.Forwarded { final = 20; hops = 1 });
  check "new rank is direct" true
    (Net.Registry.resolve r ~now:0.5 20 = Net.Registry.Direct 20);
  check "past the TTL: typed expiry, not a silent drop" true
    (Net.Registry.resolve r ~now:2.0 10 = Net.Registry.Expired 10);
  check_int "housekeeping drops the expired forwarder" 1
    (Net.Registry.expire r ~now:2.0);
  check_int "no forwarders left" 0 (Net.Registry.forwarder_count r)

let test_registry_chain_compression () =
  let r = Net.Registry.create () in
  ignore (Net.Registry.register r ~rank:10);
  Net.Registry.rebind r ~laddr:1 ~new_rank:20 ~now:0.0 ~ttl:10.0;
  Net.Registry.rebind r ~laddr:1 ~new_rank:30 ~now:0.0 ~ttl:10.0;
  (* the A->B->C chain was collapsed on the write side: A forwards
     straight to C *)
  (match Net.Registry.forwarder_of r 10 with
  | Some fw -> check_int "A re-pointed at C on rebind" 30 fw.Net.Registry.fw_next
  | None -> Alcotest.fail "forwarder on A missing");
  check "one-hop resolution through the collapsed chain" true
    (Net.Registry.resolve r ~now:1.0 10
    = Net.Registry.Forwarded { final = 30; hops = 1 });
  check "middle hop also flat" true
    (Net.Registry.resolve r ~now:1.0 20
    = Net.Registry.Forwarded { final = 30; hops = 1 });
  check_int "two moves recorded" 2 (Net.Registry.moves r);
  check "compression happened" true (Net.Registry.compressions r >= 1)

(* ------------------------------------------------------------------ *)
(* The serving workload: live-traffic migration end to end             *)
(* ------------------------------------------------------------------ *)

let mk_cluster ?(nodes = 3) ?(seed = 1) ?(ttl = 0.25) plan =
  Net.Cluster.create_cfg
    { Net.Cluster.Config.default with
      node_count = nodes;
      seed;
      net = Some (Net.Simnet.create ~latency_us:5.0 ());
      faults = plan;
      forward_ttl_s = ttl }

let serve_cfg =
  { Mcc.Gridapp.Serve.clients = 4; services = 2; requests_per_client = 40;
    work_us = 20; skew = false; speculative = false }

let lossy_plan seed =
  { Net.Faults.none with
    f_seed = seed;
    f_loss = 0.10;
    f_dup = 0.05;
    f_jitter_s = 0.00002;
    f_retransmit_s = 0.0001 }

let check_exactly_once name d (r : Mcc.Gridapp.Serve.report) =
  if not (Mcc.Gridapp.Serve.exactly_once d r) then
    Alcotest.failf
      "%s: exactly-once violated (wedged=%b violations=%d requests=%d \
       served=[%s])"
      name r.Mcc.Gridapp.Serve.rp_wedged r.Mcc.Gridapp.Serve.rp_violations
      r.Mcc.Gridapp.Serve.rp_requests
      (String.concat ";"
         (Array.to_list
            (Array.map string_of_int r.Mcc.Gridapp.Serve.rp_served)))

let test_serve_static () =
  let cluster = mk_cluster Net.Faults.none in
  let d = Mcc.Gridapp.Serve.deploy cluster serve_cfg in
  check "laddrs 1..K in spawn order" true
    (d.Mcc.Gridapp.Serve.sv_laddrs = [| 1; 2 |]);
  let r = Mcc.Gridapp.Serve.run d in
  check_exactly_once "static" d r;
  check_int "no moves, nothing forwarded" 0
    r.Mcc.Gridapp.Serve.rp_forwarded;
  check "latency measured" true (r.Mcc.Gridapp.Serve.rp_p50_ms > 0.0)

let test_serve_migrations_faultfree () =
  let cluster = mk_cluster Net.Faults.none in
  let d = Mcc.Gridapp.Serve.deploy cluster serve_cfg in
  let r =
    Mcc.Gridapp.Serve.run d ~migrate_every_s:0.0004 ~migrations:3
  in
  check_exactly_once "migrating" d r;
  check "services actually moved" true
    (r.Mcc.Gridapp.Serve.rp_migrations >= 1);
  check "stale bindings were forwarded" true
    (r.Mcc.Gridapp.Serve.rp_forwarded > 0);
  check "senders rebound on Recipient_moved" true
    (r.Mcc.Gridapp.Serve.rp_rebinds > 0);
  (* forwarding quiesces: each client relays only until its notice
     lands, so the relay total stays far below the request count *)
  check "forwarding is transient, not the steady state" true
    (r.Mcc.Gridapp.Serve.rp_forwarded
    <= 6 * r.Mcc.Gridapp.Serve.rp_migrations * serve_cfg.Mcc.Gridapp.Serve.clients);
  (* the authoritative map agrees with where the services ended up *)
  Array.iteri
    (fun k laddr ->
      let pid = d.Mcc.Gridapp.Serve.sv_service_pids.(k) in
      match Net.Cluster.entry_of_pid cluster pid with
      | Some e ->
        check "registry tracks the successor rank" true
          (Net.Cluster.service_rank cluster ~laddr = e.Net.Cluster.rank)
      | None -> Alcotest.fail "service entry lost")
    d.Mcc.Gridapp.Serve.sv_laddrs

(* A -> B -> C double migration of a SINGLE service with traffic in
   flight, under a loss/dup/jitter plan, across two seeds: forwarding
   chains collapse, duplicates are deduplicated exactly once, every
   request is answered. *)
let test_serve_double_migration_chain () =
  List.iter
    (fun seed ->
      let cluster = mk_cluster ~nodes:4 (lossy_plan seed) in
      let cfg =
        { Mcc.Gridapp.Serve.clients = 3; services = 1;
          requests_per_client = 50; work_us = 20; skew = false;
          speculative = false }
      in
      let d = Mcc.Gridapp.Serve.deploy cluster cfg in
      let r =
        Mcc.Gridapp.Serve.run d ~migrate_every_s:0.0003 ~migrations:2
      in
      check_exactly_once (Printf.sprintf "chain seed %d" seed) d r;
      check "double migration landed" true
        (r.Mcc.Gridapp.Serve.rp_migrations = 2);
      check "relays happened while bindings were stale" true
        (r.Mcc.Gridapp.Serve.rp_forwarded > 0);
      check "rebinds observed" true (r.Mcc.Gridapp.Serve.rp_rebinds > 0);
      let reg = Net.Cluster.registry cluster in
      check "chain was path-compressed" true
        (Net.Registry.compressions reg >= 1);
      check "duplicates injected by the plan" true
        (Obs.Metrics.counter_value (Net.Cluster.metrics cluster)
           "faults.msg_dup"
        > 0))
    [ env_seed; env_seed + 17 ]

(* A sender with NO traffic in flight across a migration gets no
   Recipient_moved notice (nothing of its was relayed), so its cached
   binding silently went stale.  With a vanishingly small TTL its next
   send hits an EXPIRED forwarder: it must see the typed MSG_MOVED
   error — never a silent drop — re-resolve authoritatively, and
   succeed on the retry. *)
let test_serve_ttl_expiry_typed_error () =
  let cluster = mk_cluster ~ttl:1e-9 Net.Faults.none in
  let compile src =
    match Minic.Driver.compile src with
    | Ok fir -> fir
    | Error e -> Alcotest.failf "compile: %s" (Minic.Driver.error_to_string e)
  in
  (* request 1 warms the cache; the client then PARKS waiting for a
     coordinator's "go" (due long after the migration and the tiny
     TTL), so nothing of its is in flight when the service moves and no
     Recipient_moved notice is owed to it; request 2 goes through the
     stale binding.  Exit code = number of MSG_MOVED errors seen
     (expected: exactly 1). *)
  let client_src =
    {|
int main() {
  float *b = alloc_float(4);
  int *flag = alloc_int(1);
  int rc; int got; int tries;
  b[0] = 0.0;
  b[1] = 0.0;
  b[2] = 0.0;
  rc = svc_send(1, 7, b, 3);
  while (rc == 0 - 3) { rc = svc_send(1, 7, b, 3); }
  got = msg_try_recv_any(1000, b, 4);
  while (got < 0) { got = msg_try_recv_any(1000, b, 4); }
  flag[0] = 1;
  obj_write(1, flag, 1);
  got = msg_try_recv(3, 500, b, 4);
  while (got < 0) { got = msg_try_recv(3, 500, b, 4); }
  tries = 0;
  b[0] = 0.0;
  b[1] = 1.0;
  b[2] = 0.0;
  rc = svc_send(1, 7, b, 3);
  while (rc == 0 - 3) { tries = tries + 1; rc = svc_send(1, 7, b, 3); }
  got = msg_try_recv_any(1000, b, 4);
  while (got < 0) { got = msg_try_recv_any(1000, b, 4); }
  return tries;
}
|}
  in
  (* the "go" fires one simulated second in — far past any plausible
     migration completion time plus the nanosecond TTL *)
  let coordinator_src =
    {|
int main() {
  float *b = alloc_float(1);
  work_us(1000000);
  msg_send(0, 500, b, 1);
  return 0;
}
|}
  in
  let svc_cfg =
    { Mcc.Gridapp.Serve.clients = 1; services = 1; requests_per_client = 2;
      work_us = 10; skew = false; speculative = false }
  in
  let client_pid =
    Net.Cluster.spawn cluster ~rank:0 ~node_id:0 (compile client_src)
  in
  let service_pid =
    Net.Cluster.spawn cluster ~rank:1 ~node_id:1
      (compile (Mcc.Gridapp.Serve.service_source svc_cfg 0))
  in
  let _coordinator_pid =
    Net.Cluster.spawn cluster ~rank:3 ~node_id:0 (compile coordinator_src)
  in
  check_int "service laddr" 1
    (Net.Cluster.register_service cluster ~pid:service_pid);
  let exit_of pid =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> (
      match e.Net.Cluster.proc.Vm.Process.status with
      | Vm.Process.Exited n -> Some n
      | _ -> None)
    | None -> None
  in
  (* run until the client has consumed reply 1 (it signals through the
     object store) and is in its long local-work window, then move the
     service while nothing of the client's is in flight *)
  let _ =
    Net.Cluster.run cluster ~max_rounds:2_000_000 ~stop:(fun () ->
        Net.Cluster.get_object cluster 1 <> None)
  in
  check "client reached the work window" true
    (Net.Cluster.get_object cluster 1 <> None);
  (match move_running cluster ~pid:service_pid ~node_id:2 with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "service migration failed: %s"
      (Net.Cluster.migration_error_to_string e));
  let _ = Net.Cluster.run cluster ~max_rounds:4_000_000 in
  (match exit_of client_pid with
  | Some 1 -> ()
  | Some n ->
    let reg = Net.Cluster.registry cluster in
    Alcotest.failf
      "client exited %d, expected 1 typed error (moves=%d forwarded=%d \
       expired=%d fw1=%s now=%g)"
      n (Net.Registry.moves reg) (Net.Registry.forwarded reg)
      (Net.Registry.expired_count reg)
      (match Net.Registry.forwarder_of reg 1 with
      | Some fw -> Printf.sprintf "expires=%g" fw.Net.Registry.fw_expires
      | None -> "none")
      (Net.Cluster.now cluster)
  | None ->
    Alcotest.failf "client did not finish (now=%g, status=%s)"
      (Net.Cluster.now cluster)
      (match Net.Cluster.entry_of_pid cluster client_pid with
      | Some e -> (
        match e.Net.Cluster.proc.Vm.Process.status with
        | Vm.Process.Running -> "Running"
        | Vm.Process.Trapped m -> "Trapped " ^ m
        | Vm.Process.Migrating _ -> "Migrating"
        | Vm.Process.Exited _ -> assert false)
      | None -> "lost"));
  (match
     ( exit_of service_pid,
       exit_of
         (match Net.Cluster.service_rank cluster ~laddr:1 with
         | Some r -> (
           match Net.Cluster.entry_of_rank cluster r with
           | Some e -> e.Net.Cluster.proc.Vm.Process.pid
           | None -> -1)
         | None -> -1) )
   with
  | _, Some n -> check_int "successor served both unique requests" 2 n
  | Some n, _ -> check_int "service served both unique requests" 2 n
  | None, None -> Alcotest.fail "service did not finish");
  check "expiry recorded as a typed event, not a drop" true
    (Net.Registry.expired_count (Net.Cluster.registry cluster) >= 1
    && Obs.Metrics.counter_value (Net.Cluster.metrics cluster)
         "registry.expired"
       >= 1)

(* The full acceptance shape at test scale: several services migrating
   mid-traffic under the fault plan, two seeds, exactly-once plus live
   latency percentiles from the Obs histogram. *)
let test_serve_faulty_migrations () =
  List.iter
    (fun seed ->
      let cluster = mk_cluster ~nodes:4 (lossy_plan seed) in
      let d = Mcc.Gridapp.Serve.deploy cluster serve_cfg in
      let r =
        Mcc.Gridapp.Serve.run d ~migrate_every_s:0.0005 ~migrations:4
      in
      check_exactly_once (Printf.sprintf "faulty seed %d" seed) d r;
      check "moves landed" true (r.Mcc.Gridapp.Serve.rp_migrations >= 2);
      check "p99 >= p50 > 0" true
        (r.Mcc.Gridapp.Serve.rp_p50_ms > 0.0
        && r.Mcc.Gridapp.Serve.rp_p99_ms >= r.Mcc.Gridapp.Serve.rp_p50_ms))
    [ env_seed; env_seed + 1 ]

let suites =
  [
    ( "registry-mailbox",
      [
        Alcotest.test_case "interleaved FIFO" `Quick test_interleaved_fifo;
        Alcotest.test_case "delayed head" `Quick test_fifo_with_delayed_head;
        Alcotest.test_case "wildcard enqueue order" `Quick
          test_recv_any_enqueue_order;
        Alcotest.test_case "wildcard roll priority" `Quick
          test_recv_any_roll_priority;
        Alcotest.test_case "take_all" `Quick test_take_all;
      ] );
    ( "registry-rekey",
      [
        Alcotest.test_case "deterministic merge" `Quick
          test_rekey_merge_deterministic;
      ] );
    ( "registry-core",
      [
        Alcotest.test_case "bind/rebind/expire" `Quick test_registry_basic;
        Alcotest.test_case "chain compression" `Quick
          test_registry_chain_compression;
      ] );
    ( "registry-serving",
      [
        Alcotest.test_case "static exactly-once" `Quick test_serve_static;
        Alcotest.test_case "migrations, fault-free" `Quick
          test_serve_migrations_faultfree;
        Alcotest.test_case "A->B->C chain under faults" `Quick
          test_serve_double_migration_chain;
        Alcotest.test_case "TTL expiry is a typed error" `Quick
          test_serve_ttl_expiry_typed_error;
        Alcotest.test_case "migrations under faults, two seeds" `Quick
          test_serve_faulty_migrations;
      ] );
  ]
