(* Tests for the load-aware placement policy engine and the unified
   move API it drives.

   Planner units exercise Net.Balance in isolation (convergence within
   a bounded number of periods, the tolerance band and repulsion margin
   that forbid ping-pong, the per-node move budget, affinity-steered
   destination choice, decay/rekey of the affinity matrix).  Cluster
   integration runs the skewed serving workload on a 64-node cluster
   with the engine on and off.  The reason-equivalence suite asserts
   that Move.reason is pure accounting: the same scenario driven with
   reasons Explicit / Policy / Rehome — and the resurrect convenience
   wrapper vs a hand-built Image request — produces byte-identical
   event traces.

   Fault-plan scenarios take their seed from MCC_FAULT_SEED when set,
   so CI can run the suite under several seeds. *)


let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_seed =
  match Sys.getenv_opt "MCC_FAULT_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with Failure _ -> 11)
  | None -> 11

let compile_c src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "C compile: %s" (Minic.Driver.error_to_string e)

let status_of cluster pid =
  match Net.Cluster.entry_of_pid cluster pid with
  | Some e -> e.Net.Cluster.proc.Vm.Process.status
  | None -> Alcotest.failf "pid %d lost" pid

(* ------------------------------------------------------------------ *)
(* Planner units                                                       *)
(* ------------------------------------------------------------------ *)

let cfg_on =
  { Net.Balance.Config.enabled = true;
    period_s = 0.002;
    tolerance = 0.25;
    move_budget = 2;
    affinity_decay = 0.5 }

let mk_load ?(alive = true) ?(runnable = 0) ?(mailbox = 0) node cycles =
  { Net.Balance.nl_node = node;
    nl_alive = alive;
    nl_runnable = runnable;
    nl_cycles_per_s = cycles;
    nl_mailbox = mailbox }

let no_ranks _ = None

(* Simulate the cluster's sample/plan/apply loop on a synthetic load
   vector until the planner goes quiet; returns (periods, total moves,
   final loads, final candidates). *)
let converge b ~loads ~candidates ~max_periods =
  let loads = Array.copy loads in
  let candidates = ref candidates in
  let periods = ref 0 in
  let moves = ref 0 in
  let quiet = ref false in
  while (not !quiet) && !periods < max_periods do
    incr periods;
    let props =
      Net.Balance.plan b ~loads ~candidates:!candidates
        ~node_of_rank:no_ranks
    in
    if props = [] then quiet := true
    else
      List.iter
        (fun (p : Net.Balance.proposal) ->
          incr moves;
          let c =
            List.find
              (fun (c : Net.Balance.candidate) ->
                c.Net.Balance.cd_pid = p.Net.Balance.pr_pid)
              !candidates
          in
          loads.(p.pr_from) <-
            { (loads.(p.pr_from)) with
              nl_cycles_per_s =
                loads.(p.pr_from).Net.Balance.nl_cycles_per_s
                -. c.Net.Balance.cd_load };
          loads.(p.pr_to) <-
            { (loads.(p.pr_to)) with
              nl_cycles_per_s =
                loads.(p.pr_to).Net.Balance.nl_cycles_per_s
                +. c.Net.Balance.cd_load };
          candidates :=
            List.map
              (fun (c : Net.Balance.candidate) ->
                if c.Net.Balance.cd_pid = p.pr_pid then
                  { c with Net.Balance.cd_node = p.pr_to }
                else c)
              !candidates)
        props
  done;
  (!periods, !moves, loads, !candidates)

(* A fully packed node vs idle peers: the planner spreads the load and
   then goes quiet, within a handful of periods and without a candidate
   ever bouncing. *)
let test_planner_convergence () =
  let b = Net.Balance.create cfg_on in
  let loads = Array.init 8 (fun n -> mk_load n (if n = 0 then 80. else 0.)) in
  let candidates =
    List.init 8 (fun i ->
        { Net.Balance.cd_pid = 100 + i; cd_node = 0; cd_load = 10. })
  in
  let periods, moves, loads, _ = converge b ~loads ~candidates ~max_periods:20 in
  check "planner went quiet within 20 periods" true (periods < 20);
  (* 8 jobs of equal weight over 8 nodes: the balanced fixed point
     needs at least 7 departures; bouncing would need more than 14 *)
  check "enough moves to balance" true (moves >= 7);
  check "no ping-pong inflation" true (moves <= 14);
  let gap, mean =
    Net.Balance.spread b ~loads
  in
  check "final spread inside the tolerance band" true
    (gap <= (cfg_on.Net.Balance.Config.tolerance *. mean) +. 1e-9)

(* Out-of-band spread where no individual move clears the hysteresis
   margin: the planner must stay silent rather than oscillate — and the
   mirrored layout must be silent too (no A<->B trade exists). *)
let test_planner_tolerance_band () =
  let b = Net.Balance.create cfg_on in
  let silent loads candidates =
    Net.Balance.plan b ~loads ~candidates ~node_of_rank:no_ranks = []
  in
  (* inside the band: equal loads, nothing to do *)
  check "equal loads are in-band" true
    (silent
       [| mk_load 0 10.; mk_load 1 10. |]
       [ { Net.Balance.cd_pid = 1; cd_node = 0; cd_load = 5. } ]);
  (* out of band (gap 4 > 0.25 * mean 8) but the only candidate is too
     heavy: 6 + 5*1.25 = 12.25 > 10 — moving it would just reverse the
     imbalance and invite the reverse move next period *)
  check "hysteresis margin blocks the oscillating move" true
    (silent
       [| mk_load 0 10.; mk_load 1 6. |]
       [ { Net.Balance.cd_pid = 1; cd_node = 0; cd_load = 5. } ]);
  check "mirror layout equally silent" true
    (silent
       [| mk_load 0 6.; mk_load 1 10. |]
       [ { Net.Balance.cd_pid = 1; cd_node = 1; cd_load = 5. } ]);
  (* zero measured load never moves, however wide the spread *)
  check "zero-load candidates are not moved" true
    (silent
       [| mk_load 0 10.; mk_load 1 0. |]
       [ { Net.Balance.cd_pid = 1; cd_node = 0; cd_load = 0. } ])

let test_planner_budget () =
  let b = Net.Balance.create cfg_on in
  (* two nodes: arrivals at node 1 are capped at move_budget = 2 even
     though six candidates qualify *)
  let candidates =
    List.init 6 (fun i ->
        { Net.Balance.cd_pid = 200 + i; cd_node = 0; cd_load = 10. })
  in
  let props =
    Net.Balance.plan b
      ~loads:[| mk_load 0 60.; mk_load 1 0. |]
      ~candidates ~node_of_rank:no_ranks
  in
  check_int "one period moves at most the budget" 2 (List.length props);
  List.iter
    (fun (p : Net.Balance.proposal) ->
      check_int "all to the idle node" 1 p.Net.Balance.pr_to)
    props;
  (* four nodes: departures from node 0 are capped too *)
  let props =
    Net.Balance.plan b
      ~loads:[| mk_load 0 60.; mk_load 1 0.; mk_load 2 0.; mk_load 3 0. |]
      ~candidates ~node_of_rank:no_ranks
  in
  check_int "departure budget caps the round" 2 (List.length props)

let test_planner_attraction () =
  let b = Net.Balance.create cfg_on in
  (* rank 7 lives on node 2; the candidate talks to rank 7 constantly *)
  for _ = 1 to 5 do
    Net.Balance.note_comm b ~pid:500 ~peer_rank:7
  done;
  let node_of_rank r = if r = 7 then Some 2 else None in
  let plan () =
    Net.Balance.plan b
      ~loads:[| mk_load 0 20.; mk_load 1 0.; mk_load 2 0. |]
      ~candidates:[ { Net.Balance.cd_pid = 500; cd_node = 0; cd_load = 10. } ]
      ~node_of_rank
  in
  (match plan () with
  | [ p ] ->
    check_int "affinity steers to the partner's node" 2 p.Net.Balance.pr_to
  | l -> Alcotest.failf "expected one proposal, got %d" (List.length l));
  (* strip the affinity: ties now break toward the lower node id *)
  Net.Balance.forget b ~pid:500;
  match plan () with
  | [ p ] ->
    check_int "without affinity, lower node id wins the tie" 1
      p.Net.Balance.pr_to
  | l -> Alcotest.failf "expected one proposal, got %d" (List.length l)

let test_affinity_decay_rekey () =
  let b = Net.Balance.create cfg_on in
  for _ = 1 to 4 do
    Net.Balance.note_comm b ~pid:1 ~peer_rank:3
  done;
  Net.Balance.note_comm b ~pid:1 ~peer_rank:9;
  check "rows are sorted by peer rank" true
    (Net.Balance.affinity b ~pid:1 = [ (3, 4.); (9, 1.) ]);
  Net.Balance.decay b;
  check "decay halves every cell" true
    (Net.Balance.affinity b ~pid:1 = [ (3, 2.); (9, 0.5) ]);
  Net.Balance.rekey b ~old_pid:1 ~new_pid:42;
  check "old pid row gone" true (Net.Balance.affinity b ~pid:1 = []);
  check "successor inherits the row" true
    (Net.Balance.affinity b ~pid:42 = [ (3, 2.); (9, 0.5) ]);
  Net.Balance.forget b ~pid:42;
  check "forget clears the row" true (Net.Balance.affinity b ~pid:42 = [])

(* ------------------------------------------------------------------ *)
(* Cluster integration: the engine on a 64-node cluster                *)
(* ------------------------------------------------------------------ *)

let serve_cluster ~nodes ~seed ~balance_on =
  Net.Cluster.create_cfg
    { Net.Cluster.Config.default with
      node_count = nodes;
      seed;
      net = Some (Net.Simnet.create ~latency_us:5.0 ());
      balance = { cfg_on with Net.Balance.Config.enabled = balance_on } }

let t2_cfg =
  { Mcc.Gridapp.Serve.clients = 8; services = 6; requests_per_client = 150;
    work_us = 40; skew = true; speculative = false }

let test_policy_rebalances_64_nodes () =
  let cluster = serve_cluster ~nodes:64 ~seed:env_seed ~balance_on:true in
  let d = Mcc.Gridapp.Serve.deploy ~placement:(`Pack 2) cluster t2_cfg in
  let r = Mcc.Gridapp.Serve.run d in
  check "exactly-once under policy moves" true
    (Mcc.Gridapp.Serve.exactly_once d r);
  let m = Net.Cluster.metrics cluster in
  check "the engine sampled" true
    (Obs.Metrics.counter_value m "balance.ticks" >= 2);
  check "the packed placement triggered policy moves" true
    (Obs.Metrics.counter_value m "balance.moves" >= 1);
  (* convergence, not churn: the skewed stream shifts its hot service
     six times over the run, so a tracking engine lands on the order of
     one move per phase — churn would move every period, far more
     often than it samples *)
  check "move count tracks the phases, it does not churn" true
    (Obs.Metrics.counter_value m "balance.moves"
    < Obs.Metrics.counter_value m "balance.ticks");
  check "the engine quiesced before the run ended" true
    (Obs.Metrics.gauge_read m "balance.last_move_s"
    <= 0.9 *. Net.Cluster.now cluster);
  (* the workload kept flowing across every policy move *)
  check "requests were forwarded through the moves" true
    (r.Mcc.Gridapp.Serve.rp_forwarded >= 0)

let test_policy_off_never_moves () =
  let cluster = serve_cluster ~nodes:64 ~seed:env_seed ~balance_on:false in
  let d = Mcc.Gridapp.Serve.deploy ~placement:(`Pack 2) cluster t2_cfg in
  let r = Mcc.Gridapp.Serve.run d in
  check "exactly-once with the engine off" true
    (Mcc.Gridapp.Serve.exactly_once d r);
  let m = Net.Cluster.metrics cluster in
  check_int "disabled engine never ticks" 0
    (Obs.Metrics.counter_value m "balance.ticks");
  check_int "disabled engine never moves" 0
    (Obs.Metrics.counter_value m "balance.moves")

(* ------------------------------------------------------------------ *)
(* No stranded messages: the Image path inherits the rank mailbox      *)
(* ------------------------------------------------------------------ *)

(* The forwarder-install + mailbox-drain happens inside the unified
   move commit, so a resurrection-initiated move must deliver traffic
   queued at the rank while its holder was down. *)
let test_image_move_inherits_mailbox () =
  let receiver =
    compile_c
      {|
int main() {
  migrate("suspend://bal_r1");
  int *buf = alloc_int(1);
  int r = msg_try_recv_int(0, 9, buf, 1);
  while (r == 0 - 1) { r = msg_try_recv_int(0, 9, buf, 1); }
  return buf[0];
}
|}
  in
  let sender =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  buf[0] = 654;
  return msg_send_int(1, 9, buf, 1);
}
|}
  in
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with node_count = 2 }
  in
  let rpid = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver in
  let _ = Net.Cluster.run cluster in
  check "receiver suspended" true
    (status_of cluster rpid = Vm.Process.Exited 0);
  let spid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender in
  let _ = Net.Cluster.run cluster in
  check "send to the dormant rank queued" true
    (status_of cluster spid = Vm.Process.Exited 0);
  match
    Net.Cluster.move cluster
      (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Resurrect
         (Net.Cluster.Move.Image
            { path = "bal_r1"; rank = Some 1; seed = 11 })
         ~dest:0)
  with
  | Error e ->
    Alcotest.failf "image move failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok o ->
    let _ = Net.Cluster.run cluster in
    check "successor drained the rank mailbox" true
      (status_of cluster o.Net.Cluster.Move.mv_pid = Vm.Process.Exited 654)

(* ------------------------------------------------------------------ *)
(* Reason equivalence: Move.reason is accounting, not behaviour        *)
(* ------------------------------------------------------------------ *)

let lossy_plan seed =
  { Net.Faults.none with
    f_seed = seed;
    f_loss = 0.10;
    f_dup = 0.05;
    f_jitter_s = 0.00002;
    f_retransmit_s = 0.0001 }

let crunch_worker =
  compile_c
    {|
int main() {
  int acc = 0;
  int round;
  int i;
  for (round = 0; round < 400; round = round + 1) {
    for (i = 0; i < 50; i = i + 1) acc = (acc + i * 7) % 1000000;
  }
  return acc % 100;
}
|}

(* One mid-run migration of a compute worker under a loss/dup plan,
   driven with a given reason; returns the full event trace. *)
let running_trace ~seed reason =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 2;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = lossy_plan seed }
  in
  let pid = Net.Cluster.spawn cluster ~node_id:0 crunch_worker in
  let _ = Net.Cluster.run cluster ~max_rounds:25 in
  (match
     Net.Cluster.move cluster
       (Net.Cluster.Move.request ~reason
          (Net.Cluster.Move.Running pid) ~dest:1)
   with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "move failed: %s" (Net.Cluster.migration_error_to_string e));
  let _ = Net.Cluster.run cluster in
  Obs.Trace.to_jsonl (Net.Cluster.trace cluster)

let test_equivalence_running () =
  List.iter
    (fun seed ->
      let explicit = running_trace ~seed Net.Cluster.Move.Explicit in
      let policy = running_trace ~seed Net.Cluster.Move.Policy in
      let rehome = running_trace ~seed Net.Cluster.Move.Rehome in
      check
        (Printf.sprintf "seed %d: Policy trace == Explicit trace" seed)
        true (policy = explicit);
      check
        (Printf.sprintf "seed %d: Rehome trace == Explicit trace" seed)
        true (rehome = explicit);
      check "the scenario actually migrated" true
        (let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s
             && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         contains explicit "migrate_done"))
    [ env_seed; env_seed + 31 ]

(* The resurrect convenience wrapper vs a hand-built Image request:
   identical traces AND identical metrics — the wrapper routes through
   the same move path, bumping the same counters. *)
let checkpointing_worker =
  compile_c
    {|
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) acc = (acc + i * 3) % 1000;
  migrate("checkpoint://bal_ck");
  for (i = 0; i < 100; i = i + 1) acc = (acc + i) % 1000;
  return acc % 10;
}
|}

let image_run ~seed ~wrapper =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with node_count = 2; seed }
  in
  let pid = Net.Cluster.spawn cluster ~node_id:0 checkpointing_worker in
  let _ = Net.Cluster.run cluster in
  check "original finished" true
    (match status_of cluster pid with Vm.Process.Exited _ -> true | _ -> false);
  let res =
    if wrapper then
      Net.Cluster.resurrect cluster ~seed:11 ~node_id:1 ~path:"bal_ck"
    else
      match
        Net.Cluster.move cluster
          (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Resurrect
             (Net.Cluster.Move.Image
                { path = "bal_ck"; rank = None; seed = 11 })
             ~dest:1)
      with
      | Ok o -> Ok o.Net.Cluster.Move.mv_pid
      | Error e -> Error (Net.Cluster.migration_error_to_string e)
  in
  (match res with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "resurrection failed: %s" m);
  let _ = Net.Cluster.run cluster in
  ( Obs.Trace.to_jsonl (Net.Cluster.trace cluster),
    Obs.Metrics.render (Net.Cluster.metrics cluster) )

let test_equivalence_image () =
  List.iter
    (fun seed ->
      let t_wrap, m_wrap = image_run ~seed ~wrapper:true in
      let t_move, m_move = image_run ~seed ~wrapper:false in
      check (Printf.sprintf "seed %d: wrapper trace == Image trace" seed)
        true (t_wrap = t_move);
      check
        (Printf.sprintf "seed %d: wrapper metrics == Image metrics" seed)
        true (m_wrap = m_move))
    [ env_seed; env_seed + 31 ]

(* The serving workload with one mid-traffic service re-homing, driven
   with reason Rehome vs Explicit under a loss/dup plan: byte-identical
   traces and a completed run either way. *)
let serve_trace ~seed reason =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 3;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = lossy_plan seed;
        forward_ttl_s = 0.25 }
  in
  let cfg =
    { Mcc.Gridapp.Serve.clients = 3; services = 2; requests_per_client = 30;
      work_us = 20; skew = false; speculative = false }
  in
  let d = Mcc.Gridapp.Serve.deploy cluster cfg in
  let moved = ref false in
  let guard = ref 0 in
  while (not (Mcc.Gridapp.Serve.all_exited d)) && !guard < 40 do
    incr guard;
    let _ =
      Net.Cluster.run cluster ~max_rounds:2_000_000 ~stop:(fun () ->
          Mcc.Gridapp.Serve.all_exited d
          || ((not !moved) && Net.Cluster.now cluster >= 0.0004))
    in
    if (not !moved) && Net.Cluster.now cluster >= 0.0004 then begin
      moved := true;
      let pid = d.Mcc.Gridapp.Serve.sv_service_pids.(0) in
      match Net.Cluster.entry_of_pid cluster pid with
      | Some e when e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Running
        ->
        let dest = (e.Net.Cluster.node_id + 1) mod 3 in
        (match
           Net.Cluster.move cluster
             (Net.Cluster.Move.request ~reason
                (Net.Cluster.Move.Running pid) ~dest)
         with
        | Ok o ->
          d.Mcc.Gridapp.Serve.sv_service_pids.(0) <-
            o.Net.Cluster.Move.mv_pid
        | Error e ->
          Alcotest.failf "re-home failed: %s"
            (Net.Cluster.migration_error_to_string e))
      | _ -> ()
    end
  done;
  check "serve run completed" true (Mcc.Gridapp.Serve.all_exited d);
  Obs.Trace.to_jsonl (Net.Cluster.trace cluster)

let test_equivalence_serve () =
  List.iter
    (fun seed ->
      let rehome = serve_trace ~seed Net.Cluster.Move.Rehome in
      let explicit = serve_trace ~seed Net.Cluster.Move.Explicit in
      check
        (Printf.sprintf "seed %d: serve Rehome trace == Explicit trace" seed)
        true (rehome = explicit))
    [ env_seed; env_seed + 31 ]

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "balance-planner",
      [
        Alcotest.test_case "converges and goes quiet" `Quick
          test_planner_convergence;
        Alcotest.test_case "tolerance band forbids ping-pong" `Quick
          test_planner_tolerance_band;
        Alcotest.test_case "per-node move budget" `Quick test_planner_budget;
        Alcotest.test_case "affinity steers the destination" `Quick
          test_planner_attraction;
        Alcotest.test_case "affinity decay / rekey / forget" `Quick
          test_affinity_decay_rekey;
      ] );
    ( "balance-cluster",
      [
        Alcotest.test_case "policy rebalances a packed 64-node cluster"
          `Quick test_policy_rebalances_64_nodes;
        Alcotest.test_case "disabled engine never ticks or moves" `Quick
          test_policy_off_never_moves;
        Alcotest.test_case "image move inherits the rank mailbox" `Quick
          test_image_move_inherits_mailbox;
      ] );
    ( "balance-equivalence",
      [
        Alcotest.test_case "Running subject: reason is accounting only"
          `Quick test_equivalence_running;
        Alcotest.test_case "Image subject: wrapper == hand-built request"
          `Quick test_equivalence_image;
        Alcotest.test_case "serving workload: Rehome == Explicit" `Quick
          test_equivalence_serve;
      ] );
  ]
