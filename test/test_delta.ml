(* Tests for delta migration and incremental checkpoints (wire v7):
   compact value-codec edges, property-style full-vs-delta round-trips
   over random heap mutation sequences, baseline negotiation and
   invalidation on the server, end-to-end delta shipping on the cluster
   (same results as full shipping, fewer bytes), lost/duplicated delta
   hops under the fault plan (fallback to full, no double spawn), and
   incremental checkpoint chains replayed at resurrection. *)

open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_c src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "C compile: %s" (Minic.Driver.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Compact value codec: varint / float-bits edges                      *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  let buf = Buffer.create 16 in
  Migrate.Wire.put_value buf v;
  let r = { Fir.Serial.data = Buffer.contents buf; pos = 0 } in
  let v' = Migrate.Wire.get_value r in
  check "no trailing bytes" true (r.Fir.Serial.pos = Buffer.length buf);
  v'

let test_codec_edges () =
  List.iter
    (fun v ->
      check
        (Printf.sprintf "%s round-trips" (Value.to_string v))
        true
        (Migrate.Wire.cell_equal v (roundtrip v)))
    [
      Value.Vunit;
      Value.Vbool true;
      Value.Vbool false;
      Value.Vint 0;
      Value.Vint 1;
      Value.Vint (-1);
      Value.Vint max_int;
      Value.Vint min_int;
      Value.Vfloat 0.0;
      Value.Vfloat (-0.0);
      Value.Vfloat Float.nan;
      Value.Vfloat Float.infinity;
      Value.Vfloat Float.neg_infinity;
      Value.Vfloat 1.5e-300;
      Value.Venum (7, 3);
      Value.Vptr (0, 0);
      Value.Vptr (123456, 789);
      Value.Vfun 42;
    ]

let test_cell_equal_float_bits () =
  (* delta diffing must compare floats by bit pattern: -0.0 is a real
     change and NaN is not *)
  check "-0.0 differs from 0.0" false
    (Migrate.Wire.cell_equal (Value.Vfloat 0.0) (Value.Vfloat (-0.0)));
  check "NaN equals itself" true
    (Migrate.Wire.cell_equal (Value.Vfloat Float.nan)
       (Value.Vfloat Float.nan));
  (* and the codec preserves the distinction *)
  (match roundtrip (Value.Vfloat (-0.0)) with
  | Value.Vfloat f -> check "-0.0 survives the wire" true (1.0 /. f < 0.0)
  | _ -> Alcotest.fail "float decoded as non-float");
  check "small ints are small on the wire" true
    (let buf = Buffer.create 16 in
     Migrate.Wire.put_value buf (Value.Vint 3);
     Buffer.length buf = 2)

(* ------------------------------------------------------------------ *)
(* Property: full vs baseline+delta round-trip over random mutations   *)
(* ------------------------------------------------------------------ *)

(* A worker whose state is a [cells]-slot array; between migration
   points it performs a seeded pseudo-random write sequence and churns
   short-lived allocations (so the GC runs over the dirty tracking). *)
let mutating_worker ~seed ~cells ~rounds ~writes =
  compile_c
    (Printf.sprintf
       {|
int main() {
  int n = %d;
  int *data = alloc_int(n);
  int i;
  for (i = 0; i < n; i = i + 1) data[i] = i * 3 + %d;
  int x = %d;
  int r;
  for (r = 0; r < %d; r = r + 1) {
    migrate("mcc://hop");
    for (i = 0; i < %d; i = i + 1) {
      x = (x * 75 + 74) %% 65537;
      data[x %% n] = data[x %% n] + x;
    }
    int *tmp = alloc_int(64);
    for (i = 0; i < 64; i = i + 1) tmp[i] = x + i;
    data[0] = data[0] + tmp[63];
  }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) acc = (acc + data[i]) %% 1000003;
  return acc;
}
|}
       cells seed seed rounds writes)

let run_to_migration proc =
  match Vm.Interp.run proc with
  | Vm.Process.Migrating _ -> ()
  | _ -> Alcotest.fail "worker did not reach a migration point"

let finish_locally proc =
  let rec go () =
    match proc.Vm.Process.status with
    | Vm.Process.Running ->
      ignore (Vm.Interp.run proc);
      go ()
    | Vm.Process.Migrating _ ->
      Vm.Process.migration_failed proc;
      go ()
    | Vm.Process.Exited n -> n
    | Vm.Process.Trapped m -> Alcotest.failf "worker trapped: %s" m
  in
  go ()

let test_delta_roundtrip_property () =
  List.iter
    (fun seed ->
      let rounds = 4 in
      let fir = mutating_worker ~seed ~cells:2000 ~rounds ~writes:40 in
      let proc = Vm.Process.create fir in
      run_to_migration proc;
      let baseline =
        ref (Migrate.Pack.pack_request ~with_binary:false proc)
      in
      let last = ref None in
      for _hop = 2 to rounds do
        Vm.Process.migration_failed proc;
        run_to_migration proc;
        let packed = Migrate.Pack.pack_request ~with_binary:false proc in
        let digest =
          Migrate.Wire.image_digest !baseline.Migrate.Pack.p_image
        in
        (match
           Migrate.Pack.delta ~baseline:!baseline.Migrate.Pack.p_image
             ~base_digest:digest packed
         with
        | None -> Alcotest.fail "delta encoding impossible"
        | Some (dbytes, stats) ->
          check "delta ships fewer cells than the heap holds" true
            (stats.Migrate.Wire.ds_shipped_cells
            < stats.Migrate.Wire.ds_total_cells);
          (match Migrate.Wire.decode_packet dbytes with
          | Migrate.Wire.Full _ -> Alcotest.fail "delta decoded as full"
          | Migrate.Wire.Delta d ->
            let image =
              Migrate.Wire.apply_delta
                ~baseline:!baseline.Migrate.Pack.p_image d
            in
            (* the strong form: the reconstruction re-encodes to the
               exact bytes a full hop would have carried, so heap cells,
               pointer table and every other field are byte-identical *)
            check
              (Printf.sprintf "seed %d: reconstruction is byte-identical"
                 seed)
              true
              (String.equal
                 (Migrate.Wire.encode image)
                 packed.Migrate.Pack.p_bytes);
            last := Some image));
        baseline := packed
      done;
      (* resuming the delta-reconstructed image yields the same result
         as the process that never left *)
      match !last with
      | None -> Alcotest.fail "no hops ran"
      | Some image -> (
        match
          Migrate.Pack.unpack_image ~arch:Vm.Arch.cisc32
            ~bytes_len:(String.length (Migrate.Wire.encode image))
            image
        with
        | Error m -> Alcotest.failf "unpack of reconstruction: %s" m
        | Ok (proc2, _masm, _linked, _costs) ->
          let local = finish_locally proc in
          let resumed = finish_locally proc2 in
          check_int
            (Printf.sprintf "seed %d: post-resume results agree" seed)
            local resumed))
    [ 1; 2; 7; 42; 20260807 ]

(* ------------------------------------------------------------------ *)
(* Server: baseline cache, negotiation, invalidation                   *)
(* ------------------------------------------------------------------ *)

let pack_pair () =
  let fir = mutating_worker ~seed:9 ~cells:400 ~rounds:2 ~writes:25 in
  let proc = Vm.Process.create fir in
  run_to_migration proc;
  let p1 = Migrate.Pack.pack_request ~with_binary:false proc in
  Vm.Process.migration_failed proc;
  run_to_migration proc;
  let p2 = Migrate.Pack.pack_request ~with_binary:false proc in
  p1, p2

let test_server_delta_accept () =
  let p1, p2 = pack_pair () in
  let server = Migrate.Server.(create_cfg Config.default Vm.Arch.cisc32) in
  (match Migrate.Server.handle server p1.Migrate.Pack.p_bytes with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "full image rejected: %s" m);
  let digest = Migrate.Wire.image_digest p1.Migrate.Pack.p_image in
  check "the full image became a baseline" true
    (Migrate.Server.has_baseline server digest);
  let dbytes =
    match
      Migrate.Pack.delta ~baseline:p1.Migrate.Pack.p_image
        ~base_digest:digest p2
    with
    | Some (b, _) -> b
    | None -> Alcotest.fail "delta encoding impossible"
  in
  check "the delta travels smaller" true
    (String.length dbytes < String.length p2.Migrate.Pack.p_bytes);
  (match Migrate.Server.handle server dbytes with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "delta rejected: %s" m);
  let m = Migrate.Server.metrics server in
  check_int "one delta hit" 1
    (Obs.Metrics.counter_value m "migrate.delta_hits");
  check_int "no delta misses" 0
    (Obs.Metrics.counter_value m "migrate.delta_misses");
  check "hit-rate gauge follows" true
    (Obs.Metrics.gauge_read m "migrate.delta_hit_rate" = 1.0);
  (* the reconstruction itself was retained: a THIRD generation could
     diff against p2's digest *)
  check "reconstruction retained as a baseline" true
    (Migrate.Server.has_baseline server
       (Migrate.Wire.image_digest p2.Migrate.Pack.p_image))

let test_server_unknown_baseline () =
  let p1, p2 = pack_pair () in
  let server = Migrate.Server.(create_cfg Config.default Vm.Arch.cisc32) in
  (match Migrate.Server.handle server p1.Migrate.Pack.p_bytes with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "full image rejected: %s" m);
  (* receiver restart: every baseline is gone *)
  Migrate.Server.clear_baselines server;
  let digest = Migrate.Wire.image_digest p1.Migrate.Pack.p_image in
  check "negotiation now reports no baseline" false
    (Migrate.Server.has_baseline server digest);
  let dbytes =
    match
      Migrate.Pack.delta ~baseline:p1.Migrate.Pack.p_image
        ~base_digest:digest p2
    with
    | Some (b, _) -> b
    | None -> Alcotest.fail "delta encoding impossible"
  in
  (match Migrate.Server.handle server dbytes with
  | Ok _ -> Alcotest.fail "delta accepted without its baseline"
  | Error m ->
    check "rejection is the fallback cue" true
      (Migrate.Server.is_unknown_baseline m));
  (* the sender's fallback: re-ship the full image *)
  (match Migrate.Server.handle server p2.Migrate.Pack.p_bytes with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "fallback full rejected: %s" m);
  let m = Migrate.Server.metrics server in
  check_int "the miss was counted" 1
    (Obs.Metrics.counter_value m "migrate.delta_misses");
  check "full and delta bytes are ledgered separately" true
    (Obs.Metrics.counter_value m "migrate.bytes_full"
     = String.length p1.Migrate.Pack.p_bytes
       + String.length p2.Migrate.Pack.p_bytes
    && Obs.Metrics.counter_value m "migrate.bytes_delta"
       = String.length dbytes)

let test_baseline_lru_bound () =
  let p1, p2 = pack_pair () in
  let server =
    Migrate.Server.(
      create_cfg { Config.default with baseline_cache = 1 } Vm.Arch.cisc32)
  in
  let d1 = Migrate.Server.remember_baseline server p1.Migrate.Pack.p_image in
  check "first baseline held" true (Migrate.Server.has_baseline server d1);
  let d2 = Migrate.Server.remember_baseline server p2.Migrate.Pack.p_image in
  check "bound is enforced" true
    (Migrate.Server.baseline_count server = 1);
  check "stalest was evicted" false (Migrate.Server.has_baseline server d1);
  check "newest survives" true (Migrate.Server.has_baseline server d2);
  let off =
    Migrate.Server.(
      create_cfg { Config.default with baseline_cache = 0 } Vm.Arch.cisc32)
  in
  ignore (Migrate.Server.remember_baseline off p1.Migrate.Pack.p_image);
  check "cache 0 retains nothing" true
    (Migrate.Server.baseline_count off = 0)

(* ------------------------------------------------------------------ *)
(* Cluster: delta shipping end-to-end                                  *)
(* ------------------------------------------------------------------ *)

(* Bounce node0 <-> node1 five times, mutating a slice of a 4000-slot
   array between hops: hop 1 is cold (full), every later hop finds its
   baseline on the other side. *)
let bouncing_worker =
  {|
int main() {
  int n = 4000;
  int *data = alloc_int(n);
  int i;
  for (i = 0; i < n; i = i + 1) data[i] = i * 5;
  int r;
  for (r = 0; r < 5; r = r + 1) {
    for (i = 0; i < 60; i = i + 1) {
      data[(r * 60 + i) % n] = data[(r * 60 + i) % n] + r + 1;
    }
    if (r % 2 == 0) { migrate("mcc://node1"); }
    else { migrate("mcc://node0"); }
  }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) acc = (acc + data[i]) % 1000003;
  return acc;
}
|}

let bounce ~delta =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 2;
        seed = 5;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        delta }
  in
  let pid =
    Net.Cluster.spawn cluster ~node_id:0 (compile_c bouncing_worker)
  in
  let _ = Net.Cluster.run cluster in
  let code =
    Net.Cluster.statuses cluster
    |> List.filter_map (fun (_, _, _, s) ->
           match s with Vm.Process.Exited n when n <> 0 -> Some n | _ -> None)
  in
  ignore pid;
  code, Net.Cluster.migrations cluster, Net.Cluster.metrics cluster

let test_cluster_delta_bounce () =
  let code_on, recs_on, m_on = bounce ~delta:true in
  let code_off, recs_off, m_off = bounce ~delta:false in
  check "delta on and off finish with identical results" true
    (code_on = code_off && code_on <> []);
  let full_hops r = List.filter (fun mr -> not mr.Net.Cluster.mr_delta) r in
  let delta_hops r = List.filter (fun mr -> mr.Net.Cluster.mr_delta) r in
  check "delta off never ships a delta" true (delta_hops recs_off = []);
  check_int "hop 1 is cold, hops 2..5 are deltas" 4
    (List.length (delta_hops recs_on));
  let cold =
    match full_hops recs_on with
    | mr :: _ -> mr.Net.Cluster.mr_bytes
    | [] -> Alcotest.fail "no cold hop"
  in
  List.iter
    (fun mr ->
      check "every warm delta hop is smaller than the cold hop" true
        (mr.Net.Cluster.mr_bytes < cold))
    (delta_hops recs_on);
  check "delta bytes ledgered on the cluster registry" true
    (Obs.Metrics.counter_value m_on "migrate.bytes_delta" > 0
    && Obs.Metrics.counter_value m_off "migrate.bytes_delta" = 0);
  check "hit rate reflects 4/5 delta hops" true
    (let r = Obs.Metrics.gauge_read m_on "migrate.delta_hit_rate" in
     r >= 0.79 && r <= 0.81)

(* Lost and duplicated DELTA hops under the fault plan: the retry
   protocol and idempotent receive must keep exactly-once semantics, and
   an unknown-baseline rejection (none here, but loss-induced
   retransmission) must never double-spawn. *)
let faulty_delta_bounce seed =
  let plan =
    { Net.Faults.none with
      Net.Faults.f_seed = seed;
      f_loss = 0.3;
      f_dup = 0.25;
      f_retransmit_s = 0.002 }
  in
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 2;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = plan }
  in
  let pid =
    Net.Cluster.spawn cluster ~node_id:0 (compile_c bouncing_worker)
  in
  ignore pid;
  let _ = Net.Cluster.run cluster in
  let exited =
    Net.Cluster.statuses cluster
    |> List.filter_map (fun (_, _, _, s) ->
           match s with
           | Vm.Process.Exited n when n <> 0 -> Some n
           | _ -> None)
  in
  check
    (Printf.sprintf "seed %d: exactly one worker finished" seed)
    true
    (List.length exited = 1);
  exited

let test_faulty_delta_hops () =
  let reference, _, _ = bounce ~delta:true in
  List.iter
    (fun seed ->
      let exited = faulty_delta_bounce seed in
      check
        (Printf.sprintf "seed %d: result survives lost/dup delta hops"
           seed)
        true
        (exited = reference))
    [ 3; 20260807 ]

(* ------------------------------------------------------------------ *)
(* Incremental checkpoints: chain segments + resurrection replay       *)
(* ------------------------------------------------------------------ *)

let checkpointing_worker =
  {|
int main() {
  int n = 3000;
  int *data = alloc_int(n);
  int i;
  for (i = 0; i < n; i = i + 1) data[i] = i;
  int r;
  for (r = 0; r < 4; r = r + 1) {
    for (i = 0; i < 40; i = i + 1) {
      data[(r * 40 + i) % n] = data[(r * 40 + i) % n] * 2 + 1;
    }
    migrate("checkpoint://ck");
  }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) acc = (acc + data[i]) % 1000003;
  return acc;
}
|}

let test_incremental_checkpoints () =
  let fir = compile_c checkpointing_worker in
  let run ~delta =
    let cluster =
      Net.Cluster.create_cfg
        { Net.Cluster.Config.default with node_count = 2; seed = 5; delta }
    in
    let pid = Net.Cluster.spawn cluster ~node_id:0 fir in
    let _ = Net.Cluster.run cluster in
    let code =
      match Net.Cluster.entry_of_pid cluster pid with
      | Some e -> (
        match e.Net.Cluster.proc.Vm.Process.status with
        | Vm.Process.Exited n -> n
        | _ -> Alcotest.fail "worker did not finish")
      | None -> Alcotest.fail "worker lost"
    in
    cluster, code
  in
  let cluster, code = run ~delta:true in
  let _, code_full = run ~delta:false in
  check_int "delta checkpoints do not change the result" code_full code;
  let st = Net.Cluster.storage cluster in
  check "the base segment exists" true (Net.Storage.exists st "ck");
  check "later checkpoints became chain segments" true
    (Net.Storage.exists st "ck.d1");
  let ckpts =
    List.filter
      (fun mr -> mr.Net.Cluster.mr_kind = `Checkpoint)
      (Net.Cluster.migrations cluster)
  in
  check "at least one checkpoint shipped as a delta" true
    (List.exists (fun mr -> mr.Net.Cluster.mr_delta) ckpts);
  check "delta segments are smaller than the full checkpoint" true
    (let full =
       List.filter (fun mr -> not mr.Net.Cluster.mr_delta) ckpts
     and deltas = List.filter (fun mr -> mr.Net.Cluster.mr_delta) ckpts in
     match full, deltas with
     | f :: _, _ :: _ ->
       List.for_all
         (fun d -> d.Net.Cluster.mr_bytes < f.Net.Cluster.mr_bytes)
         deltas
     | _ -> false);
  (* resurrection replays base + deltas and resumes from the LAST
     checkpoint: the revived worker finishes with the same result *)
  match Net.Cluster.resurrect cluster ~node_id:1 ~path:"ck" with
  | Error m -> Alcotest.failf "resurrect: %s" m
  | Ok pid2 ->
    let _ = Net.Cluster.run cluster in
    (match Net.Cluster.entry_of_pid cluster pid2 with
    | Some e ->
      check "replayed chain resumes and finishes identically" true
        (e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Exited code)
    | None -> Alcotest.fail "resurrected pid lost")

let suites =
  [
    ( "delta.codec",
      [
        Alcotest.test_case "value codec edges round-trip" `Quick
          test_codec_edges;
        Alcotest.test_case "float cells compare by bit pattern" `Quick
          test_cell_equal_float_bits;
      ] );
    ( "delta.roundtrip",
      [
        Alcotest.test_case
          "random mutation sequences: delta == full, resume agrees" `Quick
          test_delta_roundtrip_property;
      ] );
    ( "delta.server",
      [
        Alcotest.test_case "full then delta accepted, digest-verified"
          `Quick test_server_delta_accept;
        Alcotest.test_case "unknown baseline rejected, full fallback"
          `Quick test_server_unknown_baseline;
        Alcotest.test_case "baseline cache is LRU-bounded" `Quick
          test_baseline_lru_bound;
      ] );
    ( "delta.cluster",
      [
        Alcotest.test_case "bounce ships deltas, same results as full"
          `Quick test_cluster_delta_bounce;
        Alcotest.test_case "lost/dup delta hops: no double spawn" `Quick
          test_faulty_delta_hops;
        Alcotest.test_case "incremental checkpoints replay at resurrect"
          `Quick test_incremental_checkpoints;
      ] );
  ]
