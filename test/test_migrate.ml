(* Tests for migration: protocol parsing, the process-image wire format,
   pack/unpack round-trips (homogeneous and heterogeneous), the binary
   fast path, mid-speculation migration, and the migration server's
   rejection of corrupt or unsafe images. *)

open Fir
open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let exit_code = function
  | Vm.Process.Exited n -> n
  | Vm.Process.Trapped msg -> Alcotest.failf "trapped: %s" msg
  | Vm.Process.Running -> Alcotest.fail "still running"
  | Vm.Process.Migrating _ -> Alcotest.fail "unexpectedly migrating"

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  (match Migrate.Protocol.parse "mcc://node3" with
  | Migrate.Protocol.Migrate_to h -> check_str "host" "node3" h
  | _ -> Alcotest.fail "wrong protocol");
  (match Migrate.Protocol.parse "suspend://ckpt.img" with
  | Migrate.Protocol.Suspend_to p -> check_str "path" "ckpt.img" p
  | _ -> Alcotest.fail "wrong protocol");
  (match Migrate.Protocol.parse "checkpoint://step5" with
  | Migrate.Protocol.Checkpoint_to p -> check_str "path" "step5" p
  | _ -> Alcotest.fail "wrong protocol");
  check "ckpt alias" true
    (Migrate.Protocol.parse "ckpt://x" = Migrate.Protocol.Checkpoint_to "x");
  List.iter
    (fun bad ->
      match Migrate.Protocol.parse bad with
      | exception Migrate.Protocol.Bad_target _ -> ()
      | _ -> Alcotest.failf "accepted bad target %S" bad)
    [ ""; "mcc://"; "nonsense"; "http://x"; "mcc:/x" ];
  check "checkpoint continues" true
    (Migrate.Protocol.continues_after_success
       (Migrate.Protocol.Checkpoint_to "x"));
  check "migrate does not continue" false
    (Migrate.Protocol.continues_after_success
       (Migrate.Protocol.Migrate_to "x"))

let test_protocol_roundtrip () =
  List.iter
    (fun t ->
      check "to_string/parse roundtrip" true
        (Migrate.Protocol.parse (Migrate.Protocol.to_string t) = t))
    [
      Migrate.Protocol.Migrate_to "host9";
      Migrate.Protocol.Suspend_to "a/b.img";
      Migrate.Protocol.Checkpoint_to "c";
    ]

(* ------------------------------------------------------------------ *)
(* A migrating workload                                                *)
(* ------------------------------------------------------------------ *)

(* Fill an array with 0..n-1, sum the first half, migrate with the array
   and the partial sum live, then finish the sum on the other side. *)
let migrating_sum n =
  Builder.(
    let fill, fill_entry =
      for_loop ~name:"fill" ~lo:(int 0) ~hi:(int n)
        ~state_tys:[ Types.Tptr Types.Tint ]
        ~state:[ nil (Types.Tptr Types.Tint) ] (* replaced below *)
        ~body:(fun i st continue ->
          match st with
          | [ arr ] -> store arr i i (continue [ arr ])
          | _ -> assert false)
        ~after:(fun st ->
          match st with
          | [ arr ] -> callf "sum_lo" [ arr; int 0; int 0 ]
          | _ -> assert false)
    in
    ignore fill_entry;
    let sum_lo =
      func "sum_lo"
        [ "arr", Types.Tptr Types.Tint; "i", Types.Tint; "acc", Types.Tint ]
        (fun args ->
          match args with
          | [ arr; i; acc ] ->
            lt i (int (n / 2)) (fun more ->
                if_ more
                  (load Types.Tint arr i (fun x ->
                       add acc x (fun acc' ->
                           add i (int 1) (fun i' ->
                               callf "sum_lo" [ arr; i'; acc' ]))))
                  (string "mcc://elsewhere" (fun dst ->
                       migrate ~label:17 dst (fn "sum_hi")
                         [ arr; i; acc ])))
          | _ -> assert false)
    in
    let sum_hi =
      func "sum_hi"
        [ "arr", Types.Tptr Types.Tint; "i", Types.Tint; "acc", Types.Tint ]
        (fun args ->
          match args with
          | [ arr; i; acc ] ->
            lt i (int n) (fun more ->
                if_ more
                  (load Types.Tint arr i (fun x ->
                       add acc x (fun acc' ->
                           add i (int 1) (fun i' ->
                               callf "sum_hi" [ arr; i'; acc' ]))))
                  (exit_ acc))
          | _ -> assert false)
    in
    let main =
      func "main" [] (fun _ ->
          array Types.Tint ~size:(int n) ~init:(int 0) (fun arr ->
              callf "fill" [ int 0; arr ]))
    in
    prog [ fill; sum_lo; sum_hi; main ])

let run_to_migration ?(arch = Vm.Arch.cisc32) p =
  let proc = Vm.Process.create ~arch p in
  match Vm.Interp.run proc with
  | Vm.Process.Migrating req -> proc, req
  | s ->
    Alcotest.failf "expected migration, got %s"
      (match s with
      | Vm.Process.Exited n -> Printf.sprintf "exit %d" n
      | Vm.Process.Trapped m -> "trap " ^ m
      | _ -> "?")

let expected_sum n = n * (n - 1) / 2

(* ------------------------------------------------------------------ *)
(* Pack / unpack                                                       *)
(* ------------------------------------------------------------------ *)

let test_pack_roundtrip_untrusted () =
  let n = 60 in
  let proc, _req = run_to_migration (migrating_sum n) in
  let packed = Migrate.Pack.pack_request proc in
  match
    Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 packed.Migrate.Pack.p_bytes
  with
  | Error msg -> Alcotest.failf "unpack failed: %s" msg
  | Ok (proc', _masm, _linked, costs) ->
    check "untrusted images are verified" true costs.Migrate.Pack.u_verified;
    check "untrusted images are recompiled" true
      costs.Migrate.Pack.u_recompiled;
    check "compile cycles charged" true
      (costs.Migrate.Pack.u_compile_cycles > 0);
    let status = Vm.Interp.run proc' in
    check_int "migrated process finishes the sum" (expected_sum n)
      (exit_code status)

let test_pack_roundtrip_binary () =
  let n = 40 in
  let proc, _req = run_to_migration (migrating_sum n) in
  let packed = Migrate.Pack.pack_request proc in
  match
    Migrate.Pack.unpack ~trusted:true ~arch:Vm.Arch.cisc32
      packed.Migrate.Pack.p_bytes
  with
  | Error msg -> Alcotest.failf "unpack failed: %s" msg
  | Ok (proc', masm, _linked, costs) ->
    check "binary fast path skips recompilation" false
      costs.Migrate.Pack.u_recompiled;
    (* only the stub-linking charge remains: it must be well under the
       full recompile of the same image *)
    let full =
      match
        Migrate.Pack.unpack ~trusted:false ~arch:Vm.Arch.cisc32
          packed.Migrate.Pack.p_bytes
      with
      | Ok (_, _, _, c) -> c.Migrate.Pack.u_compile_cycles
      | Error m -> Alcotest.failf "untrusted unpack failed: %s" m
    in
    check "fast path much cheaper than recompilation" true
      (costs.Migrate.Pack.u_compile_cycles * 3 < full);
    (* the shipped binary actually runs *)
    let emu = Vm.Emulator.create masm proc' in
    check_int "shipped binary resumes correctly" (expected_sum n)
      (exit_code (Vm.Emulator.run emu))

let test_pack_heterogeneous () =
  let n = 40 in
  let proc, _req = run_to_migration ~arch:Vm.Arch.cisc32 (migrating_sum n) in
  let packed = Migrate.Pack.pack_request proc in
  (* even a trusted image cannot use the binary fast path cross-arch *)
  match
    Migrate.Pack.unpack ~trusted:true ~arch:Vm.Arch.risc64
      packed.Migrate.Pack.p_bytes
  with
  | Error msg -> Alcotest.failf "unpack failed: %s" msg
  | Ok (proc', masm, _linked, costs) ->
    check "cross-arch forces recompilation" true
      costs.Migrate.Pack.u_recompiled;
    check_str "image recompiled for target" "risc64" masm.Vm.Masm.im_arch;
    let emu = Vm.Emulator.create masm proc' in
    check_int "resumes on the other architecture" (expected_sum n)
      (exit_code (Vm.Emulator.run emu))

let test_pack_gc_shrinks_image () =
  (* pack garbage-collects first: an image of a process with lots of
     garbage must not be much bigger than one without *)
  let p_with_garbage =
    Builder.(
      let churn, churn_entry =
        for_loop ~name:"churn" ~lo:(int 0) ~hi:(int 2000) ~state_tys:[]
          ~state:[]
          ~body:(fun _i _st continue ->
            tuple [ Types.Tint, int 1 ] (fun _ -> continue []))
          ~after:(fun _st ->
            string "mcc://x" (fun dst ->
                migrate ~label:1 dst (fn "after") []))
      in
      ignore churn_entry;
      prog
        [
          churn;
          func "after" [] (fun _ -> exit_ (int 0));
          func "main" [] (fun _ -> callf "churn" [ int 0 ]);
        ])
  in
  let proc, _ = run_to_migration p_with_garbage in
  let packed = Migrate.Pack.pack_request ~with_binary:false proc in
  let live_cells =
    Array.length packed.Migrate.Pack.p_image.Migrate.Wire.i_cells
  in
  check "pack collected the garbage" true (live_cells < 1000)

let test_spec_migration () =
  (* checkpoint in the middle of a speculation, restore, then roll back:
     the restored records must still work *)
  let p =
    Builder.(
      prog
        [
          func "body"
            [ "c", Types.Tint; "cell", Types.Tptr Types.Tint ]
            (fun args ->
              match args with
              | [ c; cell ] ->
                eq c (int 0) (fun fresh ->
                    if_ fresh
                      (store cell (int 0) (int 99)
                         (string "mcc://backup" (fun dst ->
                              migrate ~label:5 dst (fn "resume_pt")
                                [ cell ])))
                      (load Types.Tint cell (int 0) (fun v -> exit_ v)))
              | _ -> assert false);
          func "resume_pt" [ "cell", Types.Tptr Types.Tint ] (fun args ->
              match args with
              | [ _cell ] -> rollback (int 1) (int 1)
              | _ -> assert false);
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int 1) ~init:(int 5) (fun cell ->
                  speculate (fn "body") [ cell ]));
        ])
  in
  let proc, _ = run_to_migration p in
  check_int "speculation depth travels" 1
    (Spec.Engine.depth proc.Vm.Process.spec);
  let packed = Migrate.Pack.pack_request proc in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 packed.Migrate.Pack.p_bytes with
  | Error msg -> Alcotest.failf "unpack failed: %s" msg
  | Ok (proc', _, _, _) ->
    check_int "restored speculation depth" 1
      (Spec.Engine.depth proc'.Vm.Process.spec);
    let status = Vm.Interp.run proc' in
    (* rollback after restore must see the pre-speculation value *)
    check_int "restored records roll back correctly" 5 (exit_code status)

(* ------------------------------------------------------------------ *)
(* Rejection paths                                                     *)
(* ------------------------------------------------------------------ *)

let packed_bytes () =
  let proc, _ = run_to_migration (migrating_sum 20) in
  (Migrate.Pack.pack_request proc).Migrate.Pack.p_bytes

let test_reject_corrupt () =
  let bytes = packed_bytes () in
  let b = Bytes.of_string bytes in
  let k = Bytes.length b / 2 in
  Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x55));
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt image accepted"

let test_reject_truncated () =
  let bytes = packed_bytes () in
  match
    Migrate.Pack.unpack ~arch:Vm.Arch.cisc32
      (String.sub bytes 0 (String.length bytes - 10))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated image accepted"

(* Re-encode a tampered image (valid checksums, malicious content). *)
let reencode tamper =
  let proc, _ = run_to_migration (migrating_sum 20) in
  let packed = Migrate.Pack.pack_request proc in
  Migrate.Wire.encode (tamper packed.Migrate.Pack.p_image)

let test_reject_ill_typed_fir () =
  (* replace the FIR with a program that reads an int as a pointer *)
  let evil =
    let v = Var.fresh "p" in
    Ast.program ~main:"main"
      [
        {
          Ast.f_name = "main";
          f_params = [];
          f_body =
            Ast.Let_atom
              ( v,
                Types.Tptr Types.Tint,
                Ast.Int 1234,
                Ast.Exit (Ast.Int 0) );
        };
      ]
  in
  let bytes =
    (* the digest must match the substituted bytes, or the wire layer
       rejects before the typechecker ever runs — that path has its own
       test below *)
    reencode (fun im ->
        let fir = Serial.encode evil in
        { im with
          Migrate.Wire.i_fir = fir;
          i_digest = Fir.Digest.of_encoded fir;
        })
  in
  (match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error msg ->
    if not (String.length msg >= 12 && String.sub msg 0 12 = "FIR rejected")
    then Alcotest.failf "expected a typecheck rejection, got: %s" msg
  | Ok _ -> Alcotest.fail "ill-typed FIR accepted by untrusted unpack");
  (* note: a TRUSTED unpack would accept it — trust is the only bypass *)
  ()

let test_reject_digest_mismatch () =
  (* swap the FIR without fixing the digest: the wire layer must reject
     the image as corrupt before typecheck or cache can see it *)
  let other =
    let proc, _ = run_to_migration (migrating_sum 21) in
    (Migrate.Pack.pack_request proc).Migrate.Pack.p_image
  in
  let bytes =
    reencode (fun im -> { im with Migrate.Wire.i_fir = other.Migrate.Wire.i_fir })
  in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error msg ->
    if
      not
        (String.length msg >= 7 && String.sub msg 0 7 = "corrupt")
    then Alcotest.failf "expected a corrupt-image rejection, got: %s" msg
  | Ok _ -> Alcotest.fail "digest-mismatched image accepted"

let test_reject_bad_menv () =
  let bytes =
    reencode (fun im -> { im with Migrate.Wire.i_menv = 999999 })
  in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad migrate_env accepted"

let test_reject_bad_entry () =
  let bytes =
    reencode (fun im -> { im with Migrate.Wire.i_entry = "no_such_fun" })
  in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown resume function accepted"

let test_reject_bad_ftable () =
  let bytes =
    reencode (fun im ->
        { im with Migrate.Wire.i_ftable = [ "bogus"; "entries" ] })
  in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong function table accepted"

let test_reject_forged_heap_ref () =
  (* plant a reference to a pointer-table index that does not exist *)
  let bytes =
    reencode (fun im ->
        let cells = Array.copy im.Migrate.Wire.i_cells in
        (* find a data cell (skip a header) and forge it *)
        cells.(Heap.header_cells) <- Value.Vptr (424242, 0);
        { im with Migrate.Wire.i_cells = cells })
  in
  match Migrate.Pack.unpack ~arch:Vm.Arch.cisc32 bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged heap reference accepted"

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let test_server () =
  let server = Migrate.Server.(create_cfg Config.default Vm.Arch.risc64) in
  let bytes = packed_bytes () in
  (match Migrate.Server.handle server bytes with
  | Error msg -> Alcotest.failf "server rejected a good image: %s" msg
  | Ok outcome ->
    check_int "fresh pid assigned" 1000 outcome.Migrate.Server.o_pid;
    let emu =
      Vm.Emulator.create outcome.Migrate.Server.o_masm
        outcome.Migrate.Server.o_process
    in
    check_int "server-reconstructed process runs" (expected_sum 20)
      (exit_code (Vm.Emulator.run emu)));
  (match Migrate.Server.handle server "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "server accepted garbage");
  let s = Migrate.Server.stats server in
  check_int "accepted" 1 s.Migrate.Server.accepted;
  check_int "rejected" 1 s.Migrate.Server.rejected;
  check_int "recompilations" 1 s.Migrate.Server.recompilations

let test_image_size_scales () =
  let size n =
    let proc, _ = run_to_migration (migrating_sum n) in
    String.length
      (Migrate.Pack.pack_request ~with_binary:false proc)
        .Migrate.Pack.p_bytes
  in
  let s100 = size 100 and s1000 = size 1000 in
  (* 900 extra int cells over a fixed FIR payload; v7's varint/run-length
     heap segments cost at least one wire byte per distinct cell *)
  check "image size grows with heap" true (s1000 - s100 > 900)

let suites =
  [
    ( "migrate.protocol",
      [
        Alcotest.test_case "parsing" `Quick test_protocol_parse;
        Alcotest.test_case "round-trip" `Quick test_protocol_roundtrip;
      ] );
    ( "migrate.pack",
      [
        Alcotest.test_case "untrusted round-trip (verify+recompile)" `Quick
          test_pack_roundtrip_untrusted;
        Alcotest.test_case "trusted binary fast path" `Quick
          test_pack_roundtrip_binary;
        Alcotest.test_case "heterogeneous migration" `Quick
          test_pack_heterogeneous;
        Alcotest.test_case "pack collects garbage first" `Quick
          test_pack_gc_shrinks_image;
        Alcotest.test_case "mid-speculation migration" `Quick
          test_spec_migration;
        Alcotest.test_case "image size scales with heap" `Quick
          test_image_size_scales;
      ] );
    ( "migrate.reject",
      [
        Alcotest.test_case "corrupt bytes" `Quick test_reject_corrupt;
        Alcotest.test_case "truncated bytes" `Quick test_reject_truncated;
        Alcotest.test_case "ill-typed FIR" `Quick test_reject_ill_typed_fir;
        Alcotest.test_case "FIR digest mismatch" `Quick
          test_reject_digest_mismatch;
        Alcotest.test_case "bad migrate_env" `Quick test_reject_bad_menv;
        Alcotest.test_case "unknown resume function" `Quick
          test_reject_bad_entry;
        Alcotest.test_case "wrong function table" `Quick
          test_reject_bad_ftable;
        Alcotest.test_case "forged heap reference" `Quick
          test_reject_forged_heap_ref;
      ] );
    ( "migrate.server",
      [ Alcotest.test_case "accept/reject statistics" `Quick test_server ] );
  ]
