let () =
  Alcotest.run "mojave"
    (Test_obs.suites @ Test_fir.suites @ Test_runtime.suites @ Test_spec.suites
    @ Test_vm.suites @ Test_migrate.suites @ Test_codecache.suites
    @ Test_net.suites
    @ Test_minic.suites @ Test_miniml.suites @ Test_pascal.suites
    @ Test_mcc.suites @ Test_faults.suites @ Test_delta.suites
    @ Test_extended.suites @ Test_registry.suites @ Test_balance.suites
    @ Test_dspec.suites)
