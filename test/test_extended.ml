(* Extended tests: discrete-event scheduling properties, transparent
   (host-initiated) migration, rank-mailbox continuity across death and
   resurrection, wire-codec properties, compiler fuzzing against OCaml
   reference evaluators, and grid-application equivalence on random
   configurations. *)

open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_c src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "C compile: %s" (Minic.Driver.error_to_string e)

let status_of cluster pid =
  match Net.Cluster.entry_of_pid cluster pid with
  | Some e -> e.Net.Cluster.proc.Vm.Process.status
  | None -> Alcotest.failf "pid %d lost" pid

(* Explicit test migrations go through the unified move API; unwrap the
   outcome back to the report shape the assertions read. *)
let move_running cluster ~pid ~node_id =
  match
    Net.Cluster.move cluster
      (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Explicit
         (Net.Cluster.Move.Running pid) ~dest:node_id)
  with
  | Ok { Net.Cluster.Move.mv_report = Some rep; _ } -> Ok rep
  | Ok { Net.Cluster.Move.mv_report = None; _ } ->
    Alcotest.fail "Running-subject move returned no report"
  | Error e -> Error e


(* ------------------------------------------------------------------ *)
(* Discrete-event scheduling                                           *)
(* ------------------------------------------------------------------ *)

let worker_with_work us =
  compile_c
    (Printf.sprintf
       "int main() { work_us(%d); return 1; }" us)

let test_des_parallel_nodes () =
  (* two 100 ms jobs on two nodes finish in ~100 ms, not 200 *)
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let p = worker_with_work 100_000 in
  let _ = Net.Cluster.spawn cluster ~node_id:0 p in
  let _ = Net.Cluster.spawn cluster ~node_id:1 p in
  let _ = Net.Cluster.run cluster in
  let t = Net.Cluster.now cluster in
  check "parallel nodes overlap" true (t < 0.15 && t >= 0.1)

let test_des_shared_node_serializes () =
  (* the same two jobs on ONE node serialise (plus context switches) *)
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let p = worker_with_work 100_000 in
  let _ = Net.Cluster.spawn cluster ~node_id:0 p in
  let _ = Net.Cluster.spawn cluster ~node_id:0 p in
  let _ = Net.Cluster.run cluster in
  check "shared node serialises" true (Net.Cluster.now cluster >= 0.2)

let test_des_idle_node_waits () =
  (* a receiver alone on its node consumes only the idle time until the
     message arrives, not the sender's compute time *)
  let sender =
    compile_c
      {|
int main() {
  work_us(50000);
  int *buf = alloc_int(1);
  buf[0] = 7;
  return msg_send_int(1, 0, buf, 1);
}
|}
  in
  let receiver =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  int r = msg_try_recv_int(0, 0, buf, 1);
  while (r == 0 - 1) { r = msg_try_recv_int(0, 0, buf, 1); }
  return buf[0];
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let spid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender in
  let rpid = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver in
  let _ = Net.Cluster.run cluster in
  check "sender done" true (status_of cluster spid = Vm.Process.Exited 0);
  check "receiver got the payload" true
    (status_of cluster rpid = Vm.Process.Exited 7);
  (* receiver's node idled to ~50 ms, then did its tiny work *)
  let n1 = Net.Cluster.node cluster 1 in
  check "receiver idled, not burned" true
    (n1.Net.Cluster.busy_seconds < 0.01
    && n1.Net.Cluster.clock >= 0.05)

(* ------------------------------------------------------------------ *)
(* Transparent migration (load balancing)                              *)
(* ------------------------------------------------------------------ *)

let summing_worker =
  compile_c
    {|
int main() {
  int *data = alloc_int(50);
  int i;
  for (i = 0; i < 50; i = i + 1) data[i] = i * 7;
  int acc = 0;
  int round;
  for (round = 0; round < 400; round = round + 1) {
    for (i = 0; i < 50; i = i + 1) acc = (acc + data[i]) % 1000000;
  }
  return acc;
}
|}

let test_transparent_migration () =
  (* reference result without migration *)
  let expected =
    let proc = Vm.Process.create summing_worker in
    match Vm.Interp.run proc with
    | Vm.Process.Exited n -> n
    | _ -> Alcotest.fail "reference run failed"
  in
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 2;
        arches = [| Vm.Arch.cisc32; Vm.Arch.risc64 |] }
  in
  let pid = Net.Cluster.spawn cluster ~node_id:0 summing_worker in
  (* let it run a little, then move it mid-computation *)
  let _ = Net.Cluster.run cluster ~max_rounds:25 in
  check "still running before the move" true
    (status_of cluster pid = Vm.Process.Running);
  (match move_running cluster ~pid ~node_id:1 with
  | Error e ->
    Alcotest.failf "transparent migration failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok rep ->
    let new_pid = rep.Net.Cluster.rep_pid in
    check "reported one attempt, no retries" true
      (rep.Net.Cluster.rep_attempts = 1 && rep.Net.Cluster.rep_retries = 0);
    check "source terminated" true
      (status_of cluster pid = Vm.Process.Exited 0);
    let _ = Net.Cluster.run cluster in
    check "successor finished with the same result" true
      (status_of cluster new_pid = Vm.Process.Exited expected);
    (match Net.Cluster.entry_of_pid cluster new_pid with
    | Some e -> check_int "runs on node1" 1 e.Net.Cluster.node_id
    | None -> Alcotest.fail "successor lost"));
  match Net.Cluster.migrations cluster with
  | [ mr ] -> check "recorded as migration" true (mr.Net.Cluster.mr_ok)
  | l -> Alcotest.failf "expected 1 migration record, got %d" (List.length l)

let test_transparent_migration_of_ml () =
  (* language neutrality: an ML process moves the same way *)
  let fir =
    match Miniml.Driver.compile
        "let rec sum n = if n = 0 then 0 else n + sum (n - 1)\n\
         let main = sum 3000"
    with
    | Ok fir -> fir
    | Error e -> Alcotest.failf "%s" (Miniml.Driver.error_to_string e)
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 fir in
  let _ = Net.Cluster.run cluster ~max_rounds:10 in
  match move_running cluster ~pid ~node_id:1 with
  | Error e ->
    Alcotest.failf "ML transparent migration failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok rep ->
    let _ = Net.Cluster.run cluster in
    check "ML process completed after the move" true
      (status_of cluster rep.Net.Cluster.rep_pid
      = Vm.Process.Exited (3000 * 3001 / 2))

let test_move_rejections () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 (worker_with_work 10) in
  (match move_running cluster ~pid ~node_id:0 with
  | Error Net.Cluster.Already_there -> ()
  | Error e ->
    Alcotest.failf "expected Already_there, got %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok _ -> Alcotest.fail "migration to the same node accepted");
  Net.Cluster.fail_node cluster 1;
  (match move_running cluster ~pid ~node_id:1 with
  | Error Net.Cluster.Target_down -> ()
  | Error e ->
    Alcotest.failf "expected Target_down, got %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok _ -> Alcotest.fail "migration to a dead node accepted");
  let _ = Net.Cluster.run cluster in
  (* the failed attempts were invisible *)
  check "process unaffected" true
    (status_of cluster pid = Vm.Process.Exited 1)

(* ------------------------------------------------------------------ *)
(* Rank mailboxes survive their holder                                 *)
(* ------------------------------------------------------------------ *)

let test_rank_mailbox_continuity () =
  let receiver =
    compile_c
      {|
int main() {
  migrate("suspend://r1");
  // resumes here when resurrected
  int *buf = alloc_int(1);
  int r = msg_try_recv_int(0, 9, buf, 1);
  while (r == 0 - 1) { r = msg_try_recv_int(0, 9, buf, 1); }
  return buf[0];
}
|}
  in
  let sender =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  buf[0] = 321;
  return msg_send_int(1, 9, buf, 1);
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let rpid = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver in
  let _ = Net.Cluster.run cluster in
  check "receiver suspended" true
    (status_of cluster rpid = Vm.Process.Exited 0);
  (* the rank's holder is gone, but a send to the rank still queues *)
  let spid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender in
  let _ = Net.Cluster.run cluster in
  check "send to a dormant rank succeeds" true
    (status_of cluster spid = Vm.Process.Exited 0);
  (* resurrect the rank: it inherits the queued message *)
  match Net.Cluster.resurrect cluster ~rank:1 ~node_id:0 ~path:"r1" with
  | Error m -> Alcotest.failf "resume failed: %s" m
  | Ok new_pid ->
    let _ = Net.Cluster.run cluster in
    check "resurrected holder received the buffered message" true
      (status_of cluster new_pid = Vm.Process.Exited 321)

(* ------------------------------------------------------------------ *)
(* Wire codec property                                                 *)
(* ------------------------------------------------------------------ *)

let value_gen =
  let open QCheck.Gen in
  oneof
    [
      return Value.Vunit;
      map (fun n -> Value.Vint n) int;
      map (fun f -> Value.Vfloat f) float;
      map (fun b -> Value.Vbool b) bool;
      map2 (fun c v -> Value.Venum (1 + abs c mod 64, abs v mod (1 + abs c mod 64)))
        small_int small_int;
      map2 (fun i o -> Value.Vptr (abs i, o)) small_int small_int;
      map (fun f -> Value.Vfun (abs f)) small_int;
    ]

let prop_wire_value_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire cells round-trip exactly"
    (QCheck.make value_gen ~print:Value.to_string)
    (fun v ->
      let buf = Buffer.create 16 in
      Migrate.Wire.put_value buf v;
      let r = { Fir.Serial.data = Buffer.contents buf; pos = 0 } in
      let v' = Migrate.Wire.get_value r in
      Value.equal v v' && r.Fir.Serial.pos = Buffer.length buf)

(* ------------------------------------------------------------------ *)
(* Compiler fuzzing: mini-C expressions vs an OCaml evaluator          *)
(* ------------------------------------------------------------------ *)

type cexpr =
  | Cconst of int
  | Cvar of int (* index into the fixed locals a,b,c *)
  | Cbin of string * cexpr * cexpr
  | Cneg of cexpr
  | Cnot of cexpr

let cexpr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun k -> Cconst (k mod 100)) small_signed_int;
                map (fun v -> Cvar (abs v mod 3)) small_int ]
          else
            frequency
              [
                3,
                ( oneofl [ "+"; "-"; "*"; "<"; "<="; ">"; ">="; "=="; "!=";
                           "&&"; "||" ]
                >>= fun op ->
                  map2 (fun a b -> Cbin (op, a, b)) (self (n / 2))
                    (self (n / 2)) );
                1, map (fun a -> Cneg a) (self (n - 1));
                1, map (fun a -> Cnot a) (self (n - 1));
              ])
        (min n 10))

let rec cexpr_to_c = function
  | Cconst k -> if k < 0 then Printf.sprintf "(0 - %d)" (-k) else string_of_int k
  | Cvar 0 -> "a"
  | Cvar 1 -> "b"
  | Cvar _ -> "c"
  | Cbin (op, x, y) ->
    Printf.sprintf "(%s %s %s)" (cexpr_to_c x) op (cexpr_to_c y)
  | Cneg x -> Printf.sprintf "(0 - %s)" (cexpr_to_c x)
  | Cnot x -> Printf.sprintf "(!%s)" (cexpr_to_c x)

let rec cexpr_eval env = function
  | Cconst k -> k
  | Cvar v -> env.(min v 2)
  | Cbin (op, x, y) ->
    let a = cexpr_eval env x and b = cexpr_eval env y in
    let b2i p = if p then 1 else 0 in
    (match op with
    | "+" -> a + b
    | "-" -> a - b
    | "*" -> a * b
    | "<" -> b2i (a < b)
    | "<=" -> b2i (a <= b)
    | ">" -> b2i (a > b)
    | ">=" -> b2i (a >= b)
    | "==" -> b2i (a = b)
    | "!=" -> b2i (a <> b)
    | "&&" -> b2i (a <> 0 && b <> 0)
    | "||" -> b2i (a <> 0 || b <> 0)
    | _ -> assert false)
  | Cneg x -> -cexpr_eval env x
  | Cnot x -> if cexpr_eval env x = 0 then 1 else 0

let prop_minic_matches_reference =
  QCheck.Test.make ~count:120
    ~name:"random mini-C expressions match the reference evaluator"
    (QCheck.make cexpr_gen ~print:cexpr_to_c)
    (fun e ->
      let env = [| 13; -7; 4 |] in
      let expected = cexpr_eval env e in
      (* exit codes are ints; clamp with a final modulus in the program
         and the model alike *)
      let src =
        Printf.sprintf
          "int main() { int a = 13; int b = 0 - 7; int c = 4; return %s; }"
          (cexpr_to_c e)
      in
      match Minic.Driver.compile src with
      | Error err ->
        QCheck.Test.fail_reportf "did not compile: %s"
          (Minic.Driver.error_to_string err)
      | Ok fir -> (
        let proc = Vm.Process.create fir in
        match Vm.Interp.run proc with
        | Vm.Process.Exited n ->
          if n <> expected then
            QCheck.Test.fail_reportf "interp %d <> expected %d" n expected
          else begin
            (* and the emulator agrees *)
            let proc2 = Vm.Process.create fir in
            let emu = Vm.Emulator.create (Vm.Codegen.compile fir) proc2 in
            match Vm.Emulator.run emu with
            | Vm.Process.Exited m ->
              m = expected
              || QCheck.Test.fail_reportf "emulator %d <> expected %d" m
                   expected
            | _ -> QCheck.Test.fail_reportf "emulator did not exit"
          end
        | Vm.Process.Trapped m -> QCheck.Test.fail_reportf "trapped: %s" m
        | _ -> QCheck.Test.fail_reportf "did not exit"))

(* ------------------------------------------------------------------ *)
(* Compiler fuzzing: mini-ML vs an OCaml evaluator                     *)
(* ------------------------------------------------------------------ *)

type mlexpr =
  | Mconst of int
  | Mvar of int (* de-bruijn-ish index into bound lets *)
  | Mbin of string * mlexpr * mlexpr
  | Mif of string * mlexpr * mlexpr * mlexpr * mlexpr
  | Mlet of mlexpr * mlexpr

let mlexpr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun k -> Mconst (k mod 50)) small_signed_int;
                map (fun v -> Mvar (abs v)) small_int ]
          else
            frequency
              [
                3,
                ( oneofl [ "+"; "-"; "*" ] >>= fun op ->
                  map2 (fun a b -> Mbin (op, a, b)) (self (n / 2))
                    (self (n / 2)) );
                1,
                ( oneofl [ "<"; "<="; "=" ] >>= fun cmp ->
                  self (n / 4) >>= fun c1 ->
                  self (n / 4) >>= fun c2 ->
                  self (n / 4) >>= fun t ->
                  map (fun e -> Mif (cmp, c1, c2, t, e)) (self (n / 4)) );
                2, map2 (fun v b -> Mlet (v, b)) (self (n / 2)) (self (n / 2));
              ])
        (min n 10))

let rec mlexpr_to_src depth = function
  | Mconst k -> if k < 0 then Printf.sprintf "(0 - %d)" (-k) else string_of_int k
  | Mvar v ->
    if depth = 0 then "x0" else Printf.sprintf "x%d" (v mod depth)
  | Mbin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (mlexpr_to_src depth a) op
      (mlexpr_to_src depth b)
  | Mif (cmp, c1, c2, t, e) ->
    Printf.sprintf "(if %s %s %s then %s else %s)" (mlexpr_to_src depth c1)
      cmp (mlexpr_to_src depth c2) (mlexpr_to_src depth t)
      (mlexpr_to_src depth e)
  | Mlet (v, b) ->
    Printf.sprintf "(let x%d = %s in %s)" depth (mlexpr_to_src depth v)
      (mlexpr_to_src (depth + 1) b)

let rec mlexpr_eval env = function
  | Mconst k -> k
  | Mvar v ->
    (* [env] is appended in binding order, so position = binding depth =
       the name suffix the printer emits *)
    let depth = List.length env in
    if depth = 0 then 0 else List.nth env (v mod depth)
  | Mbin (op, a, b) -> (
    let x = mlexpr_eval env a and y = mlexpr_eval env b in
    match op with
    | "+" -> x + y
    | "-" -> x - y
    | "*" -> x * y
    | _ -> assert false)
  | Mif (cmp, c1, c2, t, e) ->
    let x = mlexpr_eval env c1 and y = mlexpr_eval env c2 in
    let taken =
      match cmp with
      | "<" -> x < y
      | "<=" -> x <= y
      | "=" -> x = y
      | _ -> assert false
    in
    if taken then mlexpr_eval env t else mlexpr_eval env e
  | Mlet (v, b) -> mlexpr_eval (env @ [ mlexpr_eval env v ]) b

let prop_miniml_matches_reference =
  QCheck.Test.make ~count:80
    ~name:"random mini-ML expressions match the reference evaluator"
    (QCheck.make mlexpr_gen ~print:(fun e ->
         mlexpr_to_src 1 (Mlet (Mconst 0, e)) |> fun _ ->
         mlexpr_to_src 1 e))
    (fun e ->
      (* one binding in scope so Mvar is always valid *)
      let src =
        Printf.sprintf "let main = let x0 = 11 in %s" (mlexpr_to_src 1 e)
      in
      let expected = mlexpr_eval [ 11 ] e in
      match Miniml.Driver.compile src with
      | Error err ->
        QCheck.Test.fail_reportf "did not compile: %s"
          (Miniml.Driver.error_to_string err)
      | Ok fir -> (
        let proc = Vm.Process.create fir in
        match Vm.Interp.run proc with
        | Vm.Process.Exited n ->
          n = expected
          || QCheck.Test.fail_reportf "interp %d <> expected %d" n expected
        | Vm.Process.Trapped m -> QCheck.Test.fail_reportf "trapped: %s" m
        | _ -> QCheck.Test.fail_reportf "did not exit"))

(* ------------------------------------------------------------------ *)
(* Grid application on random configurations                           *)
(* ------------------------------------------------------------------ *)

let prop_grid_matches_golden =
  QCheck.Test.make ~count:8
    ~name:"grid app matches the golden model on random configurations"
    QCheck.(
      make
        Gen.(
          map4
            (fun ranks rows cols steps -> ranks, rows, cols, steps)
            (int_range 1 3) (int_range 2 4) (int_range 4 8) (int_range 1 8))
        ~print:(fun (r, rw, c, s) ->
          Printf.sprintf "ranks=%d rows=%d cols=%d steps=%d" r rw c s))
    (fun (ranks, rows_per_rank, cols, timesteps) ->
      let config =
        { Mcc.Gridapp.ranks; rows_per_rank; cols; timesteps;
          interval = (if timesteps > 2 then 2 else 0); work_us_per_step = 0 }
      in
      let golden = Mcc.Gridapp.golden_checksums config in
      let cluster =
        Net.Cluster.create_cfg
          { Net.Cluster.Config.default with
            node_count = ranks;
            net = Some (Net.Simnet.create ~latency_us:5.0 ()) }
      in
      let d = Mcc.Gridapp.deploy cluster config in
      let _ = Mcc.Gridapp.run d in
      Array.for_all2
        (fun g s -> s = Some g)
        golden (Mcc.Gridapp.checksums d))

let suites =
  [
    ( "extended.des",
      [
        Alcotest.test_case "parallel nodes overlap" `Quick
          test_des_parallel_nodes;
        Alcotest.test_case "shared node serialises" `Quick
          test_des_shared_node_serializes;
        Alcotest.test_case "idle node waits without burning" `Quick
          test_des_idle_node_waits;
      ] );
    ( "extended.load_balancing",
      [
        Alcotest.test_case "transparent migration preserves results" `Quick
          test_transparent_migration;
        Alcotest.test_case "works for ML processes too" `Quick
          test_transparent_migration_of_ml;
        Alcotest.test_case "failed moves are invisible" `Quick
          test_move_rejections;
      ] );
    ( "extended.rank_mailboxes",
      [
        Alcotest.test_case "messages outlive the rank holder" `Quick
          test_rank_mailbox_continuity;
      ] );
    ( "extended.properties",
      [
        QCheck_alcotest.to_alcotest prop_wire_value_roundtrip;
        QCheck_alcotest.to_alcotest prop_minic_matches_reference;
        QCheck_alcotest.to_alcotest prop_miniml_matches_reference;
        QCheck_alcotest.to_alcotest prop_grid_matches_golden;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* MojaveFS-lite: speculative file I/O (paper Section 7 future work)   *)
(* ------------------------------------------------------------------ *)

let test_fs_roundtrip () =
  let prog =
    compile_c
      {|
int main() {
  int *buf = alloc_int(4);
  buf[0] = 10; buf[1] = 20; buf[2] = 30; buf[3] = 40;
  if (fs_write("data.bin", buf, 4) != 4) return 0 - 1;
  int *back = alloc_int(4);
  if (fs_read("data.bin", back, 4) != 4) return 0 - 2;
  return back[0] + back[1] + back[2] + back[3] + fs_size("data.bin");
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
  let _ = Net.Cluster.run cluster in
  check "file round-trip through shared storage" true
    (status_of cluster pid = Vm.Process.Exited 104)

let test_fs_write_rolls_back () =
  let prog =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  buf[0] = 65; // 'A'
  fs_write("account", buf, 1);
  int specid = speculate();
  if (specid > 0) {
    buf[0] = 66; // 'B'
    fs_write("account", buf, 1);
    abort(specid); // the file write must be undone with the speculation
  }
  int *back = alloc_int(1);
  fs_read("account", back, 1);
  return back[0];
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
  let _ = Net.Cluster.run cluster in
  check "aborted file write rolled back" true
    (status_of cluster pid = Vm.Process.Exited 65);
  (* the store itself holds the restored contents *)
  match Net.Storage.read (Net.Cluster.storage cluster) "account" with
  | Some (data, _) -> Alcotest.(check string) "store contents" "A" data
  | None -> Alcotest.fail "file missing"

let test_fs_commit_durable () =
  let prog =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  int specid = speculate();
  if (specid > 0) {
    buf[0] = 90;
    fs_write("fresh", buf, 1);
    commit(specid);
  }
  int *back = alloc_int(1);
  fs_read("fresh", back, 1);
  return back[0];
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
  let _ = Net.Cluster.run cluster in
  check "committed file write is durable" true
    (status_of cluster pid = Vm.Process.Exited 90)

let test_fs_created_in_spec_removed_on_abort () =
  let prog =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  int specid = speculate();
  if (specid > 0) {
    buf[0] = 1;
    fs_write("ghost", buf, 1);
    abort(specid);
  }
  return fs_size("ghost"); // -1: the file never existed
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
  let _ = Net.Cluster.run cluster in
  check "speculatively created file removed on abort" true
    (status_of cluster pid = Vm.Process.Exited (-1))

let fs_suite =
  ( "extended.mojavefs",
    [
      Alcotest.test_case "read/write/size round-trip" `Quick test_fs_roundtrip;
      Alcotest.test_case "aborted writes roll back" `Quick
        test_fs_write_rolls_back;
      Alcotest.test_case "committed writes are durable" `Quick
        test_fs_commit_durable;
      Alcotest.test_case "speculative creation is undone" `Quick
        test_fs_created_in_spec_removed_on_abort;
    ] )

(* ------------------------------------------------------------------ *)
(* Statement-level mini-C fuzzing vs an OCaml reference interpreter    *)
(* ------------------------------------------------------------------ *)

type cstmt =
  | SAssign of int * cexpr
  | SIf of cexpr * cstmt list * cstmt list
  | SFor of int * int * cstmt list
      (* for (v = 0; v < k; v = v + 1) body — the body never assigns v *)

let var_name = function 0 -> "a" | 1 -> "b" | _ -> "c"

(* generate statements; [frozen] lists loop variables the subtree must not
   assign (termination guarantee) *)
let cstmt_gen =
  let open QCheck.Gen in
  let rec stmts frozen fuel n =
    if n <= 0 then return []
    else
      stmt frozen fuel >>= fun s ->
      stmts frozen fuel (n - 1) >>= fun rest -> return (s :: rest)
  and stmt frozen fuel =
    let assignable =
      List.filter (fun v -> not (List.mem v frozen)) [ 0; 1; 2 ]
    in
    let assign =
      oneofl assignable >>= fun v ->
      cexpr_gen >>= fun e -> return (SAssign (v, e))
    in
    if fuel <= 0 || assignable = [] then assign
    else
      frequency
        [
          4, assign;
          ( 2,
            cexpr_gen >>= fun c ->
            int_range 1 3 >>= fun nt ->
            int_range 0 2 >>= fun ne ->
            stmts frozen (fuel - 1) nt >>= fun thn ->
            stmts frozen (fuel - 1) ne >>= fun els ->
            return (SIf (c, thn, els)) );
          ( 1,
            oneofl assignable >>= fun v ->
            int_range 1 4 >>= fun k ->
            int_range 1 3 >>= fun nb ->
            stmts (v :: frozen) (fuel - 1) nb >>= fun body ->
            return (SFor (v, k, body)) );
        ]
  in
  QCheck.Gen.(int_range 1 6 >>= fun n -> stmts [] 2 n)

let rec cstmt_to_c ind s =
  let pad = String.make ind ' ' in
  match s with
  | SAssign (v, e) ->
    Printf.sprintf "%s%s = %s;\n" pad (var_name v) (cexpr_to_c e)
  | SIf (c, thn, els) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad (cexpr_to_c c)
      (String.concat "" (List.map (cstmt_to_c (ind + 2)) thn))
      pad
      (String.concat "" (List.map (cstmt_to_c (ind + 2)) els))
      pad
  | SFor (v, k, body) ->
    Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n" pad
      (var_name v) (var_name v) k (var_name v) (var_name v)
      (String.concat "" (List.map (cstmt_to_c (ind + 2)) body))
      pad

let rec cstmt_eval env s =
  match s with
  | SAssign (v, e) -> env.(v) <- cexpr_eval env e
  | SIf (c, thn, els) ->
    if cexpr_eval env c <> 0 then List.iter (cstmt_eval env) thn
    else List.iter (cstmt_eval env) els
  | SFor (v, k, body) ->
    env.(v) <- 0;
    while env.(v) < k do
      List.iter (cstmt_eval env) body;
      env.(v) <- env.(v) + 1
    done

let cprog_to_c stmts =
  Printf.sprintf
    "int main() {\n  int a = 3; int b = 0 - 5; int c = 9;\n%s  return a +      10 * b + 100 * c;\n}"
    (String.concat "" (List.map (cstmt_to_c 2) stmts))

let cprog_eval stmts =
  let env = [| 3; -5; 9 |] in
  List.iter (cstmt_eval env) stmts;
  env.(0) + (10 * env.(1)) + (100 * env.(2))

let prop_minic_statements_match_reference =
  QCheck.Test.make ~count:100
    ~name:"random mini-C statement programs match the reference"
    (QCheck.make cstmt_gen ~print:cprog_to_c)
    (fun stmts ->
      let src = cprog_to_c stmts in
      let expected = cprog_eval stmts in
      match Minic.Driver.compile src with
      | Error err ->
        QCheck.Test.fail_reportf "did not compile: %s"
          (Minic.Driver.error_to_string err)
      | Ok fir -> (
        let proc = Vm.Process.create fir in
        match Vm.Interp.run proc with
        | Vm.Process.Exited n ->
          if n <> expected then
            QCheck.Test.fail_reportf "interp %d <> expected %d" n expected
          else begin
            let proc2 = Vm.Process.create ~arch:Vm.Arch.risc64 fir in
            let emu =
              Vm.Emulator.create
                (Vm.Codegen.compile ~arch:Vm.Arch.risc64 fir) proc2
            in
            match Vm.Emulator.run emu with
            | Vm.Process.Exited m ->
              m = expected
              || QCheck.Test.fail_reportf "emulator %d <> expected %d" m
                   expected
            | _ -> QCheck.Test.fail_reportf "emulator did not exit"
          end
        | Vm.Process.Trapped m -> QCheck.Test.fail_reportf "trapped: %s" m
        | _ -> QCheck.Test.fail_reportf "did not exit"))

let stmt_fuzz_suite =
  ( "extended.stmt_fuzz",
    [ QCheck_alcotest.to_alcotest prop_minic_statements_match_reference ] )

(* ------------------------------------------------------------------ *)
(* Cross-language differential: one algorithm, three front-ends, one   *)
(* FIR, identical behaviour                                            *)
(* ------------------------------------------------------------------ *)

let test_three_languages_agree () =
  let c_fir =
    compile_c
      {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { print_int(fib(15)); print_nl(); return fib(15) % 1000; }
|}
  in
  let ml_fir =
    match
      Miniml.Driver.compile
        "let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\n\
         let main = print_int (fib 15); print_newline (); fib 15 - fib 15 / \
         1000 * 1000"
    with
    | Ok fir -> fir
    | Error e -> Alcotest.failf "%s" (Miniml.Driver.error_to_string e)
  in
  let pas_fir =
    match
      Pascal.Driver.compile
        {|
program f;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n else fib := fib(n - 1) + fib(n - 2)
end;
begin
  writeln(fib(15));
  halt(fib(15) mod 1000)
end.
|}
    with
    | Ok fir -> fir
    | Error e -> Alcotest.failf "%s" (Pascal.Driver.error_to_string e)
  in
  let outcomes =
    List.map
      (fun fir ->
        let proc = Vm.Process.create fir in
        match Vm.Interp.run proc with
        | Vm.Process.Exited n -> n, Vm.Process.output proc
        | _ -> Alcotest.fail "a front-end's program failed")
      [ c_fir; ml_fir; pas_fir ]
  in
  (match outcomes with
  | [ (nc, oc); (nm, om); (np, op_) ] ->
    check_int "C = ML exit" nc nm;
    check_int "C = Pascal exit" nc np;
    Alcotest.(check string) "C = ML output" oc om;
    Alcotest.(check string) "C = Pascal output" oc op_
  | _ -> assert false);
  (* and all three images migrate through the same machinery *)
  List.iter
    (fun fir ->
      let fir' = Fir.Serial.decode (Fir.Serial.encode fir) in
      check "image re-verifies strictly" true
        (Fir.Typecheck.well_typed ~strict:true ~externs:Vm.Extern.signatures
           fir'))
    [ c_fir; ml_fir; pas_fir ]

(* ------------------------------------------------------------------ *)
(* The cascade follows a dependent that migrates mid-speculation        *)
(* ------------------------------------------------------------------ *)

let test_cascade_follows_migration () =
  (* sender (rank 0): speculative write + send, spins, rolls back.
     receiver (rank 1): consumes the speculative message inside its own
     speculation (joining the sender's), then polls a message that never
     comes.  We transparently migrate the receiver to a third node AFTER
     it consumed; the sender's rollback must still reach the successor. *)
  let sender =
    compile_c
      {|
int main() {
  int *buf = alloc_int(1);
  int specid = speculate();
  if (specid > 0) {
    buf[0] = 55;
    msg_send_int(1, 0, buf, 1);
    int i;
    for (i = 0; i < 30000; i = i + 1) { buf[0] = buf[0]; }
    abort(specid);
  }
  return 100;
}
|}
  in
  let receiver =
    compile_c
      {|
int main() {
  int *cell = alloc_int(1);
  int *buf = alloc_int(1);
  int specid = speculate();
  if (specid > 0) {
    int r = msg_try_recv_int(0, 0, buf, 1);
    while (r == 0 - 1) { r = msg_try_recv_int(0, 0, buf, 1); }
    cell[0] = buf[0];
    // wait for a second message that never arrives
    r = msg_try_recv_int(0, 1, buf, 1);
    while (r == 0 - 1) { r = msg_try_recv_int(0, 1, buf, 1); }
    return 111;
  }
  // forced rollback by the sender's abort lands here
  return 300 + cell[0];
}
|}
  in
  let net = Net.Simnet.create ~latency_us:0.01 ~connect_ms:0.001 () in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3; net = Some net } in
  let spid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender in
  let rpid = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver in
  (* run until the receiver has consumed and parked on the second poll *)
  let parked () =
    match Net.Cluster.entry_of_pid cluster rpid with
    | Some e -> e.Net.Cluster.parked_on = Some (0, 1)
    | None -> false
  in
  let _ = Net.Cluster.run cluster ~max_rounds:4000 ~stop:parked in
  check "receiver consumed and parked on the dead tag" true (parked ());
  check "sender still speculating" true
    (status_of cluster spid = Vm.Process.Running);
  (* migrate the parked receiver to node2 mid-speculation *)
  (match move_running cluster ~pid:rpid ~node_id:2 with
  | Error e ->
    Alcotest.failf "migration failed: %s"
      (Net.Cluster.migration_error_to_string e)
  | Ok rep ->
    let new_pid = rep.Net.Cluster.rep_pid in
    let _ = Net.Cluster.run cluster in
    check "sender rolled back and finished" true
      (status_of cluster spid = Vm.Process.Exited 100);
    (* the successor was cascaded: cell restored to 0, code path 300 *)
    check "cascade reached the migrated successor" true
      (status_of cluster new_pid = Vm.Process.Exited 300))

(* ------------------------------------------------------------------ *)
(* Checkpointing INSIDE an open speculation, then dying: the           *)
(* resurrected copy carries the speculation and can still roll back    *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_inside_speculation () =
  let prog =
    compile_c
      {|
int main() {
  int *cell = alloc_int(1);
  cell[0] = 5;
  int specid = speculate();
  if (specid > 0) {
    cell[0] = 99;                       // speculative write
    migrate("checkpoint://midspec");    // checkpoint with the level OPEN
    abort(specid);                      // then roll back
  }
  return cell[0] * 10;                  // 50 if the write was undone
}
|}
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid = Net.Cluster.spawn cluster ~node_id:0 prog in
  let _ = Net.Cluster.run cluster in
  check "original rolled back after its checkpoint" true
    (status_of cluster pid = Vm.Process.Exited 50);
  (* resurrect the mid-speculation image: the restored level must roll
     back over the RESTORED heap exactly the same way *)
  match Net.Cluster.resurrect cluster ~node_id:1 ~path:"midspec" with
  | Error m -> Alcotest.failf "resurrect failed: %s" m
  | Ok new_pid ->
    let _ = Net.Cluster.run cluster in
    check "resurrected copy rolled back its restored speculation" true
      (status_of cluster new_pid = Vm.Process.Exited 50)

let midspec_suite =
  ( "extended.midspec_checkpoint",
    [
      Alcotest.test_case
        "a checkpoint taken inside a speculation restores and rolls back"
        `Quick test_checkpoint_inside_speculation;
    ] )

(* ------------------------------------------------------------------ *)
(* Pointer-table property: random alloc/free/set sequences vs a model  *)
(* ------------------------------------------------------------------ *)

type ptop = PAlloc of int | PFree of int | PSet of int * int

let ptop_gen =
  let open QCheck.Gen in
  frequency
    [
      3, map (fun a -> PAlloc (abs a)) small_int;
      1, map (fun i -> PFree (abs i)) small_int;
      2, map2 (fun i a -> PSet (abs i, abs a)) small_int small_int;
    ]

let prop_pointer_table_model =
  QCheck.Test.make ~count:200
    ~name:"pointer table matches a map model under random operations"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 80) ptop_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | PAlloc a -> Printf.sprintf "alloc %d" a
                | PFree i -> Printf.sprintf "free %d" i
                | PSet (i, a) -> Printf.sprintf "set %d %d" i a)
              ops)))
    (fun ops ->
      let t = Pointer_table.create ~initial_capacity:2 () in
      let model = Hashtbl.create 16 in
      let issued = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | PAlloc a ->
            let idx = Pointer_table.alloc t a in
            if Hashtbl.mem model idx then ok := false (* reused a LIVE idx *);
            Hashtbl.replace model idx a;
            issued := idx :: !issued
          | PFree k -> (
            match !issued with
            | [] -> ()
            | l ->
              let idx = List.nth l (k mod List.length l) in
              Pointer_table.free t idx;
              Hashtbl.remove model idx)
          | PSet (k, a) -> (
            match !issued with
            | [] -> ()
            | l -> (
              let idx = List.nth l (k mod List.length l) in
              match Pointer_table.set t idx a with
              | () ->
                if not (Hashtbl.mem model idx) then ok := false
                else Hashtbl.replace model idx a
              | exception Pointer_table.Invalid_pointer _ ->
                if Hashtbl.mem model idx then ok := false)))
        ops;
      (* every model entry readable with the right address; every
         non-model issued index invalid *)
      Hashtbl.iter
        (fun idx addr ->
          if Pointer_table.get t idx <> addr then ok := false)
        model;
      List.iter
        (fun idx ->
          if
            (not (Hashtbl.mem model idx)) && Pointer_table.is_valid t idx
          then ok := false)
        !issued;
      !ok && Pointer_table.live_count t = Hashtbl.length model)

(* minor collection with a pinned YOUNG original *)
let test_gc_minor_pinned_young () =
  let h = Heap.create () in
  let e = Spec.Engine.create h in
  (* everything here is young: block, clone and record *)
  let idx = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 7) in
  let _ = Spec.Engine.enter e ~cont:{ Spec.Engine.entry = "x"; args = [] } in
  Heap.write h idx 0 (Value.Vint 8);
  for _ = 1 to 10 do
    ignore (Heap.alloc h ~tag:Heap.Array ~size:16 ~init:Value.Vunit)
  done;
  let res =
    Gc.collect h ~kind:Gc.Minor
      ~roots:[ Value.Vptr (idx, 0) ]
      ~pinned:(Spec.Engine.records e)
  in
  Spec.Engine.rewrite_after_gc e res;
  Heap.validate h;
  let _ = Spec.Engine.rollback e 1 in
  check "young original survived the minor collection" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 7))

let more_runtime_suite =
  ( "extended.runtime_more",
    [
      QCheck_alcotest.to_alcotest prop_pointer_table_model;
      Alcotest.test_case "minor GC pins young originals" `Quick
        test_gc_minor_pinned_young;
    ] )

let cascade_migration_suite =
  ( "extended.cascade_migration",
    [
      Alcotest.test_case "rollback cascade follows a migrated dependent"
        `Quick test_cascade_follows_migration;
    ] )

let cross_suite =
  ( "extended.cross_language",
    [
      Alcotest.test_case "C, ML and Pascal agree on the same algorithm"
        `Quick test_three_languages_agree;
    ] )

let suites =
  suites
  @ [
      fs_suite; stmt_fuzz_suite; cross_suite; midspec_suite;
      more_runtime_suite; cascade_migration_suite;
    ]
