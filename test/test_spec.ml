(* Tests for the speculation engine: copy-on-write, nesting, commit
   folding (including out of order), rollback retry semantics, GC
   integration, and a model-based property test. *)

open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cont0 = { Spec.Engine.entry = "body"; args = [] }

let make () =
  let h = Heap.create () in
  let e = Spec.Engine.create h in
  h, e

let test_rollback_restores () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  Heap.write h idx 1 (Value.Vint 3);
  check "speculative value visible" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 2));
  let cont = Spec.Engine.rollback e 1 in
  Alcotest.(check string) "continuation returned" "body"
    cont.Spec.Engine.entry;
  check "cell 0 restored" true (Value.equal (Heap.read h idx 0) (Value.Vint 1));
  check "cell 1 restored" true (Value.equal (Heap.read h idx 1) (Value.Vint 1));
  (* retry semantics: the level was re-entered *)
  check_int "level re-entered" 1 (Spec.Engine.depth e)

let test_commit_keeps () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  Spec.Engine.commit e 1;
  check_int "no levels left" 0 (Spec.Engine.depth e);
  check "committed value kept" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 2))

let test_one_clone_per_level () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:4 ~init:(Value.Vint 0) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 1);
  Heap.write h idx 1 (Value.Vint 2);
  Heap.write h idx 2 (Value.Vint 3);
  check_int "one clone for three writes" 1 (Heap.stats h).Heap.cow_clones;
  check_int "one record entry" 1 (Spec.Engine.level_saved_count e 1)

let test_no_clone_outside_speculation () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 0) in
  Heap.write h idx 0 (Value.Vint 1);
  check_int "no clones at level 0" 0 (Heap.stats h).Heap.cow_clones;
  ignore e

let test_nested_rollback_outer () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 10) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 20);
  let _ = Spec.Engine.enter e ~cont:{ cont0 with entry = "inner" } in
  Heap.write h idx 0 (Value.Vint 30);
  check_int "two levels" 2 (Spec.Engine.depth e);
  (* rolling back to level 1 undoes BOTH levels' changes *)
  let cont = Spec.Engine.rollback e 1 in
  Alcotest.(check string) "outer continuation" "body" cont.Spec.Engine.entry;
  check "restored to pre-level-1 state" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 10));
  check_int "only re-entered level 1" 1 (Spec.Engine.depth e)

let test_nested_rollback_inner () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 10) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 20);
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 30);
  let _cont = Spec.Engine.rollback e 2 in
  check "inner rollback keeps outer changes" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 20));
  check_int "back at depth 2 (re-entered)" 2 (Spec.Engine.depth e)

let test_commit_inner_then_rollback_outer () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 3);
  (* commit the inner level: its changes fold into level 1 *)
  Spec.Engine.commit e 2;
  check_int "one level left" 1 (Spec.Engine.depth e);
  check "inner value survives its commit" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 3));
  (* rollback of level 1 must now undo the folded changes too *)
  let _ = Spec.Engine.rollback e 1 in
  check "rollback undoes folded changes" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 1))

let test_fold_keeps_parent_original () =
  (* parent saved the block first: the child's (newer) original must be
     discarded on fold, keeping the parent's older copy *)
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  (* parent's original holds 1 *)
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 3);
  (* child's original holds 2 *)
  Spec.Engine.commit e 2;
  check_int "parent record still has one entry" 1
    (Spec.Engine.level_saved_count e 1);
  let _ = Spec.Engine.rollback e 1 in
  check "rollback restores the OLDEST original" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 1))

let test_out_of_order_commit () =
  (* commit level 1 while level 2 is still open (paper: "commits for
     speculations can occur out of order") *)
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  let _ = Spec.Engine.enter e ~cont:{ cont0 with entry = "lvl2" } in
  Heap.write h idx 0 (Value.Vint 3);
  Spec.Engine.commit e 1;
  check_int "one level left after committing the oldest" 1
    (Spec.Engine.depth e);
  (* the remaining level renumbers to 1; rolling it back restores the
     state at ITS entry (value 2), not the committed level's *)
  let cont = Spec.Engine.rollback e 1 in
  Alcotest.(check string) "renumbered level continuation" "lvl2"
    cont.Spec.Engine.entry;
  check "restored to level-2 entry state" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 2))

let test_out_of_order_commit_then_rollback_past () =
  (* the nested-level edge the .mli promises: commit a MIDDLE level out
     of order, then roll back PAST it — the rollback must undo the
     surviving outer level's own write, the write folded in by the
     committed middle level, and the (renumbered) newest level's write *)
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:3 ~init:(Value.Vint 0) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 1);
  let _ = Spec.Engine.enter e ~cont:{ cont0 with entry = "mid" } in
  Heap.write h idx 1 (Value.Vint 2);
  let _ = Spec.Engine.enter e ~cont:{ cont0 with entry = "top" } in
  Heap.write h idx 2 (Value.Vint 3);
  check_int "three levels open" 3 (Spec.Engine.depth e);
  Spec.Engine.commit e 2;
  check_int "middle commit leaves two levels" 2 (Spec.Engine.depth e);
  check "folded value survives its commit" true
    (Value.equal (Heap.read h idx 1) (Value.Vint 2));
  (* level 3 renumbered to 2; its uid must still resolve *)
  check_int "two stable uids remain" 2
    (List.length (Spec.Engine.unique_ids e));
  let cont = Spec.Engine.rollback e 1 in
  Alcotest.(check string) "level 1's continuation" "body"
    cont.Spec.Engine.entry;
  check "level 1's own write undone" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 0));
  check "committed middle level's write undone" true
    (Value.equal (Heap.read h idx 1) (Value.Vint 0));
  check "renumbered top level's write undone" true
    (Value.equal (Heap.read h idx 2) (Value.Vint 0));
  check_int "re-entered level 1 only" 1 (Spec.Engine.depth e)

let test_invalid_levels () =
  let h, e = make () in
  ignore h;
  (match Spec.Engine.commit e 1 with
  | exception Spec.Engine.Invalid_level _ -> ()
  | _ -> Alcotest.fail "commit with no levels accepted");
  let _ = Spec.Engine.enter e ~cont:cont0 in
  (match Spec.Engine.commit e 2 with
  | exception Spec.Engine.Invalid_level _ -> ()
  | _ -> Alcotest.fail "commit beyond depth accepted");
  match Spec.Engine.rollback e 0 with
  | exception Spec.Engine.Invalid_level _ -> ()
  | _ -> Alcotest.fail "rollback of level 0 accepted"

let test_new_blocks_in_speculation () =
  (* blocks allocated inside a speculation need no COW; after rollback they
     are garbage *)
  let h, e = make () in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 5) in
  Heap.write h idx 0 (Value.Vint 6);
  check_int "writes to fresh blocks are recorded" 1
    (Spec.Engine.level_saved_count e 1);
  let _ = Spec.Engine.rollback e 1 in
  (* the block still exists (its index was never freed) but its pointer
     entry now targets the pre-write copy *)
  check "fresh block rolled back to its pre-write state" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 5))

let test_gc_during_speculation () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  (* create garbage, then collect with the engine's records pinned *)
  for _ = 1 to 30 do
    ignore (Heap.alloc h ~tag:Heap.Array ~size:8 ~init:Value.Vunit)
  done;
  let res =
    Gc.collect h ~kind:Gc.Major
      ~roots:[ Value.Vptr (idx, 0) ]
      ~pinned:(Spec.Engine.records e)
  in
  Spec.Engine.rewrite_after_gc e res;
  check "speculative value survives GC" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 2));
  let _ = Spec.Engine.rollback e 1 in
  check "rollback works after compaction" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 1))

let test_snapshot_restore () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 1) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 2);
  let _ = Spec.Engine.enter e ~cont:{ cont0 with entry = "lvl2" } in
  Heap.write h idx 0 (Value.Vint 3);
  let snap = Spec.Engine.snapshot e in
  check_int "snapshot has both levels" 2 (List.length snap);
  (* rebuild a second engine over the same heap *)
  Heap.set_before_write h None;
  let e' = Spec.Engine.create h in
  Spec.Engine.restore e' snap;
  check_int "depth restored" 2 (Spec.Engine.depth e');
  let _ = Spec.Engine.rollback e' 1 in
  check "restored engine rolls back correctly" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 1))

let test_stats () =
  let h, e = make () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 0) in
  let _ = Spec.Engine.enter e ~cont:cont0 in
  Heap.write h idx 0 (Value.Vint 1);
  Spec.Engine.commit e 1;
  let _ = Spec.Engine.enter e ~cont:cont0 in
  let _ = Spec.Engine.rollback e 1 in
  let m = Spec.Engine.metrics e in
  let count name = Obs.Metrics.counter_value m name in
  check_int "entered (incl. retry re-entry)" 3 (count "spec.entered");
  check_int "committed" 1 (count "spec.committed");
  check_int "rolled back" 1 (count "spec.rolled_back");
  check_int "blocks saved" 1 (count "spec.blocks_saved")

(* ------------------------------------------------------------------ *)
(* Model-based property                                                *)
(* ------------------------------------------------------------------ *)

(* The model: heap contents as an int array per block; speculation as a
   stack of (model copies).  We apply random writes / enters / commits /
   rollbacks to both the real engine and the model and compare. *)

type op = Write of int * int * int | Enter | Commit of int | Rollback of int

let op_gen nblocks =
  let open QCheck.Gen in
  frequency
    [
      ( 6,
        map3
          (fun b o v -> Write (b mod nblocks, o, v))
          small_nat (int_range 0 3) small_int );
      2, return Enter;
      1, map (fun l -> Commit l) (int_range 1 4);
      1, map (fun l -> Rollback l) (int_range 1 4);
    ]

let prop_spec_matches_model =
  QCheck.Test.make ~count:120 ~name:"speculation matches a snapshot model"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 60) (op_gen 4))
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | Write (b, o, v) -> Printf.sprintf "w%d[%d]=%d" b o v
                | Enter -> "enter"
                | Commit l -> Printf.sprintf "commit%d" l
                | Rollback l -> Printf.sprintf "rollback%d" l)
              ops)))
    (fun ops ->
      let nblocks = 4 and bsize = 4 in
      let h = Heap.create () in
      let e = Spec.Engine.create h in
      let idxs =
        Array.init nblocks (fun _ ->
            Heap.alloc h ~tag:Heap.Array ~size:bsize ~init:(Value.Vint 0))
      in
      (* model: a mutable current state plus one snapshot (deep copy taken
         at entry) per open level, newest first *)
      let current = Array.make_matrix nblocks bsize 0 in
      let stack = ref [] in
      let deep_copy m = Array.map Array.copy m in
      let agree () =
        try
          for b = 0 to nblocks - 1 do
            for o = 0 to bsize - 1 do
              if not (Value.equal (Heap.read h idxs.(b) o)
                        (Value.Vint current.(b).(o)))
              then raise Exit
            done
          done;
          true
        with Exit -> false
      in
      let rec drop_nth k = function
        | [] -> []
        | x :: rest -> if k = 0 then rest else x :: drop_nth (k - 1) rest
      in
      let rec drop k l = if k = 0 then l else
          match l with [] -> [] | _ :: rest -> drop (k - 1) rest
      in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Write (b, o, v) ->
            Heap.write h idxs.(b) o (Value.Vint v);
            current.(b).(o) <- v
          | Enter ->
            let _ = Spec.Engine.enter e ~cont:cont0 in
            stack := deep_copy current :: !stack
          | Commit l ->
            let n = Spec.Engine.depth e in
            if l <= n then begin
              Spec.Engine.commit e l;
              (* folding level l into l-1: the model forgets the snapshot
                 taken at entry to level l; the current state is unchanged *)
              stack := drop_nth (n - l) !stack
            end
          | Rollback l ->
            let n = Spec.Engine.depth e in
            if l <= n then begin
              let _ = Spec.Engine.rollback e l in
              (* restore level l's entry snapshot, drop levels l..N, then
                 re-enter (retry semantics) *)
              match drop (n - l) !stack with
              | entry_snapshot :: rest ->
                Array.iteri
                  (fun b row -> Array.blit entry_snapshot.(b) 0 row 0 bsize)
                  current;
                stack := deep_copy current :: rest
              | [] -> ()
            end);
          if not (agree ()) then ok := false)
        ops;
      Heap.validate h;
      !ok && agree ())

let suites =
  [
    ( "spec.engine",
      [
        Alcotest.test_case "rollback restores heap" `Quick
          test_rollback_restores;
        Alcotest.test_case "commit keeps changes" `Quick test_commit_keeps;
        Alcotest.test_case "one clone per block per level" `Quick
          test_one_clone_per_level;
        Alcotest.test_case "no COW outside speculation" `Quick
          test_no_clone_outside_speculation;
        Alcotest.test_case "nested rollback to outer" `Quick
          test_nested_rollback_outer;
        Alcotest.test_case "nested rollback of inner" `Quick
          test_nested_rollback_inner;
        Alcotest.test_case "commit inner then rollback outer" `Quick
          test_commit_inner_then_rollback_outer;
        Alcotest.test_case "fold keeps parent original" `Quick
          test_fold_keeps_parent_original;
        Alcotest.test_case "out-of-order commit" `Quick test_out_of_order_commit;
        Alcotest.test_case "out-of-order commit then rollback past it"
          `Quick test_out_of_order_commit_then_rollback_past;
        Alcotest.test_case "invalid levels rejected" `Quick test_invalid_levels;
        Alcotest.test_case "fresh blocks inside speculation" `Quick
          test_new_blocks_in_speculation;
        Alcotest.test_case "GC during speculation" `Quick
          test_gc_during_speculation;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        Alcotest.test_case "statistics" `Quick test_stats;
        QCheck_alcotest.to_alcotest prop_spec_matches_model;
      ] );
  ]
