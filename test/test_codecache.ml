(* Tests for the content-addressed recompilation cache: FIR digests, the
   v6 wire header, hit/miss/eviction accounting, cross-architecture and
   trust-mode isolation, negative caching of hostile payloads, and the
   disabled-cache (--code-cache 0) path matching uncached behaviour. *)

open Fir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* the migrating workload and driver from the migration tests *)
let migrating_sum = Test_migrate.migrating_sum
let run_to_migration = Test_migrate.run_to_migration

let packed_bytes n =
  let proc, _ = run_to_migration (migrating_sum n) in
  (Migrate.Pack.pack_request proc).Migrate.Pack.p_bytes

let finish proc masm =
  let emu = Vm.Emulator.create masm proc in
  let rec go () =
    match proc.Vm.Process.status with
    | Vm.Process.Running ->
      Vm.Emulator.step emu;
      go ()
    | s -> s
  in
  match go () with
  | Vm.Process.Exited n -> n
  | s ->
    Alcotest.failf "process did not exit: %s"
      (match s with
      | Vm.Process.Trapped m -> "trap " ^ m
      | Vm.Process.Migrating _ -> "migrating"
      | _ -> "?")

let unpack ?cache ?(trusted = false) ?(arch = Vm.Arch.cisc32) bytes =
  match Migrate.Pack.unpack ?cache ~trusted ~arch bytes with
  | Ok r -> r
  | Error m -> Alcotest.failf "unpack failed: %s" m

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let test_digest_stable () =
  let p = migrating_sum 30 in
  let d1 = Digest.of_program p in
  let d2 = Digest.of_encoded (Serial.encode p) in
  check_str "digest is a function of the canonical encoding" d1 d2;
  check_int "hex digest length" Digest.hex_length (String.length d1);
  let q = migrating_sum 31 in
  check "different programs digest differently" false
    (String.equal d1 (Digest.of_program q))

let test_wire_v6_roundtrip () =
  let proc, _ = run_to_migration (migrating_sum 24) in
  let packed = Migrate.Pack.pack_request proc in
  let im = packed.Migrate.Pack.p_image in
  check_str "header digest matches the FIR payload"
    (Digest.of_encoded im.Migrate.Wire.i_fir)
    im.Migrate.Wire.i_digest;
  let im' = Migrate.Wire.decode packed.Migrate.Pack.p_bytes in
  check_str "digest survives the round trip" im.Migrate.Wire.i_digest
    im'.Migrate.Wire.i_digest;
  check_str "FIR survives the round trip" im.Migrate.Wire.i_fir
    im'.Migrate.Wire.i_fir

(* ------------------------------------------------------------------ *)
(* Hit / miss / equivalence                                            *)
(* ------------------------------------------------------------------ *)

let test_cache_hit () =
  let n = 40 in
  let bytes = packed_bytes n in
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _, _, compiled_cold, cold = unpack ~cache bytes in
  check "first delivery misses" false cold.Migrate.Pack.u_cache_hit;
  check "first delivery compiles" true cold.Migrate.Pack.u_recompiled;
  let proc, masm, compiled_warm, warm = unpack ~cache bytes in
  check "second delivery hits" true warm.Migrate.Pack.u_cache_hit;
  check "hit does not recompile" false warm.Migrate.Pack.u_recompiled;
  (* the warm hop resumes into the SAME closure-compiled image — the
     closure arrays are memoized, not rebuilt per delivery *)
  check "hit reuses the cached compiled image" true
    (compiled_warm == compiled_cold);
  check "hit still verified" true warm.Migrate.Pack.u_verified;
  check "hit charges strictly fewer cycles" true
    (warm.Migrate.Pack.u_compile_cycles < cold.Migrate.Pack.u_compile_cycles);
  check_int "hit charges link cycles only"
    (Vm.Codegen.simulated_link_cycles masm)
    warm.Migrate.Pack.u_compile_cycles;
  (* the cached code is the real thing: the process finishes correctly *)
  check_int "resumed process computes the right sum"
    (Test_migrate.expected_sum n) (finish proc masm);
  let s = Migrate.Codecache.stats cache in
  check_int "one hit recorded" 1 s.Migrate.Codecache.hits;
  check_int "one miss recorded" 1 s.Migrate.Codecache.misses

let test_cache_disabled_matches_uncached () =
  let bytes = packed_bytes 26 in
  let cache = Migrate.Codecache.create ~capacity:0 () in
  check "capacity 0 disables" false (Migrate.Codecache.enabled cache);
  let _, _, _, c1 = unpack ~cache bytes in
  let _, _, _, c2 = unpack ~cache bytes in
  let _, _, _, plain = unpack bytes in
  List.iter
    (fun (c : Migrate.Pack.unpack_costs) ->
      check "no hit" false c.Migrate.Pack.u_cache_hit;
      check "always recompiles" true c.Migrate.Pack.u_recompiled;
      check_int "same cycles as the uncached path"
        plain.Migrate.Pack.u_compile_cycles c.Migrate.Pack.u_compile_cycles)
    [ c1; c2 ];
  let s = Migrate.Codecache.stats cache in
  check_int "disabled cache records nothing" 0
    (s.Migrate.Codecache.hits + s.Migrate.Codecache.misses);
  check_int "disabled cache stores nothing" 0
    (Migrate.Codecache.length cache)

(* ------------------------------------------------------------------ *)
(* Isolation                                                           *)
(* ------------------------------------------------------------------ *)

let test_cross_arch_isolation () =
  let bytes = packed_bytes 28 in
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _, _, _, _ = unpack ~cache ~arch:Vm.Arch.cisc32 bytes in
  let _, masm64, _, c = unpack ~cache ~arch:Vm.Arch.risc64 bytes in
  check "another architecture never hits" false c.Migrate.Pack.u_cache_hit;
  check_str "risc64 got risc64 code" Vm.Arch.risc64.Vm.Arch.name
    masm64.Vm.Masm.im_arch;
  let _, masm64', _, c' = unpack ~cache ~arch:Vm.Arch.risc64 bytes in
  check "same architecture hits" true c'.Migrate.Pack.u_cache_hit;
  check_str "the hit serves matching code" Vm.Arch.risc64.Vm.Arch.name
    masm64'.Vm.Masm.im_arch;
  check_int "both architectures cached" 2 (Migrate.Codecache.length cache)

let test_trust_mode_isolation () =
  let bytes = packed_bytes 28 in
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _, _, _, _ = unpack ~cache ~trusted:true bytes in
  (* an entry admitted without a typecheck must not serve a verified
     request *)
  let _, _, _, c = unpack ~cache ~trusted:false bytes in
  check "trusted entry cannot serve a verified request" false
    c.Migrate.Pack.u_cache_hit;
  check "the verified request ran the full pipeline" true
    c.Migrate.Pack.u_verified

(* ------------------------------------------------------------------ *)
(* Eviction and bounds                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let a = packed_bytes 30 in
  let b = packed_bytes 31 in
  let cache = Migrate.Codecache.create ~capacity:1 () in
  let _, _, _, _ = unpack ~cache a in
  let _, _, _, _ = unpack ~cache b in
  (* b displaced a *)
  check_int "capacity bound holds" 1 (Migrate.Codecache.length cache);
  let _, _, _, ca = unpack ~cache a in
  check "evicted entry misses again" false ca.Migrate.Pack.u_cache_hit;
  let s = Migrate.Codecache.stats cache in
  check "evictions recorded" true (s.Migrate.Codecache.evictions >= 2);
  check_int "no hit ever possible at capacity 1 with alternation" 0
    s.Migrate.Codecache.hits

let test_instr_budget_and_invalidate () =
  let bytes = packed_bytes 32 in
  let im = Migrate.Wire.decode bytes in
  let digest = im.Migrate.Wire.i_digest in
  (* an instruction budget smaller than one entry: the entry is admitted
     then immediately evicted *)
  let tiny = Migrate.Codecache.create ~max_instrs:1 ~capacity:8 () in
  let _, _, _, _ = unpack ~cache:tiny bytes in
  check_int "over-budget entry evicted" 0 (Migrate.Codecache.length tiny);
  check_int "instruction accounting returns to zero" 0
    (Migrate.Codecache.total_instrs tiny);
  (* invalidate drops all modes/arches of a digest *)
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _, _, _, _ = unpack ~cache bytes in
  let _, _, _, _ = unpack ~cache ~trusted:true bytes in
  check_int "two modes cached" 2 (Migrate.Codecache.length cache);
  Migrate.Codecache.invalidate cache ~digest;
  check_int "invalidate empties both" 0 (Migrate.Codecache.length cache);
  let _, _, _, c = unpack ~cache bytes in
  check "post-invalidate delivery misses" false c.Migrate.Pack.u_cache_hit;
  Migrate.Codecache.clear cache;
  check_int "clear empties the cache" 0 (Migrate.Codecache.length cache)

(* ------------------------------------------------------------------ *)
(* Negative caching                                                    *)
(* ------------------------------------------------------------------ *)

let test_negative_caching () =
  (* an ill-typed program, packaged with a consistent digest *)
  let evil =
    let v = Var.fresh "p" in
    Ast.program ~main:"main"
      [
        {
          Ast.f_name = "main";
          f_params = [];
          f_body =
            Ast.Let_atom
              (v, Types.Tptr Types.Tint, Ast.Int 9, Ast.Exit (Ast.Int 0));
        };
      ]
  in
  let proc, _ = run_to_migration (migrating_sum 20) in
  let im = (Migrate.Pack.pack_request proc).Migrate.Pack.p_image in
  let fir = Serial.encode evil in
  let bytes =
    Migrate.Wire.encode
      { im with
        Migrate.Wire.i_fir = fir;
        i_digest = Digest.of_encoded fir;
      }
  in
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let reject () =
    match Migrate.Pack.unpack ~cache ~arch:Vm.Arch.cisc32 bytes with
    | Error msg -> check "typecheck rejection" true
                     (String.length msg >= 12
                      && String.sub msg 0 12 = "FIR rejected")
    | Ok _ -> Alcotest.fail "ill-typed FIR accepted"
  in
  reject ();
  reject ();
  let s = Migrate.Codecache.stats cache in
  check_int "second rejection served from the negative entry" 1
    s.Migrate.Codecache.hits;
  check_int "only one typecheck paid" 1 s.Migrate.Codecache.misses

(* ------------------------------------------------------------------ *)
(* Accounting consistency                                              *)
(* ------------------------------------------------------------------ *)

(* An ill-typed program packaged with a consistent digest — produces a
   NEGATIVE cache entry (cached rejection, zero instructions). *)
let hostile_bytes () =
  let evil =
    let v = Var.fresh "p" in
    Ast.program ~main:"main"
      [
        {
          Ast.f_name = "main";
          f_params = [];
          f_body =
            Ast.Let_atom
              (v, Types.Tptr Types.Tint, Ast.Int 9, Ast.Exit (Ast.Int 0));
        };
      ]
  in
  let proc, _ = run_to_migration (migrating_sum 21) in
  let im = (Migrate.Pack.pack_request proc).Migrate.Pack.p_image in
  let fir = Serial.encode evil in
  Migrate.Wire.encode
    { im with Migrate.Wire.i_fir = fir; i_digest = Digest.of_encoded fir }

let test_stats_consistency () =
  let a = packed_bytes 33 in
  let b = packed_bytes 34 in
  let evil = hostile_bytes () in
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _ = unpack ~cache a in
  let _ = unpack ~cache a in
  let _ = unpack ~cache b in
  let _ = unpack ~cache ~trusted:true b in
  (match Migrate.Pack.unpack ~cache ~arch:Vm.Arch.cisc32 evil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-typed FIR accepted");
  let s = Migrate.Codecache.stats cache in
  check_int "lookups = hits + misses"
    (Migrate.Codecache.lookups cache)
    (s.Migrate.Codecache.hits + s.Migrate.Codecache.misses);
  check_int "one lookup per delivery" 5 (Migrate.Codecache.lookups cache);
  (* the stats view is a snapshot: mutating it changes nothing *)
  s.Migrate.Codecache.hits <- 999;
  let s' = Migrate.Codecache.stats cache in
  check_int "stats record is a snapshot" 1 s'.Migrate.Codecache.hits

let test_instr_accounting_with_negative_entries () =
  let a = packed_bytes 35 in
  let b = packed_bytes 36 in
  let evil = hostile_bytes () in
  let digest_of bytes = (Migrate.Wire.decode bytes).Migrate.Wire.i_digest in
  (* fill a cache with positive AND negative entries, then drop them all
     by invalidation: the instruction accounting must return to zero *)
  let cache = Migrate.Codecache.create ~capacity:8 () in
  let _ = unpack ~cache a in
  let _ = unpack ~cache b in
  (match Migrate.Pack.unpack ~cache ~arch:Vm.Arch.cisc32 evil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-typed FIR accepted");
  check_int "three entries live" 3 (Migrate.Codecache.length cache);
  check "positive entries hold instructions" true
    (Migrate.Codecache.total_instrs cache > 0);
  List.iter
    (fun bytes -> Migrate.Codecache.invalidate cache ~digest:(digest_of bytes))
    [ a; b; evil ];
  check_int "all entries dropped" 0 (Migrate.Codecache.length cache);
  check_int "instruction accounting back to zero" 0
    (Migrate.Codecache.total_instrs cache);
  (* same via LRU eviction: alternate through a capacity-1 cache *)
  let tiny = Migrate.Codecache.create ~capacity:1 () in
  let _ = unpack ~cache:tiny a in
  let _ = unpack ~cache:tiny b in
  (match Migrate.Pack.unpack ~cache:tiny ~arch:Vm.Arch.cisc32 evil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-typed FIR accepted");
  (* the negative entry (zero instructions) is the sole survivor *)
  check_int "negative entry survived alone" 1 (Migrate.Codecache.length tiny);
  check_int "a negative entry holds no instructions" 0
    (Migrate.Codecache.total_instrs tiny);
  Migrate.Codecache.invalidate tiny ~digest:(digest_of evil);
  check_int "eviction path also returns to zero" 0
    (Migrate.Codecache.total_instrs tiny)

(* ------------------------------------------------------------------ *)
(* Cluster aggregation                                                 *)
(* ------------------------------------------------------------------ *)

let test_cluster_hit_rate () =
  (* resurrect the same checkpoint twice on one node: the second
     resurrection hits the node's cache *)
  let cl = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2; trusted = true } in
  let proc, _ = run_to_migration (migrating_sum 22) in
  let packed = Migrate.Pack.pack_request ~with_binary:false proc in
  ignore
    (Net.Storage.write (Net.Cluster.storage cl) "ckpt.img"
       packed.Migrate.Pack.p_bytes);
  (match Net.Cluster.resurrect cl ~node_id:0 ~path:"ckpt.img" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "resurrect failed: %s" m);
  check "cold cluster has no hits" true (Net.Cluster.cache_hit_rate cl = 0.0);
  (match Net.Cluster.resurrect cl ~node_id:0 ~path:"ckpt.img" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "resurrect failed: %s" m);
  check "second resurrection hits" true
    (Net.Cluster.cache_hit_rate cl = 0.5);
  check_int "one report per node" 2
    (List.length (Net.Cluster.cache_reports cl));
  (* a cache-disabled cluster reports nothing *)
  let off = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2; code_cache = 0 } in
  check_int "disabled cluster has no reports" 0
    (List.length (Net.Cluster.cache_reports off))

let suites =
  [
    ( "codecache",
      [
        Alcotest.test_case "digest stability" `Quick test_digest_stable;
        Alcotest.test_case "wire v6 digest round-trip" `Quick
          test_wire_v6_roundtrip;
        Alcotest.test_case "hit skips typecheck+codegen" `Quick
          test_cache_hit;
        Alcotest.test_case "capacity 0 matches uncached" `Quick
          test_cache_disabled_matches_uncached;
        Alcotest.test_case "cross-arch isolation" `Quick
          test_cross_arch_isolation;
        Alcotest.test_case "trust-mode isolation" `Quick
          test_trust_mode_isolation;
        Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        Alcotest.test_case "instr budget + invalidate" `Quick
          test_instr_budget_and_invalidate;
        Alcotest.test_case "negative caching" `Quick test_negative_caching;
        Alcotest.test_case "stats consistency (lookups = hits + misses)"
          `Quick test_stats_consistency;
        Alcotest.test_case "instr accounting with negative entries" `Quick
          test_instr_accounting_with_negative_entries;
        Alcotest.test_case "cluster hit rate" `Quick test_cluster_hit_rate;
      ] );
  ]
