(* Tests for the distributed-speculation coordinator: 2PC commit over
   epoch-pinned participants, distributed rollback with mailbox
   compensation, coordinator-death and coordinator-rollback aborts, and
   the headline property — speculative exactly-once serving under
   loss + duplication + crash_in_commit fault plans with services
   migrating mid-region.

   Cluster-level tests take their fault seed from MCC_FAULT_SEED when
   set (CI rotates it); every faulty scenario runs TWICE under the same
   seed and the JSONL traces must be byte-identical. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_seed =
  match Sys.getenv_opt "MCC_FAULT_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with Failure _ -> 11)
  | None -> 11

let compile_c src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> Alcotest.failf "C compile: %s" (Minic.Driver.error_to_string e)

let mk_cluster ?(nodes = 3) ?(seed = 1) plan =
  Net.Cluster.create_cfg
    { Net.Cluster.Config.default with
      node_count = nodes;
      seed;
      net = Some (Net.Simnet.create ~latency_us:5.0 ());
      faults = plan }

let count cluster name =
  Obs.Metrics.counter_value (Net.Cluster.metrics cluster) name

let exit_code cluster pid =
  match Net.Cluster.entry_of_pid cluster pid with
  | Some e -> (
    match e.Net.Cluster.proc.Vm.Process.status with
    | Vm.Process.Exited n -> Some n
    | _ -> None)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Trace audit: zero partial commits                                   *)
(* ------------------------------------------------------------------ *)

(* The audit the bench's F5 acceptance relies on, exercised here at
   test scale: (1) no transaction both commits and aborts; (2) every
   abort decided by a LIVE coordinator (fence / crash_in_commit) is
   followed by that coordinator's own region rollback; (3) every abort
   is followed by mailbox compensation for its transaction. *)
let audit_no_partial_commits events =
  let committed = Hashtbl.create 16 and aborted = Hashtbl.create 16 in
  List.iter
    (fun (ev : Obs.Trace.event) ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Dspec_commit { txn; _ } -> Hashtbl.replace committed txn ()
      | Obs.Trace.Dspec_abort { txn; _ } -> Hashtbl.replace aborted txn ()
      | _ -> ())
    events;
  Hashtbl.iter
    (fun txn () ->
      if Hashtbl.mem committed txn then
        Alcotest.failf "partial commit: txn %d both committed and aborted"
          txn)
    aborted;
  List.iter
    (fun (ev : Obs.Trace.event) ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Dspec_abort { txn; reason; _ }
        when reason = "fence" || reason = "crash_in_commit" ->
        let rolled =
          List.exists
            (fun (e2 : Obs.Trace.event) ->
              e2.Obs.Trace.pid = ev.Obs.Trace.pid
              && e2.Obs.Trace.time >= ev.Obs.Trace.time
              &&
              match e2.Obs.Trace.kind with
              | Obs.Trace.Spec_rollback _ -> true
              | _ -> false)
            events
        in
        if not rolled then
          Alcotest.failf
            "txn %d aborted (%s) but coordinator pid %d never rolled back"
            txn reason ev.Obs.Trace.pid;
        let compensated =
          List.exists
            (fun (e2 : Obs.Trace.event) ->
              match e2.Obs.Trace.kind with
              | Obs.Trace.Dspec_compensate { txn = x; _ } -> x = txn
              | _ -> false)
            events
        in
        if not compensated then
          Alcotest.failf "txn %d aborted without mailbox compensation" txn
      | _ -> ())
    events

let abort_reasons events =
  List.filter_map
    (fun (ev : Obs.Trace.event) ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Dspec_abort { reason; _ } -> Some reason
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* Fault-free speculative serving                                      *)
(* ------------------------------------------------------------------ *)

let serve_cfg =
  { Mcc.Gridapp.Serve.clients = 3; services = 2; requests_per_client = 20;
    work_us = 20; skew = false; speculative = true }

let test_fault_free_speculative_serving () =
  let cluster = mk_cluster ~nodes:3 Net.Faults.none in
  let d = Mcc.Gridapp.Serve.deploy cluster serve_cfg in
  let r = Mcc.Gridapp.Serve.run d in
  let total =
    serve_cfg.Mcc.Gridapp.Serve.clients
    * serve_cfg.Mcc.Gridapp.Serve.requests_per_client
  in
  check "exactly-once" true (Mcc.Gridapp.Serve.exactly_once d r);
  check_int "one commit per unique request" total
    (count cluster "dspec.commits");
  check_int "no aborts without faults" 0 (count cluster "dspec.aborts");
  check_int "every opened txn resolved" (count cluster "dspec.opened")
    (count cluster "dspec.commits" + count cluster "dspec.aborts");
  check_int "one prepare round per txn" (count cluster "dspec.opened")
    (count cluster "dspec.prepares");
  audit_no_partial_commits (Obs.Trace.events (Net.Cluster.trace cluster))

(* ------------------------------------------------------------------ *)
(* Coordinator rollback: abort + mailbox compensation                  *)
(* ------------------------------------------------------------------ *)

(* The coordinator opens a txn, sends a stamped message, and aborts its
   region before the participant consumes it (the participant is pinned
   in work_us long past the abort): the txn must abort with
   "coordinator_rolled_back" and compensation must un-deliver the
   message.  The retry round then commits cleanly through the 2PC. *)
let coord_rollback_src =
  {|
int main() {
  float *buf = alloc_float(2);
  int specid; int txn; int rc; int tries;
  tries = 0;
  specid = speculate();
  if (specid < 0) { specid = 0 - specid; tries = 1; }
  buf[0] = 7.0;
  txn = dspec_open();
  msg_send(1, 5, buf, 1);
  if (tries == 0) { abort(specid); }
  rc = dspec_commit(txn);
  if (rc == 0) { commit(specid); }
  if (rc < 0) { return 0 - 1; }
  return txn;
}
|}

let part_consume_src =
  {|
int main() {
  float *buf = alloc_float(2);
  int got; int cs; int fin;
  work_us(1000);
  cs = speculate();
  if (cs < 0) { cs = 0 - cs; }
  got = msg_try_recv(0, 5, buf, 1);
  while (got == 0 - 1) { got = msg_try_recv(0, 5, buf, 1); }
  if (got == 0 - 2) { abort(cs); }
  fin = spec_pending();
  while (fin == 1) { fin = spec_pending(); }
  commit(cs);
  return (int)buf[0];
}
|}

let run_coord_rollback () =
  let cluster = mk_cluster ~nodes:2 Net.Faults.none in
  let coord =
    Net.Cluster.spawn cluster ~rank:0 ~node_id:0 (compile_c coord_rollback_src)
  in
  let part =
    Net.Cluster.spawn cluster ~rank:1 ~node_id:1 (compile_c part_consume_src)
  in
  ignore (Net.Cluster.run cluster ~max_rounds:200_000);
  cluster, coord, part

let test_coordinator_rollback_compensates () =
  let cluster, coord, part = run_coord_rollback () in
  check "coordinator exited with the retry txn" true
    (exit_code cluster coord = Some 2);
  check "participant saw the retried payload" true
    (exit_code cluster part = Some 7);
  check_int "first txn aborted" 1 (count cluster "dspec.aborts");
  check_int "retry txn committed" 1 (count cluster "dspec.commits");
  check_int "the stamped message was un-delivered" 1
    (count cluster "dspec.compensated");
  (match Net.Dspec.find (Net.Cluster.dspec cluster) 1 with
  | Some txn ->
    check "txn 1 state" true
      (txn.Net.Dspec.x_state = Net.Dspec.Aborted "coordinator_rolled_back")
  | None -> Alcotest.fail "txn 1 not found");
  (match Net.Dspec.find (Net.Cluster.dspec cluster) 2 with
  | Some txn ->
    check "txn 2 state" true (txn.Net.Dspec.x_state = Net.Dspec.Committed)
  | None -> Alcotest.fail "txn 2 not found");
  check "abort reason recorded" true
    (List.mem "coordinator_rolled_back"
       (abort_reasons (Obs.Trace.events (Net.Cluster.trace cluster))));
  audit_no_partial_commits (Obs.Trace.events (Net.Cluster.trace cluster))

(* ------------------------------------------------------------------ *)
(* Coordinator crash: the participant must not wait forever            *)
(* ------------------------------------------------------------------ *)

(* The coordinator opens a txn, the participant JOINS it by consuming
   the stamped message and spins on the pre-commit barrier; then the
   coordinator's node dies.  The txn must abort with
   "coordinator_dead" and the cascade must force-roll the joined
   participant off the doomed region. *)
let coord_crash_src =
  {|
int main() {
  float *buf = alloc_float(2);
  int specid; int txn; int got;
  specid = speculate();
  if (specid < 0) { specid = 0 - specid; }
  buf[0] = 42.0;
  txn = dspec_open();
  msg_send(1, 5, buf, 1);
  got = msg_try_recv(1, 9, buf, 1);
  while (got == 0 - 1) { got = msg_try_recv(1, 9, buf, 1); }
  commit(specid);
  return txn;
}
|}

let part_join_src =
  {|
int main() {
  float *buf = alloc_float(2);
  int got; int cs; int fin;
  cs = speculate();
  if (cs < 0) { cs = 0 - cs; }
  got = msg_try_recv(0, 5, buf, 1);
  while (got == 0 - 1) { got = msg_try_recv(0, 5, buf, 1); }
  if (got == 0 - 2) { abort(cs); }
  fin = spec_pending();
  while (fin == 1) { fin = spec_pending(); }
  commit(cs);
  return (int)buf[0];
}
|}

let run_coord_crash () =
  let cluster = mk_cluster ~nodes:2 Net.Faults.none in
  let coord =
    Net.Cluster.spawn cluster ~rank:0 ~node_id:0 (compile_c coord_crash_src)
  in
  let part =
    Net.Cluster.spawn cluster ~rank:1 ~node_id:1 (compile_c part_join_src)
  in
  (* run until the participant is spinning on the barrier (the
     coordinator parks on a tag that never arrives; the budget bounds
     the participant's spin) *)
  ignore (Net.Cluster.run cluster ~max_rounds:50_000);
  Net.Cluster.fail_node cluster 0;
  ignore (Net.Cluster.run cluster ~max_rounds:50_000);
  cluster, coord, part

let test_coordinator_crash_aborts () =
  let cluster, _coord, part = run_coord_crash () in
  check_int "txn aborted" 1 (count cluster "dspec.aborts");
  check_int "nothing committed" 0 (count cluster "dspec.commits");
  (match Net.Dspec.find (Net.Cluster.dspec cluster) 1 with
  | Some txn ->
    check "txn 1 state" true
      (txn.Net.Dspec.x_state = Net.Dspec.Aborted "coordinator_dead")
  | None -> Alcotest.fail "txn 1 not found");
  check "abort reason recorded" true
    (List.mem "coordinator_dead"
       (abort_reasons (Obs.Trace.events (Net.Cluster.trace cluster))));
  (* the joined participant was rolled off the doomed region *)
  let forced =
    List.exists
      (fun (ev : Obs.Trace.event) ->
        ev.Obs.Trace.pid = part
        &&
        match ev.Obs.Trace.kind with
        | Obs.Trace.Forced_rollback _ -> true
        | _ -> false)
      (Obs.Trace.events (Net.Cluster.trace cluster))
  in
  check "participant force-rolled" true forced

let trace_of_scenario run_scenario =
  let cluster, _, _ = run_scenario () in
  Obs.Trace.to_jsonl (Net.Cluster.trace cluster)

let test_crash_scenarios_reproducible () =
  Alcotest.(check string)
    "coordinator-rollback: byte-identical traces"
    (trace_of_scenario run_coord_rollback)
    (trace_of_scenario run_coord_rollback);
  Alcotest.(check string)
    "coordinator-crash: byte-identical traces"
    (trace_of_scenario run_coord_crash)
    (trace_of_scenario run_coord_crash)

(* ------------------------------------------------------------------ *)
(* Participant crash in the commit round, under full fault plans       *)
(* ------------------------------------------------------------------ *)

let f5_plan seed =
  { Net.Faults.none with
    f_seed = seed;
    f_loss = 0.05;
    f_dup = 0.05;
    f_crash_in_commit = 0.35 }

(* The headline: speculative exactly-once serving with services
   migrating mid-region while the commit round loses participants to
   crash_in_commit.  Every abort must replay to a clean commit; the
   dedup state must never double-serve. *)
let run_f5 seed =
  let cluster = mk_cluster ~nodes:3 (f5_plan seed) in
  let d = Mcc.Gridapp.Serve.deploy cluster serve_cfg in
  let r =
    Mcc.Gridapp.Serve.run ~migrate_every_s:0.002 ~migrations:4 d
  in
  cluster, d, r

let test_speculative_serving_under_faults () =
  let cluster, d, r = run_f5 env_seed in
  let total =
    serve_cfg.Mcc.Gridapp.Serve.clients
    * serve_cfg.Mcc.Gridapp.Serve.requests_per_client
  in
  check "exactly-once under faults" true (Mcc.Gridapp.Serve.exactly_once d r);
  check_int "one commit per unique request" total
    (count cluster "dspec.commits");
  check "commit rounds were crashed" true (count cluster "dspec.aborts" > 0);
  check "crashed acks were fenced" true
    (count cluster "dspec.fence_rejections" > 0);
  check_int "every opened txn resolved" (count cluster "dspec.opened")
    (count cluster "dspec.commits" + count cluster "dspec.aborts");
  audit_no_partial_commits (Obs.Trace.events (Net.Cluster.trace cluster))

let test_faulty_serving_reproducible () =
  let trace () =
    let cluster, _, _ = run_f5 env_seed in
    Obs.Trace.to_jsonl (Net.Cluster.trace cluster)
  in
  Alcotest.(check string) "same seed, byte-identical traces" (trace ())
    (trace ())

let suites =
  [
    ( "dspec",
      [
        Alcotest.test_case "fault-free speculative serving" `Quick
          test_fault_free_speculative_serving;
        Alcotest.test_case "coordinator rollback compensates mailboxes"
          `Quick test_coordinator_rollback_compensates;
        Alcotest.test_case "coordinator crash aborts the txn" `Quick
          test_coordinator_crash_aborts;
        Alcotest.test_case "crash scenarios: byte-identical traces" `Quick
          test_crash_scenarios_reproducible;
        Alcotest.test_case "exactly-once under crash_in_commit + migration"
          `Quick test_speculative_serving_under_faults;
        Alcotest.test_case "faulty serving: byte-identical traces" `Quick
          test_faulty_serving_reproducible;
      ] );
  ]
