(* Tests for the mini-ML front-end: parsing, Hindley-Milner inference,
   closure-converted CPS lowering, execution on both engines, and the
   language-neutrality of the FIR (ML images serialize and migrate
   exactly like C ones). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let compile src =
  match Miniml.Driver.compile src with
  | Ok fir -> fir
  | Error e ->
    Alcotest.failf "compile failed: %s" (Miniml.Driver.error_to_string e)

let run_ml src =
  let fir = compile src in
  let proc = Vm.Process.create fir in
  match Vm.Interp.run proc with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "trapped: %s" m
  | _ -> Alcotest.fail "did not exit"

let run_ml_emu ?(arch = Vm.Arch.risc64) src =
  let fir = compile src in
  let proc = Vm.Process.create ~arch fir in
  let emu = Vm.Emulator.create (Vm.Codegen.compile ~arch fir) proc in
  match Vm.Emulator.run emu with
  | Vm.Process.Exited n -> n, Vm.Process.output proc
  | Vm.Process.Trapped m -> Alcotest.failf "emulator trapped: %s" m
  | _ -> Alcotest.fail "emulator did not exit"

let expect_error phase src =
  match Miniml.Driver.compile src with
  | Ok _ -> Alcotest.failf "expected a %s error" phase
  | Error e ->
    let got =
      match e.Miniml.Driver.err_phase with
      | `Parse -> "parse"
      | `Type -> "type"
      | `Lower -> "lower"
      | `Fir -> "fir"
    in
    check_str "error phase" phase got

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let test_basics () =
  check_int "arith" 14 (fst (run_ml "let main = 2 + 3 * 4"));
  check_int "if" 10 (fst (run_ml "let main = if 2 < 3 then 10 else 20"));
  check_int "let" 25 (fst (run_ml "let main = let x = 5 in x * x"));
  check_int "nested let" 11
    (fst (run_ml "let main = let x = 5 in let y = 6 in x + y"))

let test_factorial () =
  let n, out =
    run_ml
      {|
let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
let main = print_int (fact 10); print_newline (); fact 6
|}
  in
  check_int "fact 6" 720 n;
  check_str "fact 10 printed" "3628800\n" out

let test_fib () =
  check_int "fib 15" 610
    (fst
       (run_ml
          {|
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let main = fib 15
|}))

let test_closures () =
  check_int "adder" 16
    (fst
       (run_ml
          {|
let make_adder x = fun y -> x + y
let add3 = make_adder 3
let twice f = fun x -> f (f x)
let main = twice add3 10
|}));
  check_int "capture chain" 60
    (fst
       (run_ml
          {|
let f a = fun b -> fun c -> a * b + c
let main = f 5 11 5
|}))

let test_higher_order () =
  let n, out =
    run_ml
      {|
let rec iter f = fun lo -> fun hi ->
  if lo >= hi then () else (f lo; iter f (lo + 1) hi)
let main = iter print_int 0 5; 42
|}
  in
  check_int "iter result" 42 n;
  check_str "iter output" "01234" out

let test_let_polymorphism () =
  (* id used at int and at (int -> int) *)
  check_int "polymorphic id" 8
    (fst
       (run_ml
          {|
let id x = x
let inc x = x + 1
let main = id inc (id 7)
|}))

let test_currying_partial () =
  check_int "partial application" 30
    (fst
       (run_ml
          {|
let mul a b = a * b
let times5 = mul 5
let main = times5 6
|}))

let test_shadowing () =
  check_int "shadowing" 3
    (fst (run_ml "let main = let x = 1 in let x = x + 2 in x"))

let test_bool_ops () =
  check_int "bool ops" 1
    (fst
       (run_ml
          "let main = if (2 < 3 && 4 >= 4) || false then 1 else 0"))

let test_sequencing_effects () =
  let _, out =
    run_ml
      {|
let main = print_int 1; print_int 2; print_newline (); print_bool (1 = 1); 0
|}
  in
  check_str "ordered effects" "12\n1" out

let test_recursion_deep () =
  (* deep tail recursion: CPS means constant stack, heap cells per call *)
  check_int "count to 50000" 50000
    (fst
       (run_ml
          {|
let rec count n = if n >= 50000 then n else count (n + 1)
let main = count 0
|}))

let test_mutual_via_closures () =
  check_int "even/odd via closure dispatch" 1
    (fst
       (run_ml
          {|
let rec even n = if n = 0 then true else (if n = 1 then false else even (n - 2))
let main = if even 10 then 1 else 0
|}))

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let test_errors () =
  expect_error "parse" "let main = (1 + ";
  expect_error "parse" "main = 3";
  expect_error "type" "let main = x";
  expect_error "type" "let main = 1 + true";
  expect_error "type" "let main = if 1 then 2 else 3";
  expect_error "type" "let main = (fun x -> x x) 1";
  expect_error "type" "let f x = x + 1 let main = f true"

(* ------------------------------------------------------------------ *)
(* Engines and language neutrality                                     *)
(* ------------------------------------------------------------------ *)

let differential =
  [
    "let rec fact n = if n <= 1 then 1 else n * fact (n - 1)\nlet main = fact 8";
    "let make a = fun b -> a - b\nlet main = make 100 58";
    "let rec sum n = if n = 0 then 0 else n + sum (n - 1)\nlet main = sum 100";
  ]

let test_differential () =
  List.iter
    (fun src ->
      let ni, oi = run_ml src in
      let ne, oe = run_ml_emu src in
      check_int "interp = emulator" ni ne;
      check_str "output matches" oi oe)
    differential

let test_ml_fir_serializes () =
  (* the FIR produced from ML round-trips the canonical codec and is
     accepted by the strict (migration-server) typechecker *)
  List.iter
    (fun src ->
      let fir = compile src in
      check "strict typecheck" true
        (Fir.Typecheck.well_typed ~strict:true ~externs:Vm.Extern.signatures
           fir);
      let fir' = Fir.Serial.decode (Fir.Serial.encode fir) in
      let proc = Vm.Process.create fir' in
      match Vm.Interp.run proc with
      | Vm.Process.Exited _ -> ()
      | _ -> Alcotest.fail "decoded ML image did not run")
    differential

let test_ml_on_cluster () =
  (* an ML process and a C process coexist on the simulated cluster *)
  let ml =
    compile "let rec sum n = if n = 0 then 0 else n + sum (n - 1)\nlet main = sum 10"
  in
  let c =
    match Minic.Driver.compile "int main() { return 55; }" with
    | Ok fir -> fir
    | Error _ -> Alcotest.fail "C compile failed"
  in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let p1 = Net.Cluster.spawn cluster ~node_id:0 ml in
  let p2 = Net.Cluster.spawn cluster ~node_id:1 c in
  let _ = Net.Cluster.run cluster in
  let status pid =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> e.Net.Cluster.proc.Vm.Process.status
    | None -> Alcotest.fail "pid lost"
  in
  check "ML process" true (status p1 = Vm.Process.Exited 55);
  check "C process" true (status p2 = Vm.Process.Exited 55)

let suites =
  [
    ( "miniml.exec",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "factorial" `Quick test_factorial;
        Alcotest.test_case "fibonacci" `Quick test_fib;
        Alcotest.test_case "closures" `Quick test_closures;
        Alcotest.test_case "higher-order functions" `Quick test_higher_order;
        Alcotest.test_case "let polymorphism" `Quick test_let_polymorphism;
        Alcotest.test_case "currying" `Quick test_currying_partial;
        Alcotest.test_case "shadowing" `Quick test_shadowing;
        Alcotest.test_case "booleans" `Quick test_bool_ops;
        Alcotest.test_case "effect ordering" `Quick test_sequencing_effects;
        Alcotest.test_case "deep recursion" `Quick test_recursion_deep;
        Alcotest.test_case "conditional recursion" `Quick
          test_mutual_via_closures;
      ] );
    ("miniml.reject", [ Alcotest.test_case "errors" `Quick test_errors ]);
    ( "miniml.neutrality",
      [
        Alcotest.test_case "interp = emulator" `Quick test_differential;
        Alcotest.test_case "FIR serializes and re-verifies" `Quick
          test_ml_fir_serializes;
        Alcotest.test_case "ML and C share the cluster" `Quick
          test_ml_on_cluster;
      ] );
  ]
