(* Tests for the VM: interpreter semantics, traps, speculation and
   migration end-to-end, plus differential testing of the compiled MASM
   emulator against the reference interpreter. *)

open Fir
open Runtime

module Masm = Vm.Masm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let exit_code = function
  | Vm.Process.Exited n -> n
  | Vm.Process.Trapped msg -> Alcotest.failf "trapped: %s" msg
  | Vm.Process.Running -> Alcotest.fail "still running"
  | Vm.Process.Migrating _ -> Alcotest.fail "unexpectedly migrating"

let run_interp ?seed program =
  let proc = Vm.Process.create ?seed program in
  let status = Vm.Interp.run proc in
  status, proc

let run_emulator ?seed ?(arch = Vm.Arch.cisc32) program =
  let image = Vm.Codegen.compile ~arch program in
  let proc = Vm.Process.create ?seed ~arch program in
  let emu = Vm.Emulator.create image proc in
  let status = Vm.Emulator.run emu in
  status, proc

(* ------------------------------------------------------------------ *)
(* Shared example programs                                             *)
(* ------------------------------------------------------------------ *)

let sum_loop =
  Builder.(
    let loop, entry =
      for_loop ~name:"loop" ~lo:(int 0) ~hi:(int 10)
        ~state_tys:[ Types.Tint ] ~state:[ int 0 ]
        ~body:(fun i st continue ->
          match st with
          | [ acc ] -> add acc i (fun acc' -> continue [ acc' ])
          | _ -> assert false)
        ~after:(fun st ->
          match st with [ acc ] -> exit_ acc | _ -> assert false)
    in
    prog [ loop; func "main" [] (fun _ -> entry) ])

let factorial =
  Builder.(
    prog
      [
        func "fact" [ "n", Types.Tint; "acc", Types.Tint ] (fun args ->
            match args with
            | [ n; acc ] ->
              le n (int 1) (fun base ->
                  if_ base (exit_ acc)
                    (mul acc n (fun acc' ->
                         sub n (int 1) (fun n' -> callf "fact" [ n'; acc' ]))))
            | _ -> assert false);
        func "main" [] (fun _ -> callf "fact" [ int 5; int 1 ]);
      ])

let heap_rw =
  Builder.(
    prog
      [
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 16) ~init:(int 0) (fun arr ->
                store arr (int 7) (int 42)
                  (binop (Types.Tptr Types.Tint) Ast.Padd arr (int 3)
                     (fun p ->
                       load Types.Tint p (int 4) (fun x -> exit_ x)))));
      ])

let speculative_retry =
  (* first attempt writes 99 into the cell and rolls back; the retry sees
     c=1, checks the cell was restored to 5, and exits c*100 + cell *)
  Builder.(
    prog
      [
        func "body"
          [ "c", Types.Tint; "cell", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ c; cell ] ->
              eq c (int 0) (fun fresh ->
                  if_ fresh
                    (store cell (int 0) (int 99) (rollback (int 1) (int 1)))
                    (load Types.Tint cell (int 0) (fun v ->
                         mul c (int 100) (fun h ->
                             add h v (fun r -> exit_ r)))))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 5) (fun cell ->
                speculate (fn "body") [ cell ]));
      ])

let speculative_commit =
  Builder.(
    prog
      [
        func "fin" [ "cell", Types.Tptr Types.Tint ] (fun args ->
            match args with
            | [ cell ] -> load Types.Tint cell (int 0) (fun v -> exit_ v)
            | _ -> assert false);
        func "body"
          [ "c", Types.Tint; "cell", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ _; cell ] ->
              store cell (int 0) (int 77) (commit (int 1) (fn "fin") [ cell ])
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 5) (fun cell ->
                speculate (fn "body") [ cell ]));
      ])

let hello_print =
  Builder.(
    prog
      [
        func "main" [] (fun _ ->
            string "hello" (fun s ->
                ext Types.Tunit "print_string" [ s ] (fun _ ->
                    ext Types.Tunit "print_newline" [] (fun _ ->
                        ext Types.Tunit "print_int" [ int 42 ] (fun _ ->
                            exit_ (int 0))))));
      ])

let migrator =
  Builder.(
    prog
      [
        func "after" [ "x", Types.Tint ] (fun args ->
            match args with
            | [ x ] -> add x (int 1) (fun r -> exit_ r)
            | _ -> assert false);
        func "main" [] (fun _ ->
            string "mcc://node7" (fun dst ->
                migrate ~label:3 dst (fn "after") [ int 10 ]));
      ])

let all_programs =
  [
    "sum_loop", sum_loop, 45;
    "factorial", factorial, 120;
    "heap_rw", heap_rw, 42;
    "speculative_retry", speculative_retry, 105;
    "speculative_commit", speculative_commit, 77;
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_interp_programs () =
  List.iter
    (fun (name, p, expected) ->
      check "program typechecks" true
        (Typecheck.well_typed ~externs:Vm.Extern.signatures p);
      let status, _ = run_interp p in
      check_int name expected (exit_code status))
    all_programs

let test_interp_output () =
  let status, proc = run_interp hello_print in
  check_int "exit 0" 0 (exit_code status);
  check_str "output buffer" "hello\n42" (Vm.Process.output proc)

let test_interp_optimized_agrees () =
  List.iter
    (fun (name, p, expected) ->
      let status, _ = run_interp (Opt.optimize p) in
      check_int (name ^ " optimized") expected (exit_code status))
    all_programs

let test_rand_deterministic () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              ext Types.Tint "rand" [ int 1000 ] (fun a ->
                  ext Types.Tint "rand" [ int 1000 ] (fun b ->
                      mul a (int 1000) (fun h -> add h b (fun r -> exit_ r)))));
        ])
  in
  let s1, _ = run_interp ~seed:7 p in
  let s2, _ = run_interp ~seed:7 p in
  let s3, _ = run_interp ~seed:8 p in
  check_int "same seed same value" (exit_code s1) (exit_code s2);
  check "different seed differs" true (exit_code s1 <> exit_code s3)

(* ------------------------------------------------------------------ *)
(* Traps                                                               *)
(* ------------------------------------------------------------------ *)

let expect_trap name p =
  let status, _ = run_interp p in
  match status with
  | Vm.Process.Trapped _ -> ()
  | _ -> Alcotest.failf "%s: expected a trap" name

let test_trap_div_zero () =
  expect_trap "div by zero"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              div (int 1) (int 0) (fun x -> exit_ x));
        ])

let test_trap_nil_deref () =
  expect_trap "nil dereference"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              atom (Types.Tptr Types.Tint) (nil (Types.Tptr Types.Tint))
                (fun p -> load Types.Tint p (int 0) (fun x -> exit_ x)));
        ])

let test_trap_out_of_bounds () =
  expect_trap "out-of-bounds store"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int 2) ~init:(int 0) (fun arr ->
                  store arr (int 5) (int 1) (exit_ (int 0))));
        ])

let test_trap_negative_array () =
  expect_trap "negative array size"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int (-3)) ~init:(int 0) (fun _ ->
                  exit_ (int 0)));
        ])

let test_trap_bad_commit () =
  expect_trap "commit without speculation"
    Builder.(
      prog
        [
          func "fin" [] (fun _ -> exit_ (int 0));
          func "main" [] (fun _ -> commit (int 1) (fn "fin") []);
        ])

let test_trap_pointer_forge () =
  (* forging a pointer past the live pointer table must trap, not crash:
     this is the paper's safety argument for C memory *)
  expect_trap "forged pointer index"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int 1) ~init:(int 0) (fun arr ->
                  binop (Types.Tptr Types.Tint) Ast.Padd arr (int 1000000)
                    (fun p -> load Types.Tint p (int 0) (fun x -> exit_ x))));
        ])

(* ------------------------------------------------------------------ *)
(* Migration surface                                                   *)
(* ------------------------------------------------------------------ *)

let test_migrate_request () =
  let proc = Vm.Process.create migrator in
  let status = Vm.Interp.run proc in
  match status with
  | Vm.Process.Migrating req ->
    check_str "target decoded" "mcc://node7" req.Vm.Process.m_target;
    check_int "label" 3 req.Vm.Process.m_label;
    check_str "entry" "after" req.Vm.Process.m_entry;
    check "live args captured" true
      (req.Vm.Process.m_args = [ Value.Vint 10 ]);
    (* failure is invisible: the process resumes locally *)
    Vm.Process.migration_failed proc;
    let status = Vm.Interp.run proc in
    check_int "continued locally" 11 (exit_code status)
  | _ -> Alcotest.fail "expected a migration request"

let test_migrate_completed () =
  let proc = Vm.Process.create migrator in
  (match Vm.Interp.run proc with
  | Vm.Process.Migrating _ -> ()
  | _ -> Alcotest.fail "expected migration");
  Vm.Process.migration_completed proc;
  check "terminated on source" true (Vm.Process.is_terminated proc)

(* ------------------------------------------------------------------ *)
(* GC under execution                                                  *)
(* ------------------------------------------------------------------ *)

let allocating_loop n =
  (* allocate a tuple per iteration, keep only a running sum: forces
     collections while running *)
  Builder.(
    let loop, entry =
      for_loop ~name:"loop" ~lo:(int 0) ~hi:(int n)
        ~state_tys:[ Types.Tint ] ~state:[ int 0 ]
        ~body:(fun i st continue ->
          match st with
          | [ acc ] ->
            tuple [ Types.Tint, i; Types.Tint, acc ] (fun t ->
                proj Types.Tint t 0 (fun x ->
                    add acc x (fun acc' -> continue [ acc' ])))
          | _ -> assert false)
        ~after:(fun st ->
          match st with [ acc ] -> exit_ acc | _ -> assert false)
    in
    prog [ loop; func "main" [] (fun _ -> entry) ])

let test_gc_under_execution () =
  let p = allocating_loop 20_000 in
  let proc = Vm.Process.create p in
  let status = Vm.Interp.run proc in
  check_int "sum correct despite GC" (20_000 * 19_999 / 2) (exit_code status);
  let stats = Heap.stats proc.Vm.Process.heap in
  check "collections actually happened" true
    (stats.Heap.minor_collections + stats.Heap.major_collections > 0);
  check "heap stayed bounded" true
    (Heap.used_cells proc.Vm.Process.heap < 2_000_000)

let test_gc_during_speculation_run () =
  (* speculate, allocate enough to trigger GC, roll back: the original
     must survive the collections *)
  let p =
    Builder.(
      prog
        [
          func "churn"
            [ "i", Types.Tint; "c", Types.Tint;
              "cell", Types.Tptr Types.Tint ]
            (fun args ->
              match args with
              | [ i; c; cell ] ->
                gt i (int 0) (fun more ->
                    if_ more
                      (tuple [ Types.Tint, i ] (fun _junk ->
                           sub i (int 1) (fun i' ->
                               callf "churn" [ i'; c; cell ])))
                      (eq c (int 0) (fun fresh ->
                           if_ fresh
                             (rollback (int 1) (int 1))
                             (load Types.Tint cell (int 0) (fun v -> exit_ v)))))
              | _ -> assert false);
          func "body"
            [ "c", Types.Tint; "cell", Types.Tptr Types.Tint ]
            (fun args ->
              match args with
              | [ c; cell ] ->
                (* on retry (c <> 0) do NOT redo the speculative write:
                   the load at the end must then see the restored value *)
                eq c (int 0) (fun fresh ->
                    if_ fresh
                      (store cell (int 0) (int 999)
                         (callf "churn" [ int 30000; c; cell ]))
                      (callf "churn" [ int 30000; c; cell ]))
              | _ -> assert false);
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int 1) ~init:(int 123) (fun cell ->
                  speculate (fn "body") [ cell ]));
        ])
  in
  let status, proc = run_interp p in
  check_int "rollback restored across GC" 123 (exit_code status);
  let stats = Heap.stats proc.Vm.Process.heap in
  check "GC ran during speculation" true
    (stats.Heap.minor_collections + stats.Heap.major_collections > 0)

(* ------------------------------------------------------------------ *)
(* Emulator: differential testing                                      *)
(* ------------------------------------------------------------------ *)

let test_emulator_matches_interp () =
  List.iter
    (fun (name, p, expected) ->
      List.iter
        (fun arch ->
          let status, _ = run_emulator ~arch p in
          check_int
            (Printf.sprintf "%s on %s" name arch.Vm.Arch.name)
            expected (exit_code status))
        Vm.Arch.all)
    all_programs

let test_emulator_output_matches () =
  let _, pi = run_interp hello_print in
  let _, pe = run_emulator hello_print in
  check_str "same output" (Vm.Process.output pi) (Vm.Process.output pe)

let test_emulator_traps_match () =
  List.iter
    (fun p ->
      let si, _ = run_interp p in
      let se, _ = run_emulator p in
      match si, se with
      | Vm.Process.Trapped _, Vm.Process.Trapped _ -> ()
      | _ -> Alcotest.fail "interpreter and emulator disagree on trapping")
    [
      Builder.(
        prog
          [ func "main" [] (fun _ -> div (int 1) (int 0) (fun x -> exit_ x)) ]);
      Builder.(
        prog
          [
            func "main" [] (fun _ ->
                array Types.Tint ~size:(int 2) ~init:(int 0) (fun arr ->
                    store arr (int 5) (int 1) (exit_ (int 0))));
          ]);
    ]

(* The Fast (pre-resolved) and Compiled (closure-compiled) modes must be
   OBSERVABLY identical to the Baseline per-instruction loop: same
   status (including trap messages and migration targets), same output,
   same retired-instruction count, and — because externs read cycles
   mid-block — the same final cycle count, on every program and both
   architectures. *)

(* Programs that exercise the compiled tier's fusion boundaries: an
   observation point (extern / migrate / speculate) landing in the
   middle of what would otherwise be a straight-line run, a switch whose
   targets land on (the start of) fused segments, and traps raised from
   deep inside a fused run with cycle/instruction checkpoints pending. *)
let boundary_programs =
  Builder.
    [
      ( "extern_mid_block",
        prog
          [
            func "main" [] (fun _ ->
                add (int 40) (int 2) (fun a ->
                    mul a a (fun b ->
                        ext Types.Tunit "print_int" [ b ] (fun _ ->
                            sub b (int 1700) (fun c ->
                                rem c (int 97) (fun d -> exit_ d))))));
          ] );
      ( "migrate_mid_block",
        prog
          [
            func "after" [ "x", Types.Tint ] (fun args ->
                match args with
                | [ x ] -> add x (int 1) (fun r -> exit_ r)
                | _ -> assert false);
            func "main" [] (fun _ ->
                add (int 2) (int 3) (fun a ->
                    mul a a (fun b ->
                        string "mcc://elsewhere" (fun dst ->
                            migrate ~label:1 dst (fn "after") [ b ]))));
          ] );
      ( "switch_into_segment",
        prog
          [
            func "loop"
              [ "i", Types.Tint; "acc", Types.Tint ]
              (fun args ->
                match args with
                | [ i; acc ] ->
                  lt i (int 30) (fun c ->
                      if_ c
                        (rem i (int 3) (fun r ->
                             let step d =
                               add acc (int d) (fun a ->
                                   add i (int 1) (fun j ->
                                       callf "loop" [ j; a ]))
                             in
                             switch r [ 0, step 1; 1, step 10 ] (step 100)))
                        (exit_ acc))
                | _ -> assert false);
            func "main" [] (fun _ -> callf "loop" [ int 0; int 0 ]);
          ] );
      ( "trap_mid_run",
        prog
          [
            func "main" [] (fun _ ->
                add (int 7) (int 35) (fun a ->
                    sub a (int 42) (fun z ->
                        div a z (fun q -> exit_ q))));
          ] );
      ( "trap_oob_store",
        prog
          [
            func "main" [] (fun _ ->
                array Types.Tint ~size:(int 2) ~init:(int 0) (fun arr ->
                    add (int 3) (int 2) (fun i ->
                        store arr i (int 1) (exit_ (int 0)))));
          ] );
    ]

let test_emulator_modes_equivalent () =
  let status_repr = function
    | Vm.Process.Exited n -> Printf.sprintf "exited %d" n
    | Vm.Process.Trapped m -> "trapped: " ^ m
    | Vm.Process.Migrating r -> "migrating to " ^ r.Vm.Process.m_target
    | Vm.Process.Running -> "running"
  in
  let check_program name p =
    List.iter
      (fun arch ->
        let run mode =
          let image = Vm.Codegen.compile ~arch p in
          let proc = Vm.Process.create ~seed:5 ~arch p in
          let emu = Vm.Emulator.create ~mode image proc in
          let status = Vm.Emulator.run emu in
          status, proc, Vm.Emulator.instructions emu
        in
        let st_b, proc_b, instrs_b = run Vm.Emulator.Baseline in
        List.iter
          (fun (mname, mode) ->
            let label what =
              Printf.sprintf "%s on %s (%s): %s" name arch.Vm.Arch.name
                mname what
            in
            let st_m, proc_m, instrs_m = run mode in
            check_str (label "status") (status_repr st_b) (status_repr st_m);
            check_str (label "output")
              (Vm.Process.output proc_b)
              (Vm.Process.output proc_m);
            check_int (label "instructions") instrs_b instrs_m;
            check_int (label "steps") proc_b.Vm.Process.steps
              proc_m.Vm.Process.steps;
            check_int (label "cycles") proc_b.Vm.Process.cycles
              proc_m.Vm.Process.cycles)
          [ "fast", Vm.Emulator.Fast; "compiled", Vm.Emulator.Compiled ])
      Vm.Arch.all
  in
  List.iter (fun (name, p, _) -> check_program name p) all_programs;
  check_program "hello_print" hello_print;
  List.iter (fun (name, p) -> check_program name p) boundary_programs

let test_emulator_migration () =
  let image = Vm.Codegen.compile migrator in
  let proc = Vm.Process.create migrator in
  let emu = Vm.Emulator.create image proc in
  (match Vm.Emulator.run emu with
  | Vm.Process.Migrating req ->
    check_str "emulator migration target" "mcc://node7"
      req.Vm.Process.m_target
  | _ -> Alcotest.fail "expected migration from emulator");
  Vm.Process.migration_failed proc;
  check_int "emulator continues after failed migration" 11
    (exit_code (Vm.Emulator.run emu))

let test_emulator_arch_mismatch () =
  let image = Vm.Codegen.compile ~arch:Vm.Arch.risc64 sum_loop in
  let proc = Vm.Process.create ~arch:Vm.Arch.cisc32 sum_loop in
  match Vm.Emulator.create image proc with
  | exception Vm.Emulator.Emulator_error _ -> ()
  | _ -> Alcotest.fail "cross-arch image accepted without recompilation"

let test_spill_paths () =
  (* force spills on cisc32 (6 registers) with >6 simultaneously-live
     variables; the program must still compute correctly *)
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              add (int 1) (int 0) (fun v1 ->
                  add v1 (int 1) (fun v2 ->
                      add v2 (int 1) (fun v3 ->
                          add v3 (int 1) (fun v4 ->
                              add v4 (int 1) (fun v5 ->
                                  add v5 (int 1) (fun v6 ->
                                      add v6 (int 1) (fun v7 ->
                                          add v1 v2 (fun s1 ->
                                              add s1 v3 (fun s2 ->
                                                  add s2 v4 (fun s3 ->
                                                      add s3 v5 (fun s4 ->
                                                          add s4 v6 (fun s5 ->
                                                              add s5 v7
                                                                (fun s6 ->
                                                                  exit_ s6))))))))))))));
        ])
  in
  let fn =
    Masm.fn_exn (Vm.Codegen.compile ~arch:Vm.Arch.cisc32 p) "main"
  in
  check "spills were generated" true (fn.Masm.fn_spills > 0);
  let status, _ = run_emulator ~arch:Vm.Arch.cisc32 p in
  check_int "spilled program computes correctly" 28 (exit_code status);
  (* the risc64 flavour has enough registers: no spills *)
  let fn64 =
    Masm.fn_exn (Vm.Codegen.compile ~arch:Vm.Arch.risc64 p) "main"
  in
  check_int "no spills on risc64" 0 fn64.Masm.fn_spills

let test_cycle_accounting () =
  let _, p32 = run_emulator ~arch:Vm.Arch.cisc32 sum_loop in
  let _, p64 = run_emulator ~arch:Vm.Arch.risc64 sum_loop in
  check "both consumed cycles" true
    (p32.Vm.Process.cycles > 0 && p64.Vm.Process.cycles > 0);
  check "architectures cost differently" true
    (p32.Vm.Process.cycles <> p64.Vm.Process.cycles)

let test_masm_roundtrip () =
  List.iter
    (fun (name, p, _) ->
      let image = Vm.Codegen.compile p in
      let image' = Masm.decode (Masm.encode image) in
      check_str (name ^ " masm roundtrip") (Masm.image_to_string image)
        (Masm.image_to_string image'))
    all_programs

let test_masm_corrupt () =
  let image = Vm.Codegen.compile sum_loop in
  let s = Masm.encode image in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
  match Masm.decode (Bytes.to_string b) with
  | exception Masm.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt MASM image accepted"

let test_context_switch_cost () =
  let c32 = Vm.Emulator.context_switch_cycles Vm.Arch.cisc32 in
  let c64 = Vm.Emulator.context_switch_cycles Vm.Arch.risc64 in
  check "positive cost" true (c32 > 0 && c64 > 0);
  check "more registers cost more to switch" true (c64 > c32)

let suites =
  [
    ( "vm.interp",
      [
        Alcotest.test_case "example programs" `Quick test_interp_programs;
        Alcotest.test_case "print externs" `Quick test_interp_output;
        Alcotest.test_case "optimizer preserves semantics" `Quick
          test_interp_optimized_agrees;
        Alcotest.test_case "seeded rand determinism" `Quick
          test_rand_deterministic;
      ] );
    ( "vm.traps",
      [
        Alcotest.test_case "division by zero" `Quick test_trap_div_zero;
        Alcotest.test_case "nil dereference" `Quick test_trap_nil_deref;
        Alcotest.test_case "out-of-bounds store" `Quick
          test_trap_out_of_bounds;
        Alcotest.test_case "negative array size" `Quick
          test_trap_negative_array;
        Alcotest.test_case "commit without speculation" `Quick
          test_trap_bad_commit;
        Alcotest.test_case "forged pointer" `Quick test_trap_pointer_forge;
      ] );
    ( "vm.migration",
      [
        Alcotest.test_case "request surfaces live state" `Quick
          test_migrate_request;
        Alcotest.test_case "completed migration terminates source" `Quick
          test_migrate_completed;
      ] );
    ( "vm.gc",
      [
        Alcotest.test_case "collections during execution" `Quick
          test_gc_under_execution;
        Alcotest.test_case "rollback across collections" `Quick
          test_gc_during_speculation_run;
      ] );
    ( "vm.emulator",
      [
        Alcotest.test_case "matches interpreter" `Quick
          test_emulator_matches_interp;
        Alcotest.test_case "output matches" `Quick
          test_emulator_output_matches;
        Alcotest.test_case "traps match" `Quick test_emulator_traps_match;
        Alcotest.test_case "fast mode = baseline mode" `Quick
          test_emulator_modes_equivalent;
        Alcotest.test_case "migration from compiled code" `Quick
          test_emulator_migration;
        Alcotest.test_case "arch mismatch rejected" `Quick
          test_emulator_arch_mismatch;
        Alcotest.test_case "spill paths" `Quick test_spill_paths;
        Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
        Alcotest.test_case "context switch cost" `Quick
          test_context_switch_cost;
      ] );
    ( "vm.masm",
      [
        Alcotest.test_case "codec round-trip" `Quick test_masm_roundtrip;
        Alcotest.test_case "corruption detected" `Quick test_masm_corrupt;
      ] );
  ]
