(* Tests for the MCC facade and the Figure 2 grid application. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Api                                                                 *)
(* ------------------------------------------------------------------ *)

let test_api_compile_run () =
  let fir =
    match Mcc.Api.compile_c "int main() { return 6 * 7; }" with
    | Ok fir -> fir
    | Error m -> Alcotest.failf "compile_c: %s" m
  in
  let out = Mcc.Api.run fir in
  check "reference backend" true (Mcc.Api.exit_code out = Ok 42);
  let out = Mcc.Api.run ~backend:Mcc.Api.Native fir in
  check "native backend" true (Mcc.Api.exit_code out = Ok 42);
  match Mcc.Api.compile_ml "let main = 40 + 2" with
  | Error m -> Alcotest.failf "compile_ml: %s" m
  | Ok fir ->
    check "ml program" true (Mcc.Api.exit_code (Mcc.Api.run fir) = Ok 42)

let test_api_errors () =
  (match Mcc.Api.compile_c "int main() { return x; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad C accepted");
  (match Mcc.Api.compile_ml "let main = 1 + true" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad ML accepted");
  let fir = Mcc.Api.compile_exn (Mcc.Api.C "int main() { return 1 / 0; }") in
  match Mcc.Api.exit_code (Mcc.Api.run fir) with
  | Error m -> check "trap reported" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "division by zero exited normally"

let test_api_checkpoint_resume () =
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.C
         {|
int main() {
  int *a = alloc_int(10);
  int i;
  for (i = 0; i < 10; i = i + 1) a[i] = i + 1;
  migrate("checkpoint://self");
  int acc = 0;
  for (i = 0; i < 10; i = i + 1) acc = acc + a[i];
  return acc;
}
|})
  in
  let proc = Vm.Process.create fir in
  (match Vm.Interp.run proc with
  | Vm.Process.Migrating _ -> ()
  | _ -> Alcotest.fail "expected checkpoint request");
  let bytes = Mcc.Api.image_bytes proc in
  (* the image resumes to completion *)
  (match Mcc.Api.resume_and_run bytes with
  | Ok out -> check "resumed image completes" true (Mcc.Api.exit_code out = Ok 55)
  | Error m -> Alcotest.failf "resume failed: %s" m);
  (* the original can also continue (checkpoint semantics) *)
  Vm.Process.migration_failed proc;
  match Vm.Interp.run proc with
  | Vm.Process.Exited 55 -> ()
  | _ -> Alcotest.fail "original did not continue"

(* ------------------------------------------------------------------ *)
(* Grid application                                                    *)
(* ------------------------------------------------------------------ *)

let quick_config =
  { Mcc.Gridapp.ranks = 3; rows_per_rank = 4; cols = 8; timesteps = 12;
    interval = 4; work_us_per_step = 0 }

let fast_net () = Net.Simnet.create ~latency_us:5.0 ()

let all_checksums d config =
  Array.to_list (Mcc.Gridapp.checksums d)
  |> List.map (function
       | Some n -> n
       | None -> Alcotest.failf "a rank did not exit (%d ranks)" config.Mcc.Gridapp.ranks)

let test_grid_sources_compile () =
  (* every generated rank compiles and typechecks strictly against the
     cluster externs *)
  List.iter
    (fun r ->
      let fir = Mcc.Gridapp.compile_rank quick_config r in
      check "strict typecheck" true
        (Fir.Typecheck.well_typed ~strict:true
           ~externs:Net.Cluster.extern_signatures fir))
    [ 0; 1; 2 ]

let test_grid_matches_golden () =
  let golden = Array.to_list (Mcc.Gridapp.golden_checksums quick_config) in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy cluster quick_config in
  let _ = Mcc.Gridapp.run d in
  Alcotest.(check (list int))
    "distributed = sequential golden model" golden
    (all_checksums d quick_config)

let test_grid_no_checkpoint_matches () =
  let config = { quick_config with Mcc.Gridapp.interval = 0 } in
  let golden = Array.to_list (Mcc.Gridapp.golden_checksums config) in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy cluster config in
  let _ = Mcc.Gridapp.run d in
  Alcotest.(check (list int)) "baseline (no checkpoints) matches" golden
    (all_checksums d config)

let test_grid_single_rank () =
  let config =
    { Mcc.Gridapp.ranks = 1; rows_per_rank = 6; cols = 10; timesteps = 8;
      interval = 3; work_us_per_step = 0 }
  in
  let golden = Array.to_list (Mcc.Gridapp.golden_checksums config) in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy cluster config in
  let _ = Mcc.Gridapp.run d in
  Alcotest.(check (list int)) "single rank" golden (all_checksums d config)

let test_grid_checkpoints_written () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy cluster quick_config in
  let _ = Mcc.Gridapp.run d in
  let storage = Net.Cluster.storage cluster in
  List.iter
    (fun r ->
      check
        (Printf.sprintf "checkpoint for rank %d exists" r)
        true
        (Net.Storage.exists storage (Mcc.Gridapp.checkpoint_path r)))
    [ 0; 1; 2 ]

let failure_config =
  { Mcc.Gridapp.ranks = 3; rows_per_rank = 4; cols = 8; timesteps = 60;
    interval = 10; work_us_per_step = 200 }

let test_grid_recovers_from_failure () =
  let golden = Array.to_list (Mcc.Gridapp.golden_checksums failure_config) in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 4; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy ~spare:true cluster failure_config in
  let victims =
    Mcc.Gridapp.fail_and_recover ~rounds_before_failure:10 d ~victim_node:1
      ~spare_node:3
  in
  check "a rank was killed" true (victims <> []);
  let _ = Mcc.Gridapp.run d in
  Alcotest.(check (list int))
    "post-recovery result matches the golden model" golden
    (all_checksums d failure_config);
  (* the recovery machinery actually fired *)
  let events = Net.Cluster.events cluster in
  let has sub =
    List.exists
      (fun e ->
        let rec find i =
          i + String.length sub <= String.length e
          && (String.equal (String.sub e i (String.length sub)) sub
             || find (i + 1))
        in
        find 0)
      events
  in
  check "node failure logged" true (has "FAILED");
  check "resurrection logged" true (has "resurrected");
  check "survivors rolled back" true (has "forced rollback")

let test_grid_failure_without_checkpoints_is_fatal () =
  (* without the primitives there is no recovery: the survivors see
     MSG_ROLL and give up (Figure 2's motivation) *)
  let config = { failure_config with Mcc.Gridapp.interval = 0 } in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 4; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy ~spare:true cluster config in
  (* let it start, then kill a node *)
  let _ = Net.Cluster.run cluster ~max_rounds:30 in
  Net.Cluster.fail_node cluster 1;
  let _ = Mcc.Gridapp.run ~max_rounds:200_000 d in
  let failed_ranks =
    List.length
      (List.filter
         (fun r ->
           match Mcc.Gridapp.rank_status d r with
           | Vm.Process.Exited n -> n < 0 (* the app's fatal-error exit *)
           | Vm.Process.Trapped _ -> true
           | _ -> false)
         [ 0; 1; 2 ])
  in
  check "at least the victim is lost" true (failed_ranks >= 1)

let test_grid_double_failure () =
  (* two successive failures with recovery in between: longevity in a
     faulty environment (the paper's stated goal) *)
  let config =
    { Mcc.Gridapp.ranks = 2; rows_per_rank = 4; cols = 8; timesteps = 80;
      interval = 10; work_us_per_step = 200 }
  in
  let golden = Array.to_list (Mcc.Gridapp.golden_checksums config) in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 4; net = Some (fast_net ()) } in
  let d = Mcc.Gridapp.deploy ~spare:true cluster config in
  let v1 =
    Mcc.Gridapp.fail_and_recover ~rounds_before_failure:10 d ~victim_node:0
      ~spare_node:3
  in
  check "first victim" true (v1 <> []);
  let v2 =
    Mcc.Gridapp.fail_and_recover ~rounds_before_failure:10 d ~victim_node:1
      ~spare_node:2
  in
  ignore v2;
  let _ = Mcc.Gridapp.run d in
  Alcotest.(check (list int))
    "correct after two failures" golden (all_checksums d config)

let suites =
  [
    ( "mcc.api",
      [
        Alcotest.test_case "compile and run" `Quick test_api_compile_run;
        Alcotest.test_case "errors surface" `Quick test_api_errors;
        Alcotest.test_case "checkpoint and resume" `Quick
          test_api_checkpoint_resume;
      ] );
    ( "mcc.grid",
      [
        Alcotest.test_case "generated sources verify" `Quick
          test_grid_sources_compile;
        Alcotest.test_case "distributed = golden model" `Quick
          test_grid_matches_golden;
        Alcotest.test_case "baseline without checkpoints" `Quick
          test_grid_no_checkpoint_matches;
        Alcotest.test_case "single rank" `Quick test_grid_single_rank;
        Alcotest.test_case "checkpoints written" `Quick
          test_grid_checkpoints_written;
        Alcotest.test_case "recovery from node failure" `Quick
          test_grid_recovers_from_failure;
        Alcotest.test_case "failure without checkpoints is fatal" `Quick
          test_grid_failure_without_checkpoints_is_fatal;
        Alcotest.test_case "survives two failures" `Quick
          test_grid_double_failure;
      ] );
  ]
