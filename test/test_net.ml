(* Tests for the simulated cluster substrate: network cost model, shared
   storage, mailboxes, scheduling, message passing, cluster-level
   migration protocols, failure injection, resurrection, and the
   distributed speculation-join cascade. *)

open Fir
open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Simnet                                                              *)
(* ------------------------------------------------------------------ *)

let test_simnet_costs () =
  let net = Net.Simnet.create () in
  (* 1 MB at 100 Mbps = ~80 ms of wire time plus setup *)
  let t = Net.Simnet.transfer_seconds net 1_000_000 in
  check "1MB transfer around 81ms" true (t > 0.080 && t < 0.085);
  let small = Net.Simnet.message_seconds net 100 in
  check "message cheaper than transfer" true
    (small < Net.Simnet.transfer_seconds net 100);
  (* bandwidth term dominates large transfers *)
  check "transfer scales with size" true
    (Net.Simnet.transfer_seconds net 10_000_000
     > 9.0 *. Net.Simnet.transfer_seconds net 1_000_000 /. 1.2)

let test_simnet_clock () =
  let net = Net.Simnet.create () in
  Net.Simnet.advance net 0.5;
  check "advance" true (Net.Simnet.now net = 0.5);
  Net.Simnet.advance_to net 0.3;
  check "advance_to never goes back" true (Net.Simnet.now net = 0.5);
  Net.Simnet.advance_to net 0.9;
  check "advance_to forward" true (Net.Simnet.now net = 0.9);
  (* a negative [advance] is a caller bug (time never flows backwards)
     and must be rejected loudly, not ignored *)
  (try
     Net.Simnet.advance net (-1.0);
     Alcotest.fail "negative advance must raise"
   with Invalid_argument _ -> ());
  check "clock unchanged after rejected advance" true
    (Net.Simnet.now net = 0.9);
  Net.Simnet.advance net 0.0;
  check "zero advance is a no-op" true (Net.Simnet.now net = 0.9)

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

let test_storage () =
  let net = Net.Simnet.create () in
  let st = Net.Storage.create net in
  let dt = Net.Storage.write st "ckpt1" "hello" in
  check "write takes time" true (dt > 0.0);
  (match Net.Storage.read st "ckpt1" with
  | Some (data, _) -> Alcotest.(check string) "read back" "hello" data
  | None -> Alcotest.fail "read failed");
  check "missing file" true (Net.Storage.read st "nope" = None);
  let _ = Net.Storage.write st "ckpt1" "world" in
  (match Net.Storage.read st "ckpt1" with
  | Some (data, _) -> Alcotest.(check string) "overwrite" "world" data
  | None -> Alcotest.fail "read failed");
  check "exists" true (Net.Storage.exists st "ckpt1");
  check_int "size" 5 (Option.get (Net.Storage.size st "ckpt1"));
  check_int "list" 1 (List.length (Net.Storage.list st));
  (* listing order is part of the API: sorted, independent of insertion
     order and of Hashtbl internals (which differ across OCaml
     versions) — consumers diff listings across runs *)
  List.iter
    (fun p -> ignore (Net.Storage.write st p p))
    [ "zz"; "a9"; "m/3"; "a1"; "ckpt0" ];
  Alcotest.(check (list string))
    "listing is sorted and deterministic"
    [ "a1"; "a9"; "ckpt0"; "ckpt1"; "m/3"; "zz" ]
    (Net.Storage.list st)

(* ------------------------------------------------------------------ *)
(* Mailboxes                                                           *)
(* ------------------------------------------------------------------ *)

let msg ?(spec = None) ~src ~tag ~at payload =
  {
    Net.Mpi.msg_src_rank = src;
    msg_src_pid = 100 + src;
    msg_tag = tag;
    msg_payload = Array.map (fun n -> Value.Vint n) payload;
    msg_deliver_at = at;
    msg_spec = spec;
    msg_src_epoch = 0;
  }

let test_mailbox_matching () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:5 ~at:0.0 [| 1 |]);
  Net.Mpi.enqueue mbox (msg ~src:2 ~tag:5 ~at:0.0 [| 2 |]);
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:6 ~at:0.0 [| 3 |]);
  (* wrong src/tag combinations do not match *)
  check "no match for src 3" true
    (Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:3 ~tag:5 = Net.Mpi.None_yet);
  (match Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:6 with
  | Net.Mpi.Received m ->
    check "tag 6 from src 1" true (m.Net.Mpi.msg_payload = [| Value.Vint 3 |])
  | _ -> Alcotest.fail "expected message");
  check_int "two messages left" 2 (Net.Mpi.pending mbox);
  (* FIFO among matches *)
  match Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:5 with
  | Net.Mpi.Received m ->
    check "first matching" true (m.Net.Mpi.msg_payload = [| Value.Vint 1 |])
  | _ -> Alcotest.fail "expected message"

let test_mailbox_delivery_time () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:0 ~at:5.0 [| 9 |]);
  check "not yet delivered" true
    (Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:0 = Net.Mpi.None_yet);
  check "next delivery known" true (Net.Mpi.next_delivery mbox = Some 5.0);
  match Net.Mpi.try_recv mbox ~now:5.0 ~src_rank:1 ~tag:0 with
  | Net.Mpi.Received _ -> ()
  | _ -> Alcotest.fail "expected delivery at t=5"

let test_mailbox_roll_notice () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:0 ~at:0.0 [| 1 |]);
  Net.Mpi.post_roll_notice mbox ~src_rank:1;
  (* the notice preempts the queued message and is consumed exactly once *)
  check "roll first" true
    (Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:0 = Net.Mpi.Roll);
  (match Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:0 with
  | Net.Mpi.Received _ -> ()
  | _ -> Alcotest.fail "message should follow the notice");
  (* notices are per source rank *)
  Net.Mpi.post_roll_notice mbox ~src_rank:7;
  check "other ranks unaffected" true
    (Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:0 = Net.Mpi.None_yet)

let test_mailbox_discard_speculative () =
  let mbox = Net.Mpi.create_mailbox () in
  Net.Mpi.enqueue mbox (msg ~spec:(Some (42, 7)) ~src:1 ~tag:0 ~at:0.0 [| 1 |]);
  Net.Mpi.enqueue mbox (msg ~spec:(Some (42, 8)) ~src:1 ~tag:0 ~at:0.0 [| 2 |]);
  Net.Mpi.enqueue mbox (msg ~src:1 ~tag:0 ~at:0.0 [| 3 |]);
  let dropped =
    Net.Mpi.discard_speculative mbox ~uids:[ 7 ] ~sender_pid:42
  in
  check_int "one dropped" 1 dropped;
  check_int "two remain" 2 (Net.Mpi.pending mbox)

(* With the two-list FIFO, a 10k-message burst is linear work and
   delivery order stays oldest-first (the old [queue @ [msg]] enqueue
   made a burst O(N^2)). *)
let test_mailbox_fifo_burst () =
  let mbox = Net.Mpi.create_mailbox () in
  let n = 10_000 in
  for i = 1 to n do
    Net.Mpi.enqueue mbox (msg ~src:1 ~tag:0 ~at:0.0 [| i |])
  done;
  check_int "all pending" n (Net.Mpi.pending mbox);
  (match Net.Mpi.messages mbox with
  | first :: _ ->
    check "messages lists oldest first" true
      (first.Net.Mpi.msg_payload = [| Value.Vint 1 |])
  | [] -> Alcotest.fail "burst lost");
  let in_order = ref true in
  for i = 1 to n do
    match Net.Mpi.try_recv mbox ~now:1.0 ~src_rank:1 ~tag:0 with
    | Net.Mpi.Received m ->
      if m.Net.Mpi.msg_payload <> [| Value.Vint i |] then in_order := false
    | _ -> in_order := false
  done;
  check "delivered oldest-first" true !in_order;
  check_int "drained" 0 (Net.Mpi.pending mbox)

(* ------------------------------------------------------------------ *)
(* Cluster: basic scheduling and messaging                             *)
(* ------------------------------------------------------------------ *)

let exit_program n =
  Builder.(prog [ func "main" [] (fun _ -> exit_ (int n)) ])

let status_of_pid cluster pid =
  match Net.Cluster.entry_of_pid cluster pid with
  | Some e -> e.Net.Cluster.proc.Vm.Process.status
  | None -> Alcotest.failf "no pid %d" pid

let test_cluster_runs_to_exit () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid1 = Net.Cluster.spawn cluster ~node_id:0 (exit_program 7) in
  let pid2 =
    Net.Cluster.spawn cluster ~engine:`Masm ~node_id:1 (exit_program 8)
  in
  let _ = Net.Cluster.run cluster in
  check "interp process exited" true
    (status_of_pid cluster pid1 = Vm.Process.Exited 7);
  check "emulated process exited" true
    (status_of_pid cluster pid2 = Vm.Process.Exited 8);
  check "time advanced" true (Net.Cluster.now cluster > 0.0)

(* rank 0 sends [10;20;30] to rank 1; rank 1 polls, sums, exits 60 *)
let sender_program =
  Builder.(
    prog
      [
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 3) ~init:(int 0) (fun buf ->
                store buf (int 0) (int 10)
                  (store buf (int 1) (int 20)
                     (store buf (int 2) (int 30)
                        (ext Types.Tint "msg_send_int"
                           [ int 1; int 0; buf; int 3 ] (fun r ->
                             exit_ r))))));
      ])

let receiver_program =
  Builder.(
    prog
      [
        func "poll" [ "buf", Types.Tptr Types.Tint ] (fun args ->
            match args with
            | [ buf ] ->
              ext Types.Tint "msg_try_recv_int" [ int 0; int 0; buf; int 3 ]
                (fun r ->
                  eq r (int (-1)) (fun empty ->
                      if_ empty (callf "poll" [ buf ])
                        (load Types.Tint buf (int 0) (fun a ->
                             load Types.Tint buf (int 1) (fun b ->
                                 load Types.Tint buf (int 2) (fun c ->
                                     add a b (fun ab ->
                                         add ab c (fun s -> exit_ s))))))))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 3) ~init:(int 0) (fun buf ->
                callf "poll" [ buf ]));
      ])

let test_cluster_message_passing () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let recv_pid =
    Net.Cluster.spawn cluster ~rank:1 ~node_id:1 receiver_program
  in
  let send_pid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender_program in
  let _ = Net.Cluster.run cluster in
  check "sender ok" true (status_of_pid cluster send_pid = Vm.Process.Exited 0);
  check "receiver summed the payload" true
    (status_of_pid cluster recv_pid = Vm.Process.Exited 60)

let test_cluster_send_to_nowhere () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  (* rank 1 never registered: send returns -1 *)
  let pid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 sender_program in
  let _ = Net.Cluster.run cluster in
  check "send to unknown rank fails" true
    (status_of_pid cluster pid = Vm.Process.Exited (-1))

let test_cluster_typechecks_against_externs () =
  check "cluster programs typecheck against the extern registry" true
    (Typecheck.well_typed ~strict:true
       ~externs:Net.Cluster.extern_signatures receiver_program)

(* ------------------------------------------------------------------ *)
(* Cluster migration                                                   *)
(* ------------------------------------------------------------------ *)

let migrate_then_finish ~target =
  Builder.(
    prog
      [
        func "after" [ "x", Types.Tint ] (fun args ->
            match args with
            | [ x ] -> add x (int 5) (fun r -> exit_ r)
            | _ -> assert false);
        func "main" [] (fun _ ->
            string target (fun dst ->
                migrate ~label:1 dst (fn "after") [ int 100 ]));
      ])

(* [statuses] order is part of the API contract: one row per process
   ever placed, in spawn order — i.e. ascending pid — stable across
   runs, scheduling and mid-run migrations (a migration's successor is
   a NEW entry appended at its own spawn position). *)
let test_statuses_spawn_order () =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with node_count = 3 }
  in
  let pids =
    List.init 6 (fun i ->
        Net.Cluster.spawn cluster ~node_id:(i mod 3) (exit_program i))
  in
  let order () = List.map (fun (pid, _, _, _) -> pid) (Net.Cluster.statuses cluster) in
  check "before running: spawn order" true (order () = pids);
  let migrator_pid =
    Net.Cluster.spawn cluster ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let _ = Net.Cluster.run cluster in
  let final = order () in
  check "after running: same prefix, successor appended" true
    (final = pids @ [ migrator_pid; migrator_pid + 1 ]);
  check "ascending pids" true (List.sort compare final = final)

let test_cluster_migrate () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid =
    Net.Cluster.spawn cluster ~rank:3 ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let _ = Net.Cluster.run cluster in
  (* the source process terminated by migration *)
  check "source exited" true
    (status_of_pid cluster pid = Vm.Process.Exited 0);
  (* its successor finished the computation on node1 under the same rank *)
  (match Net.Cluster.entry_of_rank cluster 3 with
  | Some e ->
    check "migrated process finished" true
      (e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Exited 105);
    check_int "runs on node1" 1 e.Net.Cluster.node_id
  | None -> Alcotest.fail "rank lost across migration");
  match Net.Cluster.migrations cluster with
  | [ mr ] ->
    check "migration recorded ok" true mr.Net.Cluster.mr_ok;
    check "bytes counted" true (mr.Net.Cluster.mr_bytes > 0);
    check "compile time charged (untrusted target)" true
      (mr.Net.Cluster.mr_compile_s > 0.0)
  | l -> Alcotest.failf "expected 1 migration record, got %d" (List.length l)

let test_cluster_migrate_to_dead_node () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  Net.Cluster.fail_node cluster 1;
  let pid =
    Net.Cluster.spawn cluster ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let _ = Net.Cluster.run cluster in
  (* failed migration is invisible: the process continued locally *)
  check "continued locally" true
    (status_of_pid cluster pid = Vm.Process.Exited 105)

let test_cluster_checkpoint_and_resurrect () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3 } in
  let p =
    Builder.(
      prog
        [
          func "after" [ "x", Types.Tint ] (fun args ->
              match args with
              | [ x ] ->
                (* spin so the process is still alive when we kill it *)
                callf "spin" [ int 200000; x ]
              | _ -> assert false);
          func "spin" [ "i", Types.Tint; "x", Types.Tint ] (fun args ->
              match args with
              | [ i; x ] ->
                gt i (int 0) (fun more ->
                    if_ more
                      (sub i (int 1) (fun i' -> callf "spin" [ i'; x ]))
                      (exit_ x))
              | _ -> assert false);
          func "main" [] (fun _ ->
              string "checkpoint://ck" (fun dst ->
                  migrate ~label:9 dst (fn "after") [ int 41 ]));
        ])
  in
  let pid = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 p in
  (* run a little: enough for the checkpoint, not for the spin *)
  let _ = Net.Cluster.run cluster ~max_rounds:5 in
  check "checkpoint file exists" true
    (Net.Storage.exists (Net.Cluster.storage cluster) "ck");
  check "process kept running after checkpoint" true
    (match status_of_pid cluster pid with
    | Vm.Process.Running -> true
    | Vm.Process.Exited 41 -> true (* if it got far *)
    | _ -> false);
  (* kill the node, resurrect from the checkpoint elsewhere *)
  Net.Cluster.fail_node cluster 0;
  check "victim trapped" true
    (match status_of_pid cluster pid with
    | Vm.Process.Trapped _ -> true
    | _ -> false);
  (match Net.Cluster.resurrect cluster ~rank:0 ~node_id:2 ~path:"ck" with
  | Error msg -> Alcotest.failf "resurrection failed: %s" msg
  | Ok new_pid ->
    let _ = Net.Cluster.run cluster in
    check "resurrected process completed" true
      (status_of_pid cluster new_pid = Vm.Process.Exited 41));
  (* resurrection on a dead node is refused *)
  match Net.Cluster.resurrect cluster ~node_id:0 ~path:"ck" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resurrected on a dead node"

let test_cluster_suspend () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1 } in
  let pid =
    Net.Cluster.spawn cluster ~node_id:0
      (migrate_then_finish ~target:"suspend://s1")
  in
  let _ = Net.Cluster.run cluster in
  check "suspend terminates the process" true
    (status_of_pid cluster pid = Vm.Process.Exited 0);
  check "suspend image written" true
    (Net.Storage.exists (Net.Cluster.storage cluster) "s1");
  (* the suspended image is resumable *)
  match Net.Cluster.resurrect cluster ~node_id:0 ~path:"s1" with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok new_pid ->
    let _ = Net.Cluster.run cluster in
    check "suspended process resumed and finished" true
      (status_of_pid cluster new_pid = Vm.Process.Exited 105)

(* ------------------------------------------------------------------ *)
(* Failure + MSG_ROLL                                                  *)
(* ------------------------------------------------------------------ *)

(* rank 1 polls rank 0 forever; exits 222 when it sees MSG_ROLL *)
let roll_watcher =
  Builder.(
    prog
      [
        func "poll" [ "buf", Types.Tptr Types.Tint ] (fun args ->
            match args with
            | [ buf ] ->
              ext Types.Tint "msg_try_recv_int" [ int 0; int 0; buf; int 1 ]
                (fun r ->
                  eq r (int (-2)) (fun rolled ->
                      if_ rolled (exit_ (int 222)) (callf "poll" [ buf ])))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 0) (fun buf ->
                callf "poll" [ buf ]));
      ])

let spin_forever =
  Builder.(
    prog
      [
        func "spin" [] (fun _ -> callf "spin" []);
        func "main" [] (fun _ -> callf "spin" []);
      ])

(* rank [me] polls rank [src] forever; exits 222 on MSG_ROLL *)
let watcher_of src =
  Builder.(
    prog
      [
        func "poll" [ "buf", Types.Tptr Types.Tint ] (fun args ->
            match args with
            | [ buf ] ->
              ext Types.Tint "msg_try_recv_int"
                [ int src; int 0; buf; int 1 ]
                (fun r ->
                  eq r (int (-2)) (fun rolled ->
                      if_ rolled (exit_ (int 222)) (callf "poll" [ buf ])))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 0) (fun buf ->
                callf "poll" [ buf ]));
      ])

(* Regression: fail_node must only wake survivors parked on the DEAD
   rank.  A process parked on an unrelated rank stays parked — waking it
   would violate the parked_on contract and spin it on a poll that still
   returns nothing. *)
let test_fail_node_wakes_only_related_parked () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 4 } in
  let victim = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 spin_forever in
  (* parked on rank 0: must wake and observe MSG_ROLL *)
  let related =
    Net.Cluster.spawn cluster ~rank:1 ~node_id:1 (watcher_of 0)
  in
  (* parked on rank 2 (a live spinner): must stay parked *)
  let unrelated =
    Net.Cluster.spawn cluster ~rank:3 ~node_id:3 (watcher_of 2)
  in
  let _ = Net.Cluster.spawn cluster ~rank:2 ~node_id:2 spin_forever in
  (* enough rounds for both watchers to poll once and park *)
  let _ = Net.Cluster.run cluster ~max_rounds:10 in
  let entry pid =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> e
    | None -> Alcotest.failf "no pid %d" pid
  in
  check "unrelated watcher parked before the failure" true
    (entry unrelated).Net.Cluster.proc.Vm.Process.waiting;
  Net.Cluster.fail_node cluster 0;
  check "victim trapped" true
    (match status_of_pid cluster victim with
    | Vm.Process.Trapped _ -> true
    | _ -> false);
  (* the related watcher was woken by the roll notice ... *)
  check "related watcher woken" true
    (not (entry related).Net.Cluster.proc.Vm.Process.waiting);
  (* ... the unrelated one was not *)
  check "unrelated watcher still parked" true
    (entry unrelated).Net.Cluster.proc.Vm.Process.waiting;
  check "unrelated watcher still parked on rank 2" true
    ((entry unrelated).Net.Cluster.parked_on = Some (2, 0));
  let _ = Net.Cluster.run cluster ~max_rounds:50 in
  check "related watcher observed MSG_ROLL" true
    (status_of_pid cluster related = Vm.Process.Exited 222);
  (* the unrelated watcher's source is alive: still polling, no roll *)
  check "unrelated watcher never saw a roll" true
    (match status_of_pid cluster unrelated with
    | Vm.Process.Running -> true
    | _ -> false)

(* Regression: a migration towards an already-dead node must fail
   cleanly — the source continues locally (migration_failed semantics)
   and exactly one copy of the process ever exists. *)
let test_migration_to_dead_target_single_copy () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  Net.Cluster.fail_node cluster 1;
  let pid =
    Net.Cluster.spawn cluster ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let _ = Net.Cluster.run cluster in
  check "source observed migration_failed and continued locally" true
    (status_of_pid cluster pid = Vm.Process.Exited 105);
  (* no successor entry was ever created: one process, not two *)
  check_int "exactly one process entry" 1
    (List.length (Net.Cluster.statuses cluster));
  (* the trace shows the attempt and its failure *)
  let events = Obs.Trace.events (Net.Cluster.trace cluster) in
  check "trace has the failed migrate_done" true
    (List.exists
       (fun (e : Obs.Trace.event) ->
         match e.Obs.Trace.kind with
         | Obs.Trace.Migrate_done { ok = false; _ } -> true
         | _ -> false)
       events)

(* After a SUCCESSFUL migration the source entry is terminated: the
   packed process must never run in two places. *)
let test_migration_leaves_single_live_copy () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let pid =
    Net.Cluster.spawn cluster ~rank:5 ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let _ = Net.Cluster.run cluster in
  check "source terminated" true
    (status_of_pid cluster pid = Vm.Process.Exited 0);
  let live =
    List.filter
      (fun (_, _, _, status) ->
        match status with
        | Vm.Process.Running | Vm.Process.Migrating _ -> true
        | Vm.Process.Exited _ | Vm.Process.Trapped _ -> false)
      (Net.Cluster.statuses cluster)
  in
  check_int "no live copies left" 0 (List.length live);
  check_int "two entries total (source + successor)" 2
    (List.length (Net.Cluster.statuses cluster))

let test_msg_roll_on_failure () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2 } in
  let victim = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 spin_forever in
  let watcher = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 roll_watcher in
  let _ = Net.Cluster.run cluster ~max_rounds:10 in
  Net.Cluster.fail_node cluster 0;
  let _ = Net.Cluster.run cluster ~max_rounds:50 in
  check "victim trapped" true
    (match status_of_pid cluster victim with
    | Vm.Process.Trapped _ -> true
    | _ -> false);
  check "watcher observed MSG_ROLL" true
    (status_of_pid cluster watcher = Vm.Process.Exited 222)

(* ------------------------------------------------------------------ *)
(* Distributed speculation join                                        *)
(* ------------------------------------------------------------------ *)

(* Sender (rank 0): enters a speculation, writes its cell to 1, SENDS a
   message carrying the speculation, spins a while, then rolls back; on
   retry (c<>0) it exits its cell value (must be 0 again).
   Receiver (rank 1): enters a speculation, receives the message (joining
   the sender's speculation), writes its own cell to the received value,
   then polls a second message that never comes.  The sender's rollback
   must force the receiver back to ITS speculation entry — on re-entry
   with c<>0 the receiver exits 300 + cell (cell must be restored to 0).
*)
let spec_sender =
  Builder.(
    prog
      [
        func "wait_then_roll" [ "i", Types.Tint ] (fun args ->
            match args with
            | [ i ] ->
              gt i (int 0) (fun more ->
                  if_ more
                    (sub i (int 1) (fun i' -> callf "wait_then_roll" [ i' ]))
                    (rollback (int 1) (int 1)))
            | _ -> assert false);
        func "body"
          [ "c", Types.Tint; "cell", Types.Tptr Types.Tint;
            "buf", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ c; cell; buf ] ->
              eq c (int 0) (fun fresh ->
                  if_ fresh
                    (store cell (int 0) (int 1)
                       (store buf (int 0) (int 55)
                          (ext Types.Tint "msg_send_int"
                             [ int 1; int 0; buf; int 1 ] (fun _ ->
                               callf "wait_then_roll" [ int 3000 ]))))
                    (load Types.Tint cell (int 0) (fun v ->
                         add (int 100) v (fun r -> exit_ r))))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 0) (fun cell ->
                array Types.Tint ~size:(int 1) ~init:(int 0) (fun buf ->
                    speculate (fn "body") [ cell; buf ])));
      ])

let spec_receiver =
  Builder.(
    prog
      [
        func "poll1"
          [ "cell", Types.Tptr Types.Tint; "buf", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ cell; buf ] ->
              ext Types.Tint "msg_try_recv_int" [ int 0; int 0; buf; int 1 ]
                (fun r ->
                  ge r (int 0) (fun got ->
                      if_ got
                        (load Types.Tint buf (int 0) (fun v ->
                             store cell (int 0) v
                               (callf "poll2" [ cell; buf ])))
                        (callf "poll1" [ cell; buf ])))
            | _ -> assert false);
        func "poll2"
          [ "cell", Types.Tptr Types.Tint; "buf", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ cell; buf ] ->
              (* waits for a second message that never arrives *)
              ext Types.Tint "msg_try_recv_int" [ int 0; int 1; buf; int 1 ]
                (fun _ -> callf "poll2" [ cell; buf ])
            | _ -> assert false);
        func "body"
          [ "c", Types.Tint; "cell", Types.Tptr Types.Tint;
            "buf", Types.Tptr Types.Tint ]
          (fun args ->
            match args with
            | [ c; cell; buf ] ->
              eq c (int 0) (fun fresh ->
                  if_ fresh
                    (callf "poll1" [ cell; buf ])
                    (load Types.Tint cell (int 0) (fun v ->
                         add (int 300) v (fun r -> exit_ r))))
            | _ -> assert false);
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 1) ~init:(int 0) (fun cell ->
                array Types.Tint ~size:(int 1) ~init:(int 0) (fun buf ->
                    speculate (fn "body") [ cell; buf ])));
      ])

let test_speculation_join_cascade () =
  (* near-zero latency so the receiver consumes the speculative message
     well before the sender's rollback *)
  let net = Net.Simnet.create ~latency_us:0.01 ~connect_ms:0.001 () in
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 2; net = Some net } in
  let sender = Net.Cluster.spawn cluster ~rank:0 ~node_id:0 spec_sender in
  let receiver = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 spec_receiver in
  let _ = Net.Cluster.run cluster ~max_rounds:5000 in
  (* sender retried and saw its own write undone *)
  check "sender rolled back and retried" true
    (status_of_pid cluster sender = Vm.Process.Exited 100);
  (* receiver was cascaded: its own speculative write was undone and it
     re-entered its speculation with a rollback code *)
  check "receiver rolled back with the sender" true
    (status_of_pid cluster receiver = Vm.Process.Exited 300)

(* ------------------------------------------------------------------ *)
(* Observability: the cluster trace                                    *)
(* ------------------------------------------------------------------ *)

(* Drive migration, failure, cascade and resurrection, then check the
   exported timeline is monotone and the JSONL parses line by line. *)
let test_cluster_trace () =
  let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 3 } in
  let _ =
    Net.Cluster.spawn cluster ~rank:3 ~node_id:0
      (migrate_then_finish ~target:"mcc://node1")
  in
  let victim = Net.Cluster.spawn cluster ~rank:0 ~node_id:2 spin_forever in
  let watcher = Net.Cluster.spawn cluster ~rank:1 ~node_id:1 (watcher_of 0) in
  let _ = Net.Cluster.run cluster ~max_rounds:10 in
  Net.Cluster.fail_node cluster 2;
  let _ = Net.Cluster.run cluster ~max_rounds:100 in
  ignore victim;
  check "watcher rolled" true
    (status_of_pid cluster watcher = Vm.Process.Exited 222);
  let tr = Net.Cluster.trace cluster in
  let timeline = Obs.Trace.timeline tr in
  check "trace non-empty" true (timeline <> []);
  (* timestamps are simulated time, cluster-wide monotone after sorting *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Obs.Trace.time <= b.Obs.Trace.time && monotone rest
    | _ -> true
  in
  check "timeline monotone" true (monotone timeline);
  check "no event before time zero" true
    (List.for_all (fun e -> e.Obs.Trace.time >= 0.0) timeline);
  let has pred = List.exists (fun e -> pred e.Obs.Trace.kind) timeline in
  check "migration start traced" true
    (has (function Obs.Trace.Migrate_start _ -> true | _ -> false));
  check "migration done traced" true
    (has (function Obs.Trace.Migrate_done { ok = true; _ } -> true
         | _ -> false));
  check "node failure traced" true
    (has (function Obs.Trace.Node_fail -> true | _ -> false));
  check "roll delivery traced" true
    (has (function Obs.Trace.Msg_roll _ -> true | _ -> false));
  (* every JSONL line is one object with a time and an event label *)
  let jsonl = Obs.Trace.to_jsonl tr in
  let lines = String.split_on_char '\n' jsonl in
  let lines = List.filter (fun l -> l <> "") lines in
  check_int "one line per event" (List.length timeline) (List.length lines);
  List.iter
    (fun line ->
      check "line is an object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      let contains sub =
        let n = String.length sub in
        let rec scan i =
          i + n <= String.length line
          && (String.sub line i n = sub || scan (i + 1))
        in
        scan 0
      in
      check "line carries a timestamp" true (contains "\"t\":");
      check "line carries an event label" true (contains "\"ev\":"))
    lines;
  (* the metrics registry aggregates what the trace itemises *)
  let m = Net.Cluster.metrics cluster in
  check "one migration counted" true
    (Obs.Metrics.counter_value m "cluster.migrations_ok" = 1);
  check "one node failure counted" true
    (Obs.Metrics.counter_value m "cluster.node_failures" = 1);
  check "rounds counted" true (Obs.Metrics.counter_value m "sched.rounds" > 0)

let suites =
  [
    ( "net.simnet",
      [
        Alcotest.test_case "transfer cost model" `Quick test_simnet_costs;
        Alcotest.test_case "virtual clock" `Quick test_simnet_clock;
      ] );
    ("net.storage", [ Alcotest.test_case "shared store" `Quick test_storage ]);
    ( "net.mpi",
      [
        Alcotest.test_case "matching by src/tag" `Quick test_mailbox_matching;
        Alcotest.test_case "delivery times" `Quick test_mailbox_delivery_time;
        Alcotest.test_case "roll notices" `Quick test_mailbox_roll_notice;
        Alcotest.test_case "speculative discard" `Quick
          test_mailbox_discard_speculative;
        Alcotest.test_case "10k burst stays FIFO" `Quick
          test_mailbox_fifo_burst;
      ] );
    ( "net.cluster",
      [
        Alcotest.test_case "runs processes to completion" `Quick
          test_cluster_runs_to_exit;
        Alcotest.test_case "statuses is stable spawn order" `Quick
          test_statuses_spawn_order;
        Alcotest.test_case "message passing" `Quick
          test_cluster_message_passing;
        Alcotest.test_case "send to unknown rank" `Quick
          test_cluster_send_to_nowhere;
        Alcotest.test_case "programs typecheck against externs" `Quick
          test_cluster_typechecks_against_externs;
        Alcotest.test_case "migration between nodes" `Quick
          test_cluster_migrate;
        Alcotest.test_case "migration to dead node continues locally" `Quick
          test_cluster_migrate_to_dead_node;
        Alcotest.test_case "checkpoint and resurrection" `Quick
          test_cluster_checkpoint_and_resurrect;
        Alcotest.test_case "suspend protocol" `Quick test_cluster_suspend;
        Alcotest.test_case "MSG_ROLL on node failure" `Quick
          test_msg_roll_on_failure;
        Alcotest.test_case "failure wakes only related parked processes"
          `Quick test_fail_node_wakes_only_related_parked;
        Alcotest.test_case "migration to dead target keeps a single copy"
          `Quick test_migration_to_dead_target_single_copy;
        Alcotest.test_case "successful migration leaves one live copy"
          `Quick test_migration_leaves_single_live_copy;
        Alcotest.test_case "speculation join cascade" `Quick
          test_speculation_join_cascade;
        Alcotest.test_case "trace timeline and JSONL export" `Quick
          test_cluster_trace;
      ] );
  ]
