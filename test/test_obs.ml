(* Tests for the observability layer: the metrics registry (counters,
   gauges, bucketed histograms with quantile estimates) and the typed
   event trace (bounded ring, simulated-time timeline, JSONL export). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_and_gauges () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "reqs" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Obs.Metrics.count c);
  (* registration is idempotent: same name, same cell *)
  let c' = Obs.Metrics.counter m "reqs" in
  Obs.Metrics.incr c';
  check_int "same name is the same counter" 6 (Obs.Metrics.count c);
  let g = Obs.Metrics.gauge m "depth" in
  Obs.Metrics.set g 3.5;
  check "gauge holds the last value" true
    (Obs.Metrics.gauge_value g = 3.5);
  check_int "registry-level counter read" 6
    (Obs.Metrics.counter_value m "reqs");
  check_int "unregistered counter reads zero" 0
    (Obs.Metrics.counter_value m "nope");
  check "mem" true (Obs.Metrics.mem m "reqs");
  check "names in registration order" true
    (Obs.Metrics.names m = [ "reqs"; "depth" ]);
  (* a name cannot change kind *)
  (try
     ignore (Obs.Metrics.gauge m "reqs");
     Alcotest.fail "kind mismatch must raise"
   with Invalid_argument _ -> ())

let test_histogram_quantiles () =
  let m = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram
      ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0 |]
      m "lat"
  in
  check_int "empty count" 0 (Obs.Metrics.hist_count h);
  check "empty quantile" true (Obs.Metrics.quantile h 0.5 = 0.0);
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i /. 10.0) (* 0.1 .. 10.0 *)
  done;
  check_int "count" 100 (Obs.Metrics.hist_count h);
  check "sum" true (abs_float (Obs.Metrics.hist_sum h -. 505.0) < 1e-9);
  check "mean" true (abs_float (Obs.Metrics.hist_mean h -. 5.05) < 1e-9);
  check "min observed" true (Obs.Metrics.hist_min h = 0.1);
  check "max observed" true (Obs.Metrics.hist_max h = 10.0);
  (* 10 observations <= 1.0, 10 more <= 2.0, 20 more <= 4.0, 40 more
     <= 8.0, rest in (8, 16]: the median falls in the (4, 8] bucket *)
  check "p50 lands in the right bucket" true
    (Obs.Metrics.quantile h 0.5 = 8.0);
  (* quantile estimates are clamped to the observed extrema *)
  check "p99 clamped to max" true (Obs.Metrics.quantile h 0.99 <= 10.0);
  check "p0 clamped to min" true (Obs.Metrics.quantile h 0.0 >= 0.1);
  check "monotone in q" true
    (Obs.Metrics.quantile h 0.5 <= Obs.Metrics.quantile h 0.9
    && Obs.Metrics.quantile h 0.9 <= Obs.Metrics.quantile h 0.99)

let test_render () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "a.count");
  Obs.Metrics.set (Obs.Metrics.gauge m "b.level") 2.0;
  Obs.Metrics.observe (Obs.Metrics.histogram m "c.hist") 1.0;
  let lines = String.split_on_char '\n' (Obs.Metrics.render m) in
  let lines = List.filter (fun l -> l <> "") lines in
  check_int "one line per metric" 3 (List.length lines);
  (* registration order, names first on each line *)
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  check "render preserves registration order" true
    (match lines with
    | [ a; b; c ] ->
      starts_with "a.count" a && starts_with "b.level" b
      && starts_with "c.hist" c
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_bounds () =
  (try
     ignore (Obs.Trace.create ~capacity:0 ());
     Alcotest.fail "capacity 0 must raise"
   with Invalid_argument _ -> ());
  let tr = Obs.Trace.create ~capacity:4 () in
  check_int "capacity" 4 (Obs.Trace.capacity tr);
  for i = 1 to 10 do
    Obs.Trace.record tr ~time:(float_of_int i) Obs.Trace.Node_fail
  done;
  check_int "ring keeps the newest window" 4 (Obs.Trace.length tr);
  check_int "overwrites counted" 6 (Obs.Trace.dropped tr);
  (match Obs.Trace.events tr with
  | [ a; _; _; d ] ->
    check "oldest surviving event" true (a.Obs.Trace.time = 7.0);
    check "newest event" true (d.Obs.Trace.time = 10.0)
  | l -> Alcotest.failf "expected 4 events, got %d" (List.length l));
  Obs.Trace.clear tr;
  check_int "clear empties" 0 (Obs.Trace.length tr);
  check_int "clear resets dropped" 0 (Obs.Trace.dropped tr)

let test_timeline_sorting () =
  let tr = Obs.Trace.create () in
  (* two "nodes" recording interleaved but per-node monotone times *)
  Obs.Trace.record tr ~time:1.0 ~node:0 Obs.Trace.Cache_miss;
  Obs.Trace.record tr ~time:0.5 ~node:1 Obs.Trace.Cache_hit;
  Obs.Trace.record tr ~time:2.0 ~node:0 Obs.Trace.Cache_miss;
  Obs.Trace.record tr ~time:0.5 ~node:1 Obs.Trace.Cache_hit;
  let times =
    List.map (fun e -> e.Obs.Trace.time) (Obs.Trace.timeline tr)
  in
  check "timeline sorted" true (times = [ 0.5; 0.5; 1.0; 2.0 ]);
  (* the sort is stable: equal times keep recording order *)
  match Obs.Trace.timeline tr with
  | first :: second :: _ ->
    check "both ties are the node-1 hits" true
      (first.Obs.Trace.kind = Obs.Trace.Cache_hit
      && second.Obs.Trace.kind = Obs.Trace.Cache_hit)
  | _ -> Alcotest.fail "timeline too short"

let test_json_export () =
  let tr = Obs.Trace.create () in
  Obs.Trace.record tr ~time:0.25 ~node:1 ~pid:7 ~rank:3
    (Obs.Trace.Migrate_start { target = "node2"; bytes = 512 });
  Obs.Trace.record tr ~time:0.5 ~node:2
    (Obs.Trace.Spec_rollback { uids = [ 4; 3 ] });
  Obs.Trace.record tr ~time:0.75
    (Obs.Trace.Checkpoint { path = "a\"b"; bytes = 9 });
  (match Obs.Trace.events tr with
  | [ a; b; c ] ->
    check_str "labels are snake_case" "migrate_start"
      (Obs.Trace.kind_label a.Obs.Trace.kind);
    check_str "migrate_start json"
      "{\"t\":0.25,\"ev\":\"migrate_start\",\"node\":1,\"pid\":7,\
       \"rank\":3,\"target\":\"node2\",\"bytes\":512}"
      (Obs.Trace.event_to_json a);
    check_str "uid lists are arrays"
      "{\"t\":0.5,\"ev\":\"spec_rollback\",\"node\":2,\"uids\":[4,3]}"
      (Obs.Trace.event_to_json b);
    (* attribution fields are omitted when unknown; strings escaped *)
    check_str "escaping and omitted attribution"
      "{\"t\":0.75,\"ev\":\"checkpoint\",\"path\":\"a\\\"b\",\"bytes\":9}"
      (Obs.Trace.event_to_json c)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
  let jsonl = Obs.Trace.to_jsonl tr in
  check_int "one newline-terminated line per event" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)))

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick
          test_counters_and_gauges;
        Alcotest.test_case "histogram quantiles" `Quick
          test_histogram_quantiles;
        Alcotest.test_case "render" `Quick test_render;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
        Alcotest.test_case "timeline sorting" `Quick test_timeline_sorting;
        Alcotest.test_case "JSON export" `Quick test_json_export;
      ] );
  ]
