(* Mini-C typechecker.

   Produces a typed AST annotated with the two pieces of information the
   CPS lowering needs:

   - [tsplits]: whether evaluating the subtree performs a CONTINUATION
     SPLIT (a user-function call or one of speculate/commit/migrate).  At
     a split the rest of the computation moves into a fresh FIR function,
     so values computed earlier in the same expression would die with the
     old function's scope.
   - [ttemp]: for every value that must survive a later sibling's split,
     the name of a frame temporary (a hidden local) the lowering spills it
     into.  Temporaries are just extra locals; the lowering allocates one
     heap cell per local, so spilled values ride in the heap across
     splits (exactly like the paper's migrate_env discipline: live data in
     the heap, nothing in registers).

   The pass also collects the function's frame: parameters, declared
   locals (function-scoped, duplicates rejected), and generated
   temporaries. *)

open Ast

exception Error of string

let err pos fmt =
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "%d:%d: %s" pos.line pos.col s)))
    fmt

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

type builtin_kind =
  | Bext of string (* plain extern under this runtime name *)
  | Bspeculate
  | Bcommit
  | Babort
  | Bmigrate
  | Balloc of cty (* element type *)

type builtin = {
  b_args : cty list;
  b_ret : cty;
  b_kind : builtin_kind;
}

let builtins : (string * builtin) list =
  [
    "print_int", { b_args = [ Cint ]; b_ret = Cvoid; b_kind = Bext "print_int" };
    ( "print_float",
      { b_args = [ Cfloat ]; b_ret = Cvoid; b_kind = Bext "print_float" } );
    ( "print_str",
      { b_args = [ Cstr ]; b_ret = Cvoid; b_kind = Bext "print_string" } );
    "print_nl", { b_args = []; b_ret = Cvoid; b_kind = Bext "print_newline" };
    "rand", { b_args = [ Cint ]; b_ret = Cint; b_kind = Bext "rand" };
    "sqrtf", { b_args = [ Cfloat ]; b_ret = Cfloat; b_kind = Bext "float_sqrt" };
    "fabsf", { b_args = [ Cfloat ]; b_ret = Cfloat; b_kind = Bext "float_abs" };
    "spec_level", { b_args = []; b_ret = Cint; b_kind = Bext "spec_level" };
    "heap_used", { b_args = []; b_ret = Cint; b_kind = Bext "heap_used" };
    "pid", { b_args = []; b_ret = Cint; b_kind = Bext "pid" };
    "rank", { b_args = []; b_ret = Cint; b_kind = Bext "rank" };
    "sim_now_us", { b_args = []; b_ret = Cint; b_kind = Bext "sim_now_us" };
    "cycles", { b_args = []; b_ret = Cint; b_kind = Bext "cycles" };
    "gc_minor", { b_args = []; b_ret = Cvoid; b_kind = Bext "gc_minor" };
    "work_us", { b_args = [ Cint ]; b_ret = Cvoid; b_kind = Bext "work_us" };
    "gc_major", { b_args = []; b_ret = Cvoid; b_kind = Bext "gc_major" };
    ( "msg_send",
      { b_args = [ Cint; Cint; Cptr Cfloat; Cint ]; b_ret = Cint;
        b_kind = Bext "msg_send" } );
    ( "msg_try_recv",
      { b_args = [ Cint; Cint; Cptr Cfloat; Cint ]; b_ret = Cint;
        b_kind = Bext "msg_try_recv" } );
    ( "msg_send_int",
      { b_args = [ Cint; Cint; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "msg_send_int" } );
    ( "msg_try_recv_int",
      { b_args = [ Cint; Cint; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "msg_try_recv_int" } );
    (* location-transparent messaging: send by logical address, receive
       from any source, and the request-latency probe *)
    ( "svc_send",
      { b_args = [ Cint; Cint; Cptr Cfloat; Cint ]; b_ret = Cint;
        b_kind = Bext "svc_send" } );
    ( "svc_resolve",
      { b_args = [ Cint ]; b_ret = Cint; b_kind = Bext "svc_resolve" } );
    ( "msg_try_recv_any",
      { b_args = [ Cint; Cptr Cfloat; Cint ]; b_ret = Cint;
        b_kind = Bext "msg_try_recv_any" } );
    "lat_us", { b_args = [ Cint ]; b_ret = Cvoid; b_kind = Bext "lat_us" };
    ( "obj_read",
      { b_args = [ Cint; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "obj_read" } );
    ( "obj_write",
      { b_args = [ Cint; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "obj_write" } );
    ( "fs_write",
      { b_args = [ Cstr; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "fs_write" } );
    ( "fs_read",
      { b_args = [ Cstr; Cptr Cint; Cint ]; b_ret = Cint;
        b_kind = Bext "fs_read" } );
    ( "fs_size",
      { b_args = [ Cstr ]; b_ret = Cint; b_kind = Bext "fs_size" } );
    (* distributed speculation: open/decide an epoch-fenced transaction
       over the current level, and the participant's pre-commit barrier *)
    ( "dspec_open",
      { b_args = []; b_ret = Cint; b_kind = Bext "dspec_open" } );
    ( "dspec_commit",
      { b_args = [ Cint ]; b_ret = Cint; b_kind = Bext "dspec_commit" } );
    ( "spec_pending",
      { b_args = []; b_ret = Cint; b_kind = Bext "spec_pending" } );
    "speculate", { b_args = []; b_ret = Cint; b_kind = Bspeculate };
    "commit", { b_args = [ Cint ]; b_ret = Cvoid; b_kind = Bcommit };
    "abort", { b_args = [ Cint ]; b_ret = Cvoid; b_kind = Babort };
    "migrate", { b_args = [ Cstr ]; b_ret = Cvoid; b_kind = Bmigrate };
    "alloc_int", { b_args = [ Cint ]; b_ret = Cptr Cint; b_kind = Balloc Cint };
    ( "alloc_float",
      { b_args = [ Cint ]; b_ret = Cptr Cfloat; b_kind = Balloc Cfloat } );
  ]

(* ------------------------------------------------------------------ *)
(* Typed AST                                                           *)
(* ------------------------------------------------------------------ *)

type texpr = {
  td : tdesc;
  tty : cty;
  mutable ttemp : string option;
  tsplits : bool;
  tpos : pos;
}

and tdesc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstr_lit of string
  | Tvar of string
  | Tindex of texpr * texpr
  | Tunop of unop * texpr
  | Tbinop of binop * texpr * texpr
  | Tcall_user of string * texpr list
  | Tcall_builtin of builtin_kind * texpr list
  | Tcast of cty * texpr

type tstmt =
  | TSassign of string * texpr
  | TSindex_assign of texpr * texpr * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor_loop of tstmt option * texpr option * tstmt option * tstmt list
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSbreak
  | TScontinue

type tfun = {
  tf_name : string;
  tf_ret : cty;
  tf_params : (cty * string) list;
  tf_locals : (cty * string) list; (* declared locals + temporaries *)
  tf_body : tstmt list;
}

type csig = { cs_params : cty list; cs_ret : cty }

type tprogram = {
  tp_funs : tfun list;
  tp_sigs : (string * csig) list;
}

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

type fenv = {
  sigs : (string, csig) Hashtbl.t;
  vars : (string, cty) Hashtbl.t; (* declared so far (lexically) *)
  all_names : (string, unit) Hashtbl.t; (* for duplicate detection *)
  mutable locals : (cty * string) list; (* reverse order *)
  mutable temp_counter : int;
  ret : cty;
}

let new_temp fenv ty =
  let name = Printf.sprintf "$t%d" fenv.temp_counter in
  fenv.temp_counter <- fenv.temp_counter + 1;
  fenv.locals <- (ty, name) :: fenv.locals;
  name

(* spill [e] into a temporary if a later sibling splits *)
let spill fenv e later_splits =
  if later_splits && e.ttemp = None then
    match e.td with
    | Tint_lit _ | Tfloat_lit _ -> () (* constants rebuild for free *)
    | _ -> e.ttemp <- Some (new_temp fenv e.tty)

let rec check_expr fenv (e : expr) : texpr =
  let mk td tty tsplits = { td; tty; ttemp = None; tsplits; tpos = e.epos } in
  match e.e with
  | Eint n -> mk (Tint_lit n) Cint false
  | Efloat f -> mk (Tfloat_lit f) Cfloat false
  | Estr s -> mk (Tstr_lit s) Cstr false
  | Evar x -> (
    match Hashtbl.find_opt fenv.vars x with
    | Some ty -> mk (Tvar x) ty false
    | None -> err e.epos "undeclared variable %s" x)
  | Eindex (base, idx) -> (
    let tb = check_expr fenv base in
    let ti = check_expr fenv idx in
    if not (cty_equal ti.tty Cint) then
      err idx.epos "index has type %s, expected int" (cty_to_string ti.tty);
    spill fenv tb ti.tsplits;
    match tb.tty with
    | Cptr elt -> mk (Tindex (tb, ti)) elt (tb.tsplits || ti.tsplits)
    | Cstr -> mk (Tindex (tb, ti)) Cint (tb.tsplits || ti.tsplits)
    | t -> err base.epos "indexing a non-pointer of type %s" (cty_to_string t))
  | Eunop (op, a) -> (
    let ta = check_expr fenv a in
    match op, ta.tty with
    | Uneg, Cint -> mk (Tunop (op, ta)) Cint ta.tsplits
    | Uneg, Cfloat -> mk (Tunop (op, ta)) Cfloat ta.tsplits
    | Unot, Cint -> mk (Tunop (op, ta)) Cint ta.tsplits
    | _, t ->
      err e.epos "unary operator applied to %s" (cty_to_string t))
  | Ebinop (op, a, b) -> (
    let ta = check_expr fenv a in
    let tb = check_expr fenv b in
    spill fenv ta tb.tsplits;
    let splits = ta.tsplits || tb.tsplits in
    let arith = [ Badd; Bsub; Bmul; Bdiv ] in
    let int_only = [ Brem; Band; Bor; Bxor; Bshl; Bshr; Bland; Blor ] in
    let cmp = [ Beq; Bne; Blt; Ble; Bgt; Bge ] in
    match ta.tty, tb.tty with
    | Cint, Cint when List.mem op arith || List.mem op int_only ->
      mk (Tbinop (op, ta, tb)) Cint splits
    | Cint, Cint when List.mem op cmp -> mk (Tbinop (op, ta, tb)) Cint splits
    | Cfloat, Cfloat when List.mem op arith ->
      mk (Tbinop (op, ta, tb)) Cfloat splits
    | Cfloat, Cfloat when List.mem op cmp ->
      mk (Tbinop (op, ta, tb)) Cint splits
    | Cptr _, Cint when op = Badd || op = Bsub ->
      mk (Tbinop (op, ta, tb)) ta.tty splits
    | Cstr, Cint when op = Badd -> mk (Tbinop (op, ta, tb)) Cstr splits
    | (Cptr _ | Cstr), (Cptr _ | Cstr)
      when (op = Beq || op = Bne) && cty_equal ta.tty tb.tty ->
      mk (Tbinop (op, ta, tb)) Cint splits
    | t1, t2 ->
      err e.epos "operator applied to %s and %s" (cty_to_string t1)
        (cty_to_string t2))
  | Ecast (ty, a) -> (
    let ta = check_expr fenv a in
    match ty, ta.tty with
    | Cint, Cfloat | Cfloat, Cint -> mk (Tcast (ty, ta)) ty ta.tsplits
    | t1, t2 when cty_equal t1 t2 -> ta
    | t1, t2 ->
      err e.epos "unsupported cast from %s to %s" (cty_to_string t2)
        (cty_to_string t1))
  | Ecall (name, args) -> (
    let targs = check_expr_list fenv args in
    match List.assoc_opt name builtins with
    | Some b ->
      check_args e.epos name b.b_args targs;
      let splits =
        List.exists (fun a -> a.tsplits) targs
        ||
        match b.b_kind with
        | Bspeculate | Bcommit | Babort | Bmigrate -> true
        | Bext _ | Balloc _ -> false
      in
      mk (Tcall_builtin (b.b_kind, targs)) b.b_ret splits
    | None -> (
      match Hashtbl.find_opt fenv.sigs name with
      | Some cs ->
        check_args e.epos name cs.cs_params targs;
        mk (Tcall_user (name, targs)) cs.cs_ret true
      | None -> err e.epos "call to undefined function %s" name))

(* arguments evaluate left to right; any argument followed by a splitting
   sibling is spilled *)
and check_expr_list fenv args =
  let targs = List.map (check_expr fenv) args in
  let rec mark = function
    | [] -> ()
    | a :: rest ->
      let later = List.exists (fun b -> b.tsplits) rest in
      spill fenv a later;
      mark rest
  in
  mark targs;
  targs

and check_args pos name want got =
  if List.length want <> List.length got then
    err pos "%s expects %d arguments, got %d" name (List.length want)
      (List.length got);
  List.iteri
    (fun i (w, g) ->
      if not (cty_equal w g.tty) then
        err g.tpos "%s: argument %d has type %s, expected %s" name (i + 1)
          (cty_to_string g.tty) (cty_to_string w))
    (List.combine want got)

let check_cond fenv (e : expr) =
  let te = check_expr fenv e in
  if not (cty_equal te.tty Cint) then
    err e.epos "condition has type %s, expected int" (cty_to_string te.tty);
  te

let rec check_stmt fenv ~in_loop (s : stmt) : tstmt =
  match s.s with
  | Sdecl (ty, name, init) ->
    if cty_equal ty Cvoid then err s.spos "void variable %s" name;
    if Hashtbl.mem fenv.all_names name then
      err s.spos "duplicate declaration of %s (mini-C locals are \
                  function-scoped)" name;
    Hashtbl.replace fenv.all_names name ();
    Hashtbl.replace fenv.vars name ty;
    fenv.locals <- (ty, name) :: fenv.locals;
    (match init with
    | None ->
      (* no initializer: the cell keeps its default *)
      TSexpr
        { td = Tint_lit 0; tty = Cint; ttemp = None; tsplits = false;
          tpos = s.spos }
    | Some e ->
      let te = check_expr fenv e in
      if not (cty_equal te.tty ty) then
        err e.epos "initializer for %s has type %s, expected %s" name
          (cty_to_string te.tty) (cty_to_string ty);
      TSassign (name, te))
  | Sassign (x, e) -> (
    match Hashtbl.find_opt fenv.vars x with
    | None -> err s.spos "assignment to undeclared variable %s" x
    | Some ty ->
      let te = check_expr fenv e in
      if not (cty_equal te.tty ty) then
        err e.epos "assigning %s to %s : %s" (cty_to_string te.tty) x
          (cty_to_string ty);
      TSassign (x, te))
  | Sindex_assign (base, idx, v) -> (
    let tb = check_expr fenv base in
    let ti = check_expr fenv idx in
    let tv = check_expr fenv v in
    if not (cty_equal ti.tty Cint) then
      err idx.epos "index has type %s, expected int" (cty_to_string ti.tty);
    spill fenv tb (ti.tsplits || tv.tsplits);
    spill fenv ti tv.tsplits;
    match tb.tty with
    | Cptr elt when cty_equal elt tv.tty -> TSindex_assign (tb, ti, tv)
    | Cstr when cty_equal tv.tty Cint -> TSindex_assign (tb, ti, tv)
    | t ->
      err v.epos "storing %s into %s[]" (cty_to_string tv.tty)
        (cty_to_string t))
  | Sif (c, thn, els) ->
    let tc = check_cond fenv c in
    TSif (tc, check_stmts fenv ~in_loop thn, check_stmts fenv ~in_loop els)
  | Swhile (c, body) ->
    let tc = check_cond fenv c in
    TSwhile (tc, check_stmts fenv ~in_loop:true body)
  | Sfor (init, cond, inc, body) ->
    let tinit = Option.map (check_stmt fenv ~in_loop) init in
    let tcond = Option.map (check_cond fenv) cond in
    let tinc = Option.map (check_stmt fenv ~in_loop:true) inc in
    TSfor_loop (tinit, tcond, tinc, check_stmts fenv ~in_loop:true body)
  | Sreturn None ->
    if not (cty_equal fenv.ret Cvoid) then
      err s.spos "return without a value in a %s function"
        (cty_to_string fenv.ret);
    TSreturn None
  | Sreturn (Some e) ->
    let te = check_expr fenv e in
    if cty_equal fenv.ret Cvoid then err e.epos "returning a value from void";
    if not (cty_equal te.tty fenv.ret) then
      err e.epos "returning %s from a %s function" (cty_to_string te.tty)
        (cty_to_string fenv.ret);
    TSreturn (Some te)
  | Sexpr e -> TSexpr (check_expr fenv e)
  | Sbreak ->
    if not in_loop then err s.spos "break outside a loop";
    TSbreak
  | Scontinue ->
    if not in_loop then err s.spos "continue outside a loop";
    TScontinue

and check_stmts fenv ~in_loop stmts = List.map (check_stmt fenv ~in_loop) stmts

let check_fun sigs (fd : fundecl) : tfun =
  let fenv =
    {
      sigs;
      vars = Hashtbl.create 16;
      all_names = Hashtbl.create 16;
      locals = [];
      temp_counter = 0;
      ret = fd.fd_ret;
    }
  in
  List.iter
    (fun (ty, name) ->
      if Hashtbl.mem fenv.all_names name then
        err fd.fd_pos "duplicate parameter %s" name;
      if cty_equal ty Cvoid then err fd.fd_pos "void parameter %s" name;
      Hashtbl.replace fenv.all_names name ();
      Hashtbl.replace fenv.vars name ty)
    fd.fd_params;
  let body = check_stmts fenv ~in_loop:false fd.fd_body in
  {
    tf_name = fd.fd_name;
    tf_ret = fd.fd_ret;
    tf_params = fd.fd_params;
    tf_locals = List.rev fenv.locals;
    tf_body = body;
  }

let check_program (p : program) : tprogram =
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun fd ->
      if Hashtbl.mem sigs fd.fd_name then
        err fd.fd_pos "duplicate function %s" fd.fd_name;
      if List.mem_assoc fd.fd_name builtins then
        err fd.fd_pos "%s shadows a builtin" fd.fd_name;
      Hashtbl.replace sigs fd.fd_name
        { cs_params = List.map fst fd.fd_params; cs_ret = fd.fd_ret })
    p;
  (match Hashtbl.find_opt sigs "main" with
  | Some { cs_params = []; cs_ret = Cint } -> ()
  | Some _ -> raise (Error "main must be declared as: int main()")
  | None -> raise (Error "no main function"));
  let funs = List.map (check_fun sigs) p in
  {
    tp_funs = funs;
    tp_sigs =
      Hashtbl.fold (fun name cs acc -> (name, cs) :: acc) sigs [];
  }
