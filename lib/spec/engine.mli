(** The speculation engine (paper, Section 4.3).

    A process may be inside N nested speculation levels, numbered 1
    (oldest) to N (newest); level 0 means "not speculating".  Each level
    keeps a checkpoint record: the blocks modified since the level was
    entered, saved by copy-on-write through the heap's write hook.

    - {!enter} pushes a level and snapshots the continuation (entry
      function + arguments — the complete live state, since the FIR is
      CPS).
    - {!commit} folds a level's record into its parent; commits may
      happen out of order (any level 1..N); committing level 1 makes the
      changes durable.
    - {!rollback} restores every record from the newest level down to the
      target, re-enters the target level with the same continuation (the
      paper's retry semantics), and returns the continuation for the
      caller to resume with a fresh rollback code.

    Entry is O(1); commit and rollback are O(blocks modified) — the
    source of the mutation-percentile curves in the paper's Section 5. *)

open Runtime

exception Invalid_level of string

type cont = { entry : string; args : Value.t list }
(** A level's continuation: the speculation entry function and the
    arguments it was entered with. *)

type level

type t

val create : Heap.t -> t
(** Create an engine over [heap], installing its copy-on-write hook. *)

val metrics : t -> Obs.Metrics.t
(** The live registry: counters [spec.entered], [spec.committed],
    [spec.rolled_back], [spec.blocks_saved], [spec.blocks_discarded]. *)

val depth : t -> int

val level_saved_count : t -> int -> int
(** Number of blocks saved in the given level's record (1..N).
    @raise Invalid_level if out of range. *)

(** {2 Distributed-speculation introspection}

    Level numbers shift when levels commit; unique ids are stable.  A
    message sent from inside a speculation is tagged with the sending
    level's unique id, and a later cascade asks whether that level is
    still open. *)

val unique_ids : t -> int list
(** Unique ids of all open levels, newest first. *)

val current_unique : t -> int option
val level_of_unique : t -> int -> int option

(** {2 The three operations} *)

val enter : t -> cont:cont -> int
(** Enter a new level; returns the new depth (= the level's number). *)

val commit : t -> int -> unit
(** [commit t l] folds level [l] into its parent.  The parent's older
    original wins when both saved the same block.
    @raise Invalid_level if [l] is not in 1..N. *)

val rollback : t -> int -> cont
(** [rollback t l] restores the heap to its state at entry to level [l],
    discards levels [l..N], re-enters level [l], and returns its
    continuation.  The caller resumes it with a fresh rollback code
    prepended to the arguments.
    @raise Invalid_level if [l] is not in 1..N. *)

val rollback_abandon : t -> int -> cont
(** Like {!rollback} but without the retry re-entry. *)

val set_hooks :
  ?on_enter:(uid:int -> depth:int -> unit) ->
  t -> on_rollback:(int list -> unit) ->
  on_commit:(uid:int -> parent:int option -> unit) -> unit
(** Install host-environment observers: [on_enter] fires when a level is
    pushed (with its unique id and the resulting depth); [on_rollback]
    receives the unique ids of every level just undone (newest first);
    [on_commit] receives the committed level's unique id and its parent's
    ([None] when folding into level 0). *)

(** {2 GC integration} *)

val records : t -> (int * int) list
(** All (index, original address) pairs across all levels — the
    collector's [pinned] argument. *)

val rewrite_after_gc : t -> Gc.result -> unit
(** Rewrite recorded original addresses through a collection's forwarding
    map. *)

(** {2 Migration support} *)

type snapshot_level = {
  s_entry : string;
  s_args : Value.t list;
  s_saved : (int * int) list;
}

val snapshot : t -> snapshot_level list
(** Levels oldest-first, for the wire codec. *)

val restore : t -> snapshot_level list -> unit
(** Re-install levels into a fresh engine (over a restored heap).
    @raise Invalid_level if the engine already has open levels. *)
