(* The speculation engine (paper, Section 4.3).

   A process may be inside N nested speculation levels, numbered 1 (oldest)
   to N (newest); level 0 means "not speculating".  Each level keeps a
   checkpoint record: the set of heap blocks modified since the level was
   entered, saved by copy-on-write.  The first write to a block inside a
   level clones the block — the pointer table is retargeted to the clone
   and the ORIGINAL address is recorded, so the pre-speculation data is
   preserved in place (Section 4.1's "special blocks whose pointer table
   entry refers to a different block").

   - [enter] pushes a new level and snapshots the continuation (the entry
     function and its arguments; the FIR is CPS, so that is the complete
     live state apart from the heap).
   - [commit l] folds level l's record into its parent: an original is
     discarded if the parent already saved that block (the parent's older
     copy wins), otherwise it moves into the parent's record.  Committing
     level 1 discards the records for good.  Commits may happen out of
     order (any l in 1..N).
   - [rollback l] walks the records newest-to-oldest down to level l,
     retargeting each saved index back to its original, which restores the
     exact heap state at entry to level l; levels l..N are discarded and
     level l is immediately re-entered with the same continuation (the
     paper's retry semantics) and a caller-chosen rollback code c.

   Entry is O(1) — the paper measures it independent of heap mutation —
   while commit and rollback are O(number of blocks modified), which is
   what produces the mutation-percentile curves of Section 5. *)

open Runtime

exception Invalid_level of string

type cont = { entry : string; args : Value.t list }

type level = {
  unique_id : int;
  cont : cont;
  mutable saved : (int * int) list; (* (pointer-table index, original addr) *)
  saved_set : (int, unit) Hashtbl.t;
}

type t = {
  heap : Heap.t;
  mutable levels : level list; (* newest first *)
  mutable next_id : int;
  (* counters live in a metrics registry *)
  metrics : Obs.Metrics.t;
  c_entered : Obs.Metrics.counter;
  c_committed : Obs.Metrics.counter;
  c_rolled_back : Obs.Metrics.counter;
  c_blocks_saved : Obs.Metrics.counter;
  c_blocks_discarded : Obs.Metrics.counter;
  (* Distributed-speculation hooks (paper, Section 1: dependent processes
     "join that process's speculation and roll back together").  A host
     environment — the simulated cluster — installs these to observe level
     resolution: [on_enter] fires when a level is pushed; [on_rollback]
     receives the unique ids of every level that was just undone;
     [on_commit] receives the committed level's unique id and its parent's
     (None when folding into level 0, i.e. the changes became durable). *)
  mutable on_enter : (uid:int -> depth:int -> unit) option;
  mutable on_rollback : (int list -> unit) option;
  mutable on_commit : (uid:int -> parent:int option -> unit) option;
}

let create heap =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_entered = Obs.Metrics.counter metrics "spec.entered" in
  let c_committed = Obs.Metrics.counter metrics "spec.committed" in
  let c_rolled_back = Obs.Metrics.counter metrics "spec.rolled_back" in
  let c_blocks_saved = Obs.Metrics.counter metrics "spec.blocks_saved" in
  let c_blocks_discarded =
    Obs.Metrics.counter metrics "spec.blocks_discarded"
  in
  let t =
    {
      heap;
      levels = [];
      next_id = 1;
      metrics;
      c_entered;
      c_committed;
      c_rolled_back;
      c_blocks_saved;
      c_blocks_discarded;
      on_enter = None;
      on_rollback = None;
      on_commit = None;
    }
  in
  let hook idx =
    match t.levels with
    | [] -> ()
    | top :: _ ->
      if not (Hashtbl.mem top.saved_set idx) then begin
        let original = Heap.clone_for_cow heap idx in
        top.saved <- (idx, original) :: top.saved;
        Hashtbl.add top.saved_set idx ();
        Obs.Metrics.incr t.c_blocks_saved
      end
  in
  Heap.set_before_write heap (Some hook);
  t

let metrics t = t.metrics
let depth t = List.length t.levels

(* Unique level identities, newest first.  Level numbers (1..N) shift when
   levels commit; unique ids are stable, which is what a DISTRIBUTED
   speculation needs: a message sent from inside a speculation is tagged
   with the sending level's unique id, and a later cascade can ask "is
   that level still uncommitted, and what is its current number?". *)
let unique_ids t = List.map (fun lvl -> lvl.unique_id) t.levels

let current_unique t =
  match t.levels with [] -> None | top :: _ -> Some top.unique_id

(* Current 1..N level number of a unique id, if the level is still open. *)
let level_of_unique t uid =
  let n = depth t in
  let rec find k = function
    | [] -> None
    | lvl :: rest ->
      if lvl.unique_id = uid then Some (n - k) else find (k + 1) rest
  in
  find 0 t.levels

(* Number of blocks saved at a given level (1..N); for tests and benches. *)
let level_saved_count t l =
  let n = depth t in
  if l < 1 || l > n then raise (Invalid_level (Printf.sprintf "level %d" l));
  let lvl = List.nth t.levels (n - l) in
  List.length lvl.saved

(* ------------------------------------------------------------------ *)
(* speculate                                                           *)
(* ------------------------------------------------------------------ *)

let enter t ~cont =
  let lvl =
    {
      unique_id = t.next_id;
      cont;
      saved = [];
      saved_set = Hashtbl.create 16;
    }
  in
  t.next_id <- t.next_id + 1;
  t.levels <- lvl :: t.levels;
  Obs.Metrics.incr t.c_entered;
  let d = depth t in
  (match t.on_enter with
  | Some hook -> hook ~uid:lvl.unique_id ~depth:d
  | None -> ());
  d

(* ------------------------------------------------------------------ *)
(* commit                                                              *)
(* ------------------------------------------------------------------ *)

let check_level t l =
  let n = depth t in
  if l < 1 || l > n then
    raise
      (Invalid_level
         (Printf.sprintf "level %d out of range [1,%d]" l n))

(* Fold level [l] into its parent.  The list is newest-first, so level l
   sits at position (N - l); its parent (level l-1) at position (N - l + 1).
   Folding into level 0 (committing the oldest level) simply discards the
   record: the originals become garbage for the next collection. *)
let commit t l =
  check_level t l;
  let n = depth t in
  let pos = n - l in
  let rec split k = function
    | [] -> raise (Invalid_level "commit: internal position error")
    | x :: rest ->
      if k = 0 then [], x, rest else
        let before, lvl, after = split (k - 1) rest in
        x :: before, lvl, after
  in
  let newer, lvl, older = split pos t.levels in
  (match older with
  | parent :: _ ->
    List.iter
      (fun (idx, original) ->
        if Hashtbl.mem parent.saved_set idx then
          Obs.Metrics.incr t.c_blocks_discarded
        else begin
          parent.saved <- (idx, original) :: parent.saved;
          Hashtbl.add parent.saved_set idx ()
        end)
      lvl.saved
  | [] ->
    (* committing to level 0: all originals become unreachable *)
    Obs.Metrics.incr ~by:(List.length lvl.saved) t.c_blocks_discarded);
  t.levels <- newer @ older;
  Obs.Metrics.incr t.c_committed;
  match t.on_commit with
  | Some hook ->
    let parent =
      match older with parent :: _ -> Some parent.unique_id | [] -> None
    in
    hook ~uid:lvl.unique_id ~parent
  | None -> ()

(* ------------------------------------------------------------------ *)
(* rollback                                                            *)
(* ------------------------------------------------------------------ *)

(* Restore all records from the newest level down to (and including) level
   [l], then re-enter level [l] with its saved continuation.  Restoring in
   newest-to-oldest order means the final pointer-table state for every
   index is the OLDEST saved original at level >= l, i.e. exactly the heap
   state when level l was entered.  Returns the continuation to resume;
   the caller prepends the new rollback code to its arguments. *)
let rollback t l =
  check_level t l;
  let n = depth t in
  let to_undo_count = n - l + 1 in
  let rec take k = function
    | rest when k = 0 -> [], rest
    | [] -> raise (Invalid_level "rollback: internal position error")
    | x :: rest ->
      let taken, kept = take (k - 1) rest in
      x :: taken, kept
  in
  let undone, kept = take to_undo_count t.levels in
  List.iter
    (fun lvl ->
      List.iter
        (fun (idx, original) -> Heap.retarget t.heap idx original)
        lvl.saved)
    undone;
  let entered_level =
    match List.rev undone with
    | oldest :: _ -> oldest
    | [] -> raise (Invalid_level "rollback: empty undo set")
  in
  t.levels <- kept;
  Obs.Metrics.incr t.c_rolled_back;
  (* retry semantics: level l is immediately re-entered with the same
     continuation *)
  let (_ : int) = enter t ~cont:entered_level.cont in
  (match t.on_rollback with
  | Some hook -> hook (List.map (fun lvl -> lvl.unique_id) undone)
  | None -> ());
  entered_level.cont

(* Roll back and abandon (no retry); used when a process leaves
   speculation entirely, e.g. on abnormal termination. *)
let rollback_abandon t l =
  let cont = rollback t l in
  (match t.levels with
  | _ :: rest -> t.levels <- rest
  | [] -> ());
  cont

let set_hooks ?on_enter t ~on_rollback ~on_commit =
  t.on_enter <- on_enter;
  t.on_rollback <- Some on_rollback;
  t.on_commit <- Some on_commit

(* ------------------------------------------------------------------ *)
(* GC integration                                                      *)
(* ------------------------------------------------------------------ *)

(* All (index, original address) pairs across all levels; the collector
   pins these. *)
let records t =
  List.concat_map (fun lvl -> lvl.saved) t.levels

(* After a collection, rewrite recorded original addresses through the
   forwarding map. *)
let rewrite_after_gc t result =
  List.iter
    (fun lvl ->
      lvl.saved <-
        List.map (fun (idx, addr) -> idx, Gc.forward_addr result addr)
          lvl.saved)
    t.levels

(* ------------------------------------------------------------------ *)
(* Wire-format support                                                 *)
(* ------------------------------------------------------------------ *)

(* A migrating process carries its speculation state (a checkpoint written
   mid-speculation must restore it).  The snapshot is by index/address,
   like the records themselves. *)
type snapshot_level = {
  s_entry : string;
  s_args : Value.t list;
  s_saved : (int * int) list;
}

let snapshot t =
  List.rev_map
    (fun lvl ->
      {
        s_entry = lvl.cont.entry;
        s_args = lvl.cont.args;
        s_saved = List.rev lvl.saved;
      })
    t.levels
(* oldest first in the snapshot *)

let restore t snap =
  if t.levels <> [] then
    raise (Invalid_level "restore into a speculating engine");
  List.iter
    (fun s ->
      let (_ : int) =
        enter t ~cont:{ entry = s.s_entry; args = s.s_args }
      in
      match t.levels with
      | top :: _ ->
        top.saved <- List.rev s.s_saved;
        List.iter (fun (idx, _) -> Hashtbl.replace top.saved_set idx ())
          s.s_saved
      | [] -> assert false)
    snap
