(** MCC — the public facade of the Mojave Compiler reproduction.

    Compile C or ML source to verified FIR, run it on either execution
    engine, and capture/resume whole-process images.  The paper's
    language primitives — [speculate()], [commit(id)], [abort(id)],
    [migrate(target)] — are part of the mini-C surface and of the FIR
    itself; the compiler generates all state-management code.

    For distributed execution (placement, message passing, failure
    injection, resurrection) see {!Net.Cluster}; for the canonical
    Figure 2 application see {!Gridapp}. *)

val version : string

type source =
  | C of string
  | Ml of string
  | Pas of string
  | Fir_program of Fir.Ast.program

type compile_error = string

val compile :
  ?optimize:bool -> source -> (Fir.Ast.program, compile_error) result

val compile_c :
  ?optimize:bool -> string -> (Fir.Ast.program, compile_error) result

val compile_ml :
  ?optimize:bool -> string -> (Fir.Ast.program, compile_error) result

val compile_pascal :
  ?optimize:bool -> string -> (Fir.Ast.program, compile_error) result

val compile_exn : ?optimize:bool -> source -> Fir.Ast.program

(** {2 Local execution} *)

type backend =
  | Reference  (** the FIR interpreter *)
  | Native  (** compile to MASM and emulate *)

type outcome = {
  o_status : Vm.Process.status;
  o_output : string;
  o_steps : int;
  o_cycles : int;
  o_process : Vm.Process.t;
}

val run :
  ?backend:backend -> ?arch:Vm.Arch.t -> ?seed:int ->
  ?extern:Vm.Process.handler -> ?max_steps:int ->
  Fir.Ast.program -> outcome

val exit_code : outcome -> (int, string) result

(** {2 Whole-process images} *)

val image_bytes : Vm.Process.t -> string
(** Pack a process stopped at a migration point into image bytes
    (a resumable, self-describing checkpoint). *)

val resume :
  ?arch:Vm.Arch.t -> ?trusted:bool -> ?seed:int -> string ->
  ( Vm.Process.t * Vm.Masm.image * Vm.Compile.image
    * Migrate.Pack.unpack_costs,
    string )
  result

val resume_and_run :
  ?arch:Vm.Arch.t -> ?trusted:bool -> ?seed:int ->
  ?extern:Vm.Process.handler -> string -> (outcome, string) result
