(** The canonical grid computation (paper, Figure 2).

    A 2-D heat-diffusion stencil, row-decomposed across ranks, generated
    as mini-C source and compiled by the MCC pipeline: border exchange
    over the cluster's message passing, a speculation per checkpoint
    interval, neighbour-barrier + [commit] + [migrate("checkpoint://...")]
    at each boundary, [abort] on MSG_ROLL.

    Every distributed run — fault-free or with injected node failures and
    resurrection — is verifiable bit-exactly against {!golden_checksums},
    a sequential OCaml model with identical floating-point evaluation
    order. *)

type config = {
  ranks : int;
  rows_per_rank : int;
  cols : int;
  timesteps : int;
  interval : int;  (** checkpoint every this many steps; 0 = never *)
  work_us_per_step : int;
      (** simulated µs of production-scale work each step stands for
          (0 = off); the verification kernel still runs bit-exactly *)
}

val default_config : config

val initial_value : int -> int -> float
(** Initial value of global cell (gi, j). *)

val checkpoint_path : int -> string
(** Storage path of a rank's checkpoint file. *)

val source : config -> int -> string
(** The generated mini-C source for one rank. *)

val compile_rank : ?optimize:bool -> config -> int -> Fir.Ast.program
(** @raise Invalid_argument if the generated source fails to compile
    (a library bug). *)

val golden_checksums : config -> int array
(** Per-rank checksums from the sequential reference run. *)

(** {2 Deployment and recovery} *)

type deployment = {
  d_config : config;
  d_cluster : Net.Cluster.t;
  mutable d_pids : int array;  (** rank -> current pid *)
}

val deploy :
  ?engine:[ `Interp | `Masm ] -> ?spare:bool ->
  Net.Cluster.t -> config -> deployment
(** Place rank [r] on node [r mod usable]; [spare] reserves the last node
    for resurrection. *)

val rank_status : deployment -> int -> Vm.Process.status
val all_exited : deployment -> bool
val run : ?max_rounds:int -> deployment -> int

val run_resilient : ?max_rounds:int -> deployment -> int
(** Like {!run}, but self-healing: ranks that die with their node (e.g.
    a fault-plan crash) and have a checkpoint on storage are resurrected
    on the least-loaded live node and the run continues.  Returns total
    rounds executed.  Stops — possibly with ranks unfinished — when a
    dead rank has no checkpoint or no live node remains.

    When the cluster was configured with a heartbeat failure detector
    ({!Net.Cluster.Config.t.detector}), recovery decisions come ONLY
    from heartbeat suspicion, never from ground-truth crash state: a
    rank is resurrected (with a bumped incarnation epoch) when its
    node is unanimously silent past the suspicion timeout.  A stalled
    node can be falsely suspected; epoch fencing guarantees exactly one
    incarnation of the rank completes. *)

val checksums : deployment -> int option array

val recover : deployment -> rank:int -> node_id:int -> (int, string) result
(** The resurrection daemon: bring a rank back from its last checkpoint. *)

val ranks_on_node : deployment -> int -> int list

val fail_and_recover :
  ?rounds_before_failure:int -> ?after_time:float ->
  deployment -> victim_node:int -> spare_node:int -> int list
(** Wait until every rank has a checkpoint (and, optionally, until the
    simulated clock passes [after_time]), kill [victim_node], resurrect
    its ranks on [spare_node].  Returns the victim ranks ([] if the
    computation finished first). *)

(** The request-serving workload: closed-loop RPC clients addressing K
    registered services by logical address ([svc_send]), while the
    services are re-homed mid-traffic through {!Net.Cluster.move} —
    every move gives the successor a fresh rank, so the registry's
    forward / notify / rebind protocol is what keeps requests flowing.
    Duplicated requests are deduplicated service-side (per-client
    last-seq), duplicated replies client-side; exit codes carry the
    exactly-once evidence (clients: ordering violations, services:
    unique requests served).  With [skew] on, the request stream
    concentrates on a phase-shifting hot service (the T2 workload the
    placement policy engine chases). *)
module Serve : sig
  type config = {
    clients : int;
    services : int;
    requests_per_client : int;
    work_us : int;  (** simulated service time per request *)
    skew : bool;
        (** skewed, phase-shifting stream: 4 of every 5 requests target
            the current phase's hot service; the rest stay round-robin *)
    speculative : bool;
        (** speculative exactly-once serving (F5): the service's dedup
            write and reply happen inside a speculation — the reply
            leaves before the dedup state is durable — and the commit is
            coordinated through the cluster's epoch-fenced distributed
            transaction protocol ([dspec_open]/[dspec_commit]).  The
            client joins the region by consuming the stamped reply and
            spins on [spec_pending()] until the distributed commit
            lands; an abort rolls both sides back and replays. *)
  }

  val default_config : config

  val request_tag : int
  val reply_tag_base : int
  (** Replies to client [r] arrive on tag [reply_tag_base + r]. *)

  val target_service : config -> client:int -> int -> int
  (** Which service (0-based) request [seq] of client [client] targets,
      mirroring the generated client code exactly.  Without [skew] the
      schedule is identical for every client; with it the hot 4/5 is
      common but the background fifth is offset by the client rank, so
      the clients do not march in lockstep on a single service. *)

  val expected_served : config -> int -> int
  (** Unique requests service [k] (laddr [k+1]) owes — the schedule is
      deterministic, so the split is exact. *)

  val client_source : config -> int -> string
  val service_source : config -> int -> string

  type deployment = {
    sv_config : config;
    sv_cluster : Net.Cluster.t;
    sv_client_pids : int array;  (** client rank -> pid (never moves) *)
    mutable sv_service_pids : int array;  (** service k -> CURRENT pid *)
    sv_laddrs : int array;  (** service k -> logical address *)
  }

  val deploy :
    ?engine:[ `Interp | `Masm ] ->
    ?placement:[ `Spread | `Pack of int ] ->
    Net.Cluster.t -> config -> deployment
  (** Clients on ranks 0..C-1, services on C..C+K-1; every service
      registered in the process registry.  [`Spread] (default) places
      both round-robin over the nodes; [`Pack p] crams the services
      onto the first [p] nodes — the deliberately bad starting point a
      placement policy is measured against.
      @raise Invalid_argument when a count is < 1 or generated source
      fails to compile (a library bug). *)

  val refresh_service_pids : deployment -> unit
  (** Re-resolve each service's CURRENT pid through its laddr: the
      placement policy can move services underneath the driver, and the
      retired predecessor pid would otherwise read as an early exit.
      {!all_exited} and {!run} call this themselves. *)

  val all_exited : deployment -> bool

  type report = {
    rp_requests : int;  (** latency observations = completed requests *)
    rp_violations : int;  (** sum of client exit codes *)
    rp_migrations : int;  (** successful service re-homings *)
    rp_served : int array;  (** per service: unique requests served *)
    rp_p50_ms : float;
    rp_p90_ms : float;
    rp_p99_ms : float;
    rp_mean_ms : float;
    rp_forwarded : int;  (** messages relayed through forwarders *)
    rp_rebinds : int;  (** Recipient_moved notices consumed *)
    rp_expired : int;  (** sends that hit an expired forwarder *)
    rp_wedged : bool;  (** went quiescent before every rank exited *)
  }

  val run :
    ?max_rounds:int -> ?migrate_every_s:float -> ?migrations:int ->
    deployment -> report
  (** Drive to completion, re-homing one service round-robin to the
      next node every [migrate_every_s] simulated seconds until
      [migrations] moves landed (0 = a static run).  Latency quantiles
      come from the cluster's ["app.latency_seconds"] histogram. *)

  val exactly_once : deployment -> report -> bool
  (** Every request completed, every service served exactly its
      deterministic share of unique requests, no ordering violations,
      nothing wedged. *)
end
