(* MCC — the Mojave Compiler Collection reproduction: public facade.

   This module ties the substrates together into the API a user of the
   library sees:

   - compile C or ML source to verified FIR ([compile_c], [compile_ml]);
   - run a program locally on either engine ([run]);
   - take/restore whole-process images ([checkpoint_bytes], [resume]);
   - deploy programs onto the simulated cluster (see Net.Cluster and
     Gridapp for the canonical distributed application).

   The language-level primitives the paper contributes — speculate(),
   commit(id), abort(id), migrate(target) — are part of the mini-C
   surface (Minic.Typecheck.builtins) and of the FIR itself
   (Fir.Ast.{Speculate,Commit,Rollback,Migrate}); nothing here needs to
   manage process state by hand. *)

let version = "1.0.0"

type source =
  | C of string
  | Ml of string
  | Pas of string
  | Fir_program of Fir.Ast.program

type compile_error = string

let compile ?(optimize = true) source : (Fir.Ast.program, compile_error) result
    =
  match source with
  | C src -> (
    match Minic.Driver.compile ~optimize src with
    | Ok fir -> Ok fir
    | Error e -> Error (Minic.Driver.error_to_string e))
  | Ml src -> (
    match Miniml.Driver.compile ~optimize src with
    | Ok fir -> Ok fir
    | Error e -> Error (Miniml.Driver.error_to_string e))
  | Pas src -> (
    match Pascal.Driver.compile ~optimize src with
    | Ok fir -> Ok fir
    | Error e -> Error (Pascal.Driver.error_to_string e))
  | Fir_program fir -> (
    match Fir.Typecheck.check_program fir with
    | Ok () -> Ok (if optimize then Fir.Opt.optimize fir else fir)
    | Error m -> Error ("ill-typed FIR: " ^ m))

let compile_c ?optimize src = compile ?optimize (C src)
let compile_ml ?optimize src = compile ?optimize (Ml src)
let compile_pascal ?optimize src = compile ?optimize (Pas src)

let compile_exn ?optimize source =
  match compile ?optimize source with
  | Ok fir -> fir
  | Error m -> failwith m

(* ------------------------------------------------------------------ *)
(* Local execution                                                     *)
(* ------------------------------------------------------------------ *)

type backend = Reference (* FIR interpreter *) | Native (* MASM emulator *)

type outcome = {
  o_status : Vm.Process.status;
  o_output : string;
  o_steps : int;
  o_cycles : int;
  o_process : Vm.Process.t;
}

let run ?(backend = Reference) ?(arch = Vm.Arch.cisc32) ?seed
    ?(extern = Vm.Extern.base) ?max_steps program =
  let proc = Vm.Process.create ~arch ?seed program in
  let status =
    match backend with
    | Reference -> Vm.Interp.run ~extern ?max_steps proc
    | Native ->
      let emu = Vm.Emulator.create (Vm.Codegen.compile ~arch program) proc in
      Vm.Emulator.run ~extern ?max_steps emu
  in
  {
    o_status = status;
    o_output = Vm.Process.output proc;
    o_steps = proc.Vm.Process.steps;
    o_cycles = proc.Vm.Process.cycles;
    o_process = proc;
  }

(* Exit code of an outcome, or an error description. *)
let exit_code outcome =
  match outcome.o_status with
  | Vm.Process.Exited n -> Ok n
  | Vm.Process.Trapped m -> Error ("trapped: " ^ m)
  | Vm.Process.Running -> Error "still running (step budget exhausted)"
  | Vm.Process.Migrating req ->
    Error ("stopped at migration to " ^ req.Vm.Process.m_target)

(* ------------------------------------------------------------------ *)
(* Whole-process images                                                *)
(* ------------------------------------------------------------------ *)

(* Pack a process stopped at a migration point into image bytes. *)
let image_bytes proc =
  (Migrate.Pack.pack_request proc).Migrate.Pack.p_bytes

(* Resume an image (e.g. a checkpoint file): verify, recompile for the
   local architecture, return the rebuilt process and its compiled code. *)
let resume ?(arch = Vm.Arch.cisc32) ?(trusted = false) ?seed bytes =
  Migrate.Pack.unpack ?seed ~trusted ~arch bytes

(* Resume and run to completion on the emulator. *)
let resume_and_run ?arch ?trusted ?seed ?(extern = Vm.Extern.base) bytes =
  match resume ?arch ?trusted ?seed bytes with
  | Error m -> Error m
  | Ok (proc, masm, compiled, _costs) ->
    let emu = Vm.Emulator.create ~compiled masm proc in
    let status = Vm.Emulator.run ~extern emu in
    Ok
      {
        o_status = status;
        o_output = Vm.Process.output proc;
        o_steps = proc.Vm.Process.steps;
        o_cycles = proc.Vm.Process.cycles;
        o_process = proc;
      }
