(* The canonical grid computation (paper, Figure 2).

   A 2-D heat-diffusion stencil over an R x C grid, row-decomposed across
   P ranks.  Each rank owns [rows_per_rank] rows plus two ghost rows; at
   every timestep it exchanges border rows with its neighbours over the
   cluster's message-passing interface, then updates its interior.  Every
   [interval] steps it runs a neighbour barrier, commits its speculation,
   writes a checkpoint with migrate("checkpoint://..."), and enters a new
   speculation — exactly the main loop of Figure 2, generated as mini-C
   source and compiled by the MCC pipeline.

   Failure recovery (also Figure 2): when a node dies, the rank it hosted
   is resurrected from its last checkpoint by the resurrection daemon
   ([recover]); surviving ranks observe MSG_ROLL on their pending
   receives and abort their current speculation, rolling back to the last
   checkpoint boundary; the speculation-join cascade propagates the
   rollback to every process that consumed speculative border data.  The
   neighbour barrier before each commit keeps checkpoints globally
   aligned, which is what gives the paper's "will not rollback more than
   one speculation" guarantee.

   [golden_checksums] computes the same stencil sequentially in OCaml with
   identical floating-point evaluation order, so distributed runs — with
   or without injected failures — are verified bit-exactly. *)

type config = {
  ranks : int;
  rows_per_rank : int;
  cols : int;
  timesteps : int;
  interval : int; (* checkpoint every this many steps; 0 = never *)
  work_us_per_step : int;
    (* simulated microseconds of computation each step stands for: the
       small verification grid is bit-exactly checked against the golden
       model, while this charge models the production-scale tile of the
       paper's long-running application (0 = off) *)
}

let default_config =
  { ranks = 4; rows_per_rank = 8; cols = 16; timesteps = 20; interval = 5;
    work_us_per_step = 0 }

let barrier_tag_base = 1 lsl 20

(* Initial value of global cell (gi, j); gi ranges over -1 .. P*L (ghost
   boundary rows included). *)
let initial_value gi j =
  float_of_int (((gi + 7) * 31 + (j + 3) * 17) mod 100) /. 100.0

let checkpoint_path rank = Printf.sprintf "grid_rank%d" rank

(* ------------------------------------------------------------------ *)
(* mini-C source generation                                            *)
(* ------------------------------------------------------------------ *)

let source config rank =
  let p = config.ranks
  and lr = config.rows_per_rank
  and c = config.cols
  and t = config.timesteps
  and ck = config.interval in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// Figure 2 grid computation, rank %d of %d (generated)\n" rank p;
  add "int main() {\n";
  add "  int r = %d;\n" rank;
  add "  float *u = alloc_float(%d);\n" ((lr + 2) * c);
  add "  float *un = alloc_float(%d);\n" ((lr + 2) * c);
  add "  float *bbuf = alloc_float(1);\n";
  add "  int i; int j; int step; int got1; int got2; int err;\n";
  add "  int b1; int b2;\n";
  (* initialization: local row i corresponds to global row r*LR + i - 1 *)
  add "  for (i = 0; i <= %d; i = i + 1) {\n" (lr + 1);
  add "    for (j = 0; j < %d; j = j + 1) {\n" c;
  add "      int gi = %d + i - 1;\n" (rank * lr);
  add "      u[i * %d + j] = (float)(((gi + 7) * 31 + (j + 3) * 17) %% 100) / 100.0;\n" c;
  add "      un[i * %d + j] = u[i * %d + j];\n" c c;
  add "    }\n";
  add "  }\n";
  let speculate_stmt () =
    if ck > 0 then begin
      add "  specid = speculate();\n";
      add "  if (specid < 0) { specid = 0 - specid; }\n"
    end
  in
  if ck > 0 then add "  int specid;\n";
  speculate_stmt ();
  add "  for (step = 1; step <= %d; step = step + 1) {\n" t;
  (* --- border exchange; send failures are ignored (recv-side roll
         notices drive recovery), receives poll and watch for MSG_ROLL *)
  add "    err = 0;\n";
  if rank > 0 then
    add "    msg_send(%d, 2 * step, u + %d, %d);\n" (rank - 1) c c;
  if rank < p - 1 then
    add "    msg_send(%d, 2 * step + 1, u + %d, %d);\n" (rank + 1) (lr * c) c;
  if rank > 0 then begin
    add "    got1 = msg_try_recv(%d, 2 * step + 1, u, %d);\n" (rank - 1) c;
    add "    while (got1 == 0 - 1) { got1 = msg_try_recv(%d, 2 * step + 1, u, %d); }\n"
      (rank - 1) c;
    add "    if (got1 < 0) { err = got1; }\n"
  end;
  if rank < p - 1 then begin
    add "    if (err == 0) {\n";
    add "      got2 = msg_try_recv(%d, 2 * step, u + %d, %d);\n" (rank + 1)
      ((lr + 1) * c) c;
    add "      while (got2 == 0 - 1) { got2 = msg_try_recv(%d, 2 * step, u + %d, %d); }\n"
      (rank + 1) ((lr + 1) * c) c;
    add "      if (got2 < 0) { err = got2; }\n";
    add "    }\n"
  end;
  if ck > 0 then
    add "    if (err == 0 - 2) { abort(specid); }\n"
  else
    (* without speculation there is no recovery: a failure is fatal *)
    add "    if (err == 0 - 2) { return 0 - 1; }\n";
  (* --- computation (Figure 2's do_computation) *)
  if config.work_us_per_step > 0 then
    add "    work_us(%d);\n" config.work_us_per_step;
  add "    for (i = 1; i <= %d; i = i + 1) {\n" lr;
  add "      for (j = 1; j < %d; j = j + 1) {\n" (c - 1);
  add "        float s = u[(i - 1) * %d + j] + u[(i + 1) * %d + j];\n" c c;
  add "        s = s + u[i * %d + j - 1];\n" c;
  add "        s = s + u[i * %d + j + 1];\n" c;
  add "        un[i * %d + j] = s * 0.25;\n" c;
  add "      }\n";
  add "    }\n";
  add "    for (i = 1; i <= %d; i = i + 1) {\n" lr;
  add "      for (j = 1; j < %d; j = j + 1) {\n" (c - 1);
  add "        u[i * %d + j] = un[i * %d + j];\n" c c;
  add "      }\n";
  add "    }\n";
  (* --- checkpoint boundary: neighbour barrier, commit, checkpoint,
         re-speculate (Figure 2's "save a checkpoint if it's time") *)
  if ck > 0 then begin
    add "    if (step %% %d == 0) {\n" ck;
    if rank > 0 then
      add "      msg_send(%d, %d + step, bbuf, 1);\n" (rank - 1)
        barrier_tag_base;
    if rank < p - 1 then
      add "      msg_send(%d, %d + step, bbuf, 1);\n" (rank + 1)
        barrier_tag_base;
    if rank > 0 then begin
      add "      b1 = msg_try_recv(%d, %d + step, bbuf, 1);\n" (rank - 1)
        barrier_tag_base;
      add "      while (b1 == 0 - 1) { b1 = msg_try_recv(%d, %d + step, bbuf, 1); }\n"
        (rank - 1) barrier_tag_base;
      add "      if (b1 == 0 - 2) { abort(specid); }\n"
    end;
    if rank < p - 1 then begin
      add "      b2 = msg_try_recv(%d, %d + step, bbuf, 1);\n" (rank + 1)
        barrier_tag_base;
      add "      while (b2 == 0 - 1) { b2 = msg_try_recv(%d, %d + step, bbuf, 1); }\n"
        (rank + 1) barrier_tag_base;
      add "      if (b2 == 0 - 2) { abort(specid); }\n"
    end;
    add "      commit(specid);\n";
    add "      migrate(\"checkpoint://%s\");\n" (checkpoint_path rank);
    add "      specid = speculate();\n";
    add "      if (specid < 0) { specid = 0 - specid; }\n";
    add "    }\n"
  end;
  add "  }\n";
  (* commit any open speculation before the final checksum *)
  if ck > 0 then begin
    add "  if (spec_level() > 0) { commit(spec_level()); }\n"
  end;
  add "  float sum = 0.0;\n";
  add "  for (i = 1; i <= %d; i = i + 1) {\n" lr;
  add "    for (j = 0; j < %d; j = j + 1) {\n" c;
  add "      sum = sum + u[i * %d + j];\n" c;
  add "    }\n";
  add "  }\n";
  add "  return (int)(sum * 16.0);\n";
  add "}\n";
  Buffer.contents buf

let compile_rank ?(optimize = true) config rank =
  match Minic.Driver.compile ~optimize (source config rank) with
  | Ok fir -> fir
  | Error e ->
    invalid_arg
      ("Gridapp: generated source failed to compile: "
      ^ Minic.Driver.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Golden model                                                        *)
(* ------------------------------------------------------------------ *)

(* Sequential reference with the same evaluation order; returns the
   per-rank checksums the distributed ranks exit with. *)
let golden_checksums config =
  let p = config.ranks
  and lr = config.rows_per_rank
  and c = config.cols in
  let rows = p * lr in
  (* global array with ghost boundary rows -1 and rows *)
  let u = Array.make_matrix (rows + 2) c 0.0 in
  let un = Array.make_matrix (rows + 2) c 0.0 in
  for gi = -1 to rows do
    for j = 0 to c - 1 do
      u.(gi + 1).(j) <- initial_value gi j;
      un.(gi + 1).(j) <- u.(gi + 1).(j)
    done
  done;
  for _step = 1 to config.timesteps do
    for gi = 0 to rows - 1 do
      for j = 1 to c - 2 do
        let s = u.(gi).(j) +. u.(gi + 2).(j) in
        let s = s +. u.(gi + 1).(j - 1) in
        let s = s +. u.(gi + 1).(j + 1) in
        un.(gi + 1).(j) <- s *. 0.25
      done
    done;
    for gi = 0 to rows - 1 do
      for j = 1 to c - 2 do
        u.(gi + 1).(j) <- un.(gi + 1).(j)
      done
    done
  done;
  Array.init p (fun r ->
      let sum = ref 0.0 in
      for i = 1 to lr do
        for j = 0 to c - 1 do
          sum := !sum +. u.((r * lr) + i).(j)
        done
      done;
      int_of_float (!sum *. 16.0))

(* ------------------------------------------------------------------ *)
(* Deployment and recovery                                             *)
(* ------------------------------------------------------------------ *)

type deployment = {
  d_config : config;
  d_cluster : Net.Cluster.t;
  mutable d_pids : int array; (* rank -> current pid *)
}

(* Place rank r on node (r mod usable_nodes); optionally reserve the last
   node as a hot spare for resurrection. *)
let deploy ?(engine = `Interp) ?(spare = false) cluster config =
  let nodes = Net.Cluster.node_count cluster in
  let usable = if spare && nodes > 1 then nodes - 1 else nodes in
  let pids =
    Array.init config.ranks (fun r ->
        let fir = compile_rank config r in
        Net.Cluster.spawn cluster ~engine ~rank:r ~node_id:(r mod usable) fir)
  in
  { d_config = config; d_cluster = cluster; d_pids = pids }

let rank_status d r =
  match Net.Cluster.entry_of_pid d.d_cluster d.d_pids.(r) with
  | Some e -> e.Net.Cluster.proc.Vm.Process.status
  | None -> Vm.Process.Trapped "pid lost"

let all_exited d =
  Array.for_all
    (fun pid ->
      match Net.Cluster.entry_of_pid d.d_cluster pid with
      | Some e -> (
        match e.Net.Cluster.proc.Vm.Process.status with
        | Vm.Process.Exited _ -> true
        | _ -> false)
      | None -> false)
    d.d_pids

(* Run until every rank has exited (or the round budget is hit). *)
let run ?(max_rounds = 2_000_000) d =
  Net.Cluster.run d.d_cluster ~max_rounds ~stop:(fun () -> all_exited d)

let checksums d =
  Array.init d.d_config.ranks (fun r ->
      match rank_status d r with
      | Vm.Process.Exited n -> Some n
      | _ -> None)

(* The resurrection daemon: bring [rank] back on [node_id] from its last
   checkpoint file (Figure 2's recovery path). *)
let recover d ~rank ~node_id =
  match
    Net.Cluster.resurrect d.d_cluster ~rank ~node_id
      ~path:(checkpoint_path rank)
  with
  | Ok pid ->
    d.d_pids.(rank) <- pid;
    Ok pid
  | Error m -> Error m

(* Ranks hosted on a node (by current pid placement). *)
let ranks_on_node d node_id =
  List.filter_map
    (fun r ->
      match Net.Cluster.entry_of_pid d.d_cluster d.d_pids.(r) with
      | Some e when e.Net.Cluster.node_id = node_id -> Some r
      | _ -> None)
    (List.init d.d_config.ranks (fun r -> r))

(* Self-healing run loop.

   Without a failure detector (legacy, omniscient mode): run until
   quiescent and, whenever ranks died with their node (Trapped) but left
   a checkpoint on shared storage, resurrect them on the least-loaded
   live node and keep going.

   With a failure detector configured on the cluster, recovery is driven
   ONLY by heartbeat suspicion: a rank is resurrected when the node
   currently hosting it is suspected (unanimous heartbeat silence past
   the timeout) — the loop never consults ground-truth crash state.  A
   stalled or partitioned node can therefore be FALSELY suspected; the
   resurrection bumps the rank's incarnation epoch, and the cluster's
   epoch fencing guarantees the zombie never completes.  When the system
   goes quiescent without a matured suspicion (every survivor parked on
   a silent rank), idle time is pumped through {!Net.Cluster.advance_clocks}
   so silence can cross the timeout; a bounded number of fruitless pumps
   declares the run wedged.

   Stops when every rank exited, the round budget is spent, or a rank
   needing recovery has no checkpoint to come back from (wedged — the
   caller sees it as missing checksums). *)
let run_resilient ?(max_rounds = 2_000_000) d =
  let cluster = d.d_cluster in
  let storage = Net.Cluster.storage cluster in
  let detect = Net.Cluster.detection_enabled cluster in
  let suspects = ref [] in
  let least_loaded_live_node () =
    let best = ref None in
    for id = 0 to Net.Cluster.node_count cluster - 1 do
      let n = Net.Cluster.node cluster id in
      if n.Net.Cluster.alive && not (List.mem id !suspects) then begin
        let load = List.length (ranks_on_node d id) in
        match !best with
        | Some (_, l) when l <= load -> ()
        | _ -> best := Some (id, load)
      end
    done;
    Option.map fst !best
  in
  let dead_ranks () =
    List.filter
      (fun r ->
        match rank_status d r with Vm.Process.Trapped _ -> true | _ -> false)
      (List.init d.d_config.ranks (fun r -> r))
  in
  (* Detection mode: a rank needs recovery iff its current holder sits
     on a suspected node, has not already exited, AND has a checkpoint
     to come back from.  Exited holders are left alone (their result is
     in), and a suspected node with nothing unfinished on it triggers
     nothing.  The checkpoint guard matters under false suspicion: a
     stalled node suspected before the first checkpoint interval must
     not wedge the run — with no checkpoint there is nothing safe to
     resurrect, so we keep running and let the suspicion clear when the
     stall ends (a genuinely dead rank with no checkpoint wedges via the
     bounded idle-pump path below). *)
  let ranks_needing_recovery () =
    if not detect then dead_ranks ()
    else begin
      suspects := Net.Cluster.suspected_nodes cluster;
      if !suspects = [] then []
      else
        List.filter
          (fun r ->
            match Net.Cluster.entry_of_pid cluster d.d_pids.(r) with
            | Some e ->
              List.mem e.Net.Cluster.node_id !suspects
              && (match e.Net.Cluster.proc.Vm.Process.status with
                 | Vm.Process.Exited _ -> false
                 | _ -> true)
              && Net.Storage.exists storage (checkpoint_path r)
            | None -> false)
          (List.init d.d_config.ranks (fun r -> r))
    end
  in
  let pump_dt =
    match Net.Cluster.detector_config cluster with
    | Some c ->
      c.Net.Detector.hb_interval_s +. c.Net.Detector.suspect_timeout_s
    | None -> 0.0
  in
  let idle_pumps = ref 0 in
  let max_idle_pumps = 64 in
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let budget = max_rounds - !total in
    if budget <= 0 then continue_ := false
    else begin
      total :=
        !total
        + Net.Cluster.run cluster ~max_rounds:budget ~stop:(fun () ->
              all_exited d || (detect && ranks_needing_recovery () <> []));
      if all_exited d then continue_ := false
      else begin
        match ranks_needing_recovery () with
        | [] ->
          if detect && !idle_pumps < max_idle_pumps then begin
            (* quiescent without a matured suspicion: pass idle time so
               heartbeat silence can cross the suspicion timeout *)
            incr idle_pumps;
            Net.Cluster.advance_clocks cluster pump_dt
          end
          else
            (* quiescent with nothing to resurrect: wedged (the caller
               sees missing checksums) or simply out of progress *)
            continue_ := false
        | need ->
          idle_pumps := 0;
          let recovered_all =
            List.for_all
              (fun r ->
                Net.Storage.exists storage (checkpoint_path r)
                &&
                match least_loaded_live_node () with
                | None -> false
                | Some node_id -> (
                  match recover d ~rank:r ~node_id with
                  | Ok _ -> true
                  | Error _ -> false))
              need
          in
          if not recovered_all then continue_ := false
      end
    end
  done;
  !total

(* Inject a node failure once the first round of checkpoints exists, then
   resurrect the victims on [spare_node].  Returns the victim ranks.
   [after_time] delays the failure until the simulated clock reaches it
   (the paper's long-running setting: failures strike mid-computation,
   not at startup). *)
let fail_and_recover ?(rounds_before_failure = 400) ?after_time d
    ~victim_node ~spare_node =
  (* run until every rank has a checkpoint on storage *)
  let storage = Net.Cluster.storage d.d_cluster in
  let have_all_checkpoints () =
    List.for_all
      (fun r -> Net.Storage.exists storage (checkpoint_path r))
      (List.init d.d_config.ranks (fun r -> r))
  in
  let _ =
    Net.Cluster.run d.d_cluster ~max_rounds:1_000_000 ~stop:(fun () ->
        have_all_checkpoints () || all_exited d)
  in
  if all_exited d then []
  else begin
    (* let the computation advance a bit past the checkpoint *)
    (match after_time with
    | Some t ->
      let _ =
        Net.Cluster.run d.d_cluster ~max_rounds:10_000_000 ~stop:(fun () ->
            all_exited d || Net.Cluster.now d.d_cluster >= t)
      in
      ()
    | None -> ());
    let _ = Net.Cluster.run d.d_cluster ~max_rounds:rounds_before_failure
        ~stop:(fun () -> all_exited d) in
    if all_exited d then []
    else begin
      let victims = ranks_on_node d victim_node in
      Net.Cluster.fail_node d.d_cluster victim_node;
      List.iter
        (fun r ->
          match recover d ~rank:r ~node_id:spare_node with
          | Ok _ -> ()
          | Error m ->
            invalid_arg (Printf.sprintf "recovery of rank %d failed: %s" r m))
        victims;
      victims
    end
  end

(* ------------------------------------------------------------------ *)
(* The request-serving workload (registry / live-traffic migration)    *)
(* ------------------------------------------------------------------ *)

(* A closed-loop RPC workload over the process registry: C client ranks
   each fire [requests_per_client] requests round-robin across K service
   processes addressed by LOGICAL ADDRESS (laddr 1..K, [svc_send]),
   never by rank.  Services are re-homed mid-traffic through
   {!Net.Cluster.move}: each move gives the successor a fresh rank, so every client binding goes stale and the
   forward/notify/rebind protocol is what keeps the requests flowing.

   Exactly-once accounting under loss/dup/jitter fault plans:
   - the link layer models loss as retransmission delay, so a request
     or reply is never silently dropped (absent a permanent partition);
   - a DUPLICATED request is deduplicated by the service (per-client
     last-seq table): the work runs once and one reply is sent;
   - a DUPLICATED reply is discarded by the client (its seq is behind
     the one outstanding request of the closed loop).

   Each client exits with its count of ordering violations (0 = clean)
   and each service with the number of UNIQUE requests it served, so the
   zero-loss / zero-dup claims are checked from exit codes alone.
   Per-request latency is recorded into the cluster metrics histogram
   ["app.latency_seconds"] via the [lat_us] probe. *)
module Serve = struct
  type config = {
    clients : int;
    services : int;
    requests_per_client : int;
    work_us : int;  (* simulated service time per request *)
    skew : bool;  (* skewed, phase-shifting request stream (T2) *)
    speculative : bool;
        (* speculative exactly-once serving: the service replies from
           inside a speculation BEFORE its dedup state is durable and
           coordinates the commit with dspec_open/dspec_commit; the
           client joins the speculation through the stamped reply and
           holds its latency observation until the distributed commit
           lands (F5) *)
  }

  let default_config =
    {
      clients = 4;
      services = 2;
      requests_per_client = 50;
      work_us = 20;
      skew = false;
      speculative = false;
    }

  let request_tag = 7
  let reply_tag_base = 1000

  (* Which service (0-based) request [seq] targets — the OCaml mirror of
     the generated client's laddr choice, identical for every client.
     Round-robin normally; with [skew] on, 4 of every 5 requests go to a
     "hot" service that shifts as the run progresses through phases, so
     the load concentrates and then MOVES — the stream the placement
     policy has to chase. *)
  let target_service cfg ~client seq =
    if not cfg.skew then seq mod cfg.services
    else begin
      let phase_len = max 1 (cfg.requests_per_client / cfg.services) in
      let hot = seq / phase_len mod cfg.services in
      (* the background fifth is offset by the client rank — in both
         WHICH service it hits and WHERE in the sequence it falls.
         Without the offsets the clients march in lockstep: they all
         pause the hot queue at the same seq to take the background
         hop, the hot service idles in sync, and no placement — good or
         bad — could change the throughput *)
      if (seq + client) mod 5 < 4 then hot
      else (seq + client) mod cfg.services
    end

  (* Unique requests service [k] (laddr k+1) owes: every client walks
     a deterministic schedule, so the split is exact. *)
  let expected_served cfg k =
    let total = ref 0 in
    for client = 0 to cfg.clients - 1 do
      for seq = 0 to cfg.requests_per_client - 1 do
        if target_service cfg ~client seq = k then incr total
      done
    done;
    !total

  let client_source cfg rank =
    (* the skewed stream redirects 4 of 5 requests to the phase's hot
       service; the remainder stays round-robin so every service sees
       some traffic (and affinity) all along *)
    let laddr_choice =
      if not cfg.skew then
        Printf.sprintf "int laddr = 1 + (seq %% %d);" cfg.services
      else
        let phase_len = max 1 (cfg.requests_per_client / cfg.services) in
        Printf.sprintf
          "int laddr = 1 + ((seq + r) %% %d);\n\
          \    if ((seq + r) %% 5 < 4) { laddr = 1 + ((seq / %d) %% %d); }"
          cfg.services phase_len cfg.services
    in
    if not cfg.speculative then
      Printf.sprintf
        {|
// serving client, rank %d (generated)
int main() {
  int r = %d;
  float *buf = alloc_float(4);
  float *rbuf = alloc_float(4);
  int seq; int rc; int got; int rs; int viol; int t0; int fin;
  viol = 0;
  for (seq = 0; seq < %d; seq = seq + 1) {
    %s
    t0 = sim_now_us();
    buf[0] = (float)r;
    buf[1] = (float)seq;
    buf[2] = (float)t0;
    rc = svc_send(laddr, %d, buf, 3);
    while (rc == 0 - 3) { rc = svc_send(laddr, %d, buf, 3); }
    if (rc < 0) { return 0 - 100; }
    fin = 0;
    while (fin == 0) {
      got = msg_try_recv_any(%d + r, rbuf, 4);
      if (got >= 0) {
        rs = (int)rbuf[1];
        if (rs == seq) {
          lat_us(sim_now_us() - t0);
          fin = 1;
        }
        if (rs > seq) { viol = viol + 1; fin = 1; }
      }
    }
  }
  return viol;
}
|}
        rank rank cfg.requests_per_client laddr_choice request_tag request_tag
        reply_tag_base
    else
      (* Speculative mode.  The request is sent BEFORE entering the
         speculation so it travels unstamped (the service must not join
         the CLIENT's region — the dependency is one-way, reply-borne).
         Consuming a stamped reply joins the service's transaction; the
         spec_pending() barrier then holds the client until the service's
         durable commit clears the dependency — or the distributed abort
         force-rolls this level, re-entering at speculate() with a
         negative id to wait for the replayed reply.  lat_us fires after
         commit(cs), so an aborted attempt never records a latency. *)
      Printf.sprintf
        {|
// serving client, rank %d (generated, speculative exactly-once mode)
int main() {
  int r = %d;
  float *buf = alloc_float(4);
  float *rbuf = alloc_float(4);
  int seq; int rc; int got; int rs; int viol; int t0; int fin; int cs;
  viol = 0;
  for (seq = 0; seq < %d; seq = seq + 1) {
    %s
    t0 = sim_now_us();
    buf[0] = (float)r;
    buf[1] = (float)seq;
    buf[2] = (float)t0;
    rc = svc_send(laddr, %d, buf, 3);
    while (rc == 0 - 3) { rc = svc_send(laddr, %d, buf, 3); }
    if (rc < 0) { return 0 - 100; }
    cs = speculate();
    if (cs < 0) { cs = 0 - cs; }
    fin = 0;
    while (fin == 0) {
      got = msg_try_recv_any(%d + r, rbuf, 4);
      if (got >= 0) {
        rs = (int)rbuf[1];
        if (rs == seq) { fin = 1; }
        if (rs > seq) { viol = viol + 1; fin = 1; }
      }
    }
    fin = spec_pending();
    while (fin == 1) { fin = spec_pending(); }
    commit(cs);
    lat_us(sim_now_us() - t0);
  }
  return viol;
}
|}
        rank rank cfg.requests_per_client laddr_choice request_tag request_tag
        reply_tag_base

  let service_source cfg k =
    let total = expected_served cfg k in
    if not cfg.speculative then
      Printf.sprintf
        {|
// serving worker %d (generated): %d unique requests, then exit
int main() {
  float *rbuf = alloc_float(4);
  int *last = alloc_int(%d);
  int i; int got; int cl; int s; int served;
  for (i = 0; i < %d; i = i + 1) { last[i] = 0 - 1; }
  served = 0;
  while (served < %d) {
    got = msg_try_recv_any(%d, rbuf, 4);
    if (got >= 0) {
      cl = (int)rbuf[0];
      s = (int)rbuf[1];
      if (s > last[cl]) {
        last[cl] = s;
        %smsg_send(cl, %d + cl, rbuf, 3);
        served = served + 1;
      }
    }
  }
  return served;
}
|}
        k total cfg.clients cfg.clients total request_tag
        (if cfg.work_us > 0 then
           Printf.sprintf "work_us(%d);\n        " cfg.work_us
         else "")
        reply_tag_base
    else
      (* Speculative mode: the dedup write and the reply happen inside a
         speculation, so the reply leaves BEFORE the dedup state is
         durable — the fast path the distributed commit protocol has to
         make safe.  dspec_open() roots the transaction at this level;
         the stamped reply enrolls its consumer; dspec_commit() runs the
         epoch-fenced prepare round.  On success the level commits
         durably (releasing the client's spec_pending barrier) and only
         then does the served count advance.  On abort (fence,
         crash_in_commit, dead participant) the level rolls back —
         un-sending the reply, un-writing last[cl], force-rolling any
         consumer — and control re-enters at speculate() with a negative
         id to replay the request.  The recv stays OUTSIDE the
         speculation: replay must not un-consume the request itself. *)
      Printf.sprintf
        {|
// serving worker %d (generated, speculative exactly-once mode): %d unique requests, then exit
int main() {
  float *rbuf = alloc_float(4);
  int *last = alloc_int(%d);
  int i; int got; int cl; int s; int served; int specid; int txn; int rc;
  for (i = 0; i < %d; i = i + 1) { last[i] = 0 - 1; }
  served = 0;
  while (served < %d) {
    got = msg_try_recv_any(%d, rbuf, 4);
    if (got >= 0) {
      cl = (int)rbuf[0];
      s = (int)rbuf[1];
      if (s > last[cl]) {
        specid = speculate();
        if (specid < 0) { specid = 0 - specid; }
        %slast[cl] = s;
        txn = dspec_open();
        msg_send(cl, %d + cl, rbuf, 3);
        rc = dspec_commit(txn);
        if (rc == 0) {
          commit(specid);
          served = served + 1;
        }
        if (rc < 0) { abort(specid); }
      }
    }
  }
  return served;
}
|}
        k total cfg.clients cfg.clients total request_tag
        (if cfg.work_us > 0 then
           Printf.sprintf "work_us(%d);\n        " cfg.work_us
         else "")
        reply_tag_base

  let compile source_text =
    match Minic.Driver.compile source_text with
    | Ok fir -> fir
    | Error e ->
      invalid_arg
        ("Gridapp.Serve: generated source failed to compile: "
        ^ Minic.Driver.error_to_string e)

  type deployment = {
    sv_config : config;
    sv_cluster : Net.Cluster.t;
    sv_client_pids : int array;  (* client rank -> pid (never moves) *)
    mutable sv_service_pids : int array;  (* service k -> CURRENT pid *)
    sv_laddrs : int array;  (* service k -> logical address *)
  }

  (* Clients take ranks 0..C-1, services C..C+K-1.  Clients are always
     spread round-robin; services are spread too by default, or packed
     onto the first [p] nodes with [`Pack p] — the deliberately bad
     initial placement the policy engine starts from (T2).  Every
     service is registered, so from here on migration re-homes it. *)
  let deploy ?(engine = `Interp) ?(placement = `Spread) cluster cfg =
    if cfg.clients < 1 || cfg.services < 1 then
      invalid_arg "Gridapp.Serve.deploy: clients and services must be >= 1";
    let nodes = Net.Cluster.node_count cluster in
    let client_pids =
      Array.init cfg.clients (fun r ->
          Net.Cluster.spawn cluster ~engine ~rank:r ~node_id:(r mod nodes)
            (compile (client_source cfg r)))
    in
    let service_node k rank =
      match placement with
      | `Spread -> rank mod nodes
      | `Pack p -> k mod max 1 (min p nodes)
    in
    let service_pids =
      Array.init cfg.services (fun k ->
          let rank = cfg.clients + k in
          Net.Cluster.spawn cluster ~engine ~rank
            ~node_id:(service_node k rank)
            (compile (service_source cfg k)))
    in
    let laddrs =
      Array.map
        (fun pid -> Net.Cluster.register_service cluster ~pid)
        service_pids
    in
    { sv_config = cfg; sv_cluster = cluster; sv_client_pids = client_pids;
      sv_service_pids = service_pids; sv_laddrs = laddrs }

  let exit_code cluster pid =
    match Net.Cluster.entry_of_pid cluster pid with
    | Some e -> (
      match e.Net.Cluster.proc.Vm.Process.status with
      | Vm.Process.Exited n -> Some n
      | _ -> None)
    | None -> None

  (* Services can be moved underneath the driver (the placement policy
     migrates them without telling anyone), which retires the pid we
     remembered.  The laddr is the stable name: re-resolve each one to
     the CURRENT holder of its rank before reading liveness or exit
     codes, so a policy move never looks like an early exit. *)
  let refresh_service_pids d =
    Array.iteri
      (fun k laddr ->
        match Net.Cluster.service_rank d.sv_cluster ~laddr with
        | Some rank -> (
          match Net.Cluster.entry_of_rank d.sv_cluster rank with
          | Some e ->
            d.sv_service_pids.(k) <- e.Net.Cluster.proc.Vm.Process.pid
          | None -> ())
        | None -> ())
      d.sv_laddrs

  let all_exited d =
    refresh_service_pids d;
    let done_ pid = exit_code d.sv_cluster pid <> None in
    Array.for_all done_ d.sv_client_pids
    && Array.for_all done_ d.sv_service_pids

  type report = {
    rp_requests : int;  (* latency observations = completed requests *)
    rp_violations : int;  (* sum of client exit codes *)
    rp_migrations : int;  (* successful service re-homings *)
    rp_served : int array;  (* per service: unique requests served *)
    rp_p50_ms : float;
    rp_p90_ms : float;
    rp_p99_ms : float;
    rp_mean_ms : float;
    rp_forwarded : int;  (* messages relayed through forwarders *)
    rp_rebinds : int;  (* Recipient_moved notices consumed *)
    rp_expired : int;  (* sends that hit an expired forwarder *)
    rp_wedged : bool;  (* went quiescent before every rank exited *)
  }

  (* Drive the run, re-homing one service round-robin to the next node
     every [migrate_every_s] simulated seconds until [migrations] moves
     landed, then run to completion.  A service that already exited (or
     is mid-quantum in a state the packer rejects) is skipped; the move
     budget is not charged. *)
  let run ?(max_rounds = 20_000_000) ?(migrate_every_s = 0.002)
      ?(migrations = 0) d =
    let cluster = d.sv_cluster in
    let nodes = Net.Cluster.node_count cluster in
    let moved = ref 0 in
    let skipped = ref 0 in
    let next_at = ref (Net.Cluster.now cluster +. migrate_every_s) in
    let total = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let budget = max_rounds - !total in
      if budget <= 0 then continue_ := false
      else begin
        let more_moves () = !moved + !skipped < migrations && nodes > 1 in
        total :=
          !total
          + Net.Cluster.run cluster ~max_rounds:budget ~stop:(fun () ->
                all_exited d
                || (more_moves () && Net.Cluster.now cluster >= !next_at));
        if all_exited d then continue_ := false
        else if more_moves () && Net.Cluster.now cluster >= !next_at then begin
          let k = (!moved + !skipped) mod d.sv_config.services in
          let pid = d.sv_service_pids.(k) in
          (match Net.Cluster.entry_of_pid cluster pid with
          | Some e
            when e.Net.Cluster.proc.Vm.Process.status = Vm.Process.Running ->
            let target = (e.Net.Cluster.node_id + 1) mod nodes in
            (match
               Net.Cluster.move cluster
                 (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Rehome
                    (Net.Cluster.Move.Running pid) ~dest:target)
             with
            | Ok o ->
              d.sv_service_pids.(k) <- o.Net.Cluster.Move.mv_pid;
              incr moved
            | Error _ -> incr skipped)
          | Some _ | None -> incr skipped);
          next_at := Net.Cluster.now cluster +. migrate_every_s
        end
        else
          (* quiescent with ranks unfinished: wedged — report it rather
             than spinning the round budget down *)
          continue_ := false
      end
    done;
    let metrics = Net.Cluster.metrics cluster in
    let requests, p50, p90, p99, mean =
      match Obs.Metrics.find_histogram metrics "app.latency_seconds" with
      | Some h ->
        ( Obs.Metrics.hist_count h,
          1e3 *. Obs.Metrics.quantile h 0.50,
          1e3 *. Obs.Metrics.quantile h 0.90,
          1e3 *. Obs.Metrics.quantile h 0.99,
          1e3 *. Obs.Metrics.hist_mean h )
      | None -> 0, 0.0, 0.0, 0.0, 0.0
    in
    refresh_service_pids d;
    let violations =
      Array.fold_left
        (fun acc pid ->
          match exit_code cluster pid with Some n -> acc + n | None -> acc)
        0 d.sv_client_pids
    in
    let served =
      Array.map
        (fun pid -> Option.value ~default:(-1) (exit_code cluster pid))
        d.sv_service_pids
    in
    {
      rp_requests = requests;
      rp_violations = violations;
      rp_migrations = !moved;
      rp_served = served;
      rp_p50_ms = p50;
      rp_p90_ms = p90;
      rp_p99_ms = p99;
      rp_mean_ms = mean;
      rp_forwarded = Net.Registry.forwarded (Net.Cluster.registry cluster);
      rp_rebinds = Obs.Metrics.counter_value metrics "registry.rebinds";
      rp_expired =
        Net.Registry.expired_count (Net.Cluster.registry cluster);
      rp_wedged = not (all_exited d);
    }

  (* The exactly-once check: every request completed (latency observed),
     every service served exactly its deterministic share of UNIQUE
     requests, no ordering violations, nothing wedged. *)
  let exactly_once d (r : report) =
    let cfg = d.sv_config in
    let served_ok = ref (Array.length r.rp_served = cfg.services) in
    Array.iteri
      (fun k served ->
        if served <> expected_served cfg k then served_ok := false)
      r.rp_served;
    (not r.rp_wedged) && r.rp_violations = 0
    && r.rp_requests = cfg.clients * cfg.requests_per_client
    && !served_ok
end
