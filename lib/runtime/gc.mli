(** Generational, mark-sweep, compacting collection (paper, Section 4).

    Two phases, as in MCC: a fast minor collection over the young region
    and a major sweep-and-compact of the entire heap.  Compaction slides
    live blocks towards low addresses in allocation order (preserving
    temporal locality) and is possible because the pointer table gives
    every block exactly one relocation slot.

    Speculation integration: [pinned] carries the checkpoint records —
    (index, original address) pairs.  Originals are marked and scanned;
    the current target of a recorded index is marked too, so a recorded
    index can never be freed while a rollback could restore it.  Moved
    addresses are reported in {!field-forward} so the speculation engine
    can rewrite its records. *)

type kind = Minor | Major

type result = {
  kind : kind;
  forward : (int, int) Hashtbl.t;  (** old block address -> new address *)
  live_blocks : int;
  collected_blocks : int;
  collected_cells : int;
}

val collect :
  Heap.t ->
  kind:kind ->
  roots:Value.t list ->
  pinned:(int * int) list ->
  result
(** [collect heap ~kind ~roots ~pinned] marks from [roots] (continuation
    arguments, speculation continuations) plus [pinned] records, then
    compacts the collected region.  Survivors are promoted; the
    remembered set is reset. *)

val forward_addr : result -> int -> int
(** Map an address through the forwarding table (identity if unmoved). *)

val metrics : Obs.Metrics.t
(** Process-global collection metrics: counters [gc.minor_collections],
    [gc.major_collections], [gc.collected_blocks], [gc.collected_cells]
    and histogram [gc.live_blocks].  Heaps are per-process; per-node
    attribution happens through the [on_gc] hook in [Vm.Process]. *)
