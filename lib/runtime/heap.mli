(** The MCC heap (paper, Section 4.1).

    A flat array of cells.  Each block is stored contiguously: a 4-cell
    header (pointer-table index, tag, size, collector flags) followed by
    the data cells — the paper's ">12 bytes per block" bookkeeping made
    concrete.  Addresses at or above {!field-young_start} form the young
    generation; a write barrier remembers old blocks that received young
    references.

    The type is exposed concretely because the collector ({!Gc}) slides
    blocks within [store] directly; mutate the fields only from there. *)

exception Runtime_error of string

type tag = Tuple | Array | Raw

val tag_code : tag -> int
val tag_of_code : int -> tag

val header_cells : int
(** Cells of header per block (4). *)

val h_index : int
val h_tag : int
val h_size : int
val h_flags : int

type stats = {
  mutable blocks_allocated : int;
  mutable cells_allocated : int;
  mutable cow_clones : int;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable collected_cells : int;
  mutable barrier_hits : int;
}

type t = {
  mutable store : Value.t array;
  mutable alloc_ptr : int;
  mutable young_start : int;
  ptable : Pointer_table.t;
  remembered : (int, unit) Hashtbl.t;
  mutable before_write : (int -> unit) option;
  mutable minor_enabled : bool;
  dirty : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** index -> dirty pages since the last {!clear_dirty} *)
  mutable last_dirty_idx : int;
      (** one-entry mark cache: last block index marked dirty *)
  mutable last_dirty_page : int;  (** page paired with [last_dirty_idx] *)
  stats : stats;
}

val create : ?initial_cells:int -> unit -> t
val stats : t -> stats
val pointer_table : t -> Pointer_table.t
val used_cells : t -> int
val young_cells : t -> int
val capacity : t -> int

val set_minor_enabled : t -> bool -> unit
(** Ablation knob: disabling minor collections makes every collection a
    full major sweep (bench a2 quantifies the generational design). *)

val set_before_write : t -> (int -> unit) option -> unit
(** Install the copy-on-write hook called (with the block's index) before
    every mutation; the speculation engine uses it to clone on first
    write within a level. *)

val ensure_capacity : t -> int -> unit

(** {2 Header access (collector / codec support)} *)

val block_index_at : t -> int -> int
val block_size_at : t -> int -> int
val block_tag_at : t -> int -> tag
val block_flags_at : t -> int -> int
val set_block_flags_at : t -> int -> int -> unit
val set_block_index_at : t -> int -> int -> unit
val block_footprint : t -> int -> int

(** {2 Allocation} *)

val alloc : t -> tag:tag -> size:int -> init:Value.t -> int
(** Allocate a block; returns its pointer-table index. *)

val alloc_tuple : t -> Value.t list -> int
val alloc_raw : t -> string -> int

(** {2 Checked access}

    Every read and write validates the pointer-table index (two checks,
    Section 4.1.1) and the cell offset against the block size; a
    violation raises rather than corrupting memory. *)

val addr_of : t -> int -> int
val block_size : t -> int -> int
val block_tag : t -> int -> tag
val read : t -> int -> int -> Value.t
val write : t -> int -> int -> Value.t -> unit

val raw_to_string : t -> int -> string
(** Decode a raw block as a string (migration target strings, I/O). *)

(** {2 Copy-on-write (speculation support)} *)

val clone_for_cow : t -> int -> int
(** Clone the block currently targeted by the index, retarget the pointer
    table to the clone, and return the ORIGINAL block's address for the
    speculation checkpoint record. *)

val retarget : t -> int -> int -> unit
(** Point an index back at a saved original (rollback). *)

(** {2 Iteration and GC pacing} *)

val iter_blocks_range : t -> lo:int -> hi:int -> (int -> unit) -> unit
val iter_blocks : t -> (int -> unit) -> unit
val remembered_indices : t -> int list
val clear_remembered : t -> unit
val live_blocks : t -> int
val needs_minor : t -> bool
val needs_major : t -> bool
val reserve : t -> int -> unit

(** {2 Dirty-block tracking (delta migration)}

    Every mutation marks the touched {!dirty_page_cells}-cell page of the
    touched block, keyed by pointer-table index (stable across
    compaction).  Allocation, copy-on-write cloning and rollback
    retargeting conservatively mark the whole block, so a clean page is
    guaranteed identical to the last baseline cleared with
    {!clear_dirty}.  The collector drops freed indices. *)

val dirty_page_cells : int
(** Cells per dirty-tracking page (64). *)

val pages_of_size : int -> int
(** Dirty-tracking pages covering a block of [size] data cells (≥ 1). *)

val mark_dirty_cell : t -> int -> int -> unit
val mark_dirty_block : t -> int -> size:int -> unit
val drop_dirty : t -> int -> unit
val clear_dirty : t -> unit
val is_dirty : t -> int -> int -> bool
val dirty_block_count : t -> int

val dirty_snapshot : t -> (int * int, unit) Hashtbl.t
(** Flattened (index, page) copy, decoupled from later clears. *)

(** {2 Migration support} *)

val restore : cells:Value.t array -> ptable_snapshot:int array -> t
(** Rebuild a heap from an unpacked image; everything arrives promoted to
    the old generation. *)

val cells : t -> Value.t array
(** The raw cell dump [0, alloc_ptr) for the wire codec. *)

val validate : t -> unit
(** Internal consistency check (block chain, pointer-table/header
    agreement, no dangling live pointer cells); for the test suites.
    @raise Runtime_error on a violation. *)
