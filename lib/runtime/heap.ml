(* The MCC heap (paper, Section 4.1).

   The heap is a flat array of cells.  Each memory structure (block) is
   stored contiguously: a 4-cell header followed by the data cells.  The
   header records the block's pointer-table index, its tag, its data size,
   and a flags word used by the collector.  This concrete layout is what
   makes the paper's ">12 bytes per block" bookkeeping overhead real in
   this implementation (4 header cells + a pointer-table entry), and it
   makes compaction a genuine memory move rather than a no-op.

   Blocks are allocated bump-style at [alloc_ptr].  Addresses at or above
   [young_start] form the young generation; minor collections only examine
   that region.  A write barrier records (by pointer-table index, which is
   stable across moves) old blocks into which a young reference was
   stored.

   Copy-on-write for speculation: before any mutation, the [before_write]
   hook fires with the block's index; the speculation engine clones the
   block (via [clone_for_cow]) and saves the original's address in the
   current level's checkpoint record.  The original block stays in the
   heap, no longer referenced by the pointer table — exactly the "special
   blocks" of Section 4.1 that are tracked by a checkpoint record. *)

exception Runtime_error of string

type tag = Tuple | Array | Raw

let tag_code = function Tuple -> 0 | Array -> 1 | Raw -> 2

let tag_of_code = function
  | 0 -> Tuple
  | 1 -> Array
  | 2 -> Raw
  | n -> raise (Runtime_error (Printf.sprintf "bad block tag code %d" n))

let header_cells = 4

(* Header cell offsets. *)
let h_index = 0
let h_tag = 1
let h_size = 2
let h_flags = 3

type stats = {
  mutable blocks_allocated : int;
  mutable cells_allocated : int;
  mutable cow_clones : int;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable collected_cells : int;
  mutable barrier_hits : int;
}

(* Dirty-block tracking for delta migration (incremental pack): every
   mutation marks the touched page of the touched block, keyed by the
   block's pointer-table INDEX — stable across compaction, so a
   collection needs no fixups beyond dropping freed indices.  Pages are
   sub-block granules so one write into a large array does not force the
   whole array onto the wire.  The set is conservative by construction:
   allocation, copy-on-write cloning and rollback retargeting mark every
   page of the affected block, so "not dirty" always means "identical to
   the last cleared baseline". *)
let dirty_page_cells = 64

type t = {
  mutable store : Value.t array;
  mutable alloc_ptr : int;
  mutable young_start : int;
  ptable : Pointer_table.t;
  remembered : (int, unit) Hashtbl.t; (* indices of old blocks with young refs *)
  mutable before_write : (int -> unit) option;
  (* ablation knob: with minor collections disabled every collection is a
     full major sweep (used by bench a2 to quantify the generational
     design choice) *)
  mutable minor_enabled : bool;
  dirty : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* index -> dirty pages since the last [clear_dirty] *)
  (* one-entry cache over [mark_dirty_cell]: consecutive writes land
     overwhelmingly on the page just marked, and marking is idempotent,
     so remembering the last (index, page) pair turns the common case
     into two integer compares instead of two hashtable operations *)
  mutable last_dirty_idx : int;
  mutable last_dirty_page : int;
  stats : stats;
}

let create ?(initial_cells = 4096) () =
  {
    store = Array.make (max 64 initial_cells) Value.Vunit;
    alloc_ptr = 0;
    young_start = 0;
    ptable = Pointer_table.create ();
    remembered = Hashtbl.create 64;
    before_write = None;
    minor_enabled = true;
    dirty = Hashtbl.create 64;
    last_dirty_idx = -1;
    last_dirty_page = -1;
    stats =
      {
        blocks_allocated = 0;
        cells_allocated = 0;
        cow_clones = 0;
        minor_collections = 0;
        major_collections = 0;
        collected_cells = 0;
        barrier_hits = 0;
      };
  }

let stats t = t.stats

(* -------------------- dirty-block tracking -------------------- *)

let pages_of_size size = max 1 ((size + dirty_page_cells - 1) / dirty_page_cells)

let dirty_page_set t idx =
  match Hashtbl.find_opt t.dirty idx with
  | Some pages -> pages
  | None ->
    let pages = Hashtbl.create 4 in
    Hashtbl.add t.dirty idx pages;
    pages

let mark_dirty_cell t idx off =
  let page = off / dirty_page_cells in
  if idx <> t.last_dirty_idx || page <> t.last_dirty_page then begin
    Hashtbl.replace (dirty_page_set t idx) page ();
    t.last_dirty_idx <- idx;
    t.last_dirty_page <- page
  end

let mark_dirty_block t idx ~size =
  let pages = dirty_page_set t idx in
  for p = 0 to pages_of_size size - 1 do
    Hashtbl.replace pages p ()
  done

let drop_dirty t idx =
  Hashtbl.remove t.dirty idx;
  if t.last_dirty_idx = idx then begin
    t.last_dirty_idx <- -1;
    t.last_dirty_page <- -1
  end

let clear_dirty t =
  Hashtbl.reset t.dirty;
  t.last_dirty_idx <- -1;
  t.last_dirty_page <- -1
let is_dirty t idx page =
  match Hashtbl.find_opt t.dirty idx with
  | Some pages -> Hashtbl.mem pages page
  | None -> false

let dirty_block_count t = Hashtbl.length t.dirty

(* Flattened copy for the pack layer: the set survives the clear that
   pack performs once the image becomes the new baseline. *)
let dirty_snapshot t =
  let snap = Hashtbl.create (max 16 (Hashtbl.length t.dirty)) in
  Hashtbl.iter
    (fun idx pages ->
      Hashtbl.iter (fun page () -> Hashtbl.replace snap (idx, page) ()) pages)
    t.dirty;
  snap
let set_minor_enabled t flag = t.minor_enabled <- flag
let pointer_table t = t.ptable
let used_cells t = t.alloc_ptr
let young_cells t = t.alloc_ptr - t.young_start
let capacity t = Array.length t.store
let set_before_write t hook = t.before_write <- hook

let ensure_capacity t extra =
  let needed = t.alloc_ptr + extra in
  if needed > Array.length t.store then begin
    let cap = ref (Array.length t.store) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let store = Array.make !cap Value.Vunit in
    Array.blit t.store 0 store 0 t.alloc_ptr;
    t.store <- store
  end

(* ------------------------------------------------------------------ *)
(* Header access                                                       *)
(* ------------------------------------------------------------------ *)

let header_int t addr k =
  match t.store.(addr + k) with
  | Value.Vint n -> n
  | v ->
    raise
      (Runtime_error
         (Printf.sprintf "corrupt block header at %d: %s" addr
            (Value.to_string v)))

let block_index_at t addr = header_int t addr h_index
let block_size_at t addr = header_int t addr h_size
let block_tag_at t addr = tag_of_code (header_int t addr h_tag)
let block_flags_at t addr = header_int t addr h_flags
let set_block_flags_at t addr f = t.store.(addr + h_flags) <- Value.Vint f

let set_block_index_at t addr idx = t.store.(addr + h_index) <- Value.Vint idx

(* Total footprint of the block at [addr]. *)
let block_footprint t addr = header_cells + block_size_at t addr

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let write_header t addr ~index ~tag ~size =
  t.store.(addr + h_index) <- Value.Vint index;
  t.store.(addr + h_tag) <- Value.Vint (tag_code tag);
  t.store.(addr + h_size) <- Value.Vint size;
  t.store.(addr + h_flags) <- Value.Vint 0

let alloc t ~tag ~size ~init =
  if size < 0 then raise (Runtime_error "negative allocation size");
  ensure_capacity t (header_cells + size);
  let addr = t.alloc_ptr in
  t.alloc_ptr <- addr + header_cells + size;
  let idx = Pointer_table.alloc t.ptable addr in
  write_header t addr ~index:idx ~tag ~size;
  Array.fill t.store (addr + header_cells) size init;
  (* a fresh block is dirty by definition — and the index may be a reused
     slot whose baseline content was something else entirely *)
  mark_dirty_block t idx ~size;
  t.stats.blocks_allocated <- t.stats.blocks_allocated + 1;
  t.stats.cells_allocated <- t.stats.cells_allocated + header_cells + size;
  idx

(* Allocate a tuple from an initial cell list. *)
let alloc_tuple t values =
  let idx = alloc t ~tag:Tuple ~size:(List.length values) ~init:Value.Vunit in
  let addr = Pointer_table.get t.ptable idx in
  List.iteri (fun k v -> t.store.(addr + header_cells + k) <- v) values;
  idx

(* Allocate a raw block from a string (one byte per cell). *)
let alloc_raw t s =
  let n = String.length s in
  let idx = alloc t ~tag:Raw ~size:n ~init:(Value.Vint 0) in
  let addr = Pointer_table.get t.ptable idx in
  String.iteri
    (fun k c -> t.store.(addr + header_cells + k) <- Value.Vint (Char.code c))
    s;
  idx

(* ------------------------------------------------------------------ *)
(* Checked access                                                      *)
(* ------------------------------------------------------------------ *)

let addr_of t idx = Pointer_table.get t.ptable idx

let block_size t idx = block_size_at t (addr_of t idx)
let block_tag t idx = block_tag_at t (addr_of t idx)

let check_offset t addr off =
  let size = block_size_at t addr in
  if off < 0 || off >= size then
    raise
      (Runtime_error
         (Printf.sprintf "offset %d out of bounds for block of size %d" off
            size))

let read t idx off =
  let addr = addr_of t idx in
  check_offset t addr off;
  t.store.(addr + header_cells + off)

(* The generational write barrier: a young reference stored into an old
   block is remembered (by the old block's stable index) so minor
   collections can find it without scanning the old generation. *)
let barrier t idx addr v =
  if addr < t.young_start then
    match v with
    | Value.Vptr (j, _) ->
      if Pointer_table.is_valid t.ptable j
         && Pointer_table.get t.ptable j >= t.young_start
      then begin
        Hashtbl.replace t.remembered idx ();
        t.stats.barrier_hits <- t.stats.barrier_hits + 1
      end
    | Value.Vunit | Value.Vint _ | Value.Vfloat _ | Value.Vbool _
    | Value.Venum _ | Value.Vfun _ ->
      ()

let write t idx off v =
  (match t.before_write with Some hook -> hook idx | None -> ());
  (* the hook may have cloned the block; re-resolve the address *)
  let addr = addr_of t idx in
  check_offset t addr off;
  barrier t idx addr v;
  mark_dirty_cell t idx off;
  t.store.(addr + header_cells + off) <- v

(* Read a raw block back as a string; used to decode migration target
   strings and for I/O externs. *)
let raw_to_string t idx =
  let addr = addr_of t idx in
  (match block_tag_at t addr with
  | Raw -> ()
  | Tuple | Array ->
    raise (Runtime_error "raw_to_string: block is not raw data"));
  let size = block_size_at t addr in
  String.init size (fun k ->
      match t.store.(addr + header_cells + k) with
      | Value.Vint b -> Char.chr (b land 0xff)
      | v ->
        raise
          (Runtime_error
             ("raw_to_string: non-byte cell " ^ Value.to_string v)))

(* ------------------------------------------------------------------ *)
(* Copy-on-write support for speculation (paper, Section 4.3)          *)
(* ------------------------------------------------------------------ *)

(* Clone the block at [idx]'s current target and retarget the pointer table
   to the clone.  Returns the ORIGINAL block's address, which the caller
   (the speculation engine) stores in the current level's checkpoint
   record.  The heap contents of both copies are untouched: all references
   are indices, so the clone is immediately consistent. *)
let clone_for_cow t idx =
  let old_addr = addr_of t idx in
  let size = block_size_at t old_addr in
  let tag = block_tag_at t old_addr in
  ensure_capacity t (header_cells + size);
  let new_addr = t.alloc_ptr in
  t.alloc_ptr <- new_addr + header_cells + size;
  write_header t new_addr ~index:idx ~tag ~size;
  Array.blit t.store (old_addr + header_cells) t.store
    (new_addr + header_cells) size;
  Pointer_table.set t.ptable idx new_addr;
  (* conservatively dirty: the clone will diverge from the original, and
     a later rollback may retarget to content older than the baseline *)
  mark_dirty_block t idx ~size;
  t.stats.cow_clones <- t.stats.cow_clones + 1;
  t.stats.blocks_allocated <- t.stats.blocks_allocated + 1;
  t.stats.cells_allocated <- t.stats.cells_allocated + header_cells + size;
  old_addr

(* Restore an index to a previously saved address (rollback).  The
   restored original's content need not match the delta baseline (the
   baseline may have been taken after the clone), so the whole block is
   conservatively dirty. *)
let retarget t idx addr =
  Pointer_table.set t.ptable idx addr;
  mark_dirty_block t idx ~size:(block_size_at t addr)

(* ------------------------------------------------------------------ *)
(* Iteration (used by the collector and the wire codec)                *)
(* ------------------------------------------------------------------ *)

(* Iterate over all blocks in [lo, hi) address order, including blocks that
   are no longer the pointer-table target of their index (speculation
   originals, garbage). *)
let iter_blocks_range t ~lo ~hi f =
  let addr = ref lo in
  while !addr < hi do
    let size = block_size_at t !addr in
    f !addr;
    addr := !addr + header_cells + size
  done

let iter_blocks t f = iter_blocks_range t ~lo:0 ~hi:t.alloc_ptr f

let remembered_indices t =
  Hashtbl.fold (fun idx () acc -> idx :: acc) t.remembered []

let clear_remembered t = Hashtbl.reset t.remembered

(* Count of live blocks (pointer-table targets). *)
let live_blocks t = Pointer_table.live_count t.ptable

(* A rough GC-pressure signal for the mutator loop. *)
let needs_minor t = t.minor_enabled && young_cells t > 32_768
let needs_major t =
  t.alloc_ptr > 3 * Array.length t.store / 4
  || ((not t.minor_enabled) && young_cells t > 32_768)

(* Pre-size the store (used after an unproductive major collection: if
   live data fills most of the heap, collecting again soon is wasted
   work — grow instead). *)
let reserve t cells = ensure_capacity t (max 0 (cells - t.alloc_ptr))

(* Rebuild a heap from a migrated image: the raw cell dump and the pointer
   table snapshot (paper, Section 4.2.2 — the heap is reconstructed on the
   target from the transmitted contents).  Everything arrives promoted to
   the old generation. *)
let restore ~cells ~ptable_snapshot =
  let len = Array.length cells in
  let capacity = max 64 len in
  let store = Array.make capacity Value.Vunit in
  Array.blit cells 0 store 0 len;
  {
    store;
    alloc_ptr = len;
    young_start = len;
    ptable = Pointer_table.restore ptable_snapshot;
    remembered = Hashtbl.create 64;
    before_write = None;
    minor_enabled = true;
    (* a restored heap IS the image it was restored from: nothing is
       dirty relative to that baseline *)
    dirty = Hashtbl.create 64;
    last_dirty_idx = -1;
    last_dirty_page = -1;
    stats =
      {
        blocks_allocated = 0;
        cells_allocated = 0;
        cow_clones = 0;
        minor_collections = 0;
        major_collections = 0;
        collected_cells = 0;
        barrier_hits = 0;
      };
  }

(* The raw cell dump for the wire codec. *)
let cells t = Array.sub t.store 0 t.alloc_ptr

(* Internal consistency check, used by the property tests after random
   operation sequences: the block chain tiles [0, alloc_ptr) exactly,
   every pointer-table entry targets a block header carrying its own
   index, and every pointer cell in a live block references a live
   entry. *)
let validate t =
  let starts = Hashtbl.create 64 in
  let addr = ref 0 in
  while !addr < t.alloc_ptr do
    let size = block_size_at t !addr in
    if size < 0 || !addr + header_cells + size > t.alloc_ptr then
      raise (Runtime_error "validate: block overruns the heap");
    ignore (tag_of_code (header_int t !addr h_tag));
    Hashtbl.replace starts !addr (block_index_at t !addr);
    addr := !addr + header_cells + size
  done;
  if !addr <> t.alloc_ptr then
    raise (Runtime_error "validate: block chain does not tile the heap");
  Pointer_table.iter_live
    (fun idx addr ->
      match Hashtbl.find_opt starts addr with
      | Some idx' when idx' = idx -> ()
      | Some _ -> raise (Runtime_error "validate: entry/index mismatch")
      | None -> raise (Runtime_error "validate: entry not at a block start"))
    t.ptable;
  Pointer_table.iter_live
    (fun _ addr ->
      let size = block_size_at t addr in
      for k = 0 to size - 1 do
        match t.store.(addr + header_cells + k) with
        | Value.Vptr (j, _) when j >= 0 ->
          if not (Pointer_table.is_valid t.ptable j) then
            raise (Runtime_error "validate: dangling pointer cell")
        | _ -> ()
      done)
    t.ptable
