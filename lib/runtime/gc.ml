(* Generational, mark-sweep, compacting collection (paper, Section 4).

   Two phases, as in MCC: a fast minor collection that eliminates blocks
   with short live ranges (it only examines the young region), and a major
   collection that sweeps and compacts the entire heap.  Compaction slides
   live blocks towards low addresses in allocation order, preserving
   temporal locality (blocks allocated near each other in time stay near
   each other in memory).  It is possible at all because the pointer table
   gives every block exactly one relocation slot: moving a block updates
   one table entry and zero heap cells.

   Interaction with speculation (paper: "tightly integrated with the
   garbage collector"): checkpoint records reference the ORIGINAL copies of
   modified blocks by address.  The collector treats those originals as
   pinned roots — it marks them, scans their contents, and reports their
   new addresses in the [forward] map so the speculation engine can rewrite
   its records after a collection.  The current pointer-table target of a
   recorded index is marked as well, so a recorded index can never be freed
   and reused while a rollback could still restore it. *)

type kind = Minor | Major

type result = {
  kind : kind;
  forward : (int, int) Hashtbl.t; (* old block address -> new block address *)
  live_blocks : int;
  collected_blocks : int;
  collected_cells : int;
}

(* Process-global collection metrics.  Heaps are per-process but the
   collector itself is a library, so the registry is module-global: every
   collection in the program lands here (the cluster additionally
   attributes collections to nodes through the per-process [on_gc] hook in
   Vm.Process). *)
let metrics = Obs.Metrics.create ()
let c_minor = Obs.Metrics.counter metrics "gc.minor_collections"
let c_major = Obs.Metrics.counter metrics "gc.major_collections"
let c_collected_blocks = Obs.Metrics.counter metrics "gc.collected_blocks"
let c_collected_cells = Obs.Metrics.counter metrics "gc.collected_cells"
let h_live = Obs.Metrics.histogram metrics "gc.live_blocks"

let flag_marked = 1

(* [pinned] is the concatenation of all speculation levels' checkpoint
   records: (pointer-table index, original block address) pairs. *)
let collect heap ~kind ~roots ~pinned =
  let ptable = Heap.pointer_table heap in
  let lo = match kind with Minor -> heap.Heap.young_start | Major -> 0 in
  let hi = heap.Heap.alloc_ptr in
  let in_region addr = addr >= lo && addr < hi in
  let worklist = ref [] in
  let mark addr =
    if in_region addr && Heap.block_flags_at heap addr land flag_marked = 0
    then begin
      Heap.set_block_flags_at heap addr
        (Heap.block_flags_at heap addr lor flag_marked);
      worklist := addr :: !worklist
    end
  in
  let trace_value v =
    match Value.pointer_index v with
    | Some j when Pointer_table.is_valid ptable j ->
      mark (Pointer_table.get ptable j)
    | Some _ | None -> ()
  in
  (* roots: register / continuation values *)
  List.iter trace_value roots;
  (* pinned: speculation originals and the current targets of their
     indices *)
  List.iter
    (fun (idx, old_addr) ->
      mark old_addr;
      if Pointer_table.is_valid ptable idx then
        mark (Pointer_table.get ptable idx))
    pinned;
  (* minor collections additionally root through the remembered set: old
     blocks into which young references were stored *)
  (match kind with
  | Minor ->
    List.iter
      (fun idx ->
        if Pointer_table.is_valid ptable idx then begin
          let addr = Pointer_table.get ptable idx in
          let size = Heap.block_size_at heap addr in
          for k = 0 to size - 1 do
            trace_value heap.Heap.store.(addr + Heap.header_cells + k)
          done
        end)
      (Heap.remembered_indices heap)
  | Major -> ());
  (* transitive marking *)
  let rec drain () =
    match !worklist with
    | [] -> ()
    | addr :: rest ->
      worklist := rest;
      let size = Heap.block_size_at heap addr in
      for k = 0 to size - 1 do
        trace_value heap.Heap.store.(addr + Heap.header_cells + k)
      done;
      drain ()
  in
  drain ();
  (* sweep and compact [lo, hi) *)
  let forward = Hashtbl.create 256 in
  let dst = ref lo in
  let live = ref 0 and dead = ref 0 and dead_cells = ref 0 in
  let addr = ref lo in
  while !addr < hi do
    let size = Heap.block_size_at heap !addr in
    let footprint = Heap.header_cells + size in
    let idx = Heap.block_index_at heap !addr in
    if Heap.block_flags_at heap !addr land flag_marked <> 0 then begin
      (* live: clear the mark, slide down, fix the pointer table if this
         block is the current target of its index *)
      Heap.set_block_flags_at heap !addr
        (Heap.block_flags_at heap !addr land lnot flag_marked);
      if !dst <> !addr then begin
        Array.blit heap.Heap.store !addr heap.Heap.store !dst footprint;
        Hashtbl.replace forward !addr !dst;
        if Pointer_table.is_valid ptable idx
           && Pointer_table.get ptable idx = !addr
        then Pointer_table.set ptable idx !dst
      end;
      dst := !dst + footprint;
      incr live
    end
    else begin
      (* dead: if the pointer table still targets this block, the index
         itself is dead — free the entry for reuse, and forget its dirty
         pages (the delta layer's dirty set is keyed by index, which is
         stable across the compaction slide; freeing is the only event it
         must observe — a later reuse of the slot re-marks on alloc) *)
      if Pointer_table.is_valid ptable idx
         && Pointer_table.get ptable idx = !addr
      then begin
        Pointer_table.free ptable idx;
        Heap.drop_dirty heap idx
      end;
      incr dead;
      dead_cells := !dead_cells + footprint
    end;
    addr := !addr + footprint
  done;
  heap.Heap.alloc_ptr <- !dst;
  (* every survivor is promoted; the young region is now empty and the
     remembered set can be discarded *)
  heap.Heap.young_start <- !dst;
  Heap.clear_remembered heap;
  let stats = Heap.stats heap in
  (match kind with
  | Minor -> stats.Heap.minor_collections <- stats.Heap.minor_collections + 1
  | Major -> stats.Heap.major_collections <- stats.Heap.major_collections + 1);
  stats.Heap.collected_cells <- stats.Heap.collected_cells + !dead_cells;
  (match kind with
  | Minor -> Obs.Metrics.incr c_minor
  | Major -> Obs.Metrics.incr c_major);
  Obs.Metrics.incr ~by:!dead c_collected_blocks;
  Obs.Metrics.incr ~by:!dead_cells c_collected_cells;
  Obs.Metrics.observe h_live (float_of_int !live);
  {
    kind;
    forward;
    live_blocks = !live;
    collected_blocks = !dead;
    collected_cells = !dead_cells;
  }

(* Rewrite a recorded address through the forwarding map. *)
let forward_addr result addr =
  match Hashtbl.find_opt result.forward addr with
  | Some addr' -> addr'
  | None -> addr
