(** Pack and unpack: capturing and reconstructing whole-process state
    (paper, Section 4.2.2).

    Packing stores the live variables into a fresh [migrate_env] block,
    garbage-collects, and snapshots code + tables + heap + speculation
    state.  Unpacking structurally verifies the image, re-typechecks the
    FIR (unless trusted), rebuilds the heap, validates the resume
    arguments against the continuation's signature, and recompiles for
    the local architecture — or takes the binary fast path for a trusted
    same-architecture image. *)

open Vm

exception Unpack_error of string

type packed = {
  p_image : Wire.image;
  p_bytes : string;  (** the encoded full image: what travels cold *)
  p_dirty : (int * int, unit) Hashtbl.t;
      (** (pointer-table index, page) pairs written since the PREVIOUS
          pack of this process — the change set {!delta} may ship *)
}

type unpack_costs = {
  u_bytes : int;
  u_verified : bool;
  u_recompiled : bool;
  u_cache_hit : bool;
      (** typecheck + codegen served from the recompilation cache *)
  u_compile_cycles : int;
    (** simulated recompile+link cycles (link only on the fast path or a
        cache hit) *)
}

val pack :
  ?with_binary:bool ->
  ?epoch:int ->
  ?dspec:Wire.dspec_ctx ->
  Process.t ->
  entry:string -> args:Runtime.Value.t list -> label:int ->
  packed
(** [with_binary] (default true) attaches the compiled MASM payload for
    the same-architecture fast path; FIR-only images force recompilation
    everywhere (the paper's untrusted WAN setting).  [epoch] (default 0)
    stamps the image with the process's rank incarnation epoch, carried
    on hops and checkpoints for fencing.  [dspec] carries the open
    distributed transaction the process coordinates, if any. *)

val pack_request :
  ?with_binary:bool -> ?epoch:int -> ?dspec:Wire.dspec_ctx ->
  Process.t -> packed
(** Pack a process stopped at a migration request.
    @raise Invalid_argument if the process is not [Migrating]. *)

val pack_running :
  ?with_binary:bool -> ?epoch:int -> ?dspec:Wire.dspec_ctx ->
  Process.t -> packed
(** Pack a RUNNING process between basic blocks without its cooperation —
    the CPS continuation is the complete live state, so every inter-step
    boundary is a safe migration point.  The basis for transparent load
    balancing (paper, Sections 4.2.1 and 7).
    @raise Invalid_argument if the process is not [Running]. *)

val delta :
  baseline:Wire.image -> base_digest:string -> packed ->
  (string * Wire.dstats) option
(** Encode a freshly-packed process as a delta against [baseline]
    (identified on the wire by [base_digest], its {!Wire.image_digest}),
    shipping only the pages its dirty set marks.  [None] when a delta is
    impossible (different architecture or FIR payload); whether a
    possible delta is worth sending is the caller's policy. *)

val unpack :
  ?pid:int -> ?seed:int -> ?trusted:bool ->
  ?extern_signatures:Fir.Typecheck.extern_lookup ->
  ?cache:Codecache.t ->
  arch:Arch.t -> string ->
  (Process.t * Masm.image * Compile.image * unpack_costs, string) result
(** Verify and reconstruct a process from image bytes.  [trusted] skips
    verification and enables the binary fast path;
    [extern_signatures] extends the strict typecheck with the host
    environment's externs.  [cache] is the destination node's
    recompilation cache: it is consulted only after the wire layer has
    recomputed the digest over the received bytes and after the
    per-image structural heap verification; a hit elides FIR decode,
    typecheck and codegen (charging link cycles only), a miss runs the
    full pipeline and populates the cache.  The returned
    {!Compile.image} is the closure-compiled form of the returned code
    (embedding its pre-resolved {!Link.image}) — on a cache hit it is
    the entry's memoized one, so repeated migrations of the same program
    never re-link or re-compile: warm hops resume straight into compiled
    code. *)

val unpack_image :
  ?pid:int -> ?seed:int -> ?trusted:bool ->
  ?extern_signatures:Fir.Typecheck.extern_lookup ->
  ?cache:Codecache.t ->
  arch:Arch.t -> bytes_len:int -> Wire.image ->
  (Process.t * Masm.image * Compile.image * unpack_costs, string) result
(** As {!unpack}, from an already-decoded image — the shared tail of the
    full path and the delta path (where the image was reconstructed from
    a retained baseline).  [bytes_len] is the on-the-wire size charged to
    [u_bytes]. *)
