(** The migration server (paper, Section 4.2.1): listens for inbound
    process images, verifies, recompiles and reconstructs them.
    Transport-agnostic — the simulated cluster's daemons and the CLI both
    drive it with received bytes. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}
(** Historical view: a snapshot built from the metrics registry at call
    time (see {!stats}). *)

type t

val create :
  ?trusted:bool ->
  ?extern_signatures:Fir.Typecheck.extern_lookup ->
  ?first_pid:int -> ?cache:Codecache.t -> Arch.t -> t
(** [cache] is this node's recompilation cache (shared with nobody: the
    cache is keyed by architecture and verify mode, but each daemon owns
    its own bounded store). *)

val stats : t -> stats
(** A snapshot of the registry counters in the historical record shape;
    mutating the returned record has no effect on the server. *)

val metrics : t -> Obs.Metrics.t
(** The live registry: counters [server.accepted], [server.rejected],
    [server.bytes_received], [server.recompilations], [server.cache_hits]
    and histograms [server.image_bytes], [server.compile_cycles]. *)

val cache : t -> Codecache.t option

val handle : ?seed:int -> t -> string -> (request_outcome, string) result
(** Handle one inbound migration; assigns a fresh pid on success. *)
