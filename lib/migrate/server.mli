(** The migration server (paper, Section 4.2.1): listens for inbound
    process images, verifies, recompiles and reconstructs them.
    Transport-agnostic — the simulated cluster's daemons and the CLI both
    drive it with received bytes. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
  o_compiled : Compile.image;
      (** closure-compiled form of [o_masm], embedding the pre-resolved
          linked form (cache-shared on a hit) — hand it to
          {!Emulator.create} so resumption never re-links or
          re-compiles *)
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}
(** Historical view: a snapshot built from the metrics registry at call
    time (see {!stats}). *)

(** Typed server configuration — the one way to say everything about a
    daemon.  [cache] is this node's recompilation cache (shared with
    nobody: the cache is keyed by architecture and verify mode, but each
    daemon owns its own bounded store).  [dedup_window] bounds the
    idempotent-receive memory in accepted requests ([0] disables
    deduplication entirely).  [baseline_cache] bounds the retained
    delta baselines ([0] disables delta receive: every delta packet is
    rejected as unknown-baseline and the sender falls back to full
    images). *)
module Config : sig
  type t = {
    trusted : bool;
    extern_signatures : Fir.Typecheck.extern_lookup;
    first_pid : int;
    cache : Codecache.t option;
    dedup_window : int;
    baseline_cache : int;
  }

  val default : t
  (** untrusted, base externs, pids from 1000, no cache, 64-entry dedup
      window, 4 retained baselines *)
end

type t

val create_cfg : Config.t -> Arch.t -> t

val stats : t -> stats
(** A snapshot of the registry counters in the historical record shape;
    mutating the returned record has no effect on the server. *)

val metrics : t -> Obs.Metrics.t
(** The live registry: counters [server.accepted], [server.rejected],
    [server.bytes_received], [server.recompilations],
    [server.cache_hits], [migrate.bytes_full], [migrate.bytes_delta],
    [migrate.delta_hits], [migrate.delta_misses], the gauge
    [migrate.delta_hit_rate], and histograms [server.image_bytes]
    (both packet kinds), [server.compile_cycles]. *)

val cache : t -> Codecache.t option

(** {2 Delta baselines}

    Accepted full images (and successful delta reconstructions) are
    retained, LRU-bounded by [Config.baseline_cache], so a later delta
    packet naming one by {!Wire.image_digest} can be rebuilt locally. *)

val has_baseline : t -> string -> bool
(** Senders negotiate with this before choosing the delta encoding (the
    simulated cluster's stand-in for a baseline-offer handshake). *)

val remember_baseline : ?digest:string -> t -> Wire.image -> string
(** Retain [image] as a delta baseline (LRU, bounded by
    [Config.baseline_cache]; a no-op returning the digest when the bound
    is [0]).  [digest] defaults to [Wire.image_digest image] — pass it
    when already computed.  Senders call this on their OWN daemon after
    packing, so a process bouncing back can arrive as a delta. *)

val baseline_count : t -> int

val clear_baselines : t -> unit
(** Forget every baseline (tests: simulate a receiver restart). *)

val is_unknown_baseline : string -> bool
(** Recognizes the rejection [handle] returns for a delta whose baseline
    this server does not hold (or cannot reconstruct from): the sender's
    cue to fall back to a full image rather than treat the hop as a
    hard failure. *)

val handle : ?seed:int -> t -> string -> (request_outcome, string) result
(** Handle one inbound migration; assigns a fresh pid on success.
    Accepts either packet kind: a full image is retained as a delta
    baseline after acceptance; a delta is reconstructed against the
    baseline it names and digest-verified before the normal
    verification pipeline runs ({!is_unknown_baseline} rejections when
    the baseline is missing or stale).  No deduplication: every call is
    treated as a distinct request (the transport owns delivery
    semantics).  Prefer {!receive} when the transport can retry or
    duplicate. *)

(** {2 Idempotent receive} *)

type delivery =
  | Fresh of request_outcome  (** first delivery: a process was built *)
  | Duplicate of request_outcome
      (** the key was seen before; the ORIGINAL outcome is returned and
          nothing new was spawned.  Callers must treat this as "already
          delivered" — the embedded process may have run since. *)

val delivery_key : string -> string
(** The content half of the delivery identity: the digest of the encoded
    image bytes. *)

val receive :
  ?seed:int -> ?key:string -> t -> string -> (delivery, string) result
(** Handle one delivery idempotently.  [key] (default
    [delivery_key bytes]) identifies the logical delivery; transports
    that can carry an envelope id should append it so retransmissions of
    one hop share a key while distinct migrations of byte-identical
    images do not collide.  Accepted requests are remembered in a
    bounded FIFO ([Config.dedup_window]); rejections are not (a retried
    hop may succeed later). *)
