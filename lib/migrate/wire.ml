(* The architecture-independent process image format (paper, Section 4.2).

   A packed process contains, in order: the FIR code, the function table
   (name order preserved), the pointer table snapshot (index order
   preserved — Section 4.2.2), the raw heap cells under standard encoding
   rules, the speculation snapshot, and the resume point (the migrate_env
   block index, the continuation function name, and the migration label).
   An optional MASM payload rides along for the same-architecture binary
   fast path; heterogeneous targets ignore it and recompile from FIR.

   All integers are little-endian fixed-width regardless of the (simulated)
   source architecture's endianness or word size: this is the "standard
   byte ordering and alignment rules on heap data" that make cross-
   architecture migration possible without guessing at C data layouts. *)

open Runtime

exception Corrupt = Fir.Serial.Corrupt

let magic = "MPRC"

(* v6: the header carries the sender-computed content digest of the FIR
   payload (Fir.Digest).  [decode] recomputes it over the received bytes
   and rejects mismatches, so anything downstream — the recompilation
   cache in particular — can rely on the digest naming exactly the bytes
   that arrived.  The digest is integrity metadata only; it never stands
   in for verification or typechecking. *)
let version = 6

type image = {
  i_arch : string; (* source architecture name *)
  i_digest : string; (* Fir.Digest of i_fir, recomputed on receipt *)
  i_fir : string; (* Fir.Serial encoding of the program *)
  i_masm : string option; (* binary payload for the same-arch fast path *)
  i_ftable : string list;
  i_ptable : int array;
  i_cells : Value.t array;
  i_spec : Spec.Engine.snapshot_level list;
  i_menv : int; (* pointer-table index of the migrate_env block *)
  i_entry : string; (* continuation function *)
  i_label : int; (* migration label *)
}

(* ------------------------------------------------------------------ *)
(* Value cells                                                         *)
(* ------------------------------------------------------------------ *)

open struct
  let put_u8 = Fir.Serial.put_u8
  let put_i64 = Fir.Serial.put_i64
  let put_string = Fir.Serial.put_string
  let put_list = Fir.Serial.put_list
  let put_f64 = Fir.Serial.put_f64_bits
  let get_u8 = Fir.Serial.get_u8
  let get_i64 = Fir.Serial.get_i64
  let get_string = Fir.Serial.get_string
  let get_list = Fir.Serial.get_list
  let get_f64 = Fir.Serial.get_f64_bits
end

let put_value buf = function
  | Value.Vunit -> put_u8 buf 0
  | Value.Vint n ->
    put_u8 buf 1;
    put_i64 buf n
  | Value.Vfloat f ->
    put_u8 buf 2;
    put_f64 buf f
  | Value.Vbool b ->
    put_u8 buf 3;
    put_u8 buf (if b then 1 else 0)
  | Value.Venum (c, v) ->
    put_u8 buf 4;
    put_i64 buf c;
    put_i64 buf v
  | Value.Vptr (i, o) ->
    put_u8 buf 5;
    put_i64 buf i;
    put_i64 buf o
  | Value.Vfun f ->
    put_u8 buf 6;
    put_i64 buf f

let get_value r =
  match get_u8 r with
  | 0 -> Value.Vunit
  | 1 -> Value.Vint (get_i64 r)
  | 2 -> Value.Vfloat (get_f64 r)
  | 3 -> Value.Vbool (get_u8 r <> 0)
  | 4 ->
    let c = get_i64 r in
    let v = get_i64 r in
    Value.Venum (c, v)
  | 5 ->
    let i = get_i64 r in
    let o = get_i64 r in
    Value.Vptr (i, o)
  | 6 -> Value.Vfun (get_i64 r)
  | n -> raise (Corrupt (Printf.sprintf "bad value tag %d" n))

let put_spec_level buf (s : Spec.Engine.snapshot_level) =
  put_string buf s.Spec.Engine.s_entry;
  put_list buf put_value s.Spec.Engine.s_args;
  put_list buf
    (fun buf (idx, addr) ->
      put_i64 buf idx;
      put_i64 buf addr)
    s.Spec.Engine.s_saved

let get_spec_level r =
  let s_entry = get_string r in
  let s_args = get_list r get_value in
  let s_saved =
    get_list r (fun r ->
        let idx = get_i64 r in
        let addr = get_i64 r in
        idx, addr)
  in
  { Spec.Engine.s_entry; s_args; s_saved }

(* ------------------------------------------------------------------ *)
(* Image codec                                                         *)
(* ------------------------------------------------------------------ *)

let encode image =
  let body = Buffer.create 65536 in
  put_string body image.i_arch;
  put_string body image.i_digest;
  put_string body image.i_fir;
  (match image.i_masm with
  | None -> put_u8 body 0
  | Some payload ->
    put_u8 body 1;
    put_string body payload);
  put_list body put_string image.i_ftable;
  put_i64 body (Array.length image.i_ptable);
  Array.iter (put_i64 body) image.i_ptable;
  put_i64 body (Array.length image.i_cells);
  Array.iter (put_value body) image.i_cells;
  put_list body put_spec_level image.i_spec;
  put_i64 body image.i_menv;
  put_string body image.i_entry;
  put_i64 body image.i_label;
  let body = Buffer.contents body in
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf magic;
  put_i64 buf version;
  put_i64 buf (Fir.Serial.adler32 body);
  put_i64 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let decode s =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) magic) then
    raise (Corrupt "bad process-image magic");
  let r = { Fir.Serial.data = s; pos = 4 } in
  let v = get_i64 r in
  if v <> version then raise (Corrupt "process-image version mismatch");
  let sum = get_i64 r in
  let len = get_i64 r in
  if len < 0 || r.Fir.Serial.pos + len > String.length s then
    raise (Corrupt "bad process-image length");
  let body = String.sub s r.Fir.Serial.pos len in
  if Fir.Serial.adler32 body <> sum then
    raise (Corrupt "process-image checksum mismatch");
  let r = { Fir.Serial.data = body; pos = 0 } in
  let i_arch = get_string r in
  let i_digest = get_string r in
  let i_fir = get_string r in
  (* the digest names the FIR content; recompute it over the bytes that
     actually arrived BEFORE anything (the recompilation cache included)
     can key off it *)
  if not (String.equal (Fir.Digest.of_encoded i_fir) i_digest) then
    raise (Corrupt "FIR digest mismatch");
  let i_masm = match get_u8 r with
    | 0 -> None
    | 1 -> Some (get_string r)
    | n -> raise (Corrupt (Printf.sprintf "bad masm flag %d" n))
  in
  let i_ftable = get_list r get_string in
  let nptable = get_i64 r in
  if nptable < 0 || nptable > 100_000_000 then
    raise (Corrupt "bad pointer-table size");
  let i_ptable = Array.init nptable (fun _ -> get_i64 r) in
  let ncells = get_i64 r in
  if ncells < 0 || ncells > 1_000_000_000 then
    raise (Corrupt "bad heap size");
  let i_cells = Array.init ncells (fun _ -> get_value r) in
  let i_spec = get_list r get_spec_level in
  let i_menv = get_i64 r in
  let i_entry = get_string r in
  let i_label = get_i64 r in
  if r.Fir.Serial.pos <> String.length body then
    raise (Corrupt "trailing garbage in process image");
  {
    i_arch;
    i_digest;
    i_fir;
    i_masm;
    i_ftable;
    i_ptable;
    i_cells;
    i_spec;
    i_menv;
    i_entry;
    i_label;
  }

(* ------------------------------------------------------------------ *)
(* Structural verification                                             *)
(* ------------------------------------------------------------------ *)

(* The safety checks a migration target applies to a received heap before
   resuming it: the block chain must tile the cell array exactly, every
   pointer-table entry must target a block header carrying its own index,
   every reference cell must point into the table (or be nil), every
   function value must be in the function table, and every speculation
   record must reference a valid block.  Together with the FIR typecheck
   this is what lets mutually untrusting machines exchange processes. *)
let verify image =
  let ncells = Array.length image.i_cells in
  let nfuns = List.length image.i_ftable in
  let header_at addr k =
    match image.i_cells.(addr + k) with
    | Value.Vint n -> n
    | _ -> raise (Corrupt "non-integer block header cell")
  in
  (* walk the block chain *)
  let starts = Hashtbl.create 256 in
  let addr = ref 0 in
  while !addr < ncells do
    if !addr + Heap.header_cells > ncells then
      raise (Corrupt "truncated block header");
    let size = header_at !addr Heap.h_size in
    let idx = header_at !addr Heap.h_index in
    if size < 0 || !addr + Heap.header_cells + size > ncells then
      raise (Corrupt "block overruns heap");
    ignore (Heap.tag_of_code (header_at !addr Heap.h_tag));
    Hashtbl.replace starts !addr idx;
    addr := !addr + Heap.header_cells + size
  done;
  if !addr <> ncells then raise (Corrupt "block chain does not tile heap");
  (* pointer-table entries target their own blocks *)
  Array.iteri
    (fun idx addr ->
      if addr <> -1 then
        match Hashtbl.find_opt starts addr with
        | Some idx' when idx' = idx -> ()
        | Some _ -> raise (Corrupt "pointer-table entry index mismatch")
        | None -> raise (Corrupt "pointer-table entry not at a block start"))
    image.i_ptable;
  (* reference and function cells *)
  let check_value v =
    match v with
    | Value.Vptr (-1, _) -> () (* nil *)
    | Value.Vptr (i, _) ->
      if i < 0 || i >= Array.length image.i_ptable
         || image.i_ptable.(i) = -1
      then raise (Corrupt "heap cell references an invalid pointer index")
    | Value.Vfun f ->
      if f < 0 || f >= nfuns then
        raise (Corrupt "heap cell references an invalid function index")
    | Value.Vunit | Value.Vint _ | Value.Vfloat _ | Value.Vbool _
    | Value.Venum _ ->
      ()
  in
  Hashtbl.iter
    (fun addr _ ->
      let size = header_at addr Heap.h_size in
      for k = 0 to size - 1 do
        check_value image.i_cells.(addr + Heap.header_cells + k)
      done)
    starts;
  (* speculation records reference valid blocks with matching indices *)
  List.iter
    (fun s ->
      List.iter check_value s.Spec.Engine.s_args;
      List.iter
        (fun (idx, addr) ->
          match Hashtbl.find_opt starts addr with
          | Some idx' when idx' = idx -> ()
          | Some _ | None ->
            raise (Corrupt "speculation record references a bad block"))
        s.Spec.Engine.s_saved)
    image.i_spec;
  (* the migrate_env block must be a live pointer-table target *)
  if image.i_menv < 0
     || image.i_menv >= Array.length image.i_ptable
     || image.i_ptable.(image.i_menv) = -1
  then raise (Corrupt "migrate_env index is invalid")

let byte_size image = String.length (encode image)
