(* The architecture-independent process image format (paper, Section 4.2).

   A packed process contains, in order: the FIR code, the function table
   (name order preserved), the pointer table snapshot (index order
   preserved — Section 4.2.2), the raw heap cells under standard encoding
   rules, the speculation snapshot, and the resume point (the migrate_env
   block index, the continuation function name, and the migration label).
   An optional MASM payload rides along for the same-architecture binary
   fast path; heterogeneous targets ignore it and recompile from FIR.

   All integers are little-endian regardless of the (simulated) source
   architecture's endianness or word size: this is the "standard byte
   ordering and alignment rules on heap data" that make cross-architecture
   migration possible without guessing at C data layouts. *)

open Runtime

exception Corrupt = Fir.Serial.Corrupt

let magic = "MPRC"

(* v7: two packet kinds share the frame.  A FULL packet is the complete
   image (as in v6, but with varint/run-length heap segments).  A DELTA
   packet names a baseline image by content digest and carries only the
   blocks that changed since that baseline was packed; the FIR, MASM and
   function table never travel again.  v8 appends the rank incarnation
   epoch to both kinds: resurrection bumps it, hops and checkpoints
   carry it, and the cluster fences stale incarnations on it.  v9
   appends the optional distributed-speculation context: when the
   migrating process coordinates an open distributed transaction, the
   transaction id, the root level's position in the speculation
   snapshot, the coordinating service's logical address and the
   participant (rank, epoch) set travel with the image so the
   destination can re-register the rebound coordinator.  [decode]
   recomputes the FIR digest
   over the received bytes of a full packet and rejects mismatches, so
   anything downstream — the recompilation cache in particular — can rely
   on the digest naming exactly the bytes that arrived.  Digests are
   integrity metadata only; they never stand in for verification or
   typechecking. *)
let version = 9

let kind_full = 0
let kind_delta = 1

(* The distributed-speculation context of a migrating coordinator (v9):
   enough for the destination to re-register the process — under its new
   pid and translated level uids — with the cluster-global transaction
   table.  [x_root] is the root level's position in [i_spec] (oldest
   first): stable level UIDS are engine-local and do not survive
   restore, but snapshot order does. *)
type dspec_ctx = {
  x_txn : int; (* transaction id in the cluster's table *)
  x_root : int; (* index of the root level in i_spec, oldest first *)
  x_coord_laddr : int; (* coordinating service's laddr, -1 if none *)
  x_parts : (int * int) list; (* participant (rank, epoch) pins *)
}

type image = {
  i_arch : string; (* source architecture name *)
  i_digest : string; (* Fir.Digest of i_fir, recomputed on receipt *)
  i_fir : string; (* Fir.Serial encoding of the program *)
  i_masm : string option; (* binary payload for the same-arch fast path *)
  i_ftable : string list;
  i_ptable : int array;
  i_cells : Value.t array;
  i_spec : Spec.Engine.snapshot_level list;
  i_menv : int; (* pointer-table index of the migrate_env block *)
  i_entry : string; (* continuation function *)
  i_label : int; (* migration label *)
  i_epoch : int;
      (* rank incarnation epoch (v8): bumped on every resurrection and
         carried on hops and checkpoints so stale incarnations can be
         fenced; 0 for processes with no rank *)
  i_dspec : dspec_ctx option;
      (* distributed-speculation context (v9): present while the process
         coordinates an open transaction *)
}

(* ------------------------------------------------------------------ *)
(* Value cells                                                         *)
(* ------------------------------------------------------------------ *)

open struct
  let put_u8 = Fir.Serial.put_u8
  let put_i64 = Fir.Serial.put_i64
  let put_uvarint = Fir.Serial.put_uvarint
  let put_varint = Fir.Serial.put_varint
  let put_string = Fir.Serial.put_string
  let put_list = Fir.Serial.put_list
  let put_f64 = Fir.Serial.put_f64_bits
  let get_u8 = Fir.Serial.get_u8
  let get_i64 = Fir.Serial.get_i64
  let get_uvarint = Fir.Serial.get_uvarint
  let get_varint = Fir.Serial.get_varint
  let get_string = Fir.Serial.get_string
  let get_list = Fir.Serial.get_list
  let get_f64 = Fir.Serial.get_f64_bits
end

(* Integers dominate heap segments (block headers, counters, enum
   payloads), and most are small: zigzag varints where v6 spent fixed
   eight-byte words. *)
let put_value buf = function
  | Value.Vunit -> put_u8 buf 0
  | Value.Vint n ->
    put_u8 buf 1;
    put_varint buf n
  | Value.Vfloat f ->
    put_u8 buf 2;
    put_f64 buf f
  | Value.Vbool b ->
    put_u8 buf 3;
    put_u8 buf (if b then 1 else 0)
  | Value.Venum (c, v) ->
    put_u8 buf 4;
    put_varint buf c;
    put_varint buf v
  | Value.Vptr (i, o) ->
    put_u8 buf 5;
    put_varint buf i;
    put_varint buf o
  | Value.Vfun f ->
    put_u8 buf 6;
    put_varint buf f

let get_value r =
  match get_u8 r with
  | 0 -> Value.Vunit
  | 1 -> Value.Vint (get_varint r)
  | 2 -> Value.Vfloat (get_f64 r)
  | 3 -> Value.Vbool (get_u8 r <> 0)
  | 4 ->
    let c = get_varint r in
    let v = get_varint r in
    Value.Venum (c, v)
  | 5 ->
    let i = get_varint r in
    let o = get_varint r in
    Value.Vptr (i, o)
  | 6 -> Value.Vfun (get_varint r)
  | n -> raise (Corrupt (Printf.sprintf "bad value tag %d" n))

(* Bit-exact cell equality.  Stdlib polymorphic equality is wrong for
   floats here: it conflates -0.0 with 0.0 (distinct bit patterns that
   must survive a round trip byte-identically) and makes NaN unequal to
   itself (which would break every run containing one).  Compare the
   transported representation instead. *)
let cell_equal a b =
  match a, b with
  | Value.Vfloat x, Value.Vfloat y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

(* Run-length heap segments: uvarint run count, then the cell once.
   Initialised arrays and freshly-zeroed pages collapse to a few bytes;
   the worst case (no two adjacent cells equal) costs one extra byte per
   cell, which the varint integer encoding more than buys back. *)
let put_cells buf cells lo len =
  let i = ref lo in
  let hi = lo + len in
  while !i < hi do
    let v = cells.(!i) in
    let j = ref (!i + 1) in
    while !j < hi && cell_equal cells.(!j) v do
      incr j
    done;
    put_uvarint buf (!j - !i);
    put_value buf v;
    i := !j
  done

let get_cells r dst lo len =
  let i = ref lo in
  let hi = lo + len in
  while !i < hi do
    let run = get_uvarint r in
    if run <= 0 || !i + run > hi then
      raise (Corrupt "bad heap-segment run length");
    let v = get_value r in
    Array.fill dst !i run v;
    i := !i + run
  done

let put_ptable buf ptable =
  put_uvarint buf (Array.length ptable);
  Array.iter (put_varint buf) ptable

let get_ptable r =
  let n = get_uvarint r in
  if n > 100_000_000 then raise (Corrupt "bad pointer-table size");
  Array.init n (fun _ -> get_varint r)

let put_spec_level buf (s : Spec.Engine.snapshot_level) =
  put_string buf s.Spec.Engine.s_entry;
  put_list buf put_value s.Spec.Engine.s_args;
  put_list buf
    (fun buf (idx, addr) ->
      put_varint buf idx;
      put_varint buf addr)
    s.Spec.Engine.s_saved

let get_spec_level r =
  let s_entry = get_string r in
  let s_args = get_list r get_value in
  let s_saved =
    get_list r (fun r ->
        let idx = get_varint r in
        let addr = get_varint r in
        idx, addr)
  in
  { Spec.Engine.s_entry; s_args; s_saved }

let put_dspec buf = function
  | None -> put_u8 buf 0
  | Some c ->
    put_u8 buf 1;
    put_varint buf c.x_txn;
    put_varint buf c.x_root;
    put_varint buf c.x_coord_laddr;
    put_list buf
      (fun buf (r, e) ->
        put_varint buf r;
        put_varint buf e)
      c.x_parts

let get_dspec r =
  match get_u8 r with
  | 0 -> None
  | 1 ->
    let x_txn = get_varint r in
    let x_root = get_varint r in
    let x_coord_laddr = get_varint r in
    let x_parts =
      get_list r (fun r ->
          let rank = get_varint r in
          let epoch = get_varint r in
          rank, epoch)
    in
    if x_txn < 0 || x_root < 0 then
      raise (Corrupt "bad distributed-speculation context");
    Some { x_txn; x_root; x_coord_laddr; x_parts }
  | n -> raise (Corrupt (Printf.sprintf "bad dspec flag %d" n))

(* ------------------------------------------------------------------ *)
(* Image content digest                                                *)
(* ------------------------------------------------------------------ *)

(* Content address of an image's SEMANTIC payload: architecture, FIR
   digest, function table, pointer table, heap cells, speculation
   snapshot and resume point.  Deliberately excludes the raw FIR bytes
   (the digest already names them) and the MASM payload (a delta-
   reconstructed image inherits the baseline's binary, which may differ
   from what the sender would have attached) — so sender and receiver
   compute identical digests for semantically identical images. *)
let image_digest image =
  let buf = Buffer.create 65536 in
  put_string buf image.i_arch;
  put_string buf image.i_digest;
  put_list buf put_string image.i_ftable;
  put_ptable buf image.i_ptable;
  put_uvarint buf (Array.length image.i_cells);
  put_cells buf image.i_cells 0 (Array.length image.i_cells);
  put_list buf put_spec_level image.i_spec;
  put_varint buf image.i_menv;
  put_string buf image.i_entry;
  put_varint buf image.i_label;
  (* i_epoch and i_dspec are deliberately excluded: they are incarnation
     and transaction METADATA, not semantic payload — two incarnations
     of the same state must share a baseline digest so delta negotiation
     still works across a resurrection, and opening a transaction must
     not invalidate a retained baseline *)
  Fir.Serial.encoded_digest (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Delta images                                                        *)
(* ------------------------------------------------------------------ *)

(* One entry per block of the NEW heap, in block-chain order; the
   receiver rebuilds the cell array by appending them.  [Dcopy] and
   [Dpatch] pull the block's bytes out of the named baseline image, so
   only genuinely-dirty ranges travel. *)
type dblock =
  | Dcopy of int  (* unchanged: baseline block for this index, verbatim *)
  | Dlit of { idx : int; tag : int; cells : Value.t array }
      (* new or reshaped block: full payload *)
  | Dpatch of { idx : int; ranges : (int * Value.t array) list }
      (* same shape as baseline: overwrite (offset, cells) ranges *)

type delta = {
  d_arch : string;
  d_base : string; (* image_digest of the baseline this patches *)
  d_fir_digest : string; (* must equal the baseline's i_digest *)
  d_new_digest : string; (* image_digest of the reconstruction *)
  d_ptable : int array;
  d_blocks : dblock list;
  d_spec : Spec.Engine.snapshot_level list;
  d_menv : int;
  d_entry : string;
  d_label : int;
  d_epoch : int; (* incarnation epoch of the reconstruction *)
  d_dspec : dspec_ctx option; (* transaction context of the reconstruction *)
}

type packet = Full of image | Delta of delta

type dstats = {
  ds_blocks : int;
  ds_copy : int;
  ds_patch : int;
  ds_lit : int;
  ds_shipped_cells : int; (* data cells that travel in the delta *)
  ds_total_cells : int; (* data cells in the new image *)
}

(* Block map of an image: pointer-table index -> (addr, tag code, size).
   Indices are unique within a well-formed image (verify checks this);
   building the map does not require a verified image, only a tiling
   block chain, which the walk itself checks. *)
let block_map image =
  let ncells = Array.length image.i_cells in
  let header_at addr k =
    match image.i_cells.(addr + k) with
    | Value.Vint n -> n
    | _ -> raise (Corrupt "non-integer block header cell")
  in
  let map = Hashtbl.create 256 in
  let addr = ref 0 in
  while !addr < ncells do
    if !addr + Heap.header_cells > ncells then
      raise (Corrupt "truncated block header");
    let size = header_at !addr Heap.h_size in
    let idx = header_at !addr Heap.h_index in
    let tag = header_at !addr Heap.h_tag in
    if size < 0 || !addr + Heap.header_cells + size > ncells then
      raise (Corrupt "block overruns heap");
    Hashtbl.replace map idx (!addr, tag, size);
    addr := !addr + Heap.header_cells + size
  done;
  if !addr <> ncells then raise (Corrupt "block chain does not tile heap");
  map

(* Compute the delta between [baseline] and [image].  [changed idx page]
   reports whether the heap's dirty tracking saw a write to that
   {!Heap.dirty_page_cells}-cell page of the block at pointer-table index
   [idx] since [baseline] was packed (see Heap: a clean page is
   guaranteed identical to the baseline).  Blocks whose index is absent
   from the baseline, or whose tag or size differ, ship in full. *)
let diff ~baseline ~image ~changed =
  let base = block_map baseline in
  let blocks = ref [] in
  let copy = ref 0 and patch = ref 0 and lit = ref 0 in
  let shipped = ref 0 and total = ref 0 in
  let ncells = Array.length image.i_cells in
  let header_at addr k =
    match image.i_cells.(addr + k) with
    | Value.Vint n -> n
    | _ -> raise (Corrupt "non-integer block header cell")
  in
  let addr = ref 0 in
  while !addr < ncells do
    if !addr + Heap.header_cells > ncells then
      raise (Corrupt "truncated block header");
    let size = header_at !addr Heap.h_size in
    let idx = header_at !addr Heap.h_index in
    let tag = header_at !addr Heap.h_tag in
    if size < 0 || !addr + Heap.header_cells + size > ncells then
      raise (Corrupt "block overruns heap");
    total := !total + size;
    let data = !addr + Heap.header_cells in
    (match Hashtbl.find_opt base idx with
    | Some (_, btag, bsize) when btag = tag && bsize = size ->
      (* same shape: collect maximal runs of contiguous dirty pages *)
      let npages = Heap.pages_of_size size in
      let ranges = ref [] in
      let p = ref 0 in
      while !p < npages do
        if changed idx !p then begin
          let q = ref (!p + 1) in
          while !q < npages && changed idx !q do
            incr q
          done;
          let off = !p * Heap.dirty_page_cells in
          let len = min (!q * Heap.dirty_page_cells) size - off in
          ranges := (off, Array.sub image.i_cells (data + off) len) :: !ranges;
          shipped := !shipped + len;
          p := !q
        end
        else incr p
      done;
      if !ranges = [] then begin
        blocks := Dcopy idx :: !blocks;
        incr copy
      end
      else begin
        blocks := Dpatch { idx; ranges = List.rev !ranges } :: !blocks;
        incr patch
      end
    | Some _ | None ->
      blocks :=
        Dlit { idx; tag; cells = Array.sub image.i_cells data size }
        :: !blocks;
      shipped := !shipped + size;
      incr lit);
    addr := !addr + Heap.header_cells + size
  done;
  if !addr <> ncells then raise (Corrupt "block chain does not tile heap");
  ( List.rev !blocks,
    {
      ds_blocks = !copy + !patch + !lit;
      ds_copy = !copy;
      ds_patch = !patch;
      ds_lit = !lit;
      ds_shipped_cells = !shipped;
      ds_total_cells = !total;
    } )

(* Reconstruct the new image from [baseline] and a delta.  The FIR, MASM
   payload and function table are inherited from the baseline; the
   rebuilt image's content digest must match [d_new_digest] — a mismatch
   means the sender's dirty tracking and our baseline disagree, and the
   caller must fall back to requesting a full image. *)
let apply_delta ~baseline delta =
  if not (String.equal delta.d_arch baseline.i_arch) then
    raise (Corrupt "delta architecture does not match baseline");
  if not (String.equal delta.d_fir_digest baseline.i_digest) then
    raise (Corrupt "delta FIR digest does not match baseline");
  let base = block_map baseline in
  let buf = ref [] in
  let n = ref 0 in
  let push v =
    buf := v :: !buf;
    incr n
  in
  let header idx tag size =
    push (Value.Vint idx);
    push (Value.Vint tag);
    push (Value.Vint size);
    push (Value.Vint 0) (* collector flags are always clear in an image *)
  in
  List.iter
    (fun db ->
      match db with
      | Dcopy idx ->
        (match Hashtbl.find_opt base idx with
        | None -> raise (Corrupt "delta copies a block absent from baseline")
        | Some (addr, tag, size) ->
          header idx tag size;
          for k = 0 to size - 1 do
            push baseline.i_cells.(addr + Heap.header_cells + k)
          done)
      | Dlit { idx; tag; cells } ->
        ignore (Heap.tag_of_code tag);
        header idx tag (Array.length cells);
        Array.iter push cells
      | Dpatch { idx; ranges } ->
        (match Hashtbl.find_opt base idx with
        | None -> raise (Corrupt "delta patches a block absent from baseline")
        | Some (addr, tag, size) ->
          header idx tag size;
          let data = Array.sub baseline.i_cells (addr + Heap.header_cells) size in
          List.iter
            (fun (off, cells) ->
              let len = Array.length cells in
              if off < 0 || len < 0 || off + len > size then
                raise (Corrupt "delta patch range overruns block");
              Array.blit cells 0 data off len)
            ranges;
          Array.iter push data))
    delta.d_blocks;
  let i_cells = Array.make !n Value.Vunit in
  List.iteri (fun k v -> i_cells.(!n - 1 - k) <- v) !buf;
  let image =
    {
      baseline with
      i_ptable = delta.d_ptable;
      i_cells;
      i_spec = delta.d_spec;
      i_menv = delta.d_menv;
      i_entry = delta.d_entry;
      i_label = delta.d_label;
      i_epoch = delta.d_epoch;
      i_dspec = delta.d_dspec;
    }
  in
  if not (String.equal (image_digest image) delta.d_new_digest) then
    raise (Corrupt "delta reconstruction digest mismatch");
  image

(* ------------------------------------------------------------------ *)
(* Packet codec                                                        *)
(* ------------------------------------------------------------------ *)

let frame body =
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf magic;
  put_i64 buf version;
  put_i64 buf (Fir.Serial.adler32 body);
  put_i64 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let unframe s =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) magic) then
    raise (Corrupt "bad process-image magic");
  let r = { Fir.Serial.data = s; pos = 4 } in
  let v = get_i64 r in
  if v <> version then raise (Corrupt "process-image version mismatch");
  let sum = get_i64 r in
  let len = get_i64 r in
  if len < 0 || r.Fir.Serial.pos + len > String.length s then
    raise (Corrupt "bad process-image length");
  let body = String.sub s r.Fir.Serial.pos len in
  if Fir.Serial.adler32 body <> sum then
    raise (Corrupt "process-image checksum mismatch");
  body

let encode image =
  let body = Buffer.create 65536 in
  put_u8 body kind_full;
  put_string body image.i_arch;
  put_string body image.i_digest;
  put_string body image.i_fir;
  (match image.i_masm with
  | None -> put_u8 body 0
  | Some payload ->
    put_u8 body 1;
    put_string body payload);
  put_list body put_string image.i_ftable;
  put_ptable body image.i_ptable;
  put_uvarint body (Array.length image.i_cells);
  put_cells body image.i_cells 0 (Array.length image.i_cells);
  put_list body put_spec_level image.i_spec;
  put_varint body image.i_menv;
  put_string body image.i_entry;
  put_varint body image.i_label;
  put_varint body image.i_epoch;
  put_dspec body image.i_dspec;
  frame (Buffer.contents body)

let get_image r =
  let i_arch = get_string r in
  let i_digest = get_string r in
  let i_fir = get_string r in
  (* the digest names the FIR content; recompute it over the bytes that
     actually arrived BEFORE anything (the recompilation cache included)
     can key off it *)
  if not (String.equal (Fir.Digest.of_encoded i_fir) i_digest) then
    raise (Corrupt "FIR digest mismatch");
  let i_masm =
    match get_u8 r with
    | 0 -> None
    | 1 -> Some (get_string r)
    | n -> raise (Corrupt (Printf.sprintf "bad masm flag %d" n))
  in
  let i_ftable = get_list r get_string in
  let i_ptable = get_ptable r in
  let ncells = get_uvarint r in
  if ncells > 1_000_000_000 then raise (Corrupt "bad heap size");
  let i_cells = Array.make ncells Value.Vunit in
  get_cells r i_cells 0 ncells;
  let i_spec = get_list r get_spec_level in
  let i_menv = get_varint r in
  let i_entry = get_string r in
  let i_label = get_varint r in
  let i_epoch = get_varint r in
  if i_epoch < 0 then raise (Corrupt "negative incarnation epoch");
  let i_dspec = get_dspec r in
  {
    i_arch;
    i_digest;
    i_fir;
    i_masm;
    i_ftable;
    i_ptable;
    i_cells;
    i_spec;
    i_menv;
    i_entry;
    i_label;
    i_epoch;
    i_dspec;
  }

let put_dblock buf = function
  | Dcopy idx ->
    put_u8 buf 0;
    put_varint buf idx
  | Dlit { idx; tag; cells } ->
    put_u8 buf 1;
    put_varint buf idx;
    put_u8 buf tag;
    put_uvarint buf (Array.length cells);
    put_cells buf cells 0 (Array.length cells)
  | Dpatch { idx; ranges } ->
    put_u8 buf 2;
    put_varint buf idx;
    put_uvarint buf (List.length ranges);
    List.iter
      (fun (off, cells) ->
        put_uvarint buf off;
        put_uvarint buf (Array.length cells);
        put_cells buf cells 0 (Array.length cells))
      ranges

let get_dblock r =
  match get_u8 r with
  | 0 -> Dcopy (get_varint r)
  | 1 ->
    let idx = get_varint r in
    let tag = get_u8 r in
    let size = get_uvarint r in
    if size > 1_000_000_000 then raise (Corrupt "bad delta block size");
    let cells = Array.make size Value.Vunit in
    get_cells r cells 0 size;
    Dlit { idx; tag; cells }
  | 2 ->
    let idx = get_varint r in
    let nranges = get_uvarint r in
    if nranges > 100_000_000 then raise (Corrupt "bad delta range count");
    let ranges =
      List.init nranges (fun _ ->
          let off = get_uvarint r in
          let len = get_uvarint r in
          if len > 1_000_000_000 then raise (Corrupt "bad delta range length");
          let cells = Array.make len Value.Vunit in
          get_cells r cells 0 len;
          off, cells)
    in
    Dpatch { idx; ranges }
  | n -> raise (Corrupt (Printf.sprintf "bad delta block kind %d" n))

let encode_delta delta =
  let body = Buffer.create 8192 in
  put_u8 body kind_delta;
  put_string body delta.d_arch;
  put_string body delta.d_base;
  put_string body delta.d_fir_digest;
  put_string body delta.d_new_digest;
  put_ptable body delta.d_ptable;
  put_uvarint body (List.length delta.d_blocks);
  List.iter (put_dblock body) delta.d_blocks;
  put_list body put_spec_level delta.d_spec;
  put_varint body delta.d_menv;
  put_string body delta.d_entry;
  put_varint body delta.d_label;
  put_varint body delta.d_epoch;
  put_dspec body delta.d_dspec;
  frame (Buffer.contents body)

let get_delta r =
  let d_arch = get_string r in
  let d_base = get_string r in
  let d_fir_digest = get_string r in
  let d_new_digest = get_string r in
  let d_ptable = get_ptable r in
  let nblocks = get_uvarint r in
  if nblocks > 100_000_000 then raise (Corrupt "bad delta block count");
  let d_blocks = List.init nblocks (fun _ -> get_dblock r) in
  let d_spec = get_list r get_spec_level in
  let d_menv = get_varint r in
  let d_entry = get_string r in
  let d_label = get_varint r in
  let d_epoch = get_varint r in
  if d_epoch < 0 then raise (Corrupt "negative incarnation epoch");
  let d_dspec = get_dspec r in
  {
    d_arch;
    d_base;
    d_fir_digest;
    d_new_digest;
    d_ptable;
    d_blocks;
    d_spec;
    d_menv;
    d_entry;
    d_label;
    d_epoch;
    d_dspec;
  }

let decode_packet s =
  let body = unframe s in
  let r = { Fir.Serial.data = body; pos = 0 } in
  let kind = get_u8 r in
  let packet =
    if kind = kind_full then Full (get_image r)
    else if kind = kind_delta then Delta (get_delta r)
    else raise (Corrupt (Printf.sprintf "bad packet kind %d" kind))
  in
  if r.Fir.Serial.pos <> String.length body then
    raise (Corrupt "trailing garbage in process image");
  packet

let decode s =
  match decode_packet s with
  | Full image -> image
  | Delta _ -> raise (Corrupt "delta packet where a full image was expected")

(* ------------------------------------------------------------------ *)
(* Structural verification                                             *)
(* ------------------------------------------------------------------ *)

(* The safety checks a migration target applies to a received heap before
   resuming it: the block chain must tile the cell array exactly, every
   pointer-table entry must target a block header carrying its own index,
   every reference cell must point into the table (or be nil), every
   function value must be in the function table, and every speculation
   record must reference a valid block.  Together with the FIR typecheck
   this is what lets mutually untrusting machines exchange processes. *)
let verify image =
  let ncells = Array.length image.i_cells in
  let nfuns = List.length image.i_ftable in
  let header_at addr k =
    match image.i_cells.(addr + k) with
    | Value.Vint n -> n
    | _ -> raise (Corrupt "non-integer block header cell")
  in
  (* walk the block chain *)
  let starts = Hashtbl.create 256 in
  let addr = ref 0 in
  while !addr < ncells do
    if !addr + Heap.header_cells > ncells then
      raise (Corrupt "truncated block header");
    let size = header_at !addr Heap.h_size in
    let idx = header_at !addr Heap.h_index in
    if size < 0 || !addr + Heap.header_cells + size > ncells then
      raise (Corrupt "block overruns heap");
    ignore (Heap.tag_of_code (header_at !addr Heap.h_tag));
    Hashtbl.replace starts !addr idx;
    addr := !addr + Heap.header_cells + size
  done;
  if !addr <> ncells then raise (Corrupt "block chain does not tile heap");
  (* pointer-table entries target their own blocks *)
  Array.iteri
    (fun idx addr ->
      if addr <> -1 then
        match Hashtbl.find_opt starts addr with
        | Some idx' when idx' = idx -> ()
        | Some _ -> raise (Corrupt "pointer-table entry index mismatch")
        | None -> raise (Corrupt "pointer-table entry not at a block start"))
    image.i_ptable;
  (* reference and function cells *)
  let check_value v =
    match v with
    | Value.Vptr (-1, _) -> () (* nil *)
    | Value.Vptr (i, _) ->
      if i < 0 || i >= Array.length image.i_ptable
         || image.i_ptable.(i) = -1
      then raise (Corrupt "heap cell references an invalid pointer index")
    | Value.Vfun f ->
      if f < 0 || f >= nfuns then
        raise (Corrupt "heap cell references an invalid function index")
    | Value.Vunit | Value.Vint _ | Value.Vfloat _ | Value.Vbool _
    | Value.Venum _ ->
      ()
  in
  Hashtbl.iter
    (fun addr _ ->
      let size = header_at addr Heap.h_size in
      for k = 0 to size - 1 do
        check_value image.i_cells.(addr + Heap.header_cells + k)
      done)
    starts;
  (* speculation records reference valid blocks with matching indices *)
  List.iter
    (fun s ->
      List.iter check_value s.Spec.Engine.s_args;
      List.iter
        (fun (idx, addr) ->
          match Hashtbl.find_opt starts addr with
          | Some idx' when idx' = idx -> ()
          | Some _ | None ->
            raise (Corrupt "speculation record references a bad block"))
        s.Spec.Engine.s_saved)
    image.i_spec;
  (* the transaction context's root level must exist in the snapshot *)
  (match image.i_dspec with
  | Some c when c.x_root >= List.length image.i_spec ->
    raise (Corrupt "dspec root index out of range")
  | Some _ | None -> ());
  (* the migrate_env block must be a live pointer-table target *)
  if image.i_menv < 0
     || image.i_menv >= Array.length image.i_ptable
     || image.i_ptable.(image.i_menv) = -1
  then raise (Corrupt "migrate_env index is invalid")

let byte_size image = String.length (encode image)
