(* The migration server (paper, Section 4.2.1): "a version of the compiler
   that will listen for incoming migration requests, recompile any inbound
   processes on the new machine, and reconstruct their state before
   executing them."

   This module is transport-agnostic: the simulated cluster (lib/net) and
   the CLI daemon (bin/mcc serve) both drive it by handing it received
   image bytes.  The server owns the local trust policy and architecture,
   assigns fresh pids, and keeps per-request statistics used by the
   migration benchmarks. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}

type t = {
  arch : Arch.t;
  trusted : bool;
  extern_signatures : Fir.Typecheck.extern_lookup;
  cache : Codecache.t option;
  mutable next_pid : int;
  stats : stats;
}

let create ?(trusted = false)
    ?(extern_signatures = Extern.signatures) ?(first_pid = 1000) ?cache arch
    =
  {
    arch;
    trusted;
    extern_signatures;
    cache;
    next_pid = first_pid;
    stats =
      {
        accepted = 0;
        rejected = 0;
        bytes_received = 0;
        recompilations = 0;
        cache_hits = 0;
      };
  }

let stats t = t.stats
let cache t = t.cache

(* Handle one inbound migration: verify, recompile, reconstruct.  The
   caller decides what to do with the resulting process (schedule it,
   execute it to completion, ...). *)
let handle ?seed t bytes =
  t.stats.bytes_received <- t.stats.bytes_received + String.length bytes;
  let pid = t.next_pid in
  match
    Pack.unpack ?seed ~pid ~trusted:t.trusted
      ~extern_signatures:t.extern_signatures ?cache:t.cache ~arch:t.arch
      bytes
  with
  | Ok (proc, masm, costs) ->
    t.next_pid <- t.next_pid + 1;
    t.stats.accepted <- t.stats.accepted + 1;
    if costs.Pack.u_recompiled then
      t.stats.recompilations <- t.stats.recompilations + 1;
    if costs.Pack.u_cache_hit then
      t.stats.cache_hits <- t.stats.cache_hits + 1;
    Ok { o_pid = pid; o_costs = costs; o_process = proc; o_masm = masm }
  | Error msg ->
    t.stats.rejected <- t.stats.rejected + 1;
    Error msg
