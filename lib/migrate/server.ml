(* The migration server (paper, Section 4.2.1): "a version of the compiler
   that will listen for incoming migration requests, recompile any inbound
   processes on the new machine, and reconstruct their state before
   executing them."

   This module is transport-agnostic: the simulated cluster (lib/net) and
   the CLI daemon (bin/mcc serve) both drive it by handing it received
   image bytes.  The server owns the local trust policy and architecture,
   assigns fresh pids, and keeps per-request statistics used by the
   migration benchmarks. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
  o_compiled : Compile.image;
      (* closure-compiled [o_masm] (embedding the pre-resolved linked
         form), ready for an engine *)
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}

module Config = struct
  type t = {
    trusted : bool;
    extern_signatures : Fir.Typecheck.extern_lookup;
    first_pid : int;
    cache : Codecache.t option;
    dedup_window : int;
    baseline_cache : int;
  }

  let default =
    {
      trusted = false;
      extern_signatures = Extern.signatures;
      first_pid = 1000;
      cache = None;
      dedup_window = 64;
      baseline_cache = 4;
    }
end

(* A retained baseline: a full image this server has accepted, kept so a
   later delta packet naming its content digest can be reconstructed
   locally.  LRU over [baseline_cap] entries (the codecache idiom: a
   logical clock, evict the stalest). *)
type baseline_entry = { b_image : Wire.image; mutable b_tick : int }

type t = {
  arch : Arch.t;
  trusted : bool;
  extern_signatures : Fir.Typecheck.extern_lookup;
  cache : Codecache.t option;
  mutable next_pid : int;
  baseline_cap : int;
  baselines : (string, baseline_entry) Hashtbl.t; (* image_digest -> *)
  mutable baseline_tick : int;
  (* idempotent receive: accepted requests remembered by delivery key so
     a duplicated or retried hop returns the original outcome instead of
     double-spawning.  Bounded FIFO of [dedup_window] entries; 0
     disables. *)
  dedup_window : int;
  dedup : (string, request_outcome) Hashtbl.t;
  dedup_order : string Queue.t;
  (* counters/histograms live in a metrics registry; [stats] is a
     snapshot view in the historical record shape *)
  metrics : Obs.Metrics.t;
  c_accepted : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_duplicates : Obs.Metrics.counter;
  c_bytes : Obs.Metrics.counter;
  c_recompilations : Obs.Metrics.counter;
  c_cache_hits : Obs.Metrics.counter;
  c_bytes_full : Obs.Metrics.counter; (* bytes arriving as full packets *)
  c_bytes_delta : Obs.Metrics.counter; (* bytes arriving as deltas *)
  c_delta_hits : Obs.Metrics.counter; (* deltas applied to a baseline *)
  c_delta_misses : Obs.Metrics.counter; (* unknown/failed baseline *)
  g_delta_hit_rate : Obs.Metrics.gauge;
  h_bytes : Obs.Metrics.histogram; (* image size per request, both kinds *)
  h_compile_cycles : Obs.Metrics.histogram; (* per accepted request *)
}

let create_cfg (cfg : Config.t) arch =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_accepted = Obs.Metrics.counter metrics "server.accepted" in
  let c_rejected = Obs.Metrics.counter metrics "server.rejected" in
  let c_duplicates = Obs.Metrics.counter metrics "server.duplicates" in
  let c_bytes = Obs.Metrics.counter metrics "server.bytes_received" in
  let c_recompilations =
    Obs.Metrics.counter metrics "server.recompilations"
  in
  let c_cache_hits = Obs.Metrics.counter metrics "server.cache_hits" in
  let c_bytes_full = Obs.Metrics.counter metrics "migrate.bytes_full" in
  let c_bytes_delta = Obs.Metrics.counter metrics "migrate.bytes_delta" in
  let c_delta_hits = Obs.Metrics.counter metrics "migrate.delta_hits" in
  let c_delta_misses = Obs.Metrics.counter metrics "migrate.delta_misses" in
  let g_delta_hit_rate = Obs.Metrics.gauge metrics "migrate.delta_hit_rate" in
  let h_bytes = Obs.Metrics.histogram metrics "server.image_bytes" in
  let h_compile_cycles =
    Obs.Metrics.histogram metrics "server.compile_cycles"
  in
  {
    arch;
    trusted = cfg.Config.trusted;
    extern_signatures = cfg.Config.extern_signatures;
    cache = cfg.Config.cache;
    next_pid = cfg.Config.first_pid;
    baseline_cap = max 0 cfg.Config.baseline_cache;
    baselines = Hashtbl.create 8;
    baseline_tick = 0;
    dedup_window = max 0 cfg.Config.dedup_window;
    dedup = Hashtbl.create 16;
    dedup_order = Queue.create ();
    metrics;
    c_accepted;
    c_rejected;
    c_duplicates;
    c_bytes;
    c_recompilations;
    c_cache_hits;
    c_bytes_full;
    c_bytes_delta;
    c_delta_hits;
    c_delta_misses;
    g_delta_hit_rate;
    h_bytes;
    h_compile_cycles;
  }

let metrics t = t.metrics

(* Thin view: the historical record, snapshotted from the registry. *)
let stats t =
  {
    accepted = Obs.Metrics.count t.c_accepted;
    rejected = Obs.Metrics.count t.c_rejected;
    bytes_received = Obs.Metrics.count t.c_bytes;
    recompilations = Obs.Metrics.count t.c_recompilations;
    cache_hits = Obs.Metrics.count t.c_cache_hits;
  }

let cache t = t.cache

(* ------------------------------------------------------------------ *)
(* Baseline retention                                                  *)
(* ------------------------------------------------------------------ *)

let has_baseline t digest = Hashtbl.mem t.baselines digest
let baseline_count t = Hashtbl.length t.baselines
let clear_baselines t = Hashtbl.reset t.baselines

let touch_baseline t entry =
  t.baseline_tick <- t.baseline_tick + 1;
  entry.b_tick <- t.baseline_tick

let evict_stalest_baseline t =
  let victim =
    Hashtbl.fold
      (fun digest entry acc ->
        match acc with
        | Some (_, best) when best.b_tick <= entry.b_tick -> acc
        | _ -> Some (digest, entry))
      t.baselines None
  in
  match victim with
  | Some (digest, _) -> Hashtbl.remove t.baselines digest
  | None -> ()

(* Retain [image] (digest: its {!Wire.image_digest}) so future deltas
   against it can be reconstructed; returns the digest.  With
   [baseline_cache = 0] nothing is retained and every delta misses. *)
let remember_baseline ?digest t image =
  let digest =
    match digest with Some d -> d | None -> Wire.image_digest image
  in
  if t.baseline_cap > 0 then begin
    (match Hashtbl.find_opt t.baselines digest with
    | Some entry -> touch_baseline t entry
    | None ->
      let entry = { b_image = image; b_tick = 0 } in
      touch_baseline t entry;
      Hashtbl.replace t.baselines digest entry;
      while Hashtbl.length t.baselines > t.baseline_cap do
        evict_stalest_baseline t
      done);
    ()
  end;
  digest

(* An unknown-baseline rejection is a protocol miss, not a bad image:
   the sender reacts by re-shipping in full, so it needs to recognize
   the error shape. *)
let unknown_baseline_prefix = "unknown baseline "
let unknown_baseline_error digest = unknown_baseline_prefix ^ digest

let is_unknown_baseline msg =
  String.length msg >= String.length unknown_baseline_prefix
  && String.equal
       (String.sub msg 0 (String.length unknown_baseline_prefix))
       unknown_baseline_prefix

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let update_delta_hit_rate t =
  let hits = Obs.Metrics.count t.c_delta_hits in
  let misses = Obs.Metrics.count t.c_delta_misses in
  if hits + misses > 0 then
    Obs.Metrics.set t.g_delta_hit_rate
      (float_of_int hits /. float_of_int (hits + misses))

(* The shared tail: [image] is either a decoded full packet or a
   delta reconstruction; [bytes] is what actually travelled. *)
let finish ?seed t ~bytes image =
  let pid = t.next_pid in
  match
    Pack.unpack_image ?seed ~pid ~trusted:t.trusted
      ~extern_signatures:t.extern_signatures ?cache:t.cache ~arch:t.arch
      ~bytes_len:(String.length bytes) image
  with
  | Ok (proc, masm, compiled, costs) ->
    t.next_pid <- t.next_pid + 1;
    Obs.Metrics.incr t.c_accepted;
    if costs.Pack.u_recompiled then Obs.Metrics.incr t.c_recompilations;
    if costs.Pack.u_cache_hit then Obs.Metrics.incr t.c_cache_hits;
    Obs.Metrics.observe t.h_compile_cycles
      (float_of_int costs.Pack.u_compile_cycles);
    Ok
      {
        o_pid = pid;
        o_costs = costs;
        o_process = proc;
        o_masm = masm;
        o_compiled = compiled;
      }
  | Error msg ->
    Obs.Metrics.incr t.c_rejected;
    Error msg

(* Handle one inbound migration: verify, recompile, reconstruct.  The
   caller decides what to do with the resulting process (schedule it,
   execute it to completion, ...).  A full packet that is accepted is
   retained as a delta baseline; a delta packet is reconstructed against
   the retained baseline it names (rejected with a recognizable
   {!is_unknown_baseline} error when this server no longer has it — the
   sender falls back to a full image). *)
let handle ?seed t bytes =
  Obs.Metrics.incr ~by:(String.length bytes) t.c_bytes;
  Obs.Metrics.observe t.h_bytes (float_of_int (String.length bytes));
  match Wire.decode_packet bytes with
  | exception Wire.Corrupt msg ->
    Obs.Metrics.incr t.c_rejected;
    Error ("corrupt image: " ^ msg)
  | Wire.Full image ->
    Obs.Metrics.incr ~by:(String.length bytes) t.c_bytes_full;
    let result = finish ?seed t ~bytes image in
    (match result with
    | Ok _ -> ignore (remember_baseline t image)
    | Error _ -> ());
    result
  | Wire.Delta delta -> (
    Obs.Metrics.incr ~by:(String.length bytes) t.c_bytes_delta;
    match Hashtbl.find_opt t.baselines delta.Wire.d_base with
    | None ->
      Obs.Metrics.incr t.c_delta_misses;
      update_delta_hit_rate t;
      Obs.Metrics.incr t.c_rejected;
      Error (unknown_baseline_error delta.Wire.d_base)
    | Some entry -> (
      touch_baseline t entry;
      match Wire.apply_delta ~baseline:entry.b_image delta with
      | exception Wire.Corrupt _ ->
        (* the baseline we hold does not reconstruct what the sender
           meant — count it as a miss so the sender's full-image
           fallback keeps the books straight *)
        Obs.Metrics.incr t.c_delta_misses;
        update_delta_hit_rate t;
        Obs.Metrics.incr t.c_rejected;
        Error (unknown_baseline_error delta.Wire.d_base)
      | image ->
        Obs.Metrics.incr t.c_delta_hits;
        update_delta_hit_rate t;
        let result = finish ?seed t ~bytes image in
        (match result with
        | Ok _ ->
          ignore (remember_baseline ~digest:delta.Wire.d_new_digest t image)
        | Error _ -> ());
        result))

(* Idempotent receive.  [key] identifies one logical delivery: the image
   digest plus whatever envelope identity the transport has (the cluster
   appends a per-migration hop id, so a retransmitted hop shares the key
   while distinct migrations of an identical image never collide).
   Rejections are NOT remembered — a retried hop may legitimately
   succeed later (e.g. the cache warmed, or the reject was transient
   policy). *)

type delivery = Fresh of request_outcome | Duplicate of request_outcome

let delivery_key bytes = Fir.Digest.of_encoded bytes

let receive ?seed ?key t bytes =
  let key = match key with Some k -> k | None -> delivery_key bytes in
  match Hashtbl.find_opt t.dedup key with
  | Some outcome ->
    Obs.Metrics.incr t.c_duplicates;
    Ok (Duplicate outcome)
  | None -> (
    match handle ?seed t bytes with
    | Error _ as e -> e
    | Ok outcome ->
      if t.dedup_window > 0 then begin
        Hashtbl.replace t.dedup key outcome;
        Queue.push key t.dedup_order;
        if Queue.length t.dedup_order > t.dedup_window then begin
          let oldest = Queue.pop t.dedup_order in
          Hashtbl.remove t.dedup oldest
        end
      end;
      Ok (Fresh outcome))
