(* The migration server (paper, Section 4.2.1): "a version of the compiler
   that will listen for incoming migration requests, recompile any inbound
   processes on the new machine, and reconstruct their state before
   executing them."

   This module is transport-agnostic: the simulated cluster (lib/net) and
   the CLI daemon (bin/mcc serve) both drive it by handing it received
   image bytes.  The server owns the local trust policy and architecture,
   assigns fresh pids, and keeps per-request statistics used by the
   migration benchmarks. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}

module Config = struct
  type t = {
    trusted : bool;
    extern_signatures : Fir.Typecheck.extern_lookup;
    first_pid : int;
    cache : Codecache.t option;
    dedup_window : int;
  }

  let default =
    {
      trusted = false;
      extern_signatures = Extern.signatures;
      first_pid = 1000;
      cache = None;
      dedup_window = 64;
    }
end

type t = {
  arch : Arch.t;
  trusted : bool;
  extern_signatures : Fir.Typecheck.extern_lookup;
  cache : Codecache.t option;
  mutable next_pid : int;
  (* idempotent receive: accepted requests remembered by delivery key so
     a duplicated or retried hop returns the original outcome instead of
     double-spawning.  Bounded FIFO of [dedup_window] entries; 0
     disables. *)
  dedup_window : int;
  dedup : (string, request_outcome) Hashtbl.t;
  dedup_order : string Queue.t;
  (* counters/histograms live in a metrics registry; [stats] is a
     snapshot view in the historical record shape *)
  metrics : Obs.Metrics.t;
  c_accepted : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_duplicates : Obs.Metrics.counter;
  c_bytes : Obs.Metrics.counter;
  c_recompilations : Obs.Metrics.counter;
  c_cache_hits : Obs.Metrics.counter;
  h_bytes : Obs.Metrics.histogram; (* image size per request *)
  h_compile_cycles : Obs.Metrics.histogram; (* per accepted request *)
}

let create_cfg (cfg : Config.t) arch =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_accepted = Obs.Metrics.counter metrics "server.accepted" in
  let c_rejected = Obs.Metrics.counter metrics "server.rejected" in
  let c_duplicates = Obs.Metrics.counter metrics "server.duplicates" in
  let c_bytes = Obs.Metrics.counter metrics "server.bytes_received" in
  let c_recompilations =
    Obs.Metrics.counter metrics "server.recompilations"
  in
  let c_cache_hits = Obs.Metrics.counter metrics "server.cache_hits" in
  let h_bytes = Obs.Metrics.histogram metrics "server.image_bytes" in
  let h_compile_cycles =
    Obs.Metrics.histogram metrics "server.compile_cycles"
  in
  {
    arch;
    trusted = cfg.Config.trusted;
    extern_signatures = cfg.Config.extern_signatures;
    cache = cfg.Config.cache;
    next_pid = cfg.Config.first_pid;
    dedup_window = max 0 cfg.Config.dedup_window;
    dedup = Hashtbl.create 16;
    dedup_order = Queue.create ();
    metrics;
    c_accepted;
    c_rejected;
    c_duplicates;
    c_bytes;
    c_recompilations;
    c_cache_hits;
    h_bytes;
    h_compile_cycles;
  }

(* Deprecated optional-argument constructor; use {!create_cfg}. *)
let create ?(trusted = false)
    ?(extern_signatures = Extern.signatures) ?(first_pid = 1000) ?cache arch
    =
  create_cfg
    { Config.default with trusted; extern_signatures; first_pid; cache }
    arch

let metrics t = t.metrics

(* Thin view: the historical record, snapshotted from the registry. *)
let stats t =
  {
    accepted = Obs.Metrics.count t.c_accepted;
    rejected = Obs.Metrics.count t.c_rejected;
    bytes_received = Obs.Metrics.count t.c_bytes;
    recompilations = Obs.Metrics.count t.c_recompilations;
    cache_hits = Obs.Metrics.count t.c_cache_hits;
  }

let cache t = t.cache

(* Handle one inbound migration: verify, recompile, reconstruct.  The
   caller decides what to do with the resulting process (schedule it,
   execute it to completion, ...). *)
let handle ?seed t bytes =
  Obs.Metrics.incr ~by:(String.length bytes) t.c_bytes;
  Obs.Metrics.observe t.h_bytes (float_of_int (String.length bytes));
  let pid = t.next_pid in
  match
    Pack.unpack ?seed ~pid ~trusted:t.trusted
      ~extern_signatures:t.extern_signatures ?cache:t.cache ~arch:t.arch
      bytes
  with
  | Ok (proc, masm, costs) ->
    t.next_pid <- t.next_pid + 1;
    Obs.Metrics.incr t.c_accepted;
    if costs.Pack.u_recompiled then Obs.Metrics.incr t.c_recompilations;
    if costs.Pack.u_cache_hit then Obs.Metrics.incr t.c_cache_hits;
    Obs.Metrics.observe t.h_compile_cycles
      (float_of_int costs.Pack.u_compile_cycles);
    Ok { o_pid = pid; o_costs = costs; o_process = proc; o_masm = masm }
  | Error msg ->
    Obs.Metrics.incr t.c_rejected;
    Error msg

(* Idempotent receive.  [key] identifies one logical delivery: the image
   digest plus whatever envelope identity the transport has (the cluster
   appends a per-migration hop id, so a retransmitted hop shares the key
   while distinct migrations of an identical image never collide).
   Rejections are NOT remembered — a retried hop may legitimately
   succeed later (e.g. the cache warmed, or the reject was transient
   policy). *)

type delivery = Fresh of request_outcome | Duplicate of request_outcome

let delivery_key bytes = Fir.Digest.of_encoded bytes

let receive ?seed ?key t bytes =
  let key = match key with Some k -> k | None -> delivery_key bytes in
  match Hashtbl.find_opt t.dedup key with
  | Some outcome ->
    Obs.Metrics.incr t.c_duplicates;
    Ok (Duplicate outcome)
  | None -> (
    match handle ?seed t bytes with
    | Error _ as e -> e
    | Ok outcome ->
      if t.dedup_window > 0 then begin
        Hashtbl.replace t.dedup key outcome;
        Queue.push key t.dedup_order;
        if Queue.length t.dedup_order > t.dedup_window then begin
          let oldest = Queue.pop t.dedup_order in
          Hashtbl.remove t.dedup oldest
        end
      end;
      Ok (Fresh outcome))
