(* The migration server (paper, Section 4.2.1): "a version of the compiler
   that will listen for incoming migration requests, recompile any inbound
   processes on the new machine, and reconstruct their state before
   executing them."

   This module is transport-agnostic: the simulated cluster (lib/net) and
   the CLI daemon (bin/mcc serve) both drive it by handing it received
   image bytes.  The server owns the local trust policy and architecture,
   assigns fresh pids, and keeps per-request statistics used by the
   migration benchmarks. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
  mutable cache_hits : int;
}

type t = {
  arch : Arch.t;
  trusted : bool;
  extern_signatures : Fir.Typecheck.extern_lookup;
  cache : Codecache.t option;
  mutable next_pid : int;
  (* counters/histograms live in a metrics registry; [stats] is a
     snapshot view in the historical record shape *)
  metrics : Obs.Metrics.t;
  c_accepted : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_bytes : Obs.Metrics.counter;
  c_recompilations : Obs.Metrics.counter;
  c_cache_hits : Obs.Metrics.counter;
  h_bytes : Obs.Metrics.histogram; (* image size per request *)
  h_compile_cycles : Obs.Metrics.histogram; (* per accepted request *)
}

let create ?(trusted = false)
    ?(extern_signatures = Extern.signatures) ?(first_pid = 1000) ?cache arch
    =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_accepted = Obs.Metrics.counter metrics "server.accepted" in
  let c_rejected = Obs.Metrics.counter metrics "server.rejected" in
  let c_bytes = Obs.Metrics.counter metrics "server.bytes_received" in
  let c_recompilations =
    Obs.Metrics.counter metrics "server.recompilations"
  in
  let c_cache_hits = Obs.Metrics.counter metrics "server.cache_hits" in
  let h_bytes = Obs.Metrics.histogram metrics "server.image_bytes" in
  let h_compile_cycles =
    Obs.Metrics.histogram metrics "server.compile_cycles"
  in
  {
    arch;
    trusted;
    extern_signatures;
    cache;
    next_pid = first_pid;
    metrics;
    c_accepted;
    c_rejected;
    c_bytes;
    c_recompilations;
    c_cache_hits;
    h_bytes;
    h_compile_cycles;
  }

let metrics t = t.metrics

(* Thin view: the historical record, snapshotted from the registry. *)
let stats t =
  {
    accepted = Obs.Metrics.count t.c_accepted;
    rejected = Obs.Metrics.count t.c_rejected;
    bytes_received = Obs.Metrics.count t.c_bytes;
    recompilations = Obs.Metrics.count t.c_recompilations;
    cache_hits = Obs.Metrics.count t.c_cache_hits;
  }

let cache t = t.cache

(* Handle one inbound migration: verify, recompile, reconstruct.  The
   caller decides what to do with the resulting process (schedule it,
   execute it to completion, ...). *)
let handle ?seed t bytes =
  Obs.Metrics.incr ~by:(String.length bytes) t.c_bytes;
  Obs.Metrics.observe t.h_bytes (float_of_int (String.length bytes));
  let pid = t.next_pid in
  match
    Pack.unpack ?seed ~pid ~trusted:t.trusted
      ~extern_signatures:t.extern_signatures ?cache:t.cache ~arch:t.arch
      bytes
  with
  | Ok (proc, masm, costs) ->
    t.next_pid <- t.next_pid + 1;
    Obs.Metrics.incr t.c_accepted;
    if costs.Pack.u_recompiled then Obs.Metrics.incr t.c_recompilations;
    if costs.Pack.u_cache_hit then Obs.Metrics.incr t.c_cache_hits;
    Obs.Metrics.observe t.h_compile_cycles
      (float_of_int costs.Pack.u_compile_cycles);
    Ok { o_pid = pid; o_costs = costs; o_process = proc; o_masm = masm }
  | Error msg ->
    Obs.Metrics.incr t.c_rejected;
    Error msg
