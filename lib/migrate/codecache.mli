(** Destination-side, content-addressed recompilation cache.

    Keyed by [(FIR digest, architecture name, verify mode)]; stores the
    locally-compiled {!Vm.Masm.image}, the decoded program, and the
    typecheck verdict, so a repeated migration of the same program costs
    transfer + stub link instead of transfer + typecheck + codegen.

    The digest is integrity metadata, not a trust shortcut: the wire
    layer recomputes it over the received bytes before the cache is ever
    consulted, and a cache miss still runs the full untrusted-source
    typecheck.  The architecture in the key makes heterogeneous clusters
    safe by construction; the verify mode keeps entries admitted without
    a typecheck (trusted) from ever serving a verified request.

    Bounded LRU: at most [capacity] entries (0 disables the cache
    entirely), optionally also bounded by the total cached instruction
    count. *)

open Vm

type verify_mode = Verified | Trusted

type entry = {
  e_program : Fir.Ast.program;
  e_verdict : (unit, string) result;
  e_masm : Masm.image option;  (** [None] exactly when the verdict is an error *)
  mutable e_linked : Link.image option;
      (** pre-resolved form of [e_masm]; use {!linked_of}, which links at
          most once and shares the result across hits *)
  mutable e_compiled : Compile.image option;
      (** closure-compiled form of [e_linked]; use {!compiled_of}.  The
          compiled image is process-independent, so warm migration hops
          resume straight into compiled code without re-compiling *)
  e_instrs : int;
  mutable e_tick : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}
(** Historical view: a snapshot built from the metrics registry at call
    time (see {!stats}). *)

type t

val create : ?max_instrs:int -> capacity:int -> unit -> t
(** [capacity <= 0] disables the cache: finds miss silently, adds are
    dropped, and no statistics accumulate. *)

val enabled : t -> bool
val find : t -> digest:string -> arch:string -> trusted:bool -> entry option
(** Records a hit or a miss and refreshes the entry's LRU stamp. *)

val add :
  t ->
  ?linked:Link.image ->
  ?compiled:Compile.image ->
  digest:string -> arch:string -> trusted:bool ->
  program:Fir.Ast.program ->
  verdict:(unit, string) result ->
  masm:Masm.image option ->
  unit ->
  unit
(** Admit (or replace) an entry, then evict least-recently-used entries
    until the bounds hold again.  [linked] (resp. [compiled]), when the
    admitter already paid for the translation pass, is stored so hits
    never re-link (resp. re-compile); a supplied [compiled] also
    provides the linked form it embeds. *)

val linked_of : entry -> Link.image option
(** The entry's pre-resolved image, linking (and memoizing) on first
    use.  [None] exactly when the verdict is an error. *)

val compiled_of : entry -> Compile.image option
(** The entry's closure-compiled image, compiling (and memoizing) on
    first use.  [None] exactly when the verdict is an error. *)

val invalidate : t -> digest:string -> unit
(** Drop every entry for the digest, across architectures and modes. *)

val clear : t -> unit

val stats : t -> stats
(** A snapshot of the registry counters in the historical record shape;
    mutating the returned record has no effect on the cache. *)

val metrics : t -> Obs.Metrics.t
(** The live registry: counters [codecache.lookups], [codecache.hits],
    [codecache.misses], [codecache.evictions], [codecache.insertions]. *)

val lookups : t -> int
(** Total lookups against an enabled cache; by construction
    [lookups = hits + misses]. *)

val length : t -> int
val total_instrs : t -> int
val hit_rate : t -> float
val report : t -> string
(** One-line human-readable summary (entries, hits/misses, evictions). *)
