(* Pack and unpack: capturing and reconstructing whole-process state
   (paper, Section 4.2.2).

   pack:
   1. Store the live variables (the continuation arguments of the migrate
      instruction — exactly the paper's correspondence) into a freshly
      allocated [migrate_env] block, converting register state into the
      standard heap representation.
   2. Garbage-collect the heap (the paper's pack "first performs garbage
      collection"), with migrate_env and the speculation state as roots.
   3. Snapshot: FIR code, function table, pointer table (order preserved),
      heap cells, speculation records, the migrate_env index, and the
      resume label.

   unpack:
   1. Structurally verify the image (Wire.verify).
   2. Re-typecheck the FIR in strict mode unless the source is trusted.
   3. Rebuild heap + pointer table, re-create the speculation engine,
      extract the continuation arguments from migrate_env with the
      standard safety checks, and validate them against the continuation
      function's signature.
   4. Recompile for the local architecture — or, if the image carries a
      binary payload for the SAME architecture and the source is trusted,
      skip recompilation entirely (the binary fast path measured in
      experiment E1b). *)

open Runtime
open Vm

exception Unpack_error of string

type packed = {
  p_image : Wire.image;
  p_bytes : string; (* the encoded image: what actually travels *)
  p_dirty : (int * int, unit) Hashtbl.t;
      (* (index, page) pairs written since the PREVIOUS pack — the
         change set a delta against that previous image may ship *)
}

type unpack_costs = {
  u_bytes : int; (* transferred size *)
  u_verified : bool; (* structural + type verification performed *)
  u_recompiled : bool; (* FIR -> MASM codegen performed *)
  u_cache_hit : bool; (* code served from the recompilation cache *)
  u_compile_cycles : int; (* simulated cycles charged for recompilation *)
}

(* ------------------------------------------------------------------ *)
(* pack                                                                *)
(* ------------------------------------------------------------------ *)

let pack ?(with_binary = true) ?(epoch = 0) ?dspec proc ~entry ~args ~label =
  let heap = proc.Process.heap in
  (* 1. migrate_env: all live data moves into the heap; afterwards the only
     "register" content is the migrate_env index itself *)
  let menv = Heap.alloc_tuple heap args in
  (* 2. collect, with migrate_env and speculation state as the roots *)
  let spec_roots =
    List.concat_map
      (fun s -> s.Spec.Engine.s_args)
      (Spec.Engine.snapshot proc.Process.spec)
  in
  let res =
    Gc.collect heap ~kind:Gc.Major
      ~roots:(Value.Vptr (menv, 0) :: spec_roots)
      ~pinned:(Spec.Engine.records proc.Process.spec)
  in
  Spec.Engine.rewrite_after_gc proc.Process.spec res;
  (* 3. snapshot *)
  let fir_bytes = Fir.Serial.encode proc.Process.program in
  let image =
    {
      Wire.i_arch = proc.Process.arch.Arch.name;
      i_digest = Fir.Digest.of_encoded fir_bytes;
      i_fir = fir_bytes;
      i_masm =
        (if with_binary then
           Some
             (Masm.encode
                (Codegen.compile ~arch:proc.Process.arch
                   proc.Process.program))
         else None);
      i_ftable = Function_table.names proc.Process.ftable;
      i_ptable = Pointer_table.snapshot (Heap.pointer_table heap);
      i_cells = Heap.cells heap;
      i_spec = Spec.Engine.snapshot proc.Process.spec;
      i_menv = menv;
      i_entry = entry;
      i_label = label;
      i_epoch = epoch;
      i_dspec = dspec;
    }
  in
  (* The dirty set accumulated since the previous pack is exactly what a
     delta against that previous image may ship (the collector already
     dropped freed indices, and the snapshot keys are stable across the
     compaction slide).  Clearing it makes THIS image the new baseline
     that future writes are tracked against. *)
  let p_dirty = Heap.dirty_snapshot heap in
  Heap.clear_dirty heap;
  { p_image = image; p_bytes = Wire.encode image; p_dirty }

(* Encode [packed] as a delta against [baseline] (identified on the wire
   by [base_digest], the baseline's {!Wire.image_digest}).  Returns
   [None] when a delta is semantically impossible — different
   architecture or different FIR payload — rather than merely
   unprofitable; byte-size policy is the caller's. *)
let delta ~baseline ~base_digest packed =
  let image = packed.p_image in
  if
    (not (String.equal image.Wire.i_arch baseline.Wire.i_arch))
    || not (String.equal image.Wire.i_digest baseline.Wire.i_digest)
  then None
  else
    let changed idx page = Hashtbl.mem packed.p_dirty (idx, page) in
    let d_blocks, stats = Wire.diff ~baseline ~image ~changed in
    let delta =
      {
        Wire.d_arch = image.Wire.i_arch;
        d_base = base_digest;
        d_fir_digest = image.Wire.i_digest;
        d_new_digest = Wire.image_digest image;
        d_ptable = image.Wire.i_ptable;
        d_blocks;
        d_spec = image.Wire.i_spec;
        d_menv = image.Wire.i_menv;
        d_entry = image.Wire.i_entry;
        d_label = image.Wire.i_label;
        d_epoch = image.Wire.i_epoch;
        d_dspec = image.Wire.i_dspec;
      }
    in
    Some (Wire.encode_delta delta, stats)

(* Pack a process that has stopped at a migration request. *)
let pack_request ?with_binary ?epoch ?dspec proc =
  match proc.Process.status with
  | Process.Migrating req ->
    pack ?with_binary ?epoch ?dspec proc ~entry:req.Process.m_entry
      ~args:req.Process.m_args ~label:req.Process.m_label
  | Process.Running | Process.Exited _ | Process.Trapped _ ->
    invalid_arg "Pack.pack_request: process is not at a migration point"

(* Pack a RUNNING process between basic blocks, without its cooperation:
   the current continuation is exactly the live state (the CPS property),
   so any inter-step boundary is a safe migration point.  This enables
   the paper's "dynamic transparent load balancing and mobile agents"
   (Section 7): "processes to be migrated without their specific
   knowledge for failure-recovery or load-balancing purposes"
   (Section 4.2.1). *)
let pack_running ?with_binary ?epoch ?dspec proc =
  match proc.Process.status with
  | Process.Running ->
    let entry, args = proc.Process.cont in
    pack ?with_binary ?epoch ?dspec proc ~entry ~args ~label:0
  | Process.Migrating _ | Process.Exited _ | Process.Trapped _ ->
    invalid_arg "Pack.pack_running: process is not running"

(* ------------------------------------------------------------------ *)
(* unpack                                                              *)
(* ------------------------------------------------------------------ *)

let value_matches program ftable_names ty v =
  let open Fir.Types in
  match ty, v with
  | Tunit, Value.Vunit -> true
  | Tint, Value.Vint _ -> true
  | Tfloat, Value.Vfloat _ -> true
  | Tbool, Value.Vbool _ -> true
  | Tenum c, Value.Venum (c', x) -> c = c' && x >= 0 && x < c
  | (Tptr _ | Ttuple _ | Traw), Value.Vptr _ -> true
  | Tfun tys, Value.Vfun f -> (
    match List.nth_opt ftable_names f with
    | Some name -> (
      match Fir.Ast.find_fun program name with
      | Some fd ->
        let sig_ = Fir.Ast.signature fd in
        List.length sig_ = List.length tys
        && List.for_all2 Fir.Types.equal sig_ tys
      | None -> false)
    | None -> false)
  | Tany, _ -> true
  | ( (Tunit | Tint | Tfloat | Tbool | Tenum _ | Tptr _ | Ttuple _ | Traw
      | Tfun _),
      _ ) ->
    false

(* [extern_signatures] extends the strict typecheck with the host
   environment's externs (e.g. the cluster's message-passing set).

   [cache] is the destination node's recompilation cache.  The flow keeps
   the trust model intact: the cache is consulted only AFTER Wire.decode
   has recomputed the digest over the received bytes (so the key names
   exactly what arrived) and after the per-migration structural heap
   verification — Wire.verify checks THIS image's heap and can never be
   skipped.  A hit only elides the program-level work (FIR decode,
   typecheck, codegen), which is a pure function of the FIR bytes; a miss
   runs the full untrusted-source pipeline and then populates the cache,
   including negative entries for payloads that fail the typecheck. *)
(* Reconstruct from an already-decoded image — the shared tail of the
   full-packet path ([unpack]) and the delta path (the server decodes the
   packet, rebuilds the image against its retained baseline, then lands
   here).  [bytes_len] is the on-the-wire size, for cost accounting. *)
let unpack_image ?(pid = 0) ?(seed = 42) ?(trusted = false)
    ?(extern_signatures = Extern.signatures) ?cache ~arch ~bytes_len image =
  try
    let verified = not trusted in
    (* structural heap checks are per-image state, never cacheable *)
    if verified then Wire.verify image;
    let cached =
      match cache with
      | Some c ->
        Codecache.find c ~digest:image.Wire.i_digest ~arch:arch.Arch.name
          ~trusted
      | None -> None
    in
    let program, masm, compiled, recompiled, cache_hit, compile_cycles =
      match cached with
      | Some { Codecache.e_verdict = Error msg; _ } ->
        (* negative entry: this exact payload already failed the
           typecheck here — reject without re-running it *)
        raise (Unpack_error ("FIR rejected: " ^ msg))
      | Some ({ Codecache.e_verdict = Ok (); _ } as e) ->
        let masm =
          match e.Codecache.e_masm with
          | Some m -> m
          | None -> assert false (* Ok verdict always carries code *)
        in
        let compiled =
          match Codecache.compiled_of e with
          | Some c -> c
          | None -> assert false (* Ok verdict always carries code *)
        in
        (* typecheck + codegen elided; the stub must still be linked.
           [compiled_of] memoizes, so a warm hop resumes straight into
           the cached closure-compiled image without re-compiling. *)
        ( e.Codecache.e_program,
          masm,
          compiled,
          false,
          true,
          Codegen.simulated_link_cycles masm )
      | None ->
        let program =
          try Fir.Serial.decode image.Wire.i_fir
          with Fir.Serial.Corrupt msg ->
            raise (Unpack_error ("corrupt FIR payload: " ^ msg))
        in
        if verified then begin
          match
            Fir.Typecheck.check_program ~strict:true
              ~externs:extern_signatures program
          with
          | Ok () -> ()
          | Error msg ->
            (* negative caching: remember the rejection *)
            (match cache with
            | Some c ->
              Codecache.add c ~digest:image.Wire.i_digest
                ~arch:arch.Arch.name ~trusted ~program
                ~verdict:(Error msg) ~masm:None ()
            | None -> ());
            raise (Unpack_error ("FIR rejected: " ^ msg))
        end;
        (* decide the execution payload *)
        let binary_fast_path =
          trusted
          && String.equal image.Wire.i_arch arch.Arch.name
          && image.Wire.i_masm <> None
        in
        let masm, recompiled, compile_cycles =
          if binary_fast_path then
            match image.Wire.i_masm with
            | Some payload ->
              let masm = Masm.decode payload in
              (* no recompilation, but the stub must still be linked *)
              masm, false, Codegen.simulated_link_cycles masm
            | None -> assert false
          else
            let masm = Codegen.compile ~arch program in
            ( masm,
              true,
              Codegen.simulated_compile_cycles program
              + Codegen.simulated_link_cycles masm )
        in
        (* pre-resolve and closure-compile once, here, so the returned
           engine image and any future cache hit share the same
           translated forms *)
        let compiled = Compile.compile_masm masm in
        (match cache with
        | Some c ->
          Codecache.add c ~compiled ~digest:image.Wire.i_digest
            ~arch:arch.Arch.name ~trusted ~program ~verdict:(Ok ())
            ~masm:(Some masm) ()
        | None -> ());
        program, masm, compiled, recompiled, false, compile_cycles
    in
    (* the function table must be exactly the program's functions, in the
       canonical order (index order is load-bearing for Vfun values); the
       table is per-image state, so this runs on cache hits too *)
    let expected =
      List.sort String.compare (Fir.Ast.fun_names program)
    in
    if image.Wire.i_ftable <> expected then
      raise (Unpack_error "function table does not match the program");
    let heap =
      Heap.restore ~cells:image.Wire.i_cells
        ~ptable_snapshot:image.Wire.i_ptable
    in
    let proc =
      Process.restore ~pid ~arch ~seed ~program ~heap
        ~spec_snapshot:image.Wire.i_spec
        ~cont:(image.Wire.i_entry, []) ()
    in
    (* extract the continuation arguments from migrate_env with the
       standard safety checks applied as they are read (Section 4.2.2) *)
    let entry_fd =
      match Fir.Ast.find_fun program image.Wire.i_entry with
      | Some fd -> fd
      | None ->
        raise (Unpack_error ("unknown resume function " ^ image.Wire.i_entry))
    in
    let nargs = List.length entry_fd.Fir.Ast.f_params in
    if Heap.block_size heap image.Wire.i_menv <> nargs then
      raise (Unpack_error "migrate_env size does not match resume signature");
    let args =
      List.init nargs (fun k -> Heap.read heap image.Wire.i_menv k)
    in
    List.iteri
      (fun k ((_, ty), v) ->
        if verified
           && not (value_matches program image.Wire.i_ftable ty v)
        then
          raise
            (Unpack_error
               (Printf.sprintf
                  "resume argument %d has wrong representation (%s vs %s)" k
                  (Value.to_string v) (Fir.Types.to_string ty))))
      (List.combine entry_fd.Fir.Ast.f_params args);
    proc.Process.cont <- image.Wire.i_entry, args;
    Ok
      ( proc,
        masm,
        compiled,
        {
          u_bytes = bytes_len;
          u_verified = verified;
          u_recompiled = recompiled;
          u_cache_hit = cache_hit;
          u_compile_cycles = compile_cycles;
        } )
  with
  | Unpack_error msg -> Error msg
  | Wire.Corrupt msg -> Error ("corrupt image: " ^ msg)
  | Heap.Runtime_error msg -> Error ("bad heap in image: " ^ msg)
  | Pointer_table.Invalid_pointer msg -> Error ("bad pointer table: " ^ msg)
  | Function_table.Invalid_function msg ->
    Error ("bad function table: " ^ msg)
  | Spec.Engine.Invalid_level msg -> Error ("bad speculation state: " ^ msg)

let unpack ?pid ?seed ?trusted ?extern_signatures ?cache ~arch bytes =
  match Wire.decode bytes with
  | image ->
    unpack_image ?pid ?seed ?trusted ?extern_signatures ?cache ~arch
      ~bytes_len:(String.length bytes) image
  | exception Wire.Corrupt msg -> Error ("corrupt image: " ^ msg)
