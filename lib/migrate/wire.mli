(** The architecture-independent process image format (paper, Section
    4.2): FIR code, function table (name order preserved), pointer table
    (index order preserved), raw heap cells under standard byte-order
    rules, speculation snapshot, and the resume point (migrate_env index,
    continuation name, migration label).  An optional MASM payload rides
    along for the trusted same-architecture fast path.

    {!verify} applies the structural safety checks a migration target
    runs before trusting a received heap. *)

open Runtime

exception Corrupt of string

type image = {
  i_arch : string;
  i_digest : string;
      (** {!Fir.Digest} of [i_fir]; {!decode} recomputes it over the
          received bytes and rejects mismatches (integrity metadata — it
          never substitutes for verification) *)
  i_fir : string;  (** {!Fir.Serial} encoding of the program *)
  i_masm : string option;
  i_ftable : string list;
  i_ptable : int array;
  i_cells : Value.t array;
  i_spec : Spec.Engine.snapshot_level list;
  i_menv : int;  (** pointer-table index of the migrate_env block *)
  i_entry : string;
  i_label : int;
}

val encode : image -> string
(** Checksummed, versioned, little-endian regardless of the source
    architecture. *)

val decode : string -> image
(** @raise Corrupt on bad magic/version/checksum/truncation. *)

val verify : image -> unit
(** Structural verification: the block chain tiles the heap exactly,
    pointer-table entries target their own blocks, reference and function
    cells are in range, speculation records reference valid blocks, and
    migrate_env is live.
    @raise Corrupt on any violation. *)

val byte_size : image -> int

(** {2 Cell codec (shared with tests)} *)

val put_value : Buffer.t -> Value.t -> unit
val get_value : Fir.Serial.reader -> Value.t
