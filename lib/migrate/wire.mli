(** The architecture-independent process image format (paper, Section
    4.2): FIR code, function table (name order preserved), pointer table
    (index order preserved), raw heap cells under standard byte-order
    rules, speculation snapshot, and the resume point (migrate_env index,
    continuation name, migration label).  An optional MASM payload rides
    along for the trusted same-architecture fast path.

    v7 adds a second packet kind: a {e delta} names a previously-shipped
    baseline image by content digest and carries only the heap blocks
    (and within a block, only the {!Runtime.Heap.dirty_page_cells}-cell
    pages) written since that baseline was packed.  The FIR, MASM and
    function table never travel again on a warm path.  Heap segments use
    zigzag-varint integers and run-length cell runs in both kinds.

    v8 appends the rank incarnation epoch to both packet kinds:
    resurrection bumps it, migration hops and checkpoint writes carry
    it, and the cluster rejects stale-epoch traffic (fencing).  The
    epoch is incarnation metadata, excluded from {!image_digest}.

    v9 appends the optional distributed-speculation context to both
    packet kinds: a migrating coordinator's open transaction travels
    with it (transaction id, root level's snapshot position, service
    laddr, participant epoch pins), so the destination re-registers the
    rebound process with the cluster's transaction table.  Like the
    epoch, it is metadata excluded from {!image_digest}.

    {!verify} applies the structural safety checks a migration target
    runs before trusting a received heap. *)

open Runtime

exception Corrupt of string

type dspec_ctx = {
  x_txn : int;  (** transaction id in the cluster's table *)
  x_root : int;
      (** index of the transaction's root level in [i_spec], oldest
          first (stable level uids are engine-local and do not survive
          restore; snapshot order does) *)
  x_coord_laddr : int;
      (** logical address of the coordinating service, [-1] if none *)
  x_parts : (int * int) list;  (** participant (rank, epoch) pins *)
}

type image = {
  i_arch : string;
  i_digest : string;
      (** {!Fir.Digest} of [i_fir]; {!decode} recomputes it over the
          received bytes and rejects mismatches (integrity metadata — it
          never substitutes for verification) *)
  i_fir : string;  (** {!Fir.Serial} encoding of the program *)
  i_masm : string option;
  i_ftable : string list;
  i_ptable : int array;
  i_cells : Value.t array;
  i_spec : Spec.Engine.snapshot_level list;
  i_menv : int;  (** pointer-table index of the migrate_env block *)
  i_entry : string;
  i_label : int;
  i_epoch : int;
      (** rank incarnation epoch; bumped on every resurrection, [0] for
          processes with no rank *)
  i_dspec : dspec_ctx option;
      (** distributed-speculation context, present while the process
          coordinates an open transaction *)
}

val encode : image -> string
(** A full packet: checksummed, versioned, little-endian regardless of
    the source architecture. *)

val decode : string -> image
(** @raise Corrupt on bad magic/version/checksum/truncation, or if the
    bytes hold a delta packet rather than a full image. *)

val verify : image -> unit
(** Structural verification: the block chain tiles the heap exactly,
    pointer-table entries target their own blocks, reference and function
    cells are in range, speculation records reference valid blocks, and
    migrate_env is live.
    @raise Corrupt on any violation. *)

val byte_size : image -> int

(** {2 Delta images}

    A delta is valid against exactly one baseline, named by
    {!image_digest}.  Reconstruction ({!apply_delta}) inherits the
    baseline's FIR, MASM and function table, and is digest-verified
    against the sender's post-mutation digest — any disagreement (stale
    baseline, corrupt dirty tracking) raises, and the caller falls back
    to a full image. *)

type dblock =
  | Dcopy of int
      (** unchanged since the baseline: reuse its block verbatim *)
  | Dlit of { idx : int; tag : int; cells : Value.t array }
      (** new block, or one whose tag/size changed: full payload *)
  | Dpatch of { idx : int; ranges : (int * Value.t array) list }
      (** same shape as the baseline block: overwrite (offset, cells)
          ranges covering the dirty pages *)

type delta = {
  d_arch : string;
  d_base : string;  (** {!image_digest} of the baseline this patches *)
  d_fir_digest : string;  (** must equal the baseline's [i_digest] *)
  d_new_digest : string;  (** {!image_digest} of the reconstruction *)
  d_ptable : int array;
  d_blocks : dblock list;  (** new heap's blocks, in chain order *)
  d_spec : Spec.Engine.snapshot_level list;
  d_menv : int;
  d_entry : string;
  d_label : int;
  d_epoch : int;  (** incarnation epoch of the reconstruction *)
  d_dspec : dspec_ctx option;
      (** transaction context of the reconstruction *)
}

type packet = Full of image | Delta of delta

type dstats = {
  ds_blocks : int;
  ds_copy : int;
  ds_patch : int;
  ds_lit : int;
  ds_shipped_cells : int;  (** data cells that travel in the delta *)
  ds_total_cells : int;  (** data cells in the new image *)
}

val image_digest : image -> string
(** Content address of the image's semantic payload (excludes the raw
    FIR bytes — the FIR digest already names them — the MASM payload,
    which delta reconstruction inherits from the baseline, and the
    incarnation epoch, which is metadata: two incarnations of the same
    state share a baseline digest), so sender and receiver agree on
    digests for reconstructed images. *)

val diff :
  baseline:image -> image:image -> changed:(int -> int -> bool) ->
  dblock list * dstats
(** [diff ~baseline ~image ~changed] computes the block list shipping
    [image] against [baseline]; [changed idx page] is the heap's dirty
    tracking (a [false] answer asserts the page is byte-identical to the
    baseline). *)

val apply_delta : baseline:image -> delta -> image
(** @raise Corrupt if the delta does not match the baseline (arch / FIR
    digest / block shapes) or the reconstruction's digest disagrees with
    [d_new_digest]. *)

val encode_delta : delta -> string

val decode_packet : string -> packet
(** Either packet kind. @raise Corrupt as {!decode}. *)

(** {2 Cell codec (shared with tests)} *)

val put_value : Buffer.t -> Value.t -> unit
val get_value : Fir.Serial.reader -> Value.t
val cell_equal : Value.t -> Value.t -> bool
(** Bit-exact: floats compare by IEEE bit pattern (-0.0 ≠ 0.0, NaN =
    itself), matching what the wire transports. *)
