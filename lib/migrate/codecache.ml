(* The destination-side recompilation cache.

   The paper's own measurements (Section 5, E1) put FIR migration at
   ~90 % recompilation and ~10 % network transfer — and a migration
   daemon serving a bouncing grid process recompiles the IDENTICAL
   program every time.  This cache keys compiled code by the program's
   content digest (Fir.Digest over the canonical Serial encoding), so a
   warm migration costs transfer + stub link instead of transfer +
   typecheck + full codegen.

   Trust model:
   - an entry is only ever created from a payload that was processed
     locally: typechecked here (verified mode) or accepted under the
     local trust policy (trusted mode).  The digest in the wire header is
     integrity metadata — Wire.decode recomputes it over the received
     bytes and rejects mismatches — never a reason to skip verification
     on a miss;
   - the key includes the ARCHITECTURE name, so a Cisc32-compiled image
     can never serve a Risc64 node (heterogeneous correctness by
     construction of the key);
   - the key includes the VERIFY MODE, so an entry admitted without a
     typecheck (trusted) can never satisfy a request that demands one
     (verified), and vice versa;
   - failed typechecks are cached too (a negative entry), so a repeated
     hostile payload costs one typecheck, not one per delivery.

   Replacement is LRU over a bounded entry count, optionally also
   bounded by the total cached instruction count (the in-memory footprint
   proxy).  Eviction scans for the stalest stamp — caches are small
   (tens of entries), so O(n) eviction is simpler than a linked list and
   never shows up in a profile. *)

open Vm

type verify_mode = Verified | Trusted

let mode_of_trusted trusted = if trusted then Trusted else Verified

type entry = {
  e_program : Fir.Ast.program; (* decoded once, shared read-only *)
  e_verdict : (unit, string) result; (* typecheck verdict at admission *)
  e_masm : Masm.image option; (* None exactly when e_verdict is Error *)
  mutable e_linked : Link.image option;
      (* pre-resolved form of [e_masm], built at admission or memoized on
         first use ([linked_of]); linking is a pure function of the MASM
         image, so sharing it across hits is safe *)
  mutable e_compiled : Compile.image option;
      (* closure-compiled form of [e_linked], same memoization contract
         ([compiled_of]); the compiled image is process-independent, so
         a warm migration hop resumes straight into compiled code *)
  e_instrs : int;
  mutable e_tick : int; (* last-use stamp (LRU) *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

type t = {
  capacity : int; (* max entries; <= 0 disables the cache *)
  max_instrs : int option; (* optional bound on total cached instrs *)
  table : (string * string * verify_mode, entry) Hashtbl.t;
  mutable total_instrs : int;
  mutable tick : int;
  (* counters live in a metrics registry; [stats] is a snapshot view *)
  metrics : Obs.Metrics.t;
  c_lookups : Obs.Metrics.counter;
  c_hits : Obs.Metrics.counter;
  c_misses : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
  c_insertions : Obs.Metrics.counter;
}

let create ?max_instrs ~capacity () =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_lookups = Obs.Metrics.counter metrics "codecache.lookups" in
  let c_hits = Obs.Metrics.counter metrics "codecache.hits" in
  let c_misses = Obs.Metrics.counter metrics "codecache.misses" in
  let c_evictions = Obs.Metrics.counter metrics "codecache.evictions" in
  let c_insertions = Obs.Metrics.counter metrics "codecache.insertions" in
  {
    capacity;
    max_instrs;
    table = Hashtbl.create (max 16 capacity);
    total_instrs = 0;
    tick = 0;
    metrics;
    c_lookups;
    c_hits;
    c_misses;
    c_evictions;
    c_insertions;
  }

let enabled t = t.capacity > 0
let metrics t = t.metrics

(* Thin view: the historical record, snapshotted from the registry. *)
let stats t =
  {
    hits = Obs.Metrics.count t.c_hits;
    misses = Obs.Metrics.count t.c_misses;
    evictions = Obs.Metrics.count t.c_evictions;
    insertions = Obs.Metrics.count t.c_insertions;
  }

let lookups t = Obs.Metrics.count t.c_lookups
let length t = Hashtbl.length t.table
let total_instrs t = t.total_instrs

let hit_rate t =
  let hits = Obs.Metrics.count t.c_hits in
  let total = hits + Obs.Metrics.count t.c_misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let find t ~digest ~arch ~trusted =
  if not (enabled t) then None
  else begin
    Obs.Metrics.incr t.c_lookups;
    let key = digest, arch, mode_of_trusted trusted in
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.tick <- t.tick + 1;
      e.e_tick <- t.tick;
      Obs.Metrics.incr t.c_hits;
      Some e
    | None ->
      Obs.Metrics.incr t.c_misses;
      None
  end

let remove_key t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.table key;
    t.total_instrs <- t.total_instrs - e.e_instrs

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stale) when stale.e_tick <= e.e_tick -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    remove_key t key;
    Obs.Metrics.incr t.c_evictions

let over_budget t =
  Hashtbl.length t.table > t.capacity
  ||
  match t.max_instrs with
  | Some budget -> t.total_instrs > budget
  | None -> false

(* The pre-resolved image for a positive entry, linked at most once and
   shared by every subsequent hit.  [None] for negative entries. *)
let linked_of (e : entry) =
  match e.e_linked with
  | Some _ as l -> l
  | None -> (
    match e.e_masm with
    | None -> None
    | Some masm ->
      let l = Link.link masm in
      e.e_linked <- Some l;
      Some l)

(* The closure-compiled image for a positive entry, compiled at most
   once over the (also memoized) linked form. *)
let compiled_of (e : entry) =
  match e.e_compiled with
  | Some _ as c -> c
  | None -> (
    match linked_of e with
    | None -> None
    | Some linked ->
      let c = Compile.compile linked in
      e.e_compiled <- Some c;
      Some c)

let add t ?linked ?compiled ~digest ~arch ~trusted ~program ~verdict ~masm () =
  if enabled t then begin
    let key = digest, arch, mode_of_trusted trusted in
    let instrs =
      match masm with Some image -> Masm.instr_count image | None -> 0
    in
    remove_key t key;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.table key
      {
        e_program = program;
        e_verdict = verdict;
        e_masm = masm;
        (* a supplied compiled image embeds its linked form; keep the
           two fields consistent so hits share one resolution *)
        e_linked =
          (match compiled with
          | Some c -> Some c.Compile.c_linked
          | None -> linked);
        e_compiled = compiled;
        e_instrs = instrs;
        e_tick = t.tick;
      };
    t.total_instrs <- t.total_instrs + instrs;
    Obs.Metrics.incr t.c_insertions;
    (* the just-added entry carries the freshest tick, so it survives
       unless it alone exceeds the instruction budget *)
    while over_budget t && Hashtbl.length t.table > 0 do
      evict_lru t
    done
  end

let invalidate t ~digest =
  let doomed =
    Hashtbl.fold
      (fun ((d, _, _) as key) _ acc ->
        if String.equal d digest then key :: acc else acc)
      t.table []
  in
  List.iter (remove_key t) doomed

let clear t =
  Hashtbl.reset t.table;
  t.total_instrs <- 0

let report t =
  Printf.sprintf "%d entries (%d instrs), %d hits / %d misses, %d evictions"
    (length t) t.total_instrs
    (Obs.Metrics.count t.c_hits)
    (Obs.Metrics.count t.c_misses)
    (Obs.Metrics.count t.c_evictions)
