(** The metrics registry: named counters, gauges and bucketed histograms
    with p50/p90/p99 estimates.

    This is the uniform substrate behind the per-module statistics that
    used to be hand-rolled records ({!Net.Simnet} traffic,
    {!Migrate.Codecache} / {!Migrate.Server} hit counts, the speculation
    engine's operation counts, the collector's totals).  Those modules
    keep their historical [stats] accessors as thin views over a
    registry; new consumers — [mcc serve --metrics], the benchmark
    tables — query the registry directly.

    Registration is idempotent: asking for an existing name returns the
    existing metric.  Asking for an existing name with a different kind
    raises [Invalid_argument]. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration (idempotent)} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; observations above
    the last bound land in an overflow bucket.  The default is a
    half-decade geometric grid from 1e-6 to 1e9. *)

val default_buckets : float array

(** {2 Recording} *)

val incr : ?by:int -> counter -> unit
val count : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** {2 Histogram queries} *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: the upper bound of the bucket
    holding the q-th observation, clamped to the observed extrema.
    [0.0] when empty. *)

(** {2 Registry-level queries} *)

val names : t -> string list
(** Registered names, oldest first. *)

val mem : t -> string -> bool

val counter_value : t -> string -> int
(** [0] when the name is unregistered. *)

val gauge_read : t -> string -> float
val find_histogram : t -> string -> histogram option
val hist_sum_of : t -> string -> float
val hist_count_of : t -> string -> int

val render : t -> string
(** One human-readable line per metric, in registration order. *)
