(* The metrics registry: named counters, gauges and histograms.

   This replaces the hand-rolled per-module stats records (Simnet traffic
   counters, Codecache / Server hit counters, the speculation engine's
   operation counts, the collector's totals).  Those modules keep their
   old [stats] accessors as thin views over a registry, so existing
   callers are untouched while new consumers — `mcc serve --metrics`, the
   benchmark harness, the cluster's experiment tables — read everything
   through one uniform interface.

   Design constraints, in order:
   - recording must be cheap: a counter bump is one field update, a
     histogram observation is a binary-search-free linear bucket scan
     over a few dozen bounds (the registries sit on scheduler and
     migration hot paths);
   - registration is idempotent: asking for an existing name returns the
     existing metric, so instrument-at-use-site code needs no separate
     setup phase;
   - quantiles are bucket estimates (p50/p90/p99 from fixed bucket upper
     bounds), which is exactly the fidelity the experiment tables need
     and costs O(buckets) with no sample retention. *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  bounds : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 32; order = [] }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.table name m;
    t.order <- name :: t.order;
    m

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name got)
       want)

let counter t name =
  match register t name (fun () -> M_counter { c_value = 0 }) with
  | M_counter c -> c
  | m -> wrong_kind name "counter" m

let gauge t name =
  match register t name (fun () -> M_gauge { g_value = 0.0 }) with
  | M_gauge g -> g
  | m -> wrong_kind name "gauge" m

(* Default buckets: a half-decade geometric grid from 1e-6 to 1e9, wide
   enough for seconds, bytes, cycles and cell counts alike. *)
let default_buckets =
  Array.init 31 (fun k -> 10.0 ** (float_of_int (k - 12) /. 2.0))

let histogram ?(buckets = default_buckets) t name =
  let make () =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: buckets must be increasing")
      buckets;
    M_histogram
      {
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      }
  in
  match register t name make with
  | M_histogram h -> h
  | m -> wrong_kind name "histogram" m

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let count c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count
let hist_max h = if h.h_count = 0 then 0.0 else h.h_max
let hist_min h = if h.h_count = 0 then 0.0 else h.h_min

(* Bucket-estimate quantile: the upper bound of the bucket holding the
   q-th observation, clamped to the observed extrema so tiny samples
   don't report a bucket ceiling nothing ever reached. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let n = Array.length h.bounds in
    let rec walk i cum =
      if i >= n then h.h_max
      else
        let cum = cum + h.counts.(i) in
        if cum >= rank then min h.bounds.(i) h.h_max else walk (i + 1) cum
    in
    max h.h_min (walk 0 0)
  end

(* ------------------------------------------------------------------ *)
(* Registry-level queries                                              *)
(* ------------------------------------------------------------------ *)

let names t = List.rev t.order
let mem t name = Hashtbl.mem t.table name

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (M_counter c) -> c.c_value
  | Some m -> wrong_kind name "counter" m
  | None -> 0

let gauge_read t name =
  match Hashtbl.find_opt t.table name with
  | Some (M_gauge g) -> g.g_value
  | Some m -> wrong_kind name "gauge" m
  | None -> 0.0

let find_histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) -> Some h
  | Some m -> wrong_kind name "histogram" m
  | None -> None

let hist_sum_of t name =
  match find_histogram t name with Some h -> h.h_sum | None -> 0.0

let hist_count_of t name =
  match find_histogram t name with Some h -> h.h_count | None -> 0

(* One human-readable line per metric, in registration order. *)
let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some (M_counter c) ->
        Printf.bprintf buf "%-32s %d\n" name c.c_value
      | Some (M_gauge g) ->
        Printf.bprintf buf "%-32s %g\n" name g.g_value
      | Some (M_histogram h) ->
        Printf.bprintf buf
          "%-32s count=%d sum=%g mean=%g p50=%g p90=%g p99=%g max=%g\n"
          name h.h_count h.h_sum (hist_mean h) (quantile h 0.5)
          (quantile h 0.9) (quantile h 0.99) (hist_max h))
    (names t);
  Buffer.contents buf
