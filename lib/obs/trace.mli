(** Typed event tracing: a bounded ring buffer of timestamped events
    with a JSONL exporter.

    Events are stamped with SIMULATED time (the cluster's discrete-event
    clock, not wall-clock) plus node / pid / rank attribution, [-1]
    where not applicable.  The buffer is a fixed-capacity ring — a long
    run keeps the most recent window and reports how many events it
    overwrote. *)

type gc_kind = Minor | Major

type kind =
  | Spawn
  | Migrate_start of { target : string; bytes : int }
  | Migrate_done of {
      ok : bool;
      cache_hit : bool;
      bytes : int;
      pack_s : float;
      transfer_s : float;
      compile_s : float;
    }
  | Migrate_retry of {
      target : string;
      attempt : int;  (** the transmission that just failed, 1-based *)
      backoff_s : float;  (** sender waits this long before the next *)
      reason : string;  (** "lost" | "partitioned" *)
    }
  | Dup_delivery of { target : string }
      (** a duplicated migration hop arrived; the receiving daemon
          deduplicated it instead of double-spawning *)
  | Cache_hit
  | Cache_miss
  | Spec_enter of { uid : int; depth : int }
  | Spec_commit of { uid : int; durable : bool }
  | Spec_rollback of { uids : int list }
  | Forced_rollback of { level : int }
      (** a dependency cascade rolled this process back; [level < 0]
          means no level was left to restore (the process trapped) *)
  | Node_fail
  | Node_stall of { stall_s : float }  (** injected transient stall *)
  | Link_partition of { peer_a : int; peer_b : int; until_s : float }
      (** a scripted partition window opens; [until_s = infinity] never
          heals *)
  | Suspect of { subject : int; false_positive : bool }
      (** the failure detector suspected [subject]; [false_positive] is
          ground truth the detector itself never sees *)
  | Fenced of { stale_epoch : int; current_epoch : int; what : string }
      (** a stale incarnation was rejected at an interaction point
          ([what]: "schedule" | "send" | "recv" | "migrate" |
          "checkpoint" | "stale_msg") *)
  | Storage_repair of { path : string; replicas : int }
      (** a digest-verified read repaired [replicas] damaged or missing
          replicas of [path] *)
  | Checkpoint of { path : string; bytes : int }
  | Resurrect of { path : string; ok : bool }
  | Gc of { gc_kind : gc_kind; live : int; collected : int }
  | Msg_send of { dst : int; tag : int; cells : int }
  | Msg_recv of { src : int; tag : int; cells : int }
  | Msg_roll of { src : int }
  | Msg_drop of { dst : int; tag : int }
      (** injected fault made the message undeliverable *)
  | Msg_dup of { dst : int; tag : int }
      (** injected fault delivered the message twice *)
  | Service_bind of { laddr : int; new_rank : int; old_rank : int }
      (** a registered service was re-homed: its logical address now
          resolves to [new_rank]; [old_rank] forwards until its TTL *)
  | Msg_forward of { laddr : int; from_rank : int; to_rank : int; hops : int }
      (** a send that resolved to a vacated rank was relayed through a
          forwarder chain of [hops] links *)
  | Recipient_moved of { laddr : int; new_rank : int }
      (** a sender consumed a moved notice and rebound its cached
          binding for [laddr] to [new_rank] *)
  | Forward_expired of { laddr : int; rank : int }
      (** a send resolved to a vacated rank whose forwarder TTL had
          passed; the sender got the typed MSG_MOVED error *)
  | Balance_tick of { spread : float; proposed : int; moved : int }
      (** the placement policy engine sampled load gauges: [spread] is
          max-min composite node load, [proposed] how many moves the
          planner emitted, [moved] how many committed.  Only recorded
          when the engine is enabled, so legacy traces are unchanged. *)
  | Dspec_open of { txn : int; uid : int }
      (** a process opened a distributed speculative transaction: its
          current level [uid] becomes the transaction's root region *)
  | Dspec_prepare of { txn : int; parts : int list }
      (** the coordinator started a commit round over participant pids *)
  | Dspec_fence of {
      txn : int;
      part_rank : int;
      stale_epoch : int;
      current_epoch : int;
    }
      (** a participant's recorded incarnation epoch was superseded; its
          prepare-ack is void and the transaction must abort (a zombie
          can never ack for a dead incarnation) *)
  | Dspec_commit of { txn : int; parts : int list }
      (** all participants acked at their recorded epochs; the decision
          is commit and every joined level may fold durably *)
  | Dspec_abort of { txn : int; parts : int list; reason : string }
      (** the decision is abort: every participant rolls back
          ([reason]: "fence" | "crash_in_commit" | "participant_dead" |
          "coordinator_dead" | "coordinator_rolled_back") *)
  | Dspec_compensate of { txn : int; discarded : int }
      (** mailbox compensation un-delivered [discarded] in-flight
          messages sent from the doomed region *)

type event = {
  time : float;  (** simulated seconds *)
  node : int;
  pid : int;
  rank : int;
  kind : kind;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 events.
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val record :
  t -> time:float -> ?node:int -> ?pid:int -> ?rank:int -> kind -> unit

val clear : t -> unit

val events : t -> event list
(** In recording order, oldest first (monotone per node, not globally). *)

val timeline : t -> event list
(** Stably sorted by simulated time: one cluster-wide monotone timeline;
    recording order breaks ties. *)

val kind_label : kind -> string

val event_to_json : event -> string
(** One JSON object, no trailing newline. *)

val to_jsonl : t -> string
(** The {!timeline}, one JSON object per line. *)

val write_jsonl : t -> out_channel -> unit
