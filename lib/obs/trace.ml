(* Typed event tracing: a bounded ring buffer of timestamped events.

   Every event carries the SIMULATED time at which it happened (the
   cluster's discrete-event clock, not wall-clock: the reproduction's
   claims are about simulated cost accounting, and wall-clock stamps
   would vary run to run and host to host), plus the node / pid / rank
   attribution the per-phase analyses need (-1 where not applicable).

   The buffer is a fixed-capacity ring: recording never allocates
   unboundedly and a long soak run keeps the most recent window.  The
   number of overwritten events is reported so an exporter can say what
   it dropped.

   Export is JSONL — one self-describing JSON object per line — ordered
   by simulated time.  Nodes advance on independent local clocks, so raw
   recording order is only per-node monotone; the exporter stably sorts
   by timestamp to present one cluster-wide monotone timeline. *)

type gc_kind = Minor | Major

type kind =
  | Spawn
  | Migrate_start of { target : string; bytes : int }
  | Migrate_done of {
      ok : bool;
      cache_hit : bool;
      bytes : int;
      pack_s : float;
      transfer_s : float;
      compile_s : float;
    }
  | Migrate_retry of {
      target : string;
      attempt : int;
      backoff_s : float;
      reason : string;
    }
  | Dup_delivery of { target : string }
  | Cache_hit
  | Cache_miss
  | Spec_enter of { uid : int; depth : int }
  | Spec_commit of { uid : int; durable : bool }
  | Spec_rollback of { uids : int list }
  | Forced_rollback of { level : int }
  | Node_fail
  | Node_stall of { stall_s : float }
  | Link_partition of { peer_a : int; peer_b : int; until_s : float }
  | Suspect of { subject : int; false_positive : bool }
  | Fenced of { stale_epoch : int; current_epoch : int; what : string }
  | Storage_repair of { path : string; replicas : int }
  | Checkpoint of { path : string; bytes : int }
  | Resurrect of { path : string; ok : bool }
  | Gc of { gc_kind : gc_kind; live : int; collected : int }
  | Msg_send of { dst : int; tag : int; cells : int }
  | Msg_recv of { src : int; tag : int; cells : int }
  | Msg_roll of { src : int }
  | Msg_drop of { dst : int; tag : int }
  | Msg_dup of { dst : int; tag : int }
  | Service_bind of { laddr : int; new_rank : int; old_rank : int }
  | Msg_forward of { laddr : int; from_rank : int; to_rank : int; hops : int }
  | Recipient_moved of { laddr : int; new_rank : int }
  | Forward_expired of { laddr : int; rank : int }
  | Balance_tick of { spread : float; proposed : int; moved : int }
  | Dspec_open of { txn : int; uid : int }
  | Dspec_prepare of { txn : int; parts : int list }
  | Dspec_fence of {
      txn : int;
      part_rank : int;
      stale_epoch : int;
      current_epoch : int;
    }
  | Dspec_commit of { txn : int; parts : int list }
  | Dspec_abort of { txn : int; parts : int list; reason : string }
  | Dspec_compensate of { txn : int; discarded : int }

type event = {
  time : float; (* simulated seconds *)
  node : int; (* -1 when not attributable *)
  pid : int;
  rank : int;
  kind : kind;
}

type t = {
  buf : event option array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  { buf = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let record t ~time ?(node = -1) ?(pid = -1) ?(rank = -1) kind =
  let cap = capacity t in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.head) <- Some { time; node; pid; rank; kind };
  t.head <- (t.head + 1) mod cap

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

(* Oldest-recorded first (per-node monotone; see [to_jsonl] for the
   cluster-wide monotone ordering). *)
let events t =
  let cap = capacity t in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let kind_label = function
  | Spawn -> "spawn"
  | Migrate_start _ -> "migrate_start"
  | Migrate_done _ -> "migrate_done"
  | Migrate_retry _ -> "migrate_retry"
  | Dup_delivery _ -> "dup_delivery"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Spec_enter _ -> "spec_enter"
  | Spec_commit _ -> "spec_commit"
  | Spec_rollback _ -> "spec_rollback"
  | Forced_rollback _ -> "forced_rollback"
  | Node_fail -> "node_fail"
  | Node_stall _ -> "node_stall"
  | Link_partition _ -> "link_partition"
  | Suspect _ -> "suspect"
  | Fenced _ -> "fenced"
  | Storage_repair _ -> "storage_repair"
  | Checkpoint _ -> "checkpoint"
  | Resurrect _ -> "resurrect"
  | Gc _ -> "gc"
  | Msg_send _ -> "msg_send"
  | Msg_recv _ -> "msg_recv"
  | Msg_roll _ -> "msg_roll"
  | Msg_drop _ -> "msg_drop"
  | Msg_dup _ -> "msg_dup"
  | Service_bind _ -> "service_bind"
  | Msg_forward _ -> "msg_forward"
  | Recipient_moved _ -> "recipient_moved"
  | Forward_expired _ -> "forward_expired"
  | Balance_tick _ -> "balance_tick"
  | Dspec_open _ -> "dspec_open"
  | Dspec_prepare _ -> "dspec_prepare"
  | Dspec_fence _ -> "dspec_fence"
  | Dspec_commit _ -> "dspec_commit"
  | Dspec_abort _ -> "dspec_abort"
  | Dspec_compensate _ -> "dspec_compensate"

(* ------------------------------------------------------------------ *)
(* JSONL export                                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  (* shortest round-trippable form that is still valid JSON *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let kind_fields buf = function
  | Migrate_start { target; bytes } ->
    Printf.bprintf buf ",\"target\":\"%s\",\"bytes\":%d"
      (json_escape target) bytes
  | Migrate_done { ok; cache_hit; bytes; pack_s; transfer_s; compile_s } ->
    Printf.bprintf buf
      ",\"ok\":%b,\"cache_hit\":%b,\"bytes\":%d,\"pack_s\":%s,\"transfer_s\":%s,\"compile_s\":%s"
      ok cache_hit bytes (json_float pack_s) (json_float transfer_s)
      (json_float compile_s)
  | Migrate_retry { target; attempt; backoff_s; reason } ->
    Printf.bprintf buf
      ",\"target\":\"%s\",\"attempt\":%d,\"backoff_s\":%s,\"reason\":\"%s\""
      (json_escape target) attempt (json_float backoff_s)
      (json_escape reason)
  | Dup_delivery { target } ->
    Printf.bprintf buf ",\"target\":\"%s\"" (json_escape target)
  | Forced_rollback { level } -> Printf.bprintf buf ",\"level\":%d" level
  | Node_stall { stall_s } ->
    Printf.bprintf buf ",\"stall_s\":%s" (json_float stall_s)
  | Link_partition { peer_a; peer_b; until_s } ->
    Printf.bprintf buf ",\"peer_a\":%d,\"peer_b\":%d,\"until_s\":%s"
      peer_a peer_b
      (if until_s = infinity then "null" else json_float until_s)
  | Msg_drop { dst; tag } | Msg_dup { dst; tag } ->
    Printf.bprintf buf ",\"dst\":%d,\"tag\":%d" dst tag
  | Suspect { subject; false_positive } ->
    Printf.bprintf buf ",\"subject\":%d,\"false_positive\":%b" subject
      false_positive
  | Fenced { stale_epoch; current_epoch; what } ->
    Printf.bprintf buf
      ",\"stale_epoch\":%d,\"current_epoch\":%d,\"what\":\"%s\"" stale_epoch
      current_epoch (json_escape what)
  | Storage_repair { path; replicas } ->
    Printf.bprintf buf ",\"path\":\"%s\",\"replicas\":%d" (json_escape path)
      replicas
  | Spawn | Cache_hit | Cache_miss | Node_fail -> ()
  | Spec_enter { uid; depth } ->
    Printf.bprintf buf ",\"uid\":%d,\"depth\":%d" uid depth
  | Spec_commit { uid; durable } ->
    Printf.bprintf buf ",\"uid\":%d,\"durable\":%b" uid durable
  | Spec_rollback { uids } ->
    Printf.bprintf buf ",\"uids\":[%s]"
      (String.concat "," (List.map string_of_int uids))
  | Checkpoint { path; bytes } ->
    Printf.bprintf buf ",\"path\":\"%s\",\"bytes\":%d" (json_escape path)
      bytes
  | Resurrect { path; ok } ->
    Printf.bprintf buf ",\"path\":\"%s\",\"ok\":%b" (json_escape path) ok
  | Gc { gc_kind; live; collected } ->
    Printf.bprintf buf ",\"gc_kind\":\"%s\",\"live\":%d,\"collected\":%d"
      (match gc_kind with Minor -> "minor" | Major -> "major")
      live collected
  | Msg_send { dst; tag; cells } ->
    Printf.bprintf buf ",\"dst\":%d,\"tag\":%d,\"cells\":%d" dst tag cells
  | Msg_recv { src; tag; cells } ->
    Printf.bprintf buf ",\"src\":%d,\"tag\":%d,\"cells\":%d" src tag cells
  | Msg_roll { src } -> Printf.bprintf buf ",\"src\":%d" src
  | Service_bind { laddr; new_rank; old_rank } ->
    Printf.bprintf buf ",\"laddr\":%d,\"new_rank\":%d,\"old_rank\":%d" laddr
      new_rank old_rank
  | Msg_forward { laddr; from_rank; to_rank; hops } ->
    Printf.bprintf buf ",\"laddr\":%d,\"from_rank\":%d,\"to_rank\":%d,\"hops\":%d"
      laddr from_rank to_rank hops
  | Recipient_moved { laddr; new_rank } ->
    Printf.bprintf buf ",\"laddr\":%d,\"new_rank\":%d" laddr new_rank
  | Forward_expired { laddr; rank } ->
    Printf.bprintf buf ",\"laddr\":%d,\"rank\":%d" laddr rank
  | Balance_tick { spread; proposed; moved } ->
    Printf.bprintf buf ",\"spread\":%s,\"proposed\":%d,\"moved\":%d"
      (json_float spread) proposed moved
  | Dspec_open { txn; uid } ->
    Printf.bprintf buf ",\"txn\":%d,\"uid\":%d" txn uid
  | Dspec_prepare { txn; parts } | Dspec_commit { txn; parts } ->
    Printf.bprintf buf ",\"txn\":%d,\"parts\":[%s]" txn
      (String.concat "," (List.map string_of_int parts))
  | Dspec_fence { txn; part_rank; stale_epoch; current_epoch } ->
    Printf.bprintf buf
      ",\"txn\":%d,\"part_rank\":%d,\"stale_epoch\":%d,\"current_epoch\":%d"
      txn part_rank stale_epoch current_epoch
  | Dspec_abort { txn; parts; reason } ->
    Printf.bprintf buf ",\"txn\":%d,\"parts\":[%s],\"reason\":\"%s\"" txn
      (String.concat "," (List.map string_of_int parts))
      (json_escape reason)
  | Dspec_compensate { txn; discarded } ->
    Printf.bprintf buf ",\"txn\":%d,\"discarded\":%d" txn discarded

let event_to_json e =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"t\":%s,\"ev\":\"%s\"" (json_float e.time)
    (kind_label e.kind);
  if e.node >= 0 then Printf.bprintf buf ",\"node\":%d" e.node;
  if e.pid >= 0 then Printf.bprintf buf ",\"pid\":%d" e.pid;
  if e.rank >= 0 then Printf.bprintf buf ",\"rank\":%d" e.rank;
  kind_fields buf e.kind;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Cluster-wide monotone timeline: a stable sort by simulated time (the
   recording order breaks ties, preserving causal order within a node). *)
let timeline t =
  List.stable_sort (fun a b -> Float.compare a.time b.time) (events t)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json e);
      Buffer.add_char buf '\n')
    (timeline t);
  Buffer.contents buf

let write_jsonl t oc = output_string oc (to_jsonl t)
