(** Canonical binary serialization of FIR programs — the payload migration
    actually ships (the target re-typechecks and recompiles it; machine
    code never travels, paper Section 4.2.2).

    Fixed-width little-endian integers, length-prefixed strings, one tag
    byte per constructor, an Adler-32 checksum over the body, and a
    version stamp.  {!decode} fails cleanly on corruption.

    The primitive readers/writers are exposed: the MASM and process-image
    codecs ({!Vm.Masm}, {!Migrate.Wire}) are built from the same
    toolkit. *)

exception Corrupt of string

val magic : string
val version : int

(** {2 Primitive writers} *)

val put_u8 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int -> unit
val put_f64_exact : Buffer.t -> float -> unit
(** Exact bit pattern, split across two fields (OCaml ints are 63-bit). *)

val put_f64_bits : Buffer.t -> float -> unit
(** Compact 8-byte exact encoding. *)

val put_string : Buffer.t -> string -> unit
val put_bool : Buffer.t -> bool -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

val put_uvarint : Buffer.t -> int -> unit
(** LEB128: 1 byte for values < 128, up to 9 bytes for the full 63-bit
    pattern (negative ints encode as their raw bit pattern). *)

val put_varint : Buffer.t -> int -> unit
(** Zigzag + LEB128: small magnitudes of either sign stay short — the
    heap-segment cell encoding of {!Migrate.Wire}. *)

(** {2 Primitive readers} *)

type reader = { data : string; mutable pos : int }

val get_u8 : reader -> int
val get_i64 : reader -> int
val get_f64_exact : reader -> float
val get_f64_bits : reader -> float
val get_string : reader -> string
val get_bool : reader -> bool
val get_list : reader -> (reader -> 'a) -> 'a list
val get_uvarint : reader -> int
val get_varint : reader -> int

val adler32 : string -> int

val encoded_digest : string -> string
(** 64-bit FNV-1a content digest of already-encoded bytes, as a 16-char
    hex string — the content address of a FIR payload.  A migration
    server can digest received bytes without decoding them first; see
    {!Digest} for the program-level API. *)

(** {2 Shared operator codes} *)

val unop_code : Ast.unop -> int
val unop_of_code : int -> Ast.unop
val binop_code : Ast.binop -> int
val binop_of_code : int -> Ast.binop
val put_ty : Buffer.t -> Types.ty -> unit
val get_ty : reader -> Types.ty

(** {2 Programs} *)

val encode : Ast.program -> string
val decode : string -> Ast.program
(** @raise Corrupt on bad magic, version, length, checksum or trailing
    garbage. *)
