(* Content digest of a FIR program.

   A program's identity is the 64-bit FNV-1a hash of its canonical
   [Serial] encoding, rendered as a 16-char hex string.  Two programs
   share a digest exactly when their canonical encodings are
   byte-identical, so the digest is a content address: the recompilation
   cache (Migrate.Codecache) keys compiled code by it, and the process
   image format (Migrate.Wire v6) carries it as integrity metadata that
   the receiver recomputes over the received FIR bytes.

   FNV-1a is not collision-resistant against adversaries; it is NOT a
   trust primitive.  The digest gates nothing security-relevant on its
   own: an untrusted image is still structurally verified and its FIR
   re-typechecked on every cache miss, and a cache hit only reuses code
   that was compiled LOCALLY from a payload that typechecked locally. *)

let of_encoded = Serial.encoded_digest
let of_program p = of_encoded (Serial.encode p)

let hex_length = 16
