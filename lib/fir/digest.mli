(** Content digest of a FIR program: 64-bit FNV-1a over the canonical
    {!Serial} encoding, as a 16-char hex string.

    The digest is a content address — the recompilation cache
    ({!Migrate.Codecache}) keys compiled code by it, and process images
    ({!Migrate.Wire} v6) carry it so the receiver can cheaply confirm the
    FIR payload is the one the sender digested.  It is integrity
    metadata, not a trust primitive: verification and typechecking still
    run on every cache miss. *)

val of_program : Ast.program -> string
(** Digest of the program's canonical encoding. *)

val of_encoded : string -> string
(** Digest of already-encoded bytes (equals {!of_program} of the decoded
    program); lets a server digest a received payload without decoding. *)

val hex_length : int
(** Length of the hex digest string (16). *)
