(* Canonical binary serialization of FIR programs.

   Migration never ships machine code: it ships the FIR, which the target
   re-typechecks and recompiles (paper, Section 4.2.2).  This module defines
   the canonical, architecture-independent byte format for FIR code:
   little-endian fixed-width integers, length-prefixed strings, one tag byte
   per constructor, and an Adler-32 checksum over the body.

   The format is versioned; [decode] fails cleanly on a bad magic, version,
   truncation, or checksum mismatch (all of which the migration server must
   reject rather than crash on). *)

open Ast

exception Corrupt of string

let magic = "MFIR"

(* v4: lists are tagged streams (one continuation byte per element, no
   length prefix), so [put_list] emits in a single traversal. *)
let version = 4

(* ------------------------------------------------------------------ *)
(* Primitive encoders.                                                 *)
(* ------------------------------------------------------------------ *)

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let put_i64 buf n =
  for k = 0 to 7 do
    put_u8 buf ((n asr (8 * k)) land 0xff)
  done

(* Compact 8-byte float encoding (exact bit pattern, little-endian). *)
let put_f64_bits buf f =
  let bits = Int64.bits_of_float f in
  for k = 0 to 7 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * k)) land 0xff)
  done

(* OCaml ints are 63-bit, so a float's Int64 bit pattern is split across
   two fields to round-trip exactly. *)
let put_f64_exact buf f =
  let bits = Int64.bits_of_float f in
  put_i64 buf (Int64.to_int (Int64.logand bits 0xffffffffL));
  put_i64 buf (Int64.to_int (Int64.shift_right_logical bits 32))

let put_string buf s =
  put_i64 buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = put_u8 buf (if b then 1 else 0)

(* Tagged-stream encoding: a continuation byte before each element and a
   terminator after the last.  One traversal of the list, no length
   prefix to precompute (the old format walked every list twice, once for
   [List.length] and once to emit). *)
let put_list buf f xs =
  List.iter
    (fun x ->
      put_u8 buf 1;
      f buf x)
    xs;
  put_u8 buf 0

(* LEB128 variable-width integers for the wire layer's heap segments
   (process images are dominated by cell dumps of small integers; a
   varint turns most 8-byte fields into 1 byte).  [put_uvarint] treats
   the int as a raw 63-bit pattern — [lsr] makes negative OCaml ints
   terminate — and [put_varint] zigzags first so small negative values
   stay short. *)
let put_uvarint buf n =
  let n = ref n in
  let continue_ = ref true in
  while !continue_ do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      put_u8 buf b;
      continue_ := false
    end
    else put_u8 buf (b lor 0x80)
  done

let put_varint buf n = put_uvarint buf ((n lsl 1) lxor (n asr 62))

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated input")

let get_u8 r =
  need r 1;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_i64 r =
  need r 8;
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + k]
  done;
  r.pos <- r.pos + 8;
  !v

let get_f64_bits r =
  need r 8;
  let bits = ref 0L in
  for k = 7 downto 0 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.data.[r.pos + k]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let get_f64_exact r =
  let lo = get_i64 r in
  let hi = get_i64 r in
  let bits =
    Int64.logor
      (Int64.of_int (lo land 0xffffffff))
      (Int64.shift_left (Int64.of_int hi) 32)
  in
  Int64.float_of_bits bits

let get_string r =
  let n = get_i64 r in
  if n < 0 || n > String.length r.data - r.pos then
    raise (Corrupt "bad string length");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_bool r = get_u8 r <> 0

let get_list r f =
  (* elements arrive as a tagged stream; memory is bounded by the input
     length because every element consumes at least its tag byte *)
  let rec go acc =
    match get_u8 r with
    | 0 -> List.rev acc
    | 1 -> go (f r :: acc)
    | n -> raise (Corrupt (Printf.sprintf "bad list tag %d" n))
  in
  go []

let get_uvarint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_varint r =
  let u = get_uvarint r in
  (u lsr 1) lxor (-(u land 1))

(* ------------------------------------------------------------------ *)
(* Adler-32.                                                           *)
(* ------------------------------------------------------------------ *)

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

(* ------------------------------------------------------------------ *)
(* Content digest.                                                      *)
(* ------------------------------------------------------------------ *)

(* 64-bit FNV-1a over already-encoded bytes, as a 16-char hex string.
   This is the content address of a FIR program (see {!Digest}): a
   migration server can digest the received payload without decoding it
   first.  Adler-32 stays the per-message transport checksum; the digest
   is the cache/identity key (far better dispersion, stable across
   transports). *)
let encoded_digest s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Types.                                                              *)
(* ------------------------------------------------------------------ *)

let rec put_ty buf = function
  | Types.Tunit -> put_u8 buf 0
  | Types.Tint -> put_u8 buf 1
  | Types.Tfloat -> put_u8 buf 2
  | Types.Tbool -> put_u8 buf 3
  | Types.Tenum n ->
    put_u8 buf 4;
    put_i64 buf n
  | Types.Tptr t ->
    put_u8 buf 5;
    put_ty buf t
  | Types.Ttuple ts ->
    put_u8 buf 6;
    put_list buf put_ty ts
  | Types.Traw -> put_u8 buf 7
  | Types.Tfun ts ->
    put_u8 buf 8;
    put_list buf put_ty ts
  | Types.Tany -> put_u8 buf 9

let rec get_ty r =
  match get_u8 r with
  | 0 -> Types.Tunit
  | 1 -> Types.Tint
  | 2 -> Types.Tfloat
  | 3 -> Types.Tbool
  | 4 -> Types.Tenum (get_i64 r)
  | 5 -> Types.Tptr (get_ty r)
  | 6 -> Types.Ttuple (get_list r get_ty)
  | 7 -> Types.Traw
  | 8 -> Types.Tfun (get_list r get_ty)
  | 9 -> Types.Tany
  | n -> raise (Corrupt (Printf.sprintf "bad type tag %d" n))

(* ------------------------------------------------------------------ *)
(* Variables, operators, atoms.                                        *)
(* ------------------------------------------------------------------ *)

let put_var buf v =
  put_i64 buf (Var.id v);
  put_string buf (Var.name v)

let get_var r =
  let id = get_i64 r in
  let name = get_string r in
  Var.of_id ~id ~name

let unop_code = function
  | Neg -> 0
  | Not -> 1
  | Fneg -> 2
  | Int_of_float -> 3
  | Float_of_int -> 4
  | Int_of_bool -> 5
  | Int_of_enum -> 6

let unop_of_code = function
  | 0 -> Neg
  | 1 -> Not
  | 2 -> Fneg
  | 3 -> Int_of_float
  | 4 -> Float_of_int
  | 5 -> Int_of_bool
  | 6 -> Int_of_enum
  | n -> raise (Corrupt (Printf.sprintf "bad unop code %d" n))

let binop_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | Band -> 5
  | Bor -> 6
  | Bxor -> 7
  | Shl -> 8
  | Shr -> 9
  | Eq -> 10
  | Ne -> 11
  | Lt -> 12
  | Le -> 13
  | Gt -> 14
  | Ge -> 15
  | Fadd -> 16
  | Fsub -> 17
  | Fmul -> 18
  | Fdiv -> 19
  | Feq -> 20
  | Fne -> 21
  | Flt -> 22
  | Fle -> 23
  | Fgt -> 24
  | Fge -> 25
  | And -> 26
  | Or -> 27
  | Padd -> 28
  | Peq -> 29

let binop_of_code = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> Rem
  | 5 -> Band
  | 6 -> Bor
  | 7 -> Bxor
  | 8 -> Shl
  | 9 -> Shr
  | 10 -> Eq
  | 11 -> Ne
  | 12 -> Lt
  | 13 -> Le
  | 14 -> Gt
  | 15 -> Ge
  | 16 -> Fadd
  | 17 -> Fsub
  | 18 -> Fmul
  | 19 -> Fdiv
  | 20 -> Feq
  | 21 -> Fne
  | 22 -> Flt
  | 23 -> Fle
  | 24 -> Fgt
  | 25 -> Fge
  | 26 -> And
  | 27 -> Or
  | 28 -> Padd
  | 29 -> Peq
  | n -> raise (Corrupt (Printf.sprintf "bad binop code %d" n))

let put_atom buf = function
  | Unit -> put_u8 buf 0
  | Int n ->
    put_u8 buf 1;
    put_i64 buf n
  | Float f ->
    put_u8 buf 2;
    put_f64_exact buf f
  | Bool b ->
    put_u8 buf 3;
    put_bool buf b
  | Enum (card, v) ->
    put_u8 buf 4;
    put_i64 buf card;
    put_i64 buf v
  | Var v ->
    put_u8 buf 5;
    put_var buf v
  | Fun f ->
    put_u8 buf 6;
    put_string buf f
  | Nil t ->
    put_u8 buf 7;
    put_ty buf t

let get_atom r =
  match get_u8 r with
  | 0 -> Unit
  | 1 -> Int (get_i64 r)
  | 2 -> Float (get_f64_exact r)
  | 3 -> Bool (get_bool r)
  | 4 ->
    let card = get_i64 r in
    let v = get_i64 r in
    Enum (card, v)
  | 5 -> Var (get_var r)
  | 6 -> Fun (get_string r)
  | 7 -> Nil (get_ty r)
  | n -> raise (Corrupt (Printf.sprintf "bad atom tag %d" n))

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

let rec put_exp buf = function
  | Let_atom (v, t, a, e) ->
    put_u8 buf 0;
    put_var buf v;
    put_ty buf t;
    put_atom buf a;
    put_exp buf e
  | Let_unop (v, t, op, a, e) ->
    put_u8 buf 1;
    put_var buf v;
    put_ty buf t;
    put_u8 buf (unop_code op);
    put_atom buf a;
    put_exp buf e
  | Let_binop (v, t, op, a, b, e) ->
    put_u8 buf 2;
    put_var buf v;
    put_ty buf t;
    put_u8 buf (binop_code op);
    put_atom buf a;
    put_atom buf b;
    put_exp buf e
  | Let_tuple (v, fields, e) ->
    put_u8 buf 3;
    put_var buf v;
    put_list buf
      (fun buf (t, a) ->
        put_ty buf t;
        put_atom buf a)
      fields;
    put_exp buf e
  | Let_array (v, t, size, init, e) ->
    put_u8 buf 4;
    put_var buf v;
    put_ty buf t;
    put_atom buf size;
    put_atom buf init;
    put_exp buf e
  | Let_string (v, s, e) ->
    put_u8 buf 5;
    put_var buf v;
    put_string buf s;
    put_exp buf e
  | Let_proj (v, t, a, i, e) ->
    put_u8 buf 6;
    put_var buf v;
    put_ty buf t;
    put_atom buf a;
    put_i64 buf i;
    put_exp buf e
  | Set_proj (a, i, x, e) ->
    put_u8 buf 7;
    put_atom buf a;
    put_i64 buf i;
    put_atom buf x;
    put_exp buf e
  | Let_load (v, t, a, i, e) ->
    put_u8 buf 8;
    put_var buf v;
    put_ty buf t;
    put_atom buf a;
    put_atom buf i;
    put_exp buf e
  | Store (a, i, x, e) ->
    put_u8 buf 9;
    put_atom buf a;
    put_atom buf i;
    put_atom buf x;
    put_exp buf e
  | Let_ext (v, t, name, args, e) ->
    put_u8 buf 10;
    put_var buf v;
    put_ty buf t;
    put_string buf name;
    put_list buf put_atom args;
    put_exp buf e
  | If (a, e1, e2) ->
    put_u8 buf 11;
    put_atom buf a;
    put_exp buf e1;
    put_exp buf e2
  | Switch (a, cases, default) ->
    put_u8 buf 12;
    put_atom buf a;
    put_list buf
      (fun buf (n, e) ->
        put_i64 buf n;
        put_exp buf e)
      cases;
    put_exp buf default
  | Call (f, args) ->
    put_u8 buf 13;
    put_atom buf f;
    put_list buf put_atom args
  | Exit a ->
    put_u8 buf 14;
    put_atom buf a
  | Migrate (i, dst, f, args) ->
    put_u8 buf 15;
    put_i64 buf i;
    put_atom buf dst;
    put_atom buf f;
    put_list buf put_atom args
  | Speculate (f, args) ->
    put_u8 buf 16;
    put_atom buf f;
    put_list buf put_atom args
  | Commit (l, f, args) ->
    put_u8 buf 17;
    put_atom buf l;
    put_atom buf f;
    put_list buf put_atom args
  | Rollback (l, c) ->
    put_u8 buf 18;
    put_atom buf l;
    put_atom buf c
  | Let_cast (v, t, a, e) ->
    put_u8 buf 19;
    put_var buf v;
    put_ty buf t;
    put_atom buf a;
    put_exp buf e

let rec get_exp r =
  match get_u8 r with
  | 0 ->
    let v = get_var r in
    let t = get_ty r in
    let a = get_atom r in
    Let_atom (v, t, a, get_exp r)
  | 1 ->
    let v = get_var r in
    let t = get_ty r in
    let op = unop_of_code (get_u8 r) in
    let a = get_atom r in
    Let_unop (v, t, op, a, get_exp r)
  | 2 ->
    let v = get_var r in
    let t = get_ty r in
    let op = binop_of_code (get_u8 r) in
    let a = get_atom r in
    let b = get_atom r in
    Let_binop (v, t, op, a, b, get_exp r)
  | 3 ->
    let v = get_var r in
    let fields =
      get_list r (fun r ->
          let t = get_ty r in
          let a = get_atom r in
          t, a)
    in
    Let_tuple (v, fields, get_exp r)
  | 4 ->
    let v = get_var r in
    let t = get_ty r in
    let size = get_atom r in
    let init = get_atom r in
    Let_array (v, t, size, init, get_exp r)
  | 5 ->
    let v = get_var r in
    let s = get_string r in
    Let_string (v, s, get_exp r)
  | 6 ->
    let v = get_var r in
    let t = get_ty r in
    let a = get_atom r in
    let i = get_i64 r in
    Let_proj (v, t, a, i, get_exp r)
  | 7 ->
    let a = get_atom r in
    let i = get_i64 r in
    let x = get_atom r in
    Set_proj (a, i, x, get_exp r)
  | 8 ->
    let v = get_var r in
    let t = get_ty r in
    let a = get_atom r in
    let i = get_atom r in
    Let_load (v, t, a, i, get_exp r)
  | 9 ->
    let a = get_atom r in
    let i = get_atom r in
    let x = get_atom r in
    Store (a, i, x, get_exp r)
  | 10 ->
    let v = get_var r in
    let t = get_ty r in
    let name = get_string r in
    let args = get_list r get_atom in
    Let_ext (v, t, name, args, get_exp r)
  | 11 ->
    let a = get_atom r in
    let e1 = get_exp r in
    let e2 = get_exp r in
    If (a, e1, e2)
  | 12 ->
    let a = get_atom r in
    let cases =
      get_list r (fun r ->
          let n = get_i64 r in
          let e = get_exp r in
          n, e)
    in
    Switch (a, cases, get_exp r)
  | 13 ->
    let f = get_atom r in
    Call (f, get_list r get_atom)
  | 14 -> Exit (get_atom r)
  | 15 ->
    let i = get_i64 r in
    let dst = get_atom r in
    let f = get_atom r in
    Migrate (i, dst, f, get_list r get_atom)
  | 16 ->
    let f = get_atom r in
    Speculate (f, get_list r get_atom)
  | 17 ->
    let l = get_atom r in
    let f = get_atom r in
    Commit (l, f, get_list r get_atom)
  | 18 ->
    let l = get_atom r in
    let c = get_atom r in
    Rollback (l, c)
  | 19 ->
    let v = get_var r in
    let t = get_ty r in
    let a = get_atom r in
    Let_cast (v, t, a, get_exp r)
  | n -> raise (Corrupt (Printf.sprintf "bad expression tag %d" n))

(* ------------------------------------------------------------------ *)
(* Programs.                                                           *)
(* ------------------------------------------------------------------ *)

let put_fundef buf fd =
  put_string buf fd.f_name;
  put_list buf
    (fun buf (v, t) ->
      put_var buf v;
      put_ty buf t)
    fd.f_params;
  put_exp buf fd.f_body

let get_fundef r =
  let f_name = get_string r in
  let f_params =
    get_list r (fun r ->
        let v = get_var r in
        let t = get_ty r in
        v, t)
  in
  let f_body = get_exp r in
  { f_name; f_params; f_body }

(* The body buffer is reused across calls — pack re-encodes a program on
   every migration, and reallocating a multi-hundred-KB buffer each time
   is visible in pack wall time.  [Buffer.clear] keeps the storage, so
   after the first encoding the buffer is pre-sized to the previous
   program's footprint.  (Nothing in this module is reentrant or
   thread-safe; [encode] never calls itself.) *)
let encode_body = Buffer.create 4096

let encode p =
  let body = encode_body in
  Buffer.clear body;
  put_string body p.p_main;
  put_list body put_fundef
    (fold_funs (fun fd acc -> fd :: acc) p []);
  let body = Buffer.contents body in
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf magic;
  put_i64 buf version;
  put_i64 buf (adler32 body);
  put_i64 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let decode s =
  let r = { data = s; pos = 0 } in
  need r 4;
  let m = String.sub s 0 4 in
  r.pos <- 4;
  if not (String.equal m magic) then raise (Corrupt "bad magic");
  let v = get_i64 r in
  if v <> version then
    raise (Corrupt (Printf.sprintf "version mismatch: got %d, want %d" v
                      version));
  let sum = get_i64 r in
  let len = get_i64 r in
  if len < 0 || r.pos + len > String.length s then
    raise (Corrupt "bad body length");
  let body = String.sub s r.pos len in
  if adler32 body <> sum then raise (Corrupt "checksum mismatch");
  let r = { data = body; pos = 0 } in
  let main = get_string r in
  let funs = get_list r get_fundef in
  if r.pos <> String.length body then raise (Corrupt "trailing garbage");
  program funs ~main
