(** MASM: the virtual instruction set targeted by the code generator —
    the stand-in for the paper's machine-specific assembly (IA32 /
    simulated RISC).

    A register machine: each function gets the target's general-purpose
    registers plus numbered spill slots; heap access instructions perform
    the pointer-table validation of Section 4.1.1 by construction.  A
    compiled image serializes — that is the payload of the paper's
    "binary migration" fast path between machines of the SAME
    architecture (cross-architecture migration ships FIR instead). *)

type slot = Reg of int | Spill of int

type imm =
  | Iunit
  | Iint of int
  | Ifloat of float
  | Ibool of bool
  | Ienum of int * int
  | Ifun of string
  | Inil

type operand = Slot of slot | Imm of imm

type instr =
  | Mov of slot * operand
  | Cast of slot * Fir.Types.ty * operand
      (** checked downcast from [any] *)
  | Unop of Fir.Ast.unop * slot * operand
  | Binop of Fir.Ast.binop * slot * operand * operand
  | Alloc_tuple of slot * operand list
  | Alloc_array of slot * operand * operand  (** size, init *)
  | Alloc_string of slot * string
  | Load of slot * operand * operand * int
      (** dst, block ptr, dynamic index, static offset *)
  | Store of operand * operand * int * operand
  | Ext of slot * string * operand list
  | Jmp of int
  | Jz of operand * int  (** branch to target if false *)
  | Switch of operand * (int * int) list * int
  | Tail_call of operand * operand list
  | Exit of operand
  | Migrate of int * operand * operand * operand list
  | Speculate of operand * operand list
  | Commit of operand * operand * operand list
  | Rollback of operand * operand

type fn = {
  fn_name : string;
  fn_params : slot list;
  fn_code : instr array;
  fn_spills : int;
}

module String_map : Map.S with type key = string

type image = {
  im_arch : string;
  im_main : string;
  im_fns : fn String_map.t;
}

val fn : image -> string -> fn option
val fn_exn : image -> string -> fn
val instr_count : image -> int

(** {2 Pretty-printing (the CLI's [-S] output)} *)

val slot_to_string : slot -> string
val operand_to_string : operand -> string
val instr_to_string : instr -> string
val pp_fn : Format.formatter -> fn -> unit
val pp_image : Format.formatter -> image -> unit
val image_to_string : image -> string

(** {2 Static histograms (the [mcc masm --stats] dump)} *)

val opcode_name : instr -> string
(** Mnemonic used by the histograms; binops carry their operator
    (e.g. ["op<"]) so compare-and-branch pairs are visible. *)

val stats : image -> (string * int) list * (string * int) list
(** [(opcodes, pairs)]: occurrence counts of every opcode and of every
    adjacent instruction pair within a function body, sorted by
    descending count.  The pair histogram is the evidence {!Compile}'s
    superinstruction set is chosen from. *)

(** {2 Binary codec (the binary-migration payload)} *)

exception Corrupt of string

val encode : image -> string
val decode : string -> image
(** @raise Corrupt on bad magic/version/checksum/truncation. *)
