(* FIR -> MASM code generation ("elaborating the FIR code to
   machine-specific assembly code, introducing runtime safety checks as
   necessary" — paper, Section 3).

   Because the FIR is CPS, every control path in a function body ends in a
   terminal instruction (tail call, exit, or pseudo-instruction), so code
   generation needs no join points: an [If] becomes a conditional branch
   and two straight-line regions, each self-terminating.

   Register allocation is per-function: parameters first, then locals in
   binding order, into the target's general-purpose registers; the
   overflow goes to numbered spill slots in the frame.  The emulator
   charges spill accesses as memory operations, so register pressure is
   visible in the simulated cycle counts (one of the ways the two
   architecture flavours genuinely differ). *)

open Fir.Ast

exception Codegen_error of string

(* ------------------------------------------------------------------ *)
(* Emission buffer with backpatching                                   *)
(* ------------------------------------------------------------------ *)

type emitter = { mutable code : Masm.instr array; mutable len : int }

(* [hint] pre-sizes the instruction array — callers pass the FIR body's
   node count, which bounds the emitted instruction count closely enough
   that large functions avoid the repeated doubling-and-blit of growing
   from 64. *)
let new_emitter ?(hint = 64) () =
  { code = Array.make (max 16 hint) (Masm.Jmp 0); len = 0 }

let emit em i =
  if em.len = Array.length em.code then begin
    let code = Array.make (2 * em.len) (Masm.Jmp 0) in
    Array.blit em.code 0 code 0 em.len;
    em.code <- code
  end;
  em.code.(em.len) <- i;
  em.len <- em.len + 1;
  em.len - 1

let patch em pc i = em.code.(pc) <- i
let here em = em.len
let finish em = Array.sub em.code 0 em.len

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                     *)
(* ------------------------------------------------------------------ *)

(* Visit every variable bound in a body, in binding order — the order
   slot assignment depends on (parameters and early bindings win the
   registers). *)
let rec iter_bound_vars k = function
  | Let_atom (v, _, _, e)
  | Let_cast (v, _, _, e)
  | Let_unop (v, _, _, _, e)
  | Let_binop (v, _, _, _, _, e)
  | Let_tuple (v, _, e)
  | Let_array (v, _, _, _, e)
  | Let_string (v, _, e)
  | Let_proj (v, _, _, _, e)
  | Let_load (v, _, _, _, e)
  | Let_ext (v, _, _, _, e) ->
    k v;
    iter_bound_vars k e
  | Set_proj (_, _, _, e) | Store (_, _, _, e) -> iter_bound_vars k e
  | If (_, e1, e2) ->
    iter_bound_vars k e1;
    iter_bound_vars k e2
  | Switch (_, cases, default) ->
    List.iter (fun (_, e) -> iter_bound_vars k e) cases;
    iter_bound_vars k default
  | Call _ | Exit _ | Migrate _ | Speculate _ | Commit _ | Rollback _ -> ()

type alloc = {
  slots : Masm.slot Fir.Var.Table.t;
  nspills : int;
}

let allocate_slots (arch : Arch.t) fd =
  let slots = Fir.Var.Table.create 32 in
  let next = ref 0 and nspills = ref 0 in
  (* the table doubles as the dedupe set, so assignment is a single pass
     over the body with no intermediate list *)
  let bind v =
    if not (Fir.Var.Table.mem slots v) then begin
      let slot =
        if !next < arch.Arch.registers then Masm.Reg !next
        else begin
          let s = !next - arch.Arch.registers in
          incr nspills;
          Masm.Spill s
        end
      in
      Fir.Var.Table.replace slots v slot;
      incr next
    end
  in
  List.iter (fun (v, _) -> bind v) fd.f_params;
  iter_bound_vars bind fd.f_body;
  { slots; nspills = !nspills }

let slot_of alloc v =
  match Fir.Var.Table.find_opt alloc.slots v with
  | Some s -> s
  | None ->
    raise (Codegen_error ("unallocated variable " ^ Fir.Var.to_string v))

let operand alloc = function
  | Unit -> Masm.Imm Masm.Iunit
  | Int n -> Masm.Imm (Masm.Iint n)
  | Float f -> Masm.Imm (Masm.Ifloat f)
  | Bool b -> Masm.Imm (Masm.Ibool b)
  | Enum (c, v) -> Masm.Imm (Masm.Ienum (c, v))
  | Var v -> Masm.Slot (slot_of alloc v)
  | Fun f -> Masm.Imm (Masm.Ifun f)
  | Nil _ -> Masm.Imm Masm.Inil

(* ------------------------------------------------------------------ *)
(* Function body generation                                            *)
(* ------------------------------------------------------------------ *)

let rec gen em alloc e =
  let op = operand alloc in
  let ops = List.map op in
  match e with
  | Let_atom (v, _, a, rest) ->
    ignore (emit em (Masm.Mov (slot_of alloc v, op a)));
    gen em alloc rest
  | Let_cast (v, t, a, rest) ->
    ignore (emit em (Masm.Cast (slot_of alloc v, t, op a)));
    gen em alloc rest
  | Let_unop (v, _, o, a, rest) ->
    ignore (emit em (Masm.Unop (o, slot_of alloc v, op a)));
    gen em alloc rest
  | Let_binop (v, _, o, a, b, rest) ->
    ignore (emit em (Masm.Binop (o, slot_of alloc v, op a, op b)));
    gen em alloc rest
  | Let_tuple (v, fields, rest) ->
    ignore
      (emit em
         (Masm.Alloc_tuple (slot_of alloc v, ops (List.map snd fields))));
    gen em alloc rest
  | Let_array (v, _, size, init, rest) ->
    ignore (emit em (Masm.Alloc_array (slot_of alloc v, op size, op init)));
    gen em alloc rest
  | Let_string (v, s, rest) ->
    ignore (emit em (Masm.Alloc_string (slot_of alloc v, s)));
    gen em alloc rest
  | Let_proj (v, _, a, k, rest) ->
    ignore
      (emit em (Masm.Load (slot_of alloc v, op a, Masm.Imm (Masm.Iint 0), k)));
    gen em alloc rest
  | Set_proj (a, k, x, rest) ->
    ignore (emit em (Masm.Store (op a, Masm.Imm (Masm.Iint 0), k, op x)));
    gen em alloc rest
  | Let_load (v, _, a, i, rest) ->
    ignore (emit em (Masm.Load (slot_of alloc v, op a, op i, 0)));
    gen em alloc rest
  | Store (a, i, x, rest) ->
    ignore (emit em (Masm.Store (op a, op i, 0, op x)));
    gen em alloc rest
  | Let_ext (v, _, name, args, rest) ->
    ignore (emit em (Masm.Ext (slot_of alloc v, name, ops args)));
    gen em alloc rest
  | If (a, e1, e2) ->
    let c = op a in
    let jpc = emit em (Masm.Jz (c, -1)) in
    gen em alloc e1;
    patch em jpc (Masm.Jz (c, here em));
    gen em alloc e2
  | Switch (a, cases, default) ->
    let v = op a in
    let spc = emit em (Masm.Switch (v, [], -1)) in
    let targets =
      List.map
        (fun (n, e) ->
          let t = here em in
          gen em alloc e;
          n, t)
        cases
    in
    let dpc = here em in
    gen em alloc default;
    patch em spc (Masm.Switch (v, targets, dpc))
  | Call (f, args) -> ignore (emit em (Masm.Tail_call (op f, ops args)))
  | Exit a -> ignore (emit em (Masm.Exit (op a)))
  | Migrate (l, dst, f, args) ->
    ignore (emit em (Masm.Migrate (l, op dst, op f, ops args)))
  | Speculate (f, args) -> ignore (emit em (Masm.Speculate (op f, ops args)))
  | Commit (l, f, args) ->
    ignore (emit em (Masm.Commit (op l, op f, ops args)))
  | Rollback (l, c) -> ignore (emit em (Masm.Rollback (op l, op c)))

let compile_fun arch fd =
  let alloc = allocate_slots arch fd in
  let em = new_emitter ~hint:(exp_size fd.f_body) () in
  gen em alloc fd.f_body;
  {
    Masm.fn_name = fd.f_name;
    fn_params = List.map (fun (v, _) -> slot_of alloc v) fd.f_params;
    fn_spills = alloc.nspills;
    fn_code = finish em;
  }

(* Compile a whole program for a target architecture. *)
let compile ?(arch = Arch.cisc32) program =
  let fns =
    fold_funs
      (fun fd acc ->
        Masm.String_map.add fd.f_name (compile_fun arch fd) acc)
      program Masm.String_map.empty
  in
  {
    Masm.im_arch = arch.Arch.name;
    im_main = program.p_main;
    im_fns = fns;
  }

(* Simulated cost of compilation in target cycles: used to account the
   recompilation phase of FIR migration on the simulated clock.
   Calibration (see EXPERIMENTS.md, E1): the paper reports ~3.6 s to
   recompile its application at the destination on a 700 MHz machine —
   for an application of a few thousand FIR nodes that is on the order
   of 1 ms (~840k cycles) per node, a plausible figure for a 2007-era
   optimizing back-end (typecheck + instruction selection + register
   allocation + linking).  With that constant and a 100 Mbps simulated
   network, the recompile:transfer split of FIR migration lands in the
   paper's ~90:10 regime for the benchmark application.  Absolute
   seconds are not comparable across eras; the split is the reproduced
   shape. *)
let compile_cycles_per_node = 700_000

let simulated_compile_cycles program =
  program_size program * compile_cycles_per_node

(* The migration server "links [the compiled code] with a special stub
   that initializes the heap, restores the registers and resumes
   execution" (paper, Section 4.2.2).  Linking is charged on BOTH
   migration paths — it is most of the binary path's non-transfer cost
   (the paper's binary migration spends ~70 % of its <1 s outside the
   network transfer). *)
let link_cycles_per_instr = 130_000

let simulated_link_cycles image =
  Masm.instr_count image * link_cycles_per_instr
