(* The reference FIR interpreter.

   One [step] executes one basic block: from the current continuation
   (function, arguments) through straight-line bindings and branches to the
   next tail call, exit, or pseudo-instruction.  Because the FIR is CPS,
   no interpreter state survives between steps except the process itself —
   which is exactly what migration and speculation capture.

   Every heap access goes through the checked [Heap.read]/[Heap.write]
   path (pointer-table validation, bounds checks); a violation turns into
   a [Trapped] status rather than undefined behaviour, reproducing the
   paper's runtime safety claims for unsafe source languages like C. *)

open Runtime
open Fir.Ast

exception Trap of string

let nil_value = Value.Vptr (-1, 0)

let eval_atom proc env = function
  | Unit -> Value.Vunit
  | Int n -> Value.Vint n
  | Float f -> Value.Vfloat f
  | Bool b -> Value.Vbool b
  | Enum (card, v) -> Value.Venum (card, v)
  | Var v -> (
    match Fir.Var.Table.find_opt env v with
    | Some x -> x
    | None -> raise (Trap ("unbound variable " ^ Fir.Var.to_string v)))
  | Fun f -> Process.fun_value proc f
  | Nil _ -> nil_value

let as_int = function
  | Value.Vint n -> n
  | v -> raise (Trap ("expected int, got " ^ Value.to_string v))

let as_bool = function
  | Value.Vbool b -> b
  | v -> raise (Trap ("expected bool, got " ^ Value.to_string v))

let as_float = function
  | Value.Vfloat f -> f
  | v -> raise (Trap ("expected float, got " ^ Value.to_string v))

let as_ptr = function
  | Value.Vptr (idx, off) -> idx, off
  | v -> raise (Trap ("expected pointer, got " ^ Value.to_string v))

let eval_unop op a =
  match op with
  | Neg -> Value.Vint (-as_int a)
  | Not -> Value.Vbool (not (as_bool a))
  | Fneg -> Value.Vfloat (-.as_float a)
  | Int_of_float -> Value.Vint (int_of_float (as_float a))
  | Float_of_int -> Value.Vfloat (float_of_int (as_int a))
  | Int_of_bool -> Value.Vint (if as_bool a then 1 else 0)
  | Int_of_enum -> (
    match a with
    | Value.Venum (_, v) -> Value.Vint v
    | v -> raise (Trap ("expected enum, got " ^ Value.to_string v)))

let eval_binop op a b =
  match op with
  | Add -> Value.Vint (as_int a + as_int b)
  | Sub -> Value.Vint (as_int a - as_int b)
  | Mul -> Value.Vint (as_int a * as_int b)
  | Div ->
    let d = as_int b in
    if d = 0 then raise (Trap "division by zero") else Value.Vint (as_int a / d)
  | Rem ->
    let d = as_int b in
    if d = 0 then raise (Trap "remainder by zero")
    else Value.Vint (as_int a mod d)
  | Band -> Value.Vint (as_int a land as_int b)
  | Bor -> Value.Vint (as_int a lor as_int b)
  | Bxor -> Value.Vint (as_int a lxor as_int b)
  | Shl -> Value.Vint (as_int a lsl (as_int b land 62))
  | Shr -> Value.Vint (as_int a asr (as_int b land 62))
  | Eq -> Value.Vbool (as_int a = as_int b)
  | Ne -> Value.Vbool (as_int a <> as_int b)
  | Lt -> Value.Vbool (as_int a < as_int b)
  | Le -> Value.Vbool (as_int a <= as_int b)
  | Gt -> Value.Vbool (as_int a > as_int b)
  | Ge -> Value.Vbool (as_int a >= as_int b)
  | Fadd -> Value.Vfloat (as_float a +. as_float b)
  | Fsub -> Value.Vfloat (as_float a -. as_float b)
  | Fmul -> Value.Vfloat (as_float a *. as_float b)
  | Fdiv -> Value.Vfloat (as_float a /. as_float b)
  | Feq -> Value.Vbool (as_float a = as_float b)
  | Fne -> Value.Vbool (as_float a <> as_float b)
  | Flt -> Value.Vbool (as_float a < as_float b)
  | Fle -> Value.Vbool (as_float a <= as_float b)
  | Fgt -> Value.Vbool (as_float a > as_float b)
  | Fge -> Value.Vbool (as_float a >= as_float b)
  | And -> Value.Vbool (as_bool a && as_bool b)
  | Or -> Value.Vbool (as_bool a || as_bool b)
  | Padd ->
    let idx, off = as_ptr a in
    Value.Vptr (idx, off + as_int b)
  | Peq ->
    let i1, o1 = as_ptr a in
    let i2, o2 = as_ptr b in
    Value.Vbool (i1 = i2 && o1 = o2)

(* The runtime representation check behind [Let_cast]: a value read out of
   a [Tany] cell must match the target type's representation or the
   process traps.  Pointer and function payloads are checked at use sites
   (pointer-table validation, arity checks), so the shape check here is
   exactly what the tagged representation can decide. *)
let cast_check ty v =
  let ok =
    match ty, v with
    | Fir.Types.Tunit, Value.Vunit -> true
    | Fir.Types.Tint, Value.Vint _ -> true
    | Fir.Types.Tfloat, Value.Vfloat _ -> true
    | Fir.Types.Tbool, Value.Vbool _ -> true
    | Fir.Types.Tenum c, Value.Venum (c', x) -> c = c' && x >= 0 && x < c
    | (Fir.Types.Tptr _ | Fir.Types.Ttuple _ | Fir.Types.Traw), Value.Vptr _
      ->
      true
    | Fir.Types.Tfun _, Value.Vfun _ -> true
    | Fir.Types.Tany, _ -> true
    | _, _ -> false
  in
  if ok then v
  else
    raise
      (Trap
         (Printf.sprintf "cast failure: %s is not a %s" (Value.to_string v)
            (Fir.Types.to_string ty)))

(* Resolve a callee atom's value to a function name. *)
let callee proc env f = Process.fun_name proc (eval_atom proc env f)

(* Decode a migration target: a pointer into a raw block; the string starts
   at the pointer's offset. *)
let target_string proc v =
  let idx, off = as_ptr v in
  let s = Heap.raw_to_string proc.Process.heap idx in
  if off < 0 || off > String.length s then raise (Trap "bad target pointer")
  else String.sub s off (String.length s - off)

let rec exec proc ~extern env e =
  let eval a = eval_atom proc env a in
  let bind v x rest =
    Fir.Var.Table.replace env v x;
    exec proc ~extern env rest
  in
  let heap = proc.Process.heap in
  match e with
  | Let_atom (v, _, a, rest) ->
    Process.charge proc Arch.Alu;
    bind v (eval a) rest
  | Let_cast (v, t, a, rest) ->
    Process.charge proc Arch.Alu;
    bind v (cast_check t (eval a)) rest
  | Let_unop (v, _, op, a, rest) ->
    Process.charge proc Arch.Alu;
    bind v (eval_unop op (eval a)) rest
  | Let_binop (v, _, op, a, b, rest) ->
    Process.charge proc Arch.Alu;
    bind v (eval_binop op (eval a) (eval b)) rest
  | Let_tuple (v, fields, rest) ->
    Process.charge proc Arch.Trap;
    let idx = Heap.alloc_tuple heap (List.map (fun (_, a) -> eval a) fields) in
    bind v (Value.Vptr (idx, 0)) rest
  | Let_array (v, _, size, init, rest) ->
    Process.charge proc Arch.Trap;
    let n = as_int (eval size) in
    if n < 0 then raise (Trap "negative array size");
    let idx = Heap.alloc heap ~tag:Heap.Array ~size:n ~init:(eval init) in
    bind v (Value.Vptr (idx, 0)) rest
  | Let_string (v, s, rest) ->
    Process.charge proc Arch.Trap;
    let idx = Heap.alloc_raw heap s in
    bind v (Value.Vptr (idx, 0)) rest
  | Let_proj (v, _, a, i, rest) ->
    Process.charge proc Arch.Mem;
    let idx, off = as_ptr (eval a) in
    bind v (Heap.read heap idx (off + i)) rest
  | Set_proj (a, i, x, rest) ->
    Process.charge proc Arch.Mem;
    let idx, off = as_ptr (eval a) in
    Heap.write heap idx (off + i) (eval x);
    exec proc ~extern env rest
  | Let_load (v, _, a, i, rest) ->
    Process.charge proc Arch.Mem;
    let idx, off = as_ptr (eval a) in
    bind v (Heap.read heap idx (off + as_int (eval i))) rest
  | Store (a, i, x, rest) ->
    Process.charge proc Arch.Mem;
    let idx, off = as_ptr (eval a) in
    Heap.write heap idx (off + as_int (eval i)) (eval x);
    exec proc ~extern env rest
  | Let_ext (v, _, name, args, rest) ->
    Process.charge proc Arch.Trap;
    bind v (extern proc name (List.map eval args)) rest
  | If (a, e1, e2) ->
    Process.charge proc Arch.Branch;
    if as_bool (eval a) then exec proc ~extern env e1
    else exec proc ~extern env e2
  | Switch (a, cases, default) -> (
    Process.charge proc Arch.Branch;
    let n =
      match eval a with
      | Value.Vint n | Value.Venum (_, n) -> n
      | v -> raise (Trap ("switch on non-integer " ^ Value.to_string v))
    in
    match List.assoc_opt n cases with
    | Some e -> exec proc ~extern env e
    | None -> exec proc ~extern env default)
  | Call (f, args) ->
    Process.charge proc Arch.Call_ret;
    proc.Process.cont <- callee proc env f, List.map eval args
  | Exit a ->
    Process.charge proc Arch.Call_ret;
    proc.Process.status <- Process.Exited (as_int (eval a))
  | Migrate (label, dst, f, args) ->
    Process.do_migrate proc ~label
      ~target:(target_string proc (eval dst))
      ~entry:(callee proc env f)
      ~args:(List.map eval args)
  | Speculate (f, args) ->
    Process.do_speculate proc ~entry:(callee proc env f)
      ~args:(List.map eval args)
  | Commit (l, f, args) ->
    Process.do_commit proc ~level:(as_int (eval l))
      ~entry:(callee proc env f)
      ~args:(List.map eval args)
  | Rollback (l, c) ->
    Process.do_rollback proc ~level:(as_int (eval l)) ~code:(as_int (eval c))

(* Execute one basic block.  Any runtime violation (invalid pointer, bad
   bounds, division by zero, speculation misuse, extern failure) traps the
   process instead of propagating. *)
let step ?(extern = Extern.base) proc =
  match proc.Process.status with
  | Exited _ | Trapped _ | Migrating _ -> ()
  | Running -> (
    let fname, args = proc.Process.cont in
    match
      let fd = Process.fundef proc fname in
      (* single-pass arity comparison (mirrors Emulator.enter_function):
         walk both lists together; lengths are only materialised for the
         error message on the cold path *)
      let rec same_length = function
        | [], [] -> true
        | _ :: ps, _ :: xs -> same_length (ps, xs)
        | [], _ :: _ | _ :: _, [] -> false
      in
      if not (same_length (fd.f_params, args)) then
        raise
          (Trap
             (Printf.sprintf "arity mismatch calling %s: %d params, %d args"
                fname (List.length fd.f_params) (List.length args)));
      let env = Fir.Var.Table.create 16 in
      List.iter2 (fun (v, _) x -> Fir.Var.Table.replace env v x) fd.f_params
        args;
      exec proc ~extern env fd.f_body
    with
    | () ->
      proc.Process.steps <- proc.Process.steps + 1;
      Process.maybe_collect proc
    | exception Trap msg -> proc.Process.status <- Process.Trapped msg
    | exception Heap.Runtime_error msg ->
      proc.Process.status <- Process.Trapped ("heap: " ^ msg)
    | exception Pointer_table.Invalid_pointer msg ->
      proc.Process.status <- Process.Trapped ("pointer: " ^ msg)
    | exception Function_table.Invalid_function msg ->
      proc.Process.status <- Process.Trapped ("function: " ^ msg)
    | exception Spec.Engine.Invalid_level msg ->
      proc.Process.status <- Process.Trapped ("speculation: " ^ msg)
    | exception Process.Extern_failure msg ->
      proc.Process.status <- Process.Trapped ("extern: " ^ msg)
    | exception Process.Process_error msg ->
      proc.Process.status <- Process.Trapped msg)

(* Run until exit, trap, migration request, or step budget exhaustion. *)
let run ?(extern = Extern.base) ?(max_steps = 10_000_000) proc =
  let budget = ref max_steps in
  while
    (match proc.Process.status with
     | Process.Running -> true
     | Process.Exited _ | Process.Trapped _ | Process.Migrating _ -> false)
    && !budget > 0
  do
    step ~extern proc;
    decr budget
  done;
  proc.Process.status
