(* Whole-process state (paper, Section 4.1).

   A process bundles everything the runtime standardizes for migration:
   the FIR code (immutable), the heap and its pointer table, the function
   table, the speculation engine, and the current continuation.  Because
   the FIR is in continuation-passing style, between any two basic blocks
   the complete live register state is exactly the argument list of the
   next call — this is the property that makes the paper's [migrate_env]
   construction trivial: the set of live variables across a migration
   point corresponds exactly to the arguments passed to the continuation.

   The process does not run itself; an engine (Interp or Emulator) advances
   it one basic block per [step], and a host environment (CLI, migration
   daemon, simulated cluster node) handles [Migrating] statuses and
   provides external functions. *)

open Runtime

type migration_request = {
  m_label : int; (* the unique migration label i *)
  m_target : string; (* the decoded target string, e.g. "mcc://node1" *)
  m_entry : string; (* continuation function *)
  m_args : Value.t list; (* continuation arguments = live variables *)
}

type status =
  | Running
  | Exited of int
  | Trapped of string
  | Migrating of migration_request

type t = {
  pid : int;
  program : Fir.Ast.program;
  heap : Heap.t;
  ftable : Function_table.t;
  spec : Spec.Engine.t;
  arch : Arch.t;
  mutable cont : string * Value.t list;
  mutable status : status;
  mutable steps : int; (* basic blocks executed *)
  mutable cycles : int; (* simulated cycles consumed *)
  mutable waiting : bool; (* scheduler hint: blocked on input *)
  mutable on_gc : (Gc.result -> unit) option;
      (* host observer, fired after every collection (tracing) *)
  output : Buffer.t;
  rng : Random.State.t;
}

exception Process_error of string

let create ?(pid = 0) ?(arch = Arch.cisc32) ?(seed = 42)
    ?(heap_cells = 4096) program =
  let heap = Heap.create ~initial_cells:heap_cells () in
  let spec = Spec.Engine.create heap in
  let ftable =
    Function_table.of_program_names (Fir.Ast.fun_names program)
  in
  {
    pid;
    program;
    heap;
    ftable;
    spec;
    arch;
    cont = program.Fir.Ast.p_main, [];
    status = Running;
    steps = 0;
    cycles = 0;
    waiting = false;
    on_gc = None;
    output = Buffer.create 128;
    rng = Random.State.make [| seed; pid |];
  }

(* Rebuild a process from unpacked parts (migration, checkpoint resume).
   The speculation engine is re-created over the restored heap and its
   levels re-installed from the snapshot. *)
let restore ?(pid = 0) ?(arch = Arch.cisc32) ?(seed = 42) ~program ~heap
    ~spec_snapshot ~cont () =
  let spec = Spec.Engine.create heap in
  Spec.Engine.restore spec spec_snapshot;
  let ftable =
    Function_table.of_program_names (Fir.Ast.fun_names program)
  in
  {
    pid;
    program;
    heap;
    ftable;
    spec;
    arch;
    cont;
    status = Running;
    steps = 0;
    cycles = 0;
    waiting = false;
    on_gc = None;
    output = Buffer.create 128;
    rng = Random.State.make [| seed; pid |];
  }

let output t = Buffer.contents t.output
let is_terminated t =
  match t.status with
  | Exited _ | Trapped _ -> true
  | Running | Migrating _ -> false

let charge t cls = t.cycles <- t.cycles + t.arch.Arch.cycles cls

(* Bulk variant for engines that fold static per-instruction costs into
   a block-local accumulator (see Link): one addition replaces a charge
   per instruction, with identical totals at every observation point. *)
let charge_cycles t n = t.cycles <- t.cycles + n

(* Resolve a function value to its name through the function table. *)
let fun_name t = function
  | Value.Vfun idx -> Function_table.name t.ftable idx
  | v -> raise (Process_error ("call of non-function value " ^ Value.to_string v))

let fun_value t name = Value.Vfun (Function_table.index t.ftable name)

let fundef t name =
  match Fir.Ast.find_fun t.program name with
  | Some fd -> fd
  | None -> raise (Process_error ("unknown function " ^ name))

(* ------------------------------------------------------------------ *)
(* Garbage collection driver                                           *)
(* ------------------------------------------------------------------ *)

(* Between basic blocks, the only mutator roots are the continuation
   arguments and the speculation continuations; checkpoint records are
   pinned.  This is the CPS property the whole design leans on. *)
let roots t =
  let _, args = t.cont in
  List.fold_left
    (fun acc s -> List.rev_append s.Spec.Engine.s_args acc)
    args (Spec.Engine.snapshot t.spec)

let collect t kind =
  let res =
    Gc.collect t.heap ~kind ~roots:(roots t) ~pinned:(Spec.Engine.records t.spec)
  in
  Spec.Engine.rewrite_after_gc t.spec res;
  charge t Arch.Trap;
  (match t.on_gc with Some hook -> hook res | None -> ());
  res

let maybe_collect t =
  if Heap.needs_major t.heap then begin
    ignore (collect t Gc.Major);
    (* if most of the heap survived, the next trigger would come almost
       immediately: give the mutator headroom instead of thrashing *)
    if Heap.used_cells t.heap > Heap.capacity t.heap / 2 then
      Heap.reserve t.heap (4 * Heap.used_cells t.heap)
  end
  else if Heap.needs_minor t.heap then ignore (collect t Gc.Minor)

(* ------------------------------------------------------------------ *)
(* Pseudo-instruction plumbing shared by both engines                  *)
(* ------------------------------------------------------------------ *)

(* speculate f(args): snapshot (f, args) as the level's continuation and
   call f with the fresh rollback code 0 prepended. *)
let do_speculate t ~entry ~args =
  let (_ : int) =
    Spec.Engine.enter t.spec ~cont:{ Spec.Engine.entry; args }
  in
  charge t Arch.Trap;
  t.cont <- entry, Value.Vint 0 :: args

let do_commit t ~level ~entry ~args =
  Spec.Engine.commit t.spec level;
  charge t Arch.Trap;
  t.cont <- entry, args

let do_rollback t ~level ~code =
  let cont = Spec.Engine.rollback t.spec level in
  charge t Arch.Trap;
  t.cont <- cont.Spec.Engine.entry, Value.Vint code :: cont.Spec.Engine.args

let do_migrate t ~label ~target ~entry ~args =
  charge t Arch.Trap;
  t.status <-
    Migrating { m_label = label; m_target = target; m_entry = entry;
                m_args = args }

(* Host-side resolution of a migration request. *)
let migration_failed t =
  match t.status with
  | Migrating req ->
    (* a failed migration is invisible: continue locally (Section 4.2.1) *)
    t.cont <- req.m_entry, req.m_args;
    t.status <- Running
  | Running | Exited _ | Trapped _ ->
    raise (Process_error "migration_failed: process is not migrating")

let migration_completed t =
  match t.status with
  | Migrating _ -> t.status <- Exited 0
  | Running | Exited _ | Trapped _ ->
    raise (Process_error "migration_completed: process is not migrating")

(* ------------------------------------------------------------------ *)
(* External function interface                                         *)
(* ------------------------------------------------------------------ *)

exception Extern_failure of string

type handler = t -> string -> Value.t list -> Value.t

let no_externs : handler =
  fun _ name _ -> raise (Extern_failure ("no handler for extern " ^ name))
