(* Closure compilation of linked MASM: the third execution tier.

   The linked form (see Link) already paid for name resolution, switch
   tables, immediates and static cycle costs, but the emulator's inner
   loop still re-decodes every instruction: a ~20-way variant match per
   [rinstr], an operand match per fetch, and a 30-way operator match
   inside [Interp.eval_binop].  All of that is static, so this pass pays
   it once and translates each linked function into an array of OCaml
   closures — the subroutine-threading technique OCamlJIT 2.0 applies to
   the OCaml bytecode interpreter, here applied to MASM — and then goes
   three steps further, all justified by the static opcode/pair
   histogram ([Masm.stats], the [mcc masm --stats] dump):

   - {b Superinstruction segments.}  Code is cut into maximal
     straight-line runs broken only at the places control can enter: pc
     0, every jump target, and the pc after an extern (externs observe
     the cycle counter, so they bound segments; so do the
     migration/speculation pseudo-instructions and block exits, which
     terminate segments).  One closure executes the whole run — a
     compare feeding a conditional branch, a mov/load chain feeding an
     ALU op, a self-jump loop body — and the dispatch loop degenerates
     to [while st.pc >= 0 do st.pc <- code.(st.pc) st done], one
     dispatch per segment instead of one per instruction.  Run interiors
     are provably unreachable, so interior pcs hold a loudly-raising
     closure rather than a duplicate entry point.

   - {b Unboxed value forwarding.}  A producer whose result kind is
     statically known (int/bool results in [itmps], floats in the flat
     [ftmps]) writes its raw result into a scratch slot indexed by its
     own pc — written at most once per segment execution, so consumers
     compiled later in the run read the raw value with no representation
     check, no unboxing and no allocation.  The boxed store into the
     destination register/spill is kept only when the value can {e
     escape} the segment (be read by another segment entered through a
     branch target or fall-through, decided by per-function liveness);
     dead stores — the single-use spill temporaries codegen emits in
     bulk — vanish together with their [caml_modify] write barriers and
     their [Vint]/[Vfloat] boxing.  Temps never hold pointers, and the
     simulated GC never scans the frame (it roots the process, not the
     register file), so forwarding is invisible to collection.

   - {b Checkpointed accounting.}  Cycle cost and retired-instruction
     count are only observable at traps, externs, pseudo-instructions
     and block exits.  Non-trapping instructions therefore defer their
     accounting into a compile-time prefix sum which the next trapping
     instruction, conditional or segment exit adds back in one or two
     writes — exactly the totals the per-instruction loop would hold at
     that point, including mid-segment traps (every potentially-trapping
     closure checkpoints inclusively {e before} executing, the
     per-instruction loops' order).

   - {b Frame-clear elision.}  Block entry in [Fast] clears the
     registers and spills the function can touch.  A forward
     definite-assignment analysis proves most of them are written before
     any read on every path, so the compiled entry clears only the
     remainder ([cf_clear_regs]/[cf_clear_spills]); skipped clears are
     unobservable because every read still sees either the same [Vunit]
     or a value the function itself stored.

   Observational equivalence with [Fast]/[Baseline] is load-bearing:
   same status, output, retired-instruction count, cycle charges at
   every flush boundary, and same traps with the same messages — the
   three-way equivalence suite holds all modes to it.

   A compiled image captures only static data — all per-process state
   (registers, spills, scratch arrays, the process, its heap and
   function table, the extern handler and the accounting counters)
   travels in the [state] record passed to every closure — so it is
   process-independent and is memoized in [Migrate.Codecache] next to
   the linked image: a warm migration hop resumes straight into compiled
   code. *)

open Runtime

exception Emulator_error of string

(* Per-process execution state threaded through every closure.  One per
   emulator; the closures themselves are shared. *)
type state = {
  regs : Value.t array;
  spills : Value.t array;
  itmps : int array;
      (* unboxed int/bool scratch results, indexed by producer pc *)
  ftmps : float array;  (* unboxed float scratch results (flat array) *)
  proc : Process.t;
  heap : Heap.t;
  fun_values : Value.t option array;
      (* per-process resolution of the linked image's function names,
         indexed by linked-function index (mirrors Emulator.fun_values) *)
  mutable extern : Process.handler;
  mutable acc : int;  (* pending static cycle charges *)
  mutable nins : int;  (* instructions retired this block *)
  mutable pc : int;
}

(* A closure executes one fused segment and returns the next pc, or a
   negative value at block exit. *)
type op = state -> int

type cfn = {
  cf_ops : op array;
      (* length [Array.length l_code + 1] with a raising sentinel at the
         end so a fall-through off the end traps exactly like the bounds
         check of the interpretive loops *)
  cf_clear_regs : int array;
      (* registers to clear at block entry: the subset of
         [0, l_regs_used) not definitely assigned before every read *)
  cf_clear_spills : int array;  (* likewise within [0, l_spills) *)
}

type image = {
  c_linked : Link.image;
  c_fns : cfn array;  (* parallel to [c_linked.l_fns] *)
  c_instrs : int;  (* instructions compiled *)
  c_super : int;  (* entry closures covering >= 2 instructions *)
  c_tmps : int;
      (* scratch sizing for [itmps]/[ftmps]: max code length over the
         image's functions (temp index = producer pc), at least 1 *)
}

let vtrue = Value.Vbool true
let vfalse = Value.Vbool false
let vbool b = if b then vtrue else vfalse

(* Local copies of the Interp coercions so the match inlines into the
   specialized closures; the trap messages are identical by
   construction (the equivalence suite compares them). *)
let trap_not fmt v =
  raise (Interp.Trap ("expected " ^ fmt ^ ", got " ^ Value.to_string v))

let to_int = function Value.Vint n -> n | v -> trap_not "int" v
let to_float = function Value.Vfloat f -> f | v -> trap_not "float" v
let to_bool = function Value.Vbool b -> b | v -> trap_not "bool" v
let to_ptr = function Value.Vptr (i, o) -> i, o | v -> trap_not "pointer" v

(* ------------------------------------------------------------------ *)
(* Compile-time slot contents (the forwarding lattice)                 *)
(* ------------------------------------------------------------------ *)

(* What the run compiled so far knows about a register/spill slot.
   [Fint i]/[Ffloat i]/[Fbool i] say the raw value sits in the scratch
   slot of the producer at pc [i]; [Fval v] is a propagated immediate.
   [stored] records whether the boxed value is ALSO in the slot (then a
   boxed fetch prefers the slot — no reboxing allocation). *)
type fwd = Fint of int | Ffloat of int | Fbool of int | Fval of Value.t
type avail = { fw : fwd; stored : bool }

(* Unified slot id space: registers [0, nregs), spills offset by nregs. *)
let sid nregs = function Masm.Reg r -> r | Masm.Spill s -> nregs + s

let rop_sid nregs = function
  | Link.Rreg r -> r
  | Link.Rspill s -> nregs + s
  | Link.Rval _ | Link.Rfun _ | Link.Rfunname _ -> -1

(* ------------------------------------------------------------------ *)
(* Operand getters, partial-evaluated over rop and the avail map        *)
(* ------------------------------------------------------------------ *)

(* Boxed fetch.  For a forwarded-but-unstored slot this reboxes from the
   scratch array — moving the allocation the per-instruction loop paid
   at the def to the (rarer) boxed use. *)
let gget (linked : Link.image) nregs (av : avail option array)
    (op : Link.rop) : state -> Value.t =
  let fetch idx slot_read =
    match av.(idx) with
    | Some { fw = Fval v; _ } -> fun _ -> v
    | Some { stored = true; _ } | None -> slot_read
    | Some { fw = Fint i; _ } ->
      fun st -> Value.Vint (Array.unsafe_get st.itmps i)
    | Some { fw = Ffloat i; _ } ->
      fun st -> Value.Vfloat (Array.unsafe_get st.ftmps i)
    | Some { fw = Fbool i; _ } ->
      fun st -> vbool (Array.unsafe_get st.itmps i <> 0)
  in
  match op with
  | Link.Rreg r -> fetch r (fun st -> st.regs.(r))
  | Link.Rspill s -> fetch (nregs + s) (fun st -> st.spills.(s))
  | Link.Rval v -> fun _ -> v
  | Link.Rfun i ->
    let name = linked.Link.l_fns.(i).Link.l_name in
    fun st -> (
      match st.fun_values.(i) with
      | Some v -> v
      | None -> Process.fun_value st.proc name)
  | Link.Rfunname name -> fun st -> Process.fun_value st.proc name

(* Typed fetches return the raw value plus a static trap-freedom bit.
   Legal because register/spill/immediate fetches cannot raise, so
   fusing fetch+check preserves the order of every observable effect. *)
let iget linked nregs av op : (state -> int) * bool =
  let generic () =
    let g = gget linked nregs av op in
    (fun st -> to_int (g st)), false
  in
  let slot idx =
    match av.(idx) with
    | Some { fw = Fint i; _ } ->
      (fun st -> Array.unsafe_get st.itmps i), true
    | Some { fw = Fval (Value.Vint n); _ } -> (fun _ -> n), true
    | _ -> generic ()
  in
  match op with
  | Link.Rval (Value.Vint n) -> (fun _ -> n), true
  | Link.Rreg r -> slot r
  | Link.Rspill s -> slot (nregs + s)
  | _ -> generic ()

let fget linked nregs av op : (state -> float) * bool =
  let generic () =
    let g = gget linked nregs av op in
    (fun st -> to_float (g st)), false
  in
  let slot idx =
    match av.(idx) with
    | Some { fw = Ffloat i; _ } ->
      (fun st -> Array.unsafe_get st.ftmps i), true
    | Some { fw = Fval (Value.Vfloat f); _ } -> (fun _ -> f), true
    | _ -> generic ()
  in
  match op with
  | Link.Rval (Value.Vfloat f) -> (fun _ -> f), true
  | Link.Rreg r -> slot r
  | Link.Rspill s -> slot (nregs + s)
  | _ -> generic ()

let bget linked nregs av op : (state -> bool) * bool =
  let generic () =
    let g = gget linked nregs av op in
    (fun st -> to_bool (g st)), false
  in
  let slot idx =
    match av.(idx) with
    | Some { fw = Fbool i; _ } ->
      (fun st -> Array.unsafe_get st.itmps i <> 0), true
    | Some { fw = Fval (Value.Vbool b); _ } -> (fun _ -> b), true
    | _ -> generic ()
  in
  match op with
  | Link.Rval (Value.Vbool b) -> (fun _ -> b), true
  | Link.Rreg r -> slot r
  | Link.Rspill s -> slot (nregs + s)
  | _ -> generic ()

(* Statically-known integer operand (divisor/offset/scrutinee folding). *)
let iconst nregs (av : avail option array) = function
  | Link.Rval (Value.Vint n) -> Some n
  | Link.Rreg r -> (
    match av.(r) with
    | Some { fw = Fval (Value.Vint n); _ } -> Some n
    | _ -> None)
  | Link.Rspill s -> (
    match av.(nregs + s) with
    | Some { fw = Fval (Value.Vint n); _ } -> Some n
    | _ -> None)
  | _ -> None

(* Argument lists (tail calls, externs, tuple fields): built right to
   left exactly like the Fast loop's [rop_values], so a raising fetch
   (an unresolvable function immediate) fires in the same order. *)
let args_fn linked nregs av (a : Link.rop array) : state -> Value.t list =
  let gs = Array.map (gget linked nregs av) a in
  match gs with
  | [||] -> fun _ -> []
  | [| g0 |] -> fun st -> [ g0 st ]
  | [| g0; g1 |] ->
    fun st ->
      let v1 = g1 st in
      let v0 = g0 st in
      [ v0; v1 ]
  | [| g0; g1; g2 |] ->
    fun st ->
      let v2 = g2 st in
      let v1 = g1 st in
      let v0 = g0 st in
      [ v0; v1; v2 ]
  | gs ->
    fun st ->
      let rec go i acc =
        if i < 0 then acc
        else go (i - 1) (Array.unsafe_get gs i st :: acc)
      in
      go (Array.length gs - 1) []

(* ------------------------------------------------------------------ *)
(* Operator specialization                                             *)
(* ------------------------------------------------------------------ *)

(* A producer's compiled body, in the result's natural representation,
   paired with trap-freedom.  Unsafe bodies still forward their raw
   result (Div with a dynamic divisor is a checkpointed [Rint]); only
   the representation decides the scratch array. *)
type rbody =
  | Rint of (state -> int)
  | Rfloat of (state -> float)
  | Rbool of (state -> bool)
  | Rboxed of (state -> Value.t)

(* Evaluation order mirrors [Interp.eval_binop]: the coercions of a
   two-argument primitive run right to left; [&&]/[||] short-circuit
   left to right; [Padd]/[Peq] coerce left first. *)
let binop_rbody linked nregs av (o : Fir.Ast.binop) a b : rbody * bool =
  let ii mk =
    let ia, sa = iget linked nregs av a and ib, sb = iget linked nregs av b in
    mk ia ib, sa && sb
  in
  let ff mk =
    let fa, sa = fget linked nregs av a and fb, sb = fget linked nregs av b in
    mk fa fb, sa && sb
  in
  match o with
  | Fir.Ast.Add ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va + vb))
  | Fir.Ast.Sub ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va - vb))
  | Fir.Ast.Mul ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va * vb))
  | Fir.Ast.Div -> (
    let ia, sa = iget linked nregs av a in
    match iconst nregs av b with
    | Some d when d <> 0 -> Rint (fun st -> ia st / d), sa
    | _ ->
      let ib, _ = iget linked nregs av b in
      ( Rint
          (fun st ->
            let d = ib st in
            if d = 0 then raise (Interp.Trap "division by zero")
            else ia st / d),
        false ))
  | Fir.Ast.Rem -> (
    let ia, sa = iget linked nregs av a in
    match iconst nregs av b with
    | Some d when d <> 0 -> Rint (fun st -> ia st mod d), sa
    | _ ->
      let ib, _ = iget linked nregs av b in
      ( Rint
          (fun st ->
            let d = ib st in
            if d = 0 then raise (Interp.Trap "remainder by zero")
            else ia st mod d),
        false ))
  | Fir.Ast.Band ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va land vb))
  | Fir.Ast.Bor ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va lor vb))
  | Fir.Ast.Bxor ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va lxor vb))
  | Fir.Ast.Shl ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va lsl (vb land 62)))
  | Fir.Ast.Shr ->
    ii (fun ia ib ->
        Rint
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va asr (vb land 62)))
  | Fir.Ast.Eq ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va = vb))
  | Fir.Ast.Ne ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va <> vb))
  | Fir.Ast.Lt ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va < vb))
  | Fir.Ast.Le ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va <= vb))
  | Fir.Ast.Gt ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va > vb))
  | Fir.Ast.Ge ->
    ii (fun ia ib ->
        Rbool
          (fun st ->
            let vb = ib st in
            let va = ia st in
            va >= vb))
  | Fir.Ast.Fadd ->
    ff (fun fa fb ->
        Rfloat
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va +. vb))
  | Fir.Ast.Fsub ->
    ff (fun fa fb ->
        Rfloat
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va -. vb))
  | Fir.Ast.Fmul ->
    ff (fun fa fb ->
        Rfloat
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va *. vb))
  | Fir.Ast.Fdiv ->
    ff (fun fa fb ->
        Rfloat
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va /. vb))
  | Fir.Ast.Feq ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va = vb))
  | Fir.Ast.Fne ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va <> vb))
  | Fir.Ast.Flt ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va < vb))
  | Fir.Ast.Fle ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va <= vb))
  | Fir.Ast.Fgt ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va > vb))
  | Fir.Ast.Fge ->
    ff (fun fa fb ->
        Rbool
          (fun st ->
            let vb = fb st in
            let va = fa st in
            va >= vb))
  | Fir.Ast.And ->
    let ba, sa = bget linked nregs av a and bb, sb = bget linked nregs av b in
    Rbool (fun st -> if ba st then bb st else false), sa && sb
  | Fir.Ast.Or ->
    let ba, sa = bget linked nregs av a and bb, sb = bget linked nregs av b in
    Rbool (fun st -> if ba st then true else bb st), sa && sb
  | Fir.Ast.Peq ->
    let ga = gget linked nregs av a and gb = gget linked nregs av b in
    ( Rbool
        (fun st ->
          let i1, o1 = to_ptr (ga st) in
          let i2, o2 = to_ptr (gb st) in
          i1 = i2 && o1 = o2),
      false )
  | Fir.Ast.Padd ->
    let ga = gget linked nregs av a in
    let ib, _ = iget linked nregs av b in
    ( Rboxed
        (fun st ->
          let idx, off = to_ptr (ga st) in
          Value.Vptr (idx, off + ib st)),
      false )

let unop_rbody linked nregs av (o : Fir.Ast.unop) a : rbody * bool =
  match o with
  | Fir.Ast.Neg ->
    let ia, sa = iget linked nregs av a in
    Rint (fun st -> -ia st), sa
  | Fir.Ast.Not ->
    let ba, sa = bget linked nregs av a in
    Rbool (fun st -> not (ba st)), sa
  | Fir.Ast.Fneg ->
    let fa, sa = fget linked nregs av a in
    Rfloat (fun st -> -.fa st), sa
  | Fir.Ast.Int_of_float ->
    let fa, sa = fget linked nregs av a in
    Rint (fun st -> int_of_float (fa st)), sa
  | Fir.Ast.Float_of_int ->
    let ia, sa = iget linked nregs av a in
    Rfloat (fun st -> float_of_int (ia st)), sa
  | Fir.Ast.Int_of_bool ->
    let ba, sa = bget linked nregs av a in
    Rint (fun st -> if ba st then 1 else 0), sa
  | Fir.Ast.Int_of_enum ->
    let ga = gget linked nregs av a in
    ( Rint
        (fun st ->
          match ga st with
          | Value.Venum (_, v) -> v
          | v -> trap_not "enum" v),
      false )

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                             *)
(* ------------------------------------------------------------------ *)

let flush st =
  if st.acc <> 0 then begin
    Process.charge_cycles st.proc st.acc;
    st.acc <- 0
  end

let set_slot (d : Masm.slot) : state -> Value.t -> unit =
  match d with
  | Masm.Reg r -> fun st v -> st.regs.(r) <- v
  | Masm.Spill s -> fun st v -> st.spills.(s) <- v

(* ------------------------------------------------------------------ *)
(* Static shape of the linked instruction set                          *)
(* ------------------------------------------------------------------ *)

let iter_rops (i : Link.rinstr) f =
  match i with
  | Link.Lmov (_, a) | Link.Lcast (_, _, a) | Link.Lunop (_, _, a) -> f a
  | Link.Lbinop (_, _, a, b) ->
    f a;
    f b
  | Link.Lalloc_tuple (_, fields) -> Array.iter f fields
  | Link.Lalloc_array (_, n, init) ->
    f n;
    f init
  | Link.Lalloc_string _ | Link.Ljmp _ -> ()
  | Link.Lload (_, p, dyn, _) ->
    f p;
    f dyn
  | Link.Lstore (p, dyn, _, v) ->
    f p;
    f dyn;
    f v
  | Link.Lext (_, _, args, _) -> Array.iter f args
  | Link.Ljz (c, _) -> f c
  | Link.Lswitch (v, _, _, _) -> f v
  | Link.Ltail (g, args) | Link.Lspeculate (g, args) ->
    f g;
    Array.iter f args
  | Link.Lexit v -> f v
  | Link.Lmigrate (_, dst, g, args) ->
    f dst;
    f g;
    Array.iter f args
  | Link.Lcommit (l, g, args) ->
    f l;
    f g;
    Array.iter f args
  | Link.Lrollback (l, c) ->
    f l;
    f c

let dest_of (i : Link.rinstr) : Masm.slot option =
  match i with
  | Link.Lmov (d, _)
  | Link.Lcast (d, _, _)
  | Link.Lunop (_, d, _)
  | Link.Lbinop (_, d, _, _)
  | Link.Lalloc_tuple (d, _)
  | Link.Lalloc_array (d, _, _)
  | Link.Lalloc_string (d, _)
  | Link.Lload (d, _, _, _)
  | Link.Lext (d, _, _, _) -> Some d
  | Link.Lstore _ | Link.Ljmp _ | Link.Ljz _ | Link.Lswitch _ | Link.Ltail _
  | Link.Lexit _ | Link.Lmigrate _ | Link.Lspeculate _ | Link.Lcommit _
  | Link.Lrollback _ -> None

(* Control-flow successors within the function (out-of-range targets
   trap on the sentinel, so they contribute no dataflow edge). *)
let succs_of len p (i : Link.rinstr) : int list =
  let next = if p + 1 < len then [ p + 1 ] else [] in
  let jump t rest = if t >= 0 && t < len then t :: rest else rest in
  match i with
  | Link.Ljmp t -> jump t []
  | Link.Ljz (_, t) -> jump t next
  | Link.Lswitch (_, _, targets, default) ->
    Array.fold_left (fun acc t -> jump t acc) (jump default []) targets
  | Link.Ltail _ | Link.Lexit _ | Link.Lmigrate _ | Link.Lspeculate _
  | Link.Lcommit _ | Link.Lrollback _ -> []
  | _ -> next

(* Segment terminators: control transfers and observation points. *)
let is_term (i : Link.rinstr) =
  match i with
  | Link.Ljmp _ | Link.Lswitch _ | Link.Ltail _ | Link.Lexit _
  | Link.Lmigrate _ | Link.Lspeculate _ | Link.Lcommit _ | Link.Lrollback _
  | Link.Lext _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Segment parts and glue                                              *)
(* ------------------------------------------------------------------ *)

(* One compiled instruction within a run, before glueing:
   - [Pnone]: folded away entirely (a forwarded mov / dead safe mov) —
     only its deferred accounting remains;
   - [Peff]: a straight-line effect (accounting checkpoint inside when
     the body can trap);
   - [Pcond]: a conditional branch — checkpoint, then either continue
     the run or leave for the target;
   - [Pterm]: a terminator owning its accounting and next pc. *)
type part =
  | Pnone
  | Peff of (state -> unit)
  | Pcond of int * int * (state -> bool) * int
  | Pterm of op

(* ------------------------------------------------------------------ *)
(* Function compilation                                                *)
(* ------------------------------------------------------------------ *)

let compile_fn (linked : Link.image) (fn : Link.lfn) : cfn * int =
  let code = fn.Link.l_code and cost = fn.Link.l_cost in
  let len = Array.length code in
  (* slot-space sizing, defensive against indices beyond the declared
     windows (such slots are stale in every mode; they still need ids) *)
  let nr = ref fn.Link.l_regs_used and ns = ref fn.Link.l_spills in
  let bump_slot = function
    | Masm.Reg r -> nr := max !nr (r + 1)
    | Masm.Spill s -> ns := max !ns (s + 1)
  in
  let bump_rop = function
    | Link.Rreg r -> nr := max !nr (r + 1)
    | Link.Rspill s -> ns := max !ns (s + 1)
    | Link.Rval _ | Link.Rfun _ | Link.Rfunname _ -> ()
  in
  Array.iter bump_slot fn.Link.l_params;
  Array.iter
    (fun i ->
      iter_rops i bump_rop;
      match dest_of i with Some d -> bump_slot d | None -> ())
    code;
  let nregs = !nr in
  let nslots = max (nregs + !ns) 1 in
  let succs = Array.init len (fun p -> succs_of len p code.(p)) in
  let def_at p =
    match dest_of code.(p) with Some d -> sid nregs d | None -> -1
  in
  (* --- backward liveness: may slot [s] be read at-or-after pc [p]
     before being redefined?  [live_in.(len)] stays all-false (falling
     off the end traps; the frame is dead). *)
  let live_in = Array.init (len + 1) (fun _ -> Array.make nslots false) in
  for p = 0 to len - 1 do
    iter_rops code.(p) (fun r ->
        let s = rop_sid nregs r in
        if s >= 0 then live_in.(p).(s) <- true)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for p = len - 1 downto 0 do
      let li = live_in.(p) in
      let d = def_at p in
      List.iter
        (fun sq ->
          let ls = live_in.(sq) in
          for k = 0 to nslots - 1 do
            if ls.(k) && k <> d && not li.(k) then begin
              li.(k) <- true;
              changed := true
            end
          done)
        succs.(p)
    done
  done;
  (* --- forward definite assignment: is slot [s] written on EVERY path
     before pc [p]?  Entry facts: parameters, plus every slot outside
     the windows Fast clears (stale in both modes, so "assigned" here
     just means "no clear needed").  Greatest fixpoint from all-true. *)
  let a_in = Array.init (max len 1) (fun _ -> Array.make nslots true) in
  if len > 0 then begin
    let e = a_in.(0) in
    Array.fill e 0 nslots false;
    for r = fn.Link.l_regs_used to nregs - 1 do
      e.(r) <- true
    done;
    for s = fn.Link.l_spills to !ns - 1 do
      e.(nregs + s) <- true
    done;
    Array.iter (fun sl -> e.(sid nregs sl) <- true) fn.Link.l_params
  end;
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to len - 1 do
      let inp = a_in.(p) in
      let d = def_at p in
      List.iter
        (fun sq ->
          let a = a_in.(sq) in
          for k = 0 to nslots - 1 do
            if a.(k) && k <> d && not inp.(k) then begin
              a.(k) <- false;
              changed := true
            end
          done)
        succs.(p)
    done
  done;
  let need = Array.make nslots false in
  for p = 0 to len - 1 do
    let inp = a_in.(p) in
    iter_rops code.(p) (fun r ->
        let s = rop_sid nregs r in
        if s >= 0 && not inp.(s) then need.(s) <- true)
  done;
  let collect hi off =
    let l = ref [] in
    for i = hi - 1 downto 0 do
      if need.(off + i) then l := i :: !l
    done;
    Array.of_list !l
  in
  let cf_clear_regs = collect (min fn.Link.l_regs_used nregs) 0 in
  let cf_clear_spills = collect fn.Link.l_spills nregs in
  (* --- run segmentation: control enters only at pc 0, jump targets
     and the pc after an extern; everything between is straight-line *)
  let starts = Array.make (max len 1) false in
  if len > 0 then starts.(0) <- true;
  let mark t = if t >= 0 && t < len then starts.(t) <- true in
  Array.iteri
    (fun p i ->
      match i with
      | Link.Ljmp t | Link.Ljz (_, t) -> mark t
      | Link.Lswitch (_, _, targets, default) ->
        Array.iter mark targets;
        mark default
      | Link.Lext _ -> mark (p + 1)
      | _ -> ())
    code;
  let sentinel : op =
    fun _ -> raise (Emulator_error "program counter out of range")
  in
  let interior : op =
    fun _ -> raise (Emulator_error "program counter inside a fused segment")
  in
  let out = Array.make (len + 1) interior in
  out.(len) <- sentinel;
  let tgt t = if t >= 0 && t < len then t else len in
  let live_at q s = live_in.(q).(s) in
  (* --- per-run compilation *)
  let av : avail option array = Array.make nslots None in
  let super = ref 0 in
  let pend_c = ref 0 and pend_n = ref 0 in
  let defer c =
    pend_c := !pend_c + c;
    pend_n := !pend_n + 1
  in
  let checkpoint c =
    let cc = !pend_c + c and cn = !pend_n + 1 in
    pend_c := 0;
    pend_n := 0;
    cc, cn
  in
  let mk_eff safe c (e : state -> unit) =
    if safe then begin
      defer c;
      Peff e
    end
    else begin
      let cc, cn = checkpoint c in
      Peff
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          e st)
    end
  in
  (* can the value defined into slot [s] at pc [p] be read by another
     segment?  Scan the rest of the run: a redefinition kills it; every
     exit (branch target, post-extern fall-through, run-end
     fall-through) consults liveness at the landing pc; block exits drop
     the whole frame. *)
  let escapes p s re =
    let rec scan q =
      if q > re then live_at (re + 1) s
      else if def_at q = s then false
      else
        match code.(q) with
        | Link.Ljz (_, t) -> live_at (tgt t) s || scan (q + 1)
        | Link.Ljmp t -> live_at (tgt t) s
        | Link.Lswitch (_, _, targets, default) ->
          live_at (tgt default) s
          || Array.exists (fun t -> live_at (tgt t) s) targets
        | Link.Ltail _ | Link.Lexit _ | Link.Lmigrate _ | Link.Lspeculate _
        | Link.Lcommit _ | Link.Lrollback _ -> false
        | Link.Lext _ -> live_at (q + 1) s
        | _ -> scan (q + 1)
    in
    scan (p + 1)
  in
  (* a producer with a statically-known result representation: write the
     raw result into the scratch slot for in-run consumers, box into the
     destination only when it escapes *)
  let compile_def q c d (body, safe) re =
    let ds = sid nregs d in
    match body with
    | Rboxed f ->
      av.(ds) <- None;
      let e =
        if live_at (q + 1) ds then
          let set = set_slot d in
          fun st -> set st (f st)
        else fun st -> ignore (f st)
      in
      mk_eff safe c e
    | Rint f ->
      let stored = escapes q ds re in
      av.(ds) <- Some { fw = Fint q; stored };
      let e =
        if stored then
          let set = set_slot d in
          fun st ->
            let v = f st in
            Array.unsafe_set st.itmps q v;
            set st (Value.Vint v)
        else fun st -> Array.unsafe_set st.itmps q (f st)
      in
      mk_eff safe c e
    | Rfloat f ->
      let stored = escapes q ds re in
      av.(ds) <- Some { fw = Ffloat q; stored };
      let e =
        if stored then
          let set = set_slot d in
          fun st ->
            let v = f st in
            Array.unsafe_set st.ftmps q v;
            set st (Value.Vfloat v)
        else fun st -> Array.unsafe_set st.ftmps q (f st)
      in
      mk_eff safe c e
    | Rbool f ->
      let stored = escapes q ds re in
      av.(ds) <- Some { fw = Fbool q; stored };
      let e =
        if stored then
          let set = set_slot d in
          fun st ->
            let v = f st in
            Array.unsafe_set st.itmps q (if v then 1 else 0);
            set st (vbool v)
        else
          fun st ->
            Array.unsafe_set st.itmps q (if f st then 1 else 0)
      in
      mk_eff safe c e
  in
  let compile_part q re : part =
    let c = cost.(q) in
    match code.(q) with
    | Link.Lmov (d, a) -> (
      let ds = sid nregs d in
      let asid = rop_sid nregs a in
      let src = if asid >= 0 then av.(asid) else None in
      match a, src with
      | Link.Rval v, _ ->
        (* constant propagation: the mov costs at most one pre-built
           store, often nothing *)
        let stored = escapes q ds re in
        let part =
          if stored then
            let set = set_slot d in
            mk_eff true c (fun st -> set st v)
          else begin
            defer c;
            Pnone
          end
        in
        av.(ds) <- Some { fw = Fval v; stored };
        part
      | _, Some { fw; _ } ->
        (* forwarded source: alias the scratch slot (value semantics —
           the producer's scratch is written once per run execution) *)
        let stored = escapes q ds re in
        let part =
          if stored then
            let g = gget linked nregs av a in
            let set = set_slot d in
            mk_eff true c (fun st -> set st (g st))
          else begin
            defer c;
            Pnone
          end
        in
        av.(ds) <- Some { fw; stored };
        part
      | _, None ->
        let g = gget linked nregs av a in
        let safe =
          match a with Link.Rfun _ | Link.Rfunname _ -> false | _ -> true
        in
        av.(ds) <- None;
        if live_at (q + 1) ds then
          let set = set_slot d in
          mk_eff safe c (fun st -> set st (g st))
        else if safe then begin
          defer c;
          Pnone
        end
        else mk_eff false c (fun st -> ignore (g st)))
    | Link.Lcast (d, ty, a) ->
      let g = gget linked nregs av a in
      compile_def q c d
        (Rboxed (fun st -> Interp.cast_check ty (g st)), false)
        re
    | Link.Lunop (o, d, a) ->
      compile_def q c d (unop_rbody linked nregs av o a) re
    | Link.Lbinop (o, d, a, b) ->
      compile_def q c d (binop_rbody linked nregs av o a b) re
    | Link.Lalloc_tuple (d, fields) ->
      let ga = args_fn linked nregs av fields in
      compile_def q c d
        ( Rboxed (fun st -> Value.Vptr (Heap.alloc_tuple st.heap (ga st), 0)),
          false )
        re
    | Link.Lalloc_array (d, n, init) ->
      let gi, _ = iget linked nregs av n in
      let ginit = gget linked nregs av init in
      compile_def q c d
        ( Rboxed
            (fun st ->
              let size = gi st in
              if size < 0 then raise (Interp.Trap "negative array size");
              Value.Vptr
                ( Heap.alloc st.heap ~tag:Heap.Array ~size ~init:(ginit st),
                  0 )),
          false )
        re
    | Link.Lalloc_string (d, s) ->
      compile_def q c d
        (Rboxed (fun st -> Value.Vptr (Heap.alloc_raw st.heap s, 0)), false)
        re
    | Link.Lload (d, p, dyn, k) ->
      let gp = gget linked nregs av p in
      let body =
        match iconst nregs av dyn with
        | Some n ->
          let k = k + n in
          Rboxed
            (fun st ->
              let idx, off = to_ptr (gp st) in
              Heap.read st.heap idx (off + k))
        | None ->
          let gd, _ = iget linked nregs av dyn in
          Rboxed
            (fun st ->
              let idx, off = to_ptr (gp st) in
              let dn = gd st in
              Heap.read st.heap idx (off + dn + k))
      in
      compile_def q c d (body, false) re
    | Link.Lstore (p, dyn, k, v) ->
      let gp = gget linked nregs av p in
      let gv = gget linked nregs av v in
      let e =
        match iconst nregs av dyn with
        | Some n ->
          let k = k + n in
          fun st ->
            let idx, off = to_ptr (gp st) in
            Heap.write st.heap idx (off + k) (gv st)
        | None ->
          let gd, _ = iget linked nregs av dyn in
          fun st ->
            let idx, off = to_ptr (gp st) in
            let dn = gd st in
            Heap.write st.heap idx (off + dn + k) (gv st)
      in
      mk_eff false c e
    | Link.Ljz (cond, t) ->
      let bc, _ = bget linked nregs av cond in
      let cc, cn = checkpoint c in
      Pcond (cc, cn, bc, tgt t)
    | Link.Ljmp t ->
      let cc, cn = checkpoint c in
      let t' = tgt t in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          t')
    | Link.Lswitch (v, keys, targets, default) -> (
      let cc, cn = checkpoint c in
      let tgts = Array.map tgt targets and dflt = tgt default in
      let search n =
        let lo = ref 0 and hi = ref (Array.length keys - 1) in
        let target = ref dflt in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          let k = Array.unsafe_get keys mid in
          if k = n then begin
            target := Array.unsafe_get tgts mid;
            lo := !hi + 1
          end
          else if k < n then lo := mid + 1
          else hi := mid - 1
        done;
        !target
      in
      match iconst nregs av v with
      | Some n ->
        (* static scrutinee: the whole switch is a jump *)
        let t' = search n in
        Pterm
          (fun st ->
            st.acc <- st.acc + cc;
            st.nins <- st.nins + cn;
            t')
      | None ->
        let gi, safe = iget linked nregs av v in
        let get_n =
          if safe then gi
          else
            let g = gget linked nregs av v in
            fun st -> (
              match g st with
              | Value.Vint n | Value.Venum (_, n) -> n
              | v ->
                raise
                  (Interp.Trap
                     ("switch on non-integer " ^ Value.to_string v)))
        in
        Pterm
          (fun st ->
            st.acc <- st.acc + cc;
            st.nins <- st.nins + cn;
            search (get_n st)))
    | Link.Lext (d, name, argops, post) ->
      let ga = args_fn linked nregs av argops in
      let set = set_slot d in
      let next = q + 1 in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let args = ga st in
          (* the extern observes proc.cycles: flush before the call,
             charge the destination spill after it *)
          flush st;
          let v = st.extern st.proc name args in
          st.acc <- st.acc + post;
          set st v;
          next)
    | Link.Ltail (f, argops) ->
      let gf = gget linked nregs av f in
      let ga = args_fn linked nregs av argops in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let callee = gf st in
          let args = ga st in
          let name = Process.fun_name st.proc callee in
          st.proc.Process.cont <- name, args;
          -1)
    | Link.Lexit v ->
      let gi, _ = iget linked nregs av v in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          st.proc.Process.status <- Process.Exited (gi st);
          -1)
    | Link.Lmigrate (label, dst, f, argops) ->
      let gd = gget linked nregs av dst in
      let gf = gget linked nregs av f in
      let ga = args_fn linked nregs av argops in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let target = Interp.target_string st.proc (gd st) in
          let entry = Process.fun_name st.proc (gf st) in
          let args = ga st in
          flush st;
          Process.do_migrate st.proc ~label ~target ~entry ~args;
          -1)
    | Link.Lspeculate (f, argops) ->
      let gf = gget linked nregs av f in
      let ga = args_fn linked nregs av argops in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let entry = Process.fun_name st.proc (gf st) in
          let args = ga st in
          flush st;
          Process.do_speculate st.proc ~entry ~args;
          -1)
    | Link.Lcommit (l, f, argops) ->
      let gl, _ = iget linked nregs av l in
      let gf = gget linked nregs av f in
      let ga = args_fn linked nregs av argops in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let level = gl st in
          let entry = Process.fun_name st.proc (gf st) in
          let args = ga st in
          flush st;
          Process.do_commit st.proc ~level ~entry ~args;
          -1)
    | Link.Lrollback (l, cop) ->
      let gl, _ = iget linked nregs av l in
      let gc, _ = iget linked nregs av cop in
      let cc, cn = checkpoint c in
      Pterm
        (fun st ->
          st.acc <- st.acc + cc;
          st.nins <- st.nins + cn;
          let level = gl st in
          let code = gc st in
          flush st;
          Process.do_rollback st.proc ~level ~code;
          -1)
  in
  let compile_run rs re =
    Array.fill av 0 nslots None;
    pend_c := 0;
    pend_n := 0;
    let parts = Array.make (re - rs + 1) Pnone in
    for q = rs to re do
      parts.(q - rs) <- compile_part q re
    done;
    (* fall-through exit: materialize whatever accounting is pending
       (unreachable when the run ends in a terminator) *)
    let base : op =
      let c = !pend_c and n = !pend_n and nxt = re + 1 in
      if c = 0 && n = 0 then fun _ -> nxt
      else
        fun st ->
          st.acc <- st.acc + c;
          st.nins <- st.nins + n;
          nxt
    in
    let rest = ref base in
    for q = re downto rs do
      match parts.(q - rs) with
      | Pnone -> ()
      | Peff e ->
        let k = !rest in
        rest :=
          fun st ->
            e st;
            k st
      | Pcond (cc, cn, cond, t') ->
        let k = !rest in
        rest :=
          fun st ->
            st.acc <- st.acc + cc;
            st.nins <- st.nins + cn;
            if cond st then k st else t'
      | Pterm f -> rest := f
    done;
    if re > rs then incr super;
    out.(rs) <- !rest
  in
  let rs = ref 0 in
  while !rs < len do
    if not starts.(!rs) then incr rs (* unreachable interior/dead code *)
    else begin
      let re = ref !rs in
      while
        (not (is_term code.(!re)))
        && !re + 1 < len
        && not starts.(!re + 1)
      do
        incr re
      done;
      compile_run !rs !re;
      rs := !re + 1
    end
  done;
  { cf_ops = out; cf_clear_regs; cf_clear_spills }, !super

let compile (linked : Link.image) : image =
  let super = ref 0 and tmps = ref 1 in
  let c_fns =
    Array.map
      (fun fn ->
        let cfn, s = compile_fn linked fn in
        super := !super + s;
        tmps := max !tmps (Array.length fn.Link.l_code);
        cfn)
      linked.Link.l_fns
  in
  {
    c_linked = linked;
    c_fns;
    c_instrs = Link.instr_count linked;
    c_super = !super;
    c_tmps = !tmps;
  }

let compile_masm (image : Masm.image) : image = compile (Link.link image)
