(** Closure compilation of linked MASM: the third execution tier.

    [compile] translates a {!Link.image} into arrays of OCaml closures —
    one entry closure per straight-line *run* of linked instructions,
    partial-evaluated over every static operand (register/spill indices,
    pre-built immediates, specialized operators, jump targets,
    per-instruction cycle costs).  The emulator's [Compiled] mode then
    executes [while st.pc >= 0 do st.pc <- code.(st.pc) st done].

    Runs are maximal segments broken only at control entry points (pc 0,
    branch/switch targets, the pc after an extern); the run compiler
    performs four optimizations the per-instruction tiers cannot:

    - {b unboxed forwarding}: a producer whose result representation is
      statically known ([op+], comparisons, casts to int…) writes its
      raw result into a scratch array ([itmps]/[ftmps], indexed by
      producer pc) and in-run consumers read it back without boxing or
      coercion checks;
    - {b store elimination}: the boxed destination-slot store is kept
      only if the value can escape the run (liveness at every branch
      target and the fall-through pc; block exits drop the frame);
    - {b checkpointed accounting}: non-trapping instructions defer their
      cycle/instruction-count bookkeeping into compile-time prefix sums
      that are materialized (inclusively) right before any closure that
      can trap, branch, or terminate — so [acc]/[nins] are exact at
      every observable point;
    - {b frame-clear elision}: definite-assignment analysis shrinks the
      per-call register/spill clears to the slots that may actually be
      read before being written.

    Compiled code is observationally identical to the [Fast] and
    [Baseline] modes: same results, same retired-instruction counts,
    same cycle charges at the same observation boundaries, same traps.
    Runs never fuse across observation points ([Lext], the
    migration/speculation pseudo-instructions, block exits), and every
    interior pc of a run is unreachable by construction (it is not a
    branch target), enforced by a raising closure.

    A compiled image captures only static data; all per-process state
    travels in the {!state} record.  It is therefore process-independent
    and is memoized in [Migrate.Codecache] next to the linked image, so
    warm migration hops resume straight into compiled code. *)

open Runtime

exception Emulator_error of string
(** Raised when the program counter leaves the code array (shared with
    [Emulator], which rebinds it). *)

(** Per-process execution state threaded through every closure; one per
    emulator instance, while the closures are shared across processes. *)
type state = {
  regs : Value.t array;
  spills : Value.t array;
  itmps : int array;
      (** unboxed int/bool scratch, indexed by producer pc; sized by
          [c_tmps] *)
  ftmps : float array;  (** unboxed float scratch, indexed by producer pc *)
  proc : Process.t;
  heap : Heap.t;
  fun_values : Value.t option array;
      (** per-process resolution of the linked image's function names,
          indexed by linked-function index *)
  mutable extern : Process.handler;
  mutable acc : int;  (** pending static cycle charges *)
  mutable nins : int;  (** instructions retired this block *)
  mutable pc : int;
}

type op = state -> int
(** One compiled run: executes, returns the next pc (negative at block
    exit). *)

type cfn = {
  cf_ops : op array;
      (** indexed by pc; run entries execute the whole run, interior pcs
          raise, and index [Array.length l_code] is a raising sentinel so
          falling off the end traps exactly like the interpretive bounds
          check *)
  cf_clear_regs : int array;
      (** registers within [0, l_regs_used) that must be cleared on
          entry (may be read before written) *)
  cf_clear_spills : int array;  (** same for the spill window *)
}

type image = {
  c_linked : Link.image;
  c_fns : cfn array;  (** parallel to [c_linked.l_fns] *)
  c_instrs : int;  (** instructions compiled *)
  c_super : int;  (** run entries covering two or more instructions *)
  c_tmps : int;  (** scratch-array size every executing state needs *)
}

val compile : Link.image -> image
(** Pure translation pass; [O(instructions²)] worst-case for the
    per-function dataflow fixpoints, linear in practice. *)

val compile_masm : Masm.image -> image
(** [compile] after {!Link.link}. *)
