(* Pre-resolution of MASM images (the "stub linking" the paper performs
   before resuming migrated code, taken seriously as an optimization
   pass).

   The emulator's inner loop used to pay for name resolution, switch
   table walks, immediate construction, and a per-instruction cycle
   charge through a closure.  All four are static properties of the
   image, so this pass pays them once per (program, architecture) and
   the emulator executes the resolved form:

   - dense function indices: a tail call to a KNOWN function is an array
     access; dynamic calls go through a one-entry physical-equality
     cache and a hashtable (see Emulator);
   - sorted switch arrays with binary search;
   - immediates pre-built as Value.t (function immediates excepted:
     Vfun carries a per-process function-table index, so they stay
     symbolic as Rfun/Rfunname);
   - per-instruction static cycle cost: the instruction class cost plus
     Arch.Mem for every spill slot the instruction reads or writes.
     The emulator accumulates these in a local and flushes the sum with
     one Process.charge_cycles per observation boundary (extern calls,
     pseudo-instructions, block exit), preserving the exact cycle
     counts the per-instruction charging produced.

   The result is immutable and process-independent: it is cached
   alongside the compiled image in the recompilation cache and shared
   by every emulator running that program. *)

type rop =
  | Rreg of int
  | Rspill of int
  | Rval of Runtime.Value.t
  | Rfun of int
  | Rfunname of string

type rinstr =
  | Lmov of Masm.slot * rop
  | Lcast of Masm.slot * Fir.Types.ty * rop
  | Lunop of Fir.Ast.unop * Masm.slot * rop
  | Lbinop of Fir.Ast.binop * Masm.slot * rop * rop
  | Lalloc_tuple of Masm.slot * rop array
  | Lalloc_array of Masm.slot * rop * rop
  | Lalloc_string of Masm.slot * string
  | Lload of Masm.slot * rop * rop * int
  | Lstore of rop * rop * int * rop
  | Lext of Masm.slot * string * rop array * int
  | Ljmp of int
  | Ljz of rop * int
  | Lswitch of rop * int array * int array * int
  | Ltail of rop * rop array
  | Lexit of rop
  | Lmigrate of int * rop * rop * rop array
  | Lspeculate of rop * rop array
  | Lcommit of rop * rop * rop array
  | Lrollback of rop * rop

type lfn = {
  l_name : string;
  l_params : Masm.slot array;
  l_spills : int;
  l_regs_used : int;
  l_entry_cost : int;
  l_code : rinstr array;
  l_cost : int array;
}

type image = {
  l_arch : Arch.t;
  l_main : string;
  l_fns : lfn array;
  l_index : (string, int) Hashtbl.t;
  l_max_spills : int;
}

(* Value.t for a non-function immediate.  Built once at link time: the
   unlinked emulator allocated a fresh Value block on EVERY fetch of a
   boxed immediate. *)
let resolve_op index = function
  | Masm.Slot (Masm.Reg r) -> Rreg r
  | Masm.Slot (Masm.Spill s) -> Rspill s
  | Masm.Imm Masm.Iunit -> Rval Runtime.Value.Vunit
  | Masm.Imm (Masm.Iint n) -> Rval (Runtime.Value.Vint n)
  | Masm.Imm (Masm.Ifloat f) -> Rval (Runtime.Value.Vfloat f)
  | Masm.Imm (Masm.Ibool b) -> Rval (Runtime.Value.Vbool b)
  | Masm.Imm (Masm.Ienum (c, v)) -> Rval (Runtime.Value.Venum (c, v))
  | Masm.Imm (Masm.Ifun f) -> (
    match Hashtbl.find_opt index f with
    | Some i -> Rfun i
    | None -> Rfunname f)
  | Masm.Imm Masm.Inil -> Rval (Runtime.Value.Vptr (-1, 0))

(* Static cycle cost of touching an operand / destination: spill slots
   live in the frame, so the emulator charged Arch.Mem per access. *)
let op_cost mem = function
  | Rspill _ -> mem
  | Rreg _ | Rval _ | Rfun _ | Rfunname _ -> 0

let slot_cost mem = function Masm.Spill _ -> mem | Masm.Reg _ -> 0

let ops_cost mem a = Array.fold_left (fun acc o -> acc + op_cost mem o) 0 a

(* Sorted switch table; first occurrence wins on duplicate keys, which
   is what List.assoc_opt over the original list returned. *)
let switch_arrays cases =
  let seen = Hashtbl.create 8 in
  let uniq =
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      cases
  in
  (* Int.compare, not polymorphic compare: the keys are ints, and the
     polymorphic path costs a C call per comparison *)
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) uniq in
  ( Array.of_list (List.map fst sorted),
    Array.of_list (List.map snd sorted) )

let link_fn (arch : Arch.t) index (fn : Masm.fn) =
  let mem = arch.Arch.cycles Arch.Mem in
  let alu = arch.Arch.cycles Arch.Alu in
  let branch = arch.Arch.cycles Arch.Branch in
  let call_ret = arch.Arch.cycles Arch.Call_ret in
  let trap = arch.Arch.cycles Arch.Trap in
  let op = resolve_op index in
  let ops l = Array.of_list (List.map op l) in
  let n = Array.length fn.Masm.fn_code in
  let code = Array.make (max 1 n) (Ljmp 0) in
  let cost = Array.make (max 1 n) 0 in
  for pc = 0 to n - 1 do
    let ri, c =
      match fn.Masm.fn_code.(pc) with
      | Masm.Mov (d, a) ->
        let a = op a in
        Lmov (d, a), alu + slot_cost mem d + op_cost mem a
      | Masm.Cast (d, ty, a) ->
        let a = op a in
        Lcast (d, ty, a), alu + slot_cost mem d + op_cost mem a
      | Masm.Unop (o, d, a) ->
        let a = op a in
        Lunop (o, d, a), alu + slot_cost mem d + op_cost mem a
      | Masm.Binop (o, d, a, b) ->
        let a = op a and b = op b in
        ( Lbinop (o, d, a, b),
          alu + slot_cost mem d + op_cost mem a + op_cost mem b )
      | Masm.Alloc_tuple (d, fields) ->
        let fields = ops fields in
        Lalloc_tuple (d, fields), trap + slot_cost mem d + ops_cost mem fields
      | Masm.Alloc_array (d, size, init) ->
        let size = op size and init = op init in
        ( Lalloc_array (d, size, init),
          trap + slot_cost mem d + op_cost mem size + op_cost mem init )
      | Masm.Alloc_string (d, s) ->
        Lalloc_string (d, s), trap + slot_cost mem d
      | Masm.Load (d, p, dyn, k) ->
        let p = op p and dyn = op dyn in
        ( Lload (d, p, dyn, k),
          mem + slot_cost mem d + op_cost mem p + op_cost mem dyn )
      | Masm.Store (p, dyn, k, v) ->
        let p = op p and dyn = op dyn and v = op v in
        ( Lstore (p, dyn, k, v),
          mem + op_cost mem p + op_cost mem dyn + op_cost mem v )
      | Masm.Ext (d, name, args) ->
        let args = ops args in
        (* the dst write happens after the extern returns; its spill
           cost must land after the pre-extern flush *)
        ( Lext (d, name, args, slot_cost mem d),
          trap + ops_cost mem args )
      | Masm.Jmp t -> Ljmp t, branch
      | Masm.Jz (c, t) ->
        let c = op c in
        Ljz (c, t), branch + op_cost mem c
      | Masm.Switch (v, cases, default) ->
        let v = op v in
        let keys, targets = switch_arrays cases in
        Lswitch (v, keys, targets, default), branch + op_cost mem v
      | Masm.Tail_call (f, args) ->
        let f = op f and args = ops args in
        Ltail (f, args), call_ret + op_cost mem f + ops_cost mem args
      | Masm.Exit v ->
        let v = op v in
        Lexit v, call_ret + op_cost mem v
      | Masm.Migrate (label, dst, f, args) ->
        let dst = op dst and f = op f and args = ops args in
        (* Process.do_migrate charges its own Trap *)
        ( Lmigrate (label, dst, f, args),
          op_cost mem dst + op_cost mem f + ops_cost mem args )
      | Masm.Speculate (f, args) ->
        let f = op f and args = ops args in
        Lspeculate (f, args), op_cost mem f + ops_cost mem args
      | Masm.Commit (l, f, args) ->
        let l = op l and f = op f and args = ops args in
        ( Lcommit (l, f, args),
          op_cost mem l + op_cost mem f + ops_cost mem args )
      | Masm.Rollback (l, c) ->
        let l = op l and c = op c in
        Lrollback (l, c), op_cost mem l + op_cost mem c
    in
    code.(pc) <- ri;
    cost.(pc) <- c
  done;
  (* registers live for this function: parameters plus every register
     slot the code mentions — clearing only these on entry is
     observationally identical to clearing the whole file *)
  let regs_used = ref 0 in
  let see_slot = function
    | Masm.Reg r -> if r + 1 > !regs_used then regs_used := r + 1
    | Masm.Spill _ -> ()
  in
  let see_op = function
    | Rreg r -> if r + 1 > !regs_used then regs_used := r + 1
    | Rspill _ | Rval _ | Rfun _ | Rfunname _ -> ()
  in
  let see_ops = Array.iter see_op in
  List.iter see_slot fn.Masm.fn_params;
  Array.iter
    (function
      | Lmov (d, a) | Lcast (d, _, a) | Lunop (_, d, a) ->
        see_slot d;
        see_op a
      | Lbinop (_, d, a, b) ->
        see_slot d;
        see_op a;
        see_op b
      | Lalloc_tuple (d, fields) ->
        see_slot d;
        see_ops fields
      | Lalloc_array (d, a, b) ->
        see_slot d;
        see_op a;
        see_op b
      | Lalloc_string (d, _) -> see_slot d
      | Lload (d, p, dyn, _) ->
        see_slot d;
        see_op p;
        see_op dyn
      | Lstore (p, dyn, _, v) ->
        see_op p;
        see_op dyn;
        see_op v
      | Lext (d, _, args, _) ->
        see_slot d;
        see_ops args
      | Ljmp _ -> ()
      | Ljz (c, _) -> see_op c
      | Lswitch (v, _, _, _) -> see_op v
      | Ltail (f, args) ->
        see_op f;
        see_ops args
      | Lexit v -> see_op v
      | Lmigrate (_, dst, f, args) ->
        see_op dst;
        see_op f;
        see_ops args
      | Lspeculate (f, args) ->
        see_op f;
        see_ops args
      | Lcommit (l, f, args) ->
        see_op l;
        see_op f;
        see_ops args
      | Lrollback (l, c) ->
        see_op l;
        see_op c)
    code;
  let mem_params =
    List.fold_left
      (fun acc s -> acc + slot_cost mem s)
      0 fn.Masm.fn_params
  in
  {
    l_name = fn.Masm.fn_name;
    l_params = Array.of_list fn.Masm.fn_params;
    l_spills = fn.Masm.fn_spills;
    l_regs_used = !regs_used;
    (* entering a block charges Call_ret plus the spill traffic of
       installing spilled parameters (set_slot charged Arch.Mem each) *)
    l_entry_cost = call_ret + mem_params;
    l_code = code;
    l_cost = cost;
  }

let link (image : Masm.image) =
  let arch = Arch.by_name image.Masm.im_arch in
  (* deterministic dense numbering: String_map folds in key order *)
  let names =
    List.rev
      (Masm.String_map.fold (fun name _ acc -> name :: acc) image.Masm.im_fns
         [])
  in
  let index = Hashtbl.create (2 * List.length names) in
  List.iteri (fun i name -> Hashtbl.add index name i) names;
  let fns =
    Array.of_list
      (List.map
         (fun name -> link_fn arch index (Masm.fn_exn image name))
         names)
  in
  let max_spills =
    Array.fold_left (fun acc fn -> max acc fn.l_spills) 0 fns
  in
  {
    l_arch = arch;
    l_main = image.Masm.im_main;
    l_fns = fns;
    l_index = index;
    l_max_spills = max_spills;
  }

let fn_index t name = Hashtbl.find_opt t.l_index name

let instr_count t =
  Array.fold_left (fun acc fn -> acc + Array.length fn.l_code) 0 t.l_fns
