(** Pre-resolved MASM images: the emulator's fast execution format.

    [link] runs a one-time resolution pass over a {!Masm.image} and
    produces a shareable, process-independent representation in which
    every per-instruction lookup the emulator used to perform has been
    paid once:

    - function names are resolved to dense indices into [l_fns] (no
      [String_map.find_opt] per tail call);
    - switch tables are sorted key/target arrays searched by binary
      search (no [List.assoc_opt] walk);
    - immediates are pre-built {!Runtime.Value.t}s (no allocation per
      operand fetch) — function immediates stay symbolic ({!Rfun} /
      {!Rfunname}) because a [Vfun] index is per-process state;
    - the static cycle cost of each instruction (its class cost plus the
      memory cost of every spill slot it touches) is folded into
      [l_cost], so the emulator charges a block with one addition per
      instruction and a single {!Process.charge_cycles} flush.

    A linked image is immutable and carries no process state, so it can
    be cached alongside the compiled image (see [Migrate.Codecache]) and
    shared by every emulator instance executing that program on that
    architecture. *)

open Runtime

(** A pre-resolved operand.  Spill reads are charged statically via
    [l_cost], so the emulator's fetch is a bare array access. *)
type rop =
  | Rreg of int  (** register file slot *)
  | Rspill of int  (** spill slot *)
  | Rval of Value.t  (** pre-built immediate (never a function) *)
  | Rfun of int
      (** function immediate resolved to a linked-function index; the
          emulator maps it to the process's [Vfun] via a per-process
          table built once at creation *)
  | Rfunname of string
      (** function immediate whose name is not in the image (legal: the
          function table can be wider than the compiled image); resolved
          through the process's function table at each use, exactly as
          the unlinked emulator did *)

type rinstr =
  | Lmov of Masm.slot * rop
  | Lcast of Masm.slot * Fir.Types.ty * rop
  | Lunop of Fir.Ast.unop * Masm.slot * rop
  | Lbinop of Fir.Ast.binop * Masm.slot * rop * rop
  | Lalloc_tuple of Masm.slot * rop array
  | Lalloc_array of Masm.slot * rop * rop
  | Lalloc_string of Masm.slot * string
  | Lload of Masm.slot * rop * rop * int
  | Lstore of rop * rop * int * rop
  | Lext of Masm.slot * string * rop array * int
      (** dst, name, args, post-cost: the dst spill cost is charged
          AFTER the extern returns (the extern observes the process's
          cycle counter, so the flush boundary matters) *)
  | Ljmp of int
  | Ljz of rop * int
  | Lswitch of rop * int array * int array * int
      (** scrutinee, sorted case keys, matching targets, default *)
  | Ltail of rop * rop array
  | Lexit of rop
  | Lmigrate of int * rop * rop * rop array
  | Lspeculate of rop * rop array
  | Lcommit of rop * rop * rop array
  | Lrollback of rop * rop

type lfn = {
  l_name : string;
  l_params : Masm.slot array;
  l_spills : int;  (** spill slots this function uses *)
  l_regs_used : int;  (** registers [0, l_regs_used) are live on entry *)
  l_entry_cost : int;
      (** Call_ret plus the memory cost of installing spill parameters *)
  l_code : rinstr array;
  l_cost : int array;
      (** static cycle cost per pc: class cost + spill traffic *)
}

type image = {
  l_arch : Arch.t;
  l_main : string;
  l_fns : lfn array;  (** dense, indexed by linked-function index *)
  l_index : (string, int) Hashtbl.t;
  l_max_spills : int;  (** max [l_spills] over [l_fns] (frame sizing) *)
}

val link : Masm.image -> image
(** Pure resolution pass; [O(instructions)].
    @raise Invalid_argument if the image names an unknown architecture. *)

val fn_index : image -> string -> int option
val instr_count : image -> int
