(** Whole-process state (paper, Section 4.1).

    A process bundles the FIR code, heap, pointer/function tables,
    speculation engine and current continuation.  Because the FIR is CPS,
    between basic blocks the complete live state is the next call's
    argument list — which is why the paper's [migrate_env] is exactly
    those arguments and migration needs no machine-specific register map.

    A process does not run itself: {!Interp} or {!Emulator} advances it
    one basic block per step, and a host environment (CLI, migration
    daemon, simulated cluster node) resolves {!Migrating} statuses and
    provides external functions. *)

open Runtime

type migration_request = {
  m_label : int;  (** the unique migration label i *)
  m_target : string;  (** decoded target string, e.g. "mcc://node1" *)
  m_entry : string;  (** continuation function *)
  m_args : Value.t list;  (** live variables = continuation arguments *)
}

type status =
  | Running
  | Exited of int
  | Trapped of string
  | Migrating of migration_request

type t = {
  pid : int;
  program : Fir.Ast.program;
  heap : Heap.t;
  ftable : Function_table.t;
  spec : Spec.Engine.t;
  arch : Arch.t;
  mutable cont : string * Value.t list;
  mutable status : status;
  mutable steps : int;
  mutable cycles : int;
  mutable waiting : bool;  (** scheduler hint: parked on input *)
  mutable on_gc : (Gc.result -> unit) option;
      (** host observer, fired after every collection (tracing) *)
  output : Buffer.t;
  rng : Random.State.t;
}

exception Process_error of string

val create :
  ?pid:int -> ?arch:Arch.t -> ?seed:int -> ?heap_cells:int ->
  Fir.Ast.program -> t

val restore :
  ?pid:int -> ?arch:Arch.t -> ?seed:int ->
  program:Fir.Ast.program -> heap:Heap.t ->
  spec_snapshot:Spec.Engine.snapshot_level list ->
  cont:string * Value.t list -> unit -> t
(** Rebuild a process from unpacked parts (migration / checkpoint
    resume). *)

val output : t -> string
val is_terminated : t -> bool
val charge : t -> Arch.instr_class -> unit

val charge_cycles : t -> int -> unit
(** Bulk charge: add a pre-computed cycle count (engines accumulate
    static per-instruction costs locally and flush once per observation
    boundary — see {!Link}). *)

(** {2 Function resolution} *)
val fun_name : t -> Value.t -> string
val fun_value : t -> string -> Value.t
val fundef : t -> string -> Fir.Ast.fundef

(** {2 Garbage collection driver} *)

val roots : t -> Value.t list
val collect : t -> Gc.kind -> Gc.result
val maybe_collect : t -> unit

(** {2 Pseudo-instruction plumbing (shared by both engines)} *)

val do_speculate : t -> entry:string -> args:Value.t list -> unit
val do_commit : t -> level:int -> entry:string -> args:Value.t list -> unit
val do_rollback : t -> level:int -> code:int -> unit
val do_migrate :
  t -> label:int -> target:string -> entry:string -> args:Value.t list ->
  unit

val migration_failed : t -> unit
(** Resolve a {!Migrating} status as failed: the process continues
    locally, unaware (paper, Section 4.2.1) — also used for the
    checkpoint protocol's keep-running semantics. *)

val migration_completed : t -> unit
(** Resolve a {!Migrating} status as succeeded: the source terminates. *)

(** {2 External functions} *)

exception Extern_failure of string

type handler = t -> string -> Value.t list -> Value.t

val no_externs : handler
