(** The MASM emulator — the "native-code runtime" stand-in.

    Executes compiled instruction arrays with a real register file and
    spill slots, charging the architecture's per-class cycle costs.
    Semantically identical to {!Interp} (tested differentially); the
    pseudo-instructions trap to the same {!Process} entry points. *)

exception Emulator_error of string

(** [Compiled] (the default) executes the closure-compiled image (see
    {!Compile}): one partial-evaluated closure per fused instruction
    segment, dispatch loop [st.pc <- code.(st.pc) st].
    [Fast] executes the pre-resolved image (see {!Link}).
    [Baseline] keeps the pre-optimization per-instruction loop
    executable, so the V1 bench measures the whole ladder from one
    build and the equivalence tests can assert all three modes produce
    identical results and identical cycle counts. *)
type mode = Fast | Baseline | Compiled

type t

val create :
  ?mode:mode ->
  ?linked:Link.image ->
  ?compiled:Compile.image ->
  Masm.image ->
  Process.t ->
  t
(** [linked] (resp. [compiled]) shares a pre-resolved (resp.
    closure-compiled) image — e.g. from the recompilation cache —
    instead of translating [image] here.  A supplied [compiled] image
    also provides the linked form it embeds; [Compiled] mode compiles on
    demand when none is given.
    @raise Emulator_error if the image's architecture does not match the
    process's (cross-architecture execution requires recompilation). *)

val step : ?extern:Process.handler -> t -> unit
val run :
  ?extern:Process.handler -> ?max_steps:int -> t -> Process.status

val instructions : t -> int
(** Emulated instructions retired so far (the V1 MIPS meter). *)

val context_switch_cycles : Arch.t -> int
(** Save + restore one full register file plus scheduler traps — the
    experiment E5 baseline. *)
