(* MASM: the virtual machine instruction set targeted by the code
   generator.

   MASM stands in for the paper's machine-specific assembly (IA32 /
   simulated RISC).  It is a register machine: each function gets the
   target architecture's general-purpose registers plus spill slots in a
   frame; FIR variables are assigned to slots by the code generator.
   Heap access instructions perform the pointer-table validation sequence
   of Section 4.1.1 before touching memory (the emulator enforces it by
   construction — [Heap.read]/[Heap.write] validate).

   A compiled image can be serialized: this is the payload of the paper's
   "binary migration" fast path between machines of the SAME architecture.
   Cross-architecture migration must ship FIR and recompile. *)

type slot = Reg of int | Spill of int

type imm =
  | Iunit
  | Iint of int
  | Ifloat of float
  | Ibool of bool
  | Ienum of int * int
  | Ifun of string
  | Inil

type operand = Slot of slot | Imm of imm

type instr =
  | Mov of slot * operand
  | Cast of slot * Fir.Types.ty * operand (* checked downcast from any *)
  | Unop of Fir.Ast.unop * slot * operand
  | Binop of Fir.Ast.binop * slot * operand * operand
  | Alloc_tuple of slot * operand list
  | Alloc_array of slot * operand * operand (* size, init *)
  | Alloc_string of slot * string
  | Load of slot * operand * operand * int (* dst, ptr, dyn idx, static off *)
  | Store of operand * operand * int * operand (* ptr, dyn idx, static, value *)
  | Ext of slot * string * operand list
  | Jmp of int
  | Jz of operand * int (* branch to target if the operand is false *)
  | Switch of operand * (int * int) list * int (* value cases, default pc *)
  | Tail_call of operand * operand list
  | Exit of operand
  | Migrate of int * operand * operand * operand list
  | Speculate of operand * operand list
  | Commit of operand * operand * operand list
  | Rollback of operand * operand

type fn = {
  fn_name : string;
  fn_params : slot list;
  fn_code : instr array;
  fn_spills : int; (* spill-slot count for the frame *)
}

module String_map = Map.Make (String)

type image = {
  im_arch : string;
  im_main : string;
  im_fns : fn String_map.t;
}

let fn image name = String_map.find_opt name image.im_fns

let fn_exn image name =
  match fn image name with
  | Some f -> f
  | None -> invalid_arg ("Masm.fn_exn: unknown function " ^ name)

let instr_count image =
  String_map.fold (fun _ f acc -> acc + Array.length f.fn_code) image.im_fns 0

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for diagnostics and the CLI's -S flag)             *)
(* ------------------------------------------------------------------ *)

let slot_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Spill s -> Printf.sprintf "[sp+%d]" s

let imm_to_string = function
  | Iunit -> "()"
  | Iint n -> string_of_int n
  | Ifloat f -> Printf.sprintf "%g" f
  | Ibool b -> string_of_bool b
  | Ienum (c, v) -> Printf.sprintf "enum[%d]{%d}" c v
  | Ifun f -> "@" ^ f
  | Inil -> "nil"

let operand_to_string = function
  | Slot s -> slot_to_string s
  | Imm i -> imm_to_string i

let instr_to_string =
  let sl = slot_to_string and op = operand_to_string in
  let ops l = String.concat ", " (List.map operand_to_string l) in
  function
  | Mov (d, a) -> Printf.sprintf "mov   %s, %s" (sl d) (op a)
  | Cast (d, t, a) ->
    Printf.sprintf "cast  %s, %s : %s" (sl d) (op a) (Fir.Types.to_string t)
  | Unop (o, d, a) ->
    Printf.sprintf "un%-4s %s, %s" (Fir.Pp.unop_to_string o) (sl d) (op a)
  | Binop (o, d, a, b) ->
    Printf.sprintf "op%-4s %s, %s, %s" (Fir.Pp.binop_to_string o) (sl d)
      (op a) (op b)
  | Alloc_tuple (d, fields) ->
    Printf.sprintf "tupl  %s, (%s)" (sl d) (ops fields)
  | Alloc_array (d, n, i) ->
    Printf.sprintf "arr   %s, [%s x %s]" (sl d) (op n) (op i)
  | Alloc_string (d, s) -> Printf.sprintf "str   %s, %S" (sl d) s
  | Load (d, p, i, k) ->
    Printf.sprintf "load  %s, %s[%s+%d]" (sl d) (op p) (op i) k
  | Store (p, i, k, v) ->
    Printf.sprintf "store %s[%s+%d], %s" (op p) (op i) k (op v)
  | Ext (d, name, args) ->
    Printf.sprintf "ext   %s, %s(%s)" (sl d) name (ops args)
  | Jmp t -> Printf.sprintf "jmp   L%d" t
  | Jz (c, t) -> Printf.sprintf "jz    %s, L%d" (op c) t
  | Switch (v, cases, d) ->
    Printf.sprintf "swch  %s, {%s}, L%d" (op v)
      (String.concat "; "
         (List.map (fun (n, t) -> Printf.sprintf "%d->L%d" n t) cases))
      d
  | Tail_call (f, args) -> Printf.sprintf "tcall %s(%s)" (op f) (ops args)
  | Exit v -> Printf.sprintf "exit  %s" (op v)
  | Migrate (l, dst, f, args) ->
    Printf.sprintf "migr  [%d, %s] %s(%s)" l (op dst) (op f) (ops args)
  | Speculate (f, args) -> Printf.sprintf "spec  %s(%s)" (op f) (ops args)
  | Commit (l, f, args) ->
    Printf.sprintf "cmit  [%s] %s(%s)" (op l) (op f) (ops args)
  | Rollback (l, c) -> Printf.sprintf "rlbk  [%s, %s]" (op l) (op c)

let pp_fn fmt f =
  Format.fprintf fmt "%s(%s): %d spills@."
    f.fn_name
    (String.concat ", " (List.map slot_to_string f.fn_params))
    f.fn_spills;
  Array.iteri
    (fun pc i -> Format.fprintf fmt "  L%-3d %s@." pc (instr_to_string i))
    f.fn_code

let pp_image fmt image =
  Format.fprintf fmt "; arch %s, main %s@." image.im_arch image.im_main;
  String_map.iter (fun _ f -> pp_fn fmt f) image.im_fns

let image_to_string image = Format.asprintf "%a" pp_image image

(* ------------------------------------------------------------------ *)
(* Static opcode / adjacent-pair histograms                            *)
(* ------------------------------------------------------------------ *)

(* The evidence behind Compile's superinstruction set: which opcodes —
   and which straight-line pairs — actually dominate a compiled image.
   Binops carry their operator (a compare feeding a jz is the fusion
   candidate, an add is not), mirroring the pretty-printer mnemonics. *)
let opcode_name = function
  | Mov _ -> "mov"
  | Cast _ -> "cast"
  | Unop (o, _, _) -> "un" ^ Fir.Pp.unop_to_string o
  | Binop (o, _, _, _) -> "op" ^ Fir.Pp.binop_to_string o
  | Alloc_tuple _ -> "tuple"
  | Alloc_array _ -> "array"
  | Alloc_string _ -> "string"
  | Load _ -> "load"
  | Store _ -> "store"
  | Ext _ -> "ext"
  | Jmp _ -> "jmp"
  | Jz _ -> "jz"
  | Switch _ -> "switch"
  | Tail_call _ -> "tail"
  | Exit _ -> "exit"
  | Migrate _ -> "migrate"
  | Speculate _ -> "speculate"
  | Commit _ -> "commit"
  | Rollback _ -> "rollback"

let stats image =
  let ops = Hashtbl.create 64 and pairs = Hashtbl.create 64 in
  let bump tbl k =
    Hashtbl.replace tbl k
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  String_map.iter
    (fun _ f ->
      let code = f.fn_code in
      Array.iteri
        (fun i instr ->
          let n = opcode_name instr in
          bump ops n;
          if i + 1 < Array.length code then
            bump pairs (n ^ " ; " ^ opcode_name code.(i + 1)))
        code)
    image.im_fns;
  let sorted tbl =
    List.sort
      (fun (ka, a) (kb, b) ->
        if a <> b then Int.compare b a else String.compare ka kb)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  sorted ops, sorted pairs

(* ------------------------------------------------------------------ *)
(* Binary codec: the "binary migration" payload                        *)
(* ------------------------------------------------------------------ *)

exception Corrupt = Fir.Serial.Corrupt

let magic = "MASM"

(* v3: rides on the Serial v4 tagged-stream list encoding *)
let version = 3

open struct
  (* reuse the primitive readers/writers from the FIR codec *)
  let put_u8 = Fir.Serial.put_u8
  let put_i64 = Fir.Serial.put_i64
  let put_string = Fir.Serial.put_string
  let put_list = Fir.Serial.put_list
  let put_f64 = Fir.Serial.put_f64_exact
  let get_u8 = Fir.Serial.get_u8
  let get_i64 = Fir.Serial.get_i64
  let get_string = Fir.Serial.get_string
  let get_list = Fir.Serial.get_list
  let get_f64 = Fir.Serial.get_f64_exact
end

let put_slot buf = function
  | Reg r ->
    put_u8 buf 0;
    put_i64 buf r
  | Spill s ->
    put_u8 buf 1;
    put_i64 buf s

let get_slot r =
  match get_u8 r with
  | 0 -> Reg (get_i64 r)
  | 1 -> Spill (get_i64 r)
  | n -> raise (Corrupt (Printf.sprintf "bad slot tag %d" n))

let put_imm buf = function
  | Iunit -> put_u8 buf 0
  | Iint n ->
    put_u8 buf 1;
    put_i64 buf n
  | Ifloat f ->
    put_u8 buf 2;
    put_f64 buf f
  | Ibool b ->
    put_u8 buf 3;
    put_u8 buf (if b then 1 else 0)
  | Ienum (c, v) ->
    put_u8 buf 4;
    put_i64 buf c;
    put_i64 buf v
  | Ifun f ->
    put_u8 buf 5;
    put_string buf f
  | Inil -> put_u8 buf 6

let get_imm r =
  match get_u8 r with
  | 0 -> Iunit
  | 1 -> Iint (get_i64 r)
  | 2 -> Ifloat (get_f64 r)
  | 3 -> Ibool (get_u8 r <> 0)
  | 4 ->
    let c = get_i64 r in
    let v = get_i64 r in
    Ienum (c, v)
  | 5 -> Ifun (get_string r)
  | 6 -> Inil
  | n -> raise (Corrupt (Printf.sprintf "bad imm tag %d" n))

let put_operand buf = function
  | Slot s ->
    put_u8 buf 0;
    put_slot buf s
  | Imm i ->
    put_u8 buf 1;
    put_imm buf i

let get_operand r =
  match get_u8 r with
  | 0 -> Slot (get_slot r)
  | 1 -> Imm (get_imm r)
  | n -> raise (Corrupt (Printf.sprintf "bad operand tag %d" n))

let put_instr buf = function
  | Mov (d, a) ->
    put_u8 buf 0;
    put_slot buf d;
    put_operand buf a
  | Cast (d, t, a) ->
    put_u8 buf 18;
    put_slot buf d;
    Fir.Serial.put_ty buf t;
    put_operand buf a
  | Unop (o, d, a) ->
    put_u8 buf 1;
    put_u8 buf (Fir.Serial.unop_code o);
    put_slot buf d;
    put_operand buf a
  | Binop (o, d, a, b) ->
    put_u8 buf 2;
    put_u8 buf (Fir.Serial.binop_code o);
    put_slot buf d;
    put_operand buf a;
    put_operand buf b
  | Alloc_tuple (d, fields) ->
    put_u8 buf 3;
    put_slot buf d;
    put_list buf put_operand fields
  | Alloc_array (d, n, i) ->
    put_u8 buf 4;
    put_slot buf d;
    put_operand buf n;
    put_operand buf i
  | Alloc_string (d, s) ->
    put_u8 buf 5;
    put_slot buf d;
    put_string buf s
  | Load (d, p, i, k) ->
    put_u8 buf 6;
    put_slot buf d;
    put_operand buf p;
    put_operand buf i;
    put_i64 buf k
  | Store (p, i, k, v) ->
    put_u8 buf 7;
    put_operand buf p;
    put_operand buf i;
    put_i64 buf k;
    put_operand buf v
  | Ext (d, name, args) ->
    put_u8 buf 8;
    put_slot buf d;
    put_string buf name;
    put_list buf put_operand args
  | Jmp t ->
    put_u8 buf 9;
    put_i64 buf t
  | Jz (c, t) ->
    put_u8 buf 10;
    put_operand buf c;
    put_i64 buf t
  | Switch (v, cases, d) ->
    put_u8 buf 11;
    put_operand buf v;
    put_list buf
      (fun buf (n, t) ->
        put_i64 buf n;
        put_i64 buf t)
      cases;
    put_i64 buf d
  | Tail_call (f, args) ->
    put_u8 buf 12;
    put_operand buf f;
    put_list buf put_operand args
  | Exit v ->
    put_u8 buf 13;
    put_operand buf v
  | Migrate (l, dst, f, args) ->
    put_u8 buf 14;
    put_i64 buf l;
    put_operand buf dst;
    put_operand buf f;
    put_list buf put_operand args
  | Speculate (f, args) ->
    put_u8 buf 15;
    put_operand buf f;
    put_list buf put_operand args
  | Commit (l, f, args) ->
    put_u8 buf 16;
    put_operand buf l;
    put_operand buf f;
    put_list buf put_operand args
  | Rollback (l, c) ->
    put_u8 buf 17;
    put_operand buf l;
    put_operand buf c

let get_instr r =
  match get_u8 r with
  | 0 ->
    let d = get_slot r in
    Mov (d, get_operand r)
  | 1 ->
    let o = Fir.Serial.unop_of_code (get_u8 r) in
    let d = get_slot r in
    Unop (o, d, get_operand r)
  | 2 ->
    let o = Fir.Serial.binop_of_code (get_u8 r) in
    let d = get_slot r in
    let a = get_operand r in
    let b = get_operand r in
    Binop (o, d, a, b)
  | 3 ->
    let d = get_slot r in
    Alloc_tuple (d, get_list r get_operand)
  | 4 ->
    let d = get_slot r in
    let n = get_operand r in
    let i = get_operand r in
    Alloc_array (d, n, i)
  | 5 ->
    let d = get_slot r in
    Alloc_string (d, get_string r)
  | 6 ->
    let d = get_slot r in
    let p = get_operand r in
    let i = get_operand r in
    let k = get_i64 r in
    Load (d, p, i, k)
  | 7 ->
    let p = get_operand r in
    let i = get_operand r in
    let k = get_i64 r in
    let v = get_operand r in
    Store (p, i, k, v)
  | 8 ->
    let d = get_slot r in
    let name = get_string r in
    Ext (d, name, get_list r get_operand)
  | 9 -> Jmp (get_i64 r)
  | 10 ->
    let c = get_operand r in
    Jz (c, get_i64 r)
  | 11 ->
    let v = get_operand r in
    let cases =
      get_list r (fun r ->
          let n = get_i64 r in
          let t = get_i64 r in
          n, t)
    in
    Switch (v, cases, get_i64 r)
  | 12 ->
    let f = get_operand r in
    Tail_call (f, get_list r get_operand)
  | 13 -> Exit (get_operand r)
  | 14 ->
    let l = get_i64 r in
    let dst = get_operand r in
    let f = get_operand r in
    Migrate (l, dst, f, get_list r get_operand)
  | 15 ->
    let f = get_operand r in
    Speculate (f, get_list r get_operand)
  | 16 ->
    let l = get_operand r in
    let f = get_operand r in
    Commit (l, f, get_list r get_operand)
  | 17 ->
    let l = get_operand r in
    Rollback (l, get_operand r)
  | 18 ->
    let d = get_slot r in
    let t = Fir.Serial.get_ty r in
    Cast (d, t, get_operand r)
  | n -> raise (Corrupt (Printf.sprintf "bad instruction tag %d" n))

let encode image =
  let body = Buffer.create 4096 in
  put_string body image.im_arch;
  put_string body image.im_main;
  let fns = String_map.fold (fun _ f acc -> f :: acc) image.im_fns [] in
  put_list body
    (fun buf f ->
      put_string buf f.fn_name;
      put_list buf put_slot f.fn_params;
      put_i64 buf f.fn_spills;
      put_i64 buf (Array.length f.fn_code);
      Array.iter (put_instr buf) f.fn_code)
    fns;
  let body = Buffer.contents body in
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf magic;
  put_i64 buf version;
  put_i64 buf (Fir.Serial.adler32 body);
  put_i64 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let decode s =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) magic) then
    raise (Corrupt "bad MASM magic");
  let r = { Fir.Serial.data = s; pos = 4 } in
  let v = get_i64 r in
  if v <> version then raise (Corrupt "MASM version mismatch");
  let sum = get_i64 r in
  let len = get_i64 r in
  if len < 0 || r.Fir.Serial.pos + len > String.length s then
    raise (Corrupt "bad MASM body length");
  let body = String.sub s r.Fir.Serial.pos len in
  if Fir.Serial.adler32 body <> sum then raise (Corrupt "MASM checksum");
  let r = { Fir.Serial.data = body; pos = 0 } in
  let im_arch = get_string r in
  let im_main = get_string r in
  let fns =
    get_list r (fun r ->
        let fn_name = get_string r in
        let fn_params = get_list r get_slot in
        let fn_spills = get_i64 r in
        let n = get_i64 r in
        if n < 0 || n > 10_000_000 then raise (Corrupt "bad code length");
        let fn_code = Array.init n (fun _ -> get_instr r) in
        { fn_name; fn_params; fn_spills; fn_code })
  in
  let im_fns =
    List.fold_left
      (fun acc f ->
        if String_map.mem f.fn_name acc then raise (Corrupt "duplicate fn");
        String_map.add f.fn_name f acc)
      String_map.empty fns
  in
  { im_arch; im_main; im_fns }
