(* The MASM emulator: executes compiled images against a process.

   This is the "native-code runtime" stand-in.  It observes exactly the
   same semantics as the reference interpreter (the test suite checks the
   two engines produce identical results on the same programs), but it
   executes compiled instruction arrays with a real register file and
   spill slots, and charges the architecture's cycle costs per
   instruction — spill accesses cost memory cycles, so the two simulated
   architectures genuinely diverge on register-hungry code.

   Pseudo-instructions trap to the same runtime entry points
   ([Process.do_speculate] etc.) as the interpreter.

   Two execution modes share the semantics:

   - [Fast] (the default) runs the pre-resolved image (see Link):
     dense function indices instead of String_map lookups per tail
     call, binary-search switch tables, pre-built immediates, and
     static per-instruction cycle costs accumulated in a local and
     flushed in bulk.  The flush discipline preserves the exact cycle
     counts of per-instruction charging at every point where they are
     observable: before each extern call (externs read the cycle
     counter to compute simulated time), before each pseudo-instruction
     (they charge their own traps), and at block exit — including the
     exceptional exits, where the handler flushes whatever the partial
     block accumulated.

   - [Baseline] is the pre-optimization interpreter loop, kept
     executable so the V1 bench can measure before/after from the same
     build and the equivalence tests can assert the two modes produce
     identical results AND identical cycle counts.

   - [Compiled] (the default) executes the closure-compiled image (see
     Compile): one partial-evaluated closure per fused instruction
     segment, dispatch loop [st.pc <- code.(st.pc) st].  Same flush
     discipline, same accounting, same traps — the three-way equivalence
     suite holds all three modes to identical observable behaviour. *)

open Runtime

exception Emulator_error = Compile.Emulator_error

type mode = Fast | Baseline | Compiled

type frame = {
  mutable regs : Value.t array;
  mutable spills : Value.t array;
}

type t = {
  image : Masm.image;
  linked : Link.image;
  compiled : Compile.image option;  (* Some exactly when mode = Compiled *)
  cstate : Compile.state;
  proc : Process.t;
  frame : frame;
  mode : mode;
  (* per-process resolution of the linked image's function names:
     [Some (Vfun i)] when the name is in the process's function table,
     [None] otherwise (resolving then raises Invalid_function at USE
     time, as the unlinked lookup did) *)
  fun_values : Value.t option array;
  (* one-entry resolution cache for the dispatch loop, keyed by
     PHYSICAL string equality: a static tail call re-installs the
     linked image's own name into the continuation, so the next step
     hits without hashing.  Physical equality implies name equality,
     and the name fully determines the linked index, so external
     continuation rewrites (rollback, migration resume) simply miss
     into the hashtable. *)
  mutable last_name : string;
  mutable last_idx : int;
  (* emulated instructions retired (both modes) — the V1 MIPS meter *)
  mutable instrs : int;
}

let create ?(mode = Compiled) ?linked ?compiled image proc =
  if not (String.equal image.Masm.im_arch proc.Process.arch.Arch.name) then
    raise
      (Emulator_error
         (Printf.sprintf "image compiled for %s, process runs on %s"
            image.Masm.im_arch proc.Process.arch.Arch.name));
  (* a supplied compiled image wins (its embedded linked image is the
     one its closures index into); otherwise compile on demand exactly
     when the mode needs it *)
  let compiled =
    match compiled, mode with
    | (Some _ as c), _ -> c
    | None, Compiled ->
      let linked = match linked with Some l -> l | None -> Link.link image in
      Some (Compile.compile linked)
    | None, (Fast | Baseline) -> None
  in
  let linked =
    match compiled, linked with
    | Some c, _ -> c.Compile.c_linked
    | None, Some l -> l
    | None, None -> Link.link image
  in
  let fun_values =
    Array.map
      (fun (fn : Link.lfn) ->
        match
          Function_table.index_opt proc.Process.ftable fn.Link.l_name
        with
        | Some i -> Some (Value.Vfun i)
        | None -> None)
      linked.Link.l_fns
  in
  let frame =
    {
      regs = Array.make proc.Process.arch.Arch.registers Value.Vunit;
      spills = Array.make (max 1 linked.Link.l_max_spills) Value.Vunit;
    }
  in
  let tmp_slots =
    match compiled with Some c -> c.Compile.c_tmps | None -> 1
  in
  {
    image;
    linked;
    compiled;
    (* the compiled state shares the frame's arrays: modes never mix
       within one emulator, and only Baseline re-allocates spills *)
    cstate =
      {
        Compile.regs = frame.regs;
        spills = frame.spills;
        itmps = Array.make tmp_slots 0;
        ftmps = Array.make tmp_slots 0.0;
        proc;
        heap = proc.Process.heap;
        fun_values;
        extern = Extern.base;
        acc = 0;
        nins = 0;
        pc = 0;
      };
    proc;
    frame;
    mode;
    fun_values;
    last_name = "";
    last_idx = -1;
    instrs = 0;
  }

let instructions t = t.instrs

(* ------------------------------------------------------------------ *)
(* Baseline mode: the pre-optimization loop                            *)
(* ------------------------------------------------------------------ *)

let get_slot t = function
  | Masm.Reg r -> t.frame.regs.(r)
  | Masm.Spill s ->
    Process.charge t.proc Arch.Mem;
    t.frame.spills.(s)

let set_slot t slot v =
  match slot with
  | Masm.Reg r -> t.frame.regs.(r) <- v
  | Masm.Spill s ->
    Process.charge t.proc Arch.Mem;
    t.frame.spills.(s) <- v

let imm_value t = function
  | Masm.Iunit -> Value.Vunit
  | Masm.Iint n -> Value.Vint n
  | Masm.Ifloat f -> Value.Vfloat f
  | Masm.Ibool b -> Value.Vbool b
  | Masm.Ienum (c, v) -> Value.Venum (c, v)
  | Masm.Ifun f -> Process.fun_value t.proc f
  | Masm.Inil -> Interp.nil_value

let operand t = function
  | Masm.Slot s -> get_slot t s
  | Masm.Imm i -> imm_value t i

(* Install a continuation's arguments into a fresh frame for [fname]. *)
let enter_function t fname args =
  let fn =
    match Masm.fn t.image fname with
    | Some fn -> fn
    | None -> raise (Emulator_error ("no compiled code for " ^ fname))
  in
  (* single-pass arity comparison: walk both lists together instead of
     materialising two lengths *)
  let rec same_length = function
    | [], [] -> true
    | _ :: ps, _ :: xs -> same_length (ps, xs)
    | [], _ :: _ | _ :: _, [] -> false
  in
  if not (same_length (fn.Masm.fn_params, args)) then
    raise
      (Emulator_error (Printf.sprintf "arity mismatch calling %s" fname));
  t.frame.spills <- Array.make (max 1 fn.Masm.fn_spills) Value.Vunit;
  Array.fill t.frame.regs 0 (Array.length t.frame.regs) Value.Vunit;
  List.iter2 (fun slot v -> set_slot t slot v) fn.Masm.fn_params args;
  fn

(* Execute one basic block against the unlinked image (mirrors
   Interp.step).  [nins] counts retired instructions for the meter. *)
let exec_baseline t extern nins =
  let proc = t.proc in
  let heap = proc.Process.heap in
  let fname, args = proc.Process.cont in
  let fn = enter_function t fname args in
  Process.charge proc Arch.Call_ret;
  let code = fn.Masm.fn_code in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= Array.length code then
      raise (Emulator_error "program counter out of range");
    let i = code.(!pc) in
    incr pc;
    incr nins;
    match i with
    | Masm.Mov (d, a) ->
      Process.charge proc Arch.Alu;
      set_slot t d (operand t a)
    | Masm.Cast (d, ty, a) ->
      Process.charge proc Arch.Alu;
      set_slot t d (Interp.cast_check ty (operand t a))
    | Masm.Unop (o, d, a) ->
      Process.charge proc Arch.Alu;
      set_slot t d (Interp.eval_unop o (operand t a))
    | Masm.Binop (o, d, a, b) ->
      Process.charge proc Arch.Alu;
      set_slot t d (Interp.eval_binop o (operand t a) (operand t b))
    | Masm.Alloc_tuple (d, fields) ->
      Process.charge proc Arch.Trap;
      let idx = Heap.alloc_tuple heap (List.map (operand t) fields) in
      set_slot t d (Value.Vptr (idx, 0))
    | Masm.Alloc_array (d, n, init) ->
      Process.charge proc Arch.Trap;
      let size = Interp.as_int (operand t n) in
      if size < 0 then raise (Interp.Trap "negative array size");
      let idx =
        Heap.alloc heap ~tag:Heap.Array ~size ~init:(operand t init)
      in
      set_slot t d (Value.Vptr (idx, 0))
    | Masm.Alloc_string (d, s) ->
      Process.charge proc Arch.Trap;
      set_slot t d (Value.Vptr (Heap.alloc_raw heap s, 0))
    | Masm.Load (d, p, dyn, k) ->
      Process.charge proc Arch.Mem;
      let idx, off = Interp.as_ptr (operand t p) in
      let dyn = Interp.as_int (operand t dyn) in
      set_slot t d (Heap.read heap idx (off + dyn + k))
    | Masm.Store (p, dyn, k, v) ->
      Process.charge proc Arch.Mem;
      let idx, off = Interp.as_ptr (operand t p) in
      let dyn = Interp.as_int (operand t dyn) in
      Heap.write heap idx (off + dyn + k) (operand t v)
    | Masm.Ext (d, name, args) ->
      Process.charge proc Arch.Trap;
      set_slot t d (extern proc name (List.map (operand t) args))
    | Masm.Jmp target ->
      Process.charge proc Arch.Branch;
      pc := target
    | Masm.Jz (c, target) ->
      Process.charge proc Arch.Branch;
      if not (Interp.as_bool (operand t c)) then pc := target
    | Masm.Switch (v, cases, default) ->
      Process.charge proc Arch.Branch;
      let n =
        match operand t v with
        | Value.Vint n | Value.Venum (_, n) -> n
        | v ->
          raise (Interp.Trap ("switch on non-integer " ^ Value.to_string v))
      in
      pc :=
        (match List.assoc_opt n cases with
        | Some target -> target
        | None -> default)
    | Masm.Tail_call (f, args) ->
      Process.charge proc Arch.Call_ret;
      let name = Process.fun_name proc (operand t f) in
      proc.Process.cont <- name, List.map (operand t) args;
      running := false
    | Masm.Exit v ->
      Process.charge proc Arch.Call_ret;
      proc.Process.status <- Process.Exited (Interp.as_int (operand t v));
      running := false
    | Masm.Migrate (label, dst, f, args) ->
      Process.do_migrate proc ~label
        ~target:(Interp.target_string proc (operand t dst))
        ~entry:(Process.fun_name proc (operand t f))
        ~args:(List.map (operand t) args);
      running := false
    | Masm.Speculate (f, args) ->
      Process.do_speculate proc
        ~entry:(Process.fun_name proc (operand t f))
        ~args:(List.map (operand t) args);
      running := false
    | Masm.Commit (l, f, args) ->
      Process.do_commit proc
        ~level:(Interp.as_int (operand t l))
        ~entry:(Process.fun_name proc (operand t f))
        ~args:(List.map (operand t) args);
      running := false
    | Masm.Rollback (l, c) ->
      Process.do_rollback proc
        ~level:(Interp.as_int (operand t l))
        ~code:(Interp.as_int (operand t c));
      running := false
  done

(* ------------------------------------------------------------------ *)
(* Fast mode: the pre-resolved loop                                    *)
(* ------------------------------------------------------------------ *)

(* Resolve a continuation name to its linked function.  The hot case —
   a static tail call that installed the image's own (physically
   shared) name — is one pointer comparison. *)
let resolve_idx t fname =
  if fname == t.last_name && t.last_idx >= 0 then t.last_idx
  else
    match Hashtbl.find_opt t.linked.Link.l_index fname with
    | Some i ->
      t.last_name <- fname;
      t.last_idx <- i;
      i
    | None -> raise (Emulator_error ("no compiled code for " ^ fname))

let resolve t fname = t.linked.Link.l_fns.(resolve_idx t fname)

(* Fetch a resolved operand; the spill cost is in the static cost
   table, so this is charge-free. *)
let rop_value t regs spills = function
  | Link.Rreg r -> (regs : Value.t array).(r)
  | Link.Rspill s -> (spills : Value.t array).(s)
  | Link.Rval v -> v
  | Link.Rfun i -> (
    match t.fun_values.(i) with
    | Some v -> v
    | None ->
      (* not in the process's function table: raise the same
         Invalid_function the per-use lookup raised *)
      Process.fun_value t.proc t.linked.Link.l_fns.(i).Link.l_name)
  | Link.Rfunname name -> Process.fun_value t.proc name

(* Values of an operand array as a list (continuation arguments, extern
   arguments, tuple fields): one result list, no intermediate. *)
let rop_values t regs spills (a : Link.rop array) =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (rop_value t regs spills a.(i) :: acc)
  in
  go (Array.length a - 1) []

let flush proc acc =
  if !acc <> 0 then begin
    Process.charge_cycles proc !acc;
    acc := 0
  end

(* Execute one basic block against the linked image.  [acc] holds the
   pending static cycle charges; the caller flushes it on ANY exit. *)
let exec_fast t extern acc nins =
  let proc = t.proc in
  let heap = proc.Process.heap in
  let fname, args = proc.Process.cont in
  let fn = resolve t fname in
  let params = fn.Link.l_params in
  let nparams = Array.length params in
  (* single-pass arity check against the parameter array *)
  let rec count_is l n =
    match l with
    | [] -> n = 0
    | _ :: rest -> n > 0 && count_is rest (n - 1)
  in
  if not (count_is args nparams) then
    raise (Emulator_error (Printf.sprintf "arity mismatch calling %s" fname));
  let regs = t.frame.regs and spills = t.frame.spills in
  (* clear only the slots this function can read *)
  if fn.Link.l_regs_used > 0 then Array.fill regs 0 fn.Link.l_regs_used Value.Vunit;
  if fn.Link.l_spills > 0 then Array.fill spills 0 fn.Link.l_spills Value.Vunit;
  (* install parameters (spill traffic pre-folded into l_entry_cost) *)
  let rec install i = function
    | [] -> ()
    | v :: rest ->
      (match params.(i) with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v);
      install (i + 1) rest
  in
  install 0 args;
  acc := !acc + fn.Link.l_entry_cost;
  let code = fn.Link.l_code and cost = fn.Link.l_cost in
  let len = Array.length code in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let p = !pc in
    if p < 0 || p >= len then
      raise (Emulator_error "program counter out of range");
    pc := p + 1;
    incr nins;
    acc := !acc + cost.(p);
    match code.(p) with
    | Link.Lmov (d, a) -> (
      let v = rop_value t regs spills a in
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Lbinop (o, d, a, b) -> (
      let v =
        Interp.eval_binop o
          (rop_value t regs spills a)
          (rop_value t regs spills b)
      in
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Lunop (o, d, a) -> (
      let v = Interp.eval_unop o (rop_value t regs spills a) in
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Lcast (d, ty, a) -> (
      let v = Interp.cast_check ty (rop_value t regs spills a) in
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Ljz (c, target) ->
      if not (Interp.as_bool (rop_value t regs spills c)) then pc := target
    | Link.Ljmp target -> pc := target
    | Link.Lswitch (v, keys, targets, default) ->
      let n =
        match rop_value t regs spills v with
        | Value.Vint n | Value.Venum (_, n) -> n
        | v ->
          raise (Interp.Trap ("switch on non-integer " ^ Value.to_string v))
      in
      (* binary search over the sorted case keys *)
      let lo = ref 0 and hi = ref (Array.length keys - 1) in
      let target = ref default in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let k = Array.unsafe_get keys mid in
        if k = n then begin
          target := Array.unsafe_get targets mid;
          lo := !hi + 1
        end
        else if k < n then lo := mid + 1
        else hi := mid - 1
      done;
      pc := !target
    | Link.Lload (d, p, dyn, k) -> (
      let idx, off = Interp.as_ptr (rop_value t regs spills p) in
      let dyn = Interp.as_int (rop_value t regs spills dyn) in
      let v = Heap.read heap idx (off + dyn + k) in
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Lstore (p, dyn, k, v) ->
      let idx, off = Interp.as_ptr (rop_value t regs spills p) in
      let dyn = Interp.as_int (rop_value t regs spills dyn) in
      Heap.write heap idx (off + dyn + k) (rop_value t regs spills v)
    | Link.Lalloc_tuple (d, fields) -> (
      let idx = Heap.alloc_tuple heap (rop_values t regs spills fields) in
      match d with
      | Masm.Reg r -> regs.(r) <- Value.Vptr (idx, 0)
      | Masm.Spill s -> spills.(s) <- Value.Vptr (idx, 0))
    | Link.Lalloc_array (d, n, init) -> (
      let size = Interp.as_int (rop_value t regs spills n) in
      if size < 0 then raise (Interp.Trap "negative array size");
      let idx =
        Heap.alloc heap ~tag:Heap.Array ~size
          ~init:(rop_value t regs spills init)
      in
      match d with
      | Masm.Reg r -> regs.(r) <- Value.Vptr (idx, 0)
      | Masm.Spill s -> spills.(s) <- Value.Vptr (idx, 0))
    | Link.Lalloc_string (d, s) -> (
      let idx = Heap.alloc_raw heap s in
      match d with
      | Masm.Reg r -> regs.(r) <- Value.Vptr (idx, 0)
      | Masm.Spill s -> spills.(s) <- Value.Vptr (idx, 0))
    | Link.Lext (d, name, args, post) -> (
      let args = rop_values t regs spills args in
      (* the extern observes proc.cycles (simulated time, message
         stamps): everything charged so far must be visible *)
      flush proc acc;
      let v = extern proc name args in
      acc := !acc + post;
      match d with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v)
    | Link.Ltail (f, args) ->
      let callee = rop_value t regs spills f in
      let args = rop_values t regs spills args in
      let name = Process.fun_name proc callee in
      proc.Process.cont <- name, args;
      running := false
    | Link.Lexit v ->
      proc.Process.status <-
        Process.Exited (Interp.as_int (rop_value t regs spills v));
      running := false
    | Link.Lmigrate (label, dst, f, args) ->
      let target = Interp.target_string proc (rop_value t regs spills dst) in
      let entry = Process.fun_name proc (rop_value t regs spills f) in
      let args = rop_values t regs spills args in
      flush proc acc;
      Process.do_migrate proc ~label ~target ~entry ~args;
      running := false
    | Link.Lspeculate (f, args) ->
      let entry = Process.fun_name proc (rop_value t regs spills f) in
      let args = rop_values t regs spills args in
      flush proc acc;
      Process.do_speculate proc ~entry ~args;
      running := false
    | Link.Lcommit (l, f, args) ->
      let level = Interp.as_int (rop_value t regs spills l) in
      let entry = Process.fun_name proc (rop_value t regs spills f) in
      let args = rop_values t regs spills args in
      flush proc acc;
      Process.do_commit proc ~level ~entry ~args;
      running := false
    | Link.Lrollback (l, c) ->
      let level = Interp.as_int (rop_value t regs spills l) in
      let code = Interp.as_int (rop_value t regs spills c) in
      flush proc acc;
      Process.do_rollback proc ~level ~code;
      running := false
  done

(* ------------------------------------------------------------------ *)
(* Compiled mode: the closure-threaded loop                            *)
(* ------------------------------------------------------------------ *)

(* Execute one basic block of the closure-compiled image.  Block entry
   (resolve, arity check, frame clear, parameter install, entry cost)
   mirrors [exec_fast]; the instruction loop is pure dispatch.  The
   [unsafe_get] is safe by construction: Compile only ever emits next
   pcs inside [0, len] (out-of-range static targets are remapped to the
   raising sentinel at [len]), and negative returns exit the loop. *)
let exec_compiled t (cimg : Compile.image) extern acc nins =
  let proc = t.proc in
  let fname, args = proc.Process.cont in
  let idx = resolve_idx t fname in
  let fn = t.linked.Link.l_fns.(idx) in
  let params = fn.Link.l_params in
  let nparams = Array.length params in
  let rec count_is l n =
    match l with
    | [] -> n = 0
    | _ :: rest -> n > 0 && count_is rest (n - 1)
  in
  if not (count_is args nparams) then
    raise (Emulator_error (Printf.sprintf "arity mismatch calling %s" fname));
  let st = t.cstate in
  let regs = st.Compile.regs and spills = st.Compile.spills in
  let cfn = cimg.Compile.c_fns.(idx) in
  (* definite-assignment analysis shrank the Fast-mode window fills to
     the slots that may actually be read before being written *)
  let clr = cfn.Compile.cf_clear_regs in
  for i = 0 to Array.length clr - 1 do
    regs.(Array.unsafe_get clr i) <- Value.Vunit
  done;
  let cls = cfn.Compile.cf_clear_spills in
  for i = 0 to Array.length cls - 1 do
    spills.(Array.unsafe_get cls i) <- Value.Vunit
  done;
  let rec install i = function
    | [] -> ()
    | v :: rest ->
      (match params.(i) with
      | Masm.Reg r -> regs.(r) <- v
      | Masm.Spill s -> spills.(s) <- v);
      install (i + 1) rest
  in
  install 0 args;
  let code = cfn.Compile.cf_ops in
  if st.Compile.extern != extern then st.Compile.extern <- extern;
  st.Compile.acc <- fn.Link.l_entry_cost;
  st.Compile.nins <- 0;
  st.Compile.pc <- 0;
  (* copy the counters back into the caller's refs on EVERY exit so the
     step handler's flush and meter see the exact partial-block state *)
  match
    while st.Compile.pc >= 0 do
      st.Compile.pc <- (Array.unsafe_get code st.Compile.pc) st
    done
  with
  | () ->
    acc := !acc + st.Compile.acc;
    nins := !nins + st.Compile.nins
  | exception e ->
    acc := !acc + st.Compile.acc;
    nins := !nins + st.Compile.nins;
    raise e

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

(* Execute one basic block (mirrors Interp.step). *)
let step ?(extern = Extern.base) t =
  let proc = t.proc in
  match proc.Process.status with
  | Process.Exited _ | Process.Trapped _ | Process.Migrating _ -> ()
  | Process.Running -> (
    let acc = ref 0 in
    let nins = ref 0 in
    match
      match t.mode with
      | Compiled -> (
        match t.compiled with
        | Some c -> exec_compiled t c extern acc nins
        | None -> assert false (* create establishes the invariant *))
      | Fast -> exec_fast t extern acc nins
      | Baseline -> exec_baseline t extern nins
    with
    | () ->
      flush proc acc;
      t.instrs <- t.instrs + !nins;
      proc.Process.steps <- proc.Process.steps + 1;
      Process.maybe_collect proc
    | exception e -> (
      (* account the partial block: cycles accrued before the fault are
         real simulated work, and the meter counts retired attempts *)
      flush proc acc;
      t.instrs <- t.instrs + !nins;
      match e with
      | Interp.Trap msg -> proc.Process.status <- Process.Trapped msg
      | Emulator_error msg ->
        proc.Process.status <- Process.Trapped ("emulator: " ^ msg)
      | Heap.Runtime_error msg ->
        proc.Process.status <- Process.Trapped ("heap: " ^ msg)
      | Pointer_table.Invalid_pointer msg ->
        proc.Process.status <- Process.Trapped ("pointer: " ^ msg)
      | Function_table.Invalid_function msg ->
        proc.Process.status <- Process.Trapped ("function: " ^ msg)
      | Spec.Engine.Invalid_level msg ->
        proc.Process.status <- Process.Trapped ("speculation: " ^ msg)
      | Process.Extern_failure msg ->
        proc.Process.status <- Process.Trapped ("extern: " ^ msg)
      | Process.Process_error msg -> proc.Process.status <- Process.Trapped msg
      | e -> raise e))

let run ?(extern = Extern.base) ?(max_steps = 10_000_000) t =
  let budget = ref max_steps in
  while
    (match t.proc.Process.status with
     | Process.Running -> true
     | Process.Exited _ | Process.Trapped _ | Process.Migrating _ -> false)
    && !budget > 0
  do
    step ~extern t;
    decr budget
  done;
  t.proc.Process.status

(* The cost of a context switch on this runtime: save and restore one full
   register file plus scheduler bookkeeping.  Used by experiment E5. *)
let context_switch_cycles (arch : Arch.t) =
  (* save + restore every register (memory traffic) plus a trap in and out *)
  (2 * arch.Arch.registers * arch.Arch.cycles Arch.Mem)
  + (2 * arch.Arch.cycles Arch.Trap)
