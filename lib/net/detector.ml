(* Heartbeat failure detection.

   Every alive node's daemon emits a small heartbeat to every other node
   once per [hb_interval_s] of its LOCAL clock.  The cluster routes each
   beat through the fault layer (partitions and loss drop beats — they
   are never retransmitted, silence being exactly the signal) and
   charges nominal network time plus jitter before it becomes visible to
   the observer.  An observer only "sees" an arrival once its own local
   clock has passed the arrival time, so a lagging observer cannot read
   the future.

   A node is SUSPECTED when every alive observer has heard nothing from
   it for longer than [suspect_timeout_s] of the observer's local clock.
   Requiring unanimous silence means a partial partition (some observers
   still reachable) does not trigger suspicion, while a crash, a full
   partition, or a long stall does.  The detector has no access to
   ground truth: a stalled or partitioned node is indistinguishable from
   a dead one, so false suspicion is possible by design — the epoch
   fencing layer (see Cluster) makes acting on a false suspicion safe.
   Local clocks are only loosely synchronized, so heavy skew between a
   busy observer and an idle subject is a further honest source of false
   suspicion.

   Ground truth ([alive]) is used for exactly two observability
   purposes: selecting which observers still report (a dead daemon's
   reports simply stop), and classifying a fresh suspicion as true or
   false for the [detector.false_suspicions] counter.  Detection
   decisions themselves never consult it. *)

type config = {
  hb_interval_s : float;  (* beat period, per-node local clock *)
  suspect_timeout_s : float;  (* unanimous-silence threshold *)
  hb_bytes : int;  (* on-the-wire beat size, for transfer accounting *)
}

let default =
  { hb_interval_s = 0.005; suspect_timeout_s = 0.025; hb_bytes = 8 }

type t = {
  cfg : config;
  nodes : int;
  hb_next : float array; (* next emission time, per sender *)
  last_heard : float array array; (* last_heard.(observer).(subject) *)
  pending : float list ref array array;
      (* arrivals not yet promoted: pending.(observer).(subject) holds
         arrival times still in the observer's local future *)
  flagged : bool array; (* current suspicion state, per subject *)
  c_beats : Obs.Metrics.counter;
  c_suspicions : Obs.Metrics.counter;
  c_false : Obs.Metrics.counter;
}

let create ?metrics ~nodes cfg =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let c_beats = Obs.Metrics.counter metrics "detector.heartbeats" in
  let c_suspicions = Obs.Metrics.counter metrics "detector.suspicions" in
  let c_false = Obs.Metrics.counter metrics "detector.false_suspicions" in
  {
    cfg;
    nodes;
    hb_next = Array.make nodes cfg.hb_interval_s;
    last_heard = Array.make_matrix nodes nodes 0.0;
    pending = Array.init nodes (fun _ -> Array.init nodes (fun _ -> ref []));
    flagged = Array.make nodes false;
    c_beats;
    c_suspicions;
    c_false;
  }

let config t = t.cfg

(* Emission times due on [node] now that its local clock reached [now];
   each is returned exactly once. *)
let due t ~node ~now =
  let rec take acc =
    if t.hb_next.(node) <= now then begin
      let at = t.hb_next.(node) in
      t.hb_next.(node) <- at +. t.cfg.hb_interval_s;
      Obs.Metrics.incr t.c_beats;
      take (at :: acc)
    end
    else List.rev acc
  in
  take []

(* [node] was frozen (stalled) until [at]: the beats its daemon would
   have emitted during the freeze never happen — that silence is what
   observers react to.  The first post-freeze beat goes out promptly. *)
let skip_to t ~node ~at =
  if t.hb_next.(node) < at then t.hb_next.(node) <- at

let record t ~src ~dst ~at =
  if src <> dst && src >= 0 && src < t.nodes && dst >= 0 && dst < t.nodes
  then begin
    let q = t.pending.(dst).(src) in
    q := at :: !q
  end

let promote t ~observer ~clock =
  for subject = 0 to t.nodes - 1 do
    let q = t.pending.(observer).(subject) in
    if !q <> [] then begin
      let visible, future = List.partition (fun at -> at <= clock) !q in
      q := future;
      List.iter
        (fun at ->
          if at > t.last_heard.(observer).(subject) then
            t.last_heard.(observer).(subject) <- at)
        visible
    end
  done

(* Current suspect set.  [clocks] are the nodes' local clocks; [alive]
   is ground truth, consulted only to pick the reporting observer set
   and to classify fresh suspicions for the false-suspicion counter.
   [on_suspect] fires once per fresh suspicion episode (not on every
   poll), letting the caller trace it without flooding. *)
let suspects ?(on_suspect = fun ~subject:_ ~false_positive:_ -> ()) t
    ~clocks ~alive =
  for i = 0 to t.nodes - 1 do
    if alive.(i) then promote t ~observer:i ~clock:clocks.(i)
  done;
  let out = ref [] in
  for j = t.nodes - 1 downto 0 do
    let observers = ref 0 in
    let silent = ref 0 in
    for i = 0 to t.nodes - 1 do
      if i <> j && alive.(i) then begin
        incr observers;
        if clocks.(i) -. t.last_heard.(i).(j) > t.cfg.suspect_timeout_s then
          incr silent
      end
    done;
    let suspected = !observers > 0 && !silent = !observers in
    if suspected && not t.flagged.(j) then begin
      Obs.Metrics.incr t.c_suspicions;
      if alive.(j) then Obs.Metrics.incr t.c_false;
      on_suspect ~subject:j ~false_positive:alive.(j)
    end;
    t.flagged.(j) <- suspected;
    if suspected then out := j :: !out
  done;
  !out
