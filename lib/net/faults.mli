(** Deterministic fault injection for the simulated cluster.

    A {!plan} is a declarative, seeded description of the faults to
    inject into message delivery and node behaviour: per-transmission
    loss (surfaced as link-level retransmission delay), duplication,
    delay jitter, link partitions, transient node stalls and
    crash-at-time events.  A runtime {!t} owns the seeded RNG that turns
    the plan's probabilities into concrete decisions, so the same plan +
    seed always yields the same fault schedule — traces are reproducible
    byte for byte.

    The cluster consults the runtime at five points: when a message is
    enqueued ({!on_message}), when a migration image is pushed across a
    link ({!on_hop}, one call per transmission attempt), when a
    heartbeat is emitted ({!on_heartbeat}), when a checkpoint replica is
    persisted ({!on_store_write}), and at the top of every scheduling
    round ({!take_stall}, {!take_crash}).  Object-store faults
    ({!Net.Cluster.set_object_failure_probability}) draw from the same
    RNG ({!rng}), so they are reproducible under the same seed. *)

type partition = {
  pa : int;  (** node id *)
  pb : int;  (** node id *)
  p_from : float;  (** simulated seconds *)
  p_until : float;  (** [infinity] = never heals *)
}

type stall = {
  s_node : int;
  s_at : float;  (** fires when the node's local clock reaches this *)
  s_for : float;  (** stall duration, simulated seconds *)
}

type crash = { c_node : int; c_at : float }

type plan = {
  f_seed : int;
  f_loss : float;  (** per-transmission loss probability, [0,1) *)
  f_dup : float;  (** per-message duplication probability, [0,1) *)
  f_jitter_s : float;  (** max extra delivery delay, uniform in [0, j] *)
  f_retransmit_s : float;
      (** base retransmission timeout a lost transmission costs; doubled
          on each consecutive loss of the same message *)
  f_partitions : partition list;
  f_stalls : stall list;
  f_crashes : crash list;
  f_crash_in_commit : float;
      (** per-commit-round probability that one participant crashes
          between its prepare-ack and the commit receipt, [0,1) — the
          coordinator must abort the in-doubt transaction *)
  f_store_lost : float;
      (** per-replica-write probability the file silently vanishes, [0,1] *)
  f_store_torn : float;
      (** per-replica-write probability only a prefix persists, [0,1] *)
  f_store_flip : float;
      (** per-replica-write probability one stored byte is corrupted, [0,1] *)
}

val none : plan
(** The empty plan: a cluster built with it behaves exactly like a
    fault-free one (no RNG draws on the message path). *)

val is_none : plan -> bool

val validate : plan -> (plan, string) result
(** Range-check probabilities and times. *)

(** {2 Plan files}

    Line-oriented text, ['#'] comments, blank lines ignored:
    {v
    seed 7
    loss 0.10
    dup 0.05
    jitter 0.0005
    retransmit 0.002
    partition 1 2 from 0.05 until 0.12
    partition 0 3 from 0.2 until forever
    stall 3 at 0.08 for 0.01
    crash 1 at 0.15
    crash_in_commit 0.02
    store_lost 0.05
    store_torn 0.02
    store_flip 0.02
    v} *)

val parse_plan : ?seed:int -> string -> (plan, string) result
(** Parse plan-file CONTENTS (not a path).  [seed] overrides any [seed]
    line in the file ([--seed N] on the CLI).  Every error — malformed
    token, unknown directive, or out-of-range value — is reported as
    ["line N: ..."]. *)

val plan_to_string : plan -> string
(** Render a plan back into the file format ([parse_plan] round-trips). *)

(** {2 Runtime} *)

type t

val create : ?salt:int -> ?metrics:Obs.Metrics.t -> plan -> t
(** [salt] (e.g. the cluster seed) is mixed into the RNG state alongside
    [plan.f_seed], so distinct clusters running the same plan can still
    diverge when asked to.  [metrics] receives the fault counters
    ([faults.retransmits], [faults.msg_dup], [faults.msg_dropped],
    [faults.hop_lost], [faults.hop_dup], [faults.stalls],
    [faults.crashes], [faults.crash_in_commit], [faults.hb_dropped],
    [faults.store_lost], [faults.store_torn], [faults.store_flip]); a
    private registry is used when omitted. *)

val plan : t -> plan

val rng : t -> Random.State.t
(** The seeded fault RNG — shared with the cluster's storage-fault
    draws so every probabilistic decision is reproducible. *)

type delivery = {
  d_dropped : bool;
      (** undeliverable: the link is partitioned and never heals, or the
          retransmission budget was exhausted *)
  d_delay_s : float;  (** extra delay beyond the nominal network time *)
  d_duplicate : bool;  (** enqueue a second copy of the message *)
  d_retransmits : int;  (** lost transmissions before the one that got through *)
}

val on_message : t -> now:float -> src:int -> dst:int -> delivery
(** Fault decision for one small message from node [src] to node [dst]
    sent at simulated time [now].  Loss is modelled as link-level
    retransmission (the message arrives late, not never), so polling
    receivers cannot wedge; a partition window delays delivery to its
    heal time.  Loopback ([src = dst]) and unknown destinations are
    never faulted. *)

val on_hop : t -> now:float -> src:int -> dst:int -> [ `Deliver | `Lost | `Partitioned ]
(** Fault decision for ONE transmission attempt of a migration image.
    Unlike {!on_message}, a lost hop is reported to the caller — the
    migration protocol owns the retry/backoff policy. *)

val dup_hop : t -> bool
(** Should a delivered migration image also arrive a second time?
    (Exercises the receiver's idempotent-receive path.) *)

val crash_in_commit : t -> bool
(** Should one participant of the commit round in flight crash between
    its prepare-ack and the commit receipt?  One draw per protocol
    round, made after all acks are in; the coordinator treats the
    victim as in-doubt and must abort. *)

val on_heartbeat :
  t -> now:float -> src:int -> dst:int -> [ `Deliver of float | `Drop ]
(** Fault decision for one heartbeat emitted by node [src] towards
    observer [dst] at [src]'s local time [now].  Heartbeats are
    fire-and-forget: loss and partitions drop the beat outright (no
    retransmission — silence is the signal the failure detector reads);
    [`Deliver d] adds [d] seconds of jitter on top of the nominal
    network time.  Fault-free plans consume no randomness. *)

val on_store_write :
  t -> [ `Ok | `Lost | `Torn of float | `Flip of float ]
(** Fate of one checkpoint-replica write.  [`Lost]: the write is
    acknowledged but nothing persists.  [`Torn frac]: only the first
    [frac] of the bytes persist.  [`Flip frac]: the data persists with
    one byte corrupted at relative position [frac].  The stored digest
    always describes the original bytes, so a digest-verified read
    detects torn and flipped replicas.  Plans with no storage-fault
    probabilities consume no randomness. *)

val partitioned : t -> now:float -> a:int -> b:int -> bool

val heal_time : t -> now:float -> a:int -> b:int -> float option
(** Latest [p_until] over the partition windows covering (a,b) at [now];
    [None] when the link is not partitioned or never heals. *)

val take_stall : t -> node:int -> now:float -> float option
(** The duration of a stall scheduled on [node] at or before [now], if
    any; each stall fires exactly once. *)

val take_crash : t -> node:int -> now:float -> bool
(** True when a crash scheduled on [node] is due at [now]; each crash
    fires exactly once. *)
