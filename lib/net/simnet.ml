(* The simulated cluster network.

   Stands in for the paper's testbed interconnect (100 Mbps Ethernet,
   Section 5) with a deterministic cost model: a TCP-like connection setup
   charge, a propagation latency, and a bandwidth term proportional to the
   payload.  The migration experiments (E1a/E1b) report the transfer
   component of migration through this model, so the paper's observed
   fractions (~10 % of FIR migration, ~30 % of binary migration) are a
   function of image size and recompilation cost rather than hard-coded.

   The network also owns the simulated clock.  Time is advanced by the
   cluster scheduler; message deliveries are timestamped against it.

   Traffic accounting lives in an Obs.Metrics registry (counters
   net.bytes_sent / net.messages / net.transfers) instead of ad-hoc
   mutable fields, so the cluster, the CLI and the benches all read it
   through the same interface. *)

type t = {
  mutable now : float; (* simulated seconds *)
  bandwidth_bps : float;
  latency_s : float; (* one-way propagation *)
  connect_s : float; (* connection establishment *)
  metrics : Obs.Metrics.t;
  bytes_sent : Obs.Metrics.counter;
  messages_sent : Obs.Metrics.counter;
  transfers : Obs.Metrics.counter; (* bulk transfers (migrations, ckpts) *)
}

(* Defaults match the paper's testbed scale: 100 Mbps, sub-millisecond
   LAN latency, ~1 ms TCP connection establishment. *)
let create ?(bandwidth_mbps = 100.0) ?(latency_us = 200.0)
    ?(connect_ms = 1.0) () =
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let bytes_sent = Obs.Metrics.counter metrics "net.bytes_sent" in
  let messages_sent = Obs.Metrics.counter metrics "net.messages" in
  let transfers = Obs.Metrics.counter metrics "net.transfers" in
  {
    now = 0.0;
    bandwidth_bps = bandwidth_mbps *. 1e6;
    latency_s = latency_us *. 1e-6;
    connect_s = connect_ms *. 1e-3;
    metrics;
    bytes_sent;
    messages_sent;
    transfers;
  }

let now t = t.now

(* A negative charge is always an upstream accounting bug (a cost model
   returned nonsense or a caller subtracted the wrong way): fail loudly
   instead of silently freezing the clock. *)
let advance t dt =
  if dt < 0.0 then
    invalid_arg (Printf.sprintf "Simnet.advance: negative dt %g" dt);
  t.now <- t.now +. dt

let advance_to t time = if time > t.now then t.now <- time

(* Cost of a bulk transfer (new connection): setup + latency + serialization
   onto the wire. *)
let transfer_seconds t bytes =
  t.connect_s +. t.latency_s +. (float_of_int (8 * bytes) /. t.bandwidth_bps)

(* Cost of a small message on an established channel: latency + wire time. *)
let message_seconds t bytes =
  t.latency_s +. (float_of_int (8 * bytes) /. t.bandwidth_bps)

let record_transfer t bytes =
  Obs.Metrics.incr ~by:bytes t.bytes_sent;
  Obs.Metrics.incr t.transfers

let record_message t bytes =
  Obs.Metrics.incr ~by:bytes t.bytes_sent;
  Obs.Metrics.incr t.messages_sent

(* Thin views over the registry (the historical accessors). *)
let metrics t = t.metrics
let bytes_sent t = Obs.Metrics.count t.bytes_sent
let messages_sent t = Obs.Metrics.count t.messages_sent
let transfers t = Obs.Metrics.count t.transfers
