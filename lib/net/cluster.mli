(** The simulated cluster (paper, Sections 2 and 5).

    Nodes — each with a local clock, an architecture, and a migration
    daemon — host processes, exchange rank-addressed messages, share
    reliable storage, and fail on command.  The cluster implements the
    three migration protocols end-to-end, resurrection from checkpoint
    files, and the distributed speculation-join cascade: a process that
    consumed a speculative message is rolled back when the sender's
    speculation aborts (including the sender dying with its node).

    Scheduling is a conservative discrete-event simulation: each node's
    clock advances with the work its processes do; idle nodes jump to
    their next event; processes sharing a node serialise and pay context
    switches. *)

open Vm

type engine = Interp_engine | Emu_engine of Emulator.t

type entry = {
  proc : Process.t;
  mutable engine : engine;
  mutable node_id : int;
  mailbox : Mpi.mailbox;
  mutable rank : int option;
  mutable epoch : int;
      (** incarnation epoch of the rank this entry was created under; an
          entry whose epoch falls behind the rank's current epoch is a
          zombie and is fenced at every interaction point *)
  mutable start_at : float;  (** not schedulable before this (node) time *)
  mutable parked_on : (int * int) option;
      (** (src rank, tag) of the last unsuccessful poll *)
  mutable baseline : (string * Migrate.Wire.image) option;
      (** ({!Migrate.Wire.image_digest}, image) of this process's most
          recent pack — what its heap dirty set is tracked against, and
          hence the only image a delta may be encoded over.  Rebased at
          EVERY pack (packing clears the dirty set). *)
  bindings : (int, int) Hashtbl.t;
      (** sender-side binding cache: laddr -> last resolved rank.
          Carried across the SENDER's own migrations; left stale by the
          target's moves until a notice or typed error refreshes it *)
  mutable notices : (float * int * int) list;
      (** (due time, laddr, new rank) moved notices owed by forwarders
          this process sent through; consumed at its next svc_send *)
}

type node = {
  node_id : int;
  node_name : string;
  node_arch : Arch.t;
  mutable alive : bool;
  daemon : Migrate.Server.t;
  mutable busy_seconds : float;
  mutable clock : float;  (** local simulated clock (busy + idle) *)
  mutable residents : entry list;
      (** entries registered on this node, newest first; terminated
          entries are purged lazily each round.  Scheduler index only —
          the global entry list remains the source of truth. *)
}

type migration_record = {
  mr_kind : [ `Migrate | `Suspend | `Checkpoint ];
  mr_pid : int;
  mr_bytes : int;
  mr_pack_s : float;
  mr_transfer_s : float;
  mr_compile_s : float;  (** link-only on a recompilation-cache hit *)
  mr_cache_hit : bool;
  mr_delta : bool;
      (** the accepted shipment was a delta (incremental checkpoint
          segment or delta migration hop) *)
  mr_ok : bool;
}

type migration_report = {
  rep_pid : int;  (** successor pid *)
  rep_attempts : int;  (** hop transmissions, >= 1 *)
  rep_retries : int;  (** [rep_attempts - 1] *)
  rep_backoff_s : float;  (** total backoff waited between attempts *)
  rep_elapsed_s : float;
      (** simulated seconds from initiation to resume on the target *)
  rep_bytes : int;
  rep_cache_hit : bool;
  rep_delta : bool;  (** the hop that was accepted shipped as a delta *)
}
(** What a successful [Running]-subject {!move} reports. *)

type migration_error =
  | No_such_process of int
  | Not_running  (** terminated, or already at a migration point *)
  | Target_down
  | Already_there
  | Unreachable of { attempts : int; reason : string }
      (** retry budget exhausted — every transmission was lost or
          partitioned; the process keeps running where it was *)
  | Rejected of string  (** the target daemon refused the image *)
  | Fenced of { rank : int; stale : int; current : int }
      (** the process is a stale incarnation of [rank]: a resurrection
          bumped the rank's epoch to [current] past the process's
          [stale] one, and zombies may not migrate *)
  | Resurrect_failed of string
      (** an [Image]-subject {!move} could not restore the checkpoint:
          destination down, missing or corrupt image, or a wedged
          replicated read.  Carries the storage-level message. *)

val migration_error_to_string : migration_error -> string

(** Typed cluster configuration: the one record that says everything —
    topology, trust, scheduling quantum, seed, cache and trace sizing,
    the migration retry policy and the fault-injection plan. *)
module Config : sig
  type retry = {
    max_attempts : int;  (** total transmissions per migration hop *)
    hop_timeout_s : float;  (** wait before declaring an attempt lost *)
    backoff_base_s : float;
    backoff_factor : float;
        (** sender waits [base * factor^(attempt-1)] between attempts *)
  }

  val default_retry : retry
  (** 5 attempts, 20 ms hop timeout, 2 ms base backoff doubling. *)

  type t = {
    node_count : int;
    arches : Arch.t array;  (** assigned round-robin *)
    trusted : bool;  (** binary fast path for inter-node migration *)
    quantum : int;
    seed : int;
    code_cache : int;
        (** per-node recompilation-cache capacity; [<= 0] disables *)
    net : Simnet.t option;  (** [None] = default Simnet *)
    trace_capacity : int option;  (** event-trace ring bound *)
    retry : retry;
    faults : Faults.plan;
    delta : bool;
        (** ship deltas (and incremental checkpoint segments) when a
            negotiated baseline makes one possible and smaller; [false]
            forces every image on the wire to be full *)
    baseline_cache : int;
        (** per-daemon retained-baseline bound; [<= 0] disables delta
            RECEIVE on every node (senders then always fall back) *)
    detector : Detector.config option;
        (** [Some cfg] runs a heartbeat failure detector over the
            cluster; [None] (default) emits no heartbeats and draws no
            extra randomness, keeping legacy traces byte-identical *)
    replication : int;
        (** checkpoint replication factor: [k >= 1] places every stored
            file on [k] distinct node-local stores that die with their
            node (clamped to [node_count]); [<= 0] (default) keeps the
            legacy indestructible shared store *)
    legacy_scan_sched : bool;
        (** [true] schedules by scanning the global entry list every
            round (the pre-index behaviour, kept for equivalence tests
            and as the S1 baseline); [false] (default) uses the per-node
            resident lists and indexed mailboxes *)
    forward_ttl_s : float;
        (** how long a vacated rank keeps forwarding after a registered
            service migrates away (default 0.25 simulated seconds); a
            send arriving later gets the typed {!msg_moved} error *)
    balance : Balance.Config.t;
        (** the load-aware placement policy engine.  When
            [balance.enabled], the scheduler samples per-node load
            gauges every [balance.period_s] and migrates hot registered
            services through {!move} with reason [Policy]; disabled by
            default (no gauges, no extra trace events, legacy traces
            byte-identical) *)
  }

  val default : t
  (** 4 nodes, cisc32, untrusted, quantum 64, seed 1, 16-entry caches,
      default net and trace, {!default_retry}, {!Faults.none}, delta
      shipping on with 4 retained baselines per daemon, no failure
      detector, unreplicated shared storage, placement policy off. *)
end

(** The unified migration API.  Every initiator — the explicit CLI/test
    migration, the resilient recovery path, resurrection, serve
    re-homing, and the placement policy engine — builds one
    {!Move.request} and calls {!move}.  The protocol invariants hold
    for every subject and reason, and are stated here once:

    - {b Fencing}: a stale incarnation (its rank's epoch moved past it)
      never moves; a [Running] move of a zombie fails with [Fenced],
      and an [Image] move under [?rank] bumps the rank's epoch FIRST so
      the old holder is fenced before the successor exists.
    - {b Forwarder install + drain}: moving a REGISTERED service
      re-homes it under a fresh rank; the laddr rebinds, the vacated
      rank forwards for [Config.forward_ttl_s] (owing [Recipient_moved]
      notices to senders), and messages already queued at the old rank
      are relayed to the successor inside the move commit — no
      initiator can strand stamped messages.  An [Image] move under
      [?rank] inherits the rank's mailbox outright, so queued traffic
      survives resurrection too.
    - {b Baseline reuse}: a [Running] subject ships as a delta over its
      previous pack when the destination still holds that baseline
      (transparent full-image fallback otherwise); the successor's
      baseline is rebased on what was shipped.
    - {b Reason is accounting only}: it selects a [move.*] counter and
      nothing else — traces are byte-identical across reasons, which
      the equivalence suite asserts. *)
module Move : sig
  type reason = Explicit | Policy | Resurrect | Rehome

  type subject =
    | Running of int
        (** a live process, by pid: packed between basic blocks,
            shipped under the retry policy, resumed on the target *)
    | Image of { path : string; rank : int option; seed : int }
        (** a checkpoint image on shared storage (the resurrection
            path); [rank] assigns the successor the rank's mailbox and
            bumps its epoch *)

  type request = {
    mv_subject : subject;
    mv_dest : int;  (** destination node id *)
    mv_reason : reason;
    mv_retry : Config.retry option;  (** [None] = the cluster's policy *)
  }

  type outcome = {
    mv_pid : int;  (** the (successor) pid now running at [mv_dest] *)
    mv_report : migration_report option;  (** [None] for [Image] *)
  }

  val request :
    ?retry:Config.retry -> reason:reason -> subject -> dest:int -> request
end

type t

val msg_none : int
val msg_roll : int

val msg_moved : int
(** svc_send's typed "recipient moved" code (-3): the cached binding
    led to a vacated rank whose forwarder TTL passed.  Nothing was
    sent; the caller's cache entry is dropped so a retry re-resolves
    through the registry.  Never a silent drop. *)

val create_cfg : Config.t -> t
(** Build a cluster of [node_count] nodes named [node0..] from a typed
    configuration. *)

val node : t -> int -> node
val node_count : t -> int
val node_by_name : t -> string -> node option
val entry_of_pid : t -> int -> entry option
val entry_of_rank : t -> int -> entry option
val alive_count : t -> int

val now : t -> float
(** Cluster-wide time: the farthest node clock. *)

val extern_signatures : Fir.Typecheck.extern_lookup
(** The cluster's extern set (messaging, object store) on top of the
    base runtime's — what cluster programs are strictly typechecked
    against, including by the migration daemons. *)

(** {2 The fault-injected object store (Figure 1)} *)

val set_object : t -> int -> string -> unit
val get_object : t -> int -> string option

val set_object_failure_probability : t -> float -> unit
(** Storage-fault probability for [obj_read]/[obj_write].  Draws come
    from the seeded fault-plan RNG (never the global [Random] state), so
    runs are reproducible under [Config.seed]. *)

(** {2 Placement and execution} *)

val spawn :
  ?rank:int -> ?engine:[ `Interp | `Masm ] -> ?seed:int ->
  t -> node_id:int -> Fir.Ast.program -> int
(** Compile (for [`Masm]) and place a process; returns its pid. *)

val run : ?max_rounds:int -> ?stop:(unit -> bool) -> t -> int
(** Schedule until quiescent, stopped, or out of rounds; returns the
    number of rounds executed. *)

(** {2 The process registry (location-transparent addressing)} *)

val register_service : t -> pid:int -> int
(** Allocate a ranked process a stable logical address (sequential
    from 1).  From here on any {!move} (or a process-initiated migrate)
    RE-HOMES it: the successor gets a fresh rank, the laddr rebinds,
    the vacated rank forwards for {!Config.t.forward_ttl_s} with
    [Recipient_moved] notices to senders, and in-flight messages are
    relayed — traffic addressed with [svc_send] keeps flowing while the
    process moves.  Registration also makes the process eligible for
    the placement policy engine ({!Config.t.balance}). *)

val registry : t -> Registry.t
(** The registry itself (bindings, forwarders, counters). *)

val service_rank : t -> laddr:int -> int option
(** Authoritative current rank of a logical address. *)

(** Deterministic table re-key (exposed for the regression suite):
    entries stably sorted by original key, colliding remapped keys
    merged in that canonical order — never in [Hashtbl.fold] order. *)
module Rekey : sig
  val merge : remap:('k -> 'j) -> ('k * 'v list) list -> ('j * 'v list) list
end

val advance_clocks : t -> float -> unit
(** Advance every alive node's local clock by the given seconds even
    with nothing runnable, pumping heartbeat traffic: lets a resilience
    driver time out suspicions when the system is quiescent (every
    survivor parked on a rank whose holder went silent). *)

(** {2 Failure and recovery} *)

val fail_node : t -> int -> unit
(** Kill a node: resident processes die, their speculations' dependents
    are rolled back, and survivors polling the dead ranks observe
    MSG_ROLL. *)

val resurrect :
  ?rank:int -> ?seed:int -> t -> node_id:int -> path:string ->
  (int, string) result
(** Convenience wrapper: {!move} with an [Image] subject and reason
    [Resurrect], flattening the error to its historical string form.
    Executes a checkpoint image from shared storage on a live node (the
    resurrection daemon of Figure 2); same-architecture resurrections
    take the binary fast path.  Returns the new pid.

    The epoch-bump-first and mailbox-inheritance guarantees are the
    [Image]-subject invariants stated on {!module:Move}.

    A checkpoint taken mid-speculation restores the process's LOCAL
    speculation state; cross-process dependency edges are not restored
    across death (live migration re-keys them through the move commit).
    The paper's protocol commits before every checkpoint, so its
    canonical application never checkpoints inside a speculation that
    other processes depend on. *)

val abort_speculation : ?code:int -> t -> pid:int -> level:int -> unit
(** Host-initiated rollback; the dependency cascade follows. *)

val detection_enabled : t -> bool
(** A heartbeat failure detector was configured. *)

val detector_config : t -> Detector.config option

val suspected_nodes : t -> int list
(** Nodes the failure detector currently suspects (ascending), judged
    ONLY from heartbeat silence on the observers' local clocks — never
    from ground-truth aliveness.  A stalled or partitioned node can be
    falsely suspected; epoch fencing makes resurrecting over it safe.
    Empty when no detector is configured. *)

val rank_epoch : t -> int -> int
(** The rank's current incarnation epoch (0 until first resurrection). *)

val move : t -> Move.request -> (Move.outcome, migration_error) result
(** The one migration entry point (see {!module:Move} for the
    invariants).  A [Running] subject is packed mid-execution, shipped
    under the request's retry policy (per-hop timeout, bounded retry,
    exponential backoff in simulated time) and delivered idempotently
    to the target's daemon; the process cannot observe the move, and on
    any failure — including an exhausted retry budget — it keeps
    running where it was.  An [Image] subject is read (and its delta
    chain replayed) from shared storage and resumed on the destination;
    failures surface as [Resurrect_failed]. *)

(** {2 Introspection} *)

val statuses : t -> (int * int option * int * Process.status) list
(** (pid, rank, node, status) for every process ever placed. *)

val events : t -> string list
(** Deprecated view: the typed trace ({!trace}) rendered as the
    historical stringly log, simulated-time order.  Bounded by the trace
    ring's capacity; read {!Obs.Trace.timeline} directly instead. *)

val migrations : t -> migration_record list
val storage : t -> Storage.t
val net : t -> Simnet.t

val fault_plan : t -> Faults.plan
(** The fault-injection plan the cluster was built with
    ({!Faults.none} when faults are off). *)

val trace : t -> Obs.Trace.t
(** The typed event trace: migrations, failures, resurrections,
    speculation resolution, message traffic and collections, stamped
    with simulated time (export with {!Obs.Trace.write_jsonl}). *)

val dspec : t -> Dspec.t
(** The cluster-global distributed-transaction table (tests and audits
    read transaction states and counters through it). *)

val metrics : t -> Obs.Metrics.t
(** The cluster-level registry: scheduler counters ([sched.rounds],
    [sched.quanta]), migration counters and cost histograms
    ([cluster.migrations_ok], [cluster.migrate_bytes],
    [cluster.pack_seconds], ...), failure/recovery counters, and the
    delta-shipping ledger ([migrate.bytes_full], [migrate.bytes_delta],
    [migrate.delta_hits], [migrate.delta_misses],
    [migrate.delta_fallbacks], gauge [migrate.delta_hit_rate]), the
    per-reason move counters ([move.explicit], [move.policy],
    [move.resurrect], [move.rehome]) and the policy-engine ledger
    ([balance.ticks], [balance.proposals], [balance.moves], gauges
    [balance.spread] and [balance.last_move_s]).  Per-node daemon and
    cache registries live on the daemons themselves. *)

val cache_hit_rate : t -> float
(** Aggregate recompilation-cache hit rate across every node's daemon
    (0.0 when caching is disabled or nothing was ever looked up). *)

val cache_reports : t -> string list
(** One {!Migrate.Codecache.report} line per node with a cache. *)
