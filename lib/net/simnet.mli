(** The simulated cluster network (paper, Section 5 testbed: 100 Mbps
    Ethernet).  A deterministic cost model — TCP-like connection setup,
    propagation latency, bandwidth — plus traffic counters and a
    monotonic event floor used for log timestamps. *)

type t

val create :
  ?bandwidth_mbps:float -> ?latency_us:float -> ?connect_ms:float ->
  unit -> t
(** Defaults: 100 Mbps, 200 µs one-way latency, 1 ms connection setup. *)

val now : t -> float

val advance : t -> float -> unit
(** Move the event floor forward by a delta.
    @raise Invalid_argument on a negative delta — a negative time charge
    is always an upstream accounting bug. *)

val advance_to : t -> float -> unit
(** Move the event floor forward to a time (never backwards; past times
    are ignored). *)

val transfer_seconds : t -> int -> float
(** Cost of a bulk transfer on a new connection (migrations,
    checkpoints): setup + latency + wire time for the byte count. *)

val message_seconds : t -> int -> float
(** Cost of a small message on an established channel. *)

val record_transfer : t -> int -> unit
val record_message : t -> int -> unit

val metrics : t -> Obs.Metrics.t
(** The traffic registry: counters [net.bytes_sent], [net.messages],
    [net.transfers]. *)

val bytes_sent : t -> int
(** Thin view over the registry. *)

val messages_sent : t -> int
val transfers : t -> int
