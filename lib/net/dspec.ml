(* Distributed-speculation transaction table (see dspec.mli).

   Only bookkeeping lives here: the protocol itself — prepare fan-out,
   epoch fencing, the crash_in_commit draw, distributed rollback and
   mailbox compensation — is driven by Cluster, which owns the entries,
   mailboxes and the speculation engines the decisions act on. *)

type part = {
  mutable p_pid : int;
  mutable p_rank : int;
  mutable p_epoch : int;
}

type state = Open | Committed | Aborted of string

type txn = {
  x_id : int;
  mutable x_coord_pid : int;
  mutable x_root_uid : int;
  mutable x_coord_laddr : int;
  mutable x_state : state;
  mutable x_parts : part list;
  mutable x_compensated : bool;
}

type t = {
  mutable next_id : int;
  txns : (int, txn) Hashtbl.t;
  c_opened : Obs.Metrics.counter;
  c_prepares : Obs.Metrics.counter;
  c_prepare_acks : Obs.Metrics.counter;
  c_commits : Obs.Metrics.counter;
  c_aborts : Obs.Metrics.counter;
  c_fence_rejections : Obs.Metrics.counter;
  c_compensated : Obs.Metrics.counter;
}

let create ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  {
    next_id = 1;
    txns = Hashtbl.create 16;
    c_opened = Obs.Metrics.counter metrics "dspec.opened";
    c_prepares = Obs.Metrics.counter metrics "dspec.prepares";
    c_prepare_acks = Obs.Metrics.counter metrics "dspec.prepare_acks";
    c_commits = Obs.Metrics.counter metrics "dspec.commits";
    c_aborts = Obs.Metrics.counter metrics "dspec.aborts";
    c_fence_rejections =
      Obs.Metrics.counter metrics "dspec.fence_rejections";
    c_compensated = Obs.Metrics.counter metrics "dspec.compensated";
  }

let open_txn t ~coord_pid ~root_uid ~coord_laddr =
  let txn =
    {
      x_id = t.next_id;
      x_coord_pid = coord_pid;
      x_root_uid = root_uid;
      x_coord_laddr = coord_laddr;
      x_state = Open;
      x_parts = [];
      x_compensated = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.txns txn.x_id txn;
  Obs.Metrics.incr t.c_opened;
  txn

let find t id = Hashtbl.find_opt t.txns id

let register txn ~pid ~rank ~epoch =
  match List.find_opt (fun p -> p.p_pid = pid) txn.x_parts with
  | Some p ->
    p.p_rank <- rank;
    p.p_epoch <- epoch
  | None ->
    txn.x_parts <- { p_pid = pid; p_rank = rank; p_epoch = epoch }
                   :: txn.x_parts

(* Deterministic iteration: ascending txn id, independent of the
   hashtable's bucket layout. *)
let sorted_txns t =
  Hashtbl.fold (fun _ txn acc -> txn :: acc) t.txns []
  |> List.sort (fun a b -> compare a.x_id b.x_id)

let open_coordinated_by t ~pid =
  List.filter
    (fun txn -> txn.x_state = Open && txn.x_coord_pid = pid)
    (sorted_txns t)

let open_with_root t ~coord_pid ~root_uid =
  List.find_opt
    (fun txn ->
      txn.x_state = Open
      && txn.x_coord_pid = coord_pid
      && txn.x_root_uid = root_uid)
    (sorted_txns t)

let aborted_with_root t ~coord_pid ~root_uid =
  List.find_opt
    (fun txn ->
      (match txn.x_state with Aborted _ -> true | Open | Committed -> false)
      && (not txn.x_compensated)
      && txn.x_coord_pid = coord_pid
      && txn.x_root_uid = root_uid)
    (sorted_txns t)

let rebind_pid t ~old_pid ~new_pid ~uid_map ~rank ~epoch =
  Hashtbl.iter
    (fun _ txn ->
      if txn.x_coord_pid = old_pid then begin
        txn.x_coord_pid <- new_pid;
        match List.assoc_opt txn.x_root_uid uid_map with
        | Some uid -> txn.x_root_uid <- uid
        | None -> ()
      end;
      List.iter
        (fun p ->
          if p.p_pid = old_pid then begin
            p.p_pid <- new_pid;
            p.p_rank <- rank;
            p.p_epoch <- epoch
          end)
        txn.x_parts)
    t.txns

let c_opened t = t.c_opened
let c_prepares t = t.c_prepares
let c_prepare_acks t = t.c_prepare_acks
let c_commits t = t.c_commits
let c_aborts t = t.c_aborts
let c_fence_rejections t = t.c_fence_rejections
let c_compensated t = t.c_compensated
