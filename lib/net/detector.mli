(** Heartbeat failure detection.

    Alive nodes emit periodic heartbeats to every other node on their
    local clocks; the cluster routes each beat through the fault layer
    (partitions and loss drop beats outright — no retransmission) and
    charges network time.  A node is suspected when {e every} alive
    observer has heard nothing from it for longer than the suspicion
    timeout on the observer's local clock, so a partial partition does
    not trigger suspicion but a crash, full partition, or long stall
    does.  The detector cannot distinguish those cases: false suspicion
    is possible by design, and the epoch-fencing layer in
    {!Net.Cluster} makes acting on one safe.

    Ground truth is consulted only to select which observers still
    report and to classify suspicions for the
    [detector.false_suspicions] counter — never for the detection
    decision itself. *)

type config = {
  hb_interval_s : float;  (** beat period, per-node local clock *)
  suspect_timeout_s : float;
      (** unanimous-silence threshold; should be several intervals *)
  hb_bytes : int;  (** on-the-wire beat size, for transfer accounting *)
}

val default : config
(** 5 ms interval, 25 ms timeout, 8-byte beats. *)

type t

val create : ?metrics:Obs.Metrics.t -> nodes:int -> config -> t
(** [metrics] receives [detector.heartbeats], [detector.suspicions] and
    [detector.false_suspicions]; a private registry is used when
    omitted. *)

val config : t -> config

val due : t -> node:int -> now:float -> float list
(** Emission times on [node] that became due now that its local clock
    reached [now], oldest first; each is returned exactly once.  The
    caller fans each beat out to the other nodes via the fault layer and
    {!record}s the survivors. *)

val skip_to : t -> node:int -> at:float -> unit
(** [node] was frozen until [at]: beats due during the freeze are never
    emitted (their silence is the detectable signal), and the first
    post-freeze beat goes out promptly. *)

val record : t -> src:int -> dst:int -> at:float -> unit
(** A beat from [src] will arrive at observer [dst] at time [at].  It
    becomes visible to [dst] only once [dst]'s local clock passes [at]. *)

val suspects :
  ?on_suspect:(subject:int -> false_positive:bool -> unit) ->
  t ->
  clocks:float array ->
  alive:bool array ->
  int list
(** The current suspect set given the nodes' local [clocks], in
    ascending node order.  Promotes matured arrivals, updates suspicion
    state, and counts fresh suspicion episodes (a node re-heard after a
    false suspicion clears its flag; suspecting it again later counts as
    a new episode).  [on_suspect] fires once per fresh episode — not on
    every poll — so callers can trace suspicions without flooding. *)
