(* The customized message-passing interface used by distributed MCC
   applications (paper, Section 2: border exchange "done using a
   customized message passing interface").

   Processes address each other by RANK (stable across migration and
   resurrection), not pid.  Payloads are copied by value between heaps —
   heaps never share references, so migration of either end never
   invalidates a message.

   Speculation join: a message sent from inside an uncommitted speculation
   carries the sending level's identity.  A receiver that consumes such a
   message becomes dependent on that speculation — if the sender rolls
   back, the receiver must roll back too (the paper's relaxation of the
   transactional Isolation property).  The cluster maintains the
   dependency registry and performs the cascade.

   The mailbox is INDEXED by (src_rank, tag): each key owns a two-list
   FIFO bucket (enqueue pushes onto [back]; receivers scan [front],
   refilling it from [back] when needed), so a receive touches only the
   traffic it can match instead of scanning the whole queue — the
   scheduler's wake checks ([next_matching_delivery], [has_delivered])
   are what made the flat queue a per-round O(pending) cost.  Every
   message carries a mailbox-local enqueue stamp, so global oldest-first
   order is still available for introspection ([messages]) and for the
   order-sensitive purges ([discard_speculative], [discard_stale]).
   The earliest pending delivery time is cached and invalidated only
   when the holder of the minimum leaves the queue.

   Receive semantics are unchanged: [try_recv] takes the FIRST message
   in enqueue order matching (src, tag) whose delivery time has passed —
   enqueue order, not delivery order, because network jitter may deliver
   a later send earlier, and the bucket preserves exactly that order.

   Receive results (returned to FIR code from msg_try_recv):
   - n >= 0   : n cells copied into the buffer
   - MSG_NONE : nothing available yet (poll again / park)
   - MSG_ROLL : the peer failed or rolled back; the caller is expected to
                abort its current speculation and retry (Figure 2). *)

open Runtime

let msg_none = -1
let msg_roll = -2

type message = {
  msg_src_rank : int;
  msg_src_pid : int;
  msg_tag : int;
  msg_payload : Value.t array;
  msg_deliver_at : float; (* simulated arrival time *)
  msg_spec : (int * int) option; (* (sender pid, sender level unique id) *)
  msg_src_epoch : int; (* sender's rank incarnation epoch at send time *)
}

(* One (src_rank, tag) class of traffic: a two-list FIFO of
   (enqueue stamp, message).  [front] oldest-first, [back] newest-first;
   the refill reverses [back] behind [front] (amortized O(1) per
   message). *)
type bucket = {
  mutable front : (int * message) list;
  mutable back : (int * message) list;
  mutable count : int;
}

type mailbox = {
  buckets : (int * int, bucket) Hashtbl.t;
  mutable size : int;
  mutable seq : int; (* mailbox-local enqueue stamp generator *)
  (* cached earliest pending delivery over the whole mailbox; valid
     only while [min_valid] — removing the minimum invalidates it and
     the next [next_delivery] recomputes *)
  mutable min_at : float;
  mutable min_valid : bool;
  (* ranks whose failure/rollback the owner has not yet observed *)
  roll_notices : (int, unit) Hashtbl.t;
}

let create_mailbox () =
  {
    buckets = Hashtbl.create 8;
    size = 0;
    seq = 0;
    min_at = infinity;
    min_valid = true;
    roll_notices = Hashtbl.create 4;
  }

let bucket_for mbox key =
  match Hashtbl.find_opt mbox.buckets key with
  | Some b -> b
  | None ->
    let b = { front = []; back = []; count = 0 } in
    Hashtbl.add mbox.buckets key b;
    b

let enqueue mbox msg =
  let b = bucket_for mbox (msg.msg_src_rank, msg.msg_tag) in
  b.back <- (mbox.seq, msg) :: b.back;
  b.count <- b.count + 1;
  mbox.seq <- mbox.seq + 1;
  mbox.size <- mbox.size + 1;
  if mbox.min_valid && msg.msg_deliver_at < mbox.min_at then
    mbox.min_at <- msg.msg_deliver_at

(* Refill a bucket's [front] from [back], oldest first.  Proper
   two-list discipline: [back] is reversed ONLY when [front] is empty,
   so each message is reversed at most once and an interleaved
   enqueue/recv workload stays amortized O(1) per operation (appending
   behind a non-empty [front] re-walked the whole front every call —
   quadratic under bursts). *)
let normalize b =
  if b.front = [] && b.back <> [] then begin
    b.front <- List.rev b.back;
    b.back <- []
  end

let pending mbox = mbox.size

(* All queued (stamp, message) pairs, in enqueue order. *)
let stamped mbox =
  let all =
    Hashtbl.fold
      (fun _ b acc -> List.rev_append b.back (List.rev_append b.front acc))
      mbox.buckets []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) all

(* Queued messages, oldest first (introspection: tests, rendering). *)
let messages mbox = List.map snd (stamped mbox)

exception Found

let exists_message mbox f =
  let check (_, m) = if f m then raise Found in
  try
    Hashtbl.iter
      (fun _ b ->
        List.iter check b.front;
        List.iter check b.back)
      mbox.buckets;
    false
  with Found -> true

let post_roll_notice mbox ~src_rank =
  Hashtbl.replace mbox.roll_notices src_rank ()

let clear_roll_notice mbox ~src_rank = Hashtbl.remove mbox.roll_notices src_rank

let has_roll_notice mbox ~src_rank = Hashtbl.mem mbox.roll_notices src_rank

let has_any_roll_notice mbox = Hashtbl.length mbox.roll_notices > 0

(* A message left the queue: the cached minimum survives unless that
   message could have been its holder. *)
let note_removed mbox (m : message) =
  mbox.size <- mbox.size - 1;
  if m.msg_deliver_at <= mbox.min_at then mbox.min_valid <- false

(* Take the first delivered message matching (src_rank, tag).  A pending
   roll notice from that rank takes priority and is consumed. *)
type recv_result =
  | Received of message
  | Roll
  | None_yet

let try_recv mbox ~now ~src_rank ~tag =
  if has_roll_notice mbox ~src_rank then begin
    clear_roll_notice mbox ~src_rank;
    Roll
  end
  else begin
    match Hashtbl.find_opt mbox.buckets (src_rank, tag) with
    | None -> None_yet
    | Some b ->
      normalize b;
      (* First deliverable message of [l] (enqueue order): the message
         and the remainder with it removed, order preserved. *)
      let rec split acc = function
        | [] -> None
        | ((_, m) as sm) :: rest ->
          if m.msg_deliver_at <= now then Some (m, List.rev_append acc rest)
          else split (sm :: acc) rest
      in
      (match split [] b.front with
      | Some (m, front') ->
        b.front <- front';
        b.count <- b.count - 1;
        note_removed mbox m;
        Received m
      | None -> (
        (* Jitter can make a NEWER message deliverable while older
           [front] traffic is still in flight; scan [back] in enqueue
           order without merging it behind a non-empty [front]. *)
        match split [] (List.rev b.back) with
        | None -> None_yet
        | Some (m, back_in_order) ->
          b.back <- List.rev back_in_order;
          b.count <- b.count - 1;
          note_removed mbox m;
          Received m))
  end

(* Rebuild the index from a kept (stamp, message) list in enqueue
   order (the purge operations filter over the global order). *)
let rebuild mbox kept =
  Hashtbl.reset mbox.buckets;
  mbox.size <- 0;
  mbox.min_valid <- false;
  List.iter
    (fun ((stamp, m) : int * message) ->
      let b = bucket_for mbox (m.msg_src_rank, m.msg_tag) in
      b.back <- (stamp, m) :: b.back;
      b.count <- b.count + 1;
      mbox.size <- mbox.size + 1)
    kept;
  Hashtbl.iter (fun _ b -> normalize b) mbox.buckets

(* Discard queued messages that originated from any of the given
   speculation level uids (used when the sender rolls back: its
   speculative messages must be unsent).  [keep] runs over the global
   enqueue order, oldest first. *)
let discard_speculative mbox ~uids ~sender_pid =
  let dropped = ref 0 in
  let keep (_, m) =
    match m.msg_spec with
    | Some (pid, uid) when pid = sender_pid && List.mem uid uids ->
      incr dropped;
      false
    | Some _ | None -> true
  in
  if mbox.size > 0 then rebuild mbox (List.filter keep (stamped mbox));
  !dropped

(* Strip the speculative stamp from queued messages sent by the given
   speculation levels (a distributed commit decided in favour of the
   sender: its in-flight messages become durable, and a receiver that
   consumes one later must NOT join a level that no longer exists). *)
let settle_speculative mbox ~uids ~sender_pid =
  let settled = ref 0 in
  let map ((stamp, m) : int * message) =
    match m.msg_spec with
    | Some (pid, uid) when pid = sender_pid && List.mem uid uids ->
      incr settled;
      (stamp, { m with msg_spec = None })
    | Some _ | None -> (stamp, m)
  in
  if mbox.size > 0 then rebuild mbox (List.map map (stamped mbox));
  !settled

(* Drop queued messages whose sender incarnation is stale ([stale m]
   decides, typically by comparing [msg_src_epoch] against the rank's
   current epoch).  Used by epoch fencing: traffic from a superseded
   incarnation must not be consumed by anyone. *)
let discard_stale mbox ~stale =
  let dropped = ref 0 in
  let keep (_, m) =
    if stale m then begin
      incr dropped;
      false
    end
    else true
  in
  if mbox.size > 0 then rebuild mbox (List.filter keep (stamped mbox));
  !dropped

(* Earliest pending delivery time, for the scheduler's idle-time skip.
   Cached; recomputed only after the minimum's holder was removed. *)
let next_delivery mbox =
  if mbox.size = 0 then None
  else begin
    if not mbox.min_valid then begin
      let m = ref infinity in
      Hashtbl.iter
        (fun _ b ->
          let see (_, msg) =
            if msg.msg_deliver_at < !m then m := msg.msg_deliver_at
          in
          List.iter see b.front;
          List.iter see b.back)
        mbox.buckets;
      mbox.min_at <- !m;
      mbox.min_valid <- true
    end;
    Some mbox.min_at
  end

(* Earliest pending delivery from a specific (src, tag) — what a parked
   receiver is actually waiting for.  Touches one bucket. *)
let next_matching_delivery mbox ~src_rank ~tag =
  match Hashtbl.find_opt mbox.buckets (src_rank, tag) with
  | None -> None
  | Some b ->
    let fold acc (_, m) =
      match acc with
      | None -> Some m.msg_deliver_at
      | Some t -> Some (min t m.msg_deliver_at)
    in
    List.fold_left fold (List.fold_left fold None b.front) b.back

(* Is a matching message already deliverable at [now]?  One bucket. *)
let has_delivered mbox ~now ~src_rank ~tag =
  match Hashtbl.find_opt mbox.buckets (src_rank, tag) with
  | None -> false
  | Some b ->
    let due (_, m) = m.msg_deliver_at <= now in
    List.exists due b.front || List.exists due b.back

(* Wildcard receive: first delivered message with [tag] from ANY source,
   in mailbox enqueue order (the per-message stamps make the choice
   deterministic even though bucket iteration is not).  A pending roll
   notice from any rank takes priority — the lowest rank's notice is
   consumed, again for determinism. *)
let try_recv_any mbox ~now ~tag =
  let notice =
    Hashtbl.fold
      (fun r () acc ->
        match acc with
        | None -> Some r
        | Some r' -> Some (min r r'))
      mbox.roll_notices None
  in
  match notice with
  | Some src_rank ->
    clear_roll_notice mbox ~src_rank;
    Roll
  | None -> (
    let best = ref None in
    Hashtbl.iter
      (fun (_, t) b ->
        if t = tag then begin
          let see ((stamp, m) as sm) =
            if m.msg_deliver_at <= now then
              match !best with
              | Some ((s, _), _) when s <= stamp -> ()
              | _ -> best := Some (sm, b)
          in
          List.iter see b.front;
          List.iter see b.back
        end)
      mbox.buckets;
    match !best with
    | None -> None_yet
    | Some ((stamp, m), b) ->
      let drop l = List.filter (fun (s, _) -> s <> stamp) l in
      b.front <- drop b.front;
      b.back <- drop b.back;
      b.count <- b.count - 1;
      note_removed mbox m;
      Received m)

(* Earliest pending delivery with [tag] from any source — what a
   wildcard-parked receiver is waiting for. *)
let next_matching_delivery_any mbox ~tag =
  Hashtbl.fold
    (fun (_, t) b acc ->
      if t <> tag then acc
      else
        let fold acc (_, m) =
          match acc with
          | None -> Some m.msg_deliver_at
          | Some x -> Some (min x m.msg_deliver_at)
        in
        List.fold_left fold (List.fold_left fold acc b.front) b.back)
    mbox.buckets None

(* Is any message with [tag] already deliverable at [now]? *)
let has_delivered_any mbox ~now ~tag =
  try
    Hashtbl.iter
      (fun (_, t) b ->
        if t = tag then begin
          let due (_, m) = if m.msg_deliver_at <= now then raise Found in
          List.iter due b.front;
          List.iter due b.back
        end)
      mbox.buckets;
    false
  with Found -> true

(* Remove and return EVERYTHING queued, oldest first: the migration path
   drains a re-homed service's old mailbox through the forwarder. *)
let take_all mbox =
  let all = messages mbox in
  Hashtbl.reset mbox.buckets;
  mbox.size <- 0;
  mbox.min_at <- infinity;
  mbox.min_valid <- true;
  all
