(* The customized message-passing interface used by distributed MCC
   applications (paper, Section 2: border exchange "done using a
   customized message passing interface").

   Processes address each other by RANK (stable across migration and
   resurrection), not pid.  Payloads are copied by value between heaps —
   heaps never share references, so migration of either end never
   invalidates a message.

   Speculation join: a message sent from inside an uncommitted speculation
   carries the sending level's identity.  A receiver that consumes such a
   message becomes dependent on that speculation — if the sender rolls
   back, the receiver must roll back too (the paper's relaxation of the
   transactional Isolation property).  The cluster maintains the
   dependency registry and performs the cascade.

   The mailbox is a two-list FIFO (enqueue pushes onto [back]; receivers
   scan [front], refilling it from [back] when needed), so enqueue is
   O(1) and an N-message burst costs O(N) total instead of the O(N^2) a
   naive [queue @ [msg]] append produces.  Oldest-first delivery order is
   preserved: [front] is oldest-first, [back] newest-first, and the
   refill reverses [back] behind [front].

   Receive results (returned to FIR code from msg_try_recv):
   - n >= 0   : n cells copied into the buffer
   - MSG_NONE : nothing available yet (poll again / park)
   - MSG_ROLL : the peer failed or rolled back; the caller is expected to
                abort its current speculation and retry (Figure 2). *)

open Runtime

let msg_none = -1
let msg_roll = -2

type message = {
  msg_src_rank : int;
  msg_src_pid : int;
  msg_tag : int;
  msg_payload : Value.t array;
  msg_deliver_at : float; (* simulated arrival time *)
  msg_spec : (int * int) option; (* (sender pid, sender level unique id) *)
  msg_src_epoch : int; (* sender's rank incarnation epoch at send time *)
}

type mailbox = {
  mutable front : message list; (* oldest first *)
  mutable back : message list; (* newest first *)
  mutable size : int;
  (* ranks whose failure/rollback the owner has not yet observed *)
  roll_notices : (int, unit) Hashtbl.t;
}

let create_mailbox () =
  { front = []; back = []; size = 0; roll_notices = Hashtbl.create 4 }

let enqueue mbox msg =
  mbox.back <- msg :: mbox.back;
  mbox.size <- mbox.size + 1

(* Move everything into [front], oldest first.  Amortized O(1) per
   enqueued message: each message is reversed into [front] at most once
   between receives. *)
let normalize mbox =
  if mbox.back <> [] then begin
    mbox.front <- mbox.front @ List.rev mbox.back;
    mbox.back <- []
  end

let pending mbox = mbox.size

(* Queued messages, oldest first (introspection: scheduler wake checks,
   tests). *)
let messages mbox =
  mbox.front @ List.rev mbox.back

let exists_message mbox f =
  List.exists f mbox.front || List.exists f mbox.back

let post_roll_notice mbox ~src_rank =
  Hashtbl.replace mbox.roll_notices src_rank ()

let clear_roll_notice mbox ~src_rank = Hashtbl.remove mbox.roll_notices src_rank

let has_roll_notice mbox ~src_rank = Hashtbl.mem mbox.roll_notices src_rank

let has_any_roll_notice mbox = Hashtbl.length mbox.roll_notices > 0

(* Take the first delivered message matching (src_rank, tag).  A pending
   roll notice from that rank takes priority and is consumed. *)
type recv_result =
  | Received of message
  | Roll
  | None_yet

let try_recv mbox ~now ~src_rank ~tag =
  if has_roll_notice mbox ~src_rank then begin
    clear_roll_notice mbox ~src_rank;
    Roll
  end
  else begin
    normalize mbox;
    let rec split acc = function
      | [] -> None_yet
      | m :: rest ->
        if
          m.msg_src_rank = src_rank && m.msg_tag = tag
          && m.msg_deliver_at <= now
        then begin
          mbox.front <- List.rev_append acc rest;
          mbox.size <- mbox.size - 1;
          Received m
        end
        else split (m :: acc) rest
    in
    split [] mbox.front
  end

(* Discard queued messages that originated from any of the given
   speculation level uids (used when the sender rolls back: its
   speculative messages must be unsent). *)
let discard_speculative mbox ~uids ~sender_pid =
  let dropped = ref 0 in
  let keep m =
    match m.msg_spec with
    | Some (pid, uid) when pid = sender_pid && List.mem uid uids ->
      incr dropped;
      false
    | Some _ | None -> true
  in
  mbox.front <- List.filter keep mbox.front;
  mbox.back <- List.filter keep mbox.back;
  mbox.size <- mbox.size - !dropped;
  !dropped

(* Drop queued messages whose sender incarnation is stale ([stale m]
   decides, typically by comparing [msg_src_epoch] against the rank's
   current epoch).  Used by epoch fencing: traffic from a superseded
   incarnation must not be consumed by anyone. *)
let discard_stale mbox ~stale =
  let dropped = ref 0 in
  let keep m =
    if stale m then begin
      incr dropped;
      false
    end
    else true
  in
  mbox.front <- List.filter keep mbox.front;
  mbox.back <- List.filter keep mbox.back;
  mbox.size <- mbox.size - !dropped;
  !dropped

(* Earliest pending delivery time, for the scheduler's idle-time skip. *)
let next_delivery mbox =
  let fold acc m =
    match acc with
    | None -> Some m.msg_deliver_at
    | Some t -> Some (min t m.msg_deliver_at)
  in
  List.fold_left fold (List.fold_left fold None mbox.front) mbox.back

(* Earliest pending delivery from a specific (src, tag) — what a parked
   receiver is actually waiting for. *)
let next_matching_delivery mbox ~src_rank ~tag =
  let fold acc m =
    if m.msg_src_rank = src_rank && m.msg_tag = tag then
      match acc with
      | None -> Some m.msg_deliver_at
      | Some t -> Some (min t m.msg_deliver_at)
    else acc
  in
  List.fold_left fold (List.fold_left fold None mbox.front) mbox.back

(* Is a matching message already deliverable at [now]? *)
let has_delivered mbox ~now ~src_rank ~tag =
  exists_message mbox (fun m ->
      m.msg_src_rank = src_rank && m.msg_tag = tag
      && m.msg_deliver_at <= now)
