(** Load-aware placement policy: per-node load gauges plus a
    per-process communication-affinity matrix feeding an
    InfotonOpt-style scorer (attraction toward communication partners,
    repulsion from overloaded nodes) that proposes migrations when the
    cluster's load spread exceeds a tolerance band and a per-node move
    budget allows it.

    The module is pure bookkeeping + planning: it never moves anything
    itself.  {!Cluster} samples the gauges on [Config.period_s], calls
    {!plan}, and executes the returned proposals through the unified
    [Cluster.Move] API with reason [Policy].

    Only *registered services* (processes bound to a logical address in
    {!Registry}) are eligible subjects: their traffic keeps flowing
    through forwarders and [Recipient_moved] rebinding while they move,
    so a policy move is always transparent to correspondents.

    Termination / no ping-pong: a move of a process charging [c]
    cycles/sec from source load [s] to destination load [d] is proposed
    only when [d + c*(1 + tolerance) <= s].  Each such move strictly
    decreases the cluster potential [sum(load^2)] by at least
    [2*c^2*tolerance], so a finite number of moves reaches a state where
    no proposal fires; two equally loaded nodes can never trade the
    same process back and forth. *)

module Config : sig
  type t = {
    enabled : bool;  (** master switch; [false] = engine never runs *)
    period_s : float;  (** gauge sampling / planning period (sim s) *)
    tolerance : float;
        (** relative tolerance band: planning is skipped while
            [max - min <= tolerance * mean] over alive node loads, and
            an individual move must clear the destination by a
            [1 + tolerance] margin (hysteresis) *)
    move_budget : int;
        (** max departures AND max arrivals per node per period *)
    affinity_decay : float;
        (** per-period multiplier applied to every affinity cell;
            cells below 1e-6 are dropped *)
  }

  val default : t
  (** Disabled; period 2 ms, tolerance 0.25, budget 2, decay 0.5. *)
end

type node_load = {
  nl_node : int;
  nl_alive : bool;
  nl_runnable : int;  (** resident runnable (non-terminated) entries *)
  nl_cycles_per_s : float;  (** charged busy seconds per second *)
  nl_mailbox : int;  (** pending messages across resident mailboxes *)
}

type candidate = {
  cd_pid : int;
  cd_node : int;
  cd_load : float;
      (** the mass the process carries if moved: {!candidate_load} of
          its charged cycles/sec over the last period and its own
          mailbox backlog *)
}
(** A movable process (a registered service) with its measured load. *)

type proposal = {
  pr_pid : int;
  pr_from : int;
  pr_to : int;
  pr_gain : float;  (** [src_load - (dest_load + cd_load)] at decision *)
}

type t

val create : Config.t -> t
val config : t -> Config.t

val load_of : node_load -> float
(** Composite node load: [cycles_per_s + 0.05*runnable +
    0.005*mailbox].  Cycles dominate; the queue terms break ties toward
    draining long mailboxes. *)

val candidate_load : cycles_per_s:float -> mailbox:int -> float
(** What a movable process contributes to its node's composite load:
    its charged cycles/sec, its runnable slot, and its own mailbox
    backlog, weighted as in {!load_of}.  Pricing the full mass into
    the candidate keeps the [sum(load^2)] potential argument sound — a
    move can never look profitable merely because load the process
    drags along with it (its slot, its queue) was invisible. *)

(** {2 Affinity matrix} *)

val note_comm : t -> pid:int -> peer_rank:int -> unit
(** Piggybacked on every successful send: one unit of affinity from the
    sending process toward the destination rank. *)

val decay : t -> unit
(** Apply [Config.affinity_decay] once (call once per period). *)

val rekey : t -> old_pid:int -> new_pid:int -> unit
(** A migration gave the process a fresh pid; carry its affinity row. *)

val forget : t -> pid:int -> unit

val affinity : t -> pid:int -> (int * float) list
(** Current row for [pid], sorted by peer rank (for tests/inspection). *)

(** {2 Planning} *)

val spread : t -> loads:node_load array -> float * float
(** [(max - min, mean)] of {!load_of} over alive nodes; [(0., 0.)] when
    fewer than two nodes are alive. *)

val plan :
  t ->
  loads:node_load array ->
  candidates:candidate list ->
  node_of_rank:(int -> int option) ->
  proposal list
(** One planning round.  Returns [] while the spread is inside the
    tolerance band.  Otherwise walks source nodes from most to least
    loaded and, for each candidate on an overloaded node (heaviest
    first), picks the destination maximising communication attraction
    (affinity mass toward ranks resident on that node, via
    [node_of_rank]) among the alive nodes that satisfy the
    [d + c*(1+tolerance) <= s] repulsion bound — ties broken by lower
    load, then lower node id.  Working loads are updated as proposals
    are emitted, and both departures and arrivals are capped by
    [Config.move_budget] per node, so one round's proposals are
    consistent and bounded.  Candidates with zero measured load are
    never moved.  Deterministic: output depends only on the arguments
    and the affinity matrix. *)
