(* Checkpoint storage.

   Two modes, selected at construction:

   - [replication = 0] (the default) is the paper's "NFS mount point
     visible across the entire cluster": one reliable shared table whose
     files survive any node failure.  This is the stand-in the original
     experiments were built on and remains bit-for-bit identical to the
     pre-replication behaviour.

   - [replication = k >= 1] replaces the infallible mount with k-way
     replication across node-local stores.  A node-local store dies with
     its node ({!fail_node}), replica writes are subject to the storage
     fault classes in {!Faults} (lost file, torn write, bit flip), and
     every read is digest-verified: a replica whose bytes no longer
     match the digest recorded at write time is treated as absent.  When
     a read finds one good copy it repairs the damaged or missing
     replicas from it (read-repair), so a single surviving replica is
     enough to restore full redundancy.

   Reads and writes are charged network transfer time through the
   simulated network.  Replica writes happen in parallel, so a logical
   write costs one transfer time regardless of k; a repairing read costs
   the read plus one transfer per replica repaired. *)

type entry = {
  e_data : string;
  e_digest : string;
      (* digest of the ORIGINAL bytes, recorded before any write fault
         is applied — so a torn or flipped replica fails verification *)
}

type replica = {
  r_files : (string, entry) Hashtbl.t;
  mutable r_alive : bool;
}

type mode =
  | Shared of (string, entry) Hashtbl.t
  | Replicated of replica array

type t = {
  mode : mode;
  k : int; (* replication factor; 0 = shared mode *)
  net : Simnet.t;
  faults : Faults.t option;
  c_repairs : Obs.Metrics.counter;
  c_corrupt : Obs.Metrics.counter;
  mutable on_repair : (path:string -> replicas:int -> unit) option;
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
}

let digest_of = Fir.Digest.of_encoded

(* FNV-1a over the path: replica placement must be stable across OCaml
   versions (Hashtbl.hash is not guaranteed to be). *)
let path_hash path =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    path;
  !h

let create ?(replication = 0) ?(nodes = 0) ?faults ?metrics net =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let c_repairs = Obs.Metrics.counter metrics "storage.repairs" in
  let c_corrupt = Obs.Metrics.counter metrics "storage.corrupt_reads" in
  let mode =
    if replication <= 0 then Shared (Hashtbl.create 16)
    else if nodes <= 0 then
      invalid_arg "Storage.create: replication requires nodes > 0"
    else
      Replicated
        (Array.init nodes (fun _ ->
             { r_files = Hashtbl.create 16; r_alive = true }))
  in
  let k = if replication <= 0 then 0 else min replication nodes in
  {
    mode;
    k;
    net;
    faults;
    c_repairs;
    c_corrupt;
    on_repair = None;
    writes = 0;
    reads = 0;
    bytes_written = 0;
  }

let set_on_repair t f = t.on_repair <- Some f

let replication t = t.k

(* The k distinct nodes a path's replicas live on, in preference order. *)
let placement t path =
  match t.mode with
  | Shared _ -> []
  | Replicated reps ->
    let n = Array.length reps in
    let base = path_hash path mod n in
    List.init (min t.k n) (fun i -> (base + i) mod n)

let damage faults data =
  match faults with
  | None -> Some data
  | Some f -> (
    match Faults.on_store_write f with
    | `Ok -> Some data
    | `Lost -> None
    | `Torn frac ->
      let keep = int_of_float (frac *. float_of_int (String.length data)) in
      Some (String.sub data 0 (min keep (String.length data)))
    | `Flip frac ->
      let len = String.length data in
      if len = 0 then Some data
      else begin
        let pos = min (len - 1) (int_of_float (frac *. float_of_int len)) in
        let b = Bytes.of_string data in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        Some (Bytes.to_string b)
      end)

(* Returns the simulated seconds the operation took. *)
let write t path data =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + String.length data;
  (match t.mode with
  | Shared files ->
    Hashtbl.replace files path { e_data = data; e_digest = digest_of data };
    Simnet.record_transfer t.net (String.length data)
  | Replicated reps ->
    let digest = digest_of data in
    List.iter
      (fun nid ->
        let r = reps.(nid) in
        if r.r_alive then begin
          Simnet.record_transfer t.net (String.length data);
          match damage t.faults data with
          | None ->
            (* lost file: the write was acknowledged but nothing (not
               even a previous version) remains on this replica *)
            Hashtbl.remove r.r_files path
          | Some stored ->
            Hashtbl.replace r.r_files path
              { e_data = stored; e_digest = digest }
        end)
      (placement t path));
  Simnet.transfer_seconds t.net (String.length data)

let verified e =
  if String.equal (digest_of e.e_data) e.e_digest then Some e.e_data
  else None

let read t path =
  match t.mode with
  | Shared files -> (
    match Hashtbl.find_opt files path with
    | Some e ->
      t.reads <- t.reads + 1;
      Simnet.record_transfer t.net (String.length e.e_data);
      Some (e.e_data, Simnet.transfer_seconds t.net (String.length e.e_data))
    | None -> None)
  | Replicated reps -> (
    let places = placement t path in
    let good = ref None in
    let saw_corrupt = ref false in
    List.iter
      (fun nid ->
        let r = reps.(nid) in
        if r.r_alive && !good = None then
          match Hashtbl.find_opt r.r_files path with
          | None -> ()
          | Some e -> (
            match verified e with
            | Some data -> good := Some data
            | None -> saw_corrupt := true))
      places;
    match !good with
    | None ->
      if !saw_corrupt then Obs.Metrics.incr t.c_corrupt;
      None
    | Some data ->
      t.reads <- t.reads + 1;
      Simnet.record_transfer t.net (String.length data);
      let seconds =
        ref (Simnet.transfer_seconds t.net (String.length data))
      in
      (* read-repair: restore every alive replica that is missing the
         file or holds a damaged copy (repairs ship verified bytes and
         are not themselves subject to write faults) *)
      let digest = digest_of data in
      let repaired = ref 0 in
      List.iter
        (fun nid ->
          let r = reps.(nid) in
          if r.r_alive then
            let healthy =
              match Hashtbl.find_opt r.r_files path with
              | Some e -> verified e <> None
              | None -> false
            in
            if not healthy then begin
              Hashtbl.replace r.r_files path
                { e_data = data; e_digest = digest };
              Obs.Metrics.incr t.c_repairs;
              incr repaired;
              Simnet.record_transfer t.net (String.length data);
              seconds :=
                !seconds +. Simnet.transfer_seconds t.net (String.length data)
            end)
        places;
      (match t.on_repair with
      | Some f when !repaired > 0 -> f ~path ~replicas:!repaired
      | Some _ | None -> ());
      Some (data, !seconds))

let exists t path =
  match t.mode with
  | Shared files -> Hashtbl.mem files path
  | Replicated reps ->
    List.exists
      (fun nid ->
        reps.(nid).r_alive && Hashtbl.mem reps.(nid).r_files path)
      (placement t path)

let remove t path =
  match t.mode with
  | Shared files -> Hashtbl.remove files path
  | Replicated reps ->
    Array.iter (fun r -> Hashtbl.remove r.r_files path) reps

(* Sorted: Hashtbl.fold order is unspecified and differs across OCaml
   versions, and callers compare listings across runs. *)
let list t =
  let keys tbl = Hashtbl.fold (fun path _ acc -> path :: acc) tbl [] in
  let paths =
    match t.mode with
    | Shared files -> keys files
    | Replicated reps ->
      Array.to_list reps
      |> List.concat_map (fun r -> if r.r_alive then keys r.r_files else [])
      |> List.sort_uniq String.compare
  in
  List.sort String.compare paths

let size t path =
  match t.mode with
  | Shared files ->
    Option.map (fun e -> String.length e.e_data) (Hashtbl.find_opt files path)
  | Replicated reps ->
    List.find_map
      (fun nid ->
        let r = reps.(nid) in
        if r.r_alive then
          Option.map
            (fun e -> String.length e.e_data)
            (Hashtbl.find_opt r.r_files path)
        else None)
      (placement t path)

let fail_node t node_id =
  match t.mode with
  | Shared _ -> ()
  | Replicated reps ->
    if node_id >= 0 && node_id < Array.length reps then
      reps.(node_id).r_alive <- false

(* Alive replicas of [path] whose bytes still verify — the current
   redundancy level, used by tests and the availability bench. *)
let good_replicas t path =
  match t.mode with
  | Shared files -> if Hashtbl.mem files path then 1 else 0
  | Replicated reps ->
    List.fold_left
      (fun acc nid ->
        let r = reps.(nid) in
        match Hashtbl.find_opt r.r_files path with
        | Some e when r.r_alive && verified e <> None -> acc + 1
        | _ -> acc)
      0 (placement t path)
