(** Checkpoint storage.

    With [replication = 0] (the default) this is the paper's reliable
    "NFS mount point visible across the entire cluster": one shared
    table whose files survive any node failure.

    With [replication = k >= 1] the mount is replaced by k-way
    replication across node-local stores: each path lives on k nodes
    chosen by a stable hash, a node-local store dies with its node
    ({!fail_node}), replica writes are subject to the {!Faults} storage
    fault classes (lost file, torn write, bit flip), and reads are
    digest-verified with read-repair — one good surviving replica
    restores full redundancy, and a read that finds no verifying copy
    returns [None] rather than corrupt bytes.

    Operations are charged network transfer time. *)

type t

val create :
  ?replication:int ->
  ?nodes:int ->
  ?faults:Faults.t ->
  ?metrics:Obs.Metrics.t ->
  Simnet.t ->
  t
(** [replication = 0] (default) builds the shared reliable store and
    ignores [nodes]/[faults].  [replication >= 1] requires [nodes > 0]
    and builds one node-local store per node; the factor is clamped to
    the node count.  [metrics] receives [storage.repairs] and
    [storage.corrupt_reads]; a private registry is used when omitted. *)

val replication : t -> int
(** The effective replication factor; [0] in shared mode. *)

val set_on_repair : t -> (path:string -> replicas:int -> unit) -> unit
(** Install a callback invoked after a read repairs one or more replicas
    (the cluster uses this to emit {!Obs.Trace.Storage_repair}). *)

val write : t -> string -> string -> float
(** [write t path data] stores [data] and returns the simulated seconds
    the write took.  In replicated mode the replicas are written in
    parallel (one transfer time regardless of k) and each replica write
    independently draws a storage-fault fate. *)

val read : t -> string -> (string * float) option
(** Contents and simulated read time, or [None] when the file is absent
    on — or fails digest verification at — every alive replica.  A read
    that succeeds repairs damaged or missing alive replicas from the
    good copy, charging one extra transfer per repair. *)

val exists : t -> string -> bool
(** Present on some alive replica (the copy may still fail verification
    at read time — existence is a metadata check). *)

val remove : t -> string -> unit

val list : t -> string list
(** All stored paths, sorted — listing order is deterministic across
    runs and OCaml versions. *)

val size : t -> string -> int option
(** Stored byte size on the first alive replica (a torn replica reports
    its truncated size). *)

val fail_node : t -> int -> unit
(** Kill the node-local store on the given node: its replicas are gone
    for good.  No-op in shared mode. *)

val good_replicas : t -> string -> int
(** Number of alive replicas whose bytes digest-verify; [1]/[0] in
    shared mode.  The current redundancy level of the path. *)
