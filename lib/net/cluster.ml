(* The simulated cluster (paper, Sections 2 and 5).

   A cluster is a set of nodes, each running an MCC migration daemon
   (Migrate.Server), connected by the simulated network, sharing reliable
   storage (the "NFS mount").  Processes are placed on nodes, scheduled
   round-robin with a step quantum, and interact through the Mpi message
   layer.  The cluster implements:

   - the three migration protocols end-to-end (pack on the source, bytes
     across the network, verify/recompile/resume on the target daemon);
   - node failure injection: resident processes die, survivors that poll
     the dead ranks observe MSG_ROLL, and speculative messages' consumers
     are rolled back through the dependency cascade;
   - resurrection: a checkpoint file is read back from shared storage and
     the process resumes on a chosen node under its old rank (Figure 2's
     recovery path).

   Simulated time: every process's work is charged in architecture cycles;
   a round advances the clock by the busiest node's share, so nodes run in
   parallel while processes on one node serialize.  Checkpoint writes and
   migrations charge their full cost to the process that performs them. *)

open Runtime
open Vm

type engine = Interp_engine | Emu_engine of Emulator.t

type entry = {
  proc : Process.t;
  mutable engine : engine;
  mutable node_id : int;
  mailbox : Mpi.mailbox;
  mutable rank : int option;
  (* the incarnation of the rank this process embodies.  Resurrection
     bumps the rank's current epoch; an entry whose epoch is older than
     the rank's current one is a ZOMBIE (it survived a false suspicion)
     and is fenced at its next interaction point.  Migration preserves
     the epoch: the successor is the same incarnation. *)
  mutable epoch : int;
  mutable start_at : float; (* not schedulable before this time *)
  (* the (src rank, tag) the process last polled unsuccessfully: the
     scheduler only wakes it for a matching delivery (or a roll notice
     from that source), so unrelated traffic cannot spin-livelock a
     parked receiver *)
  mutable parked_on : (int * int) option;
  (* (image_digest, image) of this process's most recent pack — what its
     heap's dirty set is tracked against, hence the only image the NEXT
     pack can ship a delta over.  Updated at EVERY pack (the dirty set is
     cleared there even when the migration subsequently fails). *)
  mutable baseline : (string * Migrate.Wire.image) option;
  (* sender-side binding cache: laddr -> the rank this process last
     resolved it to.  Migration of the SENDER carries the cache (it is
     process state); migration of the TARGET leaves it stale until a
     Recipient_moved notice or a typed MSG_MOVED forces a re-resolve. *)
  bindings : (int, int) Hashtbl.t;
  (* moved notices owed to this process by forwarders it sent through:
     (delivery time, laddr, new rank), newest first.  Consumed — oldest
     first — at the next svc_send once due, rebinding the cache. *)
  mutable notices : (float * int * int) list;
}

type node = {
  node_id : int;
  node_name : string;
  node_arch : Arch.t;
  mutable alive : bool;
  daemon : Migrate.Server.t;
  mutable busy_seconds : float; (* time spent executing *)
  (* the node's local simulated clock (busy + idle waiting).  Nodes
     advance independently — a conservative discrete-event simulation —
     so out-of-phase processes (e.g. a freshly resurrected rank) overlap
     with their peers instead of serialising against a global clock. *)
  mutable clock : float;
  (* the entries hosted on this node, newest first (the per-node index
     the indexed scheduler iterates: a round touches each entry once
     through its node instead of scanning the global list per node).
     Terminated entries are purged lazily each round; an entry never
     changes node in place (migration registers a fresh entry), so the
     list only ever gains at registration and loses at purge. *)
  mutable residents : entry list;
}

type migration_record = {
  mr_kind : [ `Migrate | `Suspend | `Checkpoint ];
  mr_pid : int;
  mr_bytes : int;
  mr_pack_s : float;
  mr_transfer_s : float;
  mr_compile_s : float; (* link-only on a recompilation-cache hit *)
  mr_cache_hit : bool;
  mr_delta : bool; (* the image travelled as a delta over a baseline *)
  mr_ok : bool;
}

(* What a successful host-initiated migration reports (the structured
   replacement for the old bare successor pid). *)
type migration_report = {
  rep_pid : int; (* successor pid *)
  rep_attempts : int; (* hop transmissions, >= 1 *)
  rep_retries : int; (* rep_attempts - 1 *)
  rep_backoff_s : float; (* total backoff waited between attempts *)
  rep_elapsed_s : float; (* simulated initiation -> resume on target *)
  rep_bytes : int;
  rep_cache_hit : bool;
  rep_delta : bool; (* shipped as a delta (no fallback needed) *)
}

type migration_error =
  | No_such_process of int
  | Not_running (* terminated, or already at a migration point *)
  | Target_down
  | Already_there
  | Unreachable of { attempts : int; reason : string }
    (* retry budget exhausted: every transmission was lost or
       partitioned; the process keeps running where it was *)
  | Rejected of string (* the target daemon refused the image *)
  | Fenced of { rank : int; stale : int; current : int }
    (* the process is a superseded incarnation of its rank: a newer
       epoch exists (the rank was resurrected elsewhere), so this copy
       must halt instead of acting *)
  | Resurrect_failed of string
    (* an image-subject move could not restore the checkpoint (node
       down, missing/corrupt image, wedged replicated read).  The
       message is the historical resurrection error string verbatim. *)

let migration_error_to_string = function
  | No_such_process pid -> Printf.sprintf "no process %d" pid
  | Not_running -> "process is not running"
  | Target_down -> "target node is down"
  | Already_there -> "already there"
  | Unreachable { attempts; reason } ->
    Printf.sprintf "target unreachable after %d attempts (last: %s)"
      attempts reason
  | Rejected msg -> msg
  | Fenced { rank; stale; current } ->
    Printf.sprintf "fenced: rank %d epoch %d superseded by epoch %d" rank
      stale current
  | Resurrect_failed msg -> msg

(* Typed cluster configuration: one record instead of the optional-
   argument pile that kept growing on [create].  [retry] is the
   migration protocol's resilience policy; [faults] the injection plan
   the whole cluster (delivery, scheduler, storage faults) draws from. *)
module Config = struct
  type retry = {
    max_attempts : int; (* total transmissions per migration hop *)
    hop_timeout_s : float; (* wait before declaring an attempt lost *)
    backoff_base_s : float;
    backoff_factor : float; (* base * factor^(attempt-1) between tries *)
  }

  let default_retry =
    {
      max_attempts = 5;
      hop_timeout_s = 0.02;
      backoff_base_s = 0.002;
      backoff_factor = 2.0;
    }

  type t = {
    node_count : int;
    arches : Arch.t array;
    trusted : bool;
    quantum : int;
    seed : int;
    code_cache : int;
    net : Simnet.t option;
    trace_capacity : int option;
    retry : retry;
    faults : Faults.plan;
    delta : bool;
        (* ship deltas over negotiated baselines on repeated migrations,
           and append incremental checkpoints to an existing chain *)
    baseline_cache : int; (* retained baselines per daemon; 0 disables *)
    detector : Detector.config option;
        (* heartbeat failure detection; None (the default) runs the
           legacy omniscient mode: no beats, no suspicion, no extra RNG
           draws, traces byte-identical to pre-detector builds *)
    replication : int;
        (* checkpoint replication factor: 0 (default) = the reliable
           shared "NFS" store; k >= 1 = k-way replication across
           node-local stores that die with their node *)
    legacy_scan_sched : bool;
        (* run the scheduler's pre-index linear scans (every entry
           visited per node per round) instead of the per-node resident
           lists.  Semantically identical — the equivalence suite
           asserts byte-identical traces — and kept executable so the
           S1 bench measures before/after from one build *)
    forward_ttl_s : float;
        (* how long a vacated rank keeps forwarding after a registered
           service migrates away.  Long enough for every active sender
           to learn the new rank from a Recipient_moved notice; a send
           arriving later gets the typed MSG_MOVED error and must
           re-resolve through the registry *)
    balance : Balance.Config.t;
        (* the load-aware placement policy engine (disabled by
           default): samples per-node load gauges every period and
           migrates hot registered services through [move] with reason
           [Policy] *)
  }

  let default =
    {
      node_count = 4;
      arches = [| Arch.cisc32 |];
      trusted = false;
      quantum = 64;
      seed = 1;
      code_cache = 16;
      net = None;
      trace_capacity = None;
      retry = default_retry;
      faults = Faults.none;
      delta = true;
      baseline_cache = 4;
      detector = None;
      replication = 0;
      legacy_scan_sched = false;
      forward_ttl_s = 0.25;
      balance = Balance.Config.default;
    }
end

(* The unified migration API: every initiator — the explicit CLI
   migration, the resilient retry path, resurrection, serve re-homing
   and the placement policy engine — builds one [Move.request] and
   calls [move], so fencing, forwarder install, mailbox drain and
   baseline negotiation behave identically regardless of who asked.
   [reason] is accounting only (per-reason counters); it never changes
   protocol behaviour, which is what the trace-equivalence suite
   asserts. *)
module Move = struct
  type reason = Explicit | Policy | Resurrect | Rehome

  type subject =
    | Running of int (* live process, by pid: pack/ship/resume *)
    | Image of { path : string; rank : int option; seed : int }
      (* checkpoint image on shared storage: the resurrection path *)

  type request = {
    mv_subject : subject;
    mv_dest : int; (* destination node id *)
    mv_reason : reason;
    mv_retry : Config.retry option; (* None = the cluster's policy *)
  }

  type outcome = {
    mv_pid : int; (* the (successor) pid now running at [mv_dest] *)
    mv_report : migration_report option; (* None for [Image] subjects *)
  }

  let request ?retry ~reason subject ~dest =
    { mv_subject = subject; mv_dest = dest; mv_reason = reason;
      mv_retry = retry }
end

(* Incremental-checkpoint chain state for one storage path: the image the
   NEXT delta segment would patch (the last one written into the chain)
   and how many [path.dN] segments exist on the store. *)
type ckpt_chain = {
  mutable cc_digest : string;
  mutable cc_image : Migrate.Wire.image;
  mutable cc_len : int;
}

(* A chain longer than this is rewritten in full: resurrection replays
   every segment, so unbounded chains would trade write bytes for
   unbounded recovery time. *)
let max_chain_len = 8

type t = {
  nodes : node array;
  net : Simnet.t;
  storage : Storage.t;
  mutable entries : entry list; (* newest first *)
  by_pid : (int, entry) Hashtbl.t;
  ranks : (int, int) Hashtbl.t; (* rank -> pid *)
  (* rank -> current incarnation epoch (absent = 0).  Bumped by every
     resurrection under that rank; entries carrying an older epoch are
     fenced.  The table is the cluster-level ground truth a real system
     would hold in its membership/coordination service. *)
  epochs : (int, int) Hashtbl.t;
  detector : Detector.t option;
  (* rank-level mailboxes: messages are addressed to RANKS, and the queue
     survives the death of the process currently holding the rank (a
     resurrected or migrated successor inherits it, like DEMOS/MP's
     forwarding stubs).  Unranked processes get private mailboxes. *)
  rank_mailboxes : (int, Mpi.mailbox) Hashtbl.t;
  (* the process registry: laddr -> current rank, plus the bounded-TTL
     forwarders left on vacated ranks (ROADMAP item 1) *)
  registry : Registry.t;
  (* fresh ranks for re-homed services, far above user-assigned ones *)
  mutable next_dyn_rank : int;
  forward_ttl_s : float;
  (* (sender pid, sender level uid) -> dependent (receiver pid, receiver uid) *)
  deps : (int * int, (int * int) list ref) Hashtbl.t;
  (* distributed-speculation transactions: the coordinator/participant
     table the epoch-fenced commit protocol runs over.  Cluster-global —
     a transaction survives the migration of any of its processes. *)
  dspec : Dspec.t;
  mutable next_pid : int;
  trusted : bool;
  quantum : int;
  scan_sched : bool; (* legacy linear-scan scheduler (see Config) *)
  retry : Config.retry;
  faults : Faults.t;
  mutable hop_seq : int; (* envelope id generator for migration hops *)
  obj_store : (int, Bytes.t) Hashtbl.t; (* Figure 1's account objects *)
  (* speculative object writes: (writer pid, level uid) -> saved old
     contents, newest first.  The object store participates in the
     writer's speculation: rollback restores these, commit folds them
     into the parent level (exactly the heap's checkpoint-record
     discipline, applied to external state). *)
  obj_undo : (int * int, (int * Bytes.t option) list ref) Hashtbl.t;
  (* MojaveFS-lite: per-speculation-level undo log for shared-store files
     (path -> previous contents), mirroring the object store's *)
  fs_undo : (int * int, (string * string option) list ref) Hashtbl.t;
  mutable obj_fail_prob : float;
  mutable migrations : migration_record list;
  (* observability: the typed event trace and the metrics registry.
     Events carry SIMULATED time; counters aggregate what the trace
     itemises.  The legacy [events] string log is a rendered view over
     the trace (see [events]). *)
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t;
  c_rounds : Obs.Metrics.counter;
  c_quanta : Obs.Metrics.counter;
  c_migrations_ok : Obs.Metrics.counter;
  c_migrations_failed : Obs.Metrics.counter;
  c_migration_cache_hits : Obs.Metrics.counter;
  c_checkpoints : Obs.Metrics.counter;
  c_node_failures : Obs.Metrics.counter;
  c_resurrections : Obs.Metrics.counter;
  c_migrate_retries : Obs.Metrics.counter;
  c_fence_rejections : Obs.Metrics.counter;
  (* delta migration: whether it is enabled, the per-path checkpoint
     chains, and the byte/outcome accounting the benches read *)
  delta : bool;
  ckpt_chains : (string, ckpt_chain) Hashtbl.t;
  c_bytes_full : Obs.Metrics.counter;
  c_bytes_delta : Obs.Metrics.counter;
  c_delta_hits : Obs.Metrics.counter;
  c_delta_misses : Obs.Metrics.counter;
  c_delta_fallbacks : Obs.Metrics.counter;
  g_delta_hit_rate : Obs.Metrics.gauge;
  (* registry counters: service moves, forwarded relays, sender rebinds
     and TTL expiries, plus the request-latency histogram the serving
     workloads (Gridapp T1) feed through the lat_us extern *)
  c_svc_moves : Obs.Metrics.counter;
  c_svc_forwarded : Obs.Metrics.counter;
  c_svc_rebinds : Obs.Metrics.counter;
  c_svc_expired : Obs.Metrics.counter;
  h_app_latency : Obs.Metrics.histogram;
  h_backoff_s : Obs.Metrics.histogram;
  h_migrate_bytes : Obs.Metrics.histogram;
  h_pack_s : Obs.Metrics.histogram;
  h_transfer_s : Obs.Metrics.histogram;
  h_compile_s : Obs.Metrics.histogram;
  (* per-reason accounting for the unified move API *)
  c_move_explicit : Obs.Metrics.counter;
  c_move_policy : Obs.Metrics.counter;
  c_move_resurrect : Obs.Metrics.counter;
  c_move_rehome : Obs.Metrics.counter;
  (* the placement policy engine: None when disabled.  [bal_busy0] and
     [bal_cycles0] remember the previous tick's busy-seconds / charged
     cycles so a tick measures rates over its own period; a pid absent
     from [bal_cycles0] (fresh successor) measures zero for one period,
     which doubles as anti-ping-pong damping for just-moved services. *)
  balance : Balance.t option;
  mutable bal_prev_at : float;
  mutable bal_next_at : float;
  bal_busy0 : float array;
  bal_cycles0 : (int, int) Hashtbl.t;
  mutable bal_last_move_s : float;
  c_bal_ticks : Obs.Metrics.counter;
  c_bal_proposals : Obs.Metrics.counter;
  c_bal_moves : Obs.Metrics.counter;
  g_bal_spread : Obs.Metrics.gauge;
  g_bal_last_move : Obs.Metrics.gauge;
  (* time base of the quantum currently executing (single-threaded):
     lets extern handlers compute the running process's precise local
     time even mid-quantum *)
  mutable cur_base : float;
  mutable cur_cycles0 : int;
  mutable cur_pid : int; (* pid of the process in that quantum, or -1 *)
}

let msg_none = Mpi.msg_none
let msg_roll = Mpi.msg_roll

(* svc_send's typed "recipient moved" code (-3): the cached binding led
   to a vacated rank whose forwarder TTL has passed.  The message was
   NOT sent — the caller drops its cache and retries, re-resolving
   through the registry.  Never a silent drop. *)
let msg_moved = -3

(* ------------------------------------------------------------------ *)
(* Externs available to cluster processes                              *)
(* ------------------------------------------------------------------ *)

let extern_signatures_list : (string * (Fir.Types.ty list * Fir.Types.ty)) list
    =
  let open Fir.Types in
  [
    "msg_send", ([ Tint; Tint; Tptr Tfloat; Tint ], Tint);
    "msg_try_recv", ([ Tint; Tint; Tptr Tfloat; Tint ], Tint);
    "msg_send_int", ([ Tint; Tint; Tptr Tint; Tint ], Tint);
    "msg_try_recv_int", ([ Tint; Tint; Tptr Tint; Tint ], Tint);
    (* location-transparent messaging: sends by logical address, the
       wildcard receive a mobile service needs (its clients' ranks are
       whatever the registry said at their send time), and the
       request-latency probe the serving benches feed *)
    "svc_send", ([ Tint; Tint; Tptr Tfloat; Tint ], Tint);
    "svc_resolve", ([ Tint ], Tint);
    "msg_try_recv_any", ([ Tint; Tptr Tfloat; Tint ], Tint);
    "lat_us", ([ Tint ], Tunit);
    "rank", ([], Tint);
    "sim_now_us", ([], Tint);
    "obj_read", ([ Tint; Tptr Tint; Tint ], Tint);
    "obj_write", ([ Tint; Tptr Tint; Tint ], Tint);
    (* MojaveFS-lite (the paper's "speculative I/O" future work,
       Section 7): byte files on the shared store whose writes join the
       writer's speculation, so "normal file I/O operations" are usable
       inside a speculation and roll back with it *)
    "fs_write", ([ Traw; Tptr Tint; Tint ], Tint);
    "fs_read", ([ Traw; Tptr Tint; Tint ], Tint);
    "fs_size", ([ Traw ], Tint);
    (* distributed speculation: open a transaction rooted at the current
       level, run the epoch-fenced commit protocol over everyone who
       joined, and test whether anyone still depends on this process's
       current level (the client's pre-commit barrier) *)
    "dspec_open", ([], Tint);
    "dspec_commit", ([ Tint ], Tint);
    "spec_pending", ([], Tint);
  ]

let extern_signatures : Fir.Typecheck.extern_lookup =
 fun name ->
  match List.assoc_opt name extern_signatures_list with
  | Some s -> Some s
  | None -> Extern.signature_lookup [] name

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create_cfg (cfg : Config.t) =
  let net = match cfg.Config.net with Some n -> n | None -> Simnet.create () in
  let nodes =
    Array.init cfg.Config.node_count (fun i ->
        let arch = cfg.Config.arches.(i mod Array.length cfg.Config.arches) in
        (* each node's daemon owns its own bounded recompilation cache
           (code_cache <= 0 disables caching cluster-wide) *)
        let cache =
          if cfg.Config.code_cache > 0 then
            Some (Migrate.Codecache.create ~capacity:cfg.Config.code_cache ())
          else None
        in
        {
          node_id = i;
          node_name = Printf.sprintf "node%d" i;
          node_arch = arch;
          alive = true;
          daemon =
            Migrate.Server.create_cfg
              {
                Migrate.Server.Config.default with
                trusted = cfg.Config.trusted;
                extern_signatures;
                first_pid = 0;
                cache;
                baseline_cache =
                  (if cfg.Config.delta then
                     max 0 cfg.Config.baseline_cache
                   else 0);
              }
              arch;
          busy_seconds = 0.0;
          clock = 0.0;
          residents = [];
        })
  in
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_rounds = Obs.Metrics.counter metrics "sched.rounds" in
  let c_quanta = Obs.Metrics.counter metrics "sched.quanta" in
  let c_migrations_ok =
    Obs.Metrics.counter metrics "cluster.migrations_ok"
  in
  let c_migrations_failed =
    Obs.Metrics.counter metrics "cluster.migrations_failed"
  in
  let c_migration_cache_hits =
    Obs.Metrics.counter metrics "cluster.migration_cache_hits"
  in
  let c_checkpoints = Obs.Metrics.counter metrics "cluster.checkpoints" in
  let c_node_failures =
    Obs.Metrics.counter metrics "cluster.node_failures"
  in
  let c_resurrections =
    Obs.Metrics.counter metrics "cluster.resurrections"
  in
  let c_migrate_retries =
    Obs.Metrics.counter metrics "migrate.retries"
  in
  let c_fence_rejections =
    Obs.Metrics.counter metrics "fence.rejections"
  in
  let c_bytes_full = Obs.Metrics.counter metrics "migrate.bytes_full" in
  let c_bytes_delta = Obs.Metrics.counter metrics "migrate.bytes_delta" in
  let c_delta_hits = Obs.Metrics.counter metrics "migrate.delta_hits" in
  let c_delta_misses = Obs.Metrics.counter metrics "migrate.delta_misses" in
  let c_delta_fallbacks =
    Obs.Metrics.counter metrics "migrate.delta_fallbacks"
  in
  let g_delta_hit_rate =
    Obs.Metrics.gauge metrics "migrate.delta_hit_rate"
  in
  let c_svc_moves = Obs.Metrics.counter metrics "registry.moves" in
  let c_svc_forwarded = Obs.Metrics.counter metrics "registry.forwarded" in
  let c_svc_rebinds = Obs.Metrics.counter metrics "registry.rebinds" in
  let c_svc_expired = Obs.Metrics.counter metrics "registry.expired" in
  let h_app_latency =
    Obs.Metrics.histogram metrics "app.latency_seconds"
  in
  let h_backoff_s =
    Obs.Metrics.histogram metrics "migrate.backoff_seconds"
  in
  let h_migrate_bytes =
    Obs.Metrics.histogram metrics "cluster.migrate_bytes"
  in
  let h_pack_s = Obs.Metrics.histogram metrics "cluster.pack_seconds" in
  let h_transfer_s =
    Obs.Metrics.histogram metrics "cluster.transfer_seconds"
  in
  let h_compile_s =
    Obs.Metrics.histogram metrics "cluster.compile_seconds"
  in
  let c_move_explicit = Obs.Metrics.counter metrics "move.explicit" in
  let c_move_policy = Obs.Metrics.counter metrics "move.policy" in
  let c_move_resurrect = Obs.Metrics.counter metrics "move.resurrect" in
  let c_move_rehome = Obs.Metrics.counter metrics "move.rehome" in
  let c_bal_ticks = Obs.Metrics.counter metrics "balance.ticks" in
  let c_bal_proposals = Obs.Metrics.counter metrics "balance.proposals" in
  let c_bal_moves = Obs.Metrics.counter metrics "balance.moves" in
  let g_bal_spread = Obs.Metrics.gauge metrics "balance.spread" in
  let g_bal_last_move = Obs.Metrics.gauge metrics "balance.last_move_s" in
  (* the fault runtime draws from (plan seed, cluster seed): the same
     plan is reproducible per cluster seed, and seed sweeps (F1) still
     vary their storage-fault draws *)
  let faults =
    Faults.create ~salt:cfg.Config.seed ~metrics cfg.Config.faults
  in
  let storage =
    Storage.create ~replication:cfg.Config.replication
      ~nodes:cfg.Config.node_count ~faults ~metrics net
  in
  let detector =
    Option.map
      (fun dcfg ->
        Detector.create ~metrics ~nodes:cfg.Config.node_count dcfg)
      cfg.Config.detector
  in
  let dspec = Dspec.create ~metrics () in
  let tracer = Obs.Trace.create ?capacity:cfg.Config.trace_capacity () in
  (* scripted partition windows are part of the run's story: put them in
     the trace up front, stamped with their opening times *)
  List.iter
    (fun (w : Faults.partition) ->
      Obs.Trace.record tracer ~time:w.Faults.p_from ~node:w.Faults.pa
        (Obs.Trace.Link_partition
           {
             peer_a = w.Faults.pa;
             peer_b = w.Faults.pb;
             until_s = w.Faults.p_until;
           }))
    (List.rev cfg.Config.faults.Faults.f_partitions);
  {
    nodes;
    net;
    storage;
    entries = [];
    by_pid = Hashtbl.create 32;
    ranks = Hashtbl.create 32;
    epochs = Hashtbl.create 8;
    detector;
    rank_mailboxes = Hashtbl.create 32;
    registry = Registry.create ();
    next_dyn_rank = 1 lsl 16;
    forward_ttl_s = cfg.Config.forward_ttl_s;
    deps = Hashtbl.create 32;
    dspec;
    next_pid = 1;
    trusted = cfg.Config.trusted;
    quantum = cfg.Config.quantum;
    scan_sched = cfg.Config.legacy_scan_sched;
    retry = cfg.Config.retry;
    faults;
    hop_seq = 0;
    obj_store = Hashtbl.create 8;
    obj_undo = Hashtbl.create 8;
    fs_undo = Hashtbl.create 8;
    obj_fail_prob = 0.0;
    migrations = [];
    tracer;
    metrics;
    c_rounds;
    c_quanta;
    c_migrations_ok;
    c_migrations_failed;
    c_migration_cache_hits;
    c_checkpoints;
    c_node_failures;
    c_resurrections;
    c_migrate_retries;
    c_fence_rejections;
    delta = cfg.Config.delta;
    ckpt_chains = Hashtbl.create 8;
    c_bytes_full;
    c_bytes_delta;
    c_delta_hits;
    c_delta_misses;
    c_delta_fallbacks;
    g_delta_hit_rate;
    c_svc_moves;
    c_svc_forwarded;
    c_svc_rebinds;
    c_svc_expired;
    h_app_latency;
    h_backoff_s;
    h_migrate_bytes;
    h_pack_s;
    h_transfer_s;
    h_compile_s;
    c_move_explicit;
    c_move_policy;
    c_move_resurrect;
    c_move_rehome;
    balance =
      (if cfg.Config.balance.Balance.Config.enabled then
         Some (Balance.create cfg.Config.balance)
       else None);
    bal_prev_at = 0.0;
    bal_next_at = cfg.Config.balance.Balance.Config.period_s;
    bal_busy0 = Array.make cfg.Config.node_count 0.0;
    bal_cycles0 = Hashtbl.create 32;
    bal_last_move_s = 0.0;
    c_bal_ticks;
    c_bal_proposals;
    c_bal_moves;
    g_bal_spread;
    g_bal_last_move;
    cur_base = 0.0;
    cur_cycles0 = 0;
    cur_pid = -1;
  }
  |> fun t ->
  (* read-repair events belong in the cluster trace: stamp them with the
     cluster-wide clock at the moment of the repairing read *)
  Storage.set_on_repair t.storage (fun ~path ~replicas ->
      let time =
        Array.fold_left (fun acc n -> Float.max acc n.clock) 0.0 t.nodes
      in
      Obs.Trace.record t.tracer ~time
        (Obs.Trace.Storage_repair { path; replicas }));
  t

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: no node %d" id)
  else t.nodes.(id)

let node_by_name t name =
  Array.to_list t.nodes
  |> List.find_opt (fun n -> String.equal n.node_name name)

let entry_of_pid t pid = Hashtbl.find_opt t.by_pid pid

let entry_of_rank t rank =
  match Hashtbl.find_opt t.ranks rank with
  | Some pid -> entry_of_pid t pid
  | None -> None

(* cluster-wide time: the farthest local clock (completion time of the
   whole system when quiescent) *)
let now t =
  Array.fold_left (fun acc n -> max acc n.clock) (Simnet.now t.net) t.nodes

(* precise local time of the process currently executing a quantum *)
let effective_now t (proc : Process.t) =
  t.cur_base
  +. Arch.seconds proc.Process.arch (proc.Process.cycles - t.cur_cycles0)

let charge_seconds (proc : Process.t) s =
  proc.Process.cycles <-
    proc.Process.cycles
    + int_of_float (s *. float_of_int proc.Process.arch.Arch.clock_mhz *. 1e6)

(* Best available simulated time for an event attributed to [e]: the
   precise mid-quantum time when [e]'s process is the one currently
   executing, its node's local clock otherwise (cascaded rollbacks,
   host-initiated failure/recovery). *)
let entry_time t (e : entry) =
  if e.proc.Process.pid = t.cur_pid then effective_now t e.proc
  else (node t e.node_id).clock

let entry_rank (e : entry) = match e.rank with Some r -> r | None -> -1

let emit t ~time ?node ?pid ?rank kind =
  Obs.Trace.record t.tracer ~time ?node ?pid ?rank kind

let emit_entry t (e : entry) kind =
  Obs.Trace.record t.tracer ~time:(entry_time t e) ~node:e.node_id
    ~pid:e.proc.Process.pid ~rank:(entry_rank e) kind

(* ------------------------------------------------------------------ *)
(* Incarnation epochs and fencing                                      *)
(* ------------------------------------------------------------------ *)

let rank_epoch t rank =
  match Hashtbl.find_opt t.epochs rank with Some e -> e | None -> 0

(* An entry is stale when a resurrection has bumped its rank's epoch past
   the one the entry carries: it is a zombie incarnation of a rank whose
   authority has moved on, and it must not be allowed to interact. *)
let is_stale t (e : entry) =
  match e.rank with
  | None -> false
  | Some r -> e.epoch < rank_epoch t r

(* Fence a stale incarnation at an interaction point: record the typed
   rejection and halt the zombie so exactly one copy of the rank keeps
   running.  Idempotent — a fenced process stays fenced. *)
let fence t (e : entry) ~what =
  let current = match e.rank with Some r -> rank_epoch t r | None -> 0 in
  Obs.Metrics.incr t.c_fence_rejections;
  emit_entry t e
    (Obs.Trace.Fenced { stale_epoch = e.epoch; current_epoch = current; what });
  (match e.proc.Process.status with
  | Process.Exited _ | Process.Trapped _ -> ()
  | Process.Running | Process.Migrating _ ->
    e.proc.Process.status <-
      Process.Trapped
        (Printf.sprintf "fenced: stale incarnation epoch %d (current %d)"
           e.epoch current));
  e.proc.Process.waiting <- false

(* ------------------------------------------------------------------ *)
(* Externs                                                             *)
(* ------------------------------------------------------------------ *)


(* Record that [receiver] consumed a message sent from inside [sender]'s
   speculation: the receiver joins that speculation. *)
let add_dependency t ~sender ~receiver =
  let deps =
    match Hashtbl.find_opt t.deps sender with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add t.deps sender l;
      l
  in
  if not (List.mem receiver !deps) then deps := receiver :: !deps;
  (* if the joined level is an open distributed transaction's root
     region, the receiver is now a participant: record it at its
     CURRENT incarnation epoch — the prepare round revalidates that
     epoch, so a later resurrection voids this ack *)
  match
    Dspec.open_with_root t.dspec ~coord_pid:(fst sender)
      ~root_uid:(snd sender)
  with
  | None -> ()
  | Some txn when fst receiver <> fst sender -> (
    match entry_of_pid t (fst receiver) with
    | None -> ()
    | Some e ->
      Dspec.register txn ~pid:(fst receiver)
        ~rank:(match e.rank with Some r -> r | None -> -1)
        ~epoch:e.epoch)
  | Some _ -> ()

(* Roll a process back because a speculation it depends on failed.  If the
   joined level is gone (committed or already rolled back) fall back to the
   process's oldest open level; a receiver with no speculation to undo is
   unrecoverable and traps (it consumed state that never happened). *)
let rec force_rollback t ~pid ~uid ~code =
  match entry_of_pid t pid with
  | None -> ()
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Exited _ | Process.Trapped _ -> ()
    | Process.Running | Process.Migrating _ -> (
      let spec = entry.proc.Process.spec in
      let level =
        match Spec.Engine.level_of_unique spec uid with
        | Some l -> Some l
        | None -> if Spec.Engine.depth spec > 0 then Some 1 else None
      in
      match level with
      | None ->
        emit_entry t entry (Obs.Trace.Forced_rollback { level = -1 });
        entry.proc.Process.status <-
          Process.Trapped "unrecoverable speculative dependency"
      | Some level ->
        (* if the process was parked at a migration point, cancel it *)
        (match entry.proc.Process.status with
        | Process.Migrating _ -> Process.migration_failed entry.proc
        | Process.Running | Process.Exited _ | Process.Trapped _ -> ());
        (* do_rollback fires the engine's on_rollback hook, which cascades
           to this process's own dependents transitively *)
        Process.do_rollback entry.proc ~level ~code;
        entry.proc.Process.waiting <- false;
        emit_entry t entry (Obs.Trace.Forced_rollback { level })))

(* Undo everything that depended on the given (now rolled back or dead)
   speculation levels of [sender_pid]: discard their unconsumed messages,
   then roll back their consumers.  Returns how many queued messages the
   discard un-delivered — the mailbox-compensation count a distributed
   abort reports. *)
and cascade t ~sender_pid ~uids ~code =
  (* undo the rolled-back levels' external object writes (newest level
     first, so the oldest saved contents win) *)
  List.iter
    (fun uid ->
      (match Hashtbl.find_opt t.obj_undo (sender_pid, uid) with
      | None -> ()
      | Some log ->
        Hashtbl.remove t.obj_undo (sender_pid, uid);
        List.iter
          (fun (obj, old) ->
            match old with
            | Some bytes -> Hashtbl.replace t.obj_store obj bytes
            | None -> Hashtbl.remove t.obj_store obj)
          (List.rev !log));
      match Hashtbl.find_opt t.fs_undo (sender_pid, uid) with
      | None -> ()
      | Some log ->
        Hashtbl.remove t.fs_undo (sender_pid, uid);
        List.iter
          (fun (path, old) ->
            match old with
            | Some data -> ignore (Storage.write t.storage path data)
            | None -> Storage.remove t.storage path)
          (List.rev !log))
    uids;
  let discarded =
    List.fold_left
      (fun acc (e : entry) ->
        acc + Mpi.discard_speculative e.mailbox ~uids ~sender_pid)
      0 t.entries
  in
  List.iter
    (fun uid ->
      match Hashtbl.find_opt t.deps (sender_pid, uid) with
      | None -> ()
      | Some dependents ->
        let ds = !dependents in
        Hashtbl.remove t.deps (sender_pid, uid);
        List.iter
          (fun (rpid, ruid) ->
            if rpid <> sender_pid then
              force_rollback t ~pid:rpid ~uid:ruid ~code)
          ds)
    uids;
  discarded

(* Consume every moved notice now due on the sender's clock, rebinding
   its cached laddr bindings (oldest first, so the newest notice wins a
   double migration).  This is how "forwarding chains collapse as
   notices propagate": once a sender rebinds, its traffic goes direct
   and the forwarder stops relaying for it. *)
let consume_notices t (entry : entry) ~now =
  match entry.notices with
  | [] -> ()
  | notices ->
    let due, pending = List.partition (fun (at, _, _) -> at <= now) notices in
    if due <> [] then begin
      entry.notices <- pending;
      List.iter
        (fun (_, laddr, new_rank) ->
          match Hashtbl.find_opt entry.bindings laddr with
          | Some r when r = new_rank -> ()
          | Some _ | None ->
            Hashtbl.replace entry.bindings laddr new_rank;
            Obs.Metrics.incr t.c_svc_rebinds;
            emit_entry t entry
              (Obs.Trace.Recipient_moved { laddr; new_rank }))
        (List.rev due)
    end

(* The shared send path: enqueue [read_payload ()] to [dst_rank]'s
   mailbox under the fault plan.  [extra_delay_s] is the relay cost a
   forwarded send pays on top of the direct link time (one
   store-and-forward traversal per chain hop). *)
let send_payload t (entry : entry) (proc : Process.t) ~dst_rank ~tag
    ~read_payload ~extra_delay_s =
  match Hashtbl.find_opt t.rank_mailboxes dst_rank with
  | None -> Value.Vint (-1)
  | Some dst_mailbox ->
    let payload = read_payload () in
    let len = Array.length payload in
    let bytes = 8 * len in
    Simnet.record_message t.net bytes;
    let send_at = effective_now t proc in
    (* fault decision for this delivery: loss surfaces as link-level
       retransmission delay (never a silent drop — receivers poll),
       partitions delay to their heal time, jitter adds spread, and a
       duplicate enqueues a second copy *)
    let fault =
      Faults.on_message t.faults ~now:send_at ~src:entry.node_id
        ~dst:
          (match entry_of_rank t dst_rank with
          | Some dst -> dst.node_id
          | None -> -1)
    in
    let msg =
      {
        Mpi.msg_src_rank = (match entry.rank with Some r -> r | None -> -1);
        msg_src_pid = proc.Process.pid;
        msg_tag = tag;
        msg_payload = payload;
        msg_deliver_at =
          send_at +. Simnet.message_seconds t.net bytes
          +. fault.Faults.d_delay_s +. extra_delay_s;
        msg_spec =
          (match Spec.Engine.current_unique proc.Process.spec with
          | Some uid -> Some (proc.Process.pid, uid)
          | None -> None);
        msg_src_epoch = entry.epoch;
      }
    in
    if fault.Faults.d_dropped then begin
      (* undeliverable (permanently partitioned link): the sender does
         not know — exactly the paper's fire-and-forget send *)
      emit_entry t entry (Obs.Trace.Msg_drop { dst = dst_rank; tag });
      Value.Vint 0
    end
    else begin
      Mpi.enqueue dst_mailbox msg;
      (* a message sent from inside an open transaction's root region
         recruits the rank's current holder as a participant, pinned at
         the epoch it has NOW (consumption may confirm it later via
         [add_dependency], but the wire obligation starts here) *)
      (match msg.Mpi.msg_spec with
      | None -> ()
      | Some (spid, suid) -> (
        match
          Dspec.open_with_root t.dspec ~coord_pid:spid ~root_uid:suid
        with
        | None -> ()
        | Some txn -> (
          match entry_of_rank t dst_rank with
          | Some dst when dst.proc.Process.pid <> spid ->
            Dspec.register txn ~pid:dst.proc.Process.pid ~rank:dst_rank
              ~epoch:dst.epoch
          | Some _ | None -> ())));
      if fault.Faults.d_duplicate then begin
        Mpi.enqueue dst_mailbox msg;
        emit_entry t entry (Obs.Trace.Msg_dup { dst = dst_rank; tag })
      end;
      emit_entry t entry
        (Obs.Trace.Msg_send { dst = dst_rank; tag; cells = len });
      (* affinity piggyback: a delivered send is one unit of attraction
         from this process toward the destination rank *)
      (match t.balance with
      | Some b -> Balance.note_comm b ~pid:proc.Process.pid ~peer_rank:dst_rank
      | None -> ());
      (* wake the current holder of the rank, if any *)
      (match entry_of_rank t dst_rank with
      | Some dst -> dst.proc.Process.waiting <- false
      | None -> ());
      Value.Vint 0
    end

(* The rank mailbox is shared with any zombie predecessor of the rank:
   purge traffic a stale incarnation enqueued before it was fenced, so
   the successor never consumes superseded state. *)
let purge_stale_traffic t (entry : entry) =
  if Hashtbl.length t.epochs > 0 then begin
    let stale_seen = ref (-1, -1) in
    let dropped =
      Mpi.discard_stale entry.mailbox ~stale:(fun m ->
          let r = m.Mpi.msg_src_rank in
          if r >= 0 && m.Mpi.msg_src_epoch < rank_epoch t r then begin
            stale_seen := m.Mpi.msg_src_epoch, rank_epoch t r;
            true
          end
          else false)
    in
    if dropped > 0 then begin
      let stale_epoch, current_epoch = !stale_seen in
      Obs.Metrics.incr ~by:dropped t.c_fence_rejections;
      emit_entry t entry
        (Obs.Trace.Fenced { stale_epoch; current_epoch; what = "stale_msg" })
    end
  end

let cluster_extern t (entry : entry) : Process.handler =
 fun proc name args ->
  let heap = proc.Process.heap in
  let read_cells ptr len =
    let idx, off = Vm.Interp.as_ptr ptr in
    Array.init len (fun k -> Heap.read heap idx (off + k))
  in
  let write_cells ptr payload n =
    let idx, off = Vm.Interp.as_ptr ptr in
    for k = 0 to n - 1 do
      Heap.write heap idx (off + k) payload.(k)
    done
  in
  match name, args with
  | ("msg_send" | "msg_send_int"), [ Value.Vint dst_rank; Value.Vint tag;
                                     (Value.Vptr _ as ptr); Value.Vint len ]
    ->
    if len < 0 then raise (Process.Extern_failure "msg_send: negative length");
    if is_stale t entry then begin
      (* zombie incarnation: reject the send and halt the process *)
      fence t entry ~what:"send";
      Value.Vint msg_roll
    end
    else
      send_payload t entry proc ~dst_rank ~tag
        ~read_payload:(fun () -> read_cells ptr len)
        ~extra_delay_s:0.0
  | "svc_send", [ Value.Vint laddr; Value.Vint tag; (Value.Vptr _ as ptr);
                  Value.Vint len ] -> (
    if len < 0 then raise (Process.Extern_failure "svc_send: negative length");
    if is_stale t entry then begin
      (* the registry never weakens fencing: a zombie's sends are
         rejected exactly as rank-addressed ones are *)
      fence t entry ~what:"send";
      Value.Vint msg_roll
    end
    else begin
      let now_s = effective_now t proc in
      (* due moved notices first: rebind before resolving, so a sender
         that was told about the move goes direct from this call on *)
      consume_notices t entry ~now:now_s;
      let bound =
        match Hashtbl.find_opt entry.bindings laddr with
        | Some r -> Some r
        | None -> (
          match Registry.lookup t.registry laddr with
          | Some r ->
            Hashtbl.replace entry.bindings laddr r;
            Some r
          | None -> None)
      in
      match bound with
      | None -> Value.Vint (-1) (* unknown laddr: like an unknown rank *)
      | Some r -> (
        match Registry.resolve t.registry ~now:now_s r with
        | Registry.Direct final ->
          send_payload t entry proc ~dst_rank:final ~tag
            ~read_payload:(fun () -> read_cells ptr len)
            ~extra_delay_s:0.0
        | Registry.Forwarded { final; hops } ->
          (* relay through the vacated rank(s): the message pays one
             extra store-and-forward traversal per chain hop, and the
             forwarder owes the sender a Recipient_moved notice (due
             one link time from now — the notice travels back) *)
          let relay_s =
            float_of_int hops *. Simnet.message_seconds t.net (8 * len)
          in
          Obs.Metrics.incr t.c_svc_forwarded;
          emit_entry t entry
            (Obs.Trace.Msg_forward
               { laddr; from_rank = r; to_rank = final; hops });
          entry.notices <-
            (now_s +. Simnet.message_seconds t.net 32, laddr, final)
            :: entry.notices;
          send_payload t entry proc ~dst_rank:final ~tag
            ~read_payload:(fun () -> read_cells ptr len)
            ~extra_delay_s:relay_s
        | Registry.Expired rank ->
          (* the forwarder is gone: typed error, never a silent drop.
             Dropping the cached binding makes the retry re-resolve
             through the registry's authoritative table *)
          Hashtbl.remove entry.bindings laddr;
          Obs.Metrics.incr t.c_svc_expired;
          emit_entry t entry (Obs.Trace.Forward_expired { laddr; rank });
          Value.Vint msg_moved)
    end)
  | "svc_resolve", [ Value.Vint laddr ] -> (
    (* authoritative resolve: refreshes the caller's cached binding *)
    match Registry.lookup t.registry laddr with
    | Some r ->
      Hashtbl.replace entry.bindings laddr r;
      Value.Vint r
    | None -> Value.Vint (-1))
  | "lat_us", [ Value.Vint us ] ->
    Obs.Metrics.observe t.h_app_latency (float_of_int us /. 1e6);
    Value.Vunit
  | ("msg_try_recv" | "msg_try_recv_int"),
    [ Value.Vint src_rank; Value.Vint tag; (Value.Vptr _ as ptr);
      Value.Vint maxlen ] -> (
    if is_stale t entry then begin
      fence t entry ~what:"recv";
      Value.Vint msg_roll
    end
    else begin
    purge_stale_traffic t entry;
    match
      Mpi.try_recv entry.mailbox ~now:(effective_now t proc) ~src_rank ~tag
    with
    | Mpi.Roll ->
      entry.parked_on <- None;
      emit_entry t entry (Obs.Trace.Msg_roll { src = src_rank });
      Value.Vint msg_roll
    | Mpi.None_yet ->
      proc.Process.waiting <- true;
      entry.parked_on <- Some (src_rank, tag);
      Value.Vint msg_none
    | Mpi.Received m ->
      entry.parked_on <- None;
      let n = min maxlen (Array.length m.Mpi.msg_payload) in
      emit_entry t entry
        (Obs.Trace.Msg_recv { src = src_rank; tag; cells = n });
      write_cells ptr m.Mpi.msg_payload n;
      (match m.Mpi.msg_spec with
      | Some (spid, uid) when spid <> proc.Process.pid ->
        (* join the sender's speculation *)
        let ruid =
          match Spec.Engine.current_unique proc.Process.spec with
          | Some u -> u
          | None -> -1
        in
        add_dependency t ~sender:(spid, uid)
          ~receiver:(proc.Process.pid, ruid)
      | Some _ | None -> ());
      Value.Vint n
    end)
  | "msg_try_recv_any", [ Value.Vint tag; (Value.Vptr _ as ptr);
                          Value.Vint maxlen ] -> (
    if is_stale t entry then begin
      fence t entry ~what:"recv";
      Value.Vint msg_roll
    end
    else begin
    purge_stale_traffic t entry;
    (* wildcard receive: a mobile service cannot know its clients'
       ranks ahead of time (and a client cannot know which rank its
       reply comes from after the service moved), so it matches on tag
       alone.  Parking records src -1: the scheduler wakes it for any
       delivery with this tag. *)
    match Mpi.try_recv_any entry.mailbox ~now:(effective_now t proc) ~tag with
    | Mpi.Roll ->
      entry.parked_on <- None;
      emit_entry t entry (Obs.Trace.Msg_roll { src = -1 });
      Value.Vint msg_roll
    | Mpi.None_yet ->
      proc.Process.waiting <- true;
      entry.parked_on <- Some (-1, tag);
      Value.Vint msg_none
    | Mpi.Received m ->
      entry.parked_on <- None;
      let n = min maxlen (Array.length m.Mpi.msg_payload) in
      emit_entry t entry
        (Obs.Trace.Msg_recv { src = m.Mpi.msg_src_rank; tag; cells = n });
      write_cells ptr m.Mpi.msg_payload n;
      (match m.Mpi.msg_spec with
      | Some (spid, uid) when spid <> proc.Process.pid ->
        let ruid =
          match Spec.Engine.current_unique proc.Process.spec with
          | Some u -> u
          | None -> -1
        in
        add_dependency t ~sender:(spid, uid)
          ~receiver:(proc.Process.pid, ruid)
      | Some _ | None -> ());
      Value.Vint n
    end)
  | "rank", [] ->
    Value.Vint (match entry.rank with Some r -> r | None -> -1)
  | "sim_now_us", [] ->
    Value.Vint (int_of_float (effective_now t proc *. 1e6))
  | "fs_write", [ (Value.Vptr _ as pathp); (Value.Vptr _ as ptr);
                  Value.Vint k ] ->
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    (* a write from inside a speculation is undoable *)
    (match Spec.Engine.current_unique proc.Process.spec with
    | Some uid ->
      let key = proc.Process.pid, uid in
      let log =
        match Hashtbl.find_opt t.fs_undo key with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add t.fs_undo key l;
          l
      in
      if not (List.mem_assoc path !log) then
        log :=
          (path, Option.map fst (Storage.read t.storage path)) :: !log
    | None -> ());
    let cells = read_cells ptr k in
    let data =
      String.init k (fun i ->
          match cells.(i) with
          | Value.Vint b -> Char.chr (b land 0xff)
          | _ -> raise (Process.Extern_failure "fs_write: non-byte cell"))
    in
    charge_seconds proc (Storage.write t.storage path data);
    Value.Vint k
  | "fs_read", [ (Value.Vptr _ as pathp); (Value.Vptr _ as ptr);
                 Value.Vint k ] -> (
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    match Storage.read t.storage path with
    | None -> Value.Vint (-1)
    | Some (data, dt) ->
      charge_seconds proc dt;
      let n = min k (String.length data) in
      let payload =
        Array.init n (fun i -> Value.Vint (Char.code data.[i]))
      in
      write_cells ptr payload n;
      Value.Vint n)
  | "fs_size", [ (Value.Vptr _ as pathp) ] -> (
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    match Storage.size t.storage path with
    | Some n -> Value.Vint n
    | None -> Value.Vint (-1))
  | "obj_read", [ Value.Vint obj; (Value.Vptr _ as ptr); Value.Vint k ] ->
    (* storage faults draw from the seeded fault-plan RNG, never the
       global Random state: reproducible under the cluster seed *)
    if Random.State.float (Faults.rng t.faults) 1.0 < t.obj_fail_prob then
      Value.Vint (-1)
    else begin
      match Hashtbl.find_opt t.obj_store obj with
      | None -> Value.Vint (-1)
      | Some data ->
        let n = min k (Bytes.length data) in
        let payload =
          Array.init n (fun i -> Value.Vint (Char.code (Bytes.get data i)))
        in
        write_cells ptr payload n;
        Value.Vint n
    end
  | "obj_write", [ Value.Vint obj; (Value.Vptr _ as ptr); Value.Vint k ] ->
    if Random.State.float (Faults.rng t.faults) 1.0 < t.obj_fail_prob then
      Value.Vint (-1)
    else begin
      (* a write from inside a speculation is undoable *)
      (match Spec.Engine.current_unique proc.Process.spec with
      | Some uid ->
        let key = proc.Process.pid, uid in
        let log =
          match Hashtbl.find_opt t.obj_undo key with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add t.obj_undo key l;
            l
        in
        if not (List.mem_assoc obj !log) then
          log :=
            (obj, Option.map Bytes.copy (Hashtbl.find_opt t.obj_store obj))
            :: !log
      | None -> ());
      let cells = read_cells ptr k in
      let data =
        match Hashtbl.find_opt t.obj_store obj with
        | Some d when Bytes.length d >= k -> d
        | _ -> Bytes.make (max k 1) '\000'
      in
      Array.iteri
        (fun i v ->
          match v with
          | Value.Vint b -> Bytes.set data i (Char.chr (b land 0xff))
          | _ -> raise (Process.Extern_failure "obj_write: non-byte cell"))
        cells;
      Hashtbl.replace t.obj_store obj data;
      Value.Vint k
    end
  | "dspec_open", [] -> (
    if is_stale t entry then begin
      fence t entry ~what:"dspec";
      Value.Vint msg_roll
    end
    else
      match Spec.Engine.current_unique proc.Process.spec with
      | None ->
        raise
          (Process.Extern_failure "dspec_open: no open speculation level")
      | Some uid ->
        let laddr =
          match entry.rank with
          | None -> -1
          | Some r -> (
            match Registry.laddr_of_rank t.registry r with
            | Some l -> l
            | None -> -1)
        in
        let txn =
          Dspec.open_txn t.dspec ~coord_pid:proc.Process.pid ~root_uid:uid
            ~coord_laddr:laddr
        in
        emit_entry t entry
          (Obs.Trace.Dspec_open { txn = txn.Dspec.x_id; uid });
        Value.Vint txn.Dspec.x_id)
  | "dspec_commit", [ Value.Vint txn_id ] -> (
    if is_stale t entry then begin
      fence t entry ~what:"dspec";
      Value.Vint msg_roll
    end
    else
      match Dspec.find t.dspec txn_id with
      | None ->
        raise
          (Process.Extern_failure
             (Printf.sprintf "dspec_commit: unknown transaction %d" txn_id))
      | Some txn -> (
        if txn.Dspec.x_coord_pid <> proc.Process.pid then
          raise
            (Process.Extern_failure "dspec_commit: not the coordinator");
        match txn.Dspec.x_state with
        | Dspec.Committed -> Value.Vint 0
        | Dspec.Aborted _ -> Value.Vint msg_roll
        | Dspec.Open -> (
          (* prepare round: ask every participant to revalidate its
             recorded incarnation epoch.  The whole round is decided
             synchronously here (the simulation's atomicity unit is the
             quantum) and charged as one RTT per participant plus the
             decision broadcast. *)
          let parts = List.rev txn.Dspec.x_parts in
          let part_pids = List.map (fun p -> p.Dspec.p_pid) parts in
          Obs.Metrics.incr (Dspec.c_prepares t.dspec);
          emit_entry t entry
            (Obs.Trace.Dspec_prepare { txn = txn_id; parts = part_pids });
          charge_seconds proc
            (2.0
            *. Simnet.message_seconds t.net 64
            *. float_of_int (max 1 (List.length parts)));
          let abort reason =
            txn.Dspec.x_state <- Dspec.Aborted reason;
            Obs.Metrics.incr (Dspec.c_aborts t.dspec);
            emit_entry t entry
              (Obs.Trace.Dspec_abort
                 { txn = txn_id; parts = part_pids; reason });
            (* the coordinator's own abort(level) follows in the program:
               its rollback cascade un-delivers the region's in-flight
               messages and rolls every joined participant back *)
            Value.Vint msg_roll
          in
          (* epoch fencing: an ack is valid only while the participant's
             rank still runs the incarnation that joined — a resurrected
             zombie can never speak for a dead one *)
          let stale =
            List.find_opt
              (fun p ->
                p.Dspec.p_rank >= 0
                && p.Dspec.p_epoch < rank_epoch t p.Dspec.p_rank)
              parts
          in
          match stale with
          | Some p ->
            Obs.Metrics.incr (Dspec.c_fence_rejections t.dspec);
            emit_entry t entry
              (Obs.Trace.Dspec_fence
                 {
                   txn = txn_id;
                   part_rank = p.Dspec.p_rank;
                   stale_epoch = p.Dspec.p_epoch;
                   current_epoch = rank_epoch t p.Dspec.p_rank;
                 });
            abort "fence"
          | None ->
            (* a dead participant never acks (epochs only move on
               resurrection, so liveness is checked directly) *)
            if
              List.exists
                (fun p ->
                  match entry_of_pid t p.Dspec.p_pid with
                  | None -> true
                  | Some e -> (
                    match e.proc.Process.status with
                    | Process.Running | Process.Migrating _ -> false
                    | Process.Exited _ | Process.Trapped _ -> true))
                parts
            then abort "participant_dead"
            else begin
              Obs.Metrics.incr
                ~by:(List.length parts)
                (Dspec.c_prepare_acks t.dspec);
              (* all acks are in.  One fault draw per protocol round: a
                 participant may crash between its ack and the commit
                 receipt.  Its rank re-incarnates at a bumped epoch
                 (voiding the ack it gave — same fencing event as a
                 zombie), the live process adopts the new epoch, and the
                 coordinator must treat the round as in-doubt and abort;
                 the abort cascade performs the victim's rollback. *)
              if parts <> [] && Faults.crash_in_commit t.faults then begin
                let victim =
                  List.nth parts
                    (Random.State.int (Faults.rng t.faults)
                       (List.length parts))
                in
                let stale_epoch = victim.Dspec.p_epoch in
                if victim.Dspec.p_rank >= 0 then
                  Hashtbl.replace t.epochs victim.Dspec.p_rank
                    (rank_epoch t victim.Dspec.p_rank + 1);
                (match entry_of_pid t victim.Dspec.p_pid with
                | Some e -> (
                  match e.rank with
                  | Some r -> e.epoch <- rank_epoch t r
                  | None -> ())
                | None -> ());
                Obs.Metrics.incr (Dspec.c_fence_rejections t.dspec);
                emit_entry t entry
                  (Obs.Trace.Dspec_fence
                     {
                       txn = txn_id;
                       part_rank = victim.Dspec.p_rank;
                       stale_epoch;
                       current_epoch =
                         (if victim.Dspec.p_rank >= 0 then
                            rank_epoch t victim.Dspec.p_rank
                          else stale_epoch + 1);
                     });
                abort "crash_in_commit"
              end
              else begin
                (* decision: COMMIT.  The region's in-flight messages
                   stop carrying a join obligation — a receiver that
                   consumes one later must not join a level the commit
                   is about to dissolve. *)
                txn.Dspec.x_state <- Dspec.Committed;
                Obs.Metrics.incr (Dspec.c_commits t.dspec);
                emit_entry t entry
                  (Obs.Trace.Dspec_commit { txn = txn_id; parts = part_pids });
                let uids = [ txn.Dspec.x_root_uid ] in
                List.iter
                  (fun (e : entry) ->
                    ignore
                      (Mpi.settle_speculative e.mailbox ~uids
                         ~sender_pid:proc.Process.pid))
                  t.entries;
                Value.Vint 0
              end
            end)))
  | "spec_pending", [] ->
    (* is this process's current level still joined to an undecided
       foreign region?  The participant's pre-commit barrier: committing
       while the coordinator's fate is open would durably absorb state a
       distributed abort may yet revoke.  The dependency dissolves when
       the coordinator's level commits durably and is force-rolled when
       it aborts — either way the spin ends. *)
    let pid = proc.Process.pid in
    let pending =
      match Spec.Engine.current_unique proc.Process.spec with
      | None -> false
      | Some uid ->
        Hashtbl.fold
          (fun _ dependents acc ->
            acc
            || List.exists
                 (fun (rpid, ruid) -> rpid = pid && ruid = uid)
                 !dependents)
          t.deps false
    in
    Value.Vint (if pending then 1 else 0)
  | ( ( "msg_send" | "msg_send_int" | "msg_try_recv" | "msg_try_recv_int"
      | "msg_try_recv_any" | "svc_send" | "svc_resolve" | "lat_us"
      | "rank" | "sim_now_us" | "obj_read" | "obj_write" | "fs_write"
      | "fs_read" | "fs_size" | "dspec_open" | "dspec_commit"
      | "spec_pending" ),
      _ ) ->
    raise
      (Process.Extern_failure
         (Printf.sprintf "extern %s: bad arguments" name))
  | _ -> raise (Process.Extern_failure ("unknown extern " ^ name))

let handler t entry = Extern.combine (cluster_extern t entry) Extern.base

(* ------------------------------------------------------------------ *)
(* Object store setup (Figure 1 example)                               *)
(* ------------------------------------------------------------------ *)

let set_object t obj data =
  Hashtbl.replace t.obj_store obj (Bytes.of_string data)

let get_object t obj =
  Option.map Bytes.to_string (Hashtbl.find_opt t.obj_store obj)

let set_object_failure_probability t p = t.obj_fail_prob <- p

(* ------------------------------------------------------------------ *)
(* Process placement                                                   *)
(* ------------------------------------------------------------------ *)

(* When a level commits into its parent, its dependents become dependents
   of the parent; committing into level 0 makes the values durable and the
   dependencies dissolve. *)
let rekey_dependencies t ~pid ~uid ~parent =
  (match Hashtbl.find_opt t.deps (pid, uid) with
  | None -> ()
  | Some dependents -> (
    Hashtbl.remove t.deps (pid, uid);
    match parent with
    | None -> ()
    | Some parent_uid ->
      List.iter
        (fun d -> add_dependency t ~sender:(pid, parent_uid) ~receiver:d)
        !dependents));
  (* object-store and file undo entries fold into the parent level; the
     parent's own (older) saved contents win, like heap checkpoint
     records *)
  let fold_undo : 'k 'v. (int * int, ('k * 'v) list ref) Hashtbl.t -> unit =
   fun table ->
    match Hashtbl.find_opt table (pid, uid) with
    | None -> ()
    | Some child -> (
      Hashtbl.remove table (pid, uid);
      match parent with
      | None -> () (* committed for good: the writes are durable *)
      | Some parent_uid -> (
        let key = pid, parent_uid in
        match Hashtbl.find_opt table key with
        | None -> Hashtbl.add table key child
        | Some plog ->
          List.iter
            (fun (k, old) ->
              if not (List.mem_assoc k !plog) then plog := (k, old) :: !plog)
            (List.rev !child)))
  in
  fold_undo t.obj_undo;
  fold_undo t.fs_undo

let rank_mailbox t rank =
  match Hashtbl.find_opt t.rank_mailboxes rank with
  | Some mbox -> mbox
  | None ->
    let mbox = Mpi.create_mailbox () in
    Hashtbl.add t.rank_mailboxes rank mbox;
    mbox

let mailbox_for t rank =
  match rank with
  | Some r -> rank_mailbox t r
  | None -> Mpi.create_mailbox ()

let register_entry t (entry : entry) =
  t.entries <- entry :: t.entries;
  (* the per-node index the scheduler iterates; an entry never changes
     node in place, so registration is the only insertion point *)
  let n = node t entry.node_id in
  n.residents <- entry :: n.residents;
  Hashtbl.replace t.by_pid entry.proc.Process.pid entry;
  let pid = entry.proc.Process.pid in
  Spec.Engine.set_hooks entry.proc.Process.spec
    ~on_enter:(fun ~uid ~depth ->
      emit_entry t entry (Obs.Trace.Spec_enter { uid; depth }))
    ~on_rollback:(fun uids ->
      emit_entry t entry (Obs.Trace.Spec_rollback { uids });
      (* a rolled level that roots a still-open distributed transaction
         takes the transaction down with it (the coordinator abandoned
         the region without running the protocol) *)
      List.iter
        (fun uid ->
          match Dspec.open_with_root t.dspec ~coord_pid:pid ~root_uid:uid with
          | None -> ()
          | Some txn ->
            txn.Dspec.x_state <- Dspec.Aborted "coordinator_rolled_back";
            Obs.Metrics.incr (Dspec.c_aborts t.dspec);
            emit_entry t entry
              (Obs.Trace.Dspec_abort
                 {
                   txn = txn.Dspec.x_id;
                   parts =
                     List.rev_map (fun p -> p.Dspec.p_pid) txn.Dspec.x_parts;
                   reason = "coordinator_rolled_back";
                 }))
        uids;
      let discarded = cascade t ~sender_pid:pid ~uids ~code:msg_roll in
      (* mailbox compensation for a distributed abort is accounted once,
         against the transaction the rolled root belonged to *)
      List.iter
        (fun uid ->
          match
            Dspec.aborted_with_root t.dspec ~coord_pid:pid ~root_uid:uid
          with
          | None -> ()
          | Some txn ->
            txn.Dspec.x_compensated <- true;
            Obs.Metrics.incr ~by:discarded (Dspec.c_compensated t.dspec);
            emit_entry t entry
              (Obs.Trace.Dspec_compensate
                 { txn = txn.Dspec.x_id; discarded }))
        uids)
    ~on_commit:(fun ~uid ~parent ->
      emit_entry t entry
        (Obs.Trace.Spec_commit { uid; durable = parent = None });
      rekey_dependencies t ~pid ~uid ~parent);
  entry.proc.Process.on_gc <-
    Some
      (fun res ->
        emit_entry t entry
          (Obs.Trace.Gc
             {
               gc_kind =
                 (match res.Gc.kind with
                 | Gc.Minor -> Obs.Trace.Minor
                 | Gc.Major -> Obs.Trace.Major);
               live = res.Gc.live_blocks;
               collected = res.Gc.collected_blocks;
             }));
  match entry.rank with
  | Some r -> Hashtbl.replace t.ranks r entry.proc.Process.pid
  | None -> ()

let spawn ?rank ?(engine = `Interp) ?(seed = 7) t ~node_id program =
  let n = node t node_id in
  if not n.alive then invalid_arg "Cluster.spawn: node is down";
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let proc = Process.create ~pid ~arch:n.node_arch ~seed program in
  let engine =
    match engine with
    | `Interp -> Interp_engine
    | `Masm ->
      Emu_engine
        (Emulator.create (Codegen.compile ~arch:n.node_arch program) proc)
  in
  let entry =
    {
      proc;
      engine;
      node_id;
      mailbox = mailbox_for t rank;
      rank;
      epoch = (match rank with Some r -> rank_epoch t r | None -> 0);
      start_at = (node t node_id).clock;
      parked_on = None;
      baseline = None;
      bindings = Hashtbl.create 4;
      notices = [];
    }
  in
  register_entry t entry;
  emit t ~time:entry.start_at ~node:node_id ~pid ~rank:(entry_rank entry)
    Obs.Trace.Spawn;
  pid

(* Register a ranked process as a SERVICE: allocate it a stable logical
   address (sequential from 1, so a deployment script can predict the
   laddrs its clients are compiled against).  From here on, migrating
   the process re-homes it under a fresh rank and the registry forwards
   — svc_send traffic keeps flowing while it moves. *)
let register_service t ~pid =
  match entry_of_pid t pid with
  | None -> invalid_arg (Printf.sprintf "Cluster.register_service: no pid %d" pid)
  | Some e -> (
    match e.rank with
    | None ->
      invalid_arg "Cluster.register_service: process has no rank"
    | Some r ->
      let laddr = Registry.register t.registry ~rank:r in
      emit_entry t e
        (Obs.Trace.Service_bind { laddr; new_rank = r; old_rank = -1 });
      laddr)

let registry t = t.registry

let service_rank t ~laddr = Registry.lookup t.registry laddr

(* A process that migrates (or is resurrected) gets a NEW pid and its
   speculation levels are re-installed with FRESH unique ids.  The
   distributed-speculation registries are keyed by (pid, uid), so every
   key and every dependent entry naming the old identity must be re-keyed
   to the successor, or dependents could escape a later cascade.
   [uid_map] pairs old level uids with new ones (both newest-first). *)
(* Deterministic table re-key.  A Hashtbl's fold order depends on its
   internals (insertion history, resize points), so merging COLLIDING
   remapped keys in fold order would make the merged lists' order — and
   hence later cascade order and traces — nondeterministic, breaking
   the byte-identical-trace guarantee the sched_equivalence suite
   relies on.  Entries are stably sorted by their ORIGINAL (pid, uid)
   key first; a collision appends the larger key's values behind the
   smaller's.  Exposed (and pure) so the regression suite can feed it
   deliberately colliding keys in permuted orders. *)
module Rekey = struct
  let merge ~remap entries =
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> compare a b) entries
    in
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (k, v) ->
        let k' = remap k in
        match Hashtbl.find_opt tbl k' with
        | None ->
          Hashtbl.add tbl k' (ref v);
          order := k' :: !order
        | Some existing -> existing := !existing @ v)
      sorted;
    List.rev_map (fun k -> k, !(Hashtbl.find tbl k)) !order
end

let rekey_identity t ~old_pid ~new_pid ~uid_map =
  let map_uid uid =
    match List.assoc_opt uid uid_map with Some u -> u | None -> uid
  in
  let map_key (pid, uid) =
    if pid = old_pid then new_pid, map_uid uid else pid, uid
  in
  (* dependency edges: keys (senders) and list entries (receivers) *)
  let entries =
    Hashtbl.fold (fun k v acc -> (k, List.map map_key !v) :: acc) t.deps []
  in
  Hashtbl.reset t.deps;
  List.iter
    (fun (k', vs) -> Hashtbl.add t.deps k' (ref vs))
    (Rekey.merge ~remap:map_key entries);
  (* external-state undo logs: keys only (they name the writer) *)
  let rekey_undo : 'k 'v. (int * int, ('k * 'v) list ref) Hashtbl.t -> unit =
   fun table ->
    let entries = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) table [] in
    Hashtbl.reset table;
    List.iter
      (fun (k', vs) -> Hashtbl.add table k' (ref vs))
      (Rekey.merge ~remap:map_key entries)
  in
  rekey_undo t.obj_undo;
  rekey_undo t.fs_undo;
  (* the policy engine tracks affinity by pid: carry the row across the
     identity change so a service's attraction survives its moves *)
  match t.balance with
  | Some b -> Balance.rekey b ~old_pid ~new_pid
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Migration protocols                                                 *)
(* ------------------------------------------------------------------ *)

(* Simulated pack cost: one memory access per heap cell on the source. *)
let pack_seconds (proc : Process.t) =
  let cells = Heap.used_cells proc.Process.heap in
  Arch.seconds proc.Process.arch
    (cells * proc.Process.arch.Arch.cycles Arch.Mem)

(* Simulated delta-encode cost: only the cells that travel are
   re-encoded — one header visit per surviving block (the diff walk)
   plus the shipped data cells. *)
let delta_pack_seconds (proc : Process.t) (st : Migrate.Wire.dstats) =
  let cells =
    (st.Migrate.Wire.ds_blocks * Heap.header_cells)
    + st.Migrate.Wire.ds_shipped_cells
  in
  Arch.seconds proc.Process.arch
    (cells * proc.Process.arch.Arch.cycles Arch.Mem)

(* Byte/outcome accounting for one shipped image (a network hop or a
   storage segment).  The hit-rate gauge only means something while the
   delta machinery is on. *)
let note_shipment t ~as_delta ~bytes =
  if as_delta then Obs.Metrics.incr ~by:bytes t.c_bytes_delta
  else Obs.Metrics.incr ~by:bytes t.c_bytes_full;
  if t.delta then begin
    if as_delta then Obs.Metrics.incr t.c_delta_hits
    else Obs.Metrics.incr t.c_delta_misses;
    let h = Obs.Metrics.count t.c_delta_hits in
    let m = Obs.Metrics.count t.c_delta_misses in
    if h + m > 0 then
      Obs.Metrics.set t.g_delta_hit_rate
        (float_of_int h /. float_of_int (h + m))
  end

(* Every storage/migration image is both itemised (the record list the
   benches read) and aggregated into the metrics registry. *)
let record_migration t mr =
  t.migrations <- mr :: t.migrations;
  (match mr.mr_kind with
  | `Checkpoint -> Obs.Metrics.incr t.c_checkpoints
  | `Migrate | `Suspend ->
    if mr.mr_ok then Obs.Metrics.incr t.c_migrations_ok
    else Obs.Metrics.incr t.c_migrations_failed);
  if mr.mr_cache_hit then Obs.Metrics.incr t.c_migration_cache_hits;
  Obs.Metrics.observe t.h_migrate_bytes (float_of_int mr.mr_bytes);
  Obs.Metrics.observe t.h_pack_s mr.mr_pack_s;
  Obs.Metrics.observe t.h_transfer_s mr.mr_transfer_s;
  Obs.Metrics.observe t.h_compile_s mr.mr_compile_s

(* One migration hop under the fault plan: per-hop timeout, bounded
   retry, exponential backoff — all in simulated time.  Every attempt
   (lost or not) puts the bytes on the wire; a lost attempt costs the
   hop timeout plus the backoff before the next transmission.  Returns
   the total link-level delay from initiation to the image landing, or
   the exhausted-attempt count for the caller's degradation policy. *)
type hop_success = {
  hx_delay_s : float;
  hx_attempts : int;
  hx_backoff_s : float;
}

let transmit_hop t ~retry ~send_at ~src_node ~dst_node ~target_name ~bytes
    ~pid ~rank =
  let transfer_s = Simnet.transfer_seconds t.net bytes in
  let rec go attempt elapsed backoff_total =
    Simnet.record_transfer t.net bytes;
    match
      Faults.on_hop t.faults ~now:(send_at +. elapsed) ~src:src_node
        ~dst:dst_node
    with
    | `Deliver ->
      Ok
        {
          hx_delay_s = elapsed +. transfer_s;
          hx_attempts = attempt;
          hx_backoff_s = backoff_total;
        }
    | (`Lost | `Partitioned) as fate ->
      let reason =
        match fate with `Lost -> "lost" | `Partitioned -> "partitioned"
      in
      if attempt >= retry.Config.max_attempts then
        Error (attempt, elapsed +. retry.Config.hop_timeout_s, reason)
      else begin
        let backoff =
          retry.Config.backoff_base_s
          *. (retry.Config.backoff_factor ** float_of_int (attempt - 1))
        in
        Obs.Metrics.incr t.c_migrate_retries;
        Obs.Metrics.observe t.h_backoff_s backoff;
        emit t
          ~time:(send_at +. elapsed +. retry.Config.hop_timeout_s)
          ~node:src_node ~pid ~rank
          (Obs.Trace.Migrate_retry
             { target = target_name; attempt; backoff_s = backoff; reason });
        go (attempt + 1)
          (elapsed +. retry.Config.hop_timeout_s +. backoff)
          (backoff_total +. backoff)
      end
  in
  go 1 0.0 0.0

(* Deliver landed image bytes to a node's daemon idempotently, keyed by
   (image digest, hop id): a retransmitted or duplicated hop returns the
   original outcome instead of double-spawning.  The fault plan may make
   the image arrive twice — deliver it twice on purpose and let the
   dedup table absorb the second copy. *)
let deliver_hop t (target : node) ~bytes ~pid ~rank ~arrive_at =
  t.hop_seq <- t.hop_seq + 1;
  let key =
    Printf.sprintf "%s#%d"
      (Migrate.Server.delivery_key bytes)
      t.hop_seq
  in
  match Migrate.Server.receive ~key target.daemon bytes with
  | Error _ as e -> e
  | Ok (Migrate.Server.Duplicate _) ->
    (* impossible for a fresh hop id; keep the type checker honest *)
    Error "duplicate delivery of a fresh hop"
  | Ok (Migrate.Server.Fresh outcome) ->
    if Faults.dup_hop t.faults then begin
      (match Migrate.Server.receive ~key target.daemon bytes with
      | Ok (Migrate.Server.Duplicate _) -> ()
      | Ok (Migrate.Server.Fresh _) | Error _ ->
        invalid_arg "Cluster: duplicated hop was not deduplicated");
      emit t ~time:arrive_at ~node:target.node_id ~pid ~rank
        (Obs.Trace.Dup_delivery { target = target.node_name })
    end;
    Ok outcome

(* ------------------------------------------------------------------ *)
(* Shipment choice: full image or delta over a negotiated baseline      *)
(* ------------------------------------------------------------------ *)

type shipment = {
  sh_bytes : string;
  sh_delta : bool;
  sh_pack_s : float;
}

let full_shipment (entry : entry) packed =
  {
    sh_bytes = packed.Migrate.Pack.p_bytes;
    sh_delta = false;
    sh_pack_s = pack_seconds entry.proc;
  }

(* Choose the wire encoding for one hop: a delta over the process's
   PREVIOUS image (what its dirty set is tracked against — the baseline
   as it stood before this pack, not the image just packed) when delta
   shipping is on, the receiver still holds that baseline (the
   negotiation step), the architecture and FIR permit one, and it
   actually saves bytes; the full image otherwise. *)
let choose_shipment t ~baseline (entry : entry) (target : node) packed =
  let full = full_shipment entry packed in
  if not t.delta then full
  else
    match baseline with
    | None -> full
    | Some (digest, base_image) ->
      if not (Migrate.Server.has_baseline target.daemon digest) then full
      else (
        match
          Migrate.Pack.delta ~baseline:base_image ~base_digest:digest packed
        with
        | None -> full
        | Some (bytes, stats) ->
          if
            String.length bytes
            >= String.length packed.Migrate.Pack.p_bytes
          then full
          else
            {
              sh_bytes = bytes;
              sh_delta = true;
              sh_pack_s = delta_pack_seconds entry.proc stats;
            })

(* One complete shipment of a packed process to [target]: transmission
   under the fault plan, idempotent delivery, and — when a delta is
   rejected because the receiver no longer holds the baseline it had at
   negotiation time (evicted or restarted in between) — a transparent
   fallback re-transmission of the full image.  The result aggregates
   the cost of everything that travelled, fallback included. *)
type ship_result = {
  sr_outcome : Migrate.Server.request_outcome;
  sr_bytes : int; (* total bytes on the wire *)
  sr_pack_s : float;
  sr_transfer_s : float;
  sr_attempts : int;
  sr_backoff_s : float;
  sr_delta : bool; (* the ACCEPTED shipment was a delta *)
}

type ship_failure = {
  sf_kind : [ `Unreachable | `Rejected ];
  sf_attempts : int;
  sf_pack_s : float; (* pack work performed, fallback included *)
  sf_elapsed_s : float; (* time burned transmitting / timing out *)
  sf_reason : string;
}

let ship_shipment t ~retry (entry : entry) (src : node) (target : node)
    packed sh =
  let pid = entry.proc.Process.pid and rank = entry_rank entry in
  let attempt (sh : shipment) ~send_at =
    let bytes = String.length sh.sh_bytes in
    note_shipment t ~as_delta:sh.sh_delta ~bytes;
    match
      transmit_hop t ~retry ~send_at ~src_node:src.node_id
        ~dst_node:target.node_id ~target_name:target.node_name ~bytes ~pid
        ~rank
    with
    | Error (attempts, elapsed, reason) ->
      Error (`Unreachable (attempts, elapsed, reason))
    | Ok hx -> (
      match
        deliver_hop t target ~bytes:sh.sh_bytes ~pid ~rank
          ~arrive_at:(send_at +. hx.hx_delay_s)
      with
      | Ok outcome -> Ok (hx, outcome)
      | Error msg -> Error (`Rejected (hx, msg)))
  in
  match attempt sh ~send_at:(src.clock +. sh.sh_pack_s) with
  | Ok (hx, outcome) ->
    Ok
      {
        sr_outcome = outcome;
        sr_bytes = String.length sh.sh_bytes;
        sr_pack_s = sh.sh_pack_s;
        sr_transfer_s = hx.hx_delay_s;
        sr_attempts = hx.hx_attempts;
        sr_backoff_s = hx.hx_backoff_s;
        sr_delta = sh.sh_delta;
      }
  | Error (`Rejected (hx, msg))
    when sh.sh_delta && Migrate.Server.is_unknown_baseline msg -> (
    (* the negotiated baseline evaporated before delivery: pay for the
       wasted delta hop and re-ship the full image *)
    Obs.Metrics.incr t.c_delta_fallbacks;
    let fullsh = full_shipment entry packed in
    let resend_at =
      src.clock +. sh.sh_pack_s +. hx.hx_delay_s +. fullsh.sh_pack_s
    in
    match attempt fullsh ~send_at:resend_at with
    | Ok (hx2, outcome) ->
      Ok
        {
          sr_outcome = outcome;
          sr_bytes =
            String.length sh.sh_bytes + String.length fullsh.sh_bytes;
          sr_pack_s = sh.sh_pack_s +. fullsh.sh_pack_s;
          sr_transfer_s = hx.hx_delay_s +. hx2.hx_delay_s;
          sr_attempts = hx.hx_attempts + hx2.hx_attempts;
          sr_backoff_s = hx.hx_backoff_s +. hx2.hx_backoff_s;
          sr_delta = false;
        }
    | Error (`Unreachable (attempts, elapsed, reason)) ->
      Error
        {
          sf_kind = `Unreachable;
          sf_attempts = hx.hx_attempts + attempts;
          sf_pack_s = sh.sh_pack_s +. fullsh.sh_pack_s;
          sf_elapsed_s = hx.hx_delay_s +. elapsed;
          sf_reason = reason;
        }
    | Error (`Rejected (hx2, msg)) ->
      Error
        {
          sf_kind = `Rejected;
          sf_attempts = hx.hx_attempts + hx2.hx_attempts;
          sf_pack_s = sh.sh_pack_s +. fullsh.sh_pack_s;
          sf_elapsed_s = hx.hx_delay_s +. hx2.hx_delay_s;
          sf_reason = msg;
        })
  | Error (`Unreachable (attempts, elapsed, reason)) ->
    Error
      {
        sf_kind = `Unreachable;
        sf_attempts = attempts;
        sf_pack_s = sh.sh_pack_s;
        sf_elapsed_s = elapsed;
        sf_reason = reason;
      }
  | Error (`Rejected (hx, msg)) ->
    Error
      {
        sf_kind = `Rejected;
        sf_attempts = hx.hx_attempts;
        sf_pack_s = sh.sh_pack_s;
        sf_elapsed_s = hx.hx_delay_s;
        sf_reason = msg;
      }

(* Every pack rebases the process's dirty tracking: record the fresh
   image as the entry's baseline (success or failure downstream) and
   retain it on the node's own daemon, so a later hop ARRIVING here can
   be encoded as a delta over it. *)
let rebase_baseline (n : node) (entry : entry)
    (packed : Migrate.Pack.packed) =
  let digest = Migrate.Wire.image_digest packed.Migrate.Pack.p_image in
  entry.baseline <- Some (digest, packed.Migrate.Pack.p_image);
  ignore
    (Migrate.Server.remember_baseline ~digest n.daemon
       packed.Migrate.Pack.p_image);
  digest

(* Where a migrating process's successor lives in rank space.  An
   ordinary process keeps its rank, mailbox and epoch — rank-addressed
   traffic follows it invisibly, exactly as before.  A REGISTERED
   service vacates its rank: the successor gets a fresh rank (with a
   fresh shared mailbox and that rank's epoch), and [complete_rehome]
   below rebinds the laddr and leaves a forwarder behind.  Fresh ranks
   make the old binding observably stale, which is what exercises the
   forward/notify/rebind protocol. *)
let successor_home t (entry : entry) =
  match entry.rank with
  | Some old_rank when Registry.laddr_of_rank t.registry old_rank <> None ->
    let r = t.next_dyn_rank in
    t.next_dyn_rank <- t.next_dyn_rank + 1;
    Some r, rank_mailbox t r, rank_epoch t r
  | Some _ | None -> entry.rank, entry.mailbox, entry.epoch

(* The distributed-transaction context that travels with a packed
   coordinator (wire v9).  Stable level uids are engine-local, so the
   root is named by its position in the speculation snapshot (oldest
   first); participants travel as (rank, epoch) pins.  Only the oldest
   open transaction ships — the externs drive one protocol round at a
   time. *)
let dspec_ctx_of t (entry : entry) =
  match
    Dspec.open_coordinated_by t.dspec ~pid:entry.proc.Process.pid
  with
  | [] -> None
  | txn :: _ -> (
    let oldest_first =
      List.rev (Spec.Engine.unique_ids entry.proc.Process.spec)
    in
    let rec index i = function
      | [] -> None
      | u :: _ when u = txn.Dspec.x_root_uid -> Some i
      | _ :: tl -> index (i + 1) tl
    in
    match index 0 oldest_first with
    | None -> None
    | Some x_root ->
      Some
        {
          Migrate.Wire.x_txn = txn.Dspec.x_id;
          x_root;
          x_coord_laddr = txn.Dspec.x_coord_laddr;
          x_parts =
            List.rev_map
              (fun p -> p.Dspec.p_rank, p.Dspec.p_epoch)
              txn.Dspec.x_parts;
        })

(* After a re-homed service's successor is registered: rebind the laddr
   (installing the bounded-TTL forwarder on the vacated rank), then
   relay the in-flight traffic already queued there — each message pays
   one extra store-and-forward traversal, and its sender is owed a
   Recipient_moved notice so it rebinds instead of relaying forever. *)
let complete_rehome t (old_entry : entry) (new_entry : entry) =
  match old_entry.rank, new_entry.rank with
  | Some old_rank, Some new_rank when old_rank <> new_rank -> (
    match Registry.laddr_of_rank t.registry old_rank with
    | None -> ()
    | Some laddr ->
      let at = new_entry.start_at in
      Registry.rebind t.registry ~laddr ~new_rank ~now:at
        ~ttl:t.forward_ttl_s;
      Obs.Metrics.incr t.c_svc_moves;
      emit t ~time:at ~node:new_entry.node_id
        ~pid:new_entry.proc.Process.pid ~rank:new_rank
        (Obs.Trace.Service_bind { laddr; new_rank; old_rank });
      let new_mbox = new_entry.mailbox in
      List.iter
        (fun (m : Mpi.message) ->
          let bytes = 8 * Array.length m.Mpi.msg_payload in
          let hop = Simnet.message_seconds t.net bytes in
          (* the relay leaves the old node no earlier than the message
             would have arrived there (or the successor exists) *)
          Mpi.enqueue new_mbox
            { m with
              Mpi.msg_deliver_at = max m.Mpi.msg_deliver_at at +. hop };
          Obs.Metrics.incr t.c_svc_forwarded;
          emit t ~time:at ~node:new_entry.node_id
            ~pid:new_entry.proc.Process.pid ~rank:new_rank
            (Obs.Trace.Msg_forward
               { laddr; from_rank = old_rank; to_rank = new_rank; hops = 1 });
          match entry_of_rank t m.Mpi.msg_src_rank with
          | Some sender when not (Process.is_terminated sender.proc) ->
            sender.notices <- (at +. hop, laddr, new_rank) :: sender.notices
          | Some _ | None -> ())
        (Mpi.take_all (rank_mailbox t old_rank)))
  | _ -> ()

(* The unified move commit: everything that happens after a shipment is
   accepted, shared by every initiator of [move] — successor entry
   creation (an ordinary process keeps rank/mailbox/epoch; a registered
   service is re-homed under a fresh rank), source termination (the
   [terminate] closure is the only initiator-specific step),
   registration, registry rebind + forwarder install + old-mailbox
   drain ([complete_rehome]), identity rekey, busy-time accounting, the
   migration record and the Cache_hit/miss + Migrate_done trace events.
   Because the drain lives here, no initiator can strand stamped
   messages at a vacated rank. *)
let install_successor t (entry : entry) (src : node) (target : node) packed
    ~baseline_digest (sr : ship_result) ~terminate =
  let proc = entry.proc in
  let outcome = sr.sr_outcome in
  let pack_s = sr.sr_pack_s and transfer_s = sr.sr_transfer_s in
  let old_uids = Spec.Engine.unique_ids proc.Process.spec in
  let compile_s =
    Arch.seconds target.node_arch
      outcome.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
  in
  (* keep pids cluster-unique *)
  let new_pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let new_proc =
    { outcome.Migrate.Server.o_process with Process.pid = new_pid }
  in
  let new_rank, new_mailbox, new_epoch = successor_home t entry in
  let new_entry =
    {
      proc = new_proc;
      engine =
        Emu_engine
          (Emulator.create ~compiled:outcome.Migrate.Server.o_compiled
             outcome.Migrate.Server.o_masm new_proc);
      node_id = target.node_id;
      mailbox = new_mailbox;
      rank = new_rank;
      (* migration is the SAME incarnation on a new node (a fresh
         service rank starts at that rank's epoch) *)
      epoch = new_epoch;
      start_at =
        max target.clock (src.clock +. pack_s +. transfer_s) +. compile_s;
      parked_on = None;
      (* the successor's heap was restored from (and its dirty set is
         empty relative to) the image just shipped *)
      baseline = Some (baseline_digest, packed.Migrate.Pack.p_image);
      bindings = entry.bindings;
      notices = entry.notices;
    }
  in
  terminate ();
  register_entry t new_entry;
  complete_rehome t entry new_entry;
  rekey_identity t ~old_pid:proc.Process.pid ~new_pid
    ~uid_map:
      (List.combine old_uids (Spec.Engine.unique_ids new_proc.Process.spec));
  (* a mid-transaction move re-registers the process with the
     transaction table under its successor identity: where it
     coordinates, the root level is translated; where it participates,
     its recorded rank and epoch are refreshed (a deliberate re-home is
     not a zombie — its prepare-ack stays valid) *)
  Dspec.rebind_pid t.dspec ~old_pid:proc.Process.pid ~new_pid
    ~uid_map:
      (List.combine old_uids (Spec.Engine.unique_ids new_proc.Process.spec))
    ~rank:(match new_entry.rank with Some r -> r | None -> -1)
    ~epoch:new_entry.epoch;
  src.busy_seconds <- src.busy_seconds +. pack_s;
  target.busy_seconds <- target.busy_seconds +. compile_s;
  let cache_hit = outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit in
  record_migration t
    {
      mr_kind = `Migrate;
      mr_pid = proc.Process.pid;
      mr_bytes = sr.sr_bytes;
      mr_pack_s = pack_s;
      mr_transfer_s = transfer_s;
      mr_compile_s = compile_s;
      mr_cache_hit = cache_hit;
      mr_delta = sr.sr_delta;
      mr_ok = true;
    };
  emit t
    ~time:(max target.clock (src.clock +. pack_s +. transfer_s))
    ~node:target.node_id ~pid:new_pid ~rank:(entry_rank new_entry)
    (if cache_hit then Obs.Trace.Cache_hit else Obs.Trace.Cache_miss);
  emit t ~time:new_entry.start_at ~node:target.node_id ~pid:new_pid
    ~rank:(entry_rank new_entry)
    (Obs.Trace.Migrate_done
       { ok = true; cache_hit; bytes = sr.sr_bytes; pack_s; transfer_s;
         compile_s });
  new_entry, cache_hit

let handle_migrate t (entry : entry) _req host =
  let proc = entry.proc in
  let src = node t entry.node_id in
  if is_stale t entry then fence t entry ~what:"migrate"
  else
  match node_by_name t host with
  | Some target when target.alive && target.node_id <> entry.node_id ->
    let with_binary =
      t.trusted && Arch.equal src.node_arch target.node_arch
    in
    let prev_baseline = entry.baseline in
    let packed =
      Migrate.Pack.pack_request ~with_binary ~epoch:entry.epoch
        ?dspec:(dspec_ctx_of t entry) proc
    in
    let baseline_digest = rebase_baseline src entry packed in
    let sh = choose_shipment t ~baseline:prev_baseline entry target packed in
    let bytes = String.length sh.sh_bytes in
    emit_entry t entry (Obs.Trace.Migrate_start { target = host; bytes });
    (match ship_shipment t ~retry:t.retry entry src target packed sh with
    | Ok sr ->
      let (_ : entry), (_ : bool) =
        install_successor t entry src target packed ~baseline_digest sr
          ~terminate:(fun () -> Process.migration_completed proc)
      in
      ()
    | Error sf ->
      (* graceful degradation: the target stayed unreachable (or its
         daemon rejected the image) — the process resumes locally
         instead of wedging, having paid for the pack and the timed-out
         attempts *)
      charge_seconds proc (sf.sf_pack_s +. sf.sf_elapsed_s);
      record_migration t
        {
          mr_kind = `Migrate;
          mr_pid = proc.Process.pid;
          mr_bytes = bytes;
          mr_pack_s = sf.sf_pack_s;
          mr_transfer_s = 0.0;
          mr_compile_s = 0.0;
          mr_cache_hit = false;
          mr_delta = false;
          mr_ok = false;
        };
      emit_entry t entry
        (Obs.Trace.Migrate_done
           {
             ok = false;
             cache_hit = false;
             bytes;
             pack_s = sf.sf_pack_s;
             transfer_s = 0.0;
             compile_s = 0.0;
           });
      Process.migration_failed proc)
  | Some _ | None ->
    emit_entry t entry (Obs.Trace.Migrate_start { target = host; bytes = 0 });
    emit_entry t entry
      (Obs.Trace.Migrate_done
         {
           ok = false;
           cache_hit = false;
           bytes = 0;
           pack_s = 0.0;
           transfer_s = 0.0;
           compile_s = 0.0;
         });
    Process.migration_failed proc

(* Host-initiated live migration of a RUNNING process (the [Move.Running]
   subject): validate, pack mid-execution, ship under [retry], and
   commit through [install_successor].  Failure is invisible to the
   subject — it keeps running where it was. *)
let move_running t ~pid ~node_id ~retry =
  match entry_of_pid t pid with
  | None -> Error (No_such_process pid)
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Exited _ | Process.Trapped _ | Process.Migrating _ ->
      Error Not_running
    | Process.Running -> (
      let src = node t entry.node_id in
      let target = node t node_id in
      if is_stale t entry then begin
        let current =
          match entry.rank with Some r -> rank_epoch t r | None -> 0
        in
        fence t entry ~what:"migrate";
        Error (Fenced { rank = entry_rank entry; stale = entry.epoch;
                        current })
      end
      else if not target.alive then Error Target_down
      else if target.node_id = src.node_id then Error Already_there
      else begin
        let with_binary =
          t.trusted && Arch.equal src.node_arch target.node_arch
        in
        let prev_baseline = entry.baseline in
        let packed =
          Migrate.Pack.pack_running ~with_binary ~epoch:entry.epoch
            ?dspec:(dspec_ctx_of t entry) entry.proc
        in
        let baseline_digest = rebase_baseline src entry packed in
        let sh =
          choose_shipment t ~baseline:prev_baseline entry target packed
        in
        let bytes = String.length sh.sh_bytes in
        emit_entry t entry
          (Obs.Trace.Migrate_start { target = target.node_name; bytes });
        match ship_shipment t ~retry entry src target packed sh with
        | Error sf ->
          (* failure is invisible: the process keeps running where it is *)
          record_migration t
            { mr_kind = `Migrate; mr_pid = pid; mr_bytes = bytes;
              mr_pack_s = sf.sf_pack_s; mr_transfer_s = 0.0;
              mr_compile_s = 0.0; mr_cache_hit = false; mr_ok = false;
              mr_delta = false };
          emit_entry t entry
            (Obs.Trace.Migrate_done
               { ok = false; cache_hit = false; bytes;
                 pack_s = sf.sf_pack_s; transfer_s = 0.0;
                 compile_s = 0.0 });
          Error
            (match sf.sf_kind with
            | `Unreachable ->
              Unreachable
                { attempts = sf.sf_attempts; reason = sf.sf_reason }
            | `Rejected -> Rejected sf.sf_reason)
        | Ok sr ->
          let new_entry, cache_hit =
            install_successor t entry src target packed ~baseline_digest sr
              ~terminate:(fun () ->
                entry.proc.Process.status <- Process.Exited 0)
          in
          Ok
            {
              rep_pid = new_entry.proc.Process.pid;
              rep_attempts = sr.sr_attempts;
              rep_retries = sr.sr_attempts - 1;
              rep_backoff_s = sr.sr_backoff_s;
              rep_elapsed_s = new_entry.start_at -. src.clock;
              rep_bytes = sr.sr_bytes;
              rep_cache_hit = cache_hit;
              rep_delta = sr.sr_delta;
            }
      end))

let handle_to_storage t (entry : entry) req path ~kind =
  let proc = entry.proc in
  if is_stale t entry then begin
    fence t entry ~what:"checkpoint";
    ignore req
  end
  else begin
  (* images on the cluster's own reliable store carry the binary payload:
     "the checkpoints are formatted as executable files and the
     resurrection of processes is done by executing the saved checkpoint"
     (paper, Section 2) *)
  let packed =
    Migrate.Pack.pack_request ~with_binary:true ~epoch:entry.epoch
      ?dspec:(dspec_ctx_of t entry) proc
  in
  let prev_baseline = entry.baseline in
  let new_digest =
    rebase_baseline (node t entry.node_id) entry packed
  in
  (* A CHECKPOINT may extend the path's existing chain with a delta
     segment, but only when the chain's last image is exactly what this
     process's dirty set was tracked against (its previous pack) — the
     chain is rewritten in full otherwise, and after [max_chain_len]
     segments (resurrection replays every segment).  SUSPEND images stay
     full: they are the directly-executable single files of Section 2. *)
  let segment =
    if kind <> `Checkpoint || not t.delta then None
    else
      match Hashtbl.find_opt t.ckpt_chains path, prev_baseline with
      | Some cc, Some (d, img)
        when String.equal cc.cc_digest d && cc.cc_len < max_chain_len -> (
        match
          Migrate.Pack.delta ~baseline:img ~base_digest:d packed
        with
        | Some (seg_bytes, stats)
          when String.length seg_bytes
               < String.length packed.Migrate.Pack.p_bytes ->
          Some (cc, seg_bytes, stats)
        | Some _ | None -> None)
      | (Some _ | None), _ -> None
  in
  let stored_path, bytes, pack_s, write_s, as_delta =
    match segment with
    | Some (cc, seg_bytes, stats) ->
      cc.cc_len <- cc.cc_len + 1;
      cc.cc_digest <- new_digest;
      cc.cc_image <- packed.Migrate.Pack.p_image;
      let seg_path = Printf.sprintf "%s.d%d" path cc.cc_len in
      let write_s = Storage.write t.storage seg_path seg_bytes in
      ( seg_path,
        String.length seg_bytes,
        delta_pack_seconds proc stats,
        write_s,
        true )
    | None ->
      (* full (re)write: replace the base image and drop any now-stale
         delta segments so a resurrection can never replay them *)
      (match Hashtbl.find_opt t.ckpt_chains path with
      | Some cc ->
        for k = 1 to cc.cc_len do
          Storage.remove t.storage (Printf.sprintf "%s.d%d" path k)
        done
      | None -> ());
      Hashtbl.replace t.ckpt_chains path
        {
          cc_digest = new_digest;
          cc_image = packed.Migrate.Pack.p_image;
          cc_len = 0;
        };
      let write_s =
        Storage.write t.storage path packed.Migrate.Pack.p_bytes
      in
      ( path,
        String.length packed.Migrate.Pack.p_bytes,
        pack_seconds proc,
        write_s,
        false )
  in
  note_shipment t ~as_delta ~bytes;
  record_migration t
    {
      mr_kind = kind;
      mr_pid = proc.Process.pid;
      mr_bytes = bytes;
      mr_pack_s = pack_s;
      mr_transfer_s = write_s;
      mr_compile_s = 0.0;
      mr_cache_hit = false;
      mr_delta = as_delta;
      mr_ok = true;
    };
  (match kind with
  | `Checkpoint ->
    (* the process pays for its checkpoint and keeps running *)
    charge_seconds proc (pack_s +. write_s);
    Process.migration_failed proc (* "failure" = continue locally *)
  | `Suspend | `Migrate ->
    charge_seconds proc pack_s;
    Process.migration_completed proc);
  emit_entry t entry (Obs.Trace.Checkpoint { path = stored_path; bytes });
  ignore req
  end

let handle_migration t (entry : entry) =
  match entry.proc.Process.status with
  | Process.Migrating req -> (
    match Migrate.Protocol.parse req.Process.m_target with
    | Migrate.Protocol.Migrate_to host -> handle_migrate t entry req host
    | Migrate.Protocol.Suspend_to path ->
      handle_to_storage t entry req path ~kind:`Suspend
    | Migrate.Protocol.Checkpoint_to path ->
      handle_to_storage t entry req path ~kind:`Checkpoint
    | exception Migrate.Protocol.Bad_target _ ->
      emit_entry t entry
        (Obs.Trace.Migrate_start { target = req.Process.m_target; bytes = 0 });
      emit_entry t entry
        (Obs.Trace.Migrate_done
           { ok = false; cache_hit = false; bytes = 0; pack_s = 0.0;
             transfer_s = 0.0; compile_s = 0.0 });
      Process.migration_failed entry.proc)
  | Process.Running | Process.Exited _ | Process.Trapped _ -> ()

(* ------------------------------------------------------------------ *)
(* Failure and resurrection                                            *)
(* ------------------------------------------------------------------ *)

(* A dead coordinator can never decide its open transactions: abort them
   (participants are already rolled back by the victim's cascade, whose
   discard count doubles as the compensation figure). *)
let abort_dead_coordinator_txns t (e : entry) ~discarded =
  List.iter
    (fun (txn : Dspec.txn) ->
      txn.Dspec.x_state <- Dspec.Aborted "coordinator_dead";
      txn.Dspec.x_compensated <- true;
      Obs.Metrics.incr (Dspec.c_aborts t.dspec);
      Obs.Metrics.incr ~by:discarded (Dspec.c_compensated t.dspec);
      let parts = List.rev_map (fun p -> p.Dspec.p_pid) txn.Dspec.x_parts in
      emit_entry t e
        (Obs.Trace.Dspec_abort
           { txn = txn.Dspec.x_id; parts; reason = "coordinator_dead" });
      emit_entry t e
        (Obs.Trace.Dspec_compensate { txn = txn.Dspec.x_id; discarded }))
    (Dspec.open_coordinated_by t.dspec ~pid:e.proc.Process.pid)

let fail_node t node_id =
  let n = node t node_id in
  if n.alive then begin
    n.alive <- false;
    Obs.Metrics.incr t.c_node_failures;
    (* node-local checkpoint replicas die with the node *)
    Storage.fail_node t.storage node_id;
    emit t ~time:n.clock ~node:node_id Obs.Trace.Node_fail;
    let victims =
      List.filter
        (fun (e : entry) ->
          e.node_id = node_id && not (Process.is_terminated e.proc))
        t.entries
    in
    List.iter
      (fun (e : entry) ->
        let uids = Spec.Engine.unique_ids e.proc.Process.spec in
        e.proc.Process.status <- Process.Trapped "node failure";
        (* everyone who consumed this process's speculative messages rolls
           back with it *)
        let discarded =
          cascade t ~sender_pid:e.proc.Process.pid ~uids ~code:msg_roll
        in
        abort_dead_coordinator_txns t e ~discarded;
        (* survivors polling this rank observe MSG_ROLL *)
        match e.rank with
        | Some dead_rank ->
          List.iter
            (fun other ->
              if
                other.proc.Process.pid <> e.proc.Process.pid
                && not (Process.is_terminated other.proc)
              then begin
                Mpi.post_roll_notice other.mailbox ~src_rank:dead_rank;
                (* only wake a survivor the notice is relevant to: one
                   parked on the dead rank, parked wildcard (src < 0 —
                   a roll notice from anyone is its awaited event), or
                   parked without a recorded source.  Waking a process
                   parked on an UNRELATED rank would violate the
                   parked_on contract — the scheduler would spin it on
                   a poll that still returns nothing *)
                match other.parked_on with
                | Some (src, _) when src = dead_rank || src < 0 ->
                  other.proc.Process.waiting <- false
                | Some _ -> ()
                | None -> other.proc.Process.waiting <- false
              end)
            t.entries
        | None -> ())
      victims
  end

(* Logically terminate a (possibly still executing) old incarnation of
   [rank] before its successor is created.  The epoch bump must already
   have happened, making the old holder stale: fence it so it never runs
   another instruction, cascade its uncommitted speculative sends, and
   post roll notices so survivors that already consumed its traffic roll
   back to their last durable point and re-send to the successor.  This
   mirrors [fail_node]'s per-victim work, but for a single rank on a node
   that may in fact still be alive (a false suspicion). *)
let kill_incarnation t ~rank =
  match entry_of_rank t rank with
  | None -> ()
  | Some e ->
    if not (Process.is_terminated e.proc) then begin
      let uids = Spec.Engine.unique_ids e.proc.Process.spec in
      fence t e ~what:"schedule";
      let discarded =
        cascade t ~sender_pid:e.proc.Process.pid ~uids ~code:msg_roll
      in
      abort_dead_coordinator_txns t e ~discarded;
      List.iter
        (fun (other : entry) ->
          if
            other.proc.Process.pid <> e.proc.Process.pid
            && not (Process.is_terminated other.proc)
          then begin
            Mpi.post_roll_notice other.mailbox ~src_rank:rank;
            match other.parked_on with
            | Some (src, _) when src = rank || src < 0 ->
              other.proc.Process.waiting <- false
            | Some _ -> ()
            | None -> other.proc.Process.waiting <- false
          end)
        t.entries
    end

(* Resurrect a checkpointed process from shared storage on a live node
   (the paper's resurrection daemon executing the saved checkpoint).
   Internal: callers go through [move] with an [Image] subject (or the
   [resurrect] convenience wrapper over it). *)
let do_resurrect ?rank ?(seed = 11) t ~node_id ~path =
  let n = node t node_id in
  let failed msg =
    emit t ~time:(now t) ~node:node_id
      (Obs.Trace.Resurrect { path; ok = false });
    Error msg
  in
  if not n.alive then failed "resurrection node is down"
  else
    match Storage.read t.storage path with
    | None -> failed ("no checkpoint " ^ path)
    | Some (bytes, read_s) -> (
      (* replay the checkpoint chain: the base image at [path], then
         every [path.dN] delta segment in order, each digest-verified
         against its reconstruction *)
      let rec replay image total_bytes total_read_s k =
        match
          Storage.read t.storage (Printf.sprintf "%s.d%d" path k)
        with
        | None -> Ok (image, total_bytes, total_read_s)
        | Some (seg_bytes, seg_read_s) -> (
          match Migrate.Wire.decode_packet seg_bytes with
          | Migrate.Wire.Delta d -> (
            match Migrate.Wire.apply_delta ~baseline:image d with
            | image' ->
              replay image'
                (total_bytes + String.length seg_bytes)
                (total_read_s +. seg_read_s) (k + 1)
            | exception Migrate.Wire.Corrupt msg ->
              Error (Printf.sprintf "checkpoint segment %d: %s" k msg))
          | Migrate.Wire.Full _ ->
            Error
              (Printf.sprintf
                 "checkpoint segment %d is not a delta image" k)
          | exception Migrate.Wire.Corrupt msg ->
            Error (Printf.sprintf "checkpoint segment %d: %s" k msg))
      in
      let replayed =
        match Migrate.Wire.decode bytes with
        | image -> replay image (String.length bytes) read_s 1
        | exception Migrate.Wire.Corrupt msg ->
          Error ("corrupt image: " ^ msg)
      in
      match replayed with
      | Error msg -> failed msg
      | Ok (image, total_bytes, read_s) -> (
      let bytes_len = total_bytes in
      (* executing a saved checkpoint from the cluster's own store is
         within the trust domain: same-architecture resurrections take
         the binary fast path (link only); cross-architecture ones
         recompile from the FIR *)
      match
        Migrate.Pack.unpack_image ~seed ~trusted:true ~extern_signatures
          ?cache:(Migrate.Server.cache n.daemon) ~arch:n.node_arch
          ~bytes_len image
      with
      | Error msg -> failed msg
      | Ok (proc0, masm, compiled, costs) ->
        (* bump the rank's incarnation epoch FIRST, so the old holder (a
           zombie under false suspicion) is stale before it could ever be
           scheduled again — resurrection never yields two live copies *)
        let epoch =
          match rank with
          | None -> 0
          | Some r ->
            let e' = rank_epoch t r + 1 in
            Hashtbl.replace t.epochs r e';
            kill_incarnation t ~rank:r;
            e'
        in
        let outcome =
          { Migrate.Server.o_pid = 0; o_costs = costs; o_process = proc0;
            o_masm = masm; o_compiled = compiled }
        in
        let pid = t.next_pid in
        t.next_pid <- t.next_pid + 1;
        let proc = { outcome.Migrate.Server.o_process with Process.pid } in
        let compile_s =
          Arch.seconds n.node_arch
            outcome.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
        in
        let entry =
          {
            proc;
            engine =
              Emu_engine
                (Emulator.create ~compiled:outcome.Migrate.Server.o_compiled
                   outcome.Migrate.Server.o_masm proc);
            node_id;
            mailbox = mailbox_for t rank;
            rank;
            epoch;
            start_at = now t +. read_s +. compile_s;
            parked_on = None;
            bindings = Hashtbl.create 4;
            notices = [];
            (* the resumed heap is byte-identical to the replayed image
               (and its dirty set is empty), so that image is a valid
               pack baseline; retain it on the daemon so the first hop
               away can already be a delta *)
            baseline =
              Some
                ( Migrate.Server.remember_baseline n.daemon image,
                  image );
          }
        in
        register_entry t entry;
        (* the image's transaction context (wire v9): if the transaction
           is somehow still open — the coordinator was moved as an image
           without a node failure having aborted it — re-register the
           resumed process as its coordinator, translating the root
           level through the snapshot position the context names *)
        (match image.Migrate.Wire.i_dspec with
        | None -> ()
        | Some ctx -> (
          match Dspec.find t.dspec ctx.Migrate.Wire.x_txn with
          | Some txn when txn.Dspec.x_state = Dspec.Open ->
            txn.Dspec.x_coord_pid <- pid;
            (match
               List.nth_opt
                 (List.rev (Spec.Engine.unique_ids proc.Process.spec))
                 ctx.Migrate.Wire.x_root
             with
            | Some uid -> txn.Dspec.x_root_uid <- uid
            | None -> ())
          | Some _ | None -> ()));
        n.busy_seconds <- n.busy_seconds +. compile_s;
        Obs.Metrics.incr t.c_resurrections;
        (* a resurrection is an inbound migration from the store: the
           saved image travels through the same unpack/code-cache path
           as a live migration, so it shows up in the trace as one *)
        emit t ~time:(now t) ~node:node_id ~pid ~rank:(entry_rank entry)
          (Obs.Trace.Migrate_start
             { target = n.node_name; bytes = bytes_len });
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (if outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit then
             Obs.Trace.Cache_hit
           else Obs.Trace.Cache_miss);
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (Obs.Trace.Migrate_done
             {
               ok = true;
               cache_hit =
                 outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit;
               bytes = bytes_len;
               pack_s = 0.0;
               transfer_s = read_s;
               compile_s;
             });
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (Obs.Trace.Resurrect { path; ok = true });
        Ok pid))

(* ------------------------------------------------------------------ *)
(* The unified move API                                                *)
(* ------------------------------------------------------------------ *)

(* One entry point for every migration initiator.  The reason is
   accounting only: protocol behaviour (fencing, forwarder install,
   mailbox drain, baseline negotiation, epoch handling) is identical
   for all reasons and both subjects, which the trace-equivalence suite
   asserts byte-for-byte. *)
let move t (req : Move.request) =
  (match req.Move.mv_reason with
  | Move.Explicit -> Obs.Metrics.incr t.c_move_explicit
  | Move.Policy -> Obs.Metrics.incr t.c_move_policy
  | Move.Resurrect -> Obs.Metrics.incr t.c_move_resurrect
  | Move.Rehome -> Obs.Metrics.incr t.c_move_rehome);
  match req.Move.mv_subject with
  | Move.Running pid -> (
    let retry =
      match req.Move.mv_retry with Some r -> r | None -> t.retry
    in
    match move_running t ~pid ~node_id:req.Move.mv_dest ~retry with
    | Ok rep -> Ok { Move.mv_pid = rep.rep_pid; mv_report = Some rep }
    | Error e -> Error e)
  | Move.Image { path; rank; seed } -> (
    match do_resurrect ?rank ~seed t ~node_id:req.Move.mv_dest ~path with
    | Ok pid -> Ok { Move.mv_pid = pid; mv_report = None }
    | Error msg -> Error (Resurrect_failed msg))

(* Convenience wrapper over [move] with an [Image] subject, preserving
   the historical (pid, string-error) result shape. *)
let resurrect ?rank ?(seed = 11) t ~node_id ~path =
  match
    move t
      (Move.request ~reason:Move.Resurrect
         (Move.Image { path; rank; seed })
         ~dest:node_id)
  with
  | Ok o -> Ok o.Move.mv_pid
  | Error e -> Error (migration_error_to_string e)

(* ------------------------------------------------------------------ *)
(* The placement policy engine tick                                    *)
(* ------------------------------------------------------------------ *)

(* Sample the per-node load gauges and per-process charged cycles,
   plan, and execute the proposals as Policy moves.  Called at the end
   of every scheduling round; a no-op while the engine is disabled or
   between periods.  Eligible subjects are running, non-stale
   REGISTERED services — their traffic keeps flowing through the
   registry's forwarders while they move.  A pid with no recorded
   cycle baseline (a fresh successor) measures zero load for one
   period, damping repeat moves of just-moved services. *)
let balance_tick t =
  match t.balance with
  | None -> ()
  | Some b ->
    let now_ = now t in
    if now_ >= t.bal_next_at then begin
      let cfg = Balance.config b in
      Obs.Metrics.incr t.c_bal_ticks;
      let elapsed = Float.max (now_ -. t.bal_prev_at) 1e-9 in
      let loads =
        Array.map
          (fun n ->
            let runnable = ref 0 and mailbox = ref 0 in
            List.iter
              (fun (e : entry) ->
                if not (Process.is_terminated e.proc) then begin
                  incr runnable;
                  mailbox := !mailbox + Mpi.pending e.mailbox
                end)
              n.residents;
            {
              Balance.nl_node = n.node_id;
              nl_alive = n.alive;
              nl_runnable = !runnable;
              nl_cycles_per_s =
                (n.busy_seconds -. t.bal_busy0.(n.node_id)) /. elapsed;
              nl_mailbox = !mailbox;
            })
          t.nodes
      in
      let candidates =
        List.filter_map
          (fun (e : entry) ->
            match e.rank, e.proc.Process.status with
            | Some r, Process.Running
              when (not (is_stale t e))
                   && Registry.laddr_of_rank t.registry r <> None
                   && (node t e.node_id).alive ->
              let cycles = e.proc.Process.cycles in
              let c0 =
                match Hashtbl.find_opt t.bal_cycles0 e.proc.Process.pid with
                | Some c -> c
                | None -> cycles
              in
              Some
                {
                  Balance.cd_pid = e.proc.Process.pid;
                  cd_node = e.node_id;
                  cd_load =
                    Balance.candidate_load
                      ~cycles_per_s:
                        (Arch.seconds e.proc.Process.arch (cycles - c0)
                        /. elapsed)
                      ~mailbox:(Mpi.pending e.mailbox);
                }
            | _ -> None)
          t.entries
      in
      let node_of_rank r =
        Option.map (fun (e : entry) -> e.node_id) (entry_of_rank t r)
      in
      let proposals = Balance.plan b ~loads ~candidates ~node_of_rank in
      let spread, _mean = Balance.spread b ~loads in
      Obs.Metrics.set t.g_bal_spread spread;
      Obs.Metrics.incr ~by:(List.length proposals) t.c_bal_proposals;
      let moved = ref 0 in
      List.iter
        (fun (p : Balance.proposal) ->
          match
            move t
              (Move.request ~reason:Move.Policy (Move.Running p.Balance.pr_pid)
                 ~dest:p.Balance.pr_to)
          with
          | Ok _ ->
            incr moved;
            Obs.Metrics.incr t.c_bal_moves;
            t.bal_last_move_s <- now_;
            Obs.Metrics.set t.g_bal_last_move now_
          | Error _ -> ())
        proposals;
      emit t ~time:now_
        (Obs.Trace.Balance_tick
           { spread; proposed = List.length proposals; moved = !moved });
      (* baselines for the next period *)
      Array.iter
        (fun n -> t.bal_busy0.(n.node_id) <- n.busy_seconds)
        t.nodes;
      Hashtbl.reset t.bal_cycles0;
      List.iter
        (fun (e : entry) ->
          if not (Process.is_terminated e.proc) then
            Hashtbl.replace t.bal_cycles0 e.proc.Process.pid
              e.proc.Process.cycles)
        t.entries;
      Balance.decay b;
      t.bal_prev_at <- now_;
      t.bal_next_at <- now_ +. cfg.Balance.Config.period_s
    end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let runnable t (e : entry) =
  let n = node t e.node_id in
  n.alive
  && (not (Process.is_terminated e.proc))
  && (match e.proc.Process.status with
     | Process.Running -> true
     | Process.Migrating _ -> true
     | Process.Exited _ | Process.Trapped _ -> false)
  && e.start_at <= n.clock

(* Wake one parked process if its awaited event is due on its node's
   local clock. *)
let wake_entry (e : entry) ~clock =
  if e.proc.Process.waiting then
    let ready =
      match e.parked_on with
      | Some (src, tag) when src >= 0 ->
        Mpi.has_roll_notice e.mailbox ~src_rank:src
        || Mpi.has_delivered e.mailbox ~now:clock ~src_rank:src ~tag
      | Some (_, tag) ->
        (* wildcard park (src -1): any delivery with the tag, or any
           roll notice, is the awaited event *)
        Mpi.has_any_roll_notice e.mailbox
        || Mpi.has_delivered_any e.mailbox ~now:clock ~tag
      | None ->
        (match Mpi.next_delivery e.mailbox with
        | Some at -> at <= clock
        | None -> false)
        || Mpi.has_any_roll_notice e.mailbox
    in
    if ready then e.proc.Process.waiting <- false

(* Wake parked processes on [n] whose awaited event is due on the node's
   local clock.  Indexed mode iterates the node's residents; legacy
   mode scans every entry (the pre-index behaviour, kept behind
   Config.legacy_scan_sched for the S1 before/after measurement). *)
let wake_ready t n =
  if t.scan_sched then
    List.iter
      (fun (e : entry) ->
        if e.node_id = n.node_id then wake_entry e ~clock:n.clock)
      t.entries
  else List.iter (fun e -> wake_entry e ~clock:n.clock) n.residents

(* The earliest future event relevant to one entry, folded into [acc]:
   a delayed start, or the delivery a parked process is waiting for. *)
let fold_next_event ~clock acc (e : entry) =
  if Process.is_terminated e.proc then acc
  else begin
    let best = ref acc in
    let consider c =
      match !best with
      | None -> best := Some c
      | Some a -> if c < a then best := Some c
    in
    if e.start_at > clock then consider e.start_at;
    if e.proc.Process.waiting then begin
      match e.parked_on with
      | Some (src, tag) when src >= 0 -> (
        match Mpi.next_matching_delivery e.mailbox ~src_rank:src ~tag with
        | Some at -> consider at
        | None -> ())
      | Some (_, tag) -> (
        match Mpi.next_matching_delivery_any e.mailbox ~tag with
        | Some at -> consider at
        | None -> ())
      | None -> (
        match Mpi.next_delivery e.mailbox with
        | Some at -> consider at
        | None -> ())
    end;
    !best
  end

(* The earliest future event relevant to node [n]. *)
let next_event_on t n =
  if t.scan_sched then
    List.fold_left
      (fun acc (e : entry) ->
        if e.node_id <> n.node_id then acc
        else fold_next_event ~clock:n.clock acc e)
      None t.entries
  else
    List.fold_left (fold_next_event ~clock:n.clock) None n.residents

(* Emit every heartbeat now due on each alive node's local clock and fan
   it out to every other node through the fault layer: a partitioned or
   lossy link silently eats the beat (silence IS the failure signal — no
   retransmission), a healthy one delivers it after the charged transfer
   time plus jitter.  A crashed node emits nothing; a stalled node's
   beats are skipped via {!Detector.skip_to}, so its silence is visible
   to observers even though the node is "alive". *)
let pump_heartbeats t =
  match t.detector with
  | None -> ()
  | Some det ->
    let cfg = Detector.config det in
    let hb_s = Simnet.message_seconds t.net cfg.Detector.hb_bytes in
    Array.iter
      (fun n ->
        if n.alive then
          List.iter
            (fun emit_at ->
              Array.iter
                (fun (m : node) ->
                  if m.node_id <> n.node_id then begin
                    Simnet.record_message t.net cfg.Detector.hb_bytes;
                    match
                      Faults.on_heartbeat t.faults ~now:emit_at
                        ~src:n.node_id ~dst:m.node_id
                    with
                    | `Drop -> ()
                    | `Deliver delay ->
                      Detector.record det ~src:n.node_id ~dst:m.node_id
                        ~at:(emit_at +. hb_s +. delay)
                  end)
                t.nodes)
            (Detector.due det ~node:n.node_id ~now:n.clock))
      t.nodes

(* Run one scheduling round: each alive node runs its runnable,
   non-parked processes for one quantum and advances its LOCAL clock by
   the work done.  Nodes therefore progress independently and in
   parallel; processes sharing a node serialise (and pay context
   switches).  Returns true if any process made progress. *)
let round t =
  Obs.Metrics.incr t.c_rounds;
  let progressed = ref false in
  (* Scripted node faults fire when the CLUSTER has reached their time:
     the floor is the minimum local clock over alive nodes still hosting
     work.  Gating on the floor (not the victim's own clock) keeps the
     failure causal — nodes run ahead of each other, and a crash fired
     on a racing node's local clock would post roll notices that lagging
     nodes observe before the messages sent to them earlier, breaking
     the grid's checkpoint alignment.  A stall jumps the node's clock
     (the node loses the time); a crash is a full [fail_node] with the
     usual cascade. *)
  let hosts_work n =
    if t.scan_sched then
      List.exists
        (fun (e : entry) ->
          e.node_id = n.node_id && not (Process.is_terminated e.proc))
        t.entries
    else
      List.exists
        (fun (e : entry) -> not (Process.is_terminated e.proc))
        n.residents
  in
  let floor_clock =
    let f =
      Array.fold_left
        (fun acc n -> if n.alive && hosts_work n then min acc n.clock else acc)
        infinity t.nodes
    in
    if f = infinity then now t else f
  in
  Array.iter
    (fun n ->
      if n.alive then begin
        (match
           Faults.take_stall t.faults ~node:n.node_id ~now:floor_clock
         with
        | Some stall_s ->
          n.clock <- n.clock +. stall_s;
          Simnet.advance_to t.net n.clock;
          (* the stalled node emits no heartbeats for the whole window:
             the beats it "would have sent" are skipped, so observers see
             exactly the silence a real freeze produces *)
          (match t.detector with
          | Some det -> Detector.skip_to det ~node:n.node_id ~at:n.clock
          | None -> ());
          emit t ~time:n.clock ~node:n.node_id
            (Obs.Trace.Node_stall { stall_s });
          progressed := true
        | None -> ());
        if
          n.alive
          && Faults.take_crash t.faults ~node:n.node_id ~now:floor_clock
        then begin
          fail_node t n.node_id;
          progressed := true
        end
      end)
    t.nodes;
  Array.iter
    (fun n ->
      if n.alive then begin
        (* purge terminated entries from the per-node index (terminal
           statuses are permanent; the global list keeps them for
           introspection and cascades) *)
        if not t.scan_sched then
          n.residents <-
            List.filter
              (fun (e : entry) -> not (Process.is_terminated e.proc))
              n.residents;
        wake_ready t n;
        let procs =
          (* spawn order (oldest first), exactly the order the global
             scan produced: residents are newest-first like t.entries *)
          if t.scan_sched then
            List.filter
              (fun (e : entry) ->
                e.node_id = n.node_id && runnable t e
                && not e.proc.Process.waiting)
              (List.rev t.entries)
          else
            List.filter
              (fun (e : entry) ->
                runnable t e && not e.proc.Process.waiting)
              (List.rev n.residents)
        in
        let node_cycles = ref 0 in
        let ran = ref 0 in
        List.iter
          (fun (e : entry) ->
            if is_stale t e then begin
              (* schedule-time fence: a zombie incarnation never executes
                 another instruction once its rank's epoch has moved on *)
              fence t e ~what:"schedule";
              progressed := true
            end
            else begin
            let before = e.proc.Process.cycles in
            (* time base for extern handlers running in this quantum *)
            t.cur_base <- n.clock +. Arch.seconds n.node_arch !node_cycles;
            t.cur_cycles0 <- before;
            t.cur_pid <- e.proc.Process.pid;
            let ext = handler t e in
            let steps = ref t.quantum in
            while
              !steps > 0
              && (match e.proc.Process.status with
                 | Process.Running -> true
                 | _ -> false)
              && not e.proc.Process.waiting
            do
              (match e.engine with
              | Interp_engine -> Interp.step ~extern:ext e.proc
              | Emu_engine emu -> Emulator.step ~extern:ext emu);
              decr steps
            done;
            (match e.proc.Process.status with
            | Process.Migrating _ -> handle_migration t e
            | _ -> ());
            let delta = e.proc.Process.cycles - before in
            if delta > 0 || !steps < t.quantum then begin
              progressed := true;
              incr ran;
              Obs.Metrics.incr t.c_quanta
            end;
            node_cycles := !node_cycles + delta
            end)
          procs;
        t.cur_pid <- -1;
        (* context switches between the processes that shared the node *)
        if !ran > 1 then
          node_cycles :=
            !node_cycles
            + (!ran * Emulator.context_switch_cycles n.node_arch);
        let delta_s = Arch.seconds n.node_arch !node_cycles in
        n.busy_seconds <- n.busy_seconds +. delta_s;
        n.clock <- n.clock +. delta_s;
        (* an idle node advances its clock to its next event (a pending
           delivery or a delayed process start): idle waiting is time
           passing, and it must pass even while other nodes stay busy *)
        if !ran = 0 then begin
          match next_event_on t n with
          | Some at when at > n.clock ->
            n.clock <- at;
            wake_ready t n;
            progressed := true
          | Some _ | None -> ()
        end;
        Simnet.advance_to t.net n.clock
      end)
    t.nodes;
  pump_heartbeats t;
  balance_tick t;
  !progressed

(* Idle nodes jump their clocks to the next relevant event (a pending
   delivery or a delayed start).  Returns true if any clock moved. *)
let idle_advance t =
  let advanced = ref false in
  Array.iter
    (fun n ->
      if n.alive then begin
        wake_ready t n;
        let can_run (e : entry) = runnable t e && not e.proc.Process.waiting in
        let has_work =
          if t.scan_sched then
            List.exists
              (fun (e : entry) -> e.node_id = n.node_id && can_run e)
              t.entries
          else List.exists can_run n.residents
        in
        if not has_work then
          match next_event_on t n with
          | Some at when at > n.clock ->
            n.clock <- at;
            Simnet.advance_to t.net n.clock;
            wake_ready t n;
            advanced := true
          | Some _ | None -> ()
      end)
    t.nodes;
  pump_heartbeats t;
  !advanced

(* Advance every alive node's local clock by [dt] even with no runnable
   work: lets a resilience driver pump heartbeat traffic and time out
   suspicions when the system is otherwise quiescent (every survivor
   parked on a rank whose holder's node went silent).

   Clocks advance to (cluster-wide now + dt), not (own clock + dt): an
   idle node's lagging clock is an artifact of the conservative DES (it
   simply had nothing to do), and while it lags it keeps promoting old
   heartbeats as "recent", vetoing unanimous suspicion for as long as
   the lag.  The node has no pending work, so jumping it to the present
   is observationally safe. *)
let advance_clocks t dt =
  if dt > 0.0 then begin
    let target = now t +. dt in
    Array.iter
      (fun n ->
        if n.alive then begin
          n.clock <- Float.max n.clock target;
          Simnet.advance_to t.net n.clock
        end)
      t.nodes;
    pump_heartbeats t;
    Array.iter (fun n -> if n.alive then wake_ready t n) t.nodes
  end

(* Run until nothing can make progress anymore or [max_rounds] is hit.
   [stop] is polled between rounds for driver-controlled termination. *)
let run ?(max_rounds = 1_000_000) ?(stop = fun () -> false) t =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds && not (stop ()) do
    incr rounds;
    let progressed = round t in
    if not progressed then
      if not (idle_advance t) then continue_ := false
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

(* Every entry ever registered (terminated included), in SPAWN ORDER:
   ascending pid.  [t.entries] is newest-first and pids are allocated
   monotonically, so the single reverse restores registration order —
   the order is documented, stable, and asserted by the test suite. *)
let statuses t =
  List.rev_map
    (fun (e : entry) ->
      ( e.proc.Process.pid,
        e.rank,
        e.node_id,
        e.proc.Process.status ))
    t.entries

(* The legacy stringly event log, now a rendered view over the typed
   trace (deprecated: read Obs.Trace directly).  The wording keeps the
   phrases long-time consumers grep for ("FAILED", "resurrected",
   "forced rollback", "checkpoint"). *)
let render_event t (e : Obs.Trace.event) =
  let name_of id =
    if id >= 0 && id < Array.length t.nodes then t.nodes.(id).node_name
    else Printf.sprintf "node%d" id
  in
  let text =
    match e.Obs.Trace.kind with
    | Obs.Trace.Spawn ->
      Printf.sprintf "spawned pid %d (rank %s) on %s" e.Obs.Trace.pid
        (if e.Obs.Trace.rank >= 0 then string_of_int e.Obs.Trace.rank
         else "-")
        (name_of e.Obs.Trace.node)
    | Obs.Trace.Migrate_start { target; bytes } ->
      Printf.sprintf "pid %d: migrating to %s (%d bytes)" e.Obs.Trace.pid
        target bytes
    | Obs.Trace.Migrate_done { ok; bytes; cache_hit; _ } ->
      if ok then
        Printf.sprintf "pid %d migrated to %s (%d bytes%s)" e.Obs.Trace.pid
          (name_of e.Obs.Trace.node) bytes
          (if cache_hit then ", cache hit" else "")
      else Printf.sprintf "pid %d migration failed" e.Obs.Trace.pid
    | Obs.Trace.Migrate_retry { target; attempt; backoff_s; reason } ->
      Printf.sprintf
        "pid %d: hop to %s %s (attempt %d), backing off %gs"
        e.Obs.Trace.pid target reason attempt backoff_s
    | Obs.Trace.Dup_delivery { target } ->
      Printf.sprintf "pid %d: duplicate hop to %s deduplicated"
        e.Obs.Trace.pid target
    | Obs.Trace.Cache_hit ->
      Printf.sprintf "pid %d: recompilation cache hit" e.Obs.Trace.pid
    | Obs.Trace.Cache_miss ->
      Printf.sprintf "pid %d: recompilation cache miss" e.Obs.Trace.pid
    | Obs.Trace.Spec_enter { uid; depth } ->
      Printf.sprintf "pid %d: speculation enter (uid %d, depth %d)"
        e.Obs.Trace.pid uid depth
    | Obs.Trace.Spec_commit { uid; durable } ->
      Printf.sprintf "pid %d: speculation commit (uid %d%s)"
        e.Obs.Trace.pid uid (if durable then ", durable" else "")
    | Obs.Trace.Spec_rollback { uids } ->
      Printf.sprintf "pid %d: speculation rollback (uids %s)"
        e.Obs.Trace.pid
        (String.concat "," (List.map string_of_int uids))
    | Obs.Trace.Forced_rollback { level } ->
      if level < 0 then
        Printf.sprintf "pid %d: unrecoverable speculative dependency"
          e.Obs.Trace.pid
      else
        Printf.sprintf "pid %d: forced rollback to level %d"
          e.Obs.Trace.pid level
    | Obs.Trace.Node_fail ->
      Printf.sprintf "%s FAILED" (name_of e.Obs.Trace.node)
    | Obs.Trace.Node_stall { stall_s } ->
      Printf.sprintf "%s stalled for %gs" (name_of e.Obs.Trace.node)
        stall_s
    | Obs.Trace.Link_partition { peer_a; peer_b; until_s } ->
      Printf.sprintf "link %s-%s partitioned%s" (name_of peer_a)
        (name_of peer_b)
        (if until_s = infinity then " (never heals)"
         else Printf.sprintf " until %g" until_s)
    | Obs.Trace.Checkpoint { path; bytes } ->
      Printf.sprintf "pid %d wrote checkpoint image %s (%d bytes)"
        e.Obs.Trace.pid path bytes
    | Obs.Trace.Resurrect { path; ok } ->
      if ok then
        Printf.sprintf "resurrected %s as pid %d (rank %s) on %s" path
          e.Obs.Trace.pid
          (if e.Obs.Trace.rank >= 0 then string_of_int e.Obs.Trace.rank
           else "-")
          (name_of e.Obs.Trace.node)
      else Printf.sprintf "resurrection from %s failed" path
    | Obs.Trace.Gc { gc_kind; live; collected } ->
      Printf.sprintf "pid %d: %s gc (%d live, %d collected)"
        e.Obs.Trace.pid
        (match gc_kind with Obs.Trace.Minor -> "minor" | _ -> "major")
        live collected
    | Obs.Trace.Msg_send { dst; tag; cells } ->
      Printf.sprintf "pid %d sent %d cells to rank %d (tag %d)"
        e.Obs.Trace.pid cells dst tag
    | Obs.Trace.Msg_recv { src; tag; cells } ->
      Printf.sprintf "pid %d received %d cells from rank %d (tag %d)"
        e.Obs.Trace.pid cells src tag
    | Obs.Trace.Msg_roll { src } ->
      Printf.sprintf "pid %d observed MSG_ROLL from rank %d"
        e.Obs.Trace.pid src
    | Obs.Trace.Msg_drop { dst; tag } ->
      Printf.sprintf "pid %d: message to rank %d dropped (tag %d)"
        e.Obs.Trace.pid dst tag
    | Obs.Trace.Msg_dup { dst; tag } ->
      Printf.sprintf "pid %d: message to rank %d duplicated (tag %d)"
        e.Obs.Trace.pid dst tag
    | Obs.Trace.Suspect { subject; false_positive } ->
      Printf.sprintf "detector suspects %s%s" (name_of subject)
        (if false_positive then " (false positive)" else "")
    | Obs.Trace.Fenced { stale_epoch; current_epoch; what } ->
      Printf.sprintf "pid %d fenced at %s: epoch %d superseded by %d"
        e.Obs.Trace.pid what stale_epoch current_epoch
    | Obs.Trace.Storage_repair { path; replicas } ->
      Printf.sprintf "storage read-repaired %d replica(s) of %s" replicas
        path
    | Obs.Trace.Service_bind { laddr; new_rank; old_rank } ->
      if old_rank < 0 then
        Printf.sprintf "pid %d registered as service laddr %d (rank %d)"
          e.Obs.Trace.pid laddr new_rank
      else
        Printf.sprintf
          "service laddr %d re-homed to rank %d (rank %d forwards)" laddr
          new_rank old_rank
    | Obs.Trace.Msg_forward { laddr; from_rank; to_rank; hops } ->
      Printf.sprintf
        "laddr %d: message relayed from rank %d to rank %d (%d hop%s)"
        laddr from_rank to_rank hops (if hops = 1 then "" else "s")
    | Obs.Trace.Recipient_moved { laddr; new_rank } ->
      Printf.sprintf "pid %d rebound laddr %d to rank %d" e.Obs.Trace.pid
        laddr new_rank
    | Obs.Trace.Forward_expired { laddr; rank } ->
      Printf.sprintf
        "pid %d: forwarder for laddr %d at rank %d expired (MSG_MOVED)"
        e.Obs.Trace.pid laddr rank
    | Obs.Trace.Balance_tick { spread; proposed; moved } ->
      Printf.sprintf
        "balance tick: spread %.6f, proposed %d, moved %d" spread proposed
        moved
    | Obs.Trace.Dspec_open { txn; uid } ->
      Printf.sprintf "dspec txn %d opened by pid %d at level uid %d" txn
        e.Obs.Trace.pid uid
    | Obs.Trace.Dspec_prepare { txn; parts } ->
      Printf.sprintf "dspec txn %d prepare over pids [%s]" txn
        (String.concat "," (List.map string_of_int parts))
    | Obs.Trace.Dspec_fence { txn; part_rank; stale_epoch; current_epoch } ->
      Printf.sprintf
        "dspec txn %d fenced participant rank %d (epoch %d, current %d)"
        txn part_rank stale_epoch current_epoch
    | Obs.Trace.Dspec_commit { txn; parts } ->
      Printf.sprintf "dspec txn %d committed over pids [%s]" txn
        (String.concat "," (List.map string_of_int parts))
    | Obs.Trace.Dspec_abort { txn; parts; reason } ->
      Printf.sprintf "dspec txn %d aborted (%s) over pids [%s]" txn reason
        (String.concat "," (List.map string_of_int parts))
    | Obs.Trace.Dspec_compensate { txn; discarded } ->
      Printf.sprintf "dspec txn %d compensated: %d message(s) un-delivered"
        txn discarded
  in
  Printf.sprintf "[%10.6f] %s" e.Obs.Trace.time text

let events t = List.map (render_event t) (Obs.Trace.timeline t.tracer)

let migrations t = List.rev t.migrations
let storage t = t.storage
let net t = t.net
let trace t = t.tracer
let metrics t = t.metrics
let fault_plan t = Faults.plan t.faults
let dspec t = t.dspec

(* Aggregate recompilation-cache statistics over every node's daemon. *)
let cache_hit_rate t =
  let hits = ref 0 and misses = ref 0 in
  Array.iter
    (fun n ->
      match Migrate.Server.cache n.daemon with
      | None -> ()
      | Some c ->
        let s = Migrate.Codecache.stats c in
        hits := !hits + s.Migrate.Codecache.hits;
        misses := !misses + s.Migrate.Codecache.misses)
    t.nodes;
  let total = !hits + !misses in
  if total = 0 then 0.0 else float_of_int !hits /. float_of_int total

let cache_reports t =
  Array.to_list t.nodes
  |> List.filter_map (fun n ->
         match Migrate.Server.cache n.daemon with
         | None -> None
         | Some c ->
           Some
             (Printf.sprintf "%s: %s" n.node_name
                (Migrate.Codecache.report c)))
let alive_count t =
  Array.fold_left (fun acc n -> if n.alive then acc + 1 else acc) 0 t.nodes

let detection_enabled t = Option.is_some t.detector
let detector_config t = Option.map Detector.config t.detector

(* Nodes the failure detector currently suspects, judged ONLY from
   heartbeat silence on the observers' local clocks — ground-truth
   aliveness picks who gets to observe (dead observers don't vote) and
   labels false positives in the metrics, but never drives detection. *)
let suspected_nodes t =
  match t.detector with
  | None -> []
  | Some det ->
    pump_heartbeats t;
    let clocks = Array.map (fun n -> n.clock) t.nodes in
    let alive = Array.map (fun n -> n.alive) t.nodes in
    Detector.suspects det ~clocks ~alive
      ~on_suspect:(fun ~subject ~false_positive ->
        emit t ~time:(now t) ~node:subject
          (Obs.Trace.Suspect { subject; false_positive }))

(* Public wrapper for host-initiated aborts (tests, recovery drivers):
   roll [pid] back to [level]; the dependency cascade follows from the
   engine hook. *)
let abort_speculation ?(code = msg_roll) t ~pid ~level =
  match entry_of_pid t pid with
  | None -> ()
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Running | Process.Migrating _ ->
      (match entry.proc.Process.status with
      | Process.Migrating _ -> Process.migration_failed entry.proc
      | _ -> ());
      Process.do_rollback entry.proc ~level ~code;
      entry.proc.Process.waiting <- false
    | Process.Exited _ | Process.Trapped _ -> ())

let node_count t = Array.length t.nodes

